package core

import (
	"fmt"
	"net/url"
	"strings"
	"time"

	"cryptomining/internal/model"
	"cryptomining/internal/profit"
	"cryptomining/internal/report"
)

// This file builds the datasets behind each table and figure of the paper's
// evaluation from a pipeline Results value. Every function returns a
// report.Table or report.Series so that the benchmark harness and the
// paperrepro command print the same rows the paper reports.

// DatasetSummary reproduces Table III: the number of miner and ancillary
// binaries, the per-source breakdown and the per-resource breakdown.
func DatasetSummary(res *Results) *report.Table {
	t := report.NewTable("Table III — dataset summary", "Category", "Type", "#Samples")
	t.AddRow("Summary", "ALL EXECUTABLES", fmt.Sprintf("%d", len(res.Records)))
	t.AddRow("", "Miner Binaries", fmt.Sprintf("%d", len(res.MinerRecords)))
	t.AddRow("", "Ancillary Binaries", fmt.Sprintf("%d", len(res.AncillaryRecords)))
	for _, src := range []model.Source{model.SourceVirusTotal, model.SourcePaloAlto, model.SourceHybridAnalysis, model.SourceVirusShare, model.SourceCrawler} {
		if n, ok := res.CountsBySource[src]; ok {
			t.AddRow("Sources", string(src), fmt.Sprintf("%d", n))
		}
	}
	for _, r := range []model.AnalysisResource{model.ResourceSandbox, model.ResourceNetwork, model.ResourceBinary} {
		if n, ok := res.CountsByResource[r]; ok {
			t.AddRow("Resources", string(r)+" Analysis", fmt.Sprintf("%d", n))
		}
	}
	return t
}

// CurrencyBreakdown reproduces the left side of Table IV: campaigns per
// currency plus e-mail and unknown identifiers.
func CurrencyBreakdown(res *Results) *report.Table {
	counter := report.NewCounter()
	for _, c := range res.Campaigns {
		if len(c.Wallets) == 0 {
			continue
		}
		seen := map[model.Currency]bool{}
		for _, cur := range c.Currencies {
			if !seen[cur] {
				seen[cur] = true
				counter.Add(string(cur))
			}
		}
		if len(c.Currencies) == 0 {
			counter.Add("Unknown")
		}
	}
	t := report.NewTable("Table IV (left) — campaigns per identifier type", "Currency", "#Campaigns")
	for _, e := range counter.Top(0) {
		t.AddRow(e.Key, fmt.Sprintf("%d", e.Count))
	}
	return t
}

// SamplesPerYear reproduces the right side of Table IV: miner samples first
// seen per year for Bitcoin and Monero.
func SamplesPerYear(res *Results) *report.Table {
	btc := report.NewYearBuckets()
	xmr := report.NewYearBuckets()
	for _, rec := range res.MinerRecords {
		switch rec.Currency {
		case model.CurrencyBitcoin:
			btc.Add(rec.FirstSeen)
		case model.CurrencyMonero:
			xmr.Add(rec.FirstSeen)
		}
	}
	years := map[int]bool{}
	for _, y := range btc.Years() {
		years[y] = true
	}
	for _, y := range xmr.Years() {
		years[y] = true
	}
	var sorted []int
	for y := range years {
		sorted = append(sorted, y)
	}
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	t := report.NewTable("Table IV (right) — miner samples per year", "Year", "BTC", "XMR")
	for _, y := range sorted {
		t.AddRow(fmt.Sprintf("%d", y), fmt.Sprintf("%d", btc.Count(y)), fmt.Sprintf("%d", xmr.Count(y)))
	}
	t.AddRow("TOTAL", fmt.Sprintf("%d", btc.Total()), fmt.Sprintf("%d", xmr.Total()))
	return t
}

// MalwareReuse reproduces Table V: samples first seen before 2014 that carry
// Monero wallets (Monero launched in April 2014), i.e. droppers later updated
// to mine.
func MalwareReuse(res *Results) *report.Table {
	t := report.NewTable("Table V — pre-2014 samples later mining Monero", "SHA256", "Year", "XMR wallet")
	for _, rec := range res.MinerRecords {
		if rec.Currency != model.CurrencyMonero || rec.FirstSeen.IsZero() {
			continue
		}
		if rec.FirstSeen.Year() >= 2014 {
			continue
		}
		t.AddRow(model.ShortHash(rec.SHA256), fmt.Sprintf("%d", rec.FirstSeen.Year()), model.ShortHash(rec.User))
	}
	return t
}

// HostingDomains reproduces Table VI/XIII: the domains hosting crypto-mining
// malware ranked by the number of samples.
func HostingDomains(res *Results, topN int) *report.Table {
	samplesPerDomain := report.NewCounter()
	urlsPerDomain := map[string]map[string]bool{}
	for _, rec := range res.Records {
		seen := map[string]bool{}
		for _, raw := range rec.ITWURLs {
			u, err := url.Parse(raw)
			if err != nil || u.Hostname() == "" {
				continue
			}
			host := strings.ToLower(u.Hostname())
			if !seen[host] {
				seen[host] = true
				samplesPerDomain.Add(host)
			}
			if urlsPerDomain[host] == nil {
				urlsPerDomain[host] = map[string]bool{}
			}
			urlsPerDomain[host][raw] = true
		}
	}
	t := report.NewTable("Table VI — domains hosting crypto-mining malware", "Domain", "#Samples", "#URLs")
	for _, e := range samplesPerDomain.Top(topN) {
		t.AddRow(e.Key, fmt.Sprintf("%d", e.Count), fmt.Sprintf("%d", len(urlsPerDomain[e.Key])))
	}
	return t
}

// CampaignCDFs reproduces Figure 4: the CDFs of samples, wallets and earnings
// per campaign.
func CampaignCDFs(res *Results) (samples, wallets, earnings []profit.CDFPoint) {
	var sVals, wVals, eVals []float64
	for _, c := range res.Campaigns {
		if len(c.Samples) == 0 && len(c.Wallets) == 0 {
			continue
		}
		sVals = append(sVals, float64(len(c.Samples)))
		wVals = append(wVals, float64(len(c.Wallets)))
		if c.XMRMined > 0 {
			eVals = append(eVals, c.XMRMined)
		}
	}
	return profit.CDF(sVals), profit.CDF(wVals), profit.CDF(eVals)
}

// PoolsPerCampaign reproduces Figure 5: for each earnings bucket, the
// fraction of campaigns using 1, 2, 3, ... pools.
func PoolsPerCampaign(res *Results) *report.Table {
	hist := profit.PoolsPerCampaignHistogram(res.Profits)
	buckets := []model.ProfitBucket{
		model.BucketUnder1, model.ProfitBucket("[1-100)"), model.Bucket100To1K,
		model.Bucket1KTo10K, model.BucketOver10K,
	}
	maxPools := 0
	for _, perBucket := range hist {
		for n := range perBucket {
			if n > maxPools {
				maxPools = n
			}
		}
	}
	headers := []string{"XMR mined (#campaigns)"}
	for i := 1; i <= maxPools; i++ {
		headers = append(headers, fmt.Sprintf("%d pools", i))
	}
	t := report.NewTable("Figure 5 — number of pools used per campaign, by earnings", headers...)
	for _, b := range buckets {
		perBucket := hist[b]
		total := 0
		for _, n := range perBucket {
			total += n
		}
		if total == 0 {
			continue
		}
		row := []string{fmt.Sprintf("%s (%d)", b, total)}
		for i := 1; i <= maxPools; i++ {
			row = append(row, report.Percent(float64(perBucket[i]), float64(total)))
		}
		t.AddRow(row...)
	}
	return t
}

// PoolPopularity reproduces Table VII: pools ranked by XMR mined by illicit
// wallets, with wallet counts and USD.
func PoolPopularity(res *Results) []profit.PoolRanking {
	// Recompute from the profits' underlying activity: rank pools over the
	// wallets of all campaigns.
	var wallets []string
	for _, c := range res.Campaigns {
		wallets = append(wallets, c.Wallets...)
	}
	// The analyzer is stateless; rebuild a collector-compatible ranking from
	// campaign payments instead (each payment knows its pool).
	perPool := map[string]*profit.PoolRanking{}
	walletSeen := map[string]map[string]bool{}
	for _, cp := range res.Profits {
		for _, pay := range cp.Payments {
			r, ok := perPool[pay.Pool]
			if !ok {
				r = &profit.PoolRanking{Pool: pay.Pool}
				perPool[pay.Pool] = r
				walletSeen[pay.Pool] = map[string]bool{}
			}
			r.XMR += pay.Amount
			r.USD += pay.USD
			if !walletSeen[pay.Pool][pay.Wallet] {
				walletSeen[pay.Pool][pay.Wallet] = true
				r.Wallets++
			}
		}
	}
	_ = wallets
	out := make([]profit.PoolRanking, 0, len(perPool))
	for _, r := range perPool {
		out = append(out, *r)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].XMR > out[i].XMR {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// PoolPopularityTable renders PoolPopularity as the Table VII layout.
func PoolPopularityTable(res *Results) *report.Table {
	t := report.NewTable("Table VII — mining pools ranked by XMR mined by malware", "Pool", "XMR Mined", "#Wallets", "USD")
	for _, r := range PoolPopularity(res) {
		t.AddRow(r.Pool, model.FormatXMR(r.XMR), fmt.Sprintf("%d", r.Wallets), model.FormatXMR(r.USD))
	}
	return t
}

// TopCampaignsTable reproduces Table VIII: the top-n campaigns by XMR mined.
func TopCampaignsTable(res *Results, n int) *report.Table {
	t := report.NewTable(fmt.Sprintf("Table VIII — top %d campaigns by XMR mined", n),
		"Campaign", "#S", "#W", "Period", "XMR", "USD")
	top := profit.TopCampaigns(res.Profits, n)
	var totXMR, totUSD float64
	var totS, totW int
	for _, cp := range top {
		c := cp.Campaign
		period := fmt.Sprintf("%s to %s", c.FirstSeen.Format("01/06"), c.LastSeen.Format("01/06"))
		if cp.ActiveAt {
			period = fmt.Sprintf("%s to active*", c.FirstSeen.Format("01/06"))
		}
		t.AddRow(fmt.Sprintf("C#%d", c.ID), fmt.Sprintf("%d", len(c.Samples)), fmt.Sprintf("%d", len(c.Wallets)),
			period, model.FormatXMR(cp.XMR), model.FormatUSD(cp.USD))
		totXMR += cp.XMR
		totUSD += cp.USD
		totS += len(c.Samples)
		totW += len(c.Wallets)
	}
	t.AddRow(fmt.Sprintf("TOP-%d", len(top)), fmt.Sprintf("%d", totS), fmt.Sprintf("%d", totW), "",
		model.FormatXMR(totXMR), model.FormatUSD(totUSD))
	t.AddRow(fmt.Sprintf("ALL-%d", len(res.Profits)), "", "", "",
		model.FormatXMR(res.TotalXMR), model.FormatUSD(res.TotalUSD))
	return t
}

// MiningToolsTable reproduces Table IX: the stock mining tools attributed to
// campaigns.
func MiningToolsTable(res *Results) *report.Table {
	campaignsPerTool := report.NewCounter()
	for _, c := range res.Campaigns {
		for _, tool := range c.StockTools {
			campaignsPerTool.Add(tool)
		}
	}
	t := report.NewTable("Table IX — stock mining tools used by campaigns", "Tool", "#Campaigns")
	for _, e := range campaignsPerTool.Top(0) {
		t.AddRow(e.Key, fmt.Sprintf("%d", e.Count))
	}
	return t
}

// PackersTable reproduces Table X: packers used for obfuscation, by sample
// count, plus the not-packed remainder.
func PackersTable(res *Results) *report.Table {
	counter := report.NewCounter()
	notPacked := 0
	for _, rec := range res.Records {
		if rec.Packer != "" {
			counter.Add(rec.Packer)
		} else {
			notPacked++
		}
	}
	t := report.NewTable("Table X — packers used for binary obfuscation", "Packer", "#Samples")
	for _, e := range counter.Top(0) {
		t.AddRow(e.Key, fmt.Sprintf("%d", e.Count))
	}
	t.AddRow("Not packed", fmt.Sprintf("%d", notPacked))
	return t
}

// InfrastructureByProfit reproduces Table XI: third-party infrastructure,
// stealth techniques and activity periods per profit bucket.
func InfrastructureByProfit(res *Results) *report.Table {
	buckets := []model.ProfitBucket{model.BucketUnder100, model.Bucket100To1K, model.Bucket1KTo10K, model.BucketOver10K}
	type stats struct {
		n           int
		ppi         int
		sw          int
		both        int
		obf         int
		cname       int
		proxy       int
		start       map[int]int
		years       map[int]int
		activeAtEnd int
	}
	perBucket := map[model.ProfitBucket]*stats{}
	get := func(b model.ProfitBucket) *stats {
		s, ok := perBucket[b]
		if !ok {
			s = &stats{start: map[int]int{}, years: map[int]int{}}
			perBucket[b] = s
		}
		return s
	}
	all := get("ALL")
	add := func(s *stats, c *model.Campaign) {
		s.n++
		hasPPI := len(c.PPIBotnets) > 0
		hasSW := len(c.StockTools) > 0
		if hasPPI {
			s.ppi++
		}
		if hasSW {
			s.sw++
		}
		if hasPPI && hasSW {
			s.both++
		}
		if c.UsesObfuscation {
			s.obf++
		}
		if len(c.CNAMEs) > 0 {
			s.cname++
		}
		if len(c.Proxies) > 0 {
			s.proxy++
		}
		if !c.FirstSeen.IsZero() {
			s.start[c.FirstSeen.Year()]++
		}
		s.years[c.DurationYears()]++
		if c.Active {
			s.activeAtEnd++
		}
	}
	for _, cp := range res.Profits {
		b := model.BucketFor(cp.XMR)
		add(get(b), cp.Campaign)
		add(all, cp.Campaign)
	}

	headers := []string{"Metric"}
	for _, b := range buckets {
		headers = append(headers, string(b))
	}
	headers = append(headers, "ALL")
	t := report.NewTable("Table XI — infrastructure, stealth and activity by profit bucket", headers...)

	row := func(name string, f func(*stats) string) {
		cells := []string{name}
		for _, b := range buckets {
			cells = append(cells, f(get(b)))
		}
		cells = append(cells, f(all))
		t.AddRow(cells...)
	}
	row("#Campaigns", func(s *stats) string { return fmt.Sprintf("%d", s.n) })
	pct := func(num int, s *stats) string { return report.Percent(float64(num), float64(s.n)) }
	row("PPI", func(s *stats) string { return pct(s.ppi, s) })
	row("Mining SW", func(s *stats) string { return pct(s.sw, s) })
	row("Both", func(s *stats) string { return pct(s.both, s) })
	row("Obfuscation", func(s *stats) string { return pct(s.obf, s) })
	row("CNAMEs", func(s *stats) string { return pct(s.cname, s) })
	row("Proxies", func(s *stats) string { return pct(s.proxy, s) })
	row("Active at end", func(s *stats) string { return pct(s.activeAtEnd, s) })
	for year := 2014; year <= 2019; year++ {
		y := year
		row(fmt.Sprintf("Start: %d", y), func(s *stats) string { return pct(s.start[y], s) })
	}
	for dur := 0; dur <= 4; dur++ {
		d := dur
		row(fmt.Sprintf("Years: %d", d), func(s *stats) string { return pct(s.years[d], s) })
	}
	return t
}

// TopWalletsTable reproduces Table XIV: the top-n wallets by XMR mined.
func TopWalletsTable(res *Results, collector *profit.Collector, n int) *report.Table {
	analyzer := profit.NewAnalyzer(collector)
	wallets := map[string]bool{}
	for _, c := range res.Campaigns {
		for _, w := range c.Wallets {
			wallets[w] = true
		}
	}
	var list []string
	for w := range wallets {
		list = append(list, w)
	}
	top := analyzer.TopWallets(list, n)
	t := report.NewTable(fmt.Sprintf("Table XIV — top %d wallets by XMR mined", n), "Wallet", "XMR mined", "USD")
	var totX, totU float64
	for _, w := range top {
		t.AddRow(model.ShortHash(w.Wallet), model.FormatXMR(w.XMR), model.FormatXMR(w.USD))
		totX += w.XMR
		totU += w.USD
	}
	t.AddRow("TOTAL (top)", model.FormatXMR(totX), model.FormatXMR(totU))
	return t
}

// EmailsPerPool reproduces Table XV: the number of e-mail identifiers seen
// per pool (dominated by the opaque minergate pool).
func EmailsPerPool(res *Results, poolForEndpoint func(string) string) *report.Table {
	counter := report.NewCounter()
	total := 0
	for _, rec := range res.MinerRecords {
		if rec.Currency != model.CurrencyEmail {
			continue
		}
		total++
		pool := poolForEndpoint(rec.URLPool)
		if pool == "" {
			pool = "OTHERS"
		}
		counter.Add(pool)
	}
	t := report.NewTable("Table XV — e-mail identifiers per pool", "Pool", "#Emails")
	for _, e := range counter.Top(0) {
		t.AddRow(e.Key, fmt.Sprintf("%d", e.Count))
	}
	t.AddRow("TOTAL", fmt.Sprintf("%d", total))
	return t
}

// PaymentTimeline reproduces Figures 6c/7/8: the per-wallet monthly payment
// series for one campaign, annotated with PoW fork dates.
type PaymentTimeline struct {
	CampaignID int
	// Wallets lists the wallet identifiers with at least one payment.
	Wallets []string
	// Monthly maps wallet -> month (YYYY-MM) -> XMR paid.
	Monthly map[string]map[string]float64
	// ForkDates are the PoW changes within the observation window.
	ForkDates []time.Time
}

// BuildPaymentTimeline extracts the payment timeline of one campaign.
func BuildPaymentTimeline(res *Results, campaignID int, forks []time.Time) PaymentTimeline {
	tl := PaymentTimeline{CampaignID: campaignID, Monthly: map[string]map[string]float64{}, ForkDates: forks}
	for _, cp := range res.Profits {
		if cp.Campaign.ID != campaignID {
			continue
		}
		for _, pay := range cp.Payments {
			month := pay.Timestamp.Format("2006-01")
			if tl.Monthly[pay.Wallet] == nil {
				tl.Monthly[pay.Wallet] = map[string]float64{}
				tl.Wallets = append(tl.Wallets, pay.Wallet)
			}
			tl.Monthly[pay.Wallet][month] += pay.Amount
		}
	}
	return tl
}

// Series renders the timeline of one wallet as a report.Series.
func (tl PaymentTimeline) Series(walletID string) *report.Series {
	s := &report.Series{Name: fmt.Sprintf("C#%d payments for %s (XMR/month)", tl.CampaignID, model.ShortHash(walletID))}
	months := make([]string, 0, len(tl.Monthly[walletID]))
	for m := range tl.Monthly[walletID] {
		months = append(months, m)
	}
	for i := 0; i < len(months); i++ {
		for j := i + 1; j < len(months); j++ {
			if months[j] < months[i] {
				months[i], months[j] = months[j], months[i]
			}
		}
	}
	for _, m := range months {
		s.Add(m, tl.Monthly[walletID][m])
	}
	return s
}

// RelatedWorkTable reproduces Table XII: the static comparison of related
// measurements, with this reproduction's own row filled from the results.
func RelatedWorkTable(res *Results) *report.Table {
	t := report.NewTable("Table XII — related-work comparison",
		"Work", "Focus (currency)", "Analyzed", "Detected", "Profits")
	t.AddRow("Huang et al. (2014)", "Binary-based mining (BTC)", "Unknown", "2K crypto-mining malware", "14,979 BTC")
	t.AddRow("Ruth et al. (2018)", "Web-based mining (XMR)", "10M websites", "2,287 websites", "1,271 XMR/month")
	t.AddRow("Hong et al. (2018)", "Web-based cryptojacking (XMR)", "548,624 websites", "2,270 websites", "7,692 XMR")
	t.AddRow("Konoth et al. (2018)", "Web-based cryptojacking (XMR)", "991,513 websites", "1,735 websites", "747 XMR/month")
	t.AddRow("Papadopoulos et al. (2018)", "Web-based mining (XMR)", "3M websites", "107.5K websites", "N/A")
	t.AddRow("Musch et al. (2018)", "Web-based cryptojacking (XMR)", "1M websites", "2.5K websites", "N/A")
	monthly := profit.MonthlyRate(res.Profits)
	t.AddRow("This reproduction", "Binary-based mining (various)",
		fmt.Sprintf("%d samples", len(res.Outcomes)),
		fmt.Sprintf("%d crypto-mining malware", len(res.Records)),
		fmt.Sprintf("%s XMR (%.0f XMR/month)", model.FormatXMR(res.TotalXMR), monthly))
	return t
}
