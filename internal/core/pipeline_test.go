package core

import (
	"testing"

	"cryptomining/internal/campaign"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/model"
	"cryptomining/internal/pow"
	"cryptomining/internal/profit"
)

// testUniverse and testResults are shared across the tests in this package:
// generating and running the pipeline once keeps the suite fast.
var (
	testUniverse = ecosim.Generate(ecosim.SmallConfig())
	testResults  = mustRun(testUniverse)
)

func mustRun(u *ecosim.Universe) *Results {
	p := NewFromUniverse(u)
	res, err := p.Run()
	if err != nil {
		panic(err)
	}
	return res
}

func TestPipelineKeepsMinersDropsNoise(t *testing.T) {
	res := testResults
	if len(res.MinerRecords) == 0 {
		t.Fatal("no miner records produced")
	}
	if len(res.Records) == 0 || len(res.Records) != len(res.MinerRecords)+len(res.AncillaryRecords) {
		t.Errorf("record split inconsistent: %d vs %d + %d",
			len(res.Records), len(res.MinerRecords), len(res.AncillaryRecords))
	}
	// Benign samples and stock tools must not be in the dataset.
	for _, rec := range res.Records {
		truth := testUniverse.SampleTruths[rec.SHA256]
		if !truth.Malicious {
			t.Errorf("non-malicious sample %s kept in the dataset", model.ShortHash(rec.SHA256))
		}
	}
	// The whitelisted stock tools are never kept even though AVs flag them.
	for _, tool := range testUniverse.OSINT.StockTools() {
		if o, ok := res.Outcomes[tool.SHA256]; ok && o.Kept {
			t.Errorf("whitelisted stock tool %s kept as malware", tool.Name)
		}
	}
}

func TestPipelineRecallOfGroundTruthMiners(t *testing.T) {
	res := testResults
	// Most ground-truth miner samples that reached the corpus should be
	// recovered as miners (stealthy campaigns may hide a few).
	total, recovered := 0, 0
	for _, c := range testUniverse.Campaigns {
		for _, h := range c.Samples {
			if _, ok := testUniverse.Corpus.Get(h); !ok {
				continue
			}
			total++
			if o, ok := res.Outcomes[h]; ok && o.Kept && o.Record.Type == model.TypeMiner {
				recovered++
			}
		}
	}
	if total == 0 {
		t.Fatal("no ground truth miners")
	}
	recall := float64(recovered) / float64(total)
	if recall < 0.80 {
		t.Errorf("miner recall = %.2f (%d/%d), want >= 0.80", recall, recovered, total)
	}
}

func TestPipelineWalletExtractionMatchesGroundTruth(t *testing.T) {
	res := testResults
	mismatches := 0
	checked := 0
	for _, c := range testUniverse.Campaigns {
		walletSet := map[string]bool{}
		for _, w := range c.Wallets {
			walletSet[w] = true
		}
		for _, h := range c.Samples {
			o, ok := res.Outcomes[h]
			if !ok || !o.Kept || !o.Record.HasIdentifier() {
				continue
			}
			checked++
			if !walletSet[o.Record.User] {
				mismatches++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no wallets checked")
	}
	if mismatches > checked/50 {
		t.Errorf("wallet mismatches = %d of %d", mismatches, checked)
	}
}

func TestPipelineCampaignAggregationQuality(t *testing.T) {
	res := testResults
	v := Validate(res.Campaigns)
	if v.CampaignsWithSamples == 0 {
		t.Fatal("no campaigns with ground truth")
	}
	if v.Purity() < 0.9 {
		t.Errorf("aggregation purity = %.2f, want >= 0.9 (merged: %d of %d)",
			v.Purity(), v.MergedCampaigns, v.CampaignsWithSamples)
	}
	// Splitting is expected (not every sample of a campaign shares features)
	// but the majority of ground-truth campaigns should map to few produced
	// campaigns.
	if v.GroundTruthSplit > v.GroundTruthTotal/2 {
		t.Errorf("split ground-truth campaigns = %d of %d", v.GroundTruthSplit, v.GroundTruthTotal)
	}
}

func TestPipelineProfitsMatchPoolGroundTruth(t *testing.T) {
	res := testResults
	if res.TotalXMR <= 0 || res.TotalUSD <= 0 {
		t.Fatalf("totals = %v XMR / %v USD", res.TotalXMR, res.TotalUSD)
	}
	// The recovered total must be close to (and not exceed by much) the
	// ground-truth total credited by the pool simulation.
	var groundTruth float64
	for _, c := range testUniverse.Campaigns {
		groundTruth += c.ExpectedXMR
	}
	if res.TotalXMR > groundTruth*1.05 {
		t.Errorf("recovered %v XMR exceeds ground truth %v", res.TotalXMR, groundTruth)
	}
	if res.TotalXMR < groundTruth*0.6 {
		t.Errorf("recovered %v XMR is far below ground truth %v", res.TotalXMR, groundTruth)
	}
	if res.CirculationShare <= 0 || res.CirculationShare > 0.2 {
		t.Errorf("circulation share = %v, outside plausible range", res.CirculationShare)
	}
}

func TestPipelineHeavyTailAndMoneroDominance(t *testing.T) {
	res := testResults
	// Monero campaigns dominate the earnings.
	currencyCampaigns := map[model.Currency]int{}
	for _, c := range res.Campaigns {
		for _, cur := range c.Currencies {
			currencyCampaigns[cur]++
		}
	}
	if currencyCampaigns[model.CurrencyMonero] <= currencyCampaigns[model.CurrencyBitcoin] {
		t.Errorf("Monero campaigns (%d) should outnumber Bitcoin (%d)",
			currencyCampaigns[model.CurrencyMonero], currencyCampaigns[model.CurrencyBitcoin])
	}
	// Top 10 campaigns take an outsized share.
	top := profit.TopCampaigns(res.Profits, 10)
	var topXMR float64
	for _, cp := range top {
		topXMR += cp.XMR
	}
	if topXMR < res.TotalXMR*0.4 {
		t.Errorf("top-10 share = %.2f of total, expected heavy tail", topXMR/res.TotalXMR)
	}
}

func TestPipelineCaseStudyRecovered(t *testing.T) {
	res := testResults
	// The Freebuf-like campaign should surface among the top campaigns and
	// carry its CNAME aliases.
	var freebuf *model.Campaign
	for _, c := range res.Campaigns {
		for _, gt := range c.GroundTruthIDs {
			if gt == ecosim.FreebufCampaignID {
				if freebuf == nil || c.XMRMined > freebuf.XMRMined {
					freebuf = c
				}
			}
		}
	}
	if freebuf == nil {
		t.Fatal("freebuf-like campaign not recovered")
	}
	if freebuf.XMRMined <= 0 {
		t.Error("freebuf-like campaign has no recovered earnings")
	}
	if len(freebuf.CNAMEs) == 0 {
		t.Error("freebuf-like campaign should carry CNAME aliases")
	}
	top := profit.TopCampaigns(res.Profits, 10)
	found := false
	for _, cp := range top {
		if cp.Campaign.ID == freebuf.ID {
			found = true
		}
	}
	if !found {
		t.Error("freebuf-like campaign should rank in the top 10")
	}
}

func TestPipelineResourceAndSourceCounts(t *testing.T) {
	res := testResults
	if res.CountsBySource[model.SourceVirusTotal] == 0 {
		t.Error("VirusTotal source count should be non-zero")
	}
	if res.CountsByResource[model.ResourceSandbox] == 0 || res.CountsByResource[model.ResourceNetwork] == 0 {
		t.Errorf("resource counts = %v", res.CountsByResource)
	}
	if res.Identifiers == 0 {
		t.Error("identifier count should be non-zero")
	}
}

func TestPipelineFeatureAblationReducesAggregation(t *testing.T) {
	// Identifier-only aggregation must produce at least as many campaigns as
	// the full feature set (fewer merges).
	u := testUniverse
	idOnly := campaign.Features{SameIdentifier: true}
	p := New(Config{
		Corpus:      u.Corpus,
		AV:          NewScannerAV(u.Scanner, u.SampleTruths, u.Config.QueryTime),
		Resolver:    nil,
		Zone:        u.Zone,
		OSINT:       u.OSINT,
		Pools:       u.Pools,
		Network:     u.Network,
		QueryTime:   u.Config.QueryTime,
		GroundTruth: u.GroundTruthBySample,
		Features:    &idOnly,
	})
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	full := testResults
	if len(res.Campaigns) < len(full.Campaigns) {
		t.Errorf("identifier-only campaigns = %d, full-feature campaigns = %d; ablation should not merge more",
			len(res.Campaigns), len(full.Campaigns))
	}
}

func TestPipelineNoCorpus(t *testing.T) {
	p := New(Config{})
	if _, err := p.Run(); err == nil {
		t.Error("running without a corpus should error")
	}
}

func TestValidateHelper(t *testing.T) {
	campaigns := []*model.Campaign{
		{ID: 1, Samples: []string{"a"}, GroundTruthIDs: []int{10}},
		{ID: 2, Samples: []string{"b"}, GroundTruthIDs: []int{10}},
		{ID: 3, Samples: []string{"c", "d"}, GroundTruthIDs: []int{11, 12}},
		{ID: 4}, // no samples -> ignored
	}
	v := Validate(campaigns)
	if v.CampaignsWithSamples != 3 || v.PureCampaigns != 2 || v.MergedCampaigns != 1 {
		t.Errorf("validation = %+v", v)
	}
	if v.GroundTruthTotal != 3 || v.GroundTruthSplit != 1 {
		t.Errorf("ground truth stats = %+v", v)
	}
	if v.Purity() < 0.66 || v.Purity() > 0.67 {
		t.Errorf("purity = %v", v.Purity())
	}
	if (ValidationStats{}).Purity() != 0 {
		t.Error("empty validation purity should be 0")
	}
}

func TestSortCampaignsByEarningsAndAllWallets(t *testing.T) {
	cs := []*model.Campaign{{ID: 1, XMRMined: 5}, {ID: 2, XMRMined: 50}, {ID: 3, XMRMined: 0.5}}
	sorted := SortCampaignsByEarnings(cs)
	if sorted[0].ID != 2 || sorted[2].ID != 3 {
		t.Errorf("sorted order = %v %v %v", sorted[0].ID, sorted[1].ID, sorted[2].ID)
	}
	recs := []model.Record{
		{User: "46G5yoqAPPuAP9BCFAqFi1bdArTPoz6tQ5BFeSN1ABCDEFXYZ000000000000000000000000000000000000000000000", Currency: model.CurrencyMonero},
		{User: "bot@mail.ru", Currency: model.CurrencyEmail},
		{},
	}
	// AllWallets keeps only real wallet addresses (it re-classifies).
	ws := AllWallets(recs)
	if len(ws) > 1 {
		t.Errorf("AllWallets = %v", ws)
	}
}

func TestPipelineForkDieOff(t *testing.T) {
	// The §VI measurement: a large fraction of campaigns stop providing
	// valid shares after the April 2018 PoW change.
	res := testResults
	fork := model.Date(2018, 4, 6)
	activeBefore, activeAfter := 0, 0
	for _, cp := range res.Profits {
		if cp.FirstPayment.IsZero() || !cp.FirstPayment.Before(fork) {
			continue
		}
		activeBefore++
		if cp.LastPayment.After(fork.AddDate(0, 2, 0)) {
			activeAfter++
		}
	}
	if activeBefore == 0 {
		t.Skip("no campaigns active before the fork in this configuration")
	}
	ceased := float64(activeBefore-activeAfter) / float64(activeBefore)
	if ceased < 0.4 {
		t.Errorf("only %.0f%% of campaigns ceased after the PoW change; expected a large die-off", ceased*100)
	}
	_ = pow.MoneroEpochs
}
