// Package core implements the end-to-end measurement pipeline of the paper
// (Figure 3): feed consolidation, sanity checks ("is it malware? is it a
// miner? is it an executable?"), static and dynamic analysis, extraction of
// wallets and pools, campaign aggregation, enrichment, and profit analysis.
//
// The pipeline is agnostic to whether its inputs come from the synthetic
// ecosystem (internal/ecosim) or from real feeds: it consumes the Feed, AV,
// DNS, OSINT and pool-directory interfaces defined by the substrate packages.
// NewFromUniverse wires it to a generated universe in one call.
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cryptomining/internal/avsim"
	"cryptomining/internal/campaign"
	"cryptomining/internal/dnssim"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/exchange"
	"cryptomining/internal/extract"
	"cryptomining/internal/feeds"
	"cryptomining/internal/model"
	"cryptomining/internal/osint"
	"cryptomining/internal/pool"
	"cryptomining/internal/pow"
	"cryptomining/internal/profit"
	"cryptomining/internal/sandbox"
	"cryptomining/internal/static"
	"cryptomining/internal/wallet"
)

// AVProvider supplies antivirus reports for samples.
type AVProvider interface {
	Report(sha256Hex string) *model.AVReport
}

// Config wires the pipeline's dependencies.
type Config struct {
	// Corpus is the consolidated sample set to analyze.
	Corpus *feeds.Corpus
	// AV supplies multi-engine reports.
	AV AVProvider
	// MalwareThreshold is the minimum number of AV positives for the
	// "is it malware?" check (default 10).
	MalwareThreshold int
	// Resolver resolves the domains samples contact (and CNAME aliases).
	Resolver *dnssim.Resolver
	// Zone backs the passive-DNS lookups of the alias detector.
	Zone *dnssim.Zone
	// OSINT supplies IoCs, donation wallets, PPI families and stock tools.
	OSINT *osint.Store
	// Pools is the directory of known pools, used for endpoint attribution
	// and profit collection.
	Pools *pool.Directory
	// Rates converts XMR payments to USD.
	Rates *exchange.History
	// Network is the PoW model used for the circulating-supply estimate.
	Network *pow.Network
	// QueryTime is the measurement end time (pool queries, activity checks).
	QueryTime time.Time
	// GroundTruth optionally maps sample hashes to ground-truth campaign IDs
	// for aggregation validation.
	GroundTruth map[string]int
	// Features selects the aggregation grouping features (default: all).
	Features *campaign.Features
	// FuzzyThreshold overrides the stock-tool fuzzy-hash distance threshold.
	FuzzyThreshold float64
}

// scannerAV adapts the avsim scanner + ground truth to AVProvider.
type scannerAV struct {
	scanner *avsim.Scanner
	truths  map[string]avsim.SampleTruth
	at      time.Time
}

// Report implements AVProvider.
func (s *scannerAV) Report(sha string) *model.AVReport {
	truth := s.truths[sha]
	return s.scanner.Scan(sha, truth, s.at)
}

// NewScannerAV wraps an avsim scanner and its ground truth as an AVProvider.
func NewScannerAV(scanner *avsim.Scanner, truths map[string]avsim.SampleTruth, at time.Time) AVProvider {
	return &scannerAV{scanner: scanner, truths: truths, at: at}
}

// Pipeline is the configured measurement pipeline.
type Pipeline struct {
	cfg      Config
	analyzer *static.Analyzer
	sandbox  *sandbox.Sandbox
}

// New creates a pipeline from a configuration. Missing optional dependencies
// get sensible defaults.
func New(cfg Config) *Pipeline {
	if cfg.MalwareThreshold <= 0 {
		cfg.MalwareThreshold = avsim.DefaultMalwareThreshold
	}
	if cfg.OSINT == nil {
		cfg.OSINT = osint.NewDefaultStore()
	}
	if cfg.Pools == nil {
		cfg.Pools = pool.NewDirectory(nil)
	}
	if cfg.Rates == nil {
		cfg.Rates = exchange.NewDefaultHistory()
	}
	if cfg.Network == nil {
		cfg.Network = pow.NewMoneroNetwork()
	}
	if cfg.QueryTime.IsZero() {
		cfg.QueryTime = time.Now().UTC()
	}
	p := &Pipeline{
		cfg:      cfg,
		analyzer: static.New(),
		sandbox:  sandbox.New(cfg.Resolver),
	}
	return p
}

// NewFromUniverse wires a pipeline to a generated synthetic ecosystem.
func NewFromUniverse(u *ecosim.Universe) *Pipeline {
	return New(Config{
		Corpus:      u.Corpus,
		AV:          NewScannerAV(u.Scanner, u.SampleTruths, u.Config.QueryTime),
		Resolver:    dnssim.NewResolver(u.Zone),
		Zone:        u.Zone,
		OSINT:       u.OSINT,
		Pools:       u.Pools,
		Network:     u.Network,
		QueryTime:   u.Config.QueryTime,
		GroundTruth: u.GroundTruthBySample,
	})
}

// SampleOutcome records what happened to one corpus sample during the sanity
// checks and analysis.
type SampleOutcome struct {
	SHA256 string
	// Executable reports whether the magic-number check passed.
	Executable bool
	// Whitelisted marks known stock mining tools.
	Whitelisted bool
	// Positives is the AV positives count.
	Positives int
	// IsMalware is the outcome of the malware sanity check.
	IsMalware bool
	// IsMiner reports whether mining indicators were observed.
	IsMiner bool
	// Kept reports whether the sample entered the final dataset.
	Kept bool
	// Record is the extraction record (only meaningful when Kept).
	Record model.Record
}

// Results is the full output of a pipeline run.
type Results struct {
	// Outcomes for every corpus sample, keyed by hash.
	Outcomes map[string]*SampleOutcome
	// Records of the kept samples (miners + ancillaries).
	Records []model.Record
	// MinerRecords / AncillaryRecords split Records by type.
	MinerRecords     []model.Record
	AncillaryRecords []model.Record
	// Aggregation holds the campaign graph and campaigns.
	Aggregation *campaign.Result
	// Campaigns is Aggregation.Campaigns (with profit fields filled).
	Campaigns []*model.Campaign
	// Profits are the per-campaign profit summaries (campaigns with earnings).
	Profits []profit.CampaignProfit
	// Identifiers counts distinct mining identifiers in the dataset.
	Identifiers int
	// TotalXMR is the total XMR attributed to campaigns.
	TotalXMR float64
	// TotalUSD is the dynamic-rate USD equivalent.
	TotalUSD float64
	// CirculationShare is TotalXMR over the circulating supply at QueryTime.
	CirculationShare float64
	// CountsBySource mirrors Table III's source breakdown.
	CountsBySource map[model.Source]int
	// CountsByResource counts records per analysis resource.
	CountsByResource map[model.AnalysisResource]int
	// QueryTime echoes the configured measurement end.
	QueryTime time.Time
}

// Run executes the pipeline end to end.
func (p *Pipeline) Run() (*Results, error) {
	if p.cfg.Corpus == nil {
		return nil, fmt.Errorf("core: no corpus configured")
	}
	res := &Results{
		Outcomes:         map[string]*SampleOutcome{},
		CountsBySource:   map[model.Source]int{},
		CountsByResource: map[model.AnalysisResource]int{},
		QueryTime:        p.cfg.QueryTime,
	}

	// Pass 1: sanity checks, analysis and extraction for every sample.
	hashes := p.cfg.Corpus.Hashes()
	for _, h := range hashes {
		sample, _ := p.cfg.Corpus.Get(h)
		outcome := p.analyzeSample(sample)
		res.Outcomes[h] = outcome
	}

	// Pass 2: the illicit-wallet exception. A wallet is illicit when it
	// appears in a sample that independently passed the malware threshold;
	// samples below the threshold that carry an illicit wallet are kept.
	illicit := map[string]bool{}
	for _, o := range res.Outcomes {
		if o.IsMalware && o.Record.HasIdentifier() {
			illicit[o.Record.User] = true
		}
	}
	for _, o := range res.Outcomes {
		if o.Whitelisted || !o.Executable {
			continue
		}
		if !o.IsMalware && o.Positives > 0 && o.Record.HasIdentifier() && illicit[o.Record.User] {
			o.IsMalware = true
		}
	}

	// Pass 3: decide which samples enter the dataset. Miners are malware
	// with mining indicators; ancillaries are malware connected to miners
	// through the dropper relation.
	minerHashes := map[string]bool{}
	for h, o := range res.Outcomes {
		if o.IsMalware && o.IsMiner {
			minerHashes[h] = true
		}
	}
	related := relatedToMiners(res.Outcomes, minerHashes)
	for h, o := range res.Outcomes {
		if !o.IsMalware {
			continue
		}
		switch {
		case minerHashes[h]:
			o.Kept = true
			if o.Record.Type != model.TypeMiner {
				// Mining indicators without a complete (wallet, pool) pair:
				// keep the sample as an ancillary.
				o.Record.Type = model.TypeAncillary
			}
		case related[h]:
			o.Kept = true
			o.Record.Type = model.TypeAncillary
		}
	}

	// Collect kept records and dataset statistics.
	identifierSet := map[string]bool{}
	for _, h := range hashes {
		o := res.Outcomes[h]
		if !o.Kept {
			continue
		}
		res.Records = append(res.Records, o.Record)
		if o.Record.Type == model.TypeMiner {
			res.MinerRecords = append(res.MinerRecords, o.Record)
		} else {
			res.AncillaryRecords = append(res.AncillaryRecords, o.Record)
		}
		if o.Record.HasIdentifier() {
			identifierSet[o.Record.User] = true
		}
		for _, src := range o.Record.Sources {
			res.CountsBySource[src]++
		}
		for _, r := range o.Record.Resources {
			res.CountsByResource[r]++
		}
	}
	res.Identifiers = len(identifierSet)

	// Aggregation into campaigns.
	agg := p.newAggregator(res)
	inputs := make([]campaign.Input, 0, len(res.Records))
	for _, rec := range res.Records {
		in := campaign.Input{Record: rec}
		if sample, ok := p.cfg.Corpus.Get(rec.SHA256); ok {
			in.Content = sample.Content
		}
		if p.cfg.GroundTruth != nil {
			in.GroundTruthID = p.cfg.GroundTruth[rec.SHA256]
		}
		inputs = append(inputs, in)
	}
	res.Aggregation = agg.Aggregate(inputs)
	res.Campaigns = res.Aggregation.Campaigns

	// Profit analysis.
	collector := profit.NewCollector(p.cfg.Pools, p.cfg.Rates, p.cfg.QueryTime)
	analyzer := profit.NewAnalyzer(collector)
	res.Profits = analyzer.AnalyzeCampaigns(res.Campaigns)
	for _, cp := range res.Profits {
		res.TotalXMR += cp.XMR
		res.TotalUSD += cp.USD
	}
	res.CirculationShare = profit.CirculationShare(res.TotalXMR, p.cfg.Network, p.cfg.QueryTime)
	return res, nil
}

// analyzeSample runs the sanity checks and both analyses over one sample.
func (p *Pipeline) analyzeSample(sample *model.Sample) *SampleOutcome {
	o := &SampleOutcome{SHA256: sample.SHA256}

	stat := p.analyzer.Analyze(sample.Content)
	o.Executable = isExecutableFormat(stat.Format)
	o.Whitelisted = p.cfg.OSINT.IsWhitelistedHash(sample.SHA256)

	var report *model.AVReport
	if p.cfg.AV != nil {
		report = p.cfg.AV.Report(sample.SHA256)
	} else {
		report = &model.AVReport{SHA256: sample.SHA256}
	}
	o.Positives = report.Positives()
	cls := avsim.Classify(report, p.cfg.MalwareThreshold, o.Whitelisted, false)
	o.IsMalware = cls.IsMalware && o.Executable

	dyn := p.sandbox.Run(sample.SHA256, sample.Content)
	rec := extract.Extract(extract.Inputs{Sample: sample, Static: &stat, Dynamic: dyn, AVReport: report})
	o.Record = rec

	// Miner indicators: YARA rules, observed Stratum traffic, a recovered
	// (wallet, pool) pair, known-pool DNS resolutions, or >=threshold
	// engines labeling the sample as a miner.
	o.IsMiner = len(stat.YARAMatches) > 0 ||
		dyn.MiningObserved ||
		rec.Type == model.TypeMiner ||
		p.contactsKnownPool(&rec) ||
		cls.LabeledMiner
	return o
}

// contactsKnownPool reports whether any resolved domain belongs to (or aliases)
// a known mining pool.
func (p *Pipeline) contactsKnownPool(rec *model.Record) bool {
	domains := append([]string{}, rec.DNSRR...)
	if rec.URLPool != "" {
		host := rec.URLPool
		if i := strings.LastIndex(host, ":"); i > 0 {
			host = host[:i]
		}
		domains = append(domains, host)
	}
	for _, d := range domains {
		if d == "" {
			continue
		}
		if _, ok := p.cfg.Pools.PoolForDomain(strings.ToLower(d)); ok {
			return true
		}
	}
	return false
}

func (p *Pipeline) newAggregator(res *Results) *campaign.Aggregator {
	var detector *dnssim.AliasDetector
	if p.cfg.Zone != nil {
		detector = dnssim.NewAliasDetector(p.cfg.Zone, p.cfg.Pools.DomainMap())
	}
	cfg := campaign.DefaultConfig(p.cfg.OSINT, detector, p.cfg.Pools.DomainMap())
	if p.cfg.Features != nil {
		cfg.Features = *p.cfg.Features
	}
	if p.cfg.FuzzyThreshold > 0 {
		cfg.FuzzyThreshold = p.cfg.FuzzyThreshold
	}
	// PPI enrichment from AV labels.
	cfg.AVLabels = map[string][]string{}
	if p.cfg.AV != nil {
		for h, o := range res.Outcomes {
			if !o.Kept {
				continue
			}
			rep := p.cfg.AV.Report(h)
			var labels []string
			for _, v := range rep.Verdicts {
				if v.Detected && v.Label != "" {
					labels = append(labels, v.Label)
				}
			}
			if len(labels) > 0 {
				cfg.AVLabels[h] = labels
			}
		}
	}
	return campaign.New(cfg)
}

func isExecutableFormat(f model.ExecutableFormat) bool {
	switch f {
	case model.FormatPE, model.FormatELF, model.FormatJAR:
		return true
	default:
		return false
	}
}

// relatedToMiners returns the set of sample hashes connected to a miner via
// the parent/dropped relation (in either direction).
func relatedToMiners(outcomes map[string]*SampleOutcome, miners map[string]bool) map[string]bool {
	related := map[string]bool{}
	// Build adjacency from parents and dropped hashes.
	adj := map[string][]string{}
	addEdge := func(a, b string) {
		if a == "" || b == "" || a == b {
			return
		}
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for h, o := range outcomes {
		for _, parent := range o.Record.Parents {
			addEdge(h, parent)
		}
		for _, child := range o.Record.Dropped {
			addEdge(h, child)
		}
	}
	// BFS from every miner.
	queue := make([]string, 0, len(miners))
	for m := range miners {
		queue = append(queue, m)
	}
	visited := map[string]bool{}
	for _, m := range queue {
		visited[m] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if visited[next] {
				continue
			}
			visited[next] = true
			if !miners[next] {
				related[next] = true
			}
			queue = append(queue, next)
		}
	}
	return related
}

// ValidationStats quantifies aggregation quality against the simulator's
// ground truth: how many produced campaigns are pure (all samples from one
// ground-truth campaign), and how many ground-truth campaigns were split
// across several produced campaigns.
type ValidationStats struct {
	CampaignsWithSamples int
	PureCampaigns        int
	MergedCampaigns      int // produced campaigns containing >1 ground-truth campaign
	GroundTruthTotal     int
	GroundTruthSplit     int // ground-truth campaigns spread over >1 produced campaign
}

// Purity returns the fraction of produced campaigns that are pure.
func (v ValidationStats) Purity() float64 {
	if v.CampaignsWithSamples == 0 {
		return 0
	}
	return float64(v.PureCampaigns) / float64(v.CampaignsWithSamples)
}

// Validate compares the aggregation against the ground truth carried in the
// campaigns' GroundTruthIDs.
func Validate(campaigns []*model.Campaign) ValidationStats {
	var v ValidationStats
	gtToCampaigns := map[int]map[int]bool{}
	for _, c := range campaigns {
		if len(c.Samples)+len(c.Ancillaries) == 0 {
			continue
		}
		if len(c.GroundTruthIDs) == 0 {
			continue
		}
		v.CampaignsWithSamples++
		if len(c.GroundTruthIDs) == 1 {
			v.PureCampaigns++
		} else {
			v.MergedCampaigns++
		}
		for _, gt := range c.GroundTruthIDs {
			if gtToCampaigns[gt] == nil {
				gtToCampaigns[gt] = map[int]bool{}
			}
			gtToCampaigns[gt][c.ID] = true
		}
	}
	v.GroundTruthTotal = len(gtToCampaigns)
	for _, set := range gtToCampaigns {
		if len(set) > 1 {
			v.GroundTruthSplit++
		}
	}
	return v
}

// SortCampaignsByEarnings returns the campaigns sorted by XMR mined, highest
// first (Table VIII order).
func SortCampaignsByEarnings(campaigns []*model.Campaign) []*model.Campaign {
	out := append([]*model.Campaign(nil), campaigns...)
	sort.Slice(out, func(i, j int) bool { return out[i].XMRMined > out[j].XMRMined })
	return out
}

// AllWallets returns every distinct wallet identifier across the records.
func AllWallets(records []model.Record) []string {
	set := map[string]bool{}
	for _, r := range records {
		if r.HasIdentifier() && wallet.IsWallet(r.User) {
			set[r.User] = true
		}
	}
	out := make([]string, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}
