// Package core implements the end-to-end measurement pipeline of the paper
// (Figure 3): feed consolidation, sanity checks ("is it malware? is it a
// miner? is it an executable?"), static and dynamic analysis, extraction of
// wallets and pools, campaign aggregation, enrichment, and profit analysis.
//
// Since the streaming refactor the analysis stages live in internal/stream;
// Pipeline is the batch front-end: it drives the same staged dataflow over a
// consolidated corpus and returns the assembled Results in one call. Batch
// runs default to a single shard, so `Run` remains the deterministic
// single-threaded reference the streaming engine is validated against; set
// Config.Shards > 1 to run the batch concurrently.
//
// The pipeline is agnostic to whether its inputs come from the synthetic
// ecosystem (internal/ecosim) or from real feeds: it consumes the Feed, AV,
// DNS, OSINT and pool-directory interfaces defined by the substrate packages.
// NewFromUniverse wires it to a generated universe in one call.
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"cryptomining/internal/avsim"
	"cryptomining/internal/campaign"
	"cryptomining/internal/dnssim"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/exchange"
	"cryptomining/internal/feeds"
	"cryptomining/internal/model"
	"cryptomining/internal/osint"
	"cryptomining/internal/pool"
	"cryptomining/internal/pow"
	"cryptomining/internal/stream"
	"cryptomining/internal/wallet"
)

// AVProvider supplies antivirus reports for samples.
type AVProvider = stream.AVProvider

// SampleOutcome records what happened to one corpus sample during the sanity
// checks and analysis.
type SampleOutcome = stream.SampleOutcome

// Results is the full output of a pipeline run.
type Results = stream.Results

// Config wires the pipeline's dependencies.
type Config struct {
	// Corpus is the consolidated sample set to analyze.
	Corpus *feeds.Corpus
	// AV supplies multi-engine reports.
	AV AVProvider
	// MalwareThreshold is the minimum number of AV positives for the
	// "is it malware?" check (default 10).
	MalwareThreshold int
	// Resolver resolves the domains samples contact (and CNAME aliases).
	Resolver *dnssim.Resolver
	// Zone backs the passive-DNS lookups of the alias detector.
	Zone *dnssim.Zone
	// OSINT supplies IoCs, donation wallets, PPI families and stock tools.
	OSINT *osint.Store
	// Pools is the directory of known pools, used for endpoint attribution
	// and profit collection.
	Pools *pool.Directory
	// Rates converts XMR payments to USD.
	Rates *exchange.History
	// Network is the PoW model used for the circulating-supply estimate.
	Network *pow.Network
	// QueryTime is the measurement end time (pool queries, activity checks).
	QueryTime time.Time
	// GroundTruth optionally maps sample hashes to ground-truth campaign IDs
	// for aggregation validation.
	GroundTruth map[string]int
	// Features selects the aggregation grouping features (default: all).
	Features *campaign.Features
	// FuzzyThreshold overrides the stock-tool fuzzy-hash distance threshold.
	FuzzyThreshold float64
	// Shards is the number of concurrent analysis chains driven by the
	// underlying streaming engine. The default of 1 keeps batch runs
	// single-threaded and bit-reproducible run over run.
	Shards int
	// QueueDepth bounds the streaming engine's channels (default 64).
	QueueDepth int
}

// scannerAV adapts the avsim scanner + ground truth to AVProvider.
type scannerAV struct {
	scanner *avsim.Scanner
	truths  map[string]avsim.SampleTruth
	at      time.Time
}

// Report implements AVProvider.
func (s *scannerAV) Report(sha string) *model.AVReport {
	truth := s.truths[sha]
	return s.scanner.Scan(sha, truth, s.at)
}

// NewScannerAV wraps an avsim scanner and its ground truth as an AVProvider.
func NewScannerAV(scanner *avsim.Scanner, truths map[string]avsim.SampleTruth, at time.Time) AVProvider {
	return &scannerAV{scanner: scanner, truths: truths, at: at}
}

// Pipeline is the configured measurement pipeline.
type Pipeline struct {
	cfg Config
}

// New creates a pipeline from a configuration. Missing optional dependencies
// get sensible defaults (applied by the streaming engine at run time); the
// query time is pinned here so repeated Run calls on one pipeline measure at
// the same instant and stay reproducible.
func New(cfg Config) *Pipeline {
	if cfg.QueryTime.IsZero() {
		cfg.QueryTime = time.Now().UTC()
	}
	return &Pipeline{cfg: cfg}
}

// NewFromUniverse wires a pipeline to a generated synthetic ecosystem.
func NewFromUniverse(u *ecosim.Universe) *Pipeline {
	return New(Config{
		Corpus:      u.Corpus,
		AV:          NewScannerAV(u.Scanner, u.SampleTruths, u.Config.QueryTime),
		Resolver:    dnssim.NewResolver(u.Zone),
		Zone:        u.Zone,
		OSINT:       u.OSINT,
		Pools:       u.Pools,
		Network:     u.Network,
		QueryTime:   u.Config.QueryTime,
		GroundTruth: u.GroundTruthBySample,
	})
}

// StreamConfig exposes the streaming-engine configuration equivalent to this
// pipeline (everything but the corpus, which streams in via Submit).
func (p *Pipeline) StreamConfig() stream.Config {
	shards := p.cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	return stream.Config{
		AV:               p.cfg.AV,
		MalwareThreshold: p.cfg.MalwareThreshold,
		Resolver:         p.cfg.Resolver,
		Zone:             p.cfg.Zone,
		OSINT:            p.cfg.OSINT,
		Pools:            p.cfg.Pools,
		Rates:            p.cfg.Rates,
		Network:          p.cfg.Network,
		QueryTime:        p.cfg.QueryTime,
		GroundTruth:      p.cfg.GroundTruth,
		Features:         p.cfg.Features,
		FuzzyThreshold:   p.cfg.FuzzyThreshold,
		Shards:           shards,
		QueueDepth:       p.cfg.QueueDepth,
	}
}

// Run executes the pipeline end to end.
func (p *Pipeline) Run() (*Results, error) {
	return p.RunContext(context.Background())
}

// RunContext executes the pipeline end to end, feeding the corpus through the
// streaming engine and waiting for the final results.
func (p *Pipeline) RunContext(ctx context.Context) (*Results, error) {
	if p.cfg.Corpus == nil {
		return nil, fmt.Errorf("core: no corpus configured")
	}
	eng := stream.New(p.StreamConfig())
	eng.Start(ctx)
	for _, h := range p.cfg.Corpus.Hashes() {
		sample, ok := p.cfg.Corpus.Get(h)
		if !ok {
			continue
		}
		if err := eng.Submit(ctx, sample); err != nil {
			return nil, err
		}
	}
	return eng.Finish(ctx)
}

// ValidationStats quantifies aggregation quality against the simulator's
// ground truth: how many produced campaigns are pure (all samples from one
// ground-truth campaign), and how many ground-truth campaigns were split
// across several produced campaigns.
type ValidationStats struct {
	CampaignsWithSamples int
	PureCampaigns        int
	MergedCampaigns      int // produced campaigns containing >1 ground-truth campaign
	GroundTruthTotal     int
	GroundTruthSplit     int // ground-truth campaigns spread over >1 produced campaign
}

// Purity returns the fraction of produced campaigns that are pure.
func (v ValidationStats) Purity() float64 {
	if v.CampaignsWithSamples == 0 {
		return 0
	}
	return float64(v.PureCampaigns) / float64(v.CampaignsWithSamples)
}

// Validate compares the aggregation against the ground truth carried in the
// campaigns' GroundTruthIDs.
func Validate(campaigns []*model.Campaign) ValidationStats {
	var v ValidationStats
	gtToCampaigns := map[int]map[int]bool{}
	for _, c := range campaigns {
		if len(c.Samples)+len(c.Ancillaries) == 0 {
			continue
		}
		if len(c.GroundTruthIDs) == 0 {
			continue
		}
		v.CampaignsWithSamples++
		if len(c.GroundTruthIDs) == 1 {
			v.PureCampaigns++
		} else {
			v.MergedCampaigns++
		}
		for _, gt := range c.GroundTruthIDs {
			if gtToCampaigns[gt] == nil {
				gtToCampaigns[gt] = map[int]bool{}
			}
			gtToCampaigns[gt][c.ID] = true
		}
	}
	v.GroundTruthTotal = len(gtToCampaigns)
	for _, set := range gtToCampaigns {
		if len(set) > 1 {
			v.GroundTruthSplit++
		}
	}
	return v
}

// SortCampaignsByEarnings returns the campaigns sorted by XMR mined, highest
// first (Table VIII order).
func SortCampaignsByEarnings(campaigns []*model.Campaign) []*model.Campaign {
	out := append([]*model.Campaign(nil), campaigns...)
	sort.Slice(out, func(i, j int) bool { return out[i].XMRMined > out[j].XMRMined })
	return out
}

// AllWallets returns every distinct wallet identifier across the records.
func AllWallets(records []model.Record) []string {
	set := map[string]bool{}
	for _, r := range records {
		if r.HasIdentifier() && wallet.IsWallet(r.User) {
			set[r.User] = true
		}
	}
	out := make([]string, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}
