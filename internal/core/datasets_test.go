package core

import (
	"strings"
	"testing"

	"cryptomining/internal/ecosim"
	"cryptomining/internal/model"
	"cryptomining/internal/pow"
	"cryptomining/internal/profit"
)

func TestDatasetSummaryTable(t *testing.T) {
	tbl := DatasetSummary(testResults)
	out := tbl.String()
	for _, want := range []string{"ALL EXECUTABLES", "Miner Binaries", "Ancillary Binaries", "VirusTotal", "Sandbox Analysis"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III output missing %q", want)
		}
	}
}

func TestCurrencyBreakdownTable(t *testing.T) {
	tbl := CurrencyBreakdown(testResults)
	out := tbl.String()
	if !strings.Contains(out, string(model.CurrencyMonero)) {
		t.Error("Table IV should list XMR campaigns")
	}
	if !strings.Contains(out, string(model.CurrencyBitcoin)) {
		t.Error("Table IV should list BTC campaigns")
	}
	// Monero must rank first (most campaigns).
	lines := strings.Split(out, "\n")
	firstDataLine := lines[3]
	if !strings.HasPrefix(firstDataLine, string(model.CurrencyMonero)) {
		t.Errorf("first currency row = %q, want XMR", firstDataLine)
	}
}

func TestSamplesPerYearTable(t *testing.T) {
	tbl := SamplesPerYear(testResults)
	out := tbl.String()
	if !strings.Contains(out, "2017") || !strings.Contains(out, "TOTAL") {
		t.Errorf("Table IV (right) output:\n%s", out)
	}
	// XMR totals should exceed BTC totals (Monero dominance).
	xmrTotal, btcTotal := 0, 0
	for _, rec := range testResults.MinerRecords {
		switch rec.Currency {
		case model.CurrencyMonero:
			xmrTotal++
		case model.CurrencyBitcoin:
			btcTotal++
		}
	}
	if xmrTotal <= btcTotal {
		t.Errorf("XMR samples (%d) should outnumber BTC samples (%d)", xmrTotal, btcTotal)
	}
}

func TestMalwareReuseTable(t *testing.T) {
	tbl := MalwareReuse(testResults)
	if len(tbl.Rows) < 2 {
		t.Errorf("Table V rows = %d, want the pre-2014 reuse samples", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[1] != "2012" && row[1] != "2013" {
			t.Errorf("Table V row year = %q", row[1])
		}
	}
}

func TestHostingDomainsTable(t *testing.T) {
	tbl := HostingDomains(testResults, 10)
	if len(tbl.Rows) == 0 {
		t.Fatal("Table VI has no rows")
	}
	out := tbl.String()
	if !strings.Contains(out, "github.com") {
		t.Error("GitHub should appear among hosting domains")
	}
}

func TestCampaignCDFs(t *testing.T) {
	samples, wallets, earnings := CampaignCDFs(testResults)
	if len(samples) == 0 || len(wallets) == 0 || len(earnings) == 0 {
		t.Fatal("CDFs should be non-empty")
	}
	// Most campaigns earn little. The paper reports 99% of campaigns below
	// 100 XMR; at this reduced scale the synthetic ecosystem has
	// proportionally fewer dust campaigns, so assert the weaker shape
	// properties: a clear majority below 1,000 XMR and a heavy tail (the
	// maximum far above the median).
	if frac := profit.FractionAtOrBelow(earnings, 1000); frac < 0.55 {
		t.Errorf("fraction of campaigns below 1,000 XMR = %v, expected a clear majority", frac)
	}
	if frac := profit.FractionAtOrBelow(earnings, 100); frac < 0.2 {
		t.Errorf("fraction of campaigns below 100 XMR = %v, expected a substantial share", frac)
	}
	// CDFs end at 1.
	if samples[len(samples)-1].Fraction != 1 || earnings[len(earnings)-1].Fraction != 1 {
		t.Error("CDFs should reach 1.0")
	}
}

func TestPoolsPerCampaignTable(t *testing.T) {
	tbl := PoolsPerCampaign(testResults)
	if len(tbl.Rows) == 0 {
		t.Fatal("Figure 5 table empty")
	}
	out := tbl.String()
	if !strings.Contains(out, "pools") {
		t.Errorf("Figure 5 output:\n%s", out)
	}
}

func TestPoolPopularityTable(t *testing.T) {
	ranking := PoolPopularity(testResults)
	if len(ranking) < 3 {
		t.Fatalf("pool ranking = %d pools", len(ranking))
	}
	for i := 1; i < len(ranking); i++ {
		if ranking[i].XMR > ranking[i-1].XMR {
			t.Fatal("ranking not sorted")
		}
	}
	tbl := PoolPopularityTable(testResults)
	if !strings.Contains(tbl.String(), ranking[0].Pool) {
		t.Error("top pool missing from table")
	}
}

func TestTopCampaignsTable(t *testing.T) {
	tbl := TopCampaignsTable(testResults, 10)
	out := tbl.String()
	if !strings.Contains(out, "TOP-") || !strings.Contains(out, "ALL-") {
		t.Errorf("Table VIII output:\n%s", out)
	}
	if len(tbl.Rows) < 5 {
		t.Errorf("Table VIII rows = %d", len(tbl.Rows))
	}
}

func TestMiningToolsTable(t *testing.T) {
	tbl := MiningToolsTable(testResults)
	if len(tbl.Rows) == 0 {
		t.Fatal("Table IX empty — stock tool attribution produced nothing")
	}
	out := tbl.String()
	if !strings.Contains(out, "xmrig") && !strings.Contains(out, "claymore") {
		t.Errorf("Table IX should mention xmrig or claymore:\n%s", out)
	}
}

func TestPackersTable(t *testing.T) {
	tbl := PackersTable(testResults)
	out := tbl.String()
	if !strings.Contains(out, "UPX") {
		t.Error("Table X should include UPX")
	}
	if !strings.Contains(out, "Not packed") {
		t.Error("Table X should include the not-packed row")
	}
}

func TestInfrastructureByProfitTable(t *testing.T) {
	tbl := InfrastructureByProfit(testResults)
	out := tbl.String()
	for _, want := range []string{"#Campaigns", "PPI", "CNAMEs", "Proxies", "Start: 2017", "Years: 0", "ALL"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table XI missing %q", want)
		}
	}
}

func TestTopWalletsTable(t *testing.T) {
	u := testUniverse
	collector := profit.NewCollector(u.Pools, nil, u.Config.QueryTime)
	tbl := TopWalletsTable(testResults, collector, 10)
	if len(tbl.Rows) < 3 {
		t.Errorf("Table XIV rows = %d", len(tbl.Rows))
	}
}

func TestEmailsPerPoolTable(t *testing.T) {
	u := testUniverse
	poolFor := func(endpoint string) string {
		host := endpoint
		if i := strings.LastIndex(host, ":"); i > 0 {
			host = host[:i]
		}
		if p, ok := u.Pools.PoolForDomain(host); ok {
			return p.Name
		}
		return ""
	}
	tbl := EmailsPerPool(testResults, poolFor)
	out := tbl.String()
	if !strings.Contains(out, "minergate") {
		t.Errorf("Table XV should be dominated by minergate:\n%s", out)
	}
	if !strings.Contains(out, "TOTAL") {
		t.Error("Table XV should include a total row")
	}
}

func TestPaymentTimeline(t *testing.T) {
	// Find the recovered campaign for the Freebuf-like case study.
	var target *model.Campaign
	for _, c := range testResults.Campaigns {
		for _, gt := range c.GroundTruthIDs {
			if gt == ecosim.FreebufCampaignID && (target == nil || c.XMRMined > target.XMRMined) {
				target = c
			}
		}
	}
	if target == nil {
		t.Fatal("freebuf-like campaign not found")
	}
	tl := BuildPaymentTimeline(testResults, target.ID, pow.ForkDates(pow.MoneroEpochs))
	if len(tl.Wallets) == 0 {
		t.Fatal("timeline has no wallets")
	}
	if len(tl.ForkDates) != 3 {
		t.Errorf("fork dates = %d", len(tl.ForkDates))
	}
	s := tl.Series(tl.Wallets[0])
	if len(s.Points) == 0 {
		t.Error("wallet series empty")
	}
	// Months must be sorted.
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Label < s.Points[i-1].Label {
			t.Fatal("timeline months not sorted")
		}
	}
}

func TestRelatedWorkTable(t *testing.T) {
	tbl := RelatedWorkTable(testResults)
	out := tbl.String()
	if !strings.Contains(out, "Huang et al.") || !strings.Contains(out, "This reproduction") {
		t.Errorf("Table XII output:\n%s", out)
	}
}
