package forums

import (
	"testing"
	"time"

	"cryptomining/internal/model"
)

func TestIsMiningThread(t *testing.T) {
	mining := Thread{Title: "[SELL] silent monero miner with proxy support"}
	if !IsMiningThread(mining) {
		t.Error("miner thread should be classified as mining")
	}
	notMining := Thread{Title: "selling fresh cc dumps", Body: "good prices"}
	if IsMiningThread(notMining) {
		t.Error("carding thread should not be classified as mining")
	}
}

func TestCurrenciesMentioned(t *testing.T) {
	th := Thread{Title: "best pool for monero xmr mining", Body: "also thinking about zcash"}
	got := CurrenciesMentioned(th)
	found := map[model.Currency]bool{}
	for _, c := range got {
		found[c] = true
	}
	if !found[model.CurrencyMonero] || !found[model.CurrencyZcash] {
		t.Errorf("CurrenciesMentioned = %v", got)
	}
	if found[model.CurrencyBitcoin] {
		t.Error("bitcoin should not be detected")
	}
	if got := CurrenciesMentioned(Thread{Title: "booter recommendations"}); len(got) != 0 {
		t.Errorf("non-crypto thread mentions = %v", got)
	}
}

func TestComputeTrendSmallCorpus(t *testing.T) {
	threads := []Thread{
		{Title: "bitcoin mining rig", Created: time.Date(2013, 3, 1, 0, 0, 0, 0, time.UTC)},
		{Title: "bitcoin miner for sale", Created: time.Date(2013, 5, 1, 0, 0, 0, 0, time.UTC)},
		{Title: "monero silent miner", Created: time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)},
		{Title: "monero mining pool no ban", Created: time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)},
		{Title: "bitcoin mining still worth it?", Created: time.Date(2018, 4, 1, 0, 0, 0, 0, time.UTC)},
		{Title: "selling cc dumps", Created: time.Date(2018, 4, 2, 0, 0, 0, 0, time.UTC)}, // not mining
	}
	tr := ComputeTrend(threads)
	if tr.TotalByYear[2013] != 2 || tr.TotalByYear[2018] != 3 {
		t.Errorf("totals = %v", tr.TotalByYear)
	}
	if got := tr.Share(2013, model.CurrencyBitcoin); got != 1.0 {
		t.Errorf("2013 BTC share = %v, want 1.0", got)
	}
	if got := tr.Share(2018, model.CurrencyMonero); got < 0.6 || got > 0.7 {
		t.Errorf("2018 XMR share = %v, want 2/3", got)
	}
	if tr.DominantCurrency(2013) != model.CurrencyBitcoin {
		t.Error("2013 dominant should be Bitcoin")
	}
	if tr.DominantCurrency(2018) != model.CurrencyMonero {
		t.Error("2018 dominant should be Monero")
	}
	years := tr.Years()
	if len(years) != 2 || years[0] != 2013 || years[1] != 2018 {
		t.Errorf("Years = %v", years)
	}
	if tr.Share(2015, model.CurrencyMonero) != 0 {
		t.Error("missing year should have zero share")
	}
}

func TestGenerateCorpusShape(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	threads := Generate(cfg)
	wantYears := cfg.LastYear - cfg.FirstYear + 1
	if len(threads) != wantYears*cfg.ThreadsPerYear {
		t.Fatalf("generated %d threads, want %d", len(threads), wantYears*cfg.ThreadsPerYear)
	}
	for _, th := range threads {
		if th.Created.Year() < cfg.FirstYear || th.Created.Year() > cfg.LastYear {
			t.Fatalf("thread year %d outside range", th.Created.Year())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GeneratorConfig{Seed: 7, ThreadsPerYear: 50, FirstYear: 2014, LastYear: 2016})
	b := Generate(GeneratorConfig{Seed: 7, ThreadsPerYear: 50, FirstYear: 2014, LastYear: 2016})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Title != b[i].Title || !a[i].Created.Equal(b[i].Created) {
			t.Fatalf("thread %d differs between runs", i)
		}
	}
}

func TestGeneratedTrendMatchesFigure1Shape(t *testing.T) {
	// The headline qualitative claims of Figure 1:
	//  - Bitcoin is the dominant discussed currency in 2012-2013.
	//  - Monero overtakes and is the most prevalent currency in 2018.
	//  - Monero's share rises monotonically (roughly) from 2014 to 2018.
	threads := Generate(DefaultGeneratorConfig())
	tr := ComputeTrend(threads)

	if got := tr.DominantCurrency(2012); got != model.CurrencyBitcoin {
		t.Errorf("2012 dominant = %v, want Bitcoin", got)
	}
	if got := tr.DominantCurrency(2013); got != model.CurrencyBitcoin {
		t.Errorf("2013 dominant = %v, want Bitcoin", got)
	}
	if got := tr.DominantCurrency(2018); got != model.CurrencyMonero {
		t.Errorf("2018 dominant = %v, want Monero", got)
	}
	if tr.Share(2018, model.CurrencyMonero) <= tr.Share(2015, model.CurrencyMonero) {
		t.Error("Monero share should grow between 2015 and 2018")
	}
	if tr.Share(2018, model.CurrencyBitcoin) >= tr.Share(2012, model.CurrencyBitcoin) {
		t.Error("Bitcoin share should decline between 2012 and 2018")
	}
	// The 2013-2014 Litecoin/Dogecoin experimentation is visible.
	if tr.Share(2013, model.CurrencyDogecoin)+tr.Share(2014, model.CurrencyDogecoin) <=
		tr.Share(2017, model.CurrencyDogecoin)+tr.Share(2018, model.CurrencyDogecoin) {
		t.Error("Dogecoin discussion should peak around 2013-2014")
	}
}

func TestGenerateConfigEdgeCases(t *testing.T) {
	// Inverted years are swapped, non-positive thread count defaults.
	threads := Generate(GeneratorConfig{Seed: 1, ThreadsPerYear: 0, FirstYear: 2016, LastYear: 2015})
	if len(threads) == 0 {
		t.Fatal("generator should still produce threads with defaulted config")
	}
	years := map[int]bool{}
	for _, th := range threads {
		years[th.Created.Year()] = true
	}
	if !years[2015] || !years[2016] {
		t.Errorf("years covered = %v", years)
	}
}

func BenchmarkComputeTrend(b *testing.B) {
	threads := Generate(DefaultGeneratorConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeTrend(threads)
	}
}
