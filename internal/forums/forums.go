// Package forums models the underground-forum signal the paper uses for
// context (§II and Figure 1): a corpus of discussion threads and a trend
// classifier that counts, per year, the share of crypto-mining threads
// mentioning each cryptocurrency.
//
// The real CrimeBB dataset cannot be redistributed, so the corpus here is
// synthetic: a generator produces threads whose per-year currency mix follows
// the qualitative trend the paper reports (Bitcoin dominant early, a brief
// Dogecoin/Litecoin experiment around 2013-2014, Monero dominant from 2017).
// The classifier itself — keyword matching over titles and bodies, yearly
// normalization — is the part of the pipeline that would run unchanged on the
// real data.
package forums

import (
	"math/rand"
	"sort"
	"strings"
	"time"

	"cryptomining/internal/model"
)

// Thread is one forum discussion thread.
type Thread struct {
	ID      int
	Forum   string
	Title   string
	Body    string
	Created time.Time
}

// currencyKeywords maps each tracked currency to the keywords that indicate a
// thread discusses mining it.
var currencyKeywords = map[model.Currency][]string{
	model.CurrencyBitcoin:  {"bitcoin", "btc"},
	model.CurrencyMonero:   {"monero", "xmr", "cryptonight"},
	model.CurrencyZcash:    {"zcash", "zec"},
	model.CurrencyEthereum: {"ethereum", "eth ", "ether "},
	model.CurrencyLitecoin: {"litecoin", "ltc"},
	model.CurrencyDogecoin: {"dogecoin", "doge"},
}

// miningKeywords indicate that a thread is about mining at all.
var miningKeywords = []string{"mining", "miner", "hashrate", "pool", "botnet mine", "silent miner"}

// TrackedCurrencies returns the currencies Figure 1 tracks, in display order.
func TrackedCurrencies() []model.Currency {
	return []model.Currency{
		model.CurrencyBitcoin, model.CurrencyMonero, model.CurrencyZcash,
		model.CurrencyEthereum, model.CurrencyLitecoin, model.CurrencyDogecoin,
	}
}

// IsMiningThread reports whether a thread discusses crypto-mining.
func IsMiningThread(t Thread) bool {
	text := strings.ToLower(t.Title + " " + t.Body)
	for _, kw := range miningKeywords {
		if strings.Contains(text, kw) {
			return true
		}
	}
	return false
}

// CurrenciesMentioned returns the tracked currencies a thread mentions.
func CurrenciesMentioned(t Thread) []model.Currency {
	text := strings.ToLower(t.Title + " " + t.Body)
	var out []model.Currency
	for _, c := range TrackedCurrencies() {
		for _, kw := range currencyKeywords[c] {
			if strings.Contains(text, kw) {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// TrendPoint is the share of mining threads mentioning a currency in a year.
type TrendPoint struct {
	Year     int
	Currency model.Currency
	// Threads is the absolute number of mining threads mentioning the currency.
	Threads int
	// Share is Threads divided by all mining threads that year.
	Share float64
}

// Trend is the Figure 1 dataset: per-year, per-currency thread shares.
type Trend struct {
	Points []TrendPoint
	// TotalByYear is the number of mining threads per year.
	TotalByYear map[int]int
}

// Share returns the share for (year, currency), or 0.
func (tr *Trend) Share(year int, c model.Currency) float64 {
	for _, p := range tr.Points {
		if p.Year == year && p.Currency == c {
			return p.Share
		}
	}
	return 0
}

// Years returns the years covered, sorted.
func (tr *Trend) Years() []int {
	var out []int
	for y := range tr.TotalByYear {
		out = append(out, y)
	}
	sort.Ints(out)
	return out
}

// DominantCurrency returns the currency with the largest share in a year.
func (tr *Trend) DominantCurrency(year int) model.Currency {
	best := model.CurrencyUnknown
	bestShare := -1.0
	for _, c := range TrackedCurrencies() {
		if s := tr.Share(year, c); s > bestShare {
			best, bestShare = c, s
		}
	}
	return best
}

// ComputeTrend classifies a corpus of threads into the Figure 1 dataset.
func ComputeTrend(threads []Thread) *Trend {
	counts := map[int]map[model.Currency]int{}
	totals := map[int]int{}
	for _, t := range threads {
		if !IsMiningThread(t) {
			continue
		}
		year := t.Created.Year()
		totals[year]++
		if counts[year] == nil {
			counts[year] = map[model.Currency]int{}
		}
		for _, c := range CurrenciesMentioned(t) {
			counts[year][c]++
		}
	}
	tr := &Trend{TotalByYear: totals}
	var years []int
	for y := range totals {
		years = append(years, y)
	}
	sort.Ints(years)
	for _, y := range years {
		for _, c := range TrackedCurrencies() {
			n := counts[y][c]
			share := 0.0
			if totals[y] > 0 {
				share = float64(n) / float64(totals[y])
			}
			tr.Points = append(tr.Points, TrendPoint{Year: y, Currency: c, Threads: n, Share: share})
		}
	}
	return tr
}

// GeneratorConfig controls the synthetic corpus.
type GeneratorConfig struct {
	Seed           int64
	ThreadsPerYear int
	FirstYear      int
	LastYear       int
}

// DefaultGeneratorConfig covers 2012-2018 as in Figure 1.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{Seed: 1, ThreadsPerYear: 400, FirstYear: 2012, LastYear: 2018}
}

// yearlyMix returns the per-currency probability mix for a year, following
// the qualitative trend of Figure 1: Bitcoin dominant and declining, a brief
// Litecoin/Dogecoin phase around 2013-2014, Monero rising from 2016 and
// dominant by 2018, with Zcash and Ethereum as minor constants.
func yearlyMix(year int) map[model.Currency]float64 {
	switch {
	case year <= 2012:
		return map[model.Currency]float64{
			model.CurrencyBitcoin: 0.42, model.CurrencyLitecoin: 0.06, model.CurrencyDogecoin: 0.01,
			model.CurrencyMonero: 0.0, model.CurrencyZcash: 0.0, model.CurrencyEthereum: 0.0,
		}
	case year == 2013:
		return map[model.Currency]float64{
			model.CurrencyBitcoin: 0.38, model.CurrencyLitecoin: 0.12, model.CurrencyDogecoin: 0.08,
			model.CurrencyMonero: 0.01, model.CurrencyZcash: 0.0, model.CurrencyEthereum: 0.0,
		}
	case year == 2014:
		return map[model.Currency]float64{
			model.CurrencyBitcoin: 0.32, model.CurrencyLitecoin: 0.10, model.CurrencyDogecoin: 0.09,
			model.CurrencyMonero: 0.04, model.CurrencyZcash: 0.0, model.CurrencyEthereum: 0.01,
		}
	case year == 2015:
		return map[model.Currency]float64{
			model.CurrencyBitcoin: 0.28, model.CurrencyLitecoin: 0.06, model.CurrencyDogecoin: 0.04,
			model.CurrencyMonero: 0.08, model.CurrencyZcash: 0.01, model.CurrencyEthereum: 0.03,
		}
	case year == 2016:
		return map[model.Currency]float64{
			model.CurrencyBitcoin: 0.25, model.CurrencyLitecoin: 0.04, model.CurrencyDogecoin: 0.02,
			model.CurrencyMonero: 0.15, model.CurrencyZcash: 0.04, model.CurrencyEthereum: 0.06,
		}
	case year == 2017:
		return map[model.Currency]float64{
			model.CurrencyBitcoin: 0.22, model.CurrencyLitecoin: 0.03, model.CurrencyDogecoin: 0.01,
			model.CurrencyMonero: 0.28, model.CurrencyZcash: 0.06, model.CurrencyEthereum: 0.09,
		}
	default: // 2018+
		return map[model.Currency]float64{
			model.CurrencyBitcoin: 0.18, model.CurrencyLitecoin: 0.02, model.CurrencyDogecoin: 0.01,
			model.CurrencyMonero: 0.37, model.CurrencyZcash: 0.05, model.CurrencyEthereum: 0.08,
		}
	}
}

// threadTemplates are title fragments used to fabricate thread text.
var threadTemplates = []string{
	"[SELL] silent %s miner, idle mining, anti task manager",
	"best pool for %s mining with botnet?",
	"how to setup %s mining proxy to avoid ban",
	"%s miner builder $13 - custom pool and wallet",
	"free %s miner, 2%% dev fee to cover coding time",
	"looking for partners: private %s pool, no ban for multiple connections",
	"crypter for %s miner - FUD guaranteed 30 days",
	"my %s mining botnet stats - 2k bots is the sweet spot",
}

// nonMiningTemplates fabricate the unrelated background threads.
var nonMiningTemplates = []string{
	"selling fresh cc dumps",
	"best VPN for carding?",
	"booter / stresser recommendations",
	"crypter coding tutorial part 3",
	"account shop opening - cheap prices",
}

var currencyNames = map[model.Currency]string{
	model.CurrencyBitcoin:  "bitcoin",
	model.CurrencyMonero:   "monero xmr",
	model.CurrencyZcash:    "zcash",
	model.CurrencyEthereum: "ethereum",
	model.CurrencyLitecoin: "litecoin",
	model.CurrencyDogecoin: "dogecoin",
}

// Generate fabricates a synthetic forum corpus.
func Generate(cfg GeneratorConfig) []Thread {
	if cfg.ThreadsPerYear <= 0 {
		cfg.ThreadsPerYear = 400
	}
	if cfg.LastYear < cfg.FirstYear {
		cfg.FirstYear, cfg.LastYear = cfg.LastYear, cfg.FirstYear
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []Thread
	id := 0
	for year := cfg.FirstYear; year <= cfg.LastYear; year++ {
		mix := yearlyMix(year)
		for i := 0; i < cfg.ThreadsPerYear; i++ {
			id++
			created := time.Date(year, time.Month(1+rng.Intn(12)), 1+rng.Intn(28), rng.Intn(24), 0, 0, 0, time.UTC)
			roll := rng.Float64()
			var title string
			cum := 0.0
			assigned := false
			for _, c := range TrackedCurrencies() {
				cum += mix[c]
				if roll < cum {
					tpl := threadTemplates[rng.Intn(len(threadTemplates))]
					title = strings.Replace(tpl, "%s", currencyNames[c], 1)
					assigned = true
					break
				}
			}
			if !assigned {
				title = nonMiningTemplates[rng.Intn(len(nonMiningTemplates))]
			}
			out = append(out, Thread{
				ID:      id,
				Forum:   "market",
				Title:   title,
				Body:    title + " - contact me for PM, escrow accepted",
				Created: created,
			})
		}
	}
	return out
}
