package scenario_test

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cryptomining/internal/model"
	"cryptomining/internal/obs"
	"cryptomining/internal/scenario"
)

// gateClock wraps logicalClock and blocks its third reading — the shadow
// fork instant of the first submitted job, which the manager takes outside
// its mutex — until released, pinning that job in StateRunning so retention
// behavior against a mid-run job is deterministic.
type gateClock struct {
	inner   logicalClock
	n       atomic.Int64
	entered chan struct{}
	release chan struct{}
}

func (g *gateClock) now() time.Time {
	if g.n.Add(1) == 3 {
		close(g.entered)
		<-g.release
	}
	return g.inner.now()
}

func powFork() scenario.Document {
	return scenario.Document{Interventions: []scenario.Intervention{
		{Kind: scenario.KindPowFork, At: model.Date(2018, 6, 1)},
	}}
}

func TestRetentionCapacityMidRunAndEviction(t *testing.T) {
	eng, cfg, _ := newStreamedEngine(t, 11, 100)
	reg := obs.NewRegistry()
	g := &gateClock{entered: make(chan struct{}), release: make(chan struct{})}
	m, err := scenario.NewManager(scenario.Config{
		Engine:      eng,
		Base:        cfg,
		Now:         g.now,
		MaxRetained: 1,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}

	id1, err := m.Submit(powFork())
	if err != nil {
		t.Fatalf("Submit job 1: %v", err)
	}
	<-g.entered // job 1 is now mid-run, its fork clock parked

	if j, err := m.Job(id1); err != nil || j.State != scenario.StateRunning {
		t.Fatalf("job 1 should be running: state=%v err=%v", j.State, err)
	}
	// The cap is fully occupied by a mid-run job: admission must reject
	// rather than evict it.
	if _, err := m.Submit(powFork()); !errors.Is(err, scenario.ErrCapacity) {
		t.Fatalf("submit at capacity: want ErrCapacity, got %v", err)
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), `scenario_runs_total{outcome="rejected"} 1`) {
		t.Fatalf("rejected outcome not exported:\n%s", b.String())
	}

	close(g.release)
	j1, err := m.Wait(id1, time.Minute)
	if err != nil {
		t.Fatalf("Wait(job 1): %v", err)
	}
	if j1.State != scenario.StateDone {
		t.Fatalf("job 1 did not finish: state=%v error=%q", j1.State, j1.Error)
	}

	// With job 1 finished, the next submission evicts it: retention is
	// exactly one job.
	id2, err := m.Submit(powFork())
	if err != nil {
		t.Fatalf("Submit job 2 after job 1 finished: %v", err)
	}
	if _, err := m.Job(id1); !errors.Is(err, scenario.ErrUnknownJob) {
		t.Fatalf("job 1 should be evicted: got %v", err)
	}
	if j2, err := m.Wait(id2, time.Minute); err != nil || j2.State != scenario.StateDone {
		t.Fatalf("Wait(job 2): state=%v err=%v", j2.State, err)
	}
	if jobs := m.Jobs(); len(jobs) != 1 || jobs[0].ID != id2 {
		t.Fatalf("want exactly job %s retained, got %d jobs", id2, len(jobs))
	}

	b.Reset()
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), `scenario_runs_total{outcome="ok"} 2`) {
		t.Fatalf("ok outcome not exported:\n%s", b.String())
	}
}
