package scenario_test

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"

	"cryptomining/internal/dnssim"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/model"
	"cryptomining/internal/scenario"
	"cryptomining/internal/stream"
	"cryptomining/internal/timeseries"
)

// logicalClock hands out a strictly increasing second per reading, making
// recorded series a pure function of event order.
type logicalClock struct{ c atomic.Int64 }

func (l *logicalClock) now() time.Time { return time.Unix(1_500_000_000+l.c.Add(1), 0).UTC() }

// newStreamedEngine ingests n samples from the streamed generator into a
// live engine and waits for quiescence. The generator's pool directory, DNS
// zone and AV ground truth back the engine, exactly like a daemon fed by a
// live feed.
func newStreamedEngine(t *testing.T, seed int64, n int) (*stream.Engine, stream.Config, *logicalClock) {
	t.Helper()
	gen := ecosim.NewStream(ecosim.StreamConfig{Seed: seed, Ledger: true})
	clock := &logicalClock{}
	shards := 2
	if n > 10_000 {
		shards = 8
	}
	cfg := stream.Config{
		AV:        gen.AVProvider(),
		Resolver:  dnssim.NewResolver(gen.Zone()),
		Zone:      gen.Zone(),
		Pools:     gen.Pools(),
		Network:   gen.Network(),
		QueryTime: gen.QueryTime(),
		Shards:    shards,
		Timeseries: stream.TimeseriesOptions{
			Clock: clock.now,
		},
	}
	eng := stream.New(cfg)
	ctx := context.Background()
	eng.Start(ctx)
	for i := 0; i < n; i++ {
		if err := eng.Submit(ctx, gen.Next().Sample); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	waitQuiesced(t, eng, int64(n))
	return eng, cfg, clock
}

func waitQuiesced(t *testing.T, eng *stream.Engine, n int64) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for {
		st := eng.Stats()
		if st.Analyzed+st.Duplicates == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine did not quiesce: %d+%d != %d", st.Analyzed, st.Duplicates, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func newManager(t *testing.T, eng *stream.Engine, cfg stream.Config, clock *logicalClock) *scenario.Manager {
	t.Helper()
	m, err := scenario.NewManager(scenario.Config{
		Engine: eng,
		Base:   cfg,
		Now:    clock.now,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func runScenario(t *testing.T, m *scenario.Manager, doc scenario.Document) scenario.Job {
	t.Helper()
	id, err := m.Submit(doc)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Generous budget: the 100k-sample scale replay can take minutes on a
	// loaded single-CPU CI box; a hung replay still fails, just slower.
	job, err := m.Wait(id, 10*time.Minute)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if job.State == scenario.StateFailed {
		t.Fatalf("scenario failed: %s", job.Error)
	}
	if job.State != scenario.StateDone {
		t.Fatalf("scenario did not finish: state=%s", job.State)
	}
	return job
}

func TestDocumentValidation(t *testing.T) {
	at := model.Date(2018, 1, 1)
	cases := []struct {
		name string
		doc  scenario.Document
	}{
		{"empty", scenario.Document{}},
		{"unknown kind", scenario.Document{Interventions: []scenario.Intervention{{Kind: "nuke", At: at}}}},
		{"zero time", scenario.Document{Interventions: []scenario.Intervention{{Kind: scenario.KindPoolBan}}}},
		{"seizure without wallets", scenario.Document{Interventions: []scenario.Intervention{{Kind: scenario.KindWalletSeizure, At: at}}}},
		{"rollout without families", scenario.Document{Interventions: []scenario.Intervention{{Kind: scenario.KindAVRollout, At: at}}}},
		{"blank wallet", scenario.Document{Interventions: []scenario.Intervention{{Kind: scenario.KindPoolBan, At: at, Wallets: []string{" "}}}}},
	}
	for _, tc := range cases {
		if err := tc.doc.Validate(); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
	ok := scenario.Document{Interventions: []scenario.Intervention{{Kind: scenario.KindPowFork, At: at}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}
}

// liveSnapshot captures everything the isolation contract protects: the
// exported engine state (canonical bytes, wall-clock uptime zeroed), the
// published campaign view and the ecosystem series.
func liveSnapshot(t *testing.T, eng *stream.Engine) (state, view, series []byte, epoch uint64) {
	t.Helper()
	st := eng.ExportState()
	st.Counters.UptimeNanos = 0
	state, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal state: %v", err)
	}
	v := eng.CurrentView()
	view, err = json.Marshal(v.Campaigns)
	if err != nil {
		t.Fatalf("marshal view: %v", err)
	}
	snap, err := eng.Timeseries(stream.TimeseriesQuery{})
	if err != nil {
		t.Fatalf("timeseries: %v", err)
	}
	series, err = json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal series: %v", err)
	}
	return state, view, series, v.Epoch
}

func TestPoolBanScenarioDeltasAndIsolation(t *testing.T) {
	eng, cfg, clock := newStreamedEngine(t, 21, 1500)
	m := newManager(t, eng, cfg, clock)

	beforeState, beforeView, beforeSeries, beforeEpoch := liveSnapshot(t, eng)

	job := runScenario(t, m, scenario.Document{
		Name: "ban-everything",
		Interventions: []scenario.Intervention{{
			Kind:        scenario.KindPoolBan,
			At:          model.Date(2014, 1, 1),
			Cooperation: map[string]scenario.Cooperation{"*": {Cooperative: true, MinIPsToBan: 1}},
		}},
	})
	res := job.Result
	if res == nil {
		t.Fatalf("done job has no result")
	}
	if res.Baseline.XMR <= 0 {
		t.Fatalf("baseline priced no XMR — the streamed ledger never reached the shadow")
	}
	if res.Scenario.XMR >= res.Baseline.XMR {
		t.Fatalf("banning every wallet did not reduce earnings: baseline=%v scenario=%v",
			res.Baseline.XMR, res.Scenario.XMR)
	}
	if len(res.Campaigns) == 0 {
		t.Fatalf("no campaign deltas")
	}
	if res.Campaigns[0].DeltaXMR >= 0 {
		t.Fatalf("campaign deltas not sorted by reduction: first=%+v", res.Campaigns[0])
	}
	if len(res.Applied) != 1 || len(res.Applied[0].Outcomes) == 0 {
		t.Fatalf("pool-ban outcomes missing: %+v", res.Applied)
	}
	if len(res.Ecosystem) == 0 || len(res.Ecosystem[0].Points) == 0 {
		t.Fatalf("no ecosystem series delta")
	}
	last := res.Ecosystem[0].Points[len(res.Ecosystem[0].Points)-1]
	if last.Delta >= 0 {
		t.Fatalf("ecosystem %s delta should end negative, got %+v", timeseries.SeriesXMR, last)
	}

	afterState, afterView, afterSeries, afterEpoch := liveSnapshot(t, eng)
	if string(beforeState) != string(afterState) {
		t.Fatalf("scenario run mutated the live engine state")
	}
	if string(beforeView) != string(afterView) || beforeEpoch != afterEpoch {
		t.Fatalf("scenario run republished or mutated the live view")
	}
	if string(beforeSeries) != string(afterSeries) {
		t.Fatalf("scenario run perturbed the live timeseries")
	}
}

func TestWalletSeizureAndPowFork(t *testing.T) {
	eng, cfg, clock := newStreamedEngine(t, 33, 1200)
	m := newManager(t, eng, cfg, clock)

	// Seize the wallets of the highest-earning campaign.
	v := eng.CurrentView()
	var top *stream.CampaignView
	for i := range v.Campaigns {
		c := &v.Campaigns[i]
		if len(c.Wallets) == 0 {
			continue
		}
		if top == nil || c.XMR > top.XMR {
			top = c
		}
	}
	if top == nil || top.XMR <= 0 {
		t.Fatalf("no earning campaign to seize from")
	}
	job := runScenario(t, m, scenario.Document{
		Name: "seize-top",
		Interventions: []scenario.Intervention{{
			Kind:    scenario.KindWalletSeizure,
			At:      model.Date(2012, 1, 1),
			Wallets: top.Wallets,
		}},
	})
	res := job.Result
	if res.Scenario.XMR >= res.Baseline.XMR {
		t.Fatalf("seizing the top campaign's wallets changed nothing")
	}
	var found bool
	for _, cd := range res.Campaigns {
		if cd.ID == top.ID {
			found = true
			if cd.ScenarioXMR >= cd.BaselineXMR {
				t.Fatalf("seized campaign did not shrink: %+v", cd)
			}
		}
	}
	if !found {
		t.Fatalf("seized campaign %d missing from deltas", top.ID)
	}

	// A PoW fork: unmaintained campaigns (single-epoch payment histories)
	// die; the replay must complete and not increase earnings.
	fork := runScenario(t, m, scenario.Document{
		Name: "fork-2018",
		Interventions: []scenario.Intervention{{
			Kind: scenario.KindPowFork,
			At:   model.Date(2018, 4, 6),
		}},
	})
	fr := fork.Result
	if fr.Scenario.XMR > fr.Baseline.XMR {
		t.Fatalf("a fork increased earnings: %+v vs %+v", fr.Scenario, fr.Baseline)
	}
	if len(fr.Applied) != 1 {
		t.Fatalf("fork applied %d interventions", len(fr.Applied))
	}
}

func TestManagerRetentionEviction(t *testing.T) {
	eng, cfg, clock := newStreamedEngine(t, 5, 300)
	m, err := scenario.NewManager(scenario.Config{
		Engine: eng, Base: cfg, Now: clock.now, MaxRetained: 2,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	doc := scenario.Document{Interventions: []scenario.Intervention{{
		Kind: scenario.KindPowFork, At: model.Date(2018, 4, 6),
	}}}
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := m.Submit(doc)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if _, err := m.Wait(id, time.Minute); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	if got := len(m.Jobs()); got > 2 {
		t.Fatalf("retention cap leaked: %d jobs retained", got)
	}
	if _, err := m.Job(ids[0]); err == nil {
		t.Fatalf("oldest job survived eviction")
	}
	if _, err := m.Job("sc-999"); err == nil {
		t.Fatalf("unknown job id resolved")
	}
}
