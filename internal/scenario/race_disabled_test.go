//go:build !race

package scenario_test

const raceEnabled = false
