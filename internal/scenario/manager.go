package scenario

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cryptomining/internal/obs"
	"cryptomining/internal/stream"
)

// State is a scenario job's lifecycle phase.
type State string

const (
	StatePending State = "pending"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// ErrCapacity rejects submissions when the retained-job cap is reached and
// every retained job is still pending or running.
var ErrCapacity = errors.New("scenario: job capacity reached")

// ErrUnknownJob is returned for lookups of a job ID the manager does not
// retain (never submitted, or already evicted).
var ErrUnknownJob = errors.New("scenario: unknown job")

// Config wires a Manager to the live engine it shadows.
type Config struct {
	// Engine is the live engine scenarios fork. Required.
	Engine *stream.Engine
	// Base is the same configuration the live engine was built with; the
	// shadow inherits it with the isolation-critical fields (pools, prober,
	// metrics, logger, recording clock) replaced. Base.Pools is required.
	Base stream.Config
	// MaxConcurrent bounds simultaneously running replays (default 1).
	MaxConcurrent int
	// MaxRetained bounds retained jobs; the oldest finished job is evicted
	// to admit a new one (default 16).
	MaxRetained int
	// Tick is the shadow recording-clock step between interventions
	// (default 1s).
	Tick time.Duration
	// Now supplies job timestamps and the shadow clock's fork instant. It
	// should be the same recording clock the live engine's timeseries use,
	// so shadow series share the live wall-epoch grid. Default time.Now.
	Now func() time.Time
	// Metrics optionally registers the scenario instrument set.
	Metrics *obs.Registry
}

// Job is one scenario submission's lifecycle record.
type Job struct {
	ID          string
	Doc         Document
	State       State
	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time
	Error       string
	Result      *Result
}

// Manager runs what-if scenarios asynchronously against shadow forks of the
// live engine: Submit validates and enqueues, a bounded worker pool replays,
// and Job/Jobs serve status and results until eviction.
type Manager struct {
	cfg Config
	sem chan struct{}

	mu   sync.Mutex
	jobs map[string]*Job //cryptolint:guardedby mu
	// order retains submission order for capacity eviction.
	order []string //cryptolint:guardedby mu
	seq   int      //cryptolint:guardedby mu

	runsOK       *obs.Counter
	runsErr      *obs.Counter
	runsRejected *obs.Counter
	active       *obs.Gauge
	dur          *obs.Histogram
}

// NewManager validates the configuration and builds a manager. No goroutines
// start until the first Submit.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Engine == nil {
		return nil, errors.New("scenario: Config.Engine is required")
	}
	if cfg.Base.Pools == nil {
		return nil, errors.New("scenario: Config.Base.Pools is required")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 1
	}
	if cfg.MaxRetained <= 0 {
		cfg.MaxRetained = 16
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now //cryptolint:allow directclock job timestamps default to wall clock when no recording clock is injected
	}
	m := &Manager{
		cfg:  cfg,
		sem:  make(chan struct{}, cfg.MaxConcurrent),
		jobs: map[string]*Job{},
	}
	if reg := cfg.Metrics; reg != nil {
		const runsHelp = "Scenario runs by outcome: replay completed ok or with an error, or submission rejected at the retention cap."
		m.runsOK = reg.Counter("scenario_runs_total", runsHelp, obs.L("outcome", "ok"))
		m.runsErr = reg.Counter("scenario_runs_total", runsHelp, obs.L("outcome", "error"))
		m.runsRejected = reg.Counter("scenario_runs_total", runsHelp, obs.L("outcome", "rejected"))
		m.active = reg.Gauge("scenario_active", "Scenario replays currently running.")
		m.dur = reg.Histogram("scenario_replay_duration_seconds", "Wall-clock duration of scenario replays.", obs.LatencyBuckets)
	}
	return m, nil
}

// Submit validates the document, admits it against the retention cap and
// starts the replay asynchronously. It returns the job ID immediately.
func (m *Manager) Submit(doc Document) (string, error) {
	if err := doc.Validate(); err != nil {
		return "", err
	}
	m.mu.Lock()
	if err := m.evictForAdmissionLocked(); err != nil {
		m.mu.Unlock()
		if m.runsRejected != nil {
			m.runsRejected.Inc()
		}
		return "", err
	}
	m.seq++
	job := &Job{
		ID:          fmt.Sprintf("sc-%d", m.seq),
		Doc:         doc,
		State:       StatePending,
		SubmittedAt: m.cfg.Now(),
	}
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	m.mu.Unlock()

	go m.run(job.ID)
	return job.ID, nil
}

// evictForAdmissionLocked makes room for one more job, evicting the oldest
// finished job if the cap is reached. Caller holds m.mu.
func (m *Manager) evictForAdmissionLocked() error {
	if len(m.jobs) < m.cfg.MaxRetained {
		return nil
	}
	for i, id := range m.order {
		j := m.jobs[id]
		if j == nil || j.State == StateDone || j.State == StateFailed {
			delete(m.jobs, id)
			m.order = append(m.order[:i:i], m.order[i+1:]...)
			return nil
		}
	}
	return ErrCapacity
}

// run executes one job end to end: it snapshots the live engine's state
// (briefly under the collector mutex — the only time the live engine is
// touched), then replays entirely against the private shadow.
func (m *Manager) run(id string) {
	m.sem <- struct{}{}
	defer func() { <-m.sem }()

	m.mu.Lock()
	job, ok := m.jobs[id]
	if !ok { // evicted while queued
		m.mu.Unlock()
		return
	}
	job.State = StateRunning
	job.StartedAt = m.cfg.Now()
	doc := job.Doc
	m.mu.Unlock()
	if m.active != nil {
		m.active.Add(1)
	}

	forkedAt := m.cfg.Now()
	state := m.cfg.Engine.ExportState()
	res, err := replay(runInput{
		doc:      doc,
		base:     m.cfg.Base,
		state:    state,
		forkedAt: forkedAt,
		tick:     m.cfg.Tick,
	})

	m.mu.Lock()
	if job = m.jobs[id]; job != nil {
		job.FinishedAt = m.cfg.Now()
		if err != nil {
			job.State = StateFailed
			job.Error = err.Error()
		} else {
			job.State = StateDone
			job.Result = res
		}
		if m.dur != nil {
			m.dur.Observe(job.FinishedAt.Sub(job.StartedAt).Seconds())
		}
	}
	m.mu.Unlock()

	if m.active != nil {
		m.active.Add(-1)
	}
	if err != nil {
		if m.runsErr != nil {
			m.runsErr.Inc()
		}
	} else if m.runsOK != nil {
		m.runsOK.Inc()
	}
}

// Job returns a copy of one job's current status.
func (m *Manager) Job(id string) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, ErrUnknownJob
	}
	return *j, nil
}

// Jobs lists retained jobs, newest submission first.
func (m *Manager) Jobs() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.jobs))
	for _, id := range m.order {
		if j := m.jobs[id]; j != nil {
			out = append(out, *j)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].SubmittedAt.After(out[j].SubmittedAt) })
	return out
}

// Wait blocks until the job reaches a terminal state or the timeout
// expires, returning the final status. Polling-based so it needs no
// per-job condition plumbing; the interval is coarse enough for tests and
// CLI use.
func (m *Manager) Wait(id string, timeout time.Duration) (Job, error) {
	deadline := make(chan struct{})
	if timeout > 0 {
		t := time.AfterFunc(timeout, func() { close(deadline) }) //cryptolint:allow directclock poll pacing only, never feeds recorded state
		defer t.Stop()
	}
	for {
		j, err := m.Job(id)
		if err != nil {
			return Job{}, err
		}
		if j.State == StateDone || j.State == StateFailed {
			return j, nil
		}
		select {
		case <-deadline:
			return j, nil
		case <-time.After(10 * time.Millisecond): //cryptolint:allow directclock poll pacing only, never feeds recorded state
		}
	}
}
