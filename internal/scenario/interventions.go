package scenario

import (
	"fmt"
	"sort"
	"time"

	"cryptomining/internal/intervention"
	"cryptomining/internal/pool"
	"cryptomining/internal/pow"
	"cryptomining/internal/stream"
)

// apply mutates the forked ledgers for one intervention and reports which
// wallets changed; the caller then re-prices exactly those wallets on the
// shadow engine. baseView is the pre-intervention campaign listing — family
// matching and fork-survival run against what the measurement knew, not
// against already-intervened figures.
func apply(shadow *stream.Engine, forked *pool.Directory, baseView *stream.View, iv Intervention) (AppliedIntervention, error) {
	out := AppliedIntervention{Kind: iv.Kind, At: iv.At}
	switch iv.Kind {
	case KindPoolBan:
		return applyPoolBan(shadow, forked, iv)
	case KindWalletSeizure:
		out.AffectedWallets, out.RemovedXMR = retractFromAll(forked, iv.Wallets, iv.At)
		return out, nil
	case KindAVRollout:
		fams := normalizeFamilies(iv.Families)
		var wallets []string
		for _, c := range baseView.Campaigns {
			d, ok := baseView.Details[c.ID]
			if !ok || !campaignMatchesFamilies(d, fams) {
				continue
			}
			out.CeasedCampaigns = append(out.CeasedCampaigns, c.ID)
			wallets = append(wallets, c.Wallets...)
		}
		sort.Ints(out.CeasedCampaigns)
		out.AffectedWallets, out.RemovedXMR = retractFromAll(forked, wallets, iv.At)
		return out, nil
	case KindPowFork:
		maintained := make(map[int]bool, len(iv.MaintainedCampaigns))
		for _, id := range iv.MaintainedCampaigns {
			maintained[id] = true
		}
		var wallets []string
		for _, c := range baseView.Campaigns {
			if maintained[c.ID] {
				continue
			}
			payments := walletPaymentTimes(forked, c.Wallets, iv.At)
			if maintainedAcrossForks(pow.MoneroEpochs, payments, iv.At) {
				continue
			}
			out.CeasedCampaigns = append(out.CeasedCampaigns, c.ID)
			wallets = append(wallets, c.Wallets...)
		}
		sort.Ints(out.CeasedCampaigns)
		out.AffectedWallets, out.RemovedXMR = retractFromAll(forked, wallets, iv.At)
		return out, nil
	default:
		return out, fmt.Errorf("scenario: unknown intervention kind %q", iv.Kind)
	}
}

// applyPoolBan runs the abuse-report experiment against the forked pools:
// each selected pool consults its cooperation policy, bans what it agrees
// to, and banned wallets lose their earnings at that pool from the report
// instant.
func applyPoolBan(shadow *stream.Engine, forked *pool.Directory, iv Intervention) (AppliedIntervention, error) {
	out := AppliedIntervention{Kind: iv.Kind, At: iv.At}
	pools := forked.Pools()
	if len(iv.Pools) > 0 {
		pools = pools[:0:0]
		for _, name := range iv.Pools {
			p, ok := forked.Get(name)
			if !ok {
				return out, fmt.Errorf("scenario: pool_ban names unknown pool %q", name)
			}
			pools = append(pools, p)
		}
	}
	wallets := iv.Wallets
	if len(wallets) == 0 {
		wallets = shadow.SeenWallets()
	}
	coopFor := func(name string) intervention.PoolCooperation {
		if c, ok := iv.Cooperation[name]; ok {
			return intervention.PoolCooperation{Cooperative: c.Cooperative, MinIPsToBan: c.MinIPsToBan}
		}
		if c, ok := iv.Cooperation["*"]; ok {
			return intervention.PoolCooperation{Cooperative: c.Cooperative, MinIPsToBan: c.MinIPsToBan}
		}
		return intervention.DefaultCooperation()
	}
	out.Outcomes = intervention.ReportWalletsTo(pools, wallets, coopFor, iv.At)

	affected := map[string]bool{}
	for _, o := range out.Outcomes {
		if !o.Banned {
			continue
		}
		p, ok := forked.Get(o.Pool)
		if !ok {
			continue
		}
		ret := p.RetractEarningsFrom(o.Wallet, iv.At)
		out.RemovedXMR += ret.RemovedXMR
		affected[o.Wallet] = true
	}
	out.AffectedWallets = sortedSet(affected)
	return out, nil
}

// retractFromAll removes the wallets' earnings from every forked pool from
// the cutoff, returning the wallets that actually changed and the total
// retracted.
func retractFromAll(forked *pool.Directory, wallets []string, at time.Time) ([]string, float64) {
	affected := map[string]bool{}
	var removed float64
	for _, p := range forked.Pools() {
		for _, w := range wallets {
			ret := p.RetractEarningsFrom(w, at)
			if ret.Known {
				removed += ret.RemovedXMR
				affected[w] = true
			}
		}
	}
	return sortedSet(affected), removed
}

// walletPaymentTimes merges the wallets' payment timestamps before the
// cutoff across every forked pool.
func walletPaymentTimes(forked *pool.Directory, wallets []string, cutoff time.Time) []time.Time {
	var out []time.Time
	for _, p := range forked.Pools() {
		for _, w := range wallets {
			st, err := p.Stats(w, cutoff)
			if err != nil {
				continue
			}
			for _, pay := range st.Payments {
				out = append(out, pay.Timestamp)
			}
		}
	}
	return out
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
