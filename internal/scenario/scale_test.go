package scenario_test

import (
	"testing"

	"cryptomining/internal/model"
	"cryptomining/internal/scenario"
)

// TestReplayOverStreamedEcosystem is the acceptance-scale run: a 100k-sample
// streamed ecosystem flows into a live engine, and a pool-ban scenario must
// replay to completion with non-empty deltas computed from the shadow
// timeseries stores. The race detector and -short both gate the sample count
// down — the full scale runs in the plain tier-1 pass.
func TestReplayOverStreamedEcosystem(t *testing.T) {
	n := 100_000
	if raceEnabled || testing.Short() {
		n = 10_000
	}
	eng, cfg, clock := newStreamedEngine(t, 1234, n)
	m := newManager(t, eng, cfg, clock)

	beforeState, beforeView, beforeSeries, _ := liveSnapshot(t, eng)

	job := runScenario(t, m, scenario.Document{
		Name: "ban-at-scale",
		Interventions: []scenario.Intervention{{
			Kind:        scenario.KindPoolBan,
			At:          model.Date(2014, 1, 1),
			Cooperation: map[string]scenario.Cooperation{"*": {Cooperative: true, MinIPsToBan: 1}},
		}},
	})
	res := job.Result
	if res.Baseline.XMR <= 0 || res.Scenario.XMR >= res.Baseline.XMR {
		t.Fatalf("scale replay produced no reduction: baseline=%v scenario=%v",
			res.Baseline.XMR, res.Scenario.XMR)
	}
	if len(res.Campaigns) == 0 || len(res.Ecosystem) == 0 {
		t.Fatalf("scale replay produced empty deltas: %d campaigns, %d series",
			len(res.Campaigns), len(res.Ecosystem))
	}
	timelines := 0
	for _, cd := range res.Campaigns {
		if len(cd.Timeline) > 0 {
			timelines++
		}
	}
	if timelines == 0 {
		t.Fatalf("no campaign delta carries a timeline from the shadow store")
	}

	afterState, afterView, afterSeries, _ := liveSnapshot(t, eng)
	if string(beforeState) != string(afterState) ||
		string(beforeView) != string(afterView) ||
		string(beforeSeries) != string(afterSeries) {
		t.Fatalf("scale replay leaked into the live engine")
	}
}
