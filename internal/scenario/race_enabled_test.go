//go:build race

package scenario_test

// raceEnabled gates down the large-scale replay test when the race detector
// multiplies its cost.
const raceEnabled = true
