// Package scenario is the live what-if intervention engine: it forks a
// running stream.Engine's exported state into an isolated shadow replay,
// applies a typed document of timestamped interventions (pool wallet bans
// with per-pool cooperation, wallet seizures, AV signature rollouts, PoW
// fork events) against the shadow's own forked pool ledgers, and reports
// baseline-vs-scenario deltas — campaign earnings, the ecosystem priced-XMR
// series and per-campaign timelines — computed from the shadow's private
// timeseries store.
//
// The shadow shares nothing mutable with the live engine: it gets a forked
// pool directory (pool.Directory.Fork deep-copies every ledger), its own
// collector, aggregator and timeseries store (rebuilt from the canonical
// EngineState snapshot), no prober, no metrics registry and no WAL. Running
// a scenario therefore leaves the live collector, the published views and
// any persisted checkpoint byte-identical to a scenario-free run — the
// isolation property the §VI counterfactuals depend on.
package scenario

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind names one intervention type of the scenario grammar.
type Kind string

const (
	// KindPoolBan reports wallets to pool operators, who ban them (and
	// retract earnings from the ban instant) subject to their cooperation
	// policy — the §VI.A responsible-disclosure experiment.
	KindPoolBan Kind = "pool_ban"
	// KindWalletSeizure removes wallets' earnings from every pool from the
	// given instant, regardless of pool cooperation — the upper bound on
	// what a coordinated takedown could achieve.
	KindWalletSeizure Kind = "wallet_seizure"
	// KindAVRollout models a detection-signature rollout: campaigns whose
	// attributed families match lose their earnings from the rollout
	// instant (their droppers stop landing on new victims and the botnet
	// decays).
	KindAVRollout Kind = "av_rollout"
	// KindPowFork models a proof-of-work algorithm change: campaigns whose
	// payment history shows no cross-epoch maintenance are assumed to die
	// at the fork, and their wallets stop earning — the §VI.B die-off.
	KindPowFork Kind = "pow_fork"
)

// Cooperation mirrors intervention.PoolCooperation at the document layer.
type Cooperation struct {
	Cooperative bool
	MinIPsToBan int
}

// Intervention is one timestamped action of a scenario document.
type Intervention struct {
	Kind Kind
	// At is the intervention instant on the *data* time axis: the ledger
	// cutoff from which earnings are removed. Interventions are applied in
	// At order.
	At time.Time
	// Wallets targets specific wallets (required for wallet_seizure;
	// optional for pool_ban, which defaults to every wallet the dataset has
	// seen).
	Wallets []string
	// Pools restricts a pool_ban to the named pools (default: all).
	Pools []string
	// Cooperation overrides per-pool ban policies for a pool_ban, keyed by
	// pool name; the "*" entry is the default for unnamed pools. Empty maps
	// fall back to intervention.DefaultCooperation.
	Cooperation map[string]Cooperation
	// Families matches an av_rollout against campaign attribution
	// (PPI botnets, stock tools, known operations), case-insensitively.
	Families []string
	// MaintainedCampaigns optionally marks campaign IDs that survive a
	// pow_fork regardless of what their payment history suggests.
	MaintainedCampaigns []int
}

// Document is a typed what-if scenario: a name and an ordered set of
// interventions replayed against a shadow fork of the live engine.
type Document struct {
	Name        string
	Description string
	// Interventions are applied in ascending At order.
	Interventions []Intervention
}

// ErrEmptyDocument rejects documents with no interventions.
var ErrEmptyDocument = errors.New("scenario: document has no interventions")

// Validate checks the document against the scenario grammar. It returns the
// first violation found, with enough context to fix the document.
func (d *Document) Validate() error {
	if len(d.Interventions) == 0 {
		return ErrEmptyDocument
	}
	for i, iv := range d.Interventions {
		prefix := fmt.Sprintf("scenario: intervention %d (%s)", i, iv.Kind)
		switch iv.Kind {
		case KindPoolBan:
			// All-seen-wallets and all-pools defaults are both valid.
		case KindWalletSeizure:
			if len(iv.Wallets) == 0 {
				return fmt.Errorf("%s: requires at least one wallet", prefix)
			}
		case KindAVRollout:
			if len(iv.Families) == 0 {
				return fmt.Errorf("%s: requires at least one family", prefix)
			}
		case KindPowFork:
			// No operands required.
		default:
			return fmt.Errorf("scenario: intervention %d: unknown kind %q (known: %s)",
				i, iv.Kind, strings.Join([]string{
					string(KindPoolBan), string(KindWalletSeizure),
					string(KindAVRollout), string(KindPowFork)}, ", "))
		}
		if iv.At.IsZero() {
			return fmt.Errorf("%s: missing intervention time", prefix)
		}
		for _, w := range iv.Wallets {
			if strings.TrimSpace(w) == "" {
				return fmt.Errorf("%s: blank wallet identifier", prefix)
			}
		}
	}
	return nil
}

// ordered returns the interventions sorted by At (stable, so same-instant
// interventions keep document order).
func (d *Document) ordered() []Intervention {
	out := make([]Intervention, len(d.Interventions))
	copy(out, d.Interventions)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}
