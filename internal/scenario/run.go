package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"cryptomining/internal/intervention"
	"cryptomining/internal/pow"
	"cryptomining/internal/stream"
	"cryptomining/internal/timeseries"
)

// Totals is one side's ecosystem summary, read from the engine counters.
type Totals struct {
	XMR       float64
	USD       float64
	Campaigns int64
	Wallets   int64
	Kept      int64
}

// BucketDelta is one instant of a baseline-vs-scenario series comparison.
// For gauge series (ecosystem priced XMR) the values are the carried-forward
// gauge readings; for campaign timelines they are cumulative earned XMR.
type BucketDelta struct {
	Start    int64
	Baseline float64
	Scenario float64
	Delta    float64
}

// SeriesDelta is one named series' baseline-vs-scenario comparison. Series
// whose two sides are identical are omitted from results entirely.
type SeriesDelta struct {
	Metric string
	Points []BucketDelta
}

// CampaignDelta compares one campaign's earnings across the two worlds.
type CampaignDelta struct {
	ID          int
	BaselineXMR float64
	ScenarioXMR float64
	DeltaXMR    float64
	BaselineUSD float64
	ScenarioUSD float64
	DeltaUSD    float64
	// Timeline is the cumulative-XMR comparison over the campaign's
	// timeline series (nil when timeseries are disabled or unchanged).
	Timeline []BucketDelta
}

// AppliedIntervention records what one intervention actually did during the
// replay.
type AppliedIntervention struct {
	Kind Kind
	At   time.Time
	// ReplayInstant is the shadow recording-clock instant the intervention's
	// ledger deltas were recorded at.
	ReplayInstant time.Time
	// AffectedWallets lists the wallets whose ledgers changed, sorted.
	AffectedWallets []string
	// RemovedXMR is the total retracted across pools by this intervention.
	RemovedXMR float64
	// Outcomes carries the per-pool report outcomes of a pool_ban.
	Outcomes []intervention.ReportOutcome
	// CeasedCampaigns lists campaigns judged dead by an av_rollout or
	// pow_fork, sorted.
	CeasedCampaigns []int
}

// Result is a completed scenario replay: both worlds' totals, the per-
// campaign and per-series deltas, and the intervention audit trail.
type Result struct {
	Doc Document
	// ForkedAt is the live recording-clock instant the shadow was forked at;
	// replay-side series points land strictly after it.
	ForkedAt time.Time
	Baseline Totals
	Scenario Totals
	// Campaigns lists every baseline campaign whose earnings changed,
	// largest XMR reduction first.
	Campaigns []CampaignDelta
	// Ecosystem compares the ecosystem-wide series (currently the priced-XMR
	// gauge); empty when timeseries are disabled or unchanged.
	Ecosystem []SeriesDelta
	Applied   []AppliedIntervention
}

// replayClock is the shadow's recording clock: it starts at the live
// recording clock's fork instant and is advanced explicitly by the replay,
// one tick per intervention, so every intervention's ledger deltas land in
// their own series buckets on the same wall-epoch grid as the live store.
type replayClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *replayClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *replayClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// runInput is everything a single replay needs, assembled by the Manager.
type runInput struct {
	doc   Document
	base  stream.Config
	state *stream.EngineState
	// forkedAt seeds the replay clock (the live recording clock's reading at
	// fork time).
	forkedAt time.Time
	// tick is the clock step between interventions.
	tick time.Duration
}

// replay builds the shadow engine from the exported state and drives the
// scenario against it. It never touches the live engine.
func replay(in runInput) (*Result, error) {
	if err := in.doc.Validate(); err != nil {
		return nil, err
	}
	if in.base.Pools == nil {
		return nil, fmt.Errorf("scenario: base configuration has no pool directory")
	}
	forked, err := in.base.Pools.Fork()
	if err != nil {
		return nil, fmt.Errorf("scenario: fork pool directory: %w", err)
	}
	clock := &replayClock{now: in.forkedAt}

	cfg := in.base
	cfg.Pools = forked
	cfg.Prober = nil  // pricing must read the forked ledgers synchronously
	cfg.Metrics = nil // never rebind live instruments to the shadow
	cfg.Logger = nil
	cfg.Timeseries.Clock = clock.Now

	shadow := stream.New(cfg)
	if err := shadow.RestoreState(in.state); err != nil {
		return nil, fmt.Errorf("scenario: restore shadow: %w", err)
	}
	if err := shadow.PrimeScenarioBaselines(); err != nil {
		return nil, fmt.Errorf("scenario: prime baselines: %w", err)
	}

	res := &Result{Doc: in.doc, ForkedAt: in.forkedAt}
	res.Baseline = totalsOf(shadow)
	baseView := shadow.CurrentView()
	baseEco := ecosystemSeries(shadow)
	baseTimelines := campaignTimelines(shadow, baseView)

	for _, iv := range in.doc.ordered() {
		instant := clock.Advance(in.tick)
		applied, err := apply(shadow, forked, baseView, iv)
		if err != nil {
			return nil, err
		}
		applied.ReplayInstant = instant
		if err := shadow.RepriceScenarioWallets(applied.AffectedWallets); err != nil {
			return nil, fmt.Errorf("scenario: reprice after %s: %w", iv.Kind, err)
		}
		res.Applied = append(res.Applied, applied)
	}

	res.Scenario = totalsOf(shadow)
	res.Campaigns = campaignDeltas(baseView, shadow.CurrentView(), baseTimelines, campaignTimelines(shadow, baseView))
	res.Ecosystem = ecosystemDeltas(baseEco, ecosystemSeries(shadow))
	return res, nil
}

func totalsOf(e *stream.Engine) Totals {
	s := e.Stats()
	return Totals{XMR: s.TotalXMR, USD: s.TotalUSD, Campaigns: s.Campaigns, Wallets: s.Wallets, Kept: s.Kept}
}

// ecosystemSeries snapshots the ecosystem priced-XMR gauge (nil when the
// timeseries subsystem is disabled).
func ecosystemSeries(e *stream.Engine) []timeseries.Bucket {
	snap, err := e.Timeseries(stream.TimeseriesQuery{Metric: timeseries.SeriesXMR})
	if err != nil || len(snap.Series) == 0 {
		return nil
	}
	return snap.Series[0].Buckets
}

// campaignTimelines snapshots every baseline campaign's cumulative-XMR
// timeline, keyed by campaign ID.
func campaignTimelines(e *stream.Engine, v *stream.View) map[int][]timeseries.Bucket {
	out := map[int][]timeseries.Bucket{}
	for _, c := range v.Campaigns {
		snap, ok, err := e.CampaignTimeline(c.ID, stream.TimeseriesQuery{Metric: timeseries.TimelineXMR})
		if err != nil || !ok || len(snap.Series) == 0 {
			continue
		}
		out[c.ID] = snap.Series[0].Buckets
	}
	return out
}

// campaignDeltas joins both worlds' campaign listings by ID and keeps the
// campaigns whose earnings changed, biggest reduction first.
func campaignDeltas(base, scen *stream.View, baseTL, scenTL map[int][]timeseries.Bucket) []CampaignDelta {
	scenByID := map[int]stream.CampaignView{}
	for _, c := range scen.Campaigns {
		scenByID[c.ID] = c
	}
	var out []CampaignDelta
	for _, b := range base.Campaigns {
		s := scenByID[b.ID]
		d := CampaignDelta{
			ID:          b.ID,
			BaselineXMR: b.XMR, ScenarioXMR: s.XMR, DeltaXMR: s.XMR - b.XMR,
			BaselineUSD: b.USD, ScenarioUSD: s.USD, DeltaUSD: s.USD - b.USD,
		}
		d.Timeline = cumulativeDelta(baseTL[b.ID], scenTL[b.ID])
		if d.DeltaXMR == 0 && d.DeltaUSD == 0 && d.Timeline == nil {
			continue
		}
		out = append(out, d)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].DeltaXMR < out[j].DeltaXMR })
	return out
}

func ecosystemDeltas(base, scen []timeseries.Bucket) []SeriesDelta {
	pts := gaugeDelta(base, scen)
	if pts == nil {
		return nil
	}
	return []SeriesDelta{{Metric: timeseries.SeriesXMR, Points: pts}}
}

// gaugeDelta walks the union of both sides' bucket starts, carrying each
// side's last gauge reading forward, so the baseline stays flat after the
// fork while the scenario drops. Returns nil when the sides are identical.
func gaugeDelta(base, scen []timeseries.Bucket) []BucketDelta {
	return diffBuckets(base, scen, func(b timeseries.Bucket) float64 { return b.Last }, true)
}

// cumulativeDelta compares running sums (total XMR earned so far on each
// side). Returns nil when the sides are identical.
func cumulativeDelta(base, scen []timeseries.Bucket) []BucketDelta {
	return diffBuckets(base, scen, func(b timeseries.Bucket) float64 { return b.Sum }, false)
}

// diffBuckets is the union-walk shared by both delta flavours: `value`
// extracts a bucket's reading, and `carry` selects gauge semantics (carry
// the last reading forward) versus accumulation (add readings up).
func diffBuckets(base, scen []timeseries.Bucket, value func(timeseries.Bucket) float64, carry bool) []BucketDelta {
	if len(base) == 0 && len(scen) == 0 {
		return nil
	}
	starts := map[int64]bool{}
	for _, b := range base {
		starts[b.Start] = true
	}
	for _, b := range scen {
		starts[b.Start] = true
	}
	order := make([]int64, 0, len(starts))
	for s := range starts {
		order = append(order, s)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	byStart := func(bs []timeseries.Bucket) map[int64]float64 {
		m := make(map[int64]float64, len(bs))
		for _, b := range bs {
			m[b.Start] = value(b)
		}
		return m
	}
	bm, sm := byStart(base), byStart(scen)

	var out []BucketDelta
	var bCur, sCur float64
	changed := false
	for _, start := range order {
		if v, ok := bm[start]; ok {
			if carry {
				bCur = v
			} else {
				bCur += v
			}
		}
		if v, ok := sm[start]; ok {
			if carry {
				sCur = v
			} else {
				sCur += v
			}
		}
		d := BucketDelta{Start: start, Baseline: bCur, Scenario: sCur, Delta: sCur - bCur}
		if d.Delta != 0 {
			changed = true
		}
		out = append(out, d)
	}
	if !changed {
		return nil
	}
	return out
}

// normalizeFamilies lowercases and trims a family list for matching.
func normalizeFamilies(fams []string) map[string]bool {
	out := make(map[string]bool, len(fams))
	for _, f := range fams {
		f = strings.ToLower(strings.TrimSpace(f))
		if f != "" {
			out[f] = true
		}
	}
	return out
}

// campaignMatchesFamilies reports whether any of the campaign's attributed
// families (PPI botnets, stock tools, known operations) appears in the set.
func campaignMatchesFamilies(d stream.CampaignDetail, fams map[string]bool) bool {
	for _, group := range [][]string{d.PPIBotnets, d.StockTools, d.KnownOperations} {
		for _, f := range group {
			if fams[strings.ToLower(f)] {
				return true
			}
		}
	}
	return false
}

// maintainedAcrossForks reports whether a wallet's payment timestamps before
// the cutoff span more than one PoW epoch — evidence the operator shipped
// updated miners across at least one algorithm change.
func maintainedAcrossForks(epochs []pow.Epoch, payments []time.Time, cutoff time.Time) bool {
	algos := map[string]bool{}
	for _, t := range payments {
		if t.Before(cutoff) {
			algos[pow.AlgorithmAt(epochs, t)] = true
		}
	}
	return len(algos) > 1
}
