package pool

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cryptomining/internal/model"
	"cryptomining/internal/stratum"
)

func newTestServer(t *testing.T, policy Policy) (*Server, string, string) {
	t.Helper()
	p := New("minexmr", []string{"minexmr.com"}, model.CurrencyMonero, policy, nil)
	s := NewServer(p)
	// Pin the clock to a pre-fork date so the default "cryptonight" era applies.
	s.Clock = func() time.Time { return date(2017, 6, 1) }
	stratumAddr, err := s.ListenStratum("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenStratum error: %v", err)
	}
	httpAddr, err := s.ListenHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenHTTP error: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, stratumAddr, httpAddr
}

func TestServerStratumMiningAndHTTPStats(t *testing.T) {
	s, stratumAddr, httpAddr := newTestServer(t, DefaultPolicy())

	c, err := stratum.Dial(stratumAddr, 2*time.Second)
	if err != nil {
		t.Fatalf("Dial error: %v", err)
	}
	defer c.Close()

	wallet := "4SERVERTESTWALLET"
	res, err := c.Login(wallet, "x")
	if err != nil {
		t.Fatalf("Login error: %v", err)
	}
	if res.Status != "OK" || res.Job.JobID == "" {
		t.Errorf("login result = %+v", res)
	}
	for i := 0; i < 10; i++ {
		if _, err := c.Submit("00000001", "deadbeef"); err != nil {
			t.Fatalf("Submit %d error: %v", i, err)
		}
	}
	if _, err := c.GetJob(); err != nil {
		t.Fatalf("GetJob error: %v", err)
	}
	if err := c.KeepAlive(); err != nil {
		t.Fatalf("KeepAlive error: %v", err)
	}

	// Pool-side accounting must reflect the submitted shares.
	stats, err := s.Pool.Stats(wallet, s.Clock())
	if err != nil {
		t.Fatalf("Stats error: %v", err)
	}
	if stats.Hashes != uint64(10*s.SharesPerHash) {
		t.Errorf("hashes = %d, want %d", stats.Hashes, uint64(10*s.SharesPerHash))
	}

	// Query the same wallet over the HTTP stats API, like the profit stage.
	got, err := QueryStatsHTTP(nil, "http://"+httpAddr, wallet)
	if err != nil {
		t.Fatalf("QueryStatsHTTP error: %v", err)
	}
	if got.User != wallet || got.Pool != "minexmr" || got.Hashes != stats.Hashes {
		t.Errorf("HTTP stats = %+v", got)
	}
}

func TestServerHTTPUnknownAndMissingAddress(t *testing.T) {
	_, _, httpAddr := newTestServer(t, DefaultPolicy())
	if _, err := QueryStatsHTTP(nil, "http://"+httpAddr, "4UNKNOWN"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("unknown wallet error = %v, want ErrUnknownUser", err)
	}
	resp, err := http.Get("http://" + httpAddr + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing address status = %d, want 400", resp.StatusCode)
	}
}

func TestServerHTTPOpaquePool(t *testing.T) {
	policy := DefaultPolicy()
	policy.Transparent = false
	s, stratumAddr, httpAddr := newTestServer(t, policy)
	_ = s

	c, err := stratum.Dial(stratumAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Login("miner@mail.ru", "x"); err != nil {
		t.Fatalf("Login error: %v", err)
	}
	if _, err := c.Submit("00", "ff"); err != nil {
		t.Fatalf("Submit error: %v", err)
	}
	if _, err := QueryStatsHTTP(nil, "http://"+httpAddr, "miner@mail.ru"); !errors.Is(err, ErrOpaquePool) {
		t.Errorf("opaque pool error = %v, want ErrOpaquePool", err)
	}
}

func TestServerRefusesBannedWalletLogin(t *testing.T) {
	s, stratumAddr, _ := newTestServer(t, DefaultPolicy())
	wallet := "4BANNED_WALLET"
	// Seed the wallet and ban it.
	if err := s.Pool.Credit(wallet, "9.9.9.9", 1000, "cryptonight", s.Clock()); err != nil {
		t.Fatal(err)
	}
	if err := s.Pool.BanWallet(wallet, s.Clock()); err != nil {
		t.Fatal(err)
	}
	c, err := stratum.Dial(stratumAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Login(wallet, "x"); err == nil {
		t.Error("banned wallet login should be refused")
	}
}

func TestServerSubmitBeforeLogin(t *testing.T) {
	_, stratumAddr, _ := newTestServer(t, DefaultPolicy())
	c, err := stratum.Dial(stratumAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Bypass the client-side guard by forging WorkerID, to exercise the
	// server-side check.
	c.WorkerID = "forged"
	if _, err := c.Submit("00", "ff"); err == nil {
		t.Error("server should reject submit before login")
	}
}

func TestServerPoolInfoEndpoint(t *testing.T) {
	s, _, httpAddr := newTestServer(t, DefaultPolicy())
	_ = s.Pool.Credit("4W", "1.1.1.1", 1e9, "cryptonight", s.Clock())
	resp, err := http.Get("http://" + httpAddr + "/api/pool")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pool info status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	p := New("p", nil, model.CurrencyMonero, DefaultPolicy(), nil)
	s := NewServer(p)
	if _, err := s.ListenStratum("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("first Close error: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close error: %v", err)
	}
}

func TestQueryStatsHTTPBadEndpoint(t *testing.T) {
	if _, err := QueryStatsHTTP(nil, "http://127.0.0.1:1", "4W"); err == nil {
		t.Error("querying a closed port should error")
	}
}

// TestServerMethodGuards: the public API endpoints answer 405 with an Allow
// header for anything but GET/HEAD, matching the internal/api convention.
func TestServerMethodGuards(t *testing.T) {
	_, _, httpAddr := newTestServer(t, DefaultPolicy())
	for _, path := range []string{"/api/stats?address=x", "/api/pool"} {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete, http.MethodPatch} {
			req, err := http.NewRequest(method, "http://"+httpAddr+path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatalf("%s %s: %v", method, path, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Fatalf("%s %s -> %d, want 405", method, path, resp.StatusCode)
			}
			if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
				t.Fatalf("%s %s Allow = %q, want \"GET, HEAD\"", method, path, allow)
			}
		}
		// HEAD rides along with GET.
		resp, err := http.Head("http://" + httpAddr + path)
		if err != nil {
			t.Fatalf("HEAD %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusMethodNotAllowed {
			t.Fatalf("HEAD %s rejected with 405", path)
		}
	}
}

// TestStatsClientFullRoundTrip: the reusable client decodes the complete
// wallet statistics — payment history included — losslessly, which the
// HTTP probe source's profit parity rests on.
func TestStatsClientFullRoundTrip(t *testing.T) {
	s, _, httpAddr := newTestServer(t, DefaultPolicy())
	wallet := "4CLIENTROUNDTRIP"
	from := date(2017, 3, 1)
	to := date(2017, 5, 1)
	s.Pool.SimulateMining(wallet, 1, 50_000, from, to, 24*time.Hour, nil)

	queriedAt := date(2017, 6, 1)
	want, err := s.Pool.Stats(wallet, queriedAt)
	if err != nil {
		t.Fatalf("direct stats: %v", err)
	}
	if len(want.Payments) == 0 {
		t.Fatal("fixture produced no payments; the round-trip test needs some")
	}
	got, err := NewStatsClient("http://"+httpAddr, nil).WalletStats(context.Background(), wallet)
	if err != nil {
		t.Fatalf("client stats: %v", err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("stats differ after HTTP round trip:\ngot:  %s\nwant: %s", gotJSON, wantJSON)
	}
}

// TestStatsClientErrorPaths covers the client-side classification: 403
// opaque, 404 unknown, connection refused, non-JSON body.
func TestStatsClientErrorPaths(t *testing.T) {
	ctx := context.Background()

	opaquePolicy := DefaultPolicy()
	opaquePolicy.Transparent = false

	// Opaque pool -> ErrOpaquePool.
	{
		_, _, httpAddr := newTestServer(t, opaquePolicy)
		if _, err := NewStatsClient("http://"+httpAddr, nil).WalletStats(ctx, "w"); !errors.Is(err, ErrOpaquePool) {
			t.Fatalf("opaque pool error = %v, want ErrOpaquePool", err)
		}
	}
	// Unknown wallet -> ErrUnknownUser.
	{
		_, _, httpAddr := newTestServer(t, DefaultPolicy())
		if _, err := NewStatsClient("http://"+httpAddr, nil).WalletStats(ctx, "never-seen"); !errors.Is(err, ErrUnknownUser) {
			t.Fatalf("unknown wallet error = %v, want ErrUnknownUser", err)
		}
	}
	// Connection refused -> transport error (neither terminal class).
	{
		_, err := NewStatsClient("http://127.0.0.1:1", nil).WalletStats(ctx, "w")
		if err == nil || errors.Is(err, ErrUnknownUser) || errors.Is(err, ErrOpaquePool) {
			t.Fatalf("connection refused error = %v, want a transport error", err)
		}
	}
	// Unexpected status -> explicit error.
	{
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusTeapot)
		}))
		defer srv.Close()
		if _, err := NewStatsClient(srv.URL, nil).WalletStats(ctx, "w"); err == nil || !strings.Contains(err.Error(), "418") {
			t.Fatalf("unexpected-status error = %v, want mention of 418", err)
		}
	}
}
