// Package pool simulates cryptocurrency mining pools.
//
// The pools are the measurement's vantage point: the paper estimates campaign
// profits by querying public pool APIs for the total amount paid to each
// wallet extracted from malware, together with payment history, last share
// time and hashrate (Table II). This package provides:
//
//   - an accounting engine that credits mining work to wallet identifiers,
//     converts hashes to expected rewards using the pow network model, pays
//     out above a threshold, and enforces ban policies (e.g. banning wallets
//     mined from too many distinct IPs — the botnet indicator real pools act
//     on);
//   - a Stratum (TCP) server front-end so miners/proxies can mine over the
//     real protocol;
//   - an HTTP JSON stats API mirroring the public endpoints of transparent
//     pools (crypto-pool, dwarfpool, minexmr, ...), with opaque pools
//     (minergate) simply not exposing it;
//   - a Directory of the well-known Monero pools used throughout the paper.
package pool

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cryptomining/internal/model"
	"cryptomining/internal/pow"
)

// Errors returned by the accounting engine.
var (
	ErrBanned       = errors.New("pool: wallet is banned")
	ErrStaleAlgo    = errors.New("pool: share computed with outdated PoW algorithm")
	ErrUnknownUser  = errors.New("pool: unknown wallet")
	ErrOpaquePool   = errors.New("pool: pool does not expose public statistics")
	ErrInvalidInput = errors.New("pool: invalid input")
)

// Policy configures a pool's behaviour.
type Policy struct {
	// Transparent pools expose public per-wallet statistics; opaque pools
	// (minergate) do not.
	Transparent bool
	// PaymentThreshold is the minimum balance (XMR) before a payout is sent.
	PaymentThreshold float64
	// BanIPThreshold bans a wallet once it has been seen mining from more
	// than this many distinct IPs (0 disables the policy). Real pools only
	// ban on clear botnet-like behaviour, which is why proxies work.
	BanIPThreshold int
	// ProvidesPaymentHistory controls whether the stats API lists individual
	// payments (some pools only expose the total paid).
	ProvidesPaymentHistory bool
	// ProvidesHistoricHashrate controls whether the stats API exposes the
	// historical hashrate series (the paper only has this for minexmr).
	ProvidesHistoricHashrate bool
	// EnforceAlgorithm rejects shares computed with an outdated PoW
	// algorithm (all real pools do after a fork).
	EnforceAlgorithm bool
}

// DefaultPolicy is a transparent pool with a 0.3 XMR payout threshold that
// bans blatant botnets (>1000 source IPs) and enforces the PoW algorithm.
func DefaultPolicy() Policy {
	return Policy{
		Transparent:            true,
		PaymentThreshold:       0.3,
		BanIPThreshold:         1000,
		ProvidesPaymentHistory: true,
		EnforceAlgorithm:       true,
	}
}

// walletAccount is the pool-side per-identifier ledger.
type walletAccount struct {
	user        string
	hashes      uint64
	lastShare   time.Time
	firstShare  time.Time
	balance     float64
	totalPaid   float64
	payments    []model.Payment
	hashrate    float64
	historic    []model.HashratePoint
	ips         map[string]struct{}
	banned      bool
	bannedAt    time.Time
	connections int
}

// Pool is one simulated mining pool.
type Pool struct {
	// Name is the normalized pool name ("minexmr", "crypto-pool", ...).
	Name string
	// Domains are the DNS names the pool is reachable at.
	Domains []string
	// Currency the pool mines (XMR for all pools in the study's focus).
	Currency model.Currency
	// Policy configures payouts, transparency and banning.
	Policy Policy

	network *pow.Network
	mu      sync.Mutex
	wallets map[string]*walletAccount
}

// New creates a pool backed by the given PoW network model. A nil network
// uses the default Monero model.
func New(name string, domains []string, currency model.Currency, policy Policy, network *pow.Network) *Pool {
	if network == nil {
		network = pow.NewMoneroNetwork()
	}
	return &Pool{
		Name:     name,
		Domains:  append([]string(nil), domains...),
		Currency: currency,
		Policy:   policy,
		network:  network,
		wallets:  make(map[string]*walletAccount),
	}
}

func (p *Pool) account(user string) *walletAccount {
	acct, ok := p.wallets[user]
	if !ok {
		acct = &walletAccount{user: user, ips: make(map[string]struct{})}
		p.wallets[user] = acct
	}
	return acct
}

// RegisterConnection records a login from the given source IP. Returns
// ErrBanned when the wallet is banned.
func (p *Pool) RegisterConnection(user, ip string) error {
	if user == "" {
		return ErrInvalidInput
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	acct := p.account(user)
	if acct.banned {
		return ErrBanned
	}
	if ip != "" {
		acct.ips[ip] = struct{}{}
	}
	acct.connections++
	p.maybeBanLocked(acct, time.Time{})
	if acct.banned {
		return ErrBanned
	}
	return nil
}

func (p *Pool) maybeBanLocked(acct *walletAccount, at time.Time) {
	if p.Policy.BanIPThreshold > 0 && len(acct.ips) > p.Policy.BanIPThreshold && !acct.banned {
		acct.banned = true
		if at.IsZero() {
			at = acct.lastShare
		}
		acct.bannedAt = at
	}
}

// Credit records mining work performed by a wallet: `hashes` hashes submitted
// from `ip` at time `at`, computed with `algo`. It converts the work into an
// expected reward, updates hashrate statistics and triggers a payout when the
// balance crosses the payment threshold.
func (p *Pool) Credit(user, ip string, hashes float64, algo string, at time.Time) error {
	if user == "" || hashes < 0 {
		return ErrInvalidInput
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	acct := p.account(user)
	if acct.banned && !at.Before(acct.bannedAt) {
		return ErrBanned
	}
	if p.Policy.EnforceAlgorithm && !pow.IsValidShare(p.network.Epochs, algo, at) {
		// The miner is still burning victim CPU, but the shares are invalid
		// and no reward accrues (§VI of the paper).
		return ErrStaleAlgo
	}
	if ip != "" {
		acct.ips[ip] = struct{}{}
	}
	if acct.firstShare.IsZero() || at.Before(acct.firstShare) {
		acct.firstShare = at
	}
	if at.After(acct.lastShare) {
		acct.lastShare = at
	}
	acct.hashes += uint64(hashes)
	reward := hashes * p.network.ExpectedRewardPerHash(at)
	acct.balance += reward

	for p.Policy.PaymentThreshold > 0 && acct.balance >= p.Policy.PaymentThreshold {
		amount := acct.balance
		acct.balance = 0
		acct.totalPaid += amount
		acct.payments = append(acct.payments, model.Payment{
			Pool: p.Name, Wallet: user, Amount: amount, Timestamp: at,
		})
	}
	p.maybeBanLocked(acct, at)
	return nil
}

// SimulateMining credits a wallet with continuous mining at `hashrate` H/s from
// `from` to `to`, submitting in fixed intervals, sourced from `numIPs`
// distinct addresses (a proxy shows up as a single IP). algoFor maps a time to
// the algorithm the miner binary uses at that time (a nil algoFor always uses
// the network's current algorithm, i.e. a well-maintained miner).
// It returns the number of intervals whose shares were rejected (stale
// algorithm or ban).
func (p *Pool) SimulateMining(user string, numIPs int, hashrate float64, from, to time.Time, interval time.Duration, algoFor func(time.Time) string) int {
	if interval <= 0 {
		interval = 24 * time.Hour
	}
	if numIPs < 1 {
		numIPs = 1
	}
	rejected := 0
	ipIdx := 0
	for t := from; t.Before(to); t = t.Add(interval) {
		algo := pow.AlgorithmAt(p.network.Epochs, t)
		if algoFor != nil {
			algo = algoFor(t)
		}
		ip := fmt.Sprintf("10.%d.%d.%d", (ipIdx/65536)%256, (ipIdx/256)%256, ipIdx%256)
		ipIdx = (ipIdx + 1) % numIPs
		hashes := hashrate * interval.Seconds()
		if err := p.Credit(user, ip, hashes, algo, t); err != nil {
			rejected++
		}
		p.recordHashrate(user, hashrate, t)
	}
	return rejected
}

func (p *Pool) recordHashrate(user string, hashrate float64, at time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	acct := p.account(user)
	acct.hashrate = hashrate
	if p.Policy.ProvidesHistoricHashrate {
		acct.historic = append(acct.historic, model.HashratePoint{Timestamp: at, Hashrate: hashrate})
	}
}

// BanWallet manually bans a wallet at the given time — the intervention the
// authors performed when reporting illicit wallets to pool operators (§V).
func (p *Pool) BanWallet(user string, at time.Time) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	acct, ok := p.wallets[user]
	if !ok {
		return ErrUnknownUser
	}
	acct.banned = true
	acct.bannedAt = at
	return nil
}

// Retraction summarizes what RetractEarningsFrom removed from a ledger.
type Retraction struct {
	// Known reports whether the pool had an account for the wallet at all —
	// a known wallet is banned and clamped even when nothing was removed,
	// which still changes its activity status.
	Known bool
	// RemovedXMR is the sum of the removed payouts plus the zeroed balance.
	RemovedXMR float64
	// RemovedPayments counts the payout records dropped.
	RemovedPayments int
}

// RetractEarningsFrom rewrites a wallet's ledger as if the pool had banned it
// at `at`: every payout at or after that instant is removed from the payment
// history and the total paid, the unpaid balance is zeroed (it would never
// have been paid out), the last share is clamped to just before the ban, and
// the wallet is marked banned. This is the counterfactual primitive of the
// what-if scenario engine — Stats deliberately reports full history for a
// banned wallet (real pools keep serving past payouts), so measuring "what
// if the ban had happened at t" requires truncating the forked ledger, never
// a live one. A wallet the pool has never seen is a no-op: no account is
// created.
func (p *Pool) RetractEarningsFrom(user string, at time.Time) Retraction {
	p.mu.Lock()
	defer p.mu.Unlock()
	var ret Retraction
	acct, ok := p.wallets[user]
	if !ok {
		return ret
	}
	ret.Known = true
	kept := acct.payments[:0]
	var keptPaid float64
	for _, pay := range acct.payments {
		if pay.Timestamp.Before(at) {
			kept = append(kept, pay)
			keptPaid += pay.Amount
			continue
		}
		ret.RemovedXMR += pay.Amount
		ret.RemovedPayments++
	}
	acct.payments = kept
	// Credit records every payout in the ledger even when the stats API hides
	// the history, so recomputing from the kept list is exact — subtracting
	// would leave float residue behind a "fully retracted" wallet.
	acct.totalPaid = keptPaid
	ret.RemovedXMR += acct.balance
	acct.balance = 0
	if acct.lastShare.After(at) || acct.lastShare.Equal(at) {
		acct.lastShare = at.Add(-time.Nanosecond)
	}
	trimmed := acct.historic[:0]
	for _, hp := range acct.historic {
		if hp.Timestamp.Before(at) {
			trimmed = append(trimmed, hp)
		}
	}
	acct.historic = trimmed
	acct.banned = true
	acct.bannedAt = at
	return ret
}

// IsBanned reports whether the wallet is banned.
func (p *Pool) IsBanned(user string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	acct, ok := p.wallets[user]
	return ok && acct.banned
}

// DistinctIPs returns the number of distinct source IPs observed for a wallet
// (the statistic pool operators shared with the authors for the case studies).
func (p *Pool) DistinctIPs(user string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	acct, ok := p.wallets[user]
	if !ok {
		return 0
	}
	return len(acct.ips)
}

// Stats returns the public statistics for a wallet, honouring the pool's
// transparency policy. Opaque pools return ErrOpaquePool for every wallet;
// transparent pools return ErrUnknownUser for wallets they have never seen.
func (p *Pool) Stats(user string, queriedAt time.Time) (model.WalletStats, error) {
	if !p.Policy.Transparent {
		return model.WalletStats{}, ErrOpaquePool
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	acct, ok := p.wallets[user]
	if !ok {
		return model.WalletStats{}, ErrUnknownUser
	}
	st := model.WalletStats{
		Pool:        p.Name,
		User:        user,
		Hashes:      acct.hashes,
		Hashrate:    acct.hashrate,
		LastShare:   acct.lastShare,
		Balance:     acct.balance,
		TotalPaid:   acct.totalPaid,
		NumPayments: len(acct.payments),
		DateQuery:   queriedAt,
		Banned:      acct.banned,
		BannedAt:    acct.bannedAt,
	}
	if p.Policy.ProvidesPaymentHistory {
		st.Payments = append(st.Payments, acct.payments...)
	}
	if p.Policy.ProvidesHistoricHashrate {
		st.HistoricHashrate = append(st.HistoricHashrate, acct.historic...)
	}
	return st, nil
}

// Wallets returns every wallet identifier the pool has seen, sorted.
func (p *Pool) Wallets() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.wallets))
	for w := range p.wallets {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// TotalPaid returns the total amount (in the pool's currency) paid to a wallet.
func (p *Pool) TotalPaid(user string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	acct, ok := p.wallets[user]
	if !ok {
		return 0
	}
	return acct.totalPaid
}

// TotalPaidAll returns the total amount paid across all wallets.
func (p *Pool) TotalPaidAll() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var sum float64
	for _, acct := range p.wallets {
		sum += acct.totalPaid
	}
	return sum
}

// MarshalSnapshot serializes the pool's ledger (used by cmd tools to persist
// a generated ecosystem).
func (p *Pool) MarshalSnapshot() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	snap := snapshot{Name: p.Name, Currency: string(p.Currency)}
	for _, w := range p.wallets {
		ips := make([]string, 0, len(w.ips))
		for ip := range w.ips {
			ips = append(ips, ip)
		}
		sort.Strings(ips)
		snap.Wallets = append(snap.Wallets, walletSnapshot{
			User: w.user, Hashes: w.hashes, LastShare: w.lastShare, FirstShare: w.firstShare,
			Balance: w.balance, TotalPaid: w.totalPaid, Payments: w.payments,
			Hashrate: w.hashrate, Historic: w.historic, IPs: ips,
			Banned: w.banned, BannedAt: w.bannedAt,
		})
	}
	sort.Slice(snap.Wallets, func(i, j int) bool { return snap.Wallets[i].User < snap.Wallets[j].User })
	return json.MarshalIndent(&snap, "", " ")
}

// UnmarshalSnapshot restores a ledger previously produced by MarshalSnapshot.
func (p *Pool) UnmarshalSnapshot(data []byte) error {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wallets = make(map[string]*walletAccount, len(snap.Wallets))
	for _, w := range snap.Wallets {
		acct := &walletAccount{
			user: w.User, hashes: w.Hashes, lastShare: w.LastShare, firstShare: w.FirstShare,
			balance: w.Balance, totalPaid: w.TotalPaid, payments: w.Payments,
			hashrate: w.Hashrate, historic: w.Historic,
			ips: make(map[string]struct{}, len(w.IPs)), banned: w.Banned, bannedAt: w.BannedAt,
		}
		for _, ip := range w.IPs {
			acct.ips[ip] = struct{}{}
		}
		p.wallets[w.User] = acct
	}
	return nil
}

type snapshot struct {
	Name     string           `json:"name"`
	Currency string           `json:"currency"`
	Wallets  []walletSnapshot `json:"wallets"`
}

type walletSnapshot struct {
	User       string                `json:"user"`
	Hashes     uint64                `json:"hashes"`
	LastShare  time.Time             `json:"last_share"`
	FirstShare time.Time             `json:"first_share"`
	Balance    float64               `json:"balance"`
	TotalPaid  float64               `json:"total_paid"`
	Payments   []model.Payment       `json:"payments,omitempty"`
	Hashrate   float64               `json:"hashrate"`
	Historic   []model.HashratePoint `json:"historic,omitempty"`
	IPs        []string              `json:"ips,omitempty"`
	Banned     bool                  `json:"banned,omitempty"`
	BannedAt   time.Time             `json:"banned_at,omitempty"`
}
