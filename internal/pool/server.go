package pool

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"cryptomining/internal/obs"
	"cryptomining/internal/pow"
	"cryptomining/internal/stratum"
)

// Server exposes a Pool over the network: a Stratum TCP listener for miners
// and an HTTP JSON API mirroring the public statistics endpoints transparent
// pools provide.
type Server struct {
	Pool *Pool
	// SharesPerHash is the crediting granularity: each accepted Stratum
	// submit credits the wallet with this many hashes (real pools credit the
	// share difficulty; the simulator uses a fixed difficulty).
	SharesPerHash float64
	// Clock supplies the current time; overridable in tests.
	Clock func() time.Time

	log *slog.Logger

	mu        sync.Mutex
	stratumLn net.Listener
	httpSrv   *http.Server
	httpLn    net.Listener
	wg        sync.WaitGroup
	conns     map[net.Conn]struct{}
	closed    bool
	jobSeq    int
}

// ServerOption customizes a Server at construction time.
type ServerOption func(*Server)

// WithLogger attaches a structured logger (scoped to the "pool" component).
// Servers are silent without one, so tests stay quiet by default.
func WithLogger(lg *slog.Logger) ServerOption {
	return func(s *Server) { s.log = obs.Component(lg, "pool") }
}

// NewServer wraps a pool in a network server.
func NewServer(p *Pool, opts ...ServerOption) *Server {
	s := &Server{Pool: p, SharesPerHash: 5000, Clock: time.Now} //cryptolint:allow directclock default wiring: the one site the server Clock seam binds to the real clock
	for _, opt := range opts {
		opt(s)
	}
	if s.log == nil {
		s.log = obs.NopLogger()
	}
	return s
}

// ListenStratum starts accepting Stratum connections on addr (e.g.
// "127.0.0.1:0"). It returns the bound address.
func (s *Server) ListenStratum(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.stratumLn = ln
	s.mu.Unlock()
	s.log.Info("stratum listening", "pool", s.Pool.Name, "addr", ln.Addr().String())
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if !s.trackConn(conn) {
			_ = conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrackConn(conn)
			s.handleConn(conn)
		}()
	}
}

// trackConn registers an open Stratum connection so Close can tear it down;
// it reports false when the server is already closed.
func (s *Server) trackConn(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.conns == nil {
		s.conns = map[net.Conn]struct{}{}
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrackConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// handleConn runs the server side of the Stratum session.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	codec := stratum.NewCodec(conn)
	var login string
	remoteIP := remoteIP(conn)
	for {
		req, err := codec.ReadRequest()
		if err != nil {
			return
		}
		switch req.Method {
		case "login":
			var p stratum.LoginParams
			if err := json.Unmarshal(req.Params, &p); err != nil || p.Login == "" {
				_ = codec.WriteJSON(&stratum.Response{ID: req.ID, Error: &stratum.Error{Code: -1, Message: "invalid login params"}})
				continue
			}
			if err := s.Pool.RegisterConnection(p.Login, remoteIP); err != nil {
				s.log.Debug("login rejected", "ip", remoteIP, "err", err)
				_ = codec.WriteJSON(&stratum.Response{ID: req.ID, Error: &stratum.Error{Code: -403, Message: err.Error()}})
				continue
			}
			login = p.Login
			s.log.Debug("miner login", "wallet", login, "ip", remoteIP)
			result, _ := json.Marshal(&stratum.LoginResult{
				ID:     fmt.Sprintf("%s-%s", s.Pool.Name, remoteIP),
				Job:    s.newJob(),
				Status: "OK",
			})
			_ = codec.WriteJSON(&stratum.Response{ID: req.ID, Result: result})
		case "getjob":
			if login == "" {
				_ = codec.WriteJSON(&stratum.Response{ID: req.ID, Error: &stratum.Error{Code: -1, Message: "not logged in"}})
				continue
			}
			result, _ := json.Marshal(s.newJob())
			_ = codec.WriteJSON(&stratum.Response{ID: req.ID, Result: result})
		case "submit":
			if login == "" {
				_ = codec.WriteJSON(&stratum.Response{ID: req.ID, Error: &stratum.Error{Code: -1, Message: "not logged in"}})
				continue
			}
			now := s.Clock()
			algo := pow.AlgorithmAt(s.Pool.networkEpochs(), now)
			err := s.Pool.Credit(login, remoteIP, s.SharesPerHash, algo, now)
			if err != nil {
				_ = codec.WriteJSON(&stratum.Response{ID: req.ID, Error: &stratum.Error{Code: -2, Message: err.Error()}})
				continue
			}
			result, _ := json.Marshal(&stratum.StatusResult{Status: "OK"})
			_ = codec.WriteJSON(&stratum.Response{ID: req.ID, Result: result})
		case "keepalived":
			result, _ := json.Marshal(&stratum.StatusResult{Status: "KEEPALIVED"})
			_ = codec.WriteJSON(&stratum.Response{ID: req.ID, Result: result})
		default:
			_ = codec.WriteJSON(&stratum.Response{ID: req.ID, Error: &stratum.Error{Code: -32601, Message: "unknown method"}})
		}
	}
}

func (s *Server) newJob() stratum.Job {
	s.mu.Lock()
	s.jobSeq++
	seq := s.jobSeq
	s.mu.Unlock()
	blob := make([]byte, 16)
	for i := range blob {
		blob[i] = byte(seq >> (uint(i%4) * 8))
	}
	return stratum.Job{
		Blob:   hex.EncodeToString(blob),
		JobID:  fmt.Sprintf("job-%d", seq),
		Target: "b88d0600", // fixed difficulty target
		Algo:   pow.AlgorithmAt(s.Pool.networkEpochs(), s.Clock()),
	}
}

// networkEpochs exposes the pool's PoW epochs to the server.
func (p *Pool) networkEpochs() []pow.Epoch { return p.network.Epochs }

func remoteIP(conn net.Conn) string {
	addr := conn.RemoteAddr().String()
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return host
	}
	return addr
}

// ListenHTTP starts the public statistics HTTP API on addr and returns the
// bound address. Endpoints:
//
//	GET /api/stats?address=<wallet>  -> WalletStats JSON (404 unknown, 403 opaque)
//	GET /api/pool                    -> pool summary JSON
func (s *Server) ListenHTTP(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/stats", getOnly(s.handleStats))
	mux.HandleFunc("/api/pool", getOnly(s.handlePoolInfo))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	// IdleTimeout reaps parked keep-alive connections; probers reconnect
	// transparently.
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	s.mu.Lock()
	s.httpSrv = srv
	s.httpLn = ln
	s.mu.Unlock()
	s.log.Info("http stats listening", "pool", s.Pool.Name, "addr", ln.Addr().String())
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// getOnly guards a read-only endpoint: anything but GET (or HEAD, which
// rides along wherever GET is allowed) answers 405 with an Allow header,
// matching the internal/api method-guard convention.
func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	address := strings.TrimSpace(r.URL.Query().Get("address"))
	if address == "" {
		http.Error(w, "missing address parameter", http.StatusBadRequest)
		return
	}
	stats, err := s.Pool.Stats(address, s.Clock())
	switch {
	case errors.Is(err, ErrOpaquePool):
		http.Error(w, "pool does not publish statistics", http.StatusForbidden)
		return
	case errors.Is(err, ErrUnknownUser):
		http.Error(w, "unknown address", http.StatusNotFound)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(stats)
}

func (s *Server) handlePoolInfo(w http.ResponseWriter, r *http.Request) {
	info := struct {
		Name      string   `json:"name"`
		Currency  string   `json:"currency"`
		Domains   []string `json:"domains"`
		Wallets   int      `json:"wallets"`
		TotalPaid float64  `json:"total_paid"`
	}{
		Name:      s.Pool.Name,
		Currency:  string(s.Pool.Currency),
		Domains:   s.Pool.Domains,
		Wallets:   len(s.Pool.Wallets()),
		TotalPaid: s.Pool.TotalPaidAll(),
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(info)
}

// Close shuts down the Stratum and HTTP listeners, disconnects any open
// Stratum sessions (clients that never hung up would otherwise keep their
// handler blocked in a read forever) and waits for in-flight handlers to
// finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	stratumLn, httpSrv := s.stratumLn, s.httpSrv
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if stratumLn != nil {
		_ = stratumLn.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}
	s.wg.Wait()
	s.log.Info("server closed", "pool", s.Pool.Name, "sessions_cut", len(conns))
	return nil
}

// QueryStatsHTTP is a convenience wrapper over StatsClient, kept for callers
// that predate it: it fetches the summary WalletStats fields for an address
// from a pool's HTTP endpoint. New code (and anything needing the payment
// history) should use StatsClient.WalletStats directly.
func QueryStatsHTTP(client *http.Client, baseURL, address string) (*WalletStatsResponse, error) {
	stats, err := NewStatsClient(baseURL, client).WalletStats(context.Background(), address)
	if err != nil {
		return nil, err
	}
	return &WalletStatsResponse{
		Pool:        stats.Pool,
		User:        stats.User,
		Hashes:      stats.Hashes,
		Hashrate:    stats.Hashrate,
		LastShare:   stats.LastShare,
		Balance:     stats.Balance,
		TotalPaid:   stats.TotalPaid,
		NumPayments: stats.NumPayments,
		Banned:      stats.Banned,
	}, nil
}

// WalletStatsResponse is the summary wire form of model.WalletStats
// (identical field names; declared separately so the historical QueryStatsHTTP
// contract stays explicit and stable).
type WalletStatsResponse struct {
	Pool        string    `json:"Pool"`
	User        string    `json:"User"`
	Hashes      uint64    `json:"Hashes"`
	Hashrate    float64   `json:"Hashrate"`
	LastShare   time.Time `json:"LastShare"`
	Balance     float64   `json:"Balance"`
	TotalPaid   float64   `json:"TotalPaid"`
	NumPayments int       `json:"NumPayments"`
	Banned      bool      `json:"Banned"`
}
