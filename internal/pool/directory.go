package pool

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cryptomining/internal/model"
	"cryptomining/internal/pow"
)

// Directory holds the set of known mining pools the measurement queries, and
// the domain-to-pool mapping the alias detector needs.
//
// The directory is safe for concurrent use: live interventions (wallet-ban
// reports arriving over the API) mutate pool membership and ledgers while
// probe crawls and keep-decision lookups read them, so the pool map is
// guarded by its own lock. Individual pools carry their own mutex; the
// directory lock only covers the name -> pool mapping.
type Directory struct {
	mu    sync.RWMutex
	pools map[string]*Pool
}

// KnownPoolSpec describes one well-known pool.
type KnownPoolSpec struct {
	Name        string
	Domains     []string
	Transparent bool
	// HistoricHashrate marks pools that expose the per-wallet historical
	// hashrate series (only minexmr in the paper).
	HistoricHashrate bool
}

// KnownMoneroPools lists the Monero pools studied in Table VII plus the opaque
// minergate pool. The set mirrors the paper's ranking universe.
func KnownMoneroPools() []KnownPoolSpec {
	return []KnownPoolSpec{
		{Name: "crypto-pool", Domains: []string{"crypto-pool.fr", "mine.crypto-pool.fr", "xmr.crypto-pool.fr"}, Transparent: true},
		{Name: "dwarfpool", Domains: []string{"dwarfpool.com", "xmr-eu.dwarfpool.com", "xmr-usa.dwarfpool.com"}, Transparent: true},
		{Name: "minexmr", Domains: []string{"minexmr.com", "pool.minexmr.com"}, Transparent: true, HistoricHashrate: true},
		{Name: "poolto", Domains: []string{"poolto.be", "xmr.poolto.be"}, Transparent: true},
		{Name: "prohash", Domains: []string{"prohash.net", "xmr.prohash.net"}, Transparent: true},
		{Name: "nanopool", Domains: []string{"nanopool.org", "xmr-eu1.nanopool.org"}, Transparent: true},
		{Name: "monerohash", Domains: []string{"monerohash.com"}, Transparent: true},
		{Name: "ppxxmr", Domains: []string{"ppxxmr.com", "pool.ppxxmr.com"}, Transparent: true},
		{Name: "supportxmr", Domains: []string{"supportxmr.com", "pool.supportxmr.com"}, Transparent: true},
		{Name: "moneropool", Domains: []string{"moneropool.com"}, Transparent: true},
		{Name: "xmrpool", Domains: []string{"xmrpool.eu"}, Transparent: true},
		{Name: "hashvault", Domains: []string{"hashvault.pro", "pool.hashvault.pro"}, Transparent: true},
		{Name: "minemonero", Domains: []string{"minemonero.pro"}, Transparent: true},
		{Name: "monerominers", Domains: []string{"monerominers.net"}, Transparent: true},
		{Name: "viaxmr", Domains: []string{"viaxmr.com"}, Transparent: true},
		{Name: "usxmrpool", Domains: []string{"usxmrpool.com"}, Transparent: true},
		{Name: "moneroocean", Domains: []string{"moneroocean.stream", "gulf.moneroocean.stream"}, Transparent: true},
		{Name: "minergate", Domains: []string{"minergate.com", "pool.minergate.com"}, Transparent: false},
	}
}

// NewDirectory instantiates all known Monero pools backed by a shared network
// model. A nil network uses the default Monero model.
func NewDirectory(network *pow.Network) *Directory {
	if network == nil {
		network = pow.NewMoneroNetwork()
	}
	d := &Directory{pools: map[string]*Pool{}}
	for _, spec := range KnownMoneroPools() {
		policy := DefaultPolicy()
		policy.Transparent = spec.Transparent
		policy.ProvidesHistoricHashrate = spec.HistoricHashrate
		if !spec.Transparent {
			policy.ProvidesPaymentHistory = false
		}
		d.pools[spec.Name] = New(spec.Name, spec.Domains, model.CurrencyMonero, policy, network)
	}
	return d
}

// Get returns the pool with the given normalized name.
func (d *Directory) Get(name string) (*Pool, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, ok := d.pools[name]
	return p, ok
}

// Add registers an additional pool (e.g. a private pool for a test, or one
// discovered mid-measurement by a streamed feed).
func (d *Directory) Add(p *Pool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pools[p.Name] = p
}

// Names returns the pool names, sorted.
func (d *Directory) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.pools))
	for n := range d.pools {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Pools returns the pools sorted by name.
func (d *Directory) Pools() []*Pool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.pools))
	for n := range d.pools {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Pool, 0, len(names))
	for _, n := range names {
		out = append(out, d.pools[n])
	}
	return out
}

// DomainMap returns the domain -> pool-name map consumed by the CNAME alias
// detector (dnssim.NewAliasDetector).
func (d *Directory) DomainMap() map[string]string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := map[string]string{}
	for name, p := range d.pools {
		for _, dom := range p.Domains {
			out[dom] = name
		}
	}
	return out
}

// Transparent returns only the pools that expose public wallet statistics.
func (d *Directory) Transparent() []*Pool {
	var out []*Pool
	for _, p := range d.Pools() {
		if p.Policy.Transparent {
			out = append(out, p)
		}
	}
	return out
}

// HostOfEndpoint strips the :port suffix from a mining endpoint
// ("host:port" -> "host"). The one place this parsing lives, so the keep
// decision and the per-pool telemetry can never disagree on it.
func HostOfEndpoint(endpoint string) string {
	if i := strings.LastIndex(endpoint, ":"); i > 0 {
		return endpoint[:i]
	}
	return endpoint
}

// PoolForDomain returns the pool a domain belongs to (matching the domain or
// any of its parents), if any.
func (d *Directory) PoolForDomain(domain string) (*Pool, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for name, p := range d.pools {
		for _, dom := range p.Domains {
			if domain == dom || hasSuffixDot(domain, dom) {
				return d.pools[name], true
			}
		}
	}
	return nil, false
}

// Fork deep-copies the directory: every pool reappears with the same name,
// domains, currency, policy and network model, but with an independent
// ledger (wallet accounts, payments, bans). A what-if scenario mutates the
// fork — banning wallets, retracting earnings — without the live directory
// ever observing a write. Pool ledgers are copied through the canonical
// snapshot round-trip, so a fork prices wallets bit-identically to its
// source until the first intervention diverges them.
func (d *Directory) Fork() (*Directory, error) {
	out := &Directory{pools: map[string]*Pool{}}
	for _, p := range d.Pools() {
		snap, err := p.MarshalSnapshot()
		if err != nil {
			return nil, fmt.Errorf("pool: fork %s: %w", p.Name, err)
		}
		np := New(p.Name, p.Domains, p.Currency, p.Policy, p.network)
		if err := np.UnmarshalSnapshot(snap); err != nil {
			return nil, fmt.Errorf("pool: fork %s: %w", p.Name, err)
		}
		out.pools[np.Name] = np
	}
	return out, nil
}

func hasSuffixDot(name, suffix string) bool {
	if len(name) <= len(suffix) {
		return false
	}
	return name[len(name)-len(suffix):] == suffix && name[len(name)-len(suffix)-1] == '.'
}
