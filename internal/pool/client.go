package pool

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"cryptomining/internal/model"
)

// StatsClient is the client side of a pool's public statistics HTTP API
// (Server.ListenHTTP): it fetches per-wallet statistics exactly as the
// paper's measurement queried real pools. The zero HTTP client falls back to
// http.DefaultClient; callers wanting timeouts or retries inject their own.
//
// Errors mirror the in-process accounting engine so callers can classify
// responses uniformly: 404 maps to ErrUnknownUser (the wallet has no activity
// at this pool), 403 to ErrOpaquePool (the pool does not publish statistics);
// transport failures and unexpected statuses are returned verbatim and are
// transient from a crawler's point of view.
type StatsClient struct {
	// BaseURL is the pool API root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying client (nil = http.DefaultClient).
	HTTP *http.Client
}

// NewStatsClient builds a stats client for one pool endpoint.
func NewStatsClient(baseURL string, hc *http.Client) *StatsClient {
	return &StatsClient{BaseURL: baseURL, HTTP: hc}
}

func (c *StatsClient) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// WalletStats fetches the full public statistics of one wallet, including the
// payment history and (where exposed) the historic hashrate series. The
// response is the JSON encoding of model.WalletStats that Server.ListenHTTP
// writes, so a round trip through this client is lossless.
func (c *StatsClient) WalletStats(ctx context.Context, address string) (model.WalletStats, error) {
	u := strings.TrimRight(c.BaseURL, "/") + "/api/stats?address=" + url.QueryEscape(address)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return model.WalletStats{}, fmt.Errorf("pool: build stats request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return model.WalletStats{}, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return model.WalletStats{}, ErrUnknownUser
	case http.StatusForbidden:
		io.Copy(io.Discard, resp.Body)
		return model.WalletStats{}, ErrOpaquePool
	default:
		io.Copy(io.Discard, resp.Body)
		return model.WalletStats{}, fmt.Errorf("pool: unexpected HTTP status %d", resp.StatusCode)
	}
	var stats model.WalletStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return model.WalletStats{}, fmt.Errorf("pool: decode stats response: %w", err)
	}
	return stats, nil
}

// PoolInfo is the wire form of the pool summary served at /api/pool.
type PoolInfo struct {
	Name      string   `json:"name"`
	Currency  string   `json:"currency"`
	Domains   []string `json:"domains"`
	Wallets   int      `json:"wallets"`
	TotalPaid float64  `json:"total_paid"`
}

// PoolInfo fetches the pool summary (name, currency, wallet count, total
// paid).
func (c *StatsClient) PoolInfo(ctx context.Context) (PoolInfo, error) {
	u := strings.TrimRight(c.BaseURL, "/") + "/api/pool"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return PoolInfo{}, fmt.Errorf("pool: build info request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return PoolInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return PoolInfo{}, fmt.Errorf("pool: unexpected HTTP status %d", resp.StatusCode)
	}
	var info PoolInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return PoolInfo{}, fmt.Errorf("pool: decode info response: %w", err)
	}
	return info, nil
}
