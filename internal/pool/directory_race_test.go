package pool

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestDirectoryConcurrentMutation drives the access pattern a live daemon
// produces once interventions go live: one goroutine registering new pools
// and banning wallets (the write side of a streamed feed with pool churn plus
// abuse reports), while others crawl the directory the way the prober and the
// keep decision do (Pools, Names, Get, DomainMap, PoolForDomain, Stats).
// Run with -race; the unsynchronized map this replaced failed it.
func TestDirectoryConcurrentMutation(t *testing.T) {
	dir := NewDirectory(nil)
	base := time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC)
	for _, p := range dir.Pools() {
		p.SimulateMining("wallet-A", 200, 5000, base, base.AddDate(0, 2, 0), 24*time.Hour, nil)
	}

	const rounds = 200
	var wg sync.WaitGroup
	wg.Add(3)

	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			p := New(fmt.Sprintf("churn-%d", i), []string{fmt.Sprintf("churn-%d.example", i)},
				"XMR", DefaultPolicy(), nil)
			p.SimulateMining("wallet-B", 10, 1000, base, base.AddDate(0, 1, 0), 24*time.Hour, nil)
			dir.Add(p)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			for _, p := range dir.Pools() {
				_ = p.BanWallet("wallet-A", base.AddDate(0, 1, 0))
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			for _, p := range dir.Transparent() {
				_, _ = p.Stats("wallet-A", base)
				_ = p.DistinctIPs("wallet-B")
			}
			_ = dir.Names()
			_ = dir.DomainMap()
			_, _ = dir.Get("minexmr")
			_, _ = dir.PoolForDomain("pool.minexmr.com")
		}
	}()
	wg.Wait()

	if _, ok := dir.Get(fmt.Sprintf("churn-%d", rounds-1)); !ok {
		t.Fatalf("pool added during concurrent crawl is missing")
	}
}

func TestDirectoryForkIsolation(t *testing.T) {
	dir := NewDirectory(nil)
	base := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	live, _ := dir.Get("minexmr")
	live.SimulateMining("wallet-F", 50, 20000, base, base.AddDate(0, 6, 0), 24*time.Hour, nil)
	paidBefore := live.TotalPaid("wallet-F")
	if paidBefore <= 0 {
		t.Fatalf("expected simulated earnings before forking")
	}

	fork, err := dir.Fork()
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	fp, ok := fork.Get("minexmr")
	if !ok {
		t.Fatalf("fork lost pool minexmr")
	}
	if got := fp.TotalPaid("wallet-F"); got != paidBefore {
		t.Fatalf("fork ledger drifted: got %v want %v", got, paidBefore)
	}

	ret := fp.RetractEarningsFrom("wallet-F", base)
	if ret.RemovedXMR <= 0 {
		t.Fatalf("retraction removed nothing")
	}
	if got := fp.TotalPaid("wallet-F"); got != 0 {
		t.Fatalf("fork retained %v XMR after full retraction", got)
	}
	if got := live.TotalPaid("wallet-F"); got != paidBefore {
		t.Fatalf("live ledger mutated through fork: got %v want %v", got, paidBefore)
	}
	if live.IsBanned("wallet-F") {
		t.Fatalf("live ledger banned through fork")
	}
}

func TestRetractEarningsFrom(t *testing.T) {
	p := New("testpool", []string{"testpool.example"}, "XMR", DefaultPolicy(), nil)
	base := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	p.SimulateMining("w", 5, 30000, base, base.AddDate(0, 4, 0), 24*time.Hour, nil)
	st, err := p.Stats("w", base.AddDate(1, 0, 0))
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if len(st.Payments) == 0 {
		t.Fatalf("expected payments from simulated mining")
	}

	cut := base.AddDate(0, 2, 0)
	var expectKept int
	var expectPaid float64
	for _, pay := range st.Payments {
		if pay.Timestamp.Before(cut) {
			expectKept++
			expectPaid += pay.Amount
		}
	}
	ret := p.RetractEarningsFrom("w", cut)
	if ret.RemovedPayments != len(st.Payments)-expectKept {
		t.Fatalf("removed %d payments, want %d", ret.RemovedPayments, len(st.Payments)-expectKept)
	}

	after, err := p.Stats("w", base.AddDate(1, 0, 0))
	if err != nil {
		t.Fatalf("Stats after retraction: %v", err)
	}
	if len(after.Payments) != expectKept {
		t.Fatalf("kept %d payments, want %d", len(after.Payments), expectKept)
	}
	if after.TotalPaid != expectPaid {
		t.Fatalf("total paid %v, want %v", after.TotalPaid, expectPaid)
	}
	if after.Balance != 0 {
		t.Fatalf("balance %v after retraction, want 0", after.Balance)
	}
	if !after.Banned || !after.BannedAt.Equal(cut) {
		t.Fatalf("wallet not banned at cut: banned=%v at=%v", after.Banned, after.BannedAt)
	}
	if !after.LastShare.Before(cut) {
		t.Fatalf("last share %v not clamped before %v", after.LastShare, cut)
	}

	// Unknown wallets are a no-op and must not create an account.
	if ret := p.RetractEarningsFrom("never-seen", cut); ret.RemovedXMR != 0 || ret.RemovedPayments != 0 {
		t.Fatalf("retraction of unknown wallet removed %+v", ret)
	}
	if _, err := p.Stats("never-seen", cut); err == nil {
		t.Fatalf("retraction created an account for an unknown wallet")
	}
}
