package pool

import (
	"errors"
	"testing"
	"time"

	"cryptomining/internal/model"
	"cryptomining/internal/pow"
)

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

func newTestPool(policy Policy) *Pool {
	return New("testpool", []string{"testpool.example"}, model.CurrencyMonero, policy, pow.NewMoneroNetwork())
}

func TestCreditAccumulatesAndPays(t *testing.T) {
	p := newTestPool(DefaultPolicy())
	at := date(2017, 6, 1)
	// Credit a large amount of work in one go: a 2000-bot day.
	hashes := 2000 * pow.TypicalVictimHashrate * 86400
	if err := p.Credit("4WALLET", "1.2.3.4", hashes, "cryptonight", at); err != nil {
		t.Fatalf("Credit error: %v", err)
	}
	stats, err := p.Stats("4WALLET", at)
	if err != nil {
		t.Fatalf("Stats error: %v", err)
	}
	if stats.TotalPaid <= 0 && stats.Balance <= 0 {
		t.Error("credited work should produce balance or payments")
	}
	if stats.TotalPaid > 0 && stats.NumPayments == 0 {
		t.Error("payments counter should track payouts")
	}
	if stats.LastShare != at {
		t.Errorf("LastShare = %v, want %v", stats.LastShare, at)
	}
}

func TestCreditInvalidInput(t *testing.T) {
	p := newTestPool(DefaultPolicy())
	if err := p.Credit("", "1.1.1.1", 100, "cryptonight", date(2017, 1, 1)); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("empty wallet error = %v", err)
	}
	if err := p.Credit("4W", "1.1.1.1", -5, "cryptonight", date(2017, 1, 1)); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("negative hashes error = %v", err)
	}
}

func TestCreditStaleAlgorithmRejected(t *testing.T) {
	p := newTestPool(DefaultPolicy())
	// Mining with the original algorithm after the April 2018 fork fails.
	err := p.Credit("4WALLET", "1.2.3.4", 1e9, "cryptonight", date(2018, 5, 1))
	if !errors.Is(err, ErrStaleAlgo) {
		t.Errorf("stale algo error = %v, want ErrStaleAlgo", err)
	}
	// Updated miner works.
	if err := p.Credit("4WALLET", "1.2.3.4", 1e9, "cryptonight-v7", date(2018, 5, 1)); err != nil {
		t.Errorf("updated algo error = %v", err)
	}
	// With enforcement disabled, stale shares are accepted.
	lax := DefaultPolicy()
	lax.EnforceAlgorithm = false
	p2 := newTestPool(lax)
	if err := p2.Credit("4WALLET", "1.2.3.4", 1e9, "cryptonight", date(2018, 5, 1)); err != nil {
		t.Errorf("non-enforcing pool error = %v", err)
	}
}

func TestBanPolicyOnManyIPs(t *testing.T) {
	policy := DefaultPolicy()
	policy.BanIPThreshold = 50
	p := newTestPool(policy)
	at := date(2017, 3, 1)
	for i := 0; i < 60; i++ {
		ip := "10.0.0." + string(rune('0'+i%10)) + string(rune('0'+i/10))
		_ = p.Credit("4BOTNET", ip, 1000, "cryptonight", at)
	}
	if !p.IsBanned("4BOTNET") {
		t.Error("wallet mined from >50 IPs should be banned")
	}
	if err := p.Credit("4BOTNET", "10.9.9.9", 1000, "cryptonight", at.AddDate(0, 0, 1)); !errors.Is(err, ErrBanned) {
		t.Errorf("post-ban credit error = %v, want ErrBanned", err)
	}
	// A proxy user with a single IP never trips the threshold.
	for i := 0; i < 500; i++ {
		if err := p.Credit("4PROXYUSER", "203.0.113.7", 1000, "cryptonight", at); err != nil {
			t.Fatalf("proxy user credit error: %v", err)
		}
	}
	if p.IsBanned("4PROXYUSER") {
		t.Error("single-IP (proxy) wallet should not be banned")
	}
}

func TestManualBanAndIntervention(t *testing.T) {
	p := newTestPool(DefaultPolicy())
	at := date(2018, 9, 1)
	_ = p.Credit("4FREEBUF", "1.1.1.1", 1e10, "cryptonight-v7", at)
	if err := p.BanWallet("4FREEBUF", date(2018, 10, 1)); err != nil {
		t.Fatalf("BanWallet error: %v", err)
	}
	if err := p.Credit("4FREEBUF", "1.1.1.1", 1e9, "cryptonight-v8", date(2018, 11, 1)); !errors.Is(err, ErrBanned) {
		t.Errorf("credit after manual ban = %v, want ErrBanned", err)
	}
	stats, _ := p.Stats("4FREEBUF", date(2018, 11, 1))
	if !stats.Banned || stats.BannedAt != date(2018, 10, 1) {
		t.Errorf("stats ban fields = %+v", stats)
	}
	if err := p.BanWallet("4UNKNOWN", at); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("ban unknown wallet = %v", err)
	}
}

func TestOpaquePoolStats(t *testing.T) {
	policy := DefaultPolicy()
	policy.Transparent = false
	p := newTestPool(policy)
	_ = p.Credit("miner@mail.ru", "1.1.1.1", 1e8, "cryptonight", date(2017, 1, 1))
	if _, err := p.Stats("miner@mail.ru", date(2017, 2, 1)); !errors.Is(err, ErrOpaquePool) {
		t.Errorf("opaque pool stats error = %v, want ErrOpaquePool", err)
	}
}

func TestStatsUnknownWallet(t *testing.T) {
	p := newTestPool(DefaultPolicy())
	if _, err := p.Stats("4NEVER_SEEN", date(2018, 1, 1)); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("unknown wallet stats error = %v, want ErrUnknownUser", err)
	}
}

func TestSimulateMiningProducesPaymentsOverTime(t *testing.T) {
	p := newTestPool(DefaultPolicy())
	rejected := p.SimulateMining("4CAMPAIGN", 200, 200*pow.TypicalVictimHashrate,
		date(2017, 1, 1), date(2017, 7, 1), 24*time.Hour, nil)
	if rejected != 0 {
		t.Errorf("well-maintained miner should have no rejected intervals, got %d", rejected)
	}
	stats, err := p.Stats("4CAMPAIGN", date(2017, 7, 1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalPaid <= 0 {
		t.Error("six months of botnet mining should produce payments")
	}
	if stats.NumPayments < 2 {
		t.Errorf("expected multiple payments, got %d", stats.NumPayments)
	}
	// Payments must be timestamped within the mining window.
	for _, pay := range stats.Payments {
		if pay.Timestamp.Before(date(2017, 1, 1)) || pay.Timestamp.After(date(2017, 7, 1)) {
			t.Errorf("payment timestamp %v outside mining window", pay.Timestamp)
		}
		if pay.Amount <= 0 {
			t.Errorf("payment amount = %v", pay.Amount)
		}
	}
}

func TestSimulateMiningStaleMinerDiesAtFork(t *testing.T) {
	p := newTestPool(DefaultPolicy())
	// Miner stuck on the original algorithm mines across the April 2018 fork.
	stale := func(time.Time) string { return "cryptonight" }
	rejected := p.SimulateMining("4STUCK", 100, 100*pow.TypicalVictimHashrate,
		date(2018, 3, 1), date(2018, 5, 1), 24*time.Hour, stale)
	if rejected == 0 {
		t.Error("intervals after the fork should be rejected for a stale miner")
	}
	stats, err := p.Stats("4STUCK", date(2018, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Last accepted share must be before the fork date.
	if !stats.LastShare.Before(date(2018, 4, 7)) {
		t.Errorf("last share %v should precede the fork", stats.LastShare)
	}
}

func TestHistoricHashrateOnlyWhenEnabled(t *testing.T) {
	withHist := DefaultPolicy()
	withHist.ProvidesHistoricHashrate = true
	p1 := newTestPool(withHist)
	p1.SimulateMining("4W", 10, 1000, date(2017, 1, 1), date(2017, 1, 10), 24*time.Hour, nil)
	s1, _ := p1.Stats("4W", date(2017, 2, 1))
	if len(s1.HistoricHashrate) == 0 {
		t.Error("historic hashrate should be recorded when enabled")
	}

	p2 := newTestPool(DefaultPolicy())
	p2.SimulateMining("4W", 10, 1000, date(2017, 1, 1), date(2017, 1, 10), 24*time.Hour, nil)
	s2, _ := p2.Stats("4W", date(2017, 2, 1))
	if len(s2.HistoricHashrate) != 0 {
		t.Error("historic hashrate should be absent when disabled")
	}
}

func TestWalletsAndTotals(t *testing.T) {
	p := newTestPool(DefaultPolicy())
	p.SimulateMining("4B", 5, 5000, date(2017, 1, 1), date(2017, 3, 1), 24*time.Hour, nil)
	p.SimulateMining("4A", 5, 5000, date(2017, 1, 1), date(2017, 3, 1), 24*time.Hour, nil)
	ws := p.Wallets()
	if len(ws) != 2 || ws[0] != "4A" || ws[1] != "4B" {
		t.Errorf("Wallets() = %v", ws)
	}
	if p.TotalPaid("4A") <= 0 {
		t.Error("TotalPaid(4A) should be positive")
	}
	if p.TotalPaid("4MISSING") != 0 {
		t.Error("TotalPaid(unknown) should be 0")
	}
	total := p.TotalPaidAll()
	if total < p.TotalPaid("4A")+p.TotalPaid("4B")-1e-9 {
		t.Errorf("TotalPaidAll = %v < sum of parts", total)
	}
}

func TestDistinctIPs(t *testing.T) {
	p := newTestPool(DefaultPolicy())
	p.SimulateMining("4W", 137, 1000, date(2017, 1, 1), date(2017, 6, 1), 24*time.Hour, nil)
	if got := p.DistinctIPs("4W"); got == 0 || got > 137 {
		t.Errorf("DistinctIPs = %d, want in (0, 137]", got)
	}
	if p.DistinctIPs("4NONE") != 0 {
		t.Error("DistinctIPs of unknown wallet should be 0")
	}
}

func TestRegisterConnection(t *testing.T) {
	p := newTestPool(DefaultPolicy())
	if err := p.RegisterConnection("", "1.1.1.1"); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("empty login = %v", err)
	}
	if err := p.RegisterConnection("4W", "1.1.1.1"); err != nil {
		t.Errorf("RegisterConnection error: %v", err)
	}
	_ = p.BanWallet("4W", date(2018, 1, 1))
	if err := p.RegisterConnection("4W", "1.1.1.2"); !errors.Is(err, ErrBanned) {
		t.Errorf("banned login = %v, want ErrBanned", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	p := newTestPool(DefaultPolicy())
	p.SimulateMining("4SNAP", 20, 20*pow.TypicalVictimHashrate, date(2017, 1, 1), date(2017, 6, 1), 24*time.Hour, nil)
	before, err := p.Stats("4SNAP", date(2017, 7, 1))
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.MarshalSnapshot()
	if err != nil {
		t.Fatalf("MarshalSnapshot error: %v", err)
	}
	restored := newTestPool(DefaultPolicy())
	if err := restored.UnmarshalSnapshot(data); err != nil {
		t.Fatalf("UnmarshalSnapshot error: %v", err)
	}
	after, err := restored.Stats("4SNAP", date(2017, 7, 1))
	if err != nil {
		t.Fatal(err)
	}
	if before.TotalPaid != after.TotalPaid || before.Hashes != after.Hashes || before.NumPayments != after.NumPayments {
		t.Errorf("snapshot round trip mismatch: before=%+v after=%+v", before, after)
	}
	if err := restored.UnmarshalSnapshot([]byte("{invalid")); err == nil {
		t.Error("invalid snapshot should error")
	}
}

func TestDirectoryKnownPools(t *testing.T) {
	d := NewDirectory(nil)
	names := d.Names()
	wantSome := []string{"crypto-pool", "dwarfpool", "minexmr", "supportxmr", "minergate", "nanopool"}
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, w := range wantSome {
		if !got[w] {
			t.Errorf("directory missing pool %q", w)
		}
	}
	mg, ok := d.Get("minergate")
	if !ok {
		t.Fatal("minergate should exist")
	}
	if mg.Policy.Transparent {
		t.Error("minergate must be opaque")
	}
	mx, _ := d.Get("minexmr")
	if !mx.Policy.ProvidesHistoricHashrate {
		t.Error("minexmr should expose historic hashrate")
	}
	if len(d.Transparent()) != len(names)-1 {
		t.Errorf("Transparent() = %d pools, want all but minergate", len(d.Transparent()))
	}
}

func TestDirectoryDomainMapAndLookup(t *testing.T) {
	d := NewDirectory(nil)
	dm := d.DomainMap()
	if dm["minexmr.com"] != "minexmr" || dm["crypto-pool.fr"] != "crypto-pool" {
		t.Errorf("domain map incomplete: %v", dm)
	}
	p, ok := d.PoolForDomain("pool.minexmr.com")
	if !ok || p.Name != "minexmr" {
		t.Errorf("PoolForDomain(pool.minexmr.com) = %v, %v", p, ok)
	}
	p, ok = d.PoolForDomain("xmr-eu.dwarfpool.com")
	if !ok || p.Name != "dwarfpool" {
		t.Errorf("PoolForDomain(dwarfpool subdomain) = %v, %v", p, ok)
	}
	if _, ok := d.PoolForDomain("github.com"); ok {
		t.Error("github.com should not map to a pool")
	}
	if _, ok := d.PoolForDomain("notminexmr.com"); ok {
		t.Error("suffix without dot boundary should not match")
	}
}

func TestDirectoryAdd(t *testing.T) {
	d := NewDirectory(nil)
	private := New("private-pool", []string{"private.example"}, model.CurrencyMonero, DefaultPolicy(), nil)
	d.Add(private)
	if _, ok := d.Get("private-pool"); !ok {
		t.Error("added pool should be retrievable")
	}
}

func BenchmarkCredit(b *testing.B) {
	p := newTestPool(DefaultPolicy())
	at := date(2017, 6, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Credit("4BENCH", "1.2.3.4", 5000, "cryptonight", at)
	}
}

func BenchmarkSimulateMiningYear(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := newTestPool(DefaultPolicy())
		p.SimulateMining("4BENCH", 100, 100*pow.TypicalVictimHashrate,
			date(2017, 1, 1), date(2018, 1, 1), 24*time.Hour, nil)
	}
}
