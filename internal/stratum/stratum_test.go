package stratum

import (
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"
)

// fakePool implements a minimal server side of the protocol over a net.Pipe
// for client tests; the full pool lives in internal/pool.
func fakePool(t *testing.T, conn net.Conn, banLogins map[string]bool) {
	t.Helper()
	codec := NewCodec(conn)
	go func() {
		defer conn.Close()
		for {
			req, err := codec.ReadRequest()
			if err != nil {
				return
			}
			switch req.Method {
			case "login":
				var p LoginParams
				if err := json.Unmarshal(req.Params, &p); err != nil {
					_ = codec.WriteJSON(&Response{ID: req.ID, Error: &Error{Code: -1, Message: "bad params"}})
					continue
				}
				if banLogins[p.Login] {
					_ = codec.WriteJSON(&Response{ID: req.ID, Error: &Error{Code: -403, Message: "banned"}})
					continue
				}
				result, _ := json.Marshal(&LoginResult{
					ID:     "worker-1",
					Job:    Job{Blob: "deadbeef", JobID: "job-1", Target: "ffffffff"},
					Status: "OK",
				})
				_ = codec.WriteJSON(&Response{ID: req.ID, Result: result})
			case "getjob":
				result, _ := json.Marshal(&Job{Blob: "cafebabe", JobID: "job-2", Target: "ffffffff"})
				_ = codec.WriteJSON(&Response{ID: req.ID, Result: result})
			case "submit", "keepalived":
				result, _ := json.Marshal(&StatusResult{Status: "OK"})
				_ = codec.WriteJSON(&Response{ID: req.ID, Result: result})
			default:
				_ = codec.WriteJSON(&Response{ID: req.ID, Error: &Error{Code: -32601, Message: "unknown method"}})
			}
		}
	}()
}

func pipePair(t *testing.T, banned map[string]bool) *Client {
	t.Helper()
	clientConn, serverConn := net.Pipe()
	fakePool(t, serverConn, banned)
	c := NewClient(clientConn)
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientLoginAndSubmit(t *testing.T) {
	c := pipePair(t, nil)
	res, err := c.Login("4WALLET_ADDRESS", "x")
	if err != nil {
		t.Fatalf("Login error: %v", err)
	}
	if res.ID != "worker-1" || res.Job.JobID != "job-1" {
		t.Errorf("login result = %+v", res)
	}
	if c.WorkerID != "worker-1" {
		t.Errorf("client worker id = %q", c.WorkerID)
	}

	job, err := c.GetJob()
	if err != nil {
		t.Fatalf("GetJob error: %v", err)
	}
	if job.JobID != "job-2" {
		t.Errorf("job = %+v", job)
	}

	status, err := c.Submit("0000002a", "abcdef")
	if err != nil {
		t.Fatalf("Submit error: %v", err)
	}
	if status.Status != "OK" {
		t.Errorf("submit status = %q", status.Status)
	}
	if err := c.KeepAlive(); err != nil {
		t.Errorf("KeepAlive error: %v", err)
	}
}

func TestClientLoginBanned(t *testing.T) {
	c := pipePair(t, map[string]bool{"4BANNED": true})
	if _, err := c.Login("4BANNED", "x"); err == nil {
		t.Fatal("expected login to be refused for banned wallet")
	}
}

func TestClientMethodsBeforeLogin(t *testing.T) {
	c := pipePair(t, nil)
	if _, err := c.GetJob(); err != ErrNotLoggedIn {
		t.Errorf("GetJob before login = %v, want ErrNotLoggedIn", err)
	}
	if _, err := c.Submit("00", "00"); err != ErrNotLoggedIn {
		t.Errorf("Submit before login = %v, want ErrNotLoggedIn", err)
	}
	if err := c.KeepAlive(); err != ErrNotLoggedIn {
		t.Errorf("KeepAlive before login = %v, want ErrNotLoggedIn", err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ca, cb := NewCodec(a), NewCodec(b)

	done := make(chan error, 1)
	go func() {
		done <- ca.WriteJSON(&Request{ID: 7, Method: "login", Params: json.RawMessage(`{"login":"w"}`)})
	}()
	req, err := cb.ReadRequest()
	if err != nil {
		t.Fatalf("ReadRequest error: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("WriteJSON error: %v", err)
	}
	if req.ID != 7 || req.Method != "login" {
		t.Errorf("request = %+v", req)
	}
}

// readOnlyRW adapts a string to the io.ReadWriter NewCodec expects; writes are
// discarded.
type readOnlyRW struct{ *strings.Reader }

func (readOnlyRW) Write(p []byte) (int, error) { return len(p), nil }

func TestCodecMalformedFrames(t *testing.T) {
	c := NewCodec(readOnlyRW{strings.NewReader("this is not json\n{\"id\":1}\n")})
	if _, err := c.ReadRequest(); err == nil {
		t.Error("expected error for non-JSON frame")
	}
	if _, err := c.ReadRequest(); err == nil {
		t.Error("expected error for frame without method")
	}
}

func TestErrorError(t *testing.T) {
	e := &Error{Code: -403, Message: "banned"}
	if got := e.Error(); !strings.Contains(got, "-403") || !strings.Contains(got, "banned") {
		t.Errorf("Error() = %q", got)
	}
}

func TestParseTrafficLoginDialect(t *testing.T) {
	traffic := `{"id":1,"method":"login","params":{"login":"44abcWALLET","pass":"x","agent":"XMRig/2.14"}}
{"id":2,"method":"submit","params":{"id":"w1","job_id":"j1","nonce":"00","result":"ff"}}
garbage line that is not json
{"id":3,"method":"keepalived","params":{"id":"w1"}}`
	logins := ParseTraffic([]byte(traffic))
	if len(logins) != 1 {
		t.Fatalf("ParseTraffic = %d logins, want 1", len(logins))
	}
	if logins[0].Login != "44abcWALLET" || logins[0].Pass != "x" || logins[0].Agent != "XMRig/2.14" {
		t.Errorf("extracted login = %+v", logins[0])
	}
	if logins[0].Method != "login" {
		t.Errorf("method = %q", logins[0].Method)
	}
}

func TestParseTrafficBitcoinDialect(t *testing.T) {
	traffic := `{"id":1,"method":"mining.subscribe","params":["cpuminer/2.5"]}
{"id":2,"method":"mining.authorize","params":["1BitcoinAddr.rig01","password"]}`
	logins := ParseTraffic([]byte(traffic))
	if len(logins) != 1 {
		t.Fatalf("ParseTraffic = %d logins, want 1", len(logins))
	}
	if logins[0].Login != "1BitcoinAddr" {
		t.Errorf("rig suffix should be stripped: %q", logins[0].Login)
	}
	if logins[0].Method != "mining.authorize" {
		t.Errorf("method = %q", logins[0].Method)
	}
}

func TestParseTrafficEmptyAndNoise(t *testing.T) {
	if got := ParseTraffic(nil); len(got) != 0 {
		t.Errorf("ParseTraffic(nil) = %v", got)
	}
	noise := []byte("GET / HTTP/1.1\r\nHost: example.com\r\n\r\n<html></html>")
	if got := ParseTraffic(noise); len(got) != 0 {
		t.Errorf("ParseTraffic(http noise) = %v", got)
	}
	// Login frame with empty login is ignored.
	empty := []byte(`{"id":1,"method":"login","params":{"login":"","pass":"x"}}`)
	if got := ParseTraffic(empty); len(got) != 0 {
		t.Errorf("ParseTraffic(empty login) = %v", got)
	}
}

func TestIsStratumTraffic(t *testing.T) {
	positives := [][]byte{
		[]byte(`{"id":1,"method":"login","params":{}}`),
		[]byte(`{"id":1, "method": "login", "params":{}}`),
		[]byte(`{"method":"mining.subscribe"}`),
		[]byte("connect stratum+tcp://pool:3333"),
	}
	for _, p := range positives {
		if !IsStratumTraffic(p) {
			t.Errorf("IsStratumTraffic(%q) = false, want true", p)
		}
	}
	negatives := [][]byte{
		nil,
		[]byte("GET / HTTP/1.1"),
		[]byte(`{"method":"rpc.discover"}`),
	}
	for _, n := range negatives {
		if IsStratumTraffic(n) {
			t.Errorf("IsStratumTraffic(%q) = true, want false", n)
		}
	}
}

func TestDialFailsFast(t *testing.T) {
	// Port 1 on localhost is almost certainly closed; Dial must respect the
	// timeout and return an error rather than hang.
	start := time.Now()
	_, err := Dial("127.0.0.1:1", 500*time.Millisecond)
	if err == nil {
		t.Skip("port 1 unexpectedly open")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("Dial took too long to fail")
	}
}

func TestClientOverTCPLoopback(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		fakePool(t, conn, nil)
	}()
	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("Dial error: %v", err)
	}
	defer c.Close()
	if _, err := c.Login("4LOOPBACK", "x"); err != nil {
		t.Fatalf("Login over TCP error: %v", err)
	}
	if _, err := c.Submit("01", "aa"); err != nil {
		t.Fatalf("Submit over TCP error: %v", err)
	}
}

func BenchmarkParseTraffic(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		sb.WriteString(`{"id":1,"method":"login","params":{"login":"4ABCDEF","pass":"x"}}` + "\n")
		sb.WriteString(`{"id":2,"method":"submit","params":{"id":"w","job_id":"j","nonce":"0","result":"f"}}` + "\n")
	}
	raw := []byte(sb.String())
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParseTraffic(raw)
	}
}
