// Package stratum implements the Stratum mining protocol used between miners
// and pools: newline-delimited JSON-RPC 2.0 over TCP.
//
// Crypto-mining malware authenticates to a pool with a "login" request whose
// login parameter carries the wallet (or e-mail) identifier; the pool replies
// with a job, the miner submits shares, and the pool credits the identifier.
// The measurement pipeline extracts identifiers and pool endpoints from this
// traffic (§III-C of the paper), and the pool simulator in internal/pool
// speaks the server side of the same protocol.
//
// The dialect implemented here is the CryptoNote variant used by xmrig and
// xmr-stak (methods "login", "getjob", "submit", "keepalived"), which is the
// one that matters for Monero-mining malware. A small amount of the
// Bitcoin-style "mining.subscribe"/"mining.authorize" dialect is recognized by
// the traffic parser so that BTC-targeting samples are still attributed.
package stratum

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"
)

// Common protocol errors.
var (
	ErrClosed       = errors.New("stratum: connection closed")
	ErrNotLoggedIn  = errors.New("stratum: not logged in")
	ErrMalformed    = errors.New("stratum: malformed message")
	ErrLoginRefused = errors.New("stratum: login refused")
)

// Request is a JSON-RPC request frame.
type Request struct {
	ID     int64           `json:"id"`
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
}

// Response is a JSON-RPC response frame.
type Response struct {
	ID      int64           `json:"id"`
	Jsonrpc string          `json:"jsonrpc,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   *Error          `json:"error,omitempty"`
}

// Notification is a server-initiated frame (e.g. a new job push).
type Notification struct {
	Jsonrpc string          `json:"jsonrpc,omitempty"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params,omitempty"`
}

// Error is a JSON-RPC error object.
type Error struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("stratum error %d: %s", e.Code, e.Message) }

// LoginParams is the parameter object of the "login" method.
type LoginParams struct {
	Login string   `json:"login"`
	Pass  string   `json:"pass"`
	Agent string   `json:"agent,omitempty"`
	Algo  []string `json:"algo,omitempty"`
}

// Job is a mining job handed to a worker.
type Job struct {
	Blob     string `json:"blob"`
	JobID    string `json:"job_id"`
	Target   string `json:"target"`
	Height   int64  `json:"height,omitempty"`
	Algo     string `json:"algo,omitempty"`
	SeedHash string `json:"seed_hash,omitempty"`
}

// LoginResult is the result object of a successful "login".
type LoginResult struct {
	ID     string `json:"id"`
	Job    Job    `json:"job"`
	Status string `json:"status"`
}

// SubmitParams is the parameter object of the "submit" method.
type SubmitParams struct {
	ID     string `json:"id"`
	JobID  string `json:"job_id"`
	Nonce  string `json:"nonce"`
	Result string `json:"result"`
	Algo   string `json:"algo,omitempty"`
}

// StatusResult is the generic {"status":"OK"} result.
type StatusResult struct {
	Status string `json:"status"`
}

// Codec frames newline-delimited JSON messages over an io.ReadWriter.
type Codec struct {
	r  *bufio.Reader
	w  io.Writer
	mu sync.Mutex
}

// NewCodec wraps a transport in a Codec.
func NewCodec(rw io.ReadWriter) *Codec {
	return &Codec{r: bufio.NewReader(rw), w: rw}
}

// WriteJSON marshals v and writes it as one newline-terminated frame.
func (c *Codec) WriteJSON(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(append(data, '\n')); err != nil {
		return err
	}
	return nil
}

// ReadFrame reads one newline-terminated frame.
func (c *Codec) ReadFrame() ([]byte, error) {
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		if len(line) == 0 {
			return nil, err
		}
		// Return a trailing unterminated frame as-is.
	}
	line = []byte(strings.TrimRight(string(line), "\r\n"))
	if len(line) == 0 {
		return nil, ErrClosed
	}
	return line, nil
}

// ReadRequest reads and decodes one request frame.
func (c *Codec) ReadRequest() (*Request, error) {
	frame, err := c.ReadFrame()
	if err != nil {
		return nil, err
	}
	var req Request
	if err := json.Unmarshal(frame, &req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if req.Method == "" {
		return nil, ErrMalformed
	}
	return &req, nil
}

// ReadResponse reads and decodes one response frame.
func (c *Codec) ReadResponse() (*Response, error) {
	frame, err := c.ReadFrame()
	if err != nil {
		return nil, err
	}
	var resp Response
	if err := json.Unmarshal(frame, &resp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return &resp, nil
}

// Client is a Stratum mining client: the role the malware (or a stock miner
// started by the malware) plays.
type Client struct {
	conn   net.Conn
	codec  *Codec
	nextID int64
	mu     sync.Mutex

	// WorkerID is the session identifier assigned by the pool at login.
	WorkerID string
	// CurrentJob is the most recent job received.
	CurrentJob Job
	// Agent is the user-agent string sent at login.
	Agent string
}

// Dial connects to a pool endpoint ("host:port") with the given timeout.
func Dial(endpoint string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", endpoint, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection in a Client. Useful for tests
// using net.Pipe.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, codec: NewCodec(conn), Agent: "XMRig/2.14.1"}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) call(method string, params any) (*Response, error) {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()
	raw, err := json.Marshal(params)
	if err != nil {
		return nil, err
	}
	if err := c.codec.WriteJSON(&Request{ID: id, Method: method, Params: raw}); err != nil {
		return nil, err
	}
	for {
		resp, err := c.codec.ReadResponse()
		if err != nil {
			return nil, err
		}
		// Skip notifications (frames without a matching id are re-read; a
		// real client would queue job pushes, the simulator's miners poll).
		if resp.ID == id || resp.Error != nil {
			return resp, nil
		}
	}
}

// Login authenticates to the pool with the identifier (wallet or e-mail) and
// password, returning the first job.
func (c *Client) Login(login, pass string) (*LoginResult, error) {
	resp, err := c.call("login", &LoginParams{Login: login, Pass: pass, Agent: c.Agent})
	if err != nil {
		return nil, err
	}
	if resp.Error != nil {
		return nil, fmt.Errorf("%w: %s", ErrLoginRefused, resp.Error.Message)
	}
	var result LoginResult
	if err := json.Unmarshal(resp.Result, &result); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	c.WorkerID = result.ID
	c.CurrentJob = result.Job
	return &result, nil
}

// GetJob asks the pool for a fresh job.
func (c *Client) GetJob() (*Job, error) {
	if c.WorkerID == "" {
		return nil, ErrNotLoggedIn
	}
	resp, err := c.call("getjob", map[string]string{"id": c.WorkerID})
	if err != nil {
		return nil, err
	}
	if resp.Error != nil {
		return nil, resp.Error
	}
	var job Job
	if err := json.Unmarshal(resp.Result, &job); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	c.CurrentJob = job
	return &job, nil
}

// Submit submits a share for the current job. nonce and result are hex strings
// computed by the mining algorithm (or fabricated by the simulator).
func (c *Client) Submit(nonce, result string) (*StatusResult, error) {
	if c.WorkerID == "" {
		return nil, ErrNotLoggedIn
	}
	resp, err := c.call("submit", &SubmitParams{
		ID: c.WorkerID, JobID: c.CurrentJob.JobID, Nonce: nonce, Result: result,
	})
	if err != nil {
		return nil, err
	}
	if resp.Error != nil {
		return nil, resp.Error
	}
	var status StatusResult
	if err := json.Unmarshal(resp.Result, &status); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return &status, nil
}

// KeepAlive sends a keepalived request.
func (c *Client) KeepAlive() error {
	if c.WorkerID == "" {
		return ErrNotLoggedIn
	}
	resp, err := c.call("keepalived", map[string]string{"id": c.WorkerID})
	if err != nil {
		return err
	}
	if resp.Error != nil {
		return resp.Error
	}
	return nil
}

// ExtractedLogin is a (login, pass, agent) triple recovered from captured
// Stratum traffic; the network-analysis stage of the pipeline produces these.
type ExtractedLogin struct {
	Login string
	Pass  string
	Agent string
	// Method distinguishes the CryptoNote "login" dialect from the
	// Bitcoin-style "mining.authorize" dialect.
	Method string
}

// ParseTraffic scans a raw captured byte stream (one or more newline-delimited
// frames, possibly interleaved with non-Stratum noise) and returns every login
// identifier observed. It is deliberately tolerant: malformed frames and
// unrelated lines are skipped.
func ParseTraffic(raw []byte) []ExtractedLogin {
	var out []ExtractedLogin
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || !strings.Contains(line, "{") {
			continue
		}
		var req Request
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			continue
		}
		switch req.Method {
		case "login":
			var p LoginParams
			if err := json.Unmarshal(req.Params, &p); err != nil || p.Login == "" {
				continue
			}
			out = append(out, ExtractedLogin{Login: p.Login, Pass: p.Pass, Agent: p.Agent, Method: "login"})
		case "mining.authorize":
			// Params are ["worker", "password"].
			var arr []string
			if err := json.Unmarshal(req.Params, &arr); err != nil || len(arr) == 0 {
				continue
			}
			e := ExtractedLogin{Login: arr[0], Method: "mining.authorize"}
			if len(arr) > 1 {
				e.Pass = arr[1]
			}
			// Worker names are often "wallet.rigname"; strip the rig suffix.
			if i := strings.Index(e.Login, "."); i > 0 {
				e.Login = e.Login[:i]
			}
			out = append(out, e)
		}
	}
	return out
}

// IsStratumTraffic reports whether the raw capture contains at least one
// Stratum frame (login, submit, subscribe, ...). The sanity checks use it as
// an indicator of mining capability.
func IsStratumTraffic(raw []byte) bool {
	s := string(raw)
	for _, marker := range []string{
		`"method":"login"`, `"method": "login"`,
		`"method":"submit"`, `"method": "submit"`,
		`"method":"mining.subscribe"`, `"method":"mining.authorize"`,
		"stratum+tcp://", "stratum+ssl://",
	} {
		if strings.Contains(s, marker) {
			return true
		}
	}
	return false
}
