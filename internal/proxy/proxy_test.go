package proxy

import (
	"testing"
	"time"

	"cryptomining/internal/model"
	"cryptomining/internal/pool"
	"cryptomining/internal/stratum"
)

// startPool spins up a pool server with an aggressive ban policy so the tests
// can show that the proxy hides the botnet behind a single IP.
func startPool(t *testing.T, banIPThreshold int) (*pool.Server, string) {
	t.Helper()
	policy := pool.DefaultPolicy()
	policy.BanIPThreshold = banIPThreshold
	p := pool.New("crypto-pool", []string{"crypto-pool.fr"}, model.CurrencyMonero, policy, nil)
	srv := pool.NewServer(p)
	srv.Clock = func() time.Time { return time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC) }
	addr, err := srv.ListenStratum("127.0.0.1:0")
	if err != nil {
		t.Fatalf("pool listen error: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, addr
}

func TestProxyForwardsSharesUnderSingleWallet(t *testing.T) {
	srv, poolAddr := startPool(t, 1000)
	wallet := "4PROXY_CAMPAIGN_WALLET"

	px := New(poolAddr, wallet)
	proxyAddr, err := px.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy start error: %v", err)
	}
	defer px.Close()

	// Three "bots" connect to the proxy and submit shares.
	for b := 0; b < 3; b++ {
		c, err := stratum.Dial(proxyAddr, 2*time.Second)
		if err != nil {
			t.Fatalf("bot %d dial error: %v", b, err)
		}
		if _, err := c.Login("bot-worker", "x"); err != nil {
			t.Fatalf("bot %d login error: %v", b, err)
		}
		for i := 0; i < 5; i++ {
			if _, err := c.Submit("0a", "ff"); err != nil {
				t.Fatalf("bot %d submit error: %v", b, err)
			}
		}
		if _, err := c.GetJob(); err != nil {
			t.Fatalf("bot %d getjob error: %v", b, err)
		}
		if err := c.KeepAlive(); err != nil {
			t.Fatalf("bot %d keepalive error: %v", b, err)
		}
		c.Close()
	}

	stats := px.Stats()
	if stats.DownstreamConnections != 3 {
		t.Errorf("downstream connections = %d, want 3", stats.DownstreamConnections)
	}
	if stats.SharesForwarded != 15 {
		t.Errorf("shares forwarded = %d, want 15", stats.SharesForwarded)
	}
	if stats.SharesRejected != 0 {
		t.Errorf("shares rejected = %d, want 0", stats.SharesRejected)
	}

	// The pool sees exactly one wallet and one source IP.
	ws, err := srv.Pool.Stats(wallet, srv.Clock())
	if err != nil {
		t.Fatalf("pool stats error: %v", err)
	}
	if ws.Hashes == 0 {
		t.Error("pool should have credited the proxy wallet")
	}
	if got := srv.Pool.DistinctIPs(wallet); got != 1 {
		t.Errorf("pool sees %d distinct IPs, want 1 (the proxy)", got)
	}
}

func TestProxyEvadesIPBanPolicy(t *testing.T) {
	// Ban threshold of 2 IPs: direct bots would be banned, a proxy is not.
	srv, poolAddr := startPool(t, 2)
	wallet := "4EVADER"
	px := New(poolAddr, wallet)
	proxyAddr, err := px.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy start error: %v", err)
	}
	defer px.Close()

	for b := 0; b < 5; b++ {
		c, err := stratum.Dial(proxyAddr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Login("bot", "x"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Submit("0b", "aa"); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	if srv.Pool.IsBanned(wallet) {
		t.Error("proxy-fronted wallet should not be banned by the IP policy")
	}
}

func TestProxyStartFailsWhenUpstreamUnreachable(t *testing.T) {
	px := New("127.0.0.1:1", "4W")
	px.DialTimeout = 300 * time.Millisecond
	if _, err := px.Start("127.0.0.1:0"); err == nil {
		t.Error("start should fail when upstream pool is unreachable")
		px.Close()
	}
}

func TestProxyStartFailsWhenWalletBanned(t *testing.T) {
	srv, poolAddr := startPool(t, 1000)
	wallet := "4ALREADY_BANNED"
	if err := srv.Pool.Credit(wallet, "9.9.9.9", 1000, "cryptonight", srv.Clock()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Pool.BanWallet(wallet, srv.Clock()); err != nil {
		t.Fatal(err)
	}
	px := New(poolAddr, wallet)
	if _, err := px.Start("127.0.0.1:0"); err == nil {
		t.Error("start should fail when upstream login is refused")
		px.Close()
	}
}

func TestProxyCloseIdempotent(t *testing.T) {
	_, poolAddr := startPool(t, 1000)
	px := New(poolAddr, "4W")
	if _, err := px.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := px.Close(); err != nil {
		t.Errorf("first close error: %v", err)
	}
	if err := px.Close(); err != nil {
		t.Errorf("second close error: %v", err)
	}
}

func TestProxyRejectsSubmitBeforeLogin(t *testing.T) {
	_, poolAddr := startPool(t, 1000)
	px := New(poolAddr, "4W")
	proxyAddr, err := px.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	c, err := stratum.Dial(proxyAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.WorkerID = "forged"
	if _, err := c.Submit("00", "ff"); err == nil {
		t.Error("proxy should reject submit before login")
	}
}
