// Package proxy implements a Stratum mining proxy.
//
// Mining from a large botnet with one wallet raises suspicion at the pool,
// which may ban the wallet. Offenders therefore run proxies that aggregate
// the shares of many bots and forward them to the pool over a single
// connection, so the pool only ever sees one source IP (§III-E of the paper).
// The proxy below speaks the server side of the Stratum protocol towards the
// bots and the client side towards an upstream pool, and keeps per-downstream
// accounting so tests (and the ecosystem simulator) can verify that the
// aggregation hides the botnet from the pool's ban policy.
package proxy

import (
	"encoding/json"
	"errors"
	"net"
	"sync"
	"time"

	"cryptomining/internal/stratum"
)

// Errors returned by the proxy.
var (
	ErrNotStarted = errors.New("proxy: not started")
)

// Stats summarizes the proxy's activity.
type Stats struct {
	// DownstreamConnections is the number of bot connections accepted.
	DownstreamConnections int
	// SharesForwarded is the number of shares forwarded upstream.
	SharesForwarded int
	// SharesRejected is the number of shares the upstream pool rejected.
	SharesRejected int
}

// Proxy forwards mining work from many downstream workers to one upstream
// pool connection, authenticating upstream with a single wallet.
type Proxy struct {
	// UpstreamEndpoint is the pool's Stratum address (host:port).
	UpstreamEndpoint string
	// Wallet is the identifier used for the single upstream login.
	Wallet string
	// Password for the upstream login (usually "x").
	Password string
	// DialTimeout bounds the upstream connection attempt.
	DialTimeout time.Duration

	mu       sync.Mutex
	ln       net.Listener
	upstream *stratum.Client
	stats    Stats
	wg       sync.WaitGroup
	closed   bool
}

// New creates a proxy that logs in upstream with the given wallet.
func New(upstreamEndpoint, wallet string) *Proxy {
	return &Proxy{
		UpstreamEndpoint: upstreamEndpoint,
		Wallet:           wallet,
		Password:         "x",
		DialTimeout:      3 * time.Second,
	}
}

// Start connects upstream, logs in, and begins accepting downstream workers on
// listenAddr. It returns the bound downstream address.
func (p *Proxy) Start(listenAddr string) (string, error) {
	up, err := stratum.Dial(p.UpstreamEndpoint, p.DialTimeout)
	if err != nil {
		return "", err
	}
	if _, err := up.Login(p.Wallet, p.Password); err != nil {
		up.Close()
		return "", err
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		up.Close()
		return "", err
	}
	p.mu.Lock()
	p.upstream = up
	p.ln = ln
	p.mu.Unlock()

	p.wg.Add(1)
	go p.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (p *Proxy) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		p.stats.DownstreamConnections++
		p.mu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handleDownstream(conn)
		}()
	}
}

// handleDownstream serves one bot: it accepts any login (bots often present
// the campaign wallet or a throwaway identifier) and forwards submits
// upstream under the proxy's single session.
func (p *Proxy) handleDownstream(conn net.Conn) {
	defer conn.Close()
	codec := stratum.NewCodec(conn)
	loggedIn := false
	for {
		req, err := codec.ReadRequest()
		if err != nil {
			return
		}
		switch req.Method {
		case "login":
			loggedIn = true
			result, _ := json.Marshal(&stratum.LoginResult{
				ID:     "proxy-worker",
				Job:    p.currentJob(),
				Status: "OK",
			})
			_ = codec.WriteJSON(&stratum.Response{ID: req.ID, Result: result})
		case "getjob":
			if !loggedIn {
				_ = codec.WriteJSON(&stratum.Response{ID: req.ID, Error: &stratum.Error{Code: -1, Message: "not logged in"}})
				continue
			}
			result, _ := json.Marshal(p.currentJob())
			_ = codec.WriteJSON(&stratum.Response{ID: req.ID, Result: result})
		case "submit":
			if !loggedIn {
				_ = codec.WriteJSON(&stratum.Response{ID: req.ID, Error: &stratum.Error{Code: -1, Message: "not logged in"}})
				continue
			}
			var sp stratum.SubmitParams
			_ = json.Unmarshal(req.Params, &sp)
			if err := p.forwardShare(sp.Nonce, sp.Result); err != nil {
				p.mu.Lock()
				p.stats.SharesRejected++
				p.mu.Unlock()
				_ = codec.WriteJSON(&stratum.Response{ID: req.ID, Error: &stratum.Error{Code: -2, Message: err.Error()}})
				continue
			}
			p.mu.Lock()
			p.stats.SharesForwarded++
			p.mu.Unlock()
			result, _ := json.Marshal(&stratum.StatusResult{Status: "OK"})
			_ = codec.WriteJSON(&stratum.Response{ID: req.ID, Result: result})
		case "keepalived":
			result, _ := json.Marshal(&stratum.StatusResult{Status: "KEEPALIVED"})
			_ = codec.WriteJSON(&stratum.Response{ID: req.ID, Result: result})
		default:
			_ = codec.WriteJSON(&stratum.Response{ID: req.ID, Error: &stratum.Error{Code: -32601, Message: "unknown method"}})
		}
	}
}

func (p *Proxy) currentJob() stratum.Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.upstream == nil {
		return stratum.Job{JobID: "proxy-idle", Target: "ffffffff"}
	}
	return p.upstream.CurrentJob
}

func (p *Proxy) forwardShare(nonce, result string) error {
	p.mu.Lock()
	up := p.upstream
	p.mu.Unlock()
	if up == nil {
		return ErrNotStarted
	}
	_, err := up.Submit(nonce, result)
	return err
}

// Stats returns a snapshot of the proxy's counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close stops accepting downstream workers and closes the upstream session.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ln, up := p.ln, p.upstream
	p.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	if up != nil {
		_ = up.Close()
	}
	p.wg.Wait()
	return nil
}
