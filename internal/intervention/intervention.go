// Package intervention models the countermeasures discussed in §VI of the
// paper and measures their effect on campaign earnings:
//
//   - reporting illicit wallets to pool operators, who may ban them
//     (cooperative pools) or not (non-cooperative pools), with the caveat
//     that proxy-fronted wallets evade connection-count-based ban policies;
//   - changes in the Proof-of-Work algorithm, which invalidate shares from
//     miners that are not updated and therefore kill campaigns whose
//     operators do not maintain their botnets.
//
// The functions here operate on the pool simulator and the PoW model, so the
// same experiments the paper performed live (report wallets → observe the
// campaign move pools; monitor three forks → count die-offs) can be replayed
// deterministically and benchmarked.
package intervention

import (
	"sort"
	"time"

	"cryptomining/internal/model"
	"cryptomining/internal/pool"
	"cryptomining/internal/pow"
)

// ReportOutcome describes the result of reporting one wallet to one pool.
type ReportOutcome struct {
	Pool   string
	Wallet string
	// Banned reports whether the pool acted on the report.
	Banned bool
	// Reason explains why a cooperative pool declined to ban.
	Reason string
	// DistinctIPs is the connection evidence the pool consulted.
	DistinctIPs int
	// PaidBeforeBan is the amount already paid to the wallet.
	PaidBeforeBan float64
}

// PoolCooperation describes how a pool responds to abuse reports, mirroring
// the behaviours the authors encountered: non-cooperative pools ignore
// reports; cooperative pools err on the safe side and only ban wallets whose
// connection counts clearly indicate a botnet.
type PoolCooperation struct {
	// Cooperative pools act on reports at all.
	Cooperative bool
	// MinIPsToBan is the minimum number of distinct source IPs a cooperative
	// pool requires before banning a reported wallet.
	MinIPsToBan int
}

// DefaultCooperation approximates the paper's experience: cooperative, but
// only banning wallets with a large number of connections.
func DefaultCooperation() PoolCooperation {
	return PoolCooperation{Cooperative: true, MinIPsToBan: 100}
}

// ReportWallets reports a set of wallets to every pool in the directory and
// returns the per-pool outcomes. Pools are consulted with the given
// cooperation policy; bans take effect at time `at`.
func ReportWallets(dir *pool.Directory, wallets []string, coop PoolCooperation, at time.Time) []ReportOutcome {
	return ReportWalletsTo(dir.Pools(), wallets, func(string) PoolCooperation { return coop }, at)
}

// ReportWalletsTo reports a set of wallets to an explicit pool set, with a
// per-pool cooperation policy — the shape live what-if scenarios take, where
// each operator reacts differently to the same abuse report. coopFor is
// consulted once per pool by name; a nil coopFor applies DefaultCooperation
// everywhere.
func ReportWalletsTo(pools []*pool.Pool, wallets []string, coopFor func(poolName string) PoolCooperation, at time.Time) []ReportOutcome {
	if coopFor == nil {
		coopFor = func(string) PoolCooperation { return DefaultCooperation() }
	}
	var out []ReportOutcome
	for _, p := range pools {
		coop := coopFor(p.Name)
		for _, w := range wallets {
			paid := p.TotalPaid(w)
			ips := p.DistinctIPs(w)
			if paid == 0 && ips == 0 {
				continue // the pool has never seen this wallet
			}
			o := ReportOutcome{Pool: p.Name, Wallet: w, DistinctIPs: ips, PaidBeforeBan: paid}
			switch {
			case !coop.Cooperative:
				o.Reason = "pool does not act on abuse reports"
			case ips < coop.MinIPsToBan:
				o.Reason = "connection count below the pool's botnet threshold (proxy suspected)"
			default:
				if err := p.BanWallet(w, at); err == nil {
					o.Banned = true
				} else {
					o.Reason = err.Error()
				}
			}
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pool != out[j].Pool {
			return out[i].Pool < out[j].Pool
		}
		return out[i].Wallet < out[j].Wallet
	})
	return out
}

// BanEffect quantifies how a campaign's earnings change after an intervention:
// the XMR per month received before and after the given date.
type BanEffect struct {
	Wallet        string
	MonthlyBefore float64
	MonthlyAfter  float64
}

// Reduction returns the fractional reduction in monthly earnings (0 when the
// wallet earned nothing before the intervention).
func (e BanEffect) Reduction() float64 {
	if e.MonthlyBefore <= 0 {
		return 0
	}
	r := 1 - e.MonthlyAfter/e.MonthlyBefore
	if r < 0 {
		return 0
	}
	return r
}

// MeasureBanEffect computes the earnings-rate change around an intervention
// date from a wallet's merged payment history across pools.
func MeasureBanEffect(payments []model.Payment, wallet string, at, horizonEnd time.Time) BanEffect {
	e := BanEffect{Wallet: wallet}
	var before, after float64
	var first time.Time
	for _, p := range payments {
		if p.Wallet != wallet {
			continue
		}
		if first.IsZero() || p.Timestamp.Before(first) {
			first = p.Timestamp
		}
		if p.Timestamp.Before(at) {
			before += p.Amount
		} else if p.Timestamp.Before(horizonEnd) {
			after += p.Amount
		}
	}
	if first.IsZero() {
		return e
	}
	monthsBefore := at.Sub(first).Hours() / (24 * 30.44)
	monthsAfter := horizonEnd.Sub(at).Hours() / (24 * 30.44)
	if monthsBefore > 0 {
		e.MonthlyBefore = before / monthsBefore
	}
	if monthsAfter > 0 {
		e.MonthlyAfter = after / monthsAfter
	}
	return e
}

// ForkDieOff summarizes the effect of one PoW change on a set of campaigns:
// how many campaigns that were receiving payments before the fork stopped
// receiving them afterwards (the ~72% / 89% / 96% figures of §VI).
type ForkDieOff struct {
	Fork          time.Time
	ActiveBefore  int
	ActiveAfter   int
	CeasedPercent float64
}

// CampaignPayments is the minimal view of a campaign the die-off analysis
// needs: its payment timestamps.
type CampaignPayments struct {
	CampaignID int
	Payments   []time.Time
}

// MeasureForkDieOffs computes the die-off at each fork: a campaign counts as
// active before the fork if it has a payment in the window [fork-window, fork)
// and as surviving if it has a payment in [fork, fork+window).
func MeasureForkDieOffs(campaigns []CampaignPayments, forks []time.Time, window time.Duration) []ForkDieOff {
	if window <= 0 {
		window = 90 * 24 * time.Hour
	}
	var out []ForkDieOff
	for _, fork := range forks {
		d := ForkDieOff{Fork: fork}
		for _, c := range campaigns {
			before, after := false, false
			for _, t := range c.Payments {
				if t.Before(fork) && t.After(fork.Add(-window)) {
					before = true
				}
				if !t.Before(fork) && t.Before(fork.Add(window)) {
					after = true
				}
			}
			if before {
				d.ActiveBefore++
				if after {
					d.ActiveAfter++
				}
			}
		}
		if d.ActiveBefore > 0 {
			d.CeasedPercent = 100 * float64(d.ActiveBefore-d.ActiveAfter) / float64(d.ActiveBefore)
		}
		out = append(out, d)
	}
	return out
}

// ForkFrequencyScenario estimates, with the PoW reward model, how much a
// non-updating botnet earns under different fork cadences — the "increase the
// frequency of PoW changes" countermeasure the paper proposes. It returns the
// expected XMR mined by a botnet of the given size over the horizon when the
// algorithm changes every `cadence` (the botnet only earns until the first
// change after its start).
func ForkFrequencyScenario(network *pow.Network, botnetSize int, start time.Time, horizon, cadence time.Duration) float64 {
	if network == nil {
		network = pow.NewMoneroNetwork()
	}
	if cadence <= 0 || horizon <= 0 || botnetSize <= 0 {
		return 0
	}
	// The botnet earns from start until the first fork after start, at most
	// the horizon.
	earningWindow := cadence
	if earningWindow > horizon {
		earningWindow = horizon
	}
	hashrate := float64(botnetSize) * pow.TypicalVictimHashrate
	// Integrate in daily steps to follow the reward curve.
	var total float64
	for t := start; t.Before(start.Add(earningWindow)); t = t.Add(24 * time.Hour) {
		total += network.ExpectedReward(hashrate, 24*time.Hour, t)
	}
	return total
}
