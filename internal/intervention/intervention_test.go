package intervention

import (
	"testing"
	"time"

	"cryptomining/internal/model"
	"cryptomining/internal/pool"
	"cryptomining/internal/pow"
)

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// seededDirectory builds a directory where one wallet mines from many IPs
// (botnet) and another from a single IP (proxy-fronted).
func seededDirectory() *pool.Directory {
	dir := pool.NewDirectory(nil)
	mx, _ := dir.Get("minexmr")
	cp, _ := dir.Get("crypto-pool")
	// Botnet wallet: many IPs, mined at two pools (daily submissions so the
	// pools observe hundreds of distinct source addresses).
	mx.SimulateMining("4BOTNET", 500, 500*pow.TypicalVictimHashrate,
		date(2017, 1, 1), date(2018, 9, 1), 24*time.Hour, nil)
	cp.SimulateMining("4BOTNET", 500, 500*pow.TypicalVictimHashrate,
		date(2017, 1, 1), date(2018, 9, 1), 24*time.Hour, nil)
	// Proxy-fronted wallet: a single source IP.
	mx.SimulateMining("4PROXIED", 1, 500*pow.TypicalVictimHashrate,
		date(2017, 1, 1), date(2018, 9, 1), 24*time.Hour, nil)
	return dir
}

func TestReportWalletsCooperativeBansBotnet(t *testing.T) {
	dir := seededDirectory()
	at := date(2018, 9, 15)
	outcomes := ReportWallets(dir, []string{"4BOTNET", "4PROXIED", "4NEVER_SEEN"}, DefaultCooperation(), at)

	byKey := map[string]ReportOutcome{}
	for _, o := range outcomes {
		byKey[o.Pool+"/"+o.Wallet] = o
	}
	// The botnet wallet is banned at both pools where it has activity.
	if o := byKey["minexmr/4BOTNET"]; !o.Banned || o.DistinctIPs < 100 {
		t.Errorf("minexmr/4BOTNET outcome = %+v, want banned", o)
	}
	if o := byKey["crypto-pool/4BOTNET"]; !o.Banned {
		t.Errorf("crypto-pool/4BOTNET outcome = %+v, want banned", o)
	}
	// The proxy-fronted wallet is below the connection threshold: declined.
	if o := byKey["minexmr/4PROXIED"]; o.Banned || o.Reason == "" {
		t.Errorf("minexmr/4PROXIED outcome = %+v, want declined with a reason", o)
	}
	// Never-seen wallets produce no outcomes.
	for k := range byKey {
		if k == "minexmr/4NEVER_SEEN" {
			t.Error("never-seen wallet should have no outcome")
		}
	}
	// Bans are effective at the pool.
	mx, _ := dir.Get("minexmr")
	if !mx.IsBanned("4BOTNET") {
		t.Error("4BOTNET should be banned at minexmr")
	}
	if mx.IsBanned("4PROXIED") {
		t.Error("4PROXIED should not be banned")
	}
}

func TestReportWalletsNonCooperative(t *testing.T) {
	dir := seededDirectory()
	outcomes := ReportWallets(dir, []string{"4BOTNET"}, PoolCooperation{Cooperative: false}, date(2018, 9, 15))
	for _, o := range outcomes {
		if o.Banned {
			t.Errorf("non-cooperative pool banned a wallet: %+v", o)
		}
		if o.Reason == "" {
			t.Error("declined report should carry a reason")
		}
	}
	mx, _ := dir.Get("minexmr")
	if mx.IsBanned("4BOTNET") {
		t.Error("non-cooperative pool must not ban")
	}
}

func TestMeasureBanEffect(t *testing.T) {
	// Twelve months of 100 XMR/month before the ban, then 10 XMR/month after.
	var payments []model.Payment
	for m := 0; m < 12; m++ {
		payments = append(payments, model.Payment{
			Wallet: "4W", Amount: 100, Timestamp: date(2017, time.Month(1+m), 15),
		})
	}
	for m := 0; m < 6; m++ {
		payments = append(payments, model.Payment{
			Wallet: "4W", Amount: 10, Timestamp: date(2018, time.Month(1+m), 15),
		})
	}
	// Payments of an unrelated wallet are ignored.
	payments = append(payments, model.Payment{Wallet: "4OTHER", Amount: 1000, Timestamp: date(2017, 6, 1)})

	e := MeasureBanEffect(payments, "4W", date(2018, 1, 1), date(2018, 7, 1))
	if e.MonthlyBefore < 90 || e.MonthlyBefore > 110 {
		t.Errorf("monthly before = %v, want ~100", e.MonthlyBefore)
	}
	if e.MonthlyAfter < 8 || e.MonthlyAfter > 12 {
		t.Errorf("monthly after = %v, want ~10", e.MonthlyAfter)
	}
	if r := e.Reduction(); r < 0.85 || r > 0.95 {
		t.Errorf("reduction = %v, want ~0.9", r)
	}
	// Wallet with no payments: zero effect.
	empty := MeasureBanEffect(payments, "4UNKNOWN", date(2018, 1, 1), date(2018, 7, 1))
	if empty.MonthlyBefore != 0 || empty.Reduction() != 0 {
		t.Errorf("empty effect = %+v", empty)
	}
}

func TestBanEffectReductionClamped(t *testing.T) {
	e := BanEffect{MonthlyBefore: 10, MonthlyAfter: 20}
	if e.Reduction() != 0 {
		t.Error("earnings increase should clamp reduction to 0")
	}
	if (BanEffect{}).Reduction() != 0 {
		t.Error("zero effect reduction should be 0")
	}
}

func TestMeasureForkDieOffs(t *testing.T) {
	fork1 := date(2018, 4, 6)
	fork2 := date(2018, 10, 18)
	monthly := func(from, to time.Time) []time.Time {
		var out []time.Time
		for t := from; t.Before(to); t = t.AddDate(0, 1, 0) {
			out = append(out, t)
		}
		return out
	}
	campaigns := []CampaignPayments{
		// Dies at the first fork.
		{CampaignID: 1, Payments: monthly(date(2017, 6, 1), date(2018, 4, 1))},
		// Survives the first fork, dies at the second.
		{CampaignID: 2, Payments: monthly(date(2017, 6, 1), date(2018, 10, 1))},
		// Survives both.
		{CampaignID: 3, Payments: monthly(date(2017, 6, 1), date(2019, 3, 1))},
		// Starts only after the first fork.
		{CampaignID: 4, Payments: monthly(date(2018, 6, 1), date(2019, 1, 1))},
	}
	dieoffs := MeasureForkDieOffs(campaigns, []time.Time{fork1, fork2}, 90*24*time.Hour)
	if len(dieoffs) != 2 {
		t.Fatalf("dieoffs = %d", len(dieoffs))
	}
	d1 := dieoffs[0]
	if d1.ActiveBefore != 3 || d1.ActiveAfter != 2 {
		t.Errorf("fork1 die-off = %+v", d1)
	}
	if d1.CeasedPercent < 30 || d1.CeasedPercent > 40 {
		t.Errorf("fork1 ceased = %v%%", d1.CeasedPercent)
	}
	d2 := dieoffs[1]
	if d2.ActiveBefore != 3 || d2.ActiveAfter != 2 {
		t.Errorf("fork2 die-off = %+v", d2)
	}
	// Default window when zero.
	if got := MeasureForkDieOffs(campaigns, []time.Time{fork1}, 0); len(got) != 1 || got[0].ActiveBefore == 0 {
		t.Errorf("default window die-off = %+v", got)
	}
}

func TestForkFrequencyScenario(t *testing.T) {
	n := pow.NewMoneroNetwork()
	start := date(2017, 6, 1)
	horizon := 365 * 24 * time.Hour
	yearly := ForkFrequencyScenario(n, 2000, start, horizon, 365*24*time.Hour)
	quarterly := ForkFrequencyScenario(n, 2000, start, horizon, 90*24*time.Hour)
	monthly := ForkFrequencyScenario(n, 2000, start, horizon, 30*24*time.Hour)
	if yearly <= quarterly || quarterly <= monthly {
		t.Errorf("more frequent forks should reduce non-updating botnet earnings: yearly=%v quarterly=%v monthly=%v",
			yearly, quarterly, monthly)
	}
	if monthly <= 0 {
		t.Error("even a monthly cadence should allow some earnings")
	}
	// A fork cadence longer than the horizon is capped at the horizon.
	capped := ForkFrequencyScenario(n, 2000, start, horizon, 10*365*24*time.Hour)
	if capped != yearly {
		t.Errorf("cadence beyond horizon should equal horizon earnings: %v vs %v", capped, yearly)
	}
	if ForkFrequencyScenario(n, 0, start, horizon, horizon) != 0 {
		t.Error("zero botnet earns zero")
	}
	if ForkFrequencyScenario(nil, 100, start, 0, horizon) != 0 {
		t.Error("zero horizon earns zero")
	}
}

func BenchmarkMeasureForkDieOffs(b *testing.B) {
	var campaigns []CampaignPayments
	for i := 0; i < 1000; i++ {
		var times []time.Time
		for m := 0; m < 24; m++ {
			times = append(times, date(2017, 1, 1).AddDate(0, m, i%28))
		}
		campaigns = append(campaigns, CampaignPayments{CampaignID: i, Payments: times})
	}
	forks := pow.ForkDates(pow.MoneroEpochs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MeasureForkDieOffs(campaigns, forks, 90*24*time.Hour)
	}
}
