package intervention

import (
	"testing"
	"time"

	"cryptomining/internal/model"
	"cryptomining/internal/pool"
)

func edgeDate(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

func TestMeasureBanEffectEmptyPayments(t *testing.T) {
	e := MeasureBanEffect(nil, "w", edgeDate(2018, 6, 1), edgeDate(2018, 12, 1))
	if e.MonthlyBefore != 0 || e.MonthlyAfter != 0 {
		t.Fatalf("empty payments produced rates: %+v", e)
	}
	if e.Reduction() != 0 {
		t.Fatalf("empty payments produced reduction %v", e.Reduction())
	}

	// Payments exist but none for the measured wallet.
	other := []model.Payment{{Wallet: "someone-else", Amount: 3, Timestamp: edgeDate(2018, 3, 1)}}
	e = MeasureBanEffect(other, "w", edgeDate(2018, 6, 1), edgeDate(2018, 12, 1))
	if e.MonthlyBefore != 0 || e.MonthlyAfter != 0 {
		t.Fatalf("foreign payments leaked into rates: %+v", e)
	}
}

func TestMeasureBanEffectBanAfterHorizonEnd(t *testing.T) {
	payments := []model.Payment{
		{Wallet: "w", Amount: 1, Timestamp: edgeDate(2018, 2, 1)},
		{Wallet: "w", Amount: 2, Timestamp: edgeDate(2018, 5, 1)},
		{Wallet: "w", Amount: 4, Timestamp: edgeDate(2018, 8, 1)},
	}
	// The intervention lands after the observation horizon already ended:
	// every payment counts as "before", the after-window has negative length
	// and must yield a zero rate, not a negative one.
	at := edgeDate(2019, 1, 1)
	horizon := edgeDate(2018, 9, 1)
	e := MeasureBanEffect(payments, "w", at, horizon)
	if e.MonthlyBefore <= 0 {
		t.Fatalf("expected positive before-rate, got %v", e.MonthlyBefore)
	}
	if e.MonthlyAfter != 0 {
		t.Fatalf("after-rate over a negative window must be 0, got %v", e.MonthlyAfter)
	}
	if r := e.Reduction(); r != 1 {
		t.Fatalf("a ban with no post-window observations is a full reduction, got %v", r)
	}
}

func TestMeasureBanEffectAllEarningsAfterBan(t *testing.T) {
	payments := []model.Payment{
		{Wallet: "w", Amount: 3, Timestamp: edgeDate(2018, 7, 1)},
	}
	// First payment coincides with the ban: zero months of pre-ban history.
	e := MeasureBanEffect(payments, "w", edgeDate(2018, 7, 1), edgeDate(2018, 10, 1))
	if e.MonthlyBefore != 0 {
		t.Fatalf("before-rate without pre-ban history must be 0, got %v", e.MonthlyBefore)
	}
	if e.MonthlyAfter <= 0 {
		t.Fatalf("expected positive after-rate, got %v", e.MonthlyAfter)
	}
	if r := e.Reduction(); r != 0 {
		t.Fatalf("reduction with no pre-ban earnings must be 0, got %v", r)
	}
}

func TestMeasureForkDieOffsEmptyAndNoPayments(t *testing.T) {
	forks := []time.Time{edgeDate(2018, 4, 6)}
	out := MeasureForkDieOffs(nil, forks, 0)
	if len(out) != 1 || out[0].ActiveBefore != 0 || out[0].CeasedPercent != 0 {
		t.Fatalf("empty campaign set: %+v", out)
	}
	out = MeasureForkDieOffs([]CampaignPayments{{CampaignID: 1}}, forks, 0)
	if out[0].ActiveBefore != 0 || out[0].ActiveAfter != 0 {
		t.Fatalf("campaign with no payments counted as active: %+v", out[0])
	}
}

func TestMeasureForkDieOffsOverlappingWindows(t *testing.T) {
	// Two forks 30 days apart with a 90-day window: the windows overlap, and
	// one payment stream may count as active (or surviving) at both forks.
	f1 := edgeDate(2018, 4, 1)
	f2 := edgeDate(2018, 5, 1)
	window := 90 * 24 * time.Hour

	campaigns := []CampaignPayments{
		// Pays continuously across both forks: survives both.
		{CampaignID: 1, Payments: []time.Time{edgeDate(2018, 3, 15), edgeDate(2018, 4, 15), edgeDate(2018, 5, 15)}},
		// Dies at the first fork: its last payment (Mar 20) is inside both
		// forks' before-windows, so it counts active-before at both and
		// surviving at neither.
		{CampaignID: 2, Payments: []time.Time{edgeDate(2018, 3, 1), edgeDate(2018, 3, 20)}},
		// Starts between the forks: invisible to f1's before-window, active
		// at f2 only through its April payment, survives f2.
		{CampaignID: 3, Payments: []time.Time{edgeDate(2018, 4, 20), edgeDate(2018, 6, 1)}},
	}
	out := MeasureForkDieOffs(campaigns, []time.Time{f1, f2}, window)
	if len(out) != 2 {
		t.Fatalf("expected 2 fork summaries, got %d", len(out))
	}
	if out[0].ActiveBefore != 2 || out[0].ActiveAfter != 1 {
		t.Fatalf("fork 1: active=%d surviving=%d, want 2/1", out[0].ActiveBefore, out[0].ActiveAfter)
	}
	if out[0].CeasedPercent != 50 {
		t.Fatalf("fork 1 ceased%% = %v, want 50", out[0].CeasedPercent)
	}
	if out[1].ActiveBefore != 3 || out[1].ActiveAfter != 2 {
		t.Fatalf("fork 2: active=%d surviving=%d, want 3/2", out[1].ActiveBefore, out[1].ActiveAfter)
	}
}

func TestMeasureForkDieOffsPaymentExactlyAtFork(t *testing.T) {
	fork := edgeDate(2018, 4, 6)
	campaigns := []CampaignPayments{
		// A payment exactly at the fork instant belongs to the surviving
		// window [fork, fork+window), not the before-window.
		{CampaignID: 1, Payments: []time.Time{edgeDate(2018, 3, 1), fork}},
	}
	out := MeasureForkDieOffs(campaigns, []time.Time{fork}, 0)
	if out[0].ActiveBefore != 1 || out[0].ActiveAfter != 1 {
		t.Fatalf("boundary payment misclassified: %+v", out[0])
	}
}

func TestReportWalletsToPerPoolCooperation(t *testing.T) {
	coopPool := pool.New("coop", []string{"coop.example"}, model.CurrencyMonero, pool.DefaultPolicy(), nil)
	deafPool := pool.New("deaf", []string{"deaf.example"}, model.CurrencyMonero, pool.DefaultPolicy(), nil)
	start, end := edgeDate(2018, 1, 1), edgeDate(2018, 6, 1)
	for _, p := range []*pool.Pool{coopPool, deafPool} {
		p.SimulateMining("botnet-wallet", 500, 100000, start, end, 24*time.Hour, nil)
		p.SimulateMining("proxy-wallet", 1, 100000, start, end, 24*time.Hour, nil)
	}

	coopFor := func(name string) PoolCooperation {
		if name == "deaf" {
			return PoolCooperation{Cooperative: false}
		}
		return PoolCooperation{Cooperative: true, MinIPsToBan: 100}
	}
	out := ReportWalletsTo([]*pool.Pool{coopPool, deafPool},
		[]string{"botnet-wallet", "proxy-wallet", "never-seen"}, coopFor, end)

	got := map[string]ReportOutcome{}
	for _, o := range out {
		got[o.Pool+"/"+o.Wallet] = o
	}
	if len(out) != 4 {
		t.Fatalf("expected 4 outcomes (never-seen skipped per pool), got %d: %+v", len(out), out)
	}
	if !got["coop/botnet-wallet"].Banned {
		t.Fatalf("cooperative pool did not ban the botnet wallet: %+v", got["coop/botnet-wallet"])
	}
	if got["coop/proxy-wallet"].Banned {
		t.Fatalf("proxy-fronted wallet banned despite low connection count")
	}
	if got["deaf/botnet-wallet"].Banned {
		t.Fatalf("non-cooperative pool acted on a report")
	}
	if got["deaf/botnet-wallet"].Reason == "" {
		t.Fatalf("non-cooperative decline carries no reason")
	}
}
