// Package campaign implements the aggregation stage of the pipeline: it
// groups per-sample extraction records into campaigns using the grouping
// features of §III-E of the paper, and enriches the resulting campaigns with
// third-party-infrastructure attribution (§III-E "Enrichment").
//
// Grouping features (each becomes a typed edge in the campaign graph):
//
//   - same identifier: two samples accumulating earnings in the same wallet
//     (donation wallets are whitelisted and excluded);
//   - ancestors: a dropper and the samples it dropped;
//   - hosting servers: samples downloaded from exactly the same URL, or from
//     the same raw-IP host;
//   - known mining campaigns: samples matching IoCs of the same publicly
//     reported operation;
//   - domain aliases: samples reaching a pool through the same CNAME alias;
//   - mining proxies: samples mining through the same proxy endpoint.
//
// Each connected component of the resulting graph is one campaign. PPI
// botnets and stock mining tools are deliberately NOT grouping features — they
// are third-party infrastructure shared by unrelated actors — and are only
// attached to campaigns as enrichment.
package campaign

import (
	"net/url"
	"sort"
	"strings"

	"cryptomining/internal/dnssim"
	"cryptomining/internal/fuzzyhash"
	"cryptomining/internal/graph"
	"cryptomining/internal/model"
	"cryptomining/internal/osint"
)

// Features toggles individual grouping features, used by the ablation
// benchmarks; the zero value disables everything, DefaultFeatures enables the
// full set the paper uses.
type Features struct {
	SameIdentifier bool
	Ancestors      bool
	Hosting        bool
	KnownCampaigns bool
	CNAMEAliases   bool
	Proxies        bool
}

// DefaultFeatures enables every grouping feature.
func DefaultFeatures() Features {
	return Features{
		SameIdentifier: true,
		Ancestors:      true,
		Hosting:        true,
		KnownCampaigns: true,
		CNAMEAliases:   true,
		Proxies:        true,
	}
}

// Config configures the aggregator.
type Config struct {
	Features Features
	// OSINT provides donation-wallet whitelisting, known-operation IoCs and
	// the stock-tool catalogue. Required.
	OSINT *osint.Store
	// AliasDetector unmasks CNAME aliases of known pools; nil disables the
	// CNAME grouping feature.
	AliasDetector *dnssim.AliasDetector
	// PoolDomains maps known pool domains to pool names; hosts that belong
	// to known pools are never treated as proxies.
	PoolDomains map[string]string
	// PublicHostingDomains are domains of public repositories and cloud
	// storage (github.com, amazonaws.com, ...). Samples hosted there are only
	// grouped when the full URL matches, never by the host alone.
	PublicHostingDomains []string
	// FuzzyThreshold is the maximum fuzzy-hash distance for stock-tool
	// attribution (default fuzzyhash.DefaultThreshold).
	FuzzyThreshold float64
	// ObfuscationRatio is the fraction of obfuscated samples above which a
	// campaign is labeled as using obfuscation (the paper uses 0.8).
	ObfuscationRatio float64
	// AVReports optionally supplies per-sample AV labels for PPI botnet
	// enrichment (hash -> labels).
	AVLabels map[string][]string
}

// DefaultPublicHostingDomains lists the public repositories and cloud-storage
// services of Table VI whose shared use must not over-aggregate campaigns.
func DefaultPublicHostingDomains() []string {
	return []string{
		"github.com", "amazonaws.com", "google.com", "googleapis.com",
		"dropbox.com", "4sync.com", "bitbucket.org", "weebly.com",
		"discordapp.com", "goo.gl", "drive.google.com", "sourceforge.net",
	}
}

// DefaultConfig returns a configuration with every feature enabled.
func DefaultConfig(store *osint.Store, detector *dnssim.AliasDetector, poolDomains map[string]string) Config {
	return Config{
		Features:             DefaultFeatures(),
		OSINT:                store,
		AliasDetector:        detector,
		PoolDomains:          poolDomains,
		PublicHostingDomains: DefaultPublicHostingDomains(),
		FuzzyThreshold:       fuzzyhash.DefaultThreshold,
		ObfuscationRatio:     0.8,
	}
}

// Aggregator builds the campaign graph.
type Aggregator struct {
	cfg Config
	// stockSignatures caches fuzzy hashes of known stock tools.
	stockSignatures []stockSig
}

type stockSig struct {
	tool osint.StockTool
	sig  fuzzyhash.Signature
}

// New creates an aggregator. A nil OSINT store is replaced by an empty one.
func New(cfg Config) *Aggregator {
	if cfg.OSINT == nil {
		cfg.OSINT = osint.NewDefaultStore()
	}
	if cfg.FuzzyThreshold <= 0 {
		cfg.FuzzyThreshold = fuzzyhash.DefaultThreshold
	}
	if cfg.ObfuscationRatio <= 0 {
		cfg.ObfuscationRatio = 0.8
	}
	a := &Aggregator{cfg: cfg}
	for _, tool := range cfg.OSINT.StockTools() {
		if len(tool.Content) == 0 {
			continue
		}
		a.stockSignatures = append(a.stockSignatures, stockSig{tool: tool, sig: fuzzyhash.Hash(tool.Content)})
	}
	return a
}

// Input is one record plus optional raw content (needed only for fuzzy-hash
// stock-tool attribution of dropped/ancillary binaries).
type Input struct {
	Record  model.Record
	Content []byte
	// GroundTruthID optionally carries the simulator's campaign ID for
	// aggregation-quality validation; it plays no role in the aggregation.
	GroundTruthID int
}

// Result is the aggregation outcome.
type Result struct {
	Campaigns []*model.Campaign
	Graph     *graph.Graph
	// DonationWalletsSkipped counts identifiers dropped by the whitelist.
	DonationWalletsSkipped int
	// ByWallet maps each wallet to the campaign that contains it.
	ByWallet map[string]*model.Campaign
	// BySample maps each sample hash to the campaign that contains it.
	BySample map[string]*model.Campaign
}

// Link is one grouping-feature edge from a sample node to an infrastructure
// node, as derived from a single record.
type Link struct {
	Node graph.NodeID
	Kind model.EdgeKind
}

// DeriveLinks computes the sample node and grouping-feature edges one record
// contributes to the campaign graph. donationSkipped reports that the record's
// identifier was dropped by the donation-wallet whitelist. Both the batch
// BuildGraph and the streaming IncrementalAggregator are built on top of it.
func (a *Aggregator) DeriveLinks(rec *model.Record) (sampleNode graph.NodeID, links []Link, donationSkipped bool) {
	kind := model.NodeSample
	if rec.Type == model.TypeAncillary {
		kind = model.NodeAncillary
	}
	sampleNode = graph.NodeID{Kind: kind, Value: rec.SHA256}

	// Same identifier.
	if a.cfg.Features.SameIdentifier && rec.HasIdentifier() {
		if _, isDonation := a.cfg.OSINT.IsDonationWallet(rec.User); isDonation {
			donationSkipped = true
		} else {
			links = append(links, Link{Node: graph.NodeID{Kind: model.NodeWallet, Value: rec.User}, Kind: model.EdgeSameIdentifier})
		}
	}

	// Ancestors: edge to each parent (parents may be miners or
	// ancillaries; the node kind of the parent does not matter for
	// connectivity, use Ancillary when the parent is not a known miner).
	if a.cfg.Features.Ancestors {
		for _, parent := range rec.Parents {
			if parent == "" || parent == rec.SHA256 {
				continue
			}
			links = append(links, Link{Node: graph.NodeID{Kind: model.NodeAncillary, Value: parent}, Kind: model.EdgeAncestor})
		}
		for _, child := range rec.Dropped {
			if child == "" || child == rec.SHA256 {
				continue
			}
			links = append(links, Link{Node: graph.NodeID{Kind: model.NodeAncillary, Value: child}, Kind: model.EdgeAncestor})
		}
	}

	// Hosting servers.
	if a.cfg.Features.Hosting {
		hostingKey := a.hostingKeyFunc()
		for _, itw := range rec.ITWURLs {
			if key, ok := hostingKey(itw); ok {
				links = append(links, Link{Node: graph.NodeID{Kind: model.NodeHost, Value: key}, Kind: model.EdgeHosting})
			}
		}
	}

	// Known mining campaigns (OSINT IoCs).
	if a.cfg.Features.KnownCampaigns {
		values := []string{rec.SHA256, rec.User, rec.DstIP}
		values = append(values, rec.DNSRR...)
		values = append(values, rec.ITWURLs...)
		for _, op := range a.cfg.OSINT.Operations(values...) {
			links = append(links, Link{Node: graph.NodeID{Kind: model.NodeOperation, Value: op}, Kind: model.EdgeKnownCampaign})
		}
	}

	// Domain aliases (CNAMEs) of known pools.
	if a.cfg.Features.CNAMEAliases && a.cfg.AliasDetector != nil {
		for _, f := range a.cfg.AliasDetector.DetectAll(a.domainsOf(rec)) {
			links = append(links, Link{Node: graph.NodeID{Kind: model.NodeDomain, Value: f.Alias}, Kind: model.EdgeCNAMEAlias})
		}
	}

	// Mining proxies: the pool endpoint is neither a known pool domain
	// nor a CNAME alias of one, yet the wallet shows activity at a known
	// pool (approximated here as: endpoint host not matching any known
	// pool or alias).
	if a.cfg.Features.Proxies {
		if proxyEndpoint, ok := a.proxyEndpoint(rec); ok {
			links = append(links, Link{Node: graph.NodeID{Kind: model.NodeProxy, Value: proxyEndpoint}, Kind: model.EdgeProxy})
		}
	}
	return sampleNode, links, donationSkipped
}

// BuildGraph constructs the aggregation graph from the inputs without
// extracting campaigns; Aggregate is the usual entry point.
func (a *Aggregator) BuildGraph(inputs []Input) (*graph.Graph, int) {
	g := graph.New()
	skippedDonations := 0
	for i := range inputs {
		rec := &inputs[i].Record
		if rec.SHA256 == "" {
			continue
		}
		sampleNode, links, donationSkipped := a.DeriveLinks(rec)
		g.AddNode(sampleNode)
		if donationSkipped {
			skippedDonations++
		}
		for _, l := range links {
			g.AddEdge(sampleNode, l.Node, l.Kind)
		}
	}
	return g, skippedDonations
}

// domainsOf returns the candidate domains (pool host + DNS resolutions) of a
// record.
func (a *Aggregator) domainsOf(rec *model.Record) []string {
	var out []string
	if host := hostOf(rec.URLPool); host != "" && !isIPLiteral(host) {
		out = append(out, host)
	}
	out = append(out, rec.DNSRR...)
	return out
}

// proxyEndpoint decides whether the record mines through a proxy and returns
// the proxy endpoint.
func (a *Aggregator) proxyEndpoint(rec *model.Record) (string, bool) {
	if rec.URLPool == "" || rec.Type != model.TypeMiner {
		return "", false
	}
	host := hostOf(rec.URLPool)
	if host == "" {
		return "", false
	}
	// Known pool domain -> not a proxy.
	if a.matchesPoolDomain(host) {
		return "", false
	}
	// CNAME alias of a known pool -> not a proxy (it is an alias).
	if a.cfg.AliasDetector != nil {
		if _, isAlias := a.cfg.AliasDetector.Detect(host); isAlias {
			return "", false
		}
	}
	return rec.URLPool, true
}

func (a *Aggregator) matchesPoolDomain(host string) bool {
	host = strings.ToLower(host)
	for dom := range a.cfg.PoolDomains {
		dom = strings.ToLower(dom)
		if host == dom || strings.HasSuffix(host, "."+dom) {
			return true
		}
	}
	return false
}

// hostingKeyFunc returns the function that maps an in-the-wild URL to a
// hosting-server grouping key, or ok=false when the URL must not be used for
// grouping (public repositories are only grouped by full URL).
func (a *Aggregator) hostingKeyFunc() func(string) (string, bool) {
	publicSuffixes := a.cfg.PublicHostingDomains
	return func(raw string) (string, bool) {
		u, err := url.Parse(raw)
		if err != nil || u.Host == "" {
			return "", false
		}
		host := strings.ToLower(u.Hostname())
		isPublic := false
		for _, pub := range publicSuffixes {
			if host == pub || strings.HasSuffix(host, "."+pub) {
				isPublic = true
				break
			}
		}
		if isIPLiteral(host) {
			// Raw-IP hosting: group by the IP alone — a rented box serving
			// many payloads is one infrastructure.
			return "ip:" + host, true
		}
		if isPublic {
			// Public repositories: group only by the exact URL (including
			// query parameters), per §III-E.
			return "url:" + strings.ToLower(raw), true
		}
		// Other domains: group by the exact URL as well (conservative, the
		// paper aggregates by full in-the-wild URL to avoid over-grouping).
		return "url:" + strings.ToLower(raw), true
	}
}

func hostOf(endpoint string) string {
	if endpoint == "" {
		return ""
	}
	host := endpoint
	if i := strings.LastIndex(endpoint, ":"); i > 0 {
		host = endpoint[:i]
	}
	return strings.ToLower(host)
}

func isIPLiteral(host string) bool {
	if host == "" {
		return false
	}
	for _, c := range host {
		if (c < '0' || c > '9') && c != '.' {
			return false
		}
	}
	return true
}

// Aggregate groups the inputs into campaigns and enriches them.
func (a *Aggregator) Aggregate(inputs []Input) *Result {
	g, skipped := a.BuildGraph(inputs)
	comps := g.ConnectedComponents()

	recByHash := map[string]*Input{}
	for i := range inputs {
		recByHash[inputs[i].Record.SHA256] = &inputs[i]
	}

	res := &Result{
		Graph:                  g,
		DonationWalletsSkipped: skipped,
		ByWallet:               map[string]*model.Campaign{},
		BySample:               map[string]*model.Campaign{},
	}

	id := 0
	for _, comp := range comps {
		id++
		c := a.buildCampaign(id, comp, recByHash)
		res.Campaigns = append(res.Campaigns, c)
		for _, w := range c.Wallets {
			res.ByWallet[w] = c
		}
		for _, s := range c.Samples {
			res.BySample[s] = c
		}
		for _, s := range c.Ancillaries {
			res.BySample[s] = c
		}
	}
	sort.Slice(res.Campaigns, func(i, j int) bool { return res.Campaigns[i].ID < res.Campaigns[j].ID })
	return res
}

func (a *Aggregator) buildCampaign(id int, comp *graph.Component, recByHash map[string]*Input) *model.Campaign {
	c := &model.Campaign{ID: id}
	c.Wallets = comp.Values(model.NodeWallet)
	c.CNAMEs = comp.Values(model.NodeDomain)
	c.Proxies = comp.Values(model.NodeProxy)
	c.KnownOperations = comp.Values(model.NodeOperation)

	sampleHashes := append(comp.Values(model.NodeSample), comp.Values(model.NodeAncillary)...)
	currencySet := map[model.Currency]bool{}
	poolSet := map[string]bool{}
	hostingSet := map[string]bool{}
	ppiSet := map[string]bool{}
	stockSet := map[string]bool{}
	obfuscated, total := 0, 0
	gtSet := map[int]bool{}

	for _, h := range sampleHashes {
		in, ok := recByHash[h]
		if !ok {
			// Node known only as somebody's parent/dropped hash: count it as
			// an ancillary with no record.
			c.Ancillaries = append(c.Ancillaries, h)
			continue
		}
		rec := &in.Record
		if rec.Type == model.TypeMiner {
			c.Samples = append(c.Samples, h)
		} else {
			c.Ancillaries = append(c.Ancillaries, h)
		}
		total++
		if rec.Obfuscated {
			obfuscated++
		}
		if rec.Currency != model.CurrencyUnknown && rec.Currency != "" {
			currencySet[rec.Currency] = true
		}
		if pool := a.poolNameOf(rec); pool != "" {
			poolSet[pool] = true
		}
		for _, itw := range rec.ITWURLs {
			if u, err := url.Parse(itw); err == nil && u.Hostname() != "" {
				hostingSet[strings.ToLower(u.Hostname())] = true
			}
		}
		if !rec.FirstSeen.IsZero() {
			if c.FirstSeen.IsZero() || rec.FirstSeen.Before(c.FirstSeen) {
				c.FirstSeen = rec.FirstSeen
			}
			if rec.FirstSeen.After(c.LastSeen) {
				c.LastSeen = rec.FirstSeen
			}
		}
		// Enrichment: PPI botnets from OSINT label matching or record field.
		if rec.PPIBotnet != "" {
			ppiSet[rec.PPIBotnet] = true
		} else if labels, ok := a.cfg.AVLabels[rec.SHA256]; ok {
			if botnet, found := a.cfg.OSINT.PPIBotnetForLabels(labels); found {
				ppiSet[botnet] = true
			}
		}
		// Enrichment: stock mining tools by exact hash or fuzzy hash.
		if tool, ok := a.stockToolFor(rec, in.Content); ok {
			stockSet[tool] = true
		}
		if in.GroundTruthID > 0 {
			gtSet[in.GroundTruthID] = true
		}
	}

	c.Samples = model.SortStrings(c.Samples)
	c.Ancillaries = model.SortStrings(c.Ancillaries)
	for cur := range currencySet {
		c.Currencies = append(c.Currencies, cur)
	}
	sort.Slice(c.Currencies, func(i, j int) bool { return c.Currencies[i] < c.Currencies[j] })
	for p := range poolSet {
		c.Pools = append(c.Pools, p)
	}
	sort.Strings(c.Pools)
	for h := range hostingSet {
		c.HostingDomains = append(c.HostingDomains, h)
	}
	sort.Strings(c.HostingDomains)
	for p := range ppiSet {
		c.PPIBotnets = append(c.PPIBotnets, p)
	}
	sort.Strings(c.PPIBotnets)
	for s := range stockSet {
		c.StockTools = append(c.StockTools, s)
	}
	sort.Strings(c.StockTools)
	for gt := range gtSet {
		c.GroundTruthIDs = append(c.GroundTruthIDs, gt)
	}
	sort.Ints(c.GroundTruthIDs)
	if total > 0 {
		c.UsesObfuscation = float64(obfuscated)/float64(total) >= a.cfg.ObfuscationRatio
	}
	return c
}

// poolNameOf maps a record's mining endpoint to a normalized pool name: the
// pool a known domain belongs to, the pool behind a CNAME alias, or "" when
// the endpoint is a proxy/private pool.
func (a *Aggregator) poolNameOf(rec *model.Record) string {
	host := hostOf(rec.URLPool)
	if host == "" {
		return ""
	}
	for dom, name := range a.cfg.PoolDomains {
		dom = strings.ToLower(dom)
		if host == dom || strings.HasSuffix(host, "."+dom) {
			return name
		}
	}
	if a.cfg.AliasDetector != nil {
		if f, ok := a.cfg.AliasDetector.Detect(host); ok {
			return f.Pool
		}
	}
	return ""
}

// stockToolFor attributes a record (or its raw content) to a stock mining
// tool: exact hash match against the whitelist first, then fuzzy hashing
// against the tool catalogue with the configured threshold.
func (a *Aggregator) stockToolFor(rec *model.Record, content []byte) (string, bool) {
	if rec.StockTool != "" {
		return rec.StockTool, true
	}
	if tool, ok := a.cfg.OSINT.StockToolByHash(rec.SHA256); ok {
		return tool.Name, true
	}
	for _, d := range rec.Dropped {
		if tool, ok := a.cfg.OSINT.StockToolByHash(d); ok {
			return tool.Name, true
		}
	}
	if len(content) > 0 && len(a.stockSignatures) > 0 {
		sig := fuzzyhash.Hash(content)
		for _, s := range a.stockSignatures {
			if fuzzyhash.Match(sig, s.sig, a.cfg.FuzzyThreshold) {
				return s.tool.Name, true
			}
		}
	}
	return "", false
}
