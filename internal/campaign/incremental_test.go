package campaign

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cryptomining/internal/model"
	"cryptomining/internal/osint"
)

// synthInputs fabricates records exercising every grouping feature: shared
// wallets, dropper relations, shared hosting, and plain singletons.
func synthInputs(n int, rng *rand.Rand) []Input {
	sha := func(i int) string { return fmt.Sprintf("%064x", i+1) }
	var ins []Input
	for i := 0; i < n; i++ {
		rec := model.Record{SHA256: sha(i), Type: model.TypeMiner}
		switch i % 4 {
		case 0: // clusters sharing a wallet
			rec.User = fmt.Sprintf("4AwalletCluster%02d", i%16)
			rec.Currency = model.CurrencyMonero
		case 1: // dropper chains
			rec.Type = model.TypeAncillary
			rec.Parents = []string{sha(rng.Intn(n))}
		case 2: // shared hosting
			rec.ITWURLs = []string{fmt.Sprintf("http://198.51.100.%d/payload.exe", i%8)}
		default: // singleton
			rec.User = fmt.Sprintf("4AwalletSolo%04d", i)
		}
		ins = append(ins, Input{Record: rec, GroundTruthID: i % 10})
	}
	return ins
}

// TestIncrementalMatchesBatch feeds the same inputs to the batch aggregator
// and, in shuffled order, to the incremental one, and requires identical
// campaigns (including IDs, which both derive from the deterministic
// smallest-node ordering).
func TestIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inputs := synthInputs(400, rng)
	cfg := DefaultConfig(osint.NewDefaultStore(), nil, nil)

	batch := New(cfg).Aggregate(inputs)

	shuffled := append([]Input(nil), inputs...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	ia := NewIncremental(cfg)
	var snapshots int
	for i, in := range shuffled {
		ia.Add(in)
		// Interleave snapshots to prove they do not disturb the final state.
		if i%97 == 0 {
			_ = ia.Snapshot()
			snapshots++
		}
	}
	inc := ia.Snapshot()

	if len(inc.Campaigns) != len(batch.Campaigns) {
		t.Fatalf("campaign count: incremental %d batch %d", len(inc.Campaigns), len(batch.Campaigns))
	}
	for i, bc := range batch.Campaigns {
		ic := inc.Campaigns[i]
		if ic.ID != bc.ID || !reflect.DeepEqual(ic.Wallets, bc.Wallets) ||
			!reflect.DeepEqual(ic.Samples, bc.Samples) || !reflect.DeepEqual(ic.Ancillaries, bc.Ancillaries) ||
			!reflect.DeepEqual(ic.HostingDomains, bc.HostingDomains) ||
			!reflect.DeepEqual(ic.GroundTruthIDs, bc.GroundTruthIDs) {
			t.Fatalf("campaign %d differs:\nincremental %+v\nbatch %+v", i, ic, bc)
		}
	}
	if inc.DonationWalletsSkipped != batch.DonationWalletsSkipped {
		t.Fatalf("donation skips differ")
	}
	if got, want := inc.Graph.NodeCount(), batch.Graph.NodeCount(); got != want {
		t.Fatalf("node count %d != %d", got, want)
	}
	if got, want := inc.Graph.EdgeCount(), batch.Graph.EdgeCount(); got != want {
		t.Fatalf("edge count %d != %d", got, want)
	}
	if snapshots < 4 {
		t.Fatalf("expected interleaved snapshots, got %d", snapshots)
	}
	// The incremental path must not rebuild the world on every snapshot: the
	// final snapshot only rebuilds components dirtied since the previous one.
	if ia.Rebuilds() >= snapshots*len(batch.Campaigns) {
		t.Fatalf("rebuilds %d suggest full re-aggregation per snapshot", ia.Rebuilds())
	}
}

// TestIncrementalExportRestoreMidStream interrupts an incremental aggregation
// at an arbitrary point, serializes its state through gob, restores it into a
// fresh aggregator and feeds the remaining inputs to both. The restored
// aggregator must stay bit-for-bit in lockstep with the uninterrupted one —
// including after further merges — and the exported state must re-serialize
// to identical bytes after the roundtrip.
func TestIncrementalExportRestoreMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	inputs := synthInputs(300, rng)
	rng.Shuffle(len(inputs), func(i, j int) { inputs[i], inputs[j] = inputs[j], inputs[i] })
	cfg := DefaultConfig(osint.NewDefaultStore(), nil, nil)

	for _, cut := range []int{0, 1, 37, 150, 299, 300} {
		orig := NewIncremental(cfg)
		for _, in := range inputs[:cut] {
			orig.Add(in)
			if sha := in.Record.SHA256; len(in.Record.Parents) > 0 {
				orig.SetAVLabels(sha, []string{"trojan.generic", "miner.xmrig"})
			}
		}

		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(orig.ExportState()); err != nil {
			t.Fatalf("cut %d: encode: %v", cut, err)
		}
		exported := buf.Bytes()
		var st AggregatorState
		if err := gob.NewDecoder(bytes.NewReader(exported)).Decode(&st); err != nil {
			t.Fatalf("cut %d: decode: %v", cut, err)
		}
		restored := NewIncremental(cfg)
		if err := restored.RestoreState(&st); err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}

		var rebuf bytes.Buffer
		if err := gob.NewEncoder(&rebuf).Encode(restored.ExportState()); err != nil {
			t.Fatalf("cut %d: re-encode: %v", cut, err)
		}
		if !bytes.Equal(exported, rebuf.Bytes()) {
			t.Fatalf("cut %d: state serialization not stable across restore (%d vs %d bytes)",
				cut, len(exported), rebuf.Len())
		}

		for _, in := range inputs[cut:] {
			orig.Add(in)
			restored.Add(in)
		}
		a, b := orig.Snapshot(), restored.Snapshot()
		if len(a.Campaigns) != len(b.Campaigns) {
			t.Fatalf("cut %d: campaign count %d vs %d", cut, len(a.Campaigns), len(b.Campaigns))
		}
		for i := range a.Campaigns {
			if !reflect.DeepEqual(a.Campaigns[i], b.Campaigns[i]) {
				t.Fatalf("cut %d: campaign %d differs:\norig     %+v\nrestored %+v",
					cut, i, a.Campaigns[i], b.Campaigns[i])
			}
		}
		if a.DonationWalletsSkipped != b.DonationWalletsSkipped ||
			a.Graph.NodeCount() != b.Graph.NodeCount() ||
			a.Graph.EdgeCount() != b.Graph.EdgeCount() {
			t.Fatalf("cut %d: graph/counter divergence", cut)
		}
	}
}

// TestRestoreIntoUsedAggregatorFails covers the misuse guard.
func TestRestoreIntoUsedAggregatorFails(t *testing.T) {
	cfg := DefaultConfig(osint.NewDefaultStore(), nil, nil)
	ia := NewIncremental(cfg)
	ia.Add(Input{Record: model.Record{SHA256: "aa11", Type: model.TypeMiner, User: "4AwalletAAA111"}})
	st := ia.ExportState()
	if err := ia.RestoreState(st); err == nil {
		t.Fatal("restore into a non-empty aggregator must fail")
	}
}

// TestIncrementalMergeAcrossFeatures checks that a late-arriving record
// merges two previously distinct campaigns.
func TestIncrementalMergeAcrossFeatures(t *testing.T) {
	cfg := DefaultConfig(osint.NewDefaultStore(), nil, nil)
	ia := NewIncremental(cfg)
	a := model.Record{SHA256: "aa11", Type: model.TypeMiner, User: "4AwalletAAA111"}
	// b was dropped by cc33 (its Parents carry the dropper hash, exactly as
	// the sandbox/feed metadata records it).
	b := model.Record{SHA256: "bb22", Type: model.TypeMiner, User: "4AwalletBBB222", Parents: []string{"cc33"}}
	ia.Add(Input{Record: a})
	ia.Add(Input{Record: b})
	if got := len(ia.Snapshot().Campaigns); got != 2 {
		t.Fatalf("expected 2 campaigns before merge, got %d", got)
	}
	// The dropper arrives late, carrying wallet A: it bridges the two.
	bridge := model.Record{
		SHA256:  "cc33",
		Type:    model.TypeAncillary,
		User:    "4AwalletAAA111",
		Dropped: []string{"bb22"},
	}
	ia.Add(Input{Record: bridge})
	res := ia.Snapshot()
	if got := len(res.Campaigns); got != 1 {
		t.Fatalf("expected 1 campaign after merge, got %d", got)
	}
	c := res.Campaigns[0]
	if len(c.Wallets) != 2 {
		t.Fatalf("merged campaign wallets = %v", c.Wallets)
	}
	if res.BySample["bb22"] != c || res.ByWallet["4AwalletAAA111"] != c {
		t.Fatalf("lookup maps not pointing at merged campaign")
	}
}
