package campaign

// Aggregation-quality validation against the ecosystem simulator's ground
// truth. The paper verifies its heuristics manually against OSINT-documented
// botnets (§VI "Quality of the aggregation"); with a synthetic corpus we can
// quantify precision (purity of produced campaigns) and the amount of
// splitting, and check that disabling grouping features degrades recall
// without ever merging unrelated campaigns.

import (
	"testing"

	"cryptomining/internal/dnssim"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/model"
	"cryptomining/internal/spec"
)

// buildInputsFromUniverse converts the ground-truth corpus into aggregation
// inputs directly from the embedded behaviour blobs (bypassing the analysis
// stages, which have their own tests) so this file isolates the aggregation
// quality itself.
func buildInputsFromUniverse(u *ecosim.Universe) []Input {
	var inputs []Input
	for _, c := range u.Campaigns {
		for _, h := range c.Samples {
			sample, ok := u.Corpus.Get(h)
			if !ok {
				continue
			}
			b, ok := spec.Extract(sample.Content)
			if !ok || !b.IsMiner {
				continue
			}
			rec := model.Record{
				SHA256:    h,
				User:      b.Wallet,
				URLPool:   b.PoolEndpoint(),
				Type:      model.TypeMiner,
				FirstSeen: sample.FirstSeen,
				ITWURLs:   sample.ITWURLs,
				DNSRR:     append([]string{}, b.ContactsDomains...),
				Parents:   sample.Parents,
			}
			inputs = append(inputs, Input{Record: rec, GroundTruthID: c.ID})
		}
		for _, h := range c.Droppers {
			sample, ok := u.Corpus.Get(h)
			if !ok {
				continue
			}
			rec := model.Record{
				SHA256:    h,
				Type:      model.TypeAncillary,
				FirstSeen: sample.FirstSeen,
				ITWURLs:   sample.ITWURLs,
				Dropped:   sample.DroppedHashes,
			}
			inputs = append(inputs, Input{Record: rec, GroundTruthID: c.ID})
		}
	}
	return inputs
}

func universeAggregator(u *ecosim.Universe, features Features) *Aggregator {
	detector := dnssim.NewAliasDetector(u.Zone, u.Pools.DomainMap())
	cfg := DefaultConfig(u.OSINT, detector, u.Pools.DomainMap())
	cfg.Features = features
	return New(cfg)
}

// purity computes the fraction of produced campaigns (with ground truth) whose
// samples all come from a single ground-truth campaign.
func purity(res *Result) (pure, total int) {
	for _, c := range res.Campaigns {
		if len(c.GroundTruthIDs) == 0 {
			continue
		}
		total++
		if len(c.GroundTruthIDs) == 1 {
			pure++
		}
	}
	return pure, total
}

func TestAggregationPurityAgainstGroundTruth(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig())
	inputs := buildInputsFromUniverse(u)
	res := universeAggregator(u, DefaultFeatures()).Aggregate(inputs)

	pure, total := purity(res)
	if total == 0 {
		t.Fatal("no campaigns with ground truth")
	}
	if frac := float64(pure) / float64(total); frac < 0.93 {
		t.Errorf("purity = %.3f (%d/%d), want >= 0.93: unrelated campaigns are being merged", frac, pure, total)
	}
}

func TestAggregationDoesNotMergeViaPublicHosting(t *testing.T) {
	// Many unrelated campaigns host on GitHub / AWS; they must not collapse
	// into one produced campaign.
	u := ecosim.Generate(ecosim.SmallConfig())
	inputs := buildInputsFromUniverse(u)
	res := universeAggregator(u, DefaultFeatures()).Aggregate(inputs)

	largest := 0
	for _, c := range res.Campaigns {
		if len(c.GroundTruthIDs) > largest {
			largest = len(c.GroundTruthIDs)
		}
	}
	if largest > 3 {
		t.Errorf("a produced campaign merges %d ground-truth campaigns; public hosting or donation wallets are leaking into the grouping", largest)
	}
}

func TestAggregationFeatureAblationMonotonicity(t *testing.T) {
	// Removing grouping features can only split campaigns further (more
	// produced campaigns), never merge more.
	u := ecosim.Generate(ecosim.SmallConfig())
	inputs := buildInputsFromUniverse(u)

	full := universeAggregator(u, DefaultFeatures()).Aggregate(inputs)
	idOnly := universeAggregator(u, Features{SameIdentifier: true}).Aggregate(inputs)
	noCNAME := DefaultFeatures()
	noCNAME.CNAMEAliases = false
	withoutCNAME := universeAggregator(u, noCNAME).Aggregate(inputs)

	if len(idOnly.Campaigns) < len(full.Campaigns) {
		t.Errorf("identifier-only produced %d campaigns < full %d", len(idOnly.Campaigns), len(full.Campaigns))
	}
	if len(withoutCNAME.Campaigns) < len(full.Campaigns) {
		t.Errorf("no-CNAME produced %d campaigns < full %d", len(withoutCNAME.Campaigns), len(full.Campaigns))
	}
	// Purity must not degrade when features are removed.
	pFull, tFull := purity(full)
	pID, tID := purity(idOnly)
	if float64(pID)/float64(tID) < float64(pFull)/float64(tFull)-0.02 {
		t.Errorf("identifier-only purity %.3f worse than full purity %.3f",
			float64(pID)/float64(tID), float64(pFull)/float64(tFull))
	}
}

func TestAggregationRecoversMultiWalletCampaigns(t *testing.T) {
	// The case-study campaigns use several wallets tied together by CNAME
	// aliases and droppers; the aggregation should reunite a large fraction
	// of each one's samples.
	u := ecosim.Generate(ecosim.SmallConfig())
	inputs := buildInputsFromUniverse(u)
	res := universeAggregator(u, DefaultFeatures()).Aggregate(inputs)

	for _, gtID := range []int{ecosim.FreebufCampaignID, ecosim.USA138CampaignID} {
		var gt *ecosim.GroundTruthCampaign
		for _, c := range u.Campaigns {
			if c.ID == gtID {
				gt = c
			}
		}
		if gt == nil {
			t.Fatalf("ground truth campaign %d missing", gtID)
		}
		// Find the largest produced campaign containing this ground truth.
		best := 0
		for _, c := range res.Campaigns {
			for _, id := range c.GroundTruthIDs {
				if id == gtID && len(c.Samples) > best {
					best = len(c.Samples)
				}
			}
		}
		if float64(best) < 0.8*float64(len(gt.Samples)) {
			t.Errorf("campaign %d: largest recovered fragment has %d of %d samples", gtID, best, len(gt.Samples))
		}
	}
}
