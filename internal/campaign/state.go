package campaign

import (
	"errors"
	"sort"

	"cryptomining/internal/graph"
	"cryptomining/internal/model"
)

// AggregatorState is a self-contained snapshot of an IncrementalAggregator's
// partition, shaped for serialization: every map is flattened into a sorted
// slice (and every slice keeps its live ordering), so the same partition
// always serializes to the same bytes regardless of map iteration order.
// Cached campaigns are deliberately not captured — they are derived data, and
// the first Snapshot after a restore rebuilds them deterministically.
type AggregatorState struct {
	// Inputs are the accumulated aggregation inputs, sorted by sample hash.
	Inputs []Input
	// Nodes lists every graph node (isolated ones included), sorted.
	Nodes []graph.NodeID
	// Edges lists the graph edges in insertion order.
	Edges []graph.Edge
	// Relations is the union-find table, sorted by child node.
	Relations []NodeRelation
	// Components describes each live component, sorted by root node.
	Components []ComponentState
	// AVLabels carries the per-sample AV labels fed via SetAVLabels, sorted
	// by sample hash.
	AVLabels []SampleLabels
	// SkippedDonations and Rebuilds restore the aggregator's counters.
	SkippedDonations int
	Rebuilds         int
}

// NodeRelation is one union-find table entry: Node's parent pointer and rank.
type NodeRelation struct {
	Node   graph.NodeID
	Parent graph.NodeID
	Rank   int
}

// ComponentState captures one live component.
type ComponentState struct {
	Root    graph.NodeID
	MinNode graph.NodeID
	// ByKind holds the component's node values per kind, kinds sorted,
	// values in live (accumulation) order.
	ByKind []KindValues
}

// KindValues pairs a node kind with its accumulated values.
type KindValues struct {
	Kind   model.NodeKind
	Values []string
}

// SampleLabels pairs a sample hash with its AV labels.
type SampleLabels struct {
	SHA256 string
	Labels []string
}

// ExportState snapshots the aggregator's full partition. The returned state
// is detached from the aggregator's mutable structures: inputs are copied by
// value and component value slices are copied, so the state stays valid (and
// serializes consistently) even if the aggregator keeps absorbing inputs.
// Only immutable payloads (sample content bytes, record slices, which the
// aggregator never rewrites in place) remain shared.
func (ia *IncrementalAggregator) ExportState() *AggregatorState {
	st := &AggregatorState{
		SkippedDonations: ia.skippedDonations,
		Rebuilds:         ia.rebuilds,
	}

	shas := make([]string, 0, len(ia.inputs))
	for sha := range ia.inputs {
		shas = append(shas, sha)
	}
	sort.Strings(shas)
	for _, sha := range shas {
		st.Inputs = append(st.Inputs, *ia.inputs[sha])
	}

	st.Nodes = ia.graph.Nodes()
	st.Edges = ia.graph.Edges()

	parent, rank := ia.sets.Export()
	children := make([]graph.NodeID, 0, len(parent))
	for n := range parent {
		children = append(children, n)
	}
	sort.Slice(children, func(i, j int) bool { return nodeLess(children[i], children[j]) })
	for _, n := range children {
		st.Relations = append(st.Relations, NodeRelation{Node: n, Parent: parent[n], Rank: rank[n]})
	}

	roots := make([]graph.NodeID, 0, len(ia.comps))
	for r := range ia.comps {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return nodeLess(roots[i], roots[j]) })
	for _, r := range roots {
		c := ia.comps[r]
		cs := ComponentState{Root: r, MinNode: c.minNode}
		kinds := make([]model.NodeKind, 0, len(c.byKind))
		for k := range c.byKind {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		for _, k := range kinds {
			// Copied, not aliased: union() keeps appending to these slices,
			// and the exported state may be serialized concurrently with
			// further aggregation (the engine checkpoints without stalling
			// ingestion).
			cs.ByKind = append(cs.ByKind, KindValues{Kind: k, Values: append([]string(nil), c.byKind[k]...)})
		}
		st.Components = append(st.Components, cs)
	}

	labelSHAs := make([]string, 0, len(ia.agg.cfg.AVLabels))
	for sha := range ia.agg.cfg.AVLabels {
		labelSHAs = append(labelSHAs, sha)
	}
	sort.Strings(labelSHAs)
	for _, sha := range labelSHAs {
		st.AVLabels = append(st.AVLabels, SampleLabels{SHA256: sha, Labels: ia.agg.cfg.AVLabels[sha]})
	}
	return st
}

// RestoreState loads a previously exported partition into the aggregator.
// The receiver must be freshly created (NewIncremental) with the same
// configuration that produced the state; restoring into an aggregator that
// already holds inputs is an error.
func (ia *IncrementalAggregator) RestoreState(st *AggregatorState) error {
	if len(ia.inputs) != 0 || len(ia.comps) != 0 {
		return errors.New("campaign: restore into a non-empty aggregator")
	}
	for i := range st.Inputs {
		cp := st.Inputs[i]
		ia.inputs[cp.Record.SHA256] = &cp
	}
	for _, n := range st.Nodes {
		ia.graph.AddNode(n)
	}
	for _, e := range st.Edges {
		ia.graph.AddEdge(e.A, e.B, e.Kind)
	}
	parent := make(map[graph.NodeID]graph.NodeID, len(st.Relations))
	rank := make(map[graph.NodeID]int, len(st.Relations))
	for _, r := range st.Relations {
		parent[r.Node] = r.Parent
		rank[r.Node] = r.Rank
	}
	ia.sets = graph.RestoreDisjointSet(parent, rank)
	for _, cs := range st.Components {
		lc := &liveComponent{
			byKind:  make(map[model.NodeKind][]string, len(cs.ByKind)),
			minNode: cs.MinNode,
		}
		for _, kv := range cs.ByKind {
			lc.byKind[kv.Kind] = append([]string(nil), kv.Values...)
		}
		ia.comps[cs.Root] = lc
	}
	for _, sl := range st.AVLabels {
		ia.SetAVLabels(sl.SHA256, sl.Labels)
	}
	ia.skippedDonations = st.SkippedDonations
	// Warm the derived campaign caches. The first Snapshot after a restore
	// would rebuild every component anyway; doing it here keeps that cost
	// inside the restore and off the first read. The warm-up is restoration
	// work, not new aggregation, so it must not disturb the Rebuilds counter:
	// reset it to the exported value afterwards so a restored partition
	// re-exports byte-identically.
	ia.Snapshot()
	ia.rebuilds = st.Rebuilds
	return nil
}
