package campaign

import (
	"testing"
	"time"

	"cryptomining/internal/dnssim"
	"cryptomining/internal/model"
	"cryptomining/internal/osint"
)

func testPoolDomains() map[string]string {
	return map[string]string{
		"minexmr.com":    "minexmr",
		"crypto-pool.fr": "crypto-pool",
		"dwarfpool.com":  "dwarfpool",
		"supportxmr.com": "supportxmr",
	}
}

func testDetector() *dnssim.AliasDetector {
	z := dnssim.NewZone()
	z.AddA("pool.minexmr.com", "94.130.12.30", time.Time{})
	z.AddCNAME("xt.freebuf.info", "pool.minexmr.com", time.Time{})
	z.AddCNAME("x.alibuf.com", "mine.crypto-pool.fr", time.Time{})
	return dnssim.NewAliasDetector(z, testPoolDomains())
}

func newAggregator(t *testing.T) *Aggregator {
	t.Helper()
	store := osint.NewDefaultStore()
	store.AddDonationWallet("4DONATION_XMRIG", "xmrig")
	store.AddIoC(model.IoC{Type: model.IoCDomain, Value: "photominer-c2.example", Operation: "Photominer"})
	store.AddStockTool(osint.StockTool{Name: "xmrig", Version: "2.14", SHA256: "stocktoolhash"})
	return New(DefaultConfig(store, testDetector(), testPoolDomains()))
}

func minerRecord(sha, wallet, pool string, firstSeen time.Time) model.Record {
	return model.Record{
		SHA256:    sha,
		User:      wallet,
		Currency:  model.CurrencyMonero,
		URLPool:   pool,
		DstPort:   4444,
		Type:      model.TypeMiner,
		FirstSeen: firstSeen,
	}
}

func TestAggregateSameWallet(t *testing.T) {
	a := newAggregator(t)
	inputs := []Input{
		{Record: minerRecord("s1", "4WALLET_A", "pool.minexmr.com:4444", model.Date(2017, 1, 1))},
		{Record: minerRecord("s2", "4WALLET_A", "mine.crypto-pool.fr:3333", model.Date(2017, 6, 1))},
		{Record: minerRecord("s3", "4WALLET_B", "pool.minexmr.com:4444", model.Date(2018, 1, 1))},
	}
	res := a.Aggregate(inputs)

	// Campaigns: {s1,s2} via wallet A, {s3} alone.
	campaignsWithSamples := 0
	for _, c := range res.Campaigns {
		if len(c.Samples) > 0 {
			campaignsWithSamples++
		}
	}
	if campaignsWithSamples != 2 {
		t.Fatalf("campaigns with samples = %d, want 2", campaignsWithSamples)
	}
	cA := res.ByWallet["4WALLET_A"]
	if cA == nil || len(cA.Samples) != 2 {
		t.Fatalf("wallet A campaign = %+v", cA)
	}
	if len(cA.Pools) != 2 || cA.Pools[0] != "crypto-pool" || cA.Pools[1] != "minexmr" {
		t.Errorf("pools = %v", cA.Pools)
	}
	if !cA.FirstSeen.Equal(model.Date(2017, 1, 1)) || !cA.LastSeen.Equal(model.Date(2017, 6, 1)) {
		t.Errorf("activity period = %v .. %v", cA.FirstSeen, cA.LastSeen)
	}
	if len(cA.Currencies) != 1 || cA.Currencies[0] != model.CurrencyMonero {
		t.Errorf("currencies = %v", cA.Currencies)
	}
	if res.BySample["s1"] != cA || res.BySample["s2"] != cA {
		t.Error("BySample index incorrect")
	}
}

func TestAggregateDonationWalletExcluded(t *testing.T) {
	a := newAggregator(t)
	// Two unrelated campaigns both "donate" to the xmrig donation wallet;
	// they must NOT be merged.
	inputs := []Input{
		{Record: minerRecord("c1s1", "4MISCREANT_1", "pool.minexmr.com:4444", model.Date(2017, 1, 1))},
		{Record: minerRecord("c1don", "4DONATION_XMRIG", "pool.minexmr.com:4444", model.Date(2017, 1, 2))},
		{Record: minerRecord("c2s1", "4MISCREANT_2", "pool.minexmr.com:4444", model.Date(2017, 2, 1))},
		{Record: minerRecord("c2don", "4DONATION_XMRIG", "pool.minexmr.com:4444", model.Date(2017, 2, 2))},
	}
	res := a.Aggregate(inputs)
	if res.DonationWalletsSkipped != 2 {
		t.Errorf("donation wallets skipped = %d, want 2", res.DonationWalletsSkipped)
	}
	c1 := res.ByWallet["4MISCREANT_1"]
	c2 := res.ByWallet["4MISCREANT_2"]
	if c1 == nil || c2 == nil {
		t.Fatal("campaigns missing")
	}
	if c1.ID == c2.ID {
		t.Error("donation wallet must not merge unrelated campaigns")
	}
	if _, ok := res.ByWallet["4DONATION_XMRIG"]; ok {
		t.Error("donation wallet should not appear as a campaign wallet")
	}
}

func TestAggregateAncestors(t *testing.T) {
	a := newAggregator(t)
	dropper := model.Record{SHA256: "dropper1", Type: model.TypeAncillary, FirstSeen: model.Date(2016, 5, 1),
		Dropped: []string{"m1", "m2"}}
	m1 := minerRecord("m1", "4WALLET_X", "pool.minexmr.com:4444", model.Date(2016, 5, 2))
	m1.Parents = []string{"dropper1"}
	m2 := minerRecord("m2", "4WALLET_Y", "xmr-eu.dwarfpool.com:8005", model.Date(2016, 5, 3))
	m2.Parents = []string{"dropper1"}

	res := a.Aggregate([]Input{{Record: dropper}, {Record: m1}, {Record: m2}})
	cX := res.ByWallet["4WALLET_X"]
	cY := res.ByWallet["4WALLET_Y"]
	if cX == nil || cY == nil || cX.ID != cY.ID {
		t.Fatal("samples dropped by the same dropper must be one campaign")
	}
	if len(cX.Samples) != 2 || len(cX.Ancillaries) != 1 {
		t.Errorf("samples/ancillaries = %v / %v", cX.Samples, cX.Ancillaries)
	}
	if len(cX.Wallets) != 2 {
		t.Errorf("wallets = %v", cX.Wallets)
	}
}

func TestAggregateHostingURL(t *testing.T) {
	a := newAggregator(t)
	// Same exact URL -> grouped; same public repo host but different URL -> not.
	r1 := minerRecord("h1", "4H_WALLET_1", "pool.minexmr.com:4444", model.Date(2017, 1, 1))
	r1.ITWURLs = []string{"http://suicide.mouzze.had.su/gpu/amd1.exe"}
	r2 := minerRecord("h2", "4H_WALLET_2", "pool.minexmr.com:4444", model.Date(2017, 1, 2))
	r2.ITWURLs = []string{"http://suicide.mouzze.had.su/gpu/amd1.exe"}
	r3 := minerRecord("h3", "4H_WALLET_3", "pool.minexmr.com:4444", model.Date(2017, 1, 3))
	r3.ITWURLs = []string{"https://github.com/user-a/miner/releases/a.exe"}
	r4 := minerRecord("h4", "4H_WALLET_4", "pool.minexmr.com:4444", model.Date(2017, 1, 4))
	r4.ITWURLs = []string{"https://github.com/user-b/other/releases/b.exe"}

	res := a.Aggregate([]Input{{Record: r1}, {Record: r2}, {Record: r3}, {Record: r4}})
	if res.ByWallet["4H_WALLET_1"].ID != res.ByWallet["4H_WALLET_2"].ID {
		t.Error("samples from the same exact URL must be grouped")
	}
	if res.ByWallet["4H_WALLET_3"].ID == res.ByWallet["4H_WALLET_4"].ID {
		t.Error("different GitHub URLs must not be grouped")
	}
	if res.ByWallet["4H_WALLET_1"].ID == res.ByWallet["4H_WALLET_3"].ID {
		t.Error("unrelated hosting must not be grouped")
	}
}

func TestAggregateRawIPHosting(t *testing.T) {
	a := newAggregator(t)
	// The USA-138 pattern: two clusters sharing a raw-IP malware host.
	r1 := minerRecord("ip1", "4IP_WALLET_1", "pool.minexmr.com:4444", model.Date(2018, 1, 1))
	r1.ITWURLs = []string{"http://221.9.251.236/a/miner32.exe"}
	r2 := minerRecord("ip2", "4IP_WALLET_2", "mine.crypto-pool.fr:3333", model.Date(2018, 2, 1))
	r2.ITWURLs = []string{"http://221.9.251.236/b/miner64.exe"}
	res := a.Aggregate([]Input{{Record: r1}, {Record: r2}})
	if res.ByWallet["4IP_WALLET_1"].ID != res.ByWallet["4IP_WALLET_2"].ID {
		t.Error("samples hosted on the same raw IP must be grouped")
	}
}

func TestAggregateCNAMEAlias(t *testing.T) {
	a := newAggregator(t)
	// Freebuf pattern: different wallets, both mining via the same CNAME alias.
	r1 := minerRecord("f1", "4FREEBUF_W1", "xt.freebuf.info:4444", model.Date(2016, 6, 1))
	r1.DNSRR = []string{"xt.freebuf.info"}
	r2 := minerRecord("f2", "4FREEBUF_W2", "xt.freebuf.info:4444", model.Date(2017, 6, 1))
	r2.DNSRR = []string{"xt.freebuf.info"}
	r3 := minerRecord("f3", "4OTHER", "pool.minexmr.com:4444", model.Date(2017, 6, 1))

	res := a.Aggregate([]Input{{Record: r1}, {Record: r2}, {Record: r3}})
	c1 := res.ByWallet["4FREEBUF_W1"]
	c2 := res.ByWallet["4FREEBUF_W2"]
	if c1 == nil || c2 == nil || c1.ID != c2.ID {
		t.Fatal("samples using the same CNAME alias must be one campaign")
	}
	if len(c1.CNAMEs) != 1 || c1.CNAMEs[0] != "xt.freebuf.info" {
		t.Errorf("CNAMEs = %v", c1.CNAMEs)
	}
	// The pool behind the alias is attributed.
	foundPool := false
	for _, p := range c1.Pools {
		if p == "minexmr" {
			foundPool = true
		}
	}
	if !foundPool {
		t.Errorf("pools = %v, want minexmr via alias", c1.Pools)
	}
	if res.ByWallet["4OTHER"].ID == c1.ID {
		t.Error("direct pool user must not join the alias campaign")
	}
}

func TestAggregateProxy(t *testing.T) {
	a := newAggregator(t)
	// Two samples mining through the same non-pool endpoint (a proxy).
	r1 := minerRecord("p1", "4P_WALLET_1", "185.10.10.10:8080", model.Date(2017, 1, 1))
	r2 := minerRecord("p2", "4P_WALLET_2", "185.10.10.10:8080", model.Date(2017, 2, 1))
	// A third sample mining directly at a known pool is not a proxy user.
	r3 := minerRecord("p3", "4P_WALLET_3", "pool.supportxmr.com:3333", model.Date(2017, 3, 1))

	res := a.Aggregate([]Input{{Record: r1}, {Record: r2}, {Record: r3}})
	c1 := res.ByWallet["4P_WALLET_1"]
	c2 := res.ByWallet["4P_WALLET_2"]
	if c1 == nil || c2 == nil || c1.ID != c2.ID {
		t.Fatal("samples behind the same proxy must be one campaign")
	}
	if len(c1.Proxies) != 1 || c1.Proxies[0] != "185.10.10.10:8080" {
		t.Errorf("proxies = %v", c1.Proxies)
	}
	c3 := res.ByWallet["4P_WALLET_3"]
	if len(c3.Proxies) != 0 {
		t.Errorf("direct pool miner should have no proxies: %v", c3.Proxies)
	}
	// The CNAME alias endpoint must not be classified as a proxy either.
	r4 := minerRecord("p4", "4P_WALLET_4", "xt.freebuf.info:4444", model.Date(2017, 4, 1))
	res2 := a.Aggregate([]Input{{Record: r4}})
	if len(res2.ByWallet["4P_WALLET_4"].Proxies) != 0 {
		t.Error("CNAME alias endpoint must not be treated as a proxy")
	}
}

func TestAggregateKnownOperationIoC(t *testing.T) {
	a := newAggregator(t)
	r1 := minerRecord("k1", "4K_WALLET_1", "pool.minexmr.com:4444", model.Date(2016, 7, 1))
	r1.DNSRR = []string{"photominer-c2.example"}
	r2 := minerRecord("k2", "4K_WALLET_2", "mine.crypto-pool.fr:3333", model.Date(2016, 8, 1))
	r2.DNSRR = []string{"photominer-c2.example"}
	res := a.Aggregate([]Input{{Record: r1}, {Record: r2}})
	c := res.ByWallet["4K_WALLET_1"]
	if c == nil || res.ByWallet["4K_WALLET_2"].ID != c.ID {
		t.Fatal("samples sharing an operation IoC must be one campaign")
	}
	if len(c.KnownOperations) != 1 || c.KnownOperations[0] != "Photominer" {
		t.Errorf("operations = %v", c.KnownOperations)
	}
}

func TestEnrichmentPPIDoesNotAggregate(t *testing.T) {
	a := newAggregator(t)
	// Two unrelated campaigns both spread via Virut (PPI): enriched, not merged.
	r1 := minerRecord("v1", "4V_WALLET_1", "pool.minexmr.com:4444", model.Date(2017, 1, 1))
	r1.PPIBotnet = "Virut"
	r2 := minerRecord("v2", "4V_WALLET_2", "pool.minexmr.com:4444", model.Date(2017, 2, 1))
	r2.PPIBotnet = "Virut"
	res := a.Aggregate([]Input{{Record: r1}, {Record: r2}})
	c1, c2 := res.ByWallet["4V_WALLET_1"], res.ByWallet["4V_WALLET_2"]
	if c1.ID == c2.ID {
		t.Error("shared PPI service must not merge campaigns")
	}
	if len(c1.PPIBotnets) != 1 || c1.PPIBotnets[0] != "Virut" {
		t.Errorf("PPI enrichment = %v", c1.PPIBotnets)
	}
}

func TestEnrichmentPPIFromAVLabels(t *testing.T) {
	store := osint.NewDefaultStore()
	cfg := DefaultConfig(store, testDetector(), testPoolDomains())
	cfg.AVLabels = map[string][]string{
		"l1": {"Win32.Virut.CE", "Trojan.CoinMiner"},
	}
	a := New(cfg)
	r := minerRecord("l1", "4L_WALLET", "pool.minexmr.com:4444", model.Date(2017, 1, 1))
	res := a.Aggregate([]Input{{Record: r}})
	c := res.ByWallet["4L_WALLET"]
	if len(c.PPIBotnets) != 1 || c.PPIBotnets[0] != "Virut" {
		t.Errorf("PPI from AV labels = %v", c.PPIBotnets)
	}
}

func TestEnrichmentStockToolByDroppedHash(t *testing.T) {
	a := newAggregator(t)
	r := minerRecord("st1", "4ST_WALLET", "pool.minexmr.com:4444", model.Date(2017, 1, 1))
	r.Dropped = []string{"stocktoolhash"}
	res := a.Aggregate([]Input{{Record: r}})
	c := res.ByWallet["4ST_WALLET"]
	if len(c.StockTools) != 1 || c.StockTools[0] != "xmrig" {
		t.Errorf("stock tools = %v", c.StockTools)
	}
}

func TestEnrichmentObfuscationRatio(t *testing.T) {
	a := newAggregator(t)
	// 4 of 5 samples obfuscated -> 80% -> campaign uses obfuscation.
	var inputs []Input
	for i := 0; i < 5; i++ {
		r := minerRecord(string(rune('a'+i))+"-obf", "4OBF_WALLET", "pool.minexmr.com:4444", model.Date(2017, 1, 1))
		r.Obfuscated = i < 4
		inputs = append(inputs, Input{Record: r})
	}
	res := a.Aggregate(inputs)
	if !res.ByWallet["4OBF_WALLET"].UsesObfuscation {
		t.Error("campaign with 80% obfuscated samples should be labeled as obfuscated")
	}
	// 2 of 5 -> not obfuscated.
	var inputs2 []Input
	for i := 0; i < 5; i++ {
		r := minerRecord(string(rune('a'+i))+"-clear", "4CLEAR_WALLET", "pool.minexmr.com:4444", model.Date(2017, 1, 1))
		r.Obfuscated = i < 2
		inputs2 = append(inputs2, Input{Record: r})
	}
	res2 := a.Aggregate(inputs2)
	if res2.ByWallet["4CLEAR_WALLET"].UsesObfuscation {
		t.Error("campaign with 40% obfuscated samples should not be labeled as obfuscated")
	}
}

func TestFeatureAblationIdentifierOnly(t *testing.T) {
	store := osint.NewDefaultStore()
	cfg := DefaultConfig(store, testDetector(), testPoolDomains())
	cfg.Features = Features{SameIdentifier: true} // everything else off
	a := New(cfg)

	r1 := minerRecord("a1", "4AB_WALLET_1", "xt.freebuf.info:4444", model.Date(2017, 1, 1))
	r1.DNSRR = []string{"xt.freebuf.info"}
	r2 := minerRecord("a2", "4AB_WALLET_2", "xt.freebuf.info:4444", model.Date(2017, 2, 1))
	r2.DNSRR = []string{"xt.freebuf.info"}

	res := a.Aggregate([]Input{{Record: r1}, {Record: r2}})
	// Without the CNAME feature the two wallets stay separate.
	if res.ByWallet["4AB_WALLET_1"].ID == res.ByWallet["4AB_WALLET_2"].ID {
		t.Error("with CNAME feature disabled the campaigns should remain separate")
	}
	full := newAggregator(t).Aggregate([]Input{{Record: r1}, {Record: r2}})
	if full.ByWallet["4AB_WALLET_1"].ID != full.ByWallet["4AB_WALLET_2"].ID {
		t.Error("with all features the campaigns should merge")
	}
}

func TestGroundTruthPropagation(t *testing.T) {
	a := newAggregator(t)
	r1 := minerRecord("g1", "4GT_WALLET", "pool.minexmr.com:4444", model.Date(2017, 1, 1))
	r2 := minerRecord("g2", "4GT_WALLET", "pool.minexmr.com:4444", model.Date(2017, 2, 1))
	res := a.Aggregate([]Input{
		{Record: r1, GroundTruthID: 42},
		{Record: r2, GroundTruthID: 42},
	})
	c := res.ByWallet["4GT_WALLET"]
	if len(c.GroundTruthIDs) != 1 || c.GroundTruthIDs[0] != 42 {
		t.Errorf("ground truth ids = %v", c.GroundTruthIDs)
	}
}

func TestAggregateEmptyAndDegenerate(t *testing.T) {
	a := newAggregator(t)
	res := a.Aggregate(nil)
	if len(res.Campaigns) != 0 {
		t.Errorf("empty input campaigns = %d", len(res.Campaigns))
	}
	res2 := a.Aggregate([]Input{{Record: model.Record{}}}) // no hash
	if len(res2.Campaigns) != 0 {
		t.Errorf("hash-less record should be skipped, campaigns = %d", len(res2.Campaigns))
	}
}

func BenchmarkAggregate1000(b *testing.B) {
	store := osint.NewDefaultStore()
	a := New(DefaultConfig(store, testDetector(), testPoolDomains()))
	var inputs []Input
	for i := 0; i < 1000; i++ {
		w := "4WALLET_" + string(rune('A'+i%100))
		r := minerRecord("bench-"+string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune('0'+(i/10)%10))+string(rune('0'+(i/100)%10)),
			w, "pool.minexmr.com:4444", model.Date(2017, 1, 1))
		inputs = append(inputs, Input{Record: r})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Aggregate(inputs)
	}
}
