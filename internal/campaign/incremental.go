package campaign

import (
	"sort"

	"cryptomining/internal/graph"
	"cryptomining/internal/model"
)

// IncrementalAggregator maintains the campaign partition under a stream of
// inputs: each Add unions the sample's grouping-feature nodes into the live
// component structure, so campaigns are updated as samples land instead of
// re-aggregating the whole corpus. Components only ever grow or merge (the
// grouping graph is append-only), which is what makes the incremental view
// exact: after the same set of inputs, Snapshot returns the same campaigns —
// including the same deterministic IDs — as Aggregator.Aggregate.
//
// It is not safe for concurrent use; the streaming engine confines it to a
// single collector goroutine.
type IncrementalAggregator struct {
	agg    *Aggregator
	graph  *graph.Graph
	sets   *graph.DisjointSet[graph.NodeID]
	comps  map[graph.NodeID]*liveComponent
	inputs map[string]*Input

	skippedDonations int
	rebuilds         int

	// onMerge, when set, observes component merges by stable key (see
	// SetMergeHook).
	onMerge func(winner, loser string)
}

// liveComponent is one connected component of the campaign graph, maintained
// incrementally. campaign caches the last built model.Campaign and is nil
// while the component is dirty.
type liveComponent struct {
	byKind   map[model.NodeKind][]string
	minNode  graph.NodeID
	campaign *model.Campaign
}

// NewIncremental creates an incremental aggregator with the same
// configuration semantics as New.
func NewIncremental(cfg Config) *IncrementalAggregator {
	return &IncrementalAggregator{
		agg:    New(cfg),
		graph:  graph.New(),
		sets:   graph.NewDisjointSet[graph.NodeID](),
		comps:  map[graph.NodeID]*liveComponent{},
		inputs: map[string]*Input{},
	}
}

// SetAVLabels records AV labels for a sample (PPI-botnet enrichment); call it
// before Add-ing the sample so the rebuilt campaign sees them.
func (ia *IncrementalAggregator) SetAVLabels(sha string, labels []string) {
	if len(labels) == 0 {
		return
	}
	if ia.agg.cfg.AVLabels == nil {
		ia.agg.cfg.AVLabels = map[string][]string{}
	}
	ia.agg.cfg.AVLabels[sha] = labels
}

func nodeLess(a, b graph.NodeID) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Value < b.Value
}

// nodeKey encodes a node as a component-key string. Node kinds are fixed
// words without NULs, so the separator keeps keys collision-free; the
// encoding sorts exactly like nodeLess, and the key of a component is the
// encoding of its minimum node.
func nodeKey(n graph.NodeID) string { return string(n.Kind) + "\x00" + n.Value }

// SetMergeHook registers a callback observing component merges: whenever two
// live components merge, it receives the surviving component's key (its new
// minimum node) and the key that disappeared. Keys are deterministic across
// runs and across state export/restore, which lets external per-campaign
// state (e.g. timeseries timelines) follow the partition exactly. The hook
// runs synchronously inside Add.
func (ia *IncrementalAggregator) SetMergeHook(fn func(winner, loser string)) { ia.onMerge = fn }

// ComponentKey returns the stable key of the component containing the sample
// hash (under either node kind a sample can appear as), or false when the
// hash is not in the partition.
func (ia *IncrementalAggregator) ComponentKey(sha string) (string, bool) {
	for _, kind := range []model.NodeKind{model.NodeSample, model.NodeAncillary} {
		n := graph.NodeID{Kind: kind, Value: sha}
		if ia.graph.HasNode(n) {
			return nodeKey(ia.comps[ia.find(n)].minNode), true
		}
	}
	return "", false
}

// WalletComponentKey returns the stable key of the component containing the
// wallet identifier, or false when the wallet is not a grouping node (e.g.
// donation wallets, or wallet grouping disabled).
func (ia *IncrementalAggregator) WalletComponentKey(wallet string) (string, bool) {
	n := graph.NodeID{Kind: model.NodeWallet, Value: wallet}
	if !ia.graph.HasNode(n) {
		return "", false
	}
	return nodeKey(ia.comps[ia.find(n)].minNode), true
}

// find returns the root of x's component, creating a singleton component for
// unseen nodes.
func (ia *IncrementalAggregator) find(x graph.NodeID) graph.NodeID {
	root := ia.sets.Find(x)
	if _, ok := ia.comps[root]; !ok {
		ia.comps[root] = &liveComponent{
			byKind:  map[model.NodeKind][]string{x.Kind: {x.Value}},
			minNode: x,
		}
	}
	return root
}

// union merges the components of a and b and returns the surviving root.
func (ia *IncrementalAggregator) union(a, b graph.NodeID) graph.NodeID {
	ia.find(a)
	ia.find(b)
	root, absorbed, merged := ia.sets.Union(a, b)
	if !merged {
		return root
	}
	ca, cb := ia.comps[root], ia.comps[absorbed]
	for kind, values := range cb.byKind {
		ca.byKind[kind] = append(ca.byKind[kind], values...)
	}
	winner, loser := ca.minNode, cb.minNode
	if nodeLess(cb.minNode, ca.minNode) {
		winner, loser = cb.minNode, ca.minNode
		ca.minNode = cb.minNode
	}
	ca.campaign = nil
	delete(ia.comps, absorbed)
	if ia.onMerge != nil {
		ia.onMerge(nodeKey(winner), nodeKey(loser))
	}
	return root
}

// Add feeds one input into the live partition. Inputs arriving for a hash
// already seen (e.g. first known only as somebody's dropped hash) refresh the
// component's record view.
func (ia *IncrementalAggregator) Add(in Input) {
	rec := &in.Record
	if rec.SHA256 == "" {
		return
	}
	cp := in
	ia.inputs[rec.SHA256] = &cp

	sampleNode, links, donationSkipped := ia.agg.DeriveLinks(rec)
	if donationSkipped {
		ia.skippedDonations++
	}
	ia.graph.AddNode(sampleNode)
	ia.find(sampleNode)
	for _, l := range links {
		ia.graph.AddEdge(sampleNode, l.Node, l.Kind)
		ia.union(sampleNode, l.Node)
	}
	// Invalidate every component that references this hash, under either node
	// kind: a sample first known as somebody's dropped/parent hash lives in a
	// component as an (ancillary, hash) node, and that component's cached
	// campaign went stale the moment the record arrived.
	for _, kind := range []model.NodeKind{model.NodeSample, model.NodeAncillary} {
		n := graph.NodeID{Kind: kind, Value: rec.SHA256}
		if ia.graph.HasNode(n) {
			ia.comps[ia.find(n)].campaign = nil
		}
	}
}

// Len returns the current number of live components (campaigns).
func (ia *IncrementalAggregator) Len() int { return len(ia.comps) }

// Rebuilds returns how many component->campaign rebuilds Snapshot performed
// so far — the work actually done, versus re-aggregating the world each time.
func (ia *IncrementalAggregator) Rebuilds() int { return ia.rebuilds }

// Snapshot materializes the current partition as an aggregation Result. Only
// components touched since the previous snapshot are rebuilt; clean components
// reuse their cached campaign (IDs are refreshed, since insertion of an
// earlier-sorting component shifts the deterministic numbering).
func (ia *IncrementalAggregator) Snapshot() *Result {
	ordered := make([]*liveComponent, 0, len(ia.comps))
	for _, c := range ia.comps {
		ordered = append(ordered, c)
	}
	sort.Slice(ordered, func(i, j int) bool { return nodeLess(ordered[i].minNode, ordered[j].minNode) })

	res := &Result{
		Graph:                  ia.graph,
		DonationWalletsSkipped: ia.skippedDonations,
		ByWallet:               map[string]*model.Campaign{},
		BySample:               map[string]*model.Campaign{},
	}
	for i, c := range ordered {
		id := i + 1
		if c.campaign == nil {
			c.campaign = ia.agg.buildCampaign(id, &graph.Component{ByKind: c.byKind}, ia.inputs)
			ia.rebuilds++
		} else {
			c.campaign.ID = id
		}
		res.Campaigns = append(res.Campaigns, c.campaign)
		for _, w := range c.campaign.Wallets {
			res.ByWallet[w] = c.campaign
		}
		for _, s := range c.campaign.Samples {
			res.BySample[s] = c.campaign
		}
		for _, s := range c.campaign.Ancillaries {
			res.BySample[s] = c.campaign
		}
	}
	return res
}
