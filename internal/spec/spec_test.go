package spec

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sampleBehavior() Behavior {
	return Behavior{
		IsMiner:     true,
		PoolHost:    "xt.freebuf.info",
		PoolPort:    4444,
		Wallet:      "45c2ShhBmuWALLET",
		Password:    "x",
		Agent:       "XMRig/2.14.1",
		Threads:     4,
		Algo:        "cryptonight",
		CommandLine: "xmrig.exe -o stratum+tcp://xt.freebuf.info:4444 -u 45c2ShhBmuWALLET -p x",
		ProcessName: "svchost.exe",
		DropsHashes: []string{"aaa", "bbb"},
		DownloadsURLs: []string{
			"https://github.com/xmrig/xmrig/releases/download/v2.14.1/xmrig.exe",
		},
		ContactsDomains: []string{"xt.freebuf.info"},
		IdleMining:      true,
	}
}

func TestEncodeExtractRoundTrip(t *testing.T) {
	for _, obfuscated := range []bool{false, true} {
		b := sampleBehavior()
		blob := Encode(b, obfuscated)
		content := append([]byte("MZ binary header and code "), blob...)
		content = append(content, []byte(" trailing data")...)
		got, ok := Extract(content)
		if !ok {
			t.Fatalf("obfuscated=%v: Extract failed", obfuscated)
		}
		if got.Wallet != b.Wallet || got.PoolHost != b.PoolHost || got.CommandLine != b.CommandLine {
			t.Errorf("obfuscated=%v: round trip mismatch: %+v", obfuscated, got)
		}
		if len(got.DropsHashes) != 2 || got.DropsHashes[0] != "aaa" {
			t.Errorf("drops = %v", got.DropsHashes)
		}
		if !got.IdleMining || !got.IsMiner {
			t.Errorf("flags lost: %+v", got)
		}
	}
}

func TestObfuscationHidesWalletFromStringScan(t *testing.T) {
	b := sampleBehavior()
	plain := Encode(b, false)
	obfuscated := Encode(b, true)
	// The base64 of the plain JSON contains recoverable substrings of the
	// wallet only after decoding; what matters for the pipeline is that the
	// obfuscated blob differs and cannot be decoded without the XOR pass.
	if bytes.Equal(plain, obfuscated) {
		t.Fatal("obfuscated and plain encodings should differ")
	}
	if bytes.Contains(obfuscated, []byte(b.Wallet)) {
		t.Error("obfuscated blob must not contain the raw wallet")
	}
	// Both still extract.
	if _, ok := Extract(obfuscated); !ok {
		t.Error("obfuscated blob should still extract")
	}
}

func TestExtractMissingOrCorrupt(t *testing.T) {
	if _, ok := Extract([]byte("no marker here")); ok {
		t.Error("content without marker should not extract")
	}
	if _, ok := Extract(nil); ok {
		t.Error("nil content should not extract")
	}
	// Start marker without end marker.
	partial := append([]byte{}, markerStart...)
	partial = append(partial, 'P', 'a', 'b', 'c')
	if _, ok := Extract(partial); ok {
		t.Error("unterminated blob should not extract")
	}
	// Corrupted base64 payload.
	bad := append([]byte{}, markerStart...)
	bad = append(bad, 'P')
	bad = append(bad, []byte("!!!not-base64!!!")...)
	bad = append(bad, markerEnd...)
	if _, ok := Extract(bad); ok {
		t.Error("invalid base64 should not extract")
	}
	// Valid base64 of invalid JSON.
	badJSON := append([]byte{}, markerStart...)
	badJSON = append(badJSON, 'P')
	badJSON = append(badJSON, []byte("bm90LWpzb24=")...) // "not-json"
	badJSON = append(badJSON, markerEnd...)
	if _, ok := Extract(badJSON); ok {
		t.Error("invalid JSON should not extract")
	}
}

func TestPoolEndpoint(t *testing.T) {
	b := Behavior{PoolHost: "pool.minexmr.com", PoolPort: 4444}
	if got := b.PoolEndpoint(); got != "pool.minexmr.com:4444" {
		t.Errorf("PoolEndpoint = %q", got)
	}
	b.PoolPort = 0
	if got := b.PoolEndpoint(); got != "pool.minexmr.com:3333" {
		t.Errorf("default port endpoint = %q", got)
	}
	empty := Behavior{}
	if got := empty.PoolEndpoint(); got != "" {
		t.Errorf("empty endpoint = %q", got)
	}
}

func TestEncodeExtractProperty(t *testing.T) {
	f := func(wallet, host string, port uint16, threads uint8, obfuscated bool) bool {
		// Strip characters that JSON would escape awkwardly; the property is
		// about round-tripping arbitrary-ish field values.
		wallet = strings.ToValidUTF8(wallet, "")
		host = strings.ToValidUTF8(host, "")
		b := Behavior{
			IsMiner: true, Wallet: wallet, PoolHost: host,
			PoolPort: int(port), Threads: int(threads),
		}
		content := append([]byte("prefix"), Encode(b, obfuscated)...)
		got, ok := Extract(content)
		return ok && got.Wallet == wallet && got.PoolHost == host &&
			got.PoolPort == int(port) && got.Threads == int(threads)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 3333: "3333", 65535: "65535"}
	for in, want := range cases {
		if got := itoa(in); got != want {
			t.Errorf("itoa(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestMultipleBlobsFirstWins(t *testing.T) {
	b1 := Behavior{IsMiner: true, Wallet: "FIRST"}
	b2 := Behavior{IsMiner: true, Wallet: "SECOND"}
	content := append(Encode(b1, false), Encode(b2, false)...)
	got, ok := Extract(content)
	if !ok || got.Wallet != "FIRST" {
		t.Errorf("Extract with two blobs = %+v, %v", got, ok)
	}
}
