// Package spec defines the behaviour specification embedded in synthetic
// malware samples and the encoding used to carry it inside the binary image.
//
// Real malware encodes its mining configuration in code, configuration blobs
// or command lines; the analysis pipeline recovers it with static string
// extraction or by observing the sample's runtime behaviour in a sandbox.
// Because this reproduction fabricates its corpus, each sample embeds a
// Behaviour blob describing what the binary "does" when executed. The sandbox
// (internal/sandbox) interprets the blob to emit realistic dynamic-analysis
// artefacts (process trees, command lines, DNS lookups, Stratum traffic).
//
// Obfuscated samples XOR-encode the blob: static string extraction then finds
// nothing, exactly like a packed binary, while the sandbox — which emulates
// actual execution, i.e. runtime unpacking — still recovers the behaviour.
// This mirrors the paper's observation that most wallets are recovered through
// dynamic rather than static analysis (Table III).
package spec

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
)

// Markers bracket the embedded behaviour blob inside the binary image.
var (
	markerStart = []byte("\x00\x01BHV{")
	markerEnd   = []byte("}BHV\x01\x00")
)

// xorKey obfuscates blobs of packed samples.
const xorKey = 0x5A

// Behavior describes what a fabricated sample does when executed.
type Behavior struct {
	// IsMiner marks samples that perform mining themselves (as opposed to
	// droppers/loaders).
	IsMiner bool `json:"is_miner"`

	// PoolHost and PoolPort identify the Stratum endpoint the miner connects
	// to. The host may be a real pool domain, a CNAME alias controlled by
	// the campaign, a proxy address or a raw IP.
	PoolHost string `json:"pool_host,omitempty"`
	PoolPort int    `json:"pool_port,omitempty"`

	// Wallet is the mining identifier (wallet address or e-mail).
	Wallet string `json:"wallet,omitempty"`
	// Password is the Stratum password (usually "x").
	Password string `json:"password,omitempty"`
	// Agent is the user agent announced at login.
	Agent string `json:"agent,omitempty"`
	// Threads is the number of CPU threads used for mining.
	Threads int `json:"threads,omitempty"`
	// Algo is the PoW algorithm the embedded miner implements; it goes stale
	// when the network forks unless the operator ships an update.
	Algo string `json:"algo,omitempty"`

	// CommandLine is the mining process command line observed at runtime
	// (e.g. "xmrig.exe -o stratum+tcp://... -u <wallet> -p x").
	CommandLine string `json:"command_line,omitempty"`
	// ProcessName is the name of the spawned mining process.
	ProcessName string `json:"process_name,omitempty"`

	// DropsHashes are SHA256 hashes of files the sample drops (stock tools,
	// next-stage payloads).
	DropsHashes []string `json:"drops_hashes,omitempty"`
	// DownloadsURLs are URLs fetched at runtime (droppers downloading the
	// actual miner, often from GitHub or cloud storage).
	DownloadsURLs []string `json:"downloads_urls,omitempty"`
	// ContactsDomains are additional domains resolved at runtime (C2, pools,
	// CNAME aliases).
	ContactsDomains []string `json:"contacts_domains,omitempty"`

	// IdleMining marks samples that only mine when the machine is idle.
	IdleMining bool `json:"idle_mining,omitempty"`
	// StopsOnTaskManager marks samples that pause when monitoring tools run.
	StopsOnTaskManager bool `json:"stops_on_task_manager,omitempty"`
	// UsesProxy marks samples whose PoolHost is a mining proxy rather than a
	// public pool.
	UsesProxy bool `json:"uses_proxy,omitempty"`
}

// Encode serializes the behaviour into the blob appended to a binary image.
// When obfuscated is true the payload is XOR-encoded so static string
// extraction cannot recover it.
func Encode(b Behavior, obfuscated bool) []byte {
	payload, err := json.Marshal(b)
	if err != nil {
		// Behavior contains only marshalable fields; this cannot happen.
		panic("spec: marshal behaviour: " + err.Error())
	}
	flag := byte('P') // plain
	if obfuscated {
		flag = 'X'
		obf := make([]byte, len(payload))
		for i, c := range payload {
			obf[i] = c ^ xorKey
		}
		payload = obf
	}
	encoded := base64.StdEncoding.EncodeToString(payload)
	var out bytes.Buffer
	out.Write(markerStart)
	out.WriteByte(flag)
	out.WriteString(encoded)
	out.Write(markerEnd)
	return out.Bytes()
}

// Extract recovers the behaviour blob from a binary image. It returns ok=false
// when no blob is present or it cannot be decoded.
func Extract(content []byte) (Behavior, bool) {
	start := bytes.Index(content, markerStart)
	if start < 0 {
		return Behavior{}, false
	}
	rest := content[start+len(markerStart):]
	end := bytes.Index(rest, markerEnd)
	if end < 0 || end < 1 {
		return Behavior{}, false
	}
	flag := rest[0]
	payload, err := base64.StdEncoding.DecodeString(string(rest[1:end]))
	if err != nil {
		return Behavior{}, false
	}
	if flag == 'X' {
		for i := range payload {
			payload[i] ^= xorKey
		}
	}
	var b Behavior
	if err := json.Unmarshal(payload, &b); err != nil {
		return Behavior{}, false
	}
	return b, true
}

// PoolEndpoint returns "host:port" for the mining connection, or "" when the
// behaviour has no pool.
func (b Behavior) PoolEndpoint() string {
	if b.PoolHost == "" {
		return ""
	}
	port := b.PoolPort
	if port == 0 {
		port = 3333
	}
	return b.PoolHost + ":" + itoa(port)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
