package profit

import (
	"math"
	"testing"
	"time"

	"cryptomining/internal/exchange"
	"cryptomining/internal/model"
	"cryptomining/internal/pool"
	"cryptomining/internal/pow"
)

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// seededDirectory builds a pool directory with mining activity for a few
// wallets spread over several pools.
func seededDirectory() *pool.Directory {
	dir := pool.NewDirectory(nil)
	mine := func(poolName, wallet string, bots int, from, to time.Time) {
		p, _ := dir.Get(poolName)
		p.SimulateMining(wallet, bots, float64(bots)*pow.TypicalVictimHashrate, from, to, 7*24*time.Hour, nil)
	}
	// Big campaign: one wallet in two pools, long-lived.
	mine("crypto-pool", "4BIG_WALLET", 2000, date(2016, 6, 1), date(2018, 4, 1))
	mine("minexmr", "4BIG_WALLET", 2000, date(2016, 6, 1), date(2018, 4, 1))
	// Medium campaign: single pool.
	mine("dwarfpool", "4MEDIUM_WALLET", 300, date(2017, 1, 1), date(2017, 12, 1))
	// Small campaign, still active at query time.
	mine("supportxmr", "4SMALL_WALLET", 20, date(2019, 1, 1), date(2019, 4, 15))
	// Opaque-pool-only wallet (minergate): no public stats.
	mg, _ := dir.Get("minergate")
	mg.SimulateMining("miner@mail.ru", 50, 50*pow.TypicalVictimHashrate, date(2017, 1, 1), date(2017, 6, 1), 7*24*time.Hour, nil)
	return dir
}

func newAnalyzer() (*Analyzer, *pool.Directory) {
	dir := seededDirectory()
	c := NewCollector(dir, exchange.NewDefaultHistory(), date(2019, 4, 30))
	return NewAnalyzer(c), dir
}

func TestCollectWalletAcrossPools(t *testing.T) {
	a, _ := newAnalyzer()
	act := a.Collector.CollectWallet("4BIG_WALLET")
	if len(act.PerPool) != 2 {
		t.Fatalf("pools with activity = %d, want 2", len(act.PerPool))
	}
	if act.TotalXMR <= 0 || act.TotalUSD <= 0 {
		t.Errorf("totals = %v XMR / %v USD", act.TotalXMR, act.TotalUSD)
	}
	if len(act.Payments) == 0 {
		t.Error("payments should be collected")
	}
	for i := 1; i < len(act.Payments); i++ {
		if act.Payments[i].Timestamp.Before(act.Payments[i-1].Timestamp) {
			t.Fatal("payments not sorted by time")
		}
	}
	for _, p := range act.Payments {
		if p.USD <= 0 {
			t.Errorf("payment USD not converted: %+v", p)
		}
	}
	if len(act.Pools) != 2 || act.Pools[0] != "crypto-pool" || act.Pools[1] != "minexmr" {
		t.Errorf("pools = %v", act.Pools)
	}
}

func TestCollectWalletNoActivity(t *testing.T) {
	a, _ := newAnalyzer()
	act := a.Collector.CollectWallet("4NEVER_MINED")
	if len(act.PerPool) != 0 || act.TotalXMR != 0 {
		t.Errorf("unknown wallet activity = %+v", act)
	}
	// Opaque pools are invisible to the collector.
	actOpaque := a.Collector.CollectWallet("miner@mail.ru")
	if len(actOpaque.PerPool) != 0 {
		t.Errorf("minergate activity should be invisible: %+v", actOpaque)
	}
}

func TestCollectWalletsSkipsInactive(t *testing.T) {
	a, _ := newAnalyzer()
	acts := a.Collector.CollectWallets([]string{"4BIG_WALLET", "4NEVER_MINED", "", "4BIG_WALLET"})
	if len(acts) != 1 {
		t.Errorf("CollectWallets = %d entries, want 1", len(acts))
	}
}

func TestAnalyzeCampaignsFillsProfitFields(t *testing.T) {
	a, _ := newAnalyzer()
	campaigns := []*model.Campaign{
		{ID: 1, Wallets: []string{"4BIG_WALLET"}, Pools: []string{"crypto-pool"}},
		{ID: 2, Wallets: []string{"4MEDIUM_WALLET"}},
		{ID: 3, Wallets: []string{"4SMALL_WALLET"}},
		{ID: 4, Wallets: []string{"4NEVER_MINED"}},
	}
	profits := a.AnalyzeCampaigns(campaigns)
	if len(profits) != 3 {
		t.Fatalf("campaigns with earnings = %d, want 3", len(profits))
	}
	// Sorted by earnings, the big campaign first.
	if profits[0].Campaign.ID != 1 {
		t.Errorf("top campaign = %d, want 1", profits[0].Campaign.ID)
	}
	if profits[0].XMR <= profits[1].XMR {
		t.Error("profits should be sorted descending")
	}
	// Campaign fields updated in place.
	if campaigns[0].XMRMined <= 0 || campaigns[0].USDEarned <= 0 || campaigns[0].PaymentCount == 0 {
		t.Errorf("campaign profit fields = %+v", campaigns[0])
	}
	if campaigns[3].XMRMined != 0 {
		t.Error("no-earnings campaign should have zero XMR")
	}
	// The big campaign used two pools; the medium one used one.
	if profits[0].PoolsUsed != 2 {
		t.Errorf("big campaign pools used = %d, want 2", profits[0].PoolsUsed)
	}
	// Activity: the small campaign mined until mid-April 2019 and the query
	// is 30 April 2019, so it is active; the big one stopped in 2018.
	var small, big *CampaignProfit
	for i := range profits {
		switch profits[i].Campaign.ID {
		case 1:
			big = &profits[i]
		case 3:
			small = &profits[i]
		}
	}
	if !small.ActiveAt {
		t.Error("small campaign should be active at query time")
	}
	if big.ActiveAt {
		t.Error("big campaign should not be active at query time")
	}
	if !campaigns[2].Active || campaigns[0].Active {
		t.Error("Active flags not propagated to campaigns")
	}
}

func TestTopCampaignsAndWallets(t *testing.T) {
	a, _ := newAnalyzer()
	campaigns := []*model.Campaign{
		{ID: 1, Wallets: []string{"4BIG_WALLET"}},
		{ID: 2, Wallets: []string{"4MEDIUM_WALLET"}},
		{ID: 3, Wallets: []string{"4SMALL_WALLET"}},
	}
	profits := a.AnalyzeCampaigns(campaigns)
	top2 := TopCampaigns(profits, 2)
	if len(top2) != 2 || top2[0].XMR < top2[1].XMR {
		t.Errorf("TopCampaigns = %+v", top2)
	}
	topAll := TopCampaigns(profits, 100)
	if len(topAll) != len(profits) {
		t.Errorf("TopCampaigns(100) = %d", len(topAll))
	}

	wallets := []string{"4BIG_WALLET", "4MEDIUM_WALLET", "4SMALL_WALLET", "4NEVER_MINED"}
	topW := a.TopWallets(wallets, 2)
	if len(topW) != 2 || topW[0].Wallet != "4BIG_WALLET" {
		t.Errorf("TopWallets = %+v", topW)
	}
	if topW[0].XMR <= 0 || topW[0].USD <= 0 {
		t.Errorf("top wallet earnings = %+v", topW[0])
	}
}

func TestRankPools(t *testing.T) {
	a, _ := newAnalyzer()
	ranking := a.RankPools([]string{"4BIG_WALLET", "4MEDIUM_WALLET", "4SMALL_WALLET"})
	if len(ranking) < 3 {
		t.Fatalf("pool ranking = %+v", ranking)
	}
	for i := 1; i < len(ranking); i++ {
		if ranking[i].XMR > ranking[i-1].XMR {
			t.Fatal("ranking not sorted by XMR")
		}
	}
	byName := map[string]PoolRanking{}
	for _, r := range ranking {
		byName[r.Pool] = r
	}
	if byName["crypto-pool"].Wallets != 1 || byName["minexmr"].Wallets != 1 {
		t.Errorf("wallet counts = %+v", byName)
	}
	if byName["dwarfpool"].XMR <= 0 {
		t.Error("dwarfpool should have earnings")
	}
}

func TestCDF(t *testing.T) {
	cdf := CDF([]float64{1, 1, 2, 5, 10})
	if len(cdf) != 4 {
		t.Fatalf("CDF points = %d, want 4 distinct values", len(cdf))
	}
	if cdf[0].Value != 1 || math.Abs(cdf[0].Fraction-0.4) > 1e-9 {
		t.Errorf("first point = %+v", cdf[0])
	}
	last := cdf[len(cdf)-1]
	if last.Value != 10 || math.Abs(last.Fraction-1.0) > 1e-9 {
		t.Errorf("last point = %+v", last)
	}
	if got := FractionAtOrBelow(cdf, 2); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("FractionAtOrBelow(2) = %v", got)
	}
	if got := FractionAtOrBelow(cdf, 0.5); got != 0 {
		t.Errorf("FractionAtOrBelow(0.5) = %v", got)
	}
	if got := FractionAtOrBelow(cdf, 100); got != 1 {
		t.Errorf("FractionAtOrBelow(100) = %v", got)
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

func TestPoolsPerCampaignHistogram(t *testing.T) {
	profits := []CampaignProfit{
		{XMR: 0.5, PoolsUsed: 1},
		{XMR: 50, PoolsUsed: 1},
		{XMR: 50000, PoolsUsed: 3},
		{XMR: 20000, PoolsUsed: 1},
		{XMR: 500, PoolsUsed: 2},
	}
	h := PoolsPerCampaignHistogram(profits)
	if h[model.BucketUnder1][1] != 1 {
		t.Errorf("<1 bucket = %v", h[model.BucketUnder1])
	}
	if h[model.BucketOver10K][3] != 1 || h[model.BucketOver10K][1] != 1 {
		t.Errorf(">=10k bucket = %v", h[model.BucketOver10K])
	}
	if h[model.Bucket100To1K][2] != 1 {
		t.Errorf("[100-1k) bucket = %v", h[model.Bucket100To1K])
	}
}

func TestCirculationShare(t *testing.T) {
	n := pow.NewMoneroNetwork()
	at := date(2019, 4, 30)
	supply := n.CirculatingSupply(at)
	share := CirculationShare(supply*0.044, n, at)
	if math.Abs(share-0.044) > 1e-9 {
		t.Errorf("share = %v, want 0.044", share)
	}
	if CirculationShare(1000, nil, at) <= 0 {
		t.Error("nil network should default and produce a positive share")
	}
	if CirculationShare(1000, n, date(2013, 1, 1)) != 0 {
		t.Error("share before launch should be 0")
	}
}

func TestMonthlyRate(t *testing.T) {
	profits := []CampaignProfit{
		{
			XMR:          120,
			FirstPayment: date(2018, 1, 1),
			LastPayment:  date(2019, 1, 1),
		},
	}
	rate := MonthlyRate(profits)
	if rate < 9 || rate > 11 {
		t.Errorf("monthly rate = %v, want ~10", rate)
	}
	if MonthlyRate(nil) != 0 {
		t.Error("empty profits should have zero rate")
	}
	if MonthlyRate([]CampaignProfit{{XMR: 10}}) != 0 {
		t.Error("profits without payment dates should have zero rate")
	}
}

func TestNewCollectorNilRates(t *testing.T) {
	dir := pool.NewDirectory(nil)
	c := NewCollector(dir, nil, date(2019, 4, 30))
	if c.Rates == nil {
		t.Error("nil rates should default")
	}
	// Collector without a directory returns empty activity.
	c2 := NewCollector(nil, nil, date(2019, 4, 30))
	if act := c2.CollectWallet("4X"); len(act.PerPool) != 0 {
		t.Errorf("no-directory activity = %+v", act)
	}
}

func BenchmarkAnalyzeCampaigns(b *testing.B) {
	a, _ := newAnalyzer()
	campaigns := []*model.Campaign{
		{ID: 1, Wallets: []string{"4BIG_WALLET"}},
		{ID: 2, Wallets: []string{"4MEDIUM_WALLET"}},
		{ID: 3, Wallets: []string{"4SMALL_WALLET"}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.AnalyzeCampaigns(campaigns)
	}
}
