// Package profit implements the profit-analysis stage of the pipeline
// (§III-D of the paper): for every wallet extracted from malware it queries
// the known mining pools for the total paid, the payment history and the
// last-share/hashrate statistics, converts payments to USD with the exchange
// rate at the payment date, and aggregates the result per campaign.
//
// It also produces the derived datasets the evaluation reports: the Table VII
// pool ranking, the Table VIII / XIV top campaigns and wallets, the Figure 4
// CDFs, the Figure 5 pools-per-campaign histogram and the §IV-B share of
// circulating Monero.
package profit

import (
	"sort"
	"sync"
	"time"

	"cryptomining/internal/exchange"
	"cryptomining/internal/model"
	"cryptomining/internal/pool"
	"cryptomining/internal/pow"
)

// Collector queries pools for wallet statistics.
type Collector struct {
	Directory *pool.Directory
	Rates     *exchange.History
	// QueryTime is the timestamp recorded as DATE_QUERY on collected stats.
	QueryTime time.Time
}

// NewCollector builds a collector over a pool directory and rate history.
// A nil history uses the default synthetic XMR/USD curve.
func NewCollector(dir *pool.Directory, rates *exchange.History, queryTime time.Time) *Collector {
	if rates == nil {
		rates = exchange.NewDefaultHistory()
	}
	return &Collector{Directory: dir, Rates: rates, QueryTime: queryTime}
}

// WalletActivity is everything learned about one wallet across all pools.
type WalletActivity struct {
	Wallet string
	// PerPool holds the stats from each transparent pool where the wallet
	// has activity.
	PerPool []model.WalletStats
	// TotalXMR is the total paid across pools.
	TotalXMR float64
	// TotalUSD converts each payment at its own date (falling back to the
	// pool-level total at the average rate when a pool provides no history).
	TotalUSD float64
	// Payments is the merged payment list across pools, sorted by time.
	Payments []model.Payment
	// Pools lists the pools where activity was found.
	Pools []string
	// LastShare is the most recent share across pools.
	LastShare time.Time
}

// CollectWallet queries every transparent pool for one wallet, exactly as the
// paper queries all wallets against all pools (§III-D).
func (c *Collector) CollectWallet(wallet string) WalletActivity {
	if c.Directory == nil {
		return WalletActivity{Wallet: wallet}
	}
	var perPool []model.WalletStats
	for _, p := range c.Directory.Transparent() {
		stats, err := p.Stats(wallet, c.QueryTime)
		if err != nil {
			continue
		}
		perPool = append(perPool, stats)
	}
	return BuildActivity(wallet, perPool, c.Rates)
}

// BuildActivity assembles one wallet's cross-pool activity from raw per-pool
// statistics: pools without any activity are dropped, payments are converted
// to USD at the rate of their date (falling back to the pool total at the
// average rate when no history is exposed), and the merged payment list is
// time-sorted. It is the single aggregation path shared by the synchronous
// Collector and the asynchronous probe crawler, which is what makes their
// results bit-identical — callers must supply perPool in the same order
// (pools sorted by name) for float summation to agree. A nil rates history
// uses the default synthetic curve.
func BuildActivity(wallet string, perPool []model.WalletStats, rates *exchange.History) WalletActivity {
	if rates == nil {
		rates = exchange.NewDefaultHistory()
	}
	act := WalletActivity{Wallet: wallet}
	for _, stats := range perPool {
		if stats.TotalPaid <= 0 && stats.Hashes == 0 {
			continue
		}
		// Convert payments at the rate of their date.
		var usd float64
		for i := range stats.Payments {
			stats.Payments[i].USD = rates.Convert(stats.Payments[i].Amount, stats.Payments[i].Timestamp)
			usd += stats.Payments[i].USD
		}
		if len(stats.Payments) == 0 && stats.TotalPaid > 0 {
			usd = exchange.ConvertAverage(stats.TotalPaid)
		}
		stats.USD = usd
		act.PerPool = append(act.PerPool, stats)
		act.TotalXMR += stats.TotalPaid
		act.TotalUSD += usd
		act.Payments = append(act.Payments, stats.Payments...)
		act.Pools = append(act.Pools, stats.Pool)
		if stats.LastShare.After(act.LastShare) {
			act.LastShare = stats.LastShare
		}
	}
	sort.Slice(act.Payments, func(i, j int) bool { return act.Payments[i].Timestamp.Before(act.Payments[j].Timestamp) })
	act.Pools = model.SortStrings(act.Pools)
	return act
}

// CollectWallets collects activity for a set of wallets, skipping wallets with
// no activity anywhere.
func (c *Collector) CollectWallets(wallets []string) map[string]WalletActivity {
	out := map[string]WalletActivity{}
	for _, w := range wallets {
		if w == "" {
			continue
		}
		if _, done := out[w]; done {
			continue
		}
		act := c.CollectWallet(w)
		if len(act.PerPool) > 0 {
			out[w] = act
		}
	}
	return out
}

// CachedCollector memoizes CollectWallet per wallet. Pool ledgers are fixed
// for a given query time, so a wallet's activity never changes within one
// measurement — the streaming engine shares one cache across every
// incremental campaign-profit refresh. Safe for concurrent use.
type CachedCollector struct {
	collector *Collector
	mu        sync.Mutex
	cache     map[string]WalletActivity
}

// NewCachedCollector wraps a collector with a per-wallet memo.
func NewCachedCollector(c *Collector) *CachedCollector {
	return &CachedCollector{collector: c, cache: map[string]WalletActivity{}}
}

// CollectWallet returns the (possibly cached) activity of one wallet.
func (cc *CachedCollector) CollectWallet(wallet string) WalletActivity {
	cc.mu.Lock()
	act, ok := cc.cache[wallet]
	cc.mu.Unlock()
	if ok {
		return act
	}
	act = cc.collector.CollectWallet(wallet)
	cc.mu.Lock()
	cc.cache[wallet] = act
	cc.mu.Unlock()
	return act
}

// Invalidate drops one wallet's memoized activity, forcing the next
// CollectWallet to re-query the pools. The what-if scenario engine calls it
// after mutating a forked ledger (ban + retraction), where the "activity
// never changes within one measurement" premise of the memo deliberately no
// longer holds.
func (cc *CachedCollector) Invalidate(wallet string) {
	cc.mu.Lock()
	delete(cc.cache, wallet)
	cc.mu.Unlock()
}

// Size returns the number of cached wallets.
func (cc *CachedCollector) Size() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.cache)
}

// CampaignProfit is the per-campaign profit summary (Table VIII rows).
type CampaignProfit struct {
	Campaign *model.Campaign
	XMR      float64
	USD      float64
	Payments []model.Payment
	// ActiveAt reports whether any wallet had a share within ActiveWindow of
	// the query time.
	ActiveAt bool
	// PoolsUsed is the number of distinct pools with activity.
	PoolsUsed    int
	FirstPayment time.Time
	LastPayment  time.Time
}

// ActiveWindow is how recently a campaign must have submitted a share to be
// considered "still active" at the end of the measurement.
const ActiveWindow = 30 * 24 * time.Hour

// Analyzer combines wallet activity into campaign-level profits and the
// derived report datasets.
type Analyzer struct {
	Collector *Collector
}

// NewAnalyzer wraps a collector.
func NewAnalyzer(c *Collector) *Analyzer { return &Analyzer{Collector: c} }

// AnalyzeCampaignWith computes one campaign's profit summary using an
// arbitrary wallet-activity source (e.g. a CachedCollector shared across
// incremental refreshes) and fills the campaign's profit fields. Summation
// runs over c.Wallets in order, so the result is bit-identical no matter how
// often or in which order campaigns are (re)analyzed.
func AnalyzeCampaignWith(c *model.Campaign, collect func(wallet string) WalletActivity, queryTime time.Time) CampaignProfit {
	cp := CampaignProfit{Campaign: c}
	poolSet := map[string]bool{}
	for _, w := range c.Wallets {
		act := collect(w)
		cp.XMR += act.TotalXMR
		cp.USD += act.TotalUSD
		cp.Payments = append(cp.Payments, act.Payments...)
		for _, p := range act.Pools {
			poolSet[p] = true
		}
		if !act.LastShare.IsZero() && queryTime.Sub(act.LastShare) <= ActiveWindow {
			cp.ActiveAt = true
		}
	}
	cp.PoolsUsed = len(poolSet)
	sort.Slice(cp.Payments, func(i, j int) bool { return cp.Payments[i].Timestamp.Before(cp.Payments[j].Timestamp) })
	if len(cp.Payments) > 0 {
		cp.FirstPayment = cp.Payments[0].Timestamp
		cp.LastPayment = cp.Payments[len(cp.Payments)-1].Timestamp
	}
	// Fill the campaign's own profit fields.
	c.XMRMined = cp.XMR
	c.USDEarned = cp.USD
	c.PaymentCount = len(cp.Payments)
	c.Active = cp.ActiveAt
	// Merge the pools discovered through payments into the campaign's
	// pool list (a wallet may pay out at a pool no sample pointed to
	// directly, e.g. behind a proxy). SortStrings dedups, so re-merging on
	// an incremental refresh is idempotent.
	merged := append([]string{}, c.Pools...)
	for p := range poolSet {
		merged = append(merged, p)
	}
	c.Pools = model.SortStrings(merged)
	return cp
}

// AnalyzeCampaignsWith runs AnalyzeCampaignWith over every campaign and
// returns the per-campaign profits for campaigns with any earnings, sorted by
// XMR descending.
func AnalyzeCampaignsWith(campaigns []*model.Campaign, collect func(wallet string) WalletActivity, queryTime time.Time) []CampaignProfit {
	var out []CampaignProfit
	for _, c := range campaigns {
		cp := AnalyzeCampaignWith(c, collect, queryTime)
		if cp.XMR > 0 {
			out = append(out, cp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].XMR > out[j].XMR })
	return out
}

// AnalyzeCampaigns collects activity for every wallet of every campaign and
// fills the campaigns' profit fields. It returns the per-campaign profits for
// campaigns with any earnings.
func (a *Analyzer) AnalyzeCampaigns(campaigns []*model.Campaign) []CampaignProfit {
	return AnalyzeCampaignsWith(campaigns, a.Collector.CollectWallet, a.Collector.QueryTime)
}

// TopCampaigns returns the n highest-earning campaigns (Table VIII).
func TopCampaigns(profits []CampaignProfit, n int) []CampaignProfit {
	sorted := append([]CampaignProfit(nil), profits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].XMR > sorted[j].XMR })
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// WalletEarning is one row of the Table XIV top-wallet ranking.
type WalletEarning struct {
	Wallet string
	XMR    float64
	USD    float64
}

// TopWallets ranks individual wallets by earnings (Table XIV). Unlike the
// campaign analysis it does not exclude donation wallets — the paper keeps
// them in this table for comparability with industry reports.
func (a *Analyzer) TopWallets(wallets []string, n int) []WalletEarning {
	acts := a.Collector.CollectWallets(wallets)
	out := make([]WalletEarning, 0, len(acts))
	for w, act := range acts {
		out = append(out, WalletEarning{Wallet: w, XMR: act.TotalXMR, USD: act.TotalUSD})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].XMR > out[j].XMR })
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// PoolRanking is one row of the Table VII pool-popularity ranking.
type PoolRanking struct {
	Pool    string
	XMR     float64
	Wallets int
	USD     float64
}

// RankPools aggregates wallet activity per pool (Table VII): for every pool,
// the total XMR paid to illicit wallets, the number of distinct wallets and
// the USD equivalent.
func (a *Analyzer) RankPools(wallets []string) []PoolRanking {
	perPool := map[string]*PoolRanking{}
	acts := a.Collector.CollectWallets(wallets)
	for _, act := range acts {
		for _, st := range act.PerPool {
			r, ok := perPool[st.Pool]
			if !ok {
				r = &PoolRanking{Pool: st.Pool}
				perPool[st.Pool] = r
			}
			r.XMR += st.TotalPaid
			r.USD += st.USD
			r.Wallets++
		}
	}
	out := make([]PoolRanking, 0, len(perPool))
	for _, r := range perPool {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].XMR > out[j].XMR })
	return out
}

// CDFPoint is one point of a cumulative distribution (Figure 4).
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF computes the cumulative distribution of a sample of values: for each
// distinct value, the fraction of observations less than or equal to it.
func CDF(values []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	vs := append([]float64(nil), values...)
	sort.Float64s(vs)
	var out []CDFPoint
	n := float64(len(vs))
	for i := 0; i < len(vs); i++ {
		// Emit one point per distinct value, at its last occurrence.
		if i+1 < len(vs) && vs[i+1] == vs[i] {
			continue
		}
		out = append(out, CDFPoint{Value: vs[i], Fraction: float64(i+1) / n})
	}
	return out
}

// FractionAtOrBelow returns the CDF value at v (the fraction of observations
// <= v), interpolating over the precomputed points.
func FractionAtOrBelow(cdf []CDFPoint, v float64) float64 {
	frac := 0.0
	for _, p := range cdf {
		if p.Value <= v {
			frac = p.Fraction
		} else {
			break
		}
	}
	return frac
}

// PoolsPerCampaignHistogram builds the Figure 5 dataset: for each earnings
// bucket, the distribution of the number of distinct pools used.
func PoolsPerCampaignHistogram(profits []CampaignProfit) map[model.ProfitBucket]map[int]int {
	out := map[model.ProfitBucket]map[int]int{}
	for _, cp := range profits {
		bucket := model.FineBucketFor(cp.XMR)
		if out[bucket] == nil {
			out[bucket] = map[int]int{}
		}
		out[bucket][cp.PoolsUsed]++
	}
	return out
}

// CirculationShare computes the §IV-B headline figure: the fraction of the
// circulating supply at time t represented by the total XMR attributed to
// malware campaigns.
func CirculationShare(totalXMR float64, network *pow.Network, t time.Time) float64 {
	if network == nil {
		network = pow.NewMoneroNetwork()
	}
	supply := network.CirculatingSupply(t)
	if supply <= 0 {
		return 0
	}
	return totalXMR / supply
}

// MonthlyRate returns the average XMR mined per month across the observation
// period spanned by the payments (used in the Table XII comparison row).
func MonthlyRate(profits []CampaignProfit) float64 {
	var total float64
	var first, last time.Time
	for _, cp := range profits {
		total += cp.XMR
		if !cp.FirstPayment.IsZero() && (first.IsZero() || cp.FirstPayment.Before(first)) {
			first = cp.FirstPayment
		}
		if cp.LastPayment.After(last) {
			last = cp.LastPayment
		}
	}
	if first.IsZero() || !last.After(first) {
		return 0
	}
	months := last.Sub(first).Hours() / (24 * 30.44)
	if months <= 0 {
		return 0
	}
	return total / months
}
