package api

import (
	"net/http"

	"cryptomining/internal/probe"
	"cryptomining/pkg/apiv1"
)

func (s *Server) handleProbeStats(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Probe == nil {
		s.error(w, http.StatusConflict, apiv1.CodeProbeDisabled,
			"wallet probing disabled (daemon runs without a prober)")
		return
	}
	s.writeJSON(w, http.StatusOK, ProbeStatsToWire(s.cfg.Probe.Stats()))
}

// handleProbeRefresh forces re-probes. Exactly one selector is required:
// ?wallet=<id> re-probes one wallet (fresh or not), ?scope=stale re-enqueues
// every TTL-expired or errored cache entry, ?scope=all the whole cache.
func (s *Server) handleProbeRefresh(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Probe == nil {
		s.error(w, http.StatusConflict, apiv1.CodeProbeDisabled,
			"wallet probing disabled (daemon runs without a prober)")
		return
	}
	wallet := r.URL.Query().Get("wallet")
	scope := r.URL.Query().Get("scope")
	var requeued int
	switch {
	case wallet != "" && scope != "":
		s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest,
			"pass either wallet=<id> or scope=stale|all, not both")
		return
	case wallet != "":
		if s.cfg.Probe.Refresh(wallet) {
			requeued = 1
		}
	case scope == "stale":
		requeued = s.cfg.Probe.RefreshStale()
	case scope == "all":
		requeued = s.cfg.Probe.RefreshAll()
	default:
		s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest,
			"missing selector: wallet=<id>, scope=stale or scope=all")
		return
	}
	s.writeJSON(w, http.StatusOK, apiv1.ProbeRefresh{Requeued: requeued})
}

func (s *Server) handleFinish(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Finish == nil {
		s.error(w, http.StatusConflict, apiv1.CodeFinishUnavailable,
			"this daemon cannot force a drain")
		return
	}
	res, err := s.cfg.Finish(r.Context())
	if err != nil {
		s.error(w, http.StatusInternalServerError, apiv1.CodeInternal, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, ResultsToWire(res))
}

// ProbeStatsToWire converts the scheduler's telemetry to the wire shape.
func ProbeStatsToWire(st probe.Stats) apiv1.ProbeStats {
	out := apiv1.ProbeStats{
		QueueDepth:  st.QueueDepth,
		InFlight:    st.InFlight,
		Converged:   st.Converged,
		CacheSize:   st.CacheSize,
		CacheErrors: st.CacheErrors,
		Completed:   st.Completed,
		CacheHits:   st.CacheHits,
		CacheMisses: st.CacheMisses,
	}
	for _, p := range st.Pools {
		out.Pools = append(out.Pools, apiv1.ProbePoolStats{
			Pool:           p.Pool,
			Requests:       p.Requests,
			OK:             p.OK,
			UnknownWallet:  p.UnknownWallet,
			OpaquePool:     p.OpaquePool,
			Retries:        p.Retries,
			Failed:         p.Failed,
			ThrottledNanos: int64(p.Throttled),
		})
	}
	for _, a := range st.Ages {
		out.CacheAges = append(out.CacheAges, apiv1.ProbeAgeBucket{
			UpToSeconds: int64(a.UpTo.Seconds()),
			Count:       a.Count,
		})
	}
	return out
}
