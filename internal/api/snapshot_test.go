package api_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"cryptomining/internal/api"
	"cryptomining/pkg/apiv1"
)

// TestConditionalRevalidation exercises the ETag surface: snapshot-backed
// GETs carry a strong validator, and If-None-Match revalidation answers 304
// with no body.
func TestConditionalRevalidation(t *testing.T) {
	d := newTestDaemon(t, api.Config{})
	d.ingestAll(t)
	d.finish(t)

	get := func(path, inm string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, d.ts.URL+path, nil)
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := d.ts.Client().Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp
	}

	for _, path := range []string{"/api/v1/campaigns", "/campaigns", "/api/v1/campaigns/1"} {
		resp := get(path, "")
		etag := resp.Header.Get("ETag")
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || etag == "" {
			t.Fatalf("GET %s: status %d, etag %q", path, resp.StatusCode, etag)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}

		resp = get(path, etag)
		revalidated, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("GET %s If-None-Match %s: status %d, want 304", path, etag, resp.StatusCode)
		}
		if len(revalidated) != 0 {
			t.Fatalf("GET %s: 304 carried a body (%d bytes)", path, len(revalidated))
		}
		if got := resp.Header.Get("ETag"); got != etag {
			t.Fatalf("GET %s: 304 etag %q, want %q", path, got, etag)
		}

		// A stale validator misses and gets the full representation again.
		resp = get(path, `"v0"`)
		stale, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(stale) != string(body) {
			t.Fatalf("GET %s with stale etag: status %d, body match %v",
				path, resp.StatusCode, string(stale) == string(body))
		}

		// Weak-comparison: a W/ prefixed candidate still matches, as does a
		// list containing the tag.
		for _, inm := range []string{"W/" + etag, `"nope", ` + etag, "*"} {
			resp = get(path, inm)
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotModified {
				t.Fatalf("GET %s If-None-Match %q: status %d, want 304", path, inm, resp.StatusCode)
			}
		}
	}

	// The stats endpoint stays live (no validator): uncacheable by design.
	resp := get("/api/v1/stats", "")
	resp.Body.Close()
	if resp.Header.Get("ETag") != "" {
		t.Fatalf("/api/v1/stats unexpectedly carries an ETag")
	}
}

// TestCursorPagination walks the listing by cursor and checks the cursor
// wins over the deprecated offset alias.
func TestCursorPagination(t *testing.T) {
	d := newTestDaemon(t, api.Config{})
	d.ingestAll(t)
	d.finish(t)

	getPage := func(query string) apiv1.CampaignPage {
		t.Helper()
		resp, err := d.ts.Client().Get(d.ts.URL + "/api/v1/campaigns" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", query, resp.StatusCode)
		}
		var page apiv1.CampaignPage
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		return page
	}

	all := getPage("")
	if all.Total < 4 {
		t.Fatalf("universe too small: %d campaigns", all.Total)
	}
	if all.NextCursor != "" {
		t.Fatalf("unpaginated listing minted a cursor: %q", all.NextCursor)
	}

	// Cursor pages tile the full listing.
	var walked []apiv1.Campaign
	page := getPage("?limit=3")
	for {
		walked = append(walked, page.Campaigns...)
		if page.NextCursor == "" {
			break
		}
		if len(walked) > all.Total {
			t.Fatalf("cursor walk overran the listing: %d > %d", len(walked), all.Total)
		}
		page = getPage("?limit=3&cursor=" + page.NextCursor)
	}
	if len(walked) != all.Total {
		t.Fatalf("cursor walk collected %d campaigns, want %d", len(walked), all.Total)
	}
	for i := range walked {
		if walked[i].ID != all.Campaigns[i].ID {
			t.Fatalf("cursor walk diverges at %d: id %d vs %d", i, walked[i].ID, all.Campaigns[i].ID)
		}
	}

	// Cursor beats the deprecated offset alias when both are sent.
	first := getPage("?limit=2")
	if first.NextCursor == "" {
		t.Fatal("first page minted no cursor")
	}
	both := getPage("?limit=2&offset=0&cursor=" + first.NextCursor)
	if both.Offset != 2 || both.Campaigns[0].ID != all.Campaigns[2].ID {
		t.Fatalf("cursor did not win over offset: offset %d, first id %d", both.Offset, both.Campaigns[0].ID)
	}

	// Garbage cursors are client errors.
	resp, err := d.ts.Client().Get(d.ts.URL + "/api/v1/campaigns?cursor=garbage!")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage cursor: status %d, want 400", resp.StatusCode)
	}
	if env := decodeEnvelope(t, resp); env.Error.Code != apiv1.CodeBadRequest {
		t.Fatalf("garbage cursor code %q", env.Error.Code)
	}
}

// TestRateLimit exhausts a tight per-client bucket and checks the 429
// surface: Retry-After, the envelope code, and that non-read methods are
// exempt.
func TestRateLimit(t *testing.T) {
	d := newTestDaemon(t, api.Config{RateLimit: 1, RateBurst: 2})

	var limited *http.Response
	for i := 0; i < 10; i++ {
		resp, err := d.ts.Client().Get(d.ts.URL + "/api/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			limited = resp
			break
		}
		resp.Body.Close()
	}
	if limited == nil {
		t.Fatal("burst of 10 GETs was never throttled at rate 1 burst 2")
	}
	if ra, err := strconv.Atoi(limited.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("429 Retry-After %q", limited.Header.Get("Retry-After"))
	}
	if env := decodeEnvelope(t, limited); env.Error.Code != apiv1.CodeRateLimited {
		t.Fatalf("429 code %q, want %q", env.Error.Code, apiv1.CodeRateLimited)
	}

	// Writes bypass the read throttle: an exhausted bucket still answers the
	// endpoint's own semantics (409 here — no checkpointing configured).
	resp, err := d.ts.Client().Post(d.ts.URL+"/api/v1/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		t.Fatal("POST was rate limited; writes must be exempt")
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST /checkpoint: status %d, want 409", resp.StatusCode)
	}
}

// TestReadsServeWhileCollectorLocked is the isolation guarantee: with the
// collector mutex held (a long checkpoint, a stalled batch), every
// snapshot-backed GET still completes from the published view.
func TestReadsServeWhileCollectorLocked(t *testing.T) {
	d := newTestDaemon(t, api.Config{})
	d.ingestAll(t)
	d.finish(t)

	release := d.eng.HoldCollectorLock()
	defer release()

	cl := &http.Client{Timeout: 10 * time.Second}
	for _, path := range []string{
		"/api/v1/stats",
		"/api/v1/campaigns",
		"/api/v1/campaigns/1",
		"/api/v1/timeseries",
		"/api/v1/campaigns/1/timeline",
		"/campaigns?n=3",
		"/stats",
	} {
		resp, err := cl.Get(d.ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s with collector locked: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s with collector locked: status %d", path, resp.StatusCode)
		}
	}
}
