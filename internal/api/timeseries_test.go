package api_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"cryptomining/internal/api"
	"cryptomining/internal/core"
	"cryptomining/internal/stream"
	"cryptomining/pkg/apiv1"
)

// TestTimeseriesEndpoints drives the longitudinal endpoints end to end over
// a drained run: the ecosystem snapshot, metric/resolution/window selection,
// and per-campaign timelines.
func TestTimeseriesEndpoints(t *testing.T) {
	d := newTestDaemon(t, api.Config{})
	d.ingestAll(t)
	res := d.finish(t)

	var ts apiv1.Timeseries
	getJSON(t, d.ts.URL+"/api/v1/timeseries", &ts)
	if ts.ResolutionSeconds != 1 {
		t.Errorf("default resolution %ds, want 1", ts.ResolutionSeconds)
	}
	bySeries := map[string]float64{}
	for _, s := range ts.Series {
		for _, b := range s.Buckets {
			bySeries[s.Name] += b.Sum
		}
	}
	if int(bySeries["samples"]) != len(res.Outcomes) {
		t.Errorf("samples series sums to %v, want %d", bySeries["samples"], len(res.Outcomes))
	}
	if int(bySeries["kept"]) != len(res.Records) {
		t.Errorf("kept series sums to %v, want %d", bySeries["kept"], len(res.Records))
	}
	if len(ts.Years) == 0 {
		t.Error("no yearly-evolution breakdown")
	}

	// Metric + resolution selection.
	var one apiv1.Timeseries
	getJSON(t, d.ts.URL+"/api/v1/timeseries?metric=kept&resolution=1m&window=2h", &one)
	if len(one.Series) != 1 || one.Series[0].Name != "kept" || one.ResolutionSeconds != 60 {
		t.Errorf("filtered query: %d series, resolution %ds", len(one.Series), one.ResolutionSeconds)
	}

	// Campaign timeline for every listed campaign.
	var page apiv1.CampaignPage
	getJSON(t, d.ts.URL+"/api/v1/campaigns", &page)
	if page.Total == 0 {
		t.Fatal("no campaigns")
	}
	for _, c := range page.Campaigns {
		var tl apiv1.CampaignTimeline
		getJSON(t, fmt.Sprintf("%s/api/v1/campaigns/%d/timeline", d.ts.URL, c.ID), &tl)
		if tl.ID != c.ID || len(tl.Series) != 3 {
			t.Fatalf("campaign %d timeline: id=%d series=%d", c.ID, tl.ID, len(tl.Series))
		}
		var arrivals int64
		for _, s := range tl.Series {
			if s.Name == apiv1.TimelineSamples {
				for _, b := range s.Buckets {
					arrivals += b.Count
				}
			}
		}
		if arrivals == 0 {
			t.Errorf("campaign %d timeline has no sample arrivals", c.ID)
		}
	}
}

// TestTimeseriesParamValidation pins the error envelope for every malformed
// or unresolvable timeline/timeseries request.
func TestTimeseriesParamValidation(t *testing.T) {
	d := newTestDaemon(t, api.Config{})
	d.ingestAll(t)
	d.finish(t)

	cases := []struct {
		path string
		want int
		code string
	}{
		{"/api/v1/timeseries?resolution=bogus", http.StatusBadRequest, apiv1.CodeBadRequest},
		{"/api/v1/timeseries?resolution=-5s", http.StatusBadRequest, apiv1.CodeBadRequest},
		{"/api/v1/timeseries?resolution=7s", http.StatusBadRequest, apiv1.CodeBadRequest},
		{"/api/v1/timeseries?window=nope", http.StatusBadRequest, apiv1.CodeBadRequest},
		{"/api/v1/timeseries?window=-1h", http.StatusBadRequest, apiv1.CodeBadRequest},
		{"/api/v1/timeseries?metric=no-such-series", http.StatusBadRequest, apiv1.CodeBadRequest},
		{"/api/v1/campaigns/1/timeline?metric=bogus", http.StatusBadRequest, apiv1.CodeBadRequest},
		{"/api/v1/campaigns/1/timeline?resolution=9h", http.StatusBadRequest, apiv1.CodeBadRequest},
		{"/api/v1/campaigns/abc/timeline", http.StatusBadRequest, apiv1.CodeBadRequest},
		{"/api/v1/campaigns/999999/timeline", http.StatusNotFound, apiv1.CodeNotFound},
	}
	for _, tc := range cases {
		resp, err := http.Get(d.ts.URL + tc.path)
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
		if env := decodeEnvelope(t, resp); env.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.path, env.Error.Code, tc.code)
		}
	}

	// Day-unit resolutions parse ("1d" is a configured default level).
	var ts apiv1.Timeseries
	getJSON(t, d.ts.URL+"/api/v1/timeseries?resolution=1d&window=30d", &ts)
	if ts.ResolutionSeconds != 86400 {
		t.Errorf("1d resolution = %ds", ts.ResolutionSeconds)
	}
}

// TestTimeseriesDisabled409 pins the conflict envelope when the daemon runs
// without the subsystem.
func TestTimeseriesDisabled409(t *testing.T) {
	scfg := core.NewFromUniverse(testUniverse()).StreamConfig()
	scfg.Timeseries.Disabled = true
	eng := stream.New(scfg)
	eng.Start(context.Background())
	srv := httptest.NewServer(api.New(api.Config{
		Engine: eng,
	}).Handler())
	defer srv.Close()

	for _, path := range []string{"/api/v1/timeseries", "/api/v1/campaigns/1/timeline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("%s: status %d, want 409", path, resp.StatusCode)
		}
		if env := decodeEnvelope(t, resp); env.Error.Code != apiv1.CodeTimeseriesDisabled {
			t.Errorf("%s: code %q", path, env.Error.Code)
		}
	}
}

// TestCampaignsOffsetPastEnd pins that any offset at or past the end of the
// (filtered) listing answers an empty page — not an error, not a panic —
// for every filter combination.
func TestCampaignsOffsetPastEnd(t *testing.T) {
	d := newTestDaemon(t, api.Config{})
	d.ingestAll(t)
	d.finish(t)

	var all apiv1.CampaignPage
	getJSON(t, d.ts.URL+"/api/v1/campaigns", &all)
	if all.Total == 0 {
		t.Fatal("no campaigns to paginate")
	}
	// A filter value that matches at least one campaign, per dimension.
	var pool, wallet string
	for _, c := range all.Campaigns {
		if pool == "" && len(c.Pools) > 0 {
			pool = c.Pools[0]
		}
		if wallet == "" && len(c.Wallets) > 0 {
			wallet = c.Wallets[0]
		}
	}

	filters := []url.Values{
		{},
		{"pool": {pool}},
		{"wallet": {wallet}},
		{"min_xmr": {"0.001"}},
		{"pool": {pool}, "wallet": {wallet}, "min_xmr": {"0.001"}},
		{"pool": {"no-such-pool"}},
	}
	for _, f := range filters {
		// The filtered total differs per filter; read it first.
		base := d.ts.URL + "/api/v1/campaigns"
		if enc := f.Encode(); enc != "" {
			base += "?" + enc
		}
		var filtered apiv1.CampaignPage
		getJSON(t, base, &filtered)

		for _, offset := range []int{filtered.Total, filtered.Total + 1, filtered.Total + 1000} {
			q := url.Values{}
			for k, v := range f {
				q[k] = v
			}
			q.Set("offset", fmt.Sprint(offset))
			q.Set("limit", "5")
			var page apiv1.CampaignPage
			getJSON(t, d.ts.URL+"/api/v1/campaigns?"+q.Encode(), &page)
			if page.Total != filtered.Total {
				t.Errorf("filter %v offset %d: total %d, want %d", f, offset, page.Total, filtered.Total)
			}
			if page.Campaigns == nil || len(page.Campaigns) != 0 {
				t.Errorf("filter %v offset %d: want explicit empty page, got %v", f, offset, page.Campaigns)
			}
			if page.Offset != offset {
				t.Errorf("filter %v: offset echoed as %d, want %d", f, page.Offset, offset)
			}
		}
	}
}
