package api_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cryptomining/internal/api"
	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/obs"
	"cryptomining/internal/stream"
	"cryptomining/pkg/apiv1"
)

// testUniverse generates the shared corpus once; engines treat samples as
// read-only, so tests can share it.
var testUniverse = sync.OnceValue(func() *ecosim.Universe {
	return ecosim.Generate(ecosim.SmallConfig().Scale(0.3))
})

// testDaemon is a live engine + API server over a small universe.
type testDaemon struct {
	u   *ecosim.Universe
	eng *stream.Engine
	ts  *httptest.Server

	mu    sync.Mutex
	final *stream.Results
}

func newTestDaemon(t *testing.T, cfg api.Config) *testDaemon {
	t.Helper()
	d := &testDaemon{u: testUniverse()}
	scfg := core.NewFromUniverse(d.u).StreamConfig()
	scfg.Shards = 4
	d.eng = stream.New(scfg)
	d.eng.Start(context.Background())

	cfg.Engine = d.eng
	if cfg.Results == nil {
		cfg.Results = func() *stream.Results {
			d.mu.Lock()
			defer d.mu.Unlock()
			return d.final
		}
	}
	d.ts = httptest.NewServer(api.New(cfg).Handler())
	t.Cleanup(d.ts.Close)
	return d
}

// ingestAll submits the whole corpus directly into the engine.
func (d *testDaemon) ingestAll(t *testing.T) {
	t.Helper()
	ctx := context.Background()
	for _, h := range d.u.Corpus.Hashes() {
		s, _ := d.u.Corpus.Get(h)
		if err := d.eng.Submit(ctx, s); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
}

func (d *testDaemon) finish(t *testing.T) *stream.Results {
	t.Helper()
	res, err := d.eng.Finish(context.Background())
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	d.mu.Lock()
	d.final = res
	d.mu.Unlock()
	return res
}

func decodeEnvelope(t *testing.T, resp *http.Response) apiv1.ErrorEnvelope {
	t.Helper()
	defer resp.Body.Close()
	var env apiv1.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode error envelope: %v", err)
	}
	if env.Error.Code == "" {
		t.Fatalf("error envelope has no code")
	}
	return env
}

func TestMethodGuards(t *testing.T) {
	d := newTestDaemon(t, api.Config{})
	cases := []struct {
		method, path, wantAllow string
	}{
		{http.MethodPost, "/api/v1/stats", "GET, HEAD"},
		{http.MethodDelete, "/api/v1/campaigns", "GET, HEAD"},
		{http.MethodGet, "/api/v1/samples", "POST"},
		{http.MethodGet, "/api/v1/checkpoint", "POST"},
		{http.MethodPut, "/stats", "GET, HEAD"},
		{http.MethodPost, "/campaigns", "GET, HEAD"},
		{http.MethodPost, "/results", "GET, HEAD"},
		{http.MethodGet, "/checkpoint", "POST"},
		{http.MethodPost, "/healthz", "GET, HEAD"},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(tc.method, d.ts.URL+tc.path, nil)
		resp, err := d.ts.Client().Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != tc.wantAllow {
			t.Fatalf("%s %s: Allow %q, want %q", tc.method, tc.path, got, tc.wantAllow)
		}
		if env := decodeEnvelope(t, resp); env.Error.Code != apiv1.CodeMethodNotAllowed {
			t.Fatalf("%s %s: code %q", tc.method, tc.path, env.Error.Code)
		}
	}
}

func TestResultsPending503(t *testing.T) {
	d := newTestDaemon(t, api.Config{RetryAfter: 3 * time.Second})
	for _, path := range []string{"/api/v1/results", "/results"} {
		resp, err := http.Get(d.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s: status %d, want 503", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Retry-After"); got != "3" {
			t.Fatalf("%s: Retry-After %q, want \"3\"", path, got)
		}
		if env := decodeEnvelope(t, resp); env.Error.Code != apiv1.CodeResultsPending {
			t.Fatalf("%s: code %q", path, env.Error.Code)
		}
	}
}

func TestCheckpointDisabled409(t *testing.T) {
	d := newTestDaemon(t, api.Config{})
	for _, path := range []string{"/api/v1/checkpoint", "/checkpoint"} {
		resp, err := http.Post(d.ts.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("%s: status %d, want 409", path, resp.StatusCode)
		}
		if env := decodeEnvelope(t, resp); env.Error.Code != apiv1.CodePersistenceDisabled {
			t.Fatalf("%s: code %q", path, env.Error.Code)
		}
	}
}

func TestLegacyEndpointsAnswer(t *testing.T) {
	d := newTestDaemon(t, api.Config{DefaultTopN: 3})
	d.ingestAll(t)
	d.finish(t)

	// /healthz keeps its historical plain body.
	resp, err := http.Get(d.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok\n" {
		t.Fatalf("/healthz body %q", body)
	}

	// /stats decodes into the wire stats.
	var st apiv1.Stats
	getJSON(t, d.ts.URL+"/stats", &st)
	if st.Analyzed != int64(d.u.Corpus.Len()) {
		t.Fatalf("/stats analyzed %d, want %d", st.Analyzed, d.u.Corpus.Len())
	}

	// /campaigns keeps the bare-array shape and the ?n= semantics.
	var views []apiv1.Campaign
	getJSON(t, d.ts.URL+"/campaigns", &views)
	if len(views) != 3 {
		t.Fatalf("/campaigns default: %d views, want top-3", len(views))
	}
	getJSON(t, d.ts.URL+"/campaigns?n=-5", &views)
	if len(views) != 3 {
		t.Fatalf("/campaigns?n=-5: %d views, want default 3", len(views))
	}
	var all []apiv1.Campaign
	getJSON(t, d.ts.URL+"/campaigns?n=0", &all)
	if len(all) <= 3 {
		t.Fatalf("/campaigns?n=0 returned %d views", len(all))
	}
	resp, err = http.Get(d.ts.URL + "/campaigns?n=zzz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/campaigns?n=zzz: status %d, want 400", resp.StatusCode)
	}
	decodeEnvelope(t, resp)

	// /results serves the summary after drain.
	var res apiv1.Results
	getJSON(t, d.ts.URL+"/results", &res)
	if res.Samples != d.u.Corpus.Len() {
		t.Fatalf("/results samples %d, want %d", res.Samples, d.u.Corpus.Len())
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("GET %s: Content-Type %q", url, ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func TestSampleValidation(t *testing.T) {
	d := newTestDaemon(t, api.Config{})

	post := func(ctype, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(d.ts.URL+"/api/v1/samples", ctype, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Malformed single JSON.
	resp := post("application/json", "{nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}
	decodeEnvelope(t, resp)

	// A sample with neither hash nor content.
	resp = post("application/json", `{"md5":"abc"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty sample: status %d", resp.StatusCode)
	}
	decodeEnvelope(t, resp)

	// A bad hash.
	resp = post("application/json", `{"sha256":"xyz"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad hash: status %d", resp.StatusCode)
	}
	decodeEnvelope(t, resp)

	// Bulk NDJSON with a malformed second line names the line and the
	// partially applied prefix.
	good := `{"content":"` + "aGVsbG8=" + `"}`
	resp = post("application/x-ndjson", good+"\n{nope\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad bulk line: status %d", resp.StatusCode)
	}
	env := decodeEnvelope(t, resp)
	if !strings.Contains(env.Error.Message, "line 2") || !strings.Contains(env.Error.Message, "1 samples already accepted") {
		t.Fatalf("bulk error message %q", env.Error.Message)
	}

	// An NDJSON body posted as application/json must be rejected, not
	// silently truncated to its first sample.
	resp = post("application/json", good+"\n"+good+"\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("multi-value JSON body: status %d, want 400", resp.StatusCode)
	}
	if env := decodeEnvelope(t, resp); !strings.Contains(env.Error.Message, "x-ndjson") {
		t.Fatalf("multi-value error message %q", env.Error.Message)
	}

	// Unknown endpoints use the envelope too.
	resp, err := http.Get(d.ts.URL + "/api/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: status %d", resp.StatusCode)
	}
	decodeEnvelope(t, resp)
}

func TestSamplesAfterFinish409(t *testing.T) {
	d := newTestDaemon(t, api.Config{})
	d.ingestAll(t)
	d.finish(t)
	resp, err := http.Post(d.ts.URL+"/api/v1/samples", "application/json",
		strings.NewReader(`{"content":"aGVsbG8="}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("submit after finish: status %d, want 409", resp.StatusCode)
	}
	if env := decodeEnvelope(t, resp); env.Error.Code != apiv1.CodeIngestClosed {
		t.Fatalf("code %q", env.Error.Code)
	}
}

func TestCampaignDetailAndPagination(t *testing.T) {
	d := newTestDaemon(t, api.Config{})
	d.ingestAll(t)
	d.finish(t)

	var page apiv1.CampaignPage
	getJSON(t, d.ts.URL+"/api/v1/campaigns", &page)
	if page.Total == 0 || len(page.Campaigns) != page.Total {
		t.Fatalf("default listing: total=%d len=%d", page.Total, len(page.Campaigns))
	}

	// Detail round-trip for the top campaign.
	top := page.Campaigns[0]
	var detail apiv1.CampaignDetail
	getJSON(t, d.ts.URL+"/api/v1/campaigns/"+strconv.Itoa(top.ID), &detail)
	if detail.ID != top.ID || detail.XMR != top.XMR {
		t.Fatalf("detail mismatch: %+v vs %+v", detail.Campaign, top)
	}
	if len(detail.SampleHashes) != top.Samples {
		t.Fatalf("detail sample hashes %d != summary count %d", len(detail.SampleHashes), top.Samples)
	}
	if detail.FirstSeen.IsZero() || detail.LastSeen.Before(detail.FirstSeen) {
		t.Fatalf("detail period broken: %v..%v", detail.FirstSeen, detail.LastSeen)
	}
	if top.XMR > 0 && detail.Payments == 0 {
		t.Fatalf("earning campaign without payment breakdown")
	}

	// Unknown and malformed ids.
	resp, _ := http.Get(d.ts.URL + "/api/v1/campaigns/999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d", resp.StatusCode)
	}
	if env := decodeEnvelope(t, resp); env.Error.Code != apiv1.CodeNotFound {
		t.Fatalf("code %q", env.Error.Code)
	}
	resp, _ = http.Get(d.ts.URL + "/api/v1/campaigns/abc")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id: status %d", resp.StatusCode)
	}
	decodeEnvelope(t, resp)

	// Bad query parameters.
	for _, q := range []string{"limit=-1", "offset=-2", "limit=x", "min_xmr=abc", "min_xmr=-1"} {
		resp, _ := http.Get(d.ts.URL + "/api/v1/campaigns?" + q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("?%s: status %d, want 400", q, resp.StatusCode)
		}
		decodeEnvelope(t, resp)
	}
}

func TestEventsSSE(t *testing.T) {
	d := newTestDaemon(t, api.Config{})

	req, _ := http.NewRequest(http.MethodGet, d.ts.URL+"/api/v1/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := d.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("Content-Type %q", ct)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		d.ingestAll(t)
		d.finish(t)
	}()

	// The SSE frames must carry event names and JSON-decodable data lines,
	// ending with the drained event.
	sawKept, sawDrained := false, false
	sc := newLineScanner(resp.Body)
	var lastEvent string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			lastEvent = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev apiv1.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Errorf("decode SSE data: %v", err)
				return
			}
			if ev.Type != lastEvent {
				t.Errorf("event name %q != payload type %q", lastEvent, ev.Type)
				return
			}
			switch ev.Type {
			case apiv1.EventSampleKept:
				sawKept = true
			case apiv1.EventDrained:
				sawDrained = true
			}
		}
		if sawDrained {
			break
		}
	}
	<-done
	if !sawKept || !sawDrained {
		t.Fatalf("sawKept=%v sawDrained=%v", sawKept, sawDrained)
	}
}

// TestEventsHEAD checks a HEAD probe of the stream endpoint answers
// immediately instead of hanging on a never-ending subscription.
func TestEventsHEAD(t *testing.T) {
	d := newTestDaemon(t, api.Config{})
	resp, err := http.Head(d.ts.URL + "/api/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Fatalf("Content-Type %q", ct)
	}
}

func TestPanicRecovery(t *testing.T) {
	// A server with no engine panics in the stats handler; the middleware
	// must convert that into a logged 500 envelope.
	srv := api.New(api.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if env := decodeEnvelope(t, resp); env.Error.Code != apiv1.CodeInternal {
		t.Fatalf("code %q", env.Error.Code)
	}
}

func newLineScanner(r io.Reader) *lineScanner { return &lineScanner{r: r} }

// lineScanner is a minimal line reader that does not buffer past the current
// line, so it can follow a live SSE stream.
type lineScanner struct {
	r    io.Reader
	line []byte
	err  error
}

func (s *lineScanner) Scan() bool {
	if s.err != nil {
		return false
	}
	s.line = s.line[:0]
	var one [1]byte
	for {
		n, err := s.r.Read(one[:])
		if n > 0 {
			if one[0] == '\n' {
				return true
			}
			s.line = append(s.line, one[0])
		}
		if err != nil {
			s.err = err
			return len(s.line) > 0
		}
	}
}

func (s *lineScanner) Text() string { return string(s.line) }

// TestRequestIDValidation: client-supplied correlation IDs are echoed only
// when drawn from the safe charset; anything else (injection attempts, over
// length) is replaced with a server-minted ID.
func TestRequestIDValidation(t *testing.T) {
	srv := api.New(api.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	send := func(id string) string {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set(api.RequestIDHeader, id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.Header.Get(api.RequestIDHeader)
	}

	if got := send("trace-41.A_z"); got != "trace-41.A_z" {
		t.Fatalf("valid ID not echoed: got %q", got)
	}
	for _, bad := range []string{
		`evil"id`, "sp ace", "semi;colon", "curly{}", strings.Repeat("a", 129),
	} {
		if got := send(bad); got == bad || got == "" {
			t.Fatalf("unsafe ID %q echoed as %q, want server-minted replacement", bad, got)
		}
	}
}

// TestPanicKeepsInflightGauge: a handler panic must still decrement the
// inflight gauge and record the request (recoverPanics wraps outside the
// instrumentation, so only a deferred decrement survives the unwind).
func TestPanicKeepsInflightGauge(t *testing.T) {
	reg := obs.NewRegistry()
	// No engine: /api/v1/stats panics on the nil engine, recovered to a 500.
	srv := api.New(api.Config{Metrics: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/api/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("status %d, want 500", resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "\napi_inflight_requests 0\n") {
		t.Fatalf("inflight gauge leaked after panics:\n%s", text)
	}
	want := `api_requests_total{method="GET",route="/api/v1/stats",status="500"} 3`
	if !strings.Contains(text, want) {
		t.Fatalf("panicked requests not counted (want %q):\n%s", want, text)
	}
}
