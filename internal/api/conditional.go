package api

import (
	"encoding/base64"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"cryptomining/internal/obs"
)

// etagForEpoch formats the strong entity tag of a snapshot-backed response:
// the view epoch increases by exactly one per publication, so equal tags
// imply byte-identical representations of the same URL.
func etagForEpoch(epoch uint64) string {
	return fmt.Sprintf("%q", "v"+strconv.FormatUint(epoch, 10))
}

// etagForWindow is etagForEpoch for window-resolved timeseries responses:
// the resolved lower bucket bound is folded in so a sliding window
// revalidates (same epoch, new window start -> new tag).
func etagForWindow(epoch uint64, from int64) string {
	return fmt.Sprintf("%q", "v"+strconv.FormatUint(epoch, 10)+"."+strconv.FormatInt(from, 10))
}

// notModified implements conditional revalidation for one snapshot-backed
// response. It always sets the ETag header; when the request carries
// If-None-Match and a candidate matches, it answers 304 Not Modified (no
// body) and reports true so the handler returns without building the
// representation. Comparison is the weak form of RFC 9110 §8.8.3.2 — a W/
// prefix on the client's candidate is ignored — which is safe here because
// equal tags really do mean byte-identical bodies.
func (s *Server) notModified(w http.ResponseWriter, r *http.Request, etag string) bool {
	w.Header().Set("ETag", etag)
	inm := r.Header.Get("If-None-Match")
	if inm == "" {
		return false
	}
	match := strings.TrimSpace(inm) == "*"
	if !match {
		for _, cand := range strings.Split(inm, ",") {
			cand = strings.TrimPrefix(strings.TrimSpace(cand), "W/")
			if cand == etag {
				match = true
				break
			}
		}
	}
	if s.met != nil {
		result := "miss"
		if match {
			result = "hit"
		}
		s.met.reg.Counter("api_requests_conditional_total",
			"Conditional (If-None-Match) requests by revalidation result.",
			obs.L("result", result)).Inc()
	}
	if match {
		w.WriteHeader(http.StatusNotModified)
	}
	return match
}

// Cursors are opaque base64url tokens encoding the snapshot epoch they were
// minted at plus the next window offset. The epoch is informational (the
// listing is re-cut against the current snapshot on every page — campaigns
// can shift between epochs, exactly as they could under plain offsets), but
// it makes skew observable to clients that care.

// encodeCursor mints the pagination cursor for the given snapshot position.
func encodeCursor(epoch uint64, offset int) string {
	raw := "v" + strconv.FormatUint(epoch, 10) + ":" + strconv.Itoa(offset)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

// decodeCursor parses a client-supplied cursor back into its offset.
func decodeCursor(s string) (int, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return 0, fmt.Errorf("invalid cursor %q: not a cursor from this API", s)
	}
	rest, ok := strings.CutPrefix(string(raw), "v")
	if !ok {
		return 0, fmt.Errorf("invalid cursor %q: not a cursor from this API", s)
	}
	epochStr, offStr, ok := strings.Cut(rest, ":")
	if !ok {
		return 0, fmt.Errorf("invalid cursor %q: not a cursor from this API", s)
	}
	if _, err := strconv.ParseUint(epochStr, 10, 64); err != nil {
		return 0, fmt.Errorf("invalid cursor %q: not a cursor from this API", s)
	}
	off, err := strconv.Atoi(offStr)
	if err != nil || off < 0 {
		return 0, fmt.Errorf("invalid cursor %q: not a cursor from this API", s)
	}
	return off, nil
}
