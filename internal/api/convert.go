package api

import (
	"errors"
	"fmt"
	"sort"

	"cryptomining/internal/model"
	"cryptomining/internal/stream"
	"cryptomining/internal/timeseries"
	"cryptomining/pkg/apiv1"
)

// StatsToWire converts the engine's live counters to the wire shape.
func StatsToWire(st stream.Stats) apiv1.Stats {
	out := apiv1.Stats{
		UptimeNanos:        int64(st.Uptime),
		Shards:             st.Shards,
		Submitted:          st.Submitted,
		Analyzed:           st.Analyzed,
		Duplicates:         st.Duplicates,
		SamplesPerSec:      st.SamplesPerSec,
		Kept:               st.Kept,
		Miners:             st.Miners,
		IllicitWalletFlips: st.IllicitWalletFlips,
		Campaigns:          st.Campaigns,
		Wallets:            st.Wallets,
		TotalXMR:           st.TotalXMR,
		TotalUSD:           st.TotalUSD,
		Backpressure:       st.Backpressure,
	}
	for _, sg := range st.Stages {
		out.Stages = append(out.Stages, apiv1.StageStats{
			Name:      sg.Name,
			Processed: sg.Processed,
			AvgNanos:  int64(sg.AvgNanos),
		})
	}
	return out
}

// CampaignToWire converts one live campaign summary to the wire shape.
func CampaignToWire(v stream.CampaignView) apiv1.Campaign {
	return apiv1.Campaign{
		ID:          v.ID,
		Samples:     v.Samples,
		Ancillaries: v.Ancillaries,
		Wallets:     v.Wallets,
		Pools:       v.Pools,
		XMR:         v.XMR,
		USD:         v.USD,
		Active:      v.Active,
	}
}

// CampaignsToWire converts a slice of live campaign summaries.
func CampaignsToWire(views []stream.CampaignView) []apiv1.Campaign {
	out := make([]apiv1.Campaign, 0, len(views))
	for _, v := range views {
		out = append(out, CampaignToWire(v))
	}
	return out
}

// DetailToWire converts one full campaign view to the wire shape.
func DetailToWire(d stream.CampaignDetail) apiv1.CampaignDetail {
	return apiv1.CampaignDetail{
		Campaign:        CampaignToWire(d.CampaignView),
		SampleHashes:    d.SampleHashes,
		AncillaryHashes: d.AncillaryHashes,
		Currencies:      d.Currencies,
		CNAMEs:          d.CNAMEs,
		Proxies:         d.Proxies,
		HostingDomains:  d.HostingDomains,
		PPIBotnets:      d.PPIBotnets,
		StockTools:      d.StockTools,
		KnownOperations: d.KnownOperations,
		UsesObfuscation: d.UsesObfuscation,
		FirstSeen:       d.FirstSeen,
		LastSeen:        d.LastSeen,
		Payments:        d.Payments,
		PoolsUsed:       d.PoolsUsed,
		FirstPayment:    d.FirstPayment,
		LastPayment:     d.LastPayment,
	}
}

// ResultsToWire condenses final results into the wire summary. The field
// selection matches the historical /results body exactly.
func ResultsToWire(res *stream.Results) apiv1.Results {
	return apiv1.Results{
		Samples:          len(res.Outcomes),
		Kept:             len(res.Records),
		Miners:           len(res.MinerRecords),
		Campaigns:        len(res.Campaigns),
		Identifiers:      res.Identifiers,
		TotalXMR:         res.TotalXMR,
		TotalUSD:         res.TotalUSD,
		CirculationShare: res.CirculationShare,
	}
}

// ViewsFromResults builds the campaign listing a live engine would serve
// after absorbing exactly the given results: summary views in
// earnings-descending order, ties broken by the deterministic partition
// order. Used by smoke tooling to diff API output against a batch run.
func ViewsFromResults(res *stream.Results) []apiv1.Campaign {
	views := make([]apiv1.Campaign, 0, len(res.Campaigns))
	for _, c := range res.Campaigns {
		views = append(views, apiv1.Campaign{
			ID:          c.ID,
			Samples:     len(c.Samples),
			Ancillaries: len(c.Ancillaries),
			Wallets:     c.Wallets,
			Pools:       c.Pools,
			XMR:         c.XMRMined,
			USD:         c.USDEarned,
			Active:      c.Active,
		})
	}
	sort.SliceStable(views, func(i, j int) bool { return views[i].XMR > views[j].XMR })
	return views
}

// EventToWire converts one engine event to the wire shape.
func EventToWire(ev stream.Event) apiv1.Event {
	return apiv1.Event{
		Seq:        ev.Seq,
		Type:       string(ev.Type),
		SHA256:     ev.SHA256,
		SampleType: ev.SampleType,
		Wallet:     ev.Wallet,
		Pool:       ev.Pool,
		Campaigns:  ev.Campaigns,
		Kept:       ev.Kept,
		XMR:        ev.XMR,
		USD:        ev.USD,
		Error:      ev.Error,
	}
}

// bucketsToWire converts one series' buckets to the wire shape. The result
// is never nil, so every series serializes with an explicit buckets array.
func bucketsToWire(bs []timeseries.Bucket) []apiv1.TimeseriesBucket {
	out := make([]apiv1.TimeseriesBucket, 0, len(bs))
	for _, b := range bs {
		out = append(out, apiv1.TimeseriesBucket{
			Start: b.Start,
			Count: b.Count,
			Sum:   b.Sum,
			Min:   b.Min,
			Max:   b.Max,
			Last:  b.Last,
		})
	}
	return out
}

func seriesToWire(series []stream.MetricSeries) []apiv1.TimeseriesSeries {
	out := make([]apiv1.TimeseriesSeries, 0, len(series))
	for _, s := range series {
		out = append(out, apiv1.TimeseriesSeries{Name: s.Name, Buckets: bucketsToWire(s.Buckets)})
	}
	return out
}

// TimeseriesToWire converts an ecosystem timeseries snapshot.
func TimeseriesToWire(snap stream.TimeseriesSnapshot) apiv1.Timeseries {
	out := apiv1.Timeseries{
		ResolutionSeconds: snap.ResolutionSeconds,
		Series:            seriesToWire(snap.Series),
	}
	for _, y := range snap.Years {
		out.Years = append(out.Years, apiv1.YearStats{
			Year:            y.Year,
			Samples:         y.Samples,
			NewCampaigns:    y.NewCampaigns,
			ActiveCampaigns: y.ActiveCampaigns,
		})
	}
	return out
}

// TimelineToWire converts one campaign's timeline snapshot.
func TimelineToWire(id int, snap stream.TimeseriesSnapshot) apiv1.CampaignTimeline {
	return apiv1.CampaignTimeline{
		ID:                id,
		ResolutionSeconds: snap.ResolutionSeconds,
		Series:            seriesToWire(snap.Series),
	}
}

// SampleToWire converts a model sample to its ingestion request shape.
func SampleToWire(s *model.Sample) apiv1.Sample {
	out := apiv1.Sample{
		SHA256:           s.SHA256,
		MD5:              s.MD5,
		Content:          s.Content,
		FirstSeen:        s.FirstSeen,
		ITWURLs:          s.ITWURLs,
		Parents:          s.Parents,
		ContactedDomains: s.ContactedDomains,
		DroppedHashes:    s.DroppedHashes,
	}
	for _, src := range s.Sources {
		out.Sources = append(out.Sources, string(src))
	}
	return out
}

// SampleFromWire validates an ingestion request and converts it to the model
// sample the engine consumes.
func SampleFromWire(ws apiv1.Sample) (*model.Sample, error) {
	if ws.SHA256 == "" && len(ws.Content) == 0 {
		return nil, errors.New("sample needs a sha256 or content")
	}
	if ws.SHA256 != "" {
		if len(ws.SHA256) != 64 {
			return nil, fmt.Errorf("sha256 %q: want 64 hex characters", ws.SHA256)
		}
		for _, c := range ws.SHA256 {
			if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
				return nil, fmt.Errorf("sha256 %q: not hex", ws.SHA256)
			}
		}
	}
	s := &model.Sample{
		SHA256:           ws.SHA256,
		MD5:              ws.MD5,
		Content:          ws.Content,
		FirstSeen:        ws.FirstSeen,
		ITWURLs:          ws.ITWURLs,
		Parents:          ws.Parents,
		ContactedDomains: ws.ContactedDomains,
		DroppedHashes:    ws.DroppedHashes,
	}
	for _, src := range ws.Sources {
		s.Sources = append(s.Sources, model.Source(src))
	}
	return s, nil
}
