package api

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"cryptomining/internal/scenario"
	"cryptomining/pkg/apiv1"
)

// maxScenarioBody bounds a scenario document submission; documents are small
// typed JSON, never bulk data.
const maxScenarioBody = 1 << 20

func (s *Server) scenarios(w http.ResponseWriter) *scenario.Manager {
	if s.cfg.Scenarios == nil {
		s.error(w, http.StatusConflict, apiv1.CodeScenarioDisabled,
			"what-if scenarios disabled (daemon runs without a scenario manager)")
		return nil
	}
	return s.cfg.Scenarios
}

// handleScenarios serves POST /api/v1/scenarios (submit a what-if document,
// answering 202 with the job to poll) and GET /api/v1/scenarios (list
// retained jobs, newest first).
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	m := s.scenarios(w)
	if m == nil {
		return
	}
	if r.Method == http.MethodGet {
		jobs := m.Jobs()
		page := apiv1.ScenarioStatusPage{Scenarios: make([]apiv1.ScenarioStatus, 0, len(jobs))}
		for _, j := range jobs {
			page.Scenarios = append(page.Scenarios, scenarioStatusToWire(j))
		}
		s.writeJSON(w, http.StatusOK, page)
		return
	}
	var req apiv1.ScenarioRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, maxScenarioBody+1))
	if err != nil {
		s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest, "read body: "+err.Error())
		return
	}
	if len(body) > maxScenarioBody {
		s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest, "scenario document exceeds 1 MiB")
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest, "decode scenario document: "+err.Error())
		return
	}
	id, err := m.Submit(scenarioDocFromWire(req))
	switch {
	case errors.Is(err, scenario.ErrCapacity):
		s.error(w, http.StatusServiceUnavailable, apiv1.CodeScenarioCapacity, err.Error())
		return
	case err != nil:
		s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest, err.Error())
		return
	}
	s.writeJSON(w, http.StatusAccepted, apiv1.ScenarioSubmitted{ID: id, State: string(scenario.StatePending)})
}

// handleScenarioStatus serves GET /api/v1/scenarios/{id}.
func (s *Server) handleScenarioStatus(w http.ResponseWriter, r *http.Request) {
	m := s.scenarios(w)
	if m == nil {
		return
	}
	job, err := m.Job(r.PathValue("id"))
	if err != nil {
		s.error(w, http.StatusNotFound, apiv1.CodeNotFound, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, scenarioStatusToWire(job))
}

// handleScenarioDelta serves GET /api/v1/scenarios/{id}/delta: the full
// baseline-vs-scenario comparison of a completed job. A job still pending or
// running answers 503 with Retry-After, mirroring the pending-results
// contract.
func (s *Server) handleScenarioDelta(w http.ResponseWriter, r *http.Request) {
	m := s.scenarios(w)
	if m == nil {
		return
	}
	job, err := m.Job(r.PathValue("id"))
	if err != nil {
		s.error(w, http.StatusNotFound, apiv1.CodeNotFound, err.Error())
		return
	}
	switch job.State {
	case scenario.StateDone:
		s.writeJSON(w, http.StatusOK, scenarioDeltaToWire(job))
	case scenario.StateFailed:
		s.error(w, http.StatusConflict, apiv1.CodeInternal, "scenario failed: "+job.Error)
	default:
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds())))
		s.error(w, http.StatusServiceUnavailable, apiv1.CodeScenarioPending,
			"scenario "+job.ID+" is "+string(job.State))
	}
}

// scenarioDocFromWire converts a wire request into the engine's document
// type. Unknown kinds survive the conversion and are rejected by Validate,
// so the error message names the offending kind.
func scenarioDocFromWire(req apiv1.ScenarioRequest) scenario.Document {
	doc := scenario.Document{Name: req.Name, Description: req.Description}
	for _, iv := range req.Interventions {
		conv := scenario.Intervention{
			Kind:                scenario.Kind(iv.Kind),
			At:                  iv.At,
			Wallets:             iv.Wallets,
			Pools:               iv.Pools,
			Families:            iv.Families,
			MaintainedCampaigns: iv.MaintainedCampaigns,
		}
		if len(iv.Cooperation) > 0 {
			conv.Cooperation = make(map[string]scenario.Cooperation, len(iv.Cooperation))
			for name, c := range iv.Cooperation {
				conv.Cooperation[name] = scenario.Cooperation{
					Cooperative: c.Cooperative,
					MinIPsToBan: c.MinIPsToBan,
				}
			}
		}
		doc.Interventions = append(doc.Interventions, conv)
	}
	return doc
}

func scenarioStatusToWire(j scenario.Job) apiv1.ScenarioStatus {
	return apiv1.ScenarioStatus{
		ID:          j.ID,
		Name:        j.Doc.Name,
		State:       string(j.State),
		SubmittedAt: j.SubmittedAt,
		StartedAt:   j.StartedAt,
		FinishedAt:  j.FinishedAt,
		Error:       j.Error,
	}
}

func scenarioDeltaToWire(j scenario.Job) apiv1.ScenarioDelta {
	res := j.Result
	out := apiv1.ScenarioDelta{
		ID:          j.ID,
		Name:        res.Doc.Name,
		Description: res.Doc.Description,
		ForkedAt:    res.ForkedAt,
		Baseline:    scenarioTotalsToWire(res.Baseline),
		Scenario:    scenarioTotalsToWire(res.Scenario),
	}
	for _, cd := range res.Campaigns {
		out.Campaigns = append(out.Campaigns, apiv1.ScenarioCampaignDelta{
			ID:          cd.ID,
			BaselineXMR: cd.BaselineXMR,
			ScenarioXMR: cd.ScenarioXMR,
			DeltaXMR:    cd.DeltaXMR,
			BaselineUSD: cd.BaselineUSD,
			ScenarioUSD: cd.ScenarioUSD,
			DeltaUSD:    cd.DeltaUSD,
			Timeline:    scenarioPointsToWire(cd.Timeline),
		})
	}
	for _, sd := range res.Ecosystem {
		out.Ecosystem = append(out.Ecosystem, apiv1.ScenarioSeriesDelta{
			Metric: sd.Metric,
			Points: scenarioPointsToWire(sd.Points),
		})
	}
	for _, a := range res.Applied {
		wa := apiv1.ScenarioApplied{
			Kind:            string(a.Kind),
			At:              a.At,
			ReplayInstant:   a.ReplayInstant,
			AffectedWallets: a.AffectedWallets,
			RemovedXMR:      a.RemovedXMR,
			CeasedCampaigns: a.CeasedCampaigns,
		}
		for _, o := range a.Outcomes {
			wa.Outcomes = append(wa.Outcomes, apiv1.ScenarioReportOutcome{
				Pool:   o.Pool,
				Wallet: o.Wallet,
				Banned: o.Banned,
				Reason: o.Reason,
			})
		}
		out.Applied = append(out.Applied, wa)
	}
	return out
}

func scenarioTotalsToWire(t scenario.Totals) apiv1.ScenarioTotals {
	return apiv1.ScenarioTotals{
		XMR: t.XMR, USD: t.USD, Campaigns: t.Campaigns, Wallets: t.Wallets, Kept: t.Kept,
	}
}

func scenarioPointsToWire(pts []scenario.BucketDelta) []apiv1.ScenarioBucketDelta {
	if len(pts) == 0 {
		return nil
	}
	out := make([]apiv1.ScenarioBucketDelta, 0, len(pts))
	for _, p := range pts {
		out = append(out, apiv1.ScenarioBucketDelta{
			Start: p.Start, Baseline: p.Baseline, Scenario: p.Scenario, Delta: p.Delta,
		})
	}
	return out
}
