package api

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"cryptomining/pkg/apiv1"
)

// methods guards a handler against unsupported HTTP methods: anything not
// listed answers 405 with an Allow header and the uniform error envelope.
// HEAD rides along wherever GET is allowed.
func (s *Server) methods(h http.Handler, allow ...string) http.Handler {
	allowHeader := strings.Join(allow, ", ")
	for _, m := range allow {
		if m == http.MethodGet {
			allowHeader += ", " + http.MethodHead
			break
		}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for _, m := range allow {
			if r.Method == m || (m == http.MethodGet && r.Method == http.MethodHead) {
				h.ServeHTTP(w, r)
				return
			}
		}
		w.Header().Set("Allow", allowHeader)
		s.error(w, http.StatusMethodNotAllowed, apiv1.CodeMethodNotAllowed,
			fmt.Sprintf("%s does not allow %s (allowed: %s)", r.URL.Path, r.Method, allowHeader))
	})
}

// statusWriter captures the response status and size for the request log. It
// forwards Flush so streaming handlers keep working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logRequests emits one line per request: method, path, status, bytes,
// duration.
func (s *Server) logRequests(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.log.Printf("api: %s %s -> %d (%dB, %s)",
			r.Method, r.URL.RequestURI(), sw.status, sw.bytes, time.Since(start).Round(time.Microsecond))
	})
}

// recoverPanics converts a handler panic into a logged 500 envelope instead
// of tearing down the connection (http.ErrAbortHandler keeps its meaning).
func (s *Server) recoverPanics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil || p == http.ErrAbortHandler {
				if p != nil {
					panic(p)
				}
				return
			}
			s.log.Printf("api: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
			// Best effort: if the handler already wrote a body this will be
			// ignored or garbled, but the connection survives either way.
			s.error(w, http.StatusInternalServerError, apiv1.CodeInternal, "internal error")
		}()
		h.ServeHTTP(w, r)
	})
}
