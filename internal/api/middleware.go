package api

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"

	"cryptomining/internal/obs"
	"cryptomining/pkg/apiv1"
)

// RequestIDHeader carries the per-request correlation ID: assigned by the
// server (or honored from the client when already present), echoed on every
// response, and repeated in error envelopes and request logs.
const RequestIDHeader = "X-Request-ID"

// requestIDKey is the context key the assigned request ID travels under.
type requestIDKey struct{}

// RequestIDFromContext returns the request ID assigned to the request being
// served ("" outside a request).
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// requestIDSource mints process-unique request IDs: a random per-process
// prefix plus an atomic counter, so IDs are unique across restarts without
// per-request entropy reads.
type requestIDSource struct {
	prefix string
	n      atomic.Uint64
}

func newRequestIDSource() *requestIDSource {
	var b [4]byte
	_, _ = rand.Read(b[:])
	return &requestIDSource{prefix: hex.EncodeToString(b[:])}
}

func (g *requestIDSource) next() string {
	return fmt.Sprintf("%s-%06d", g.prefix, g.n.Add(1))
}

// validRequestID reports whether a client-supplied correlation ID is safe to
// echo into headers, error envelopes and logs: 1..128 bytes drawn from
// [A-Za-z0-9._-]. Anything else is replaced with a server-minted ID so
// clients cannot inject arbitrary content into correlation streams.
func validRequestID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// requestIDs assigns each request its correlation ID: an incoming
// X-Request-ID is honored when it passes validRequestID (so a client can
// stitch its own traces through), otherwise a fresh one is minted. The ID is
// set on the response header BEFORE the handler runs — which is how the error
// envelope writer can read it back without threading it through every handler
// signature — and stored in the request context for handlers that want it.
func (s *Server) requestIDs(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if !validRequestID(id) {
			id = s.reqID.next()
		}
		w.Header().Set(RequestIDHeader, id)
		h.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
	})
}

// serverMetrics is the server's registered instrument set.
type serverMetrics struct {
	reg      *obs.Registry
	inflight *obs.Gauge
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		reg:      reg,
		inflight: reg.Gauge("api_inflight_requests", "Requests currently being served."),
	}
}

// instrument wraps one route with its request counter, latency histogram and
// response-size histogram, all labeled by the route pattern (so path
// parameters do not explode the label space). No-op without a registry.
func (s *Server) instrument(pattern string, h http.Handler) http.Handler {
	if s.met == nil {
		return h
	}
	lat := s.met.reg.Histogram("api_request_duration_seconds",
		"Wall-clock request latency by route.", obs.LatencyBuckets, obs.L("route", pattern))
	size := s.met.reg.Histogram("api_response_bytes",
		"Response body size by route.", obs.SizeBuckets, obs.L("route", pattern))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		s.met.inflight.Add(1)
		start := time.Now() //cryptolint:allow directclock request latency telemetry only
		completed := false
		// Deferred so the gauge and observations survive handler panics:
		// recoverPanics wraps OUTSIDE instrument, so without the defer a
		// panicking handler would leak an inflight increment forever.
		defer func() {
			s.met.inflight.Add(-1)
			if sw.status == 0 {
				if completed {
					sw.status = http.StatusOK
				} else {
					// Panicked before writing anything; recoverPanics will
					// answer 500 (or drop the connection on ErrAbortHandler).
					sw.status = http.StatusInternalServerError
				}
			}
			lat.Observe(time.Since(start).Seconds()) //cryptolint:allow directclock request latency telemetry only
			size.Observe(float64(sw.bytes))
			s.met.reg.Counter("api_requests_total", "Requests served by route, method and status.",
				obs.L("route", pattern), obs.L("method", r.Method),
				obs.L("status", fmt.Sprint(sw.status))).Inc()
		}()
		h.ServeHTTP(sw, r)
		completed = true
	})
}

// methods guards a handler against unsupported HTTP methods: anything not
// listed answers 405 with an Allow header and the uniform error envelope.
// HEAD rides along wherever GET is allowed.
func (s *Server) methods(h http.Handler, allow ...string) http.Handler {
	allowHeader := strings.Join(allow, ", ")
	for _, m := range allow {
		if m == http.MethodGet {
			allowHeader += ", " + http.MethodHead
			break
		}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for _, m := range allow {
			if r.Method == m || (m == http.MethodGet && r.Method == http.MethodHead) {
				h.ServeHTTP(w, r)
				return
			}
		}
		w.Header().Set("Allow", allowHeader)
		s.error(w, http.StatusMethodNotAllowed, apiv1.CodeMethodNotAllowed,
			fmt.Sprintf("%s does not allow %s (allowed: %s)", r.URL.Path, r.Method, allowHeader))
	})
}

// statusWriter captures the response status and size for the request log. It
// forwards Flush so streaming handlers keep working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logRequests emits one structured line per request: method, path, status,
// bytes, duration and the correlation ID.
func (s *Server) logRequests(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now() //cryptolint:allow directclock request latency telemetry only
		h.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.RequestURI(),
			"status", sw.status,
			"bytes", sw.bytes,
			"duration", time.Since(start).Round(time.Microsecond), //cryptolint:allow directclock request log timing only
			"request_id", RequestIDFromContext(r.Context()))
	})
}

// recoverPanics converts a handler panic into a logged 500 envelope instead
// of tearing down the connection (http.ErrAbortHandler keeps its meaning).
func (s *Server) recoverPanics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil || p == http.ErrAbortHandler {
				if p != nil {
					panic(p)
				}
				return
			}
			s.log.Error("panic serving request",
				"method", r.Method, "path", r.URL.Path,
				"request_id", RequestIDFromContext(r.Context()),
				"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
			// Best effort: if the handler already wrote a body this will be
			// ignored or garbled, but the connection survives either way.
			s.error(w, http.StatusInternalServerError, apiv1.CodeInternal, "internal error")
		}()
		h.ServeHTTP(w, r)
	})
}
