package api

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRateLimiterHardCap floods the limiter with far more distinct client
// addresses than maxRateClients, concurrently, with a clock that never
// advances (so pruning can free nothing). The client table must never exceed
// the cap: before the eviction fallback, a prune that freed nothing still
// inserted, and an address-spraying client could grow the map without bound.
func TestRateLimiterHardCap(t *testing.T) {
	rl := newRateLimiter(1, 1)
	base := time.Unix(1_700_000_000, 0)

	// Enough distinct addresses to overshoot the cap by a few thousand; each
	// at-cap insert pays two O(cap) scans, so the overshoot is kept modest.
	const workers = 8
	const perWorker = maxRateClients/workers + 512
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rl.allow(fmt.Sprintf("10.%d.%d.%d", w, i/256, i%256), base)
			}
		}(w)
	}
	wg.Wait()

	rl.mu.Lock()
	n := len(rl.clients)
	rl.mu.Unlock()
	if n > maxRateClients {
		t.Fatalf("client table grew to %d, cap is %d", n, maxRateClients)
	}
	if n == 0 {
		t.Fatal("client table empty after churn")
	}
}

// TestRateLimiterPrunePreferred pins the two cap behaviours apart: with a
// frozen clock pruning frees nothing and eviction admits the newcomer by
// dropping exactly one bucket; once the clock passes a full refill interval,
// pruning reclaims the idle mass wholesale.
func TestRateLimiterPrunePreferred(t *testing.T) {
	rl := newRateLimiter(1, 1)
	now := time.Unix(1_700_000_000, 0)
	for i := 0; i < maxRateClients; i++ {
		rl.allow(fmt.Sprintf("old-%d", i), now)
	}

	rl.allow("evict-path", now)
	rl.mu.Lock()
	n, admitted := len(rl.clients), rl.clients["evict-path"] != nil
	rl.mu.Unlock()
	if n != maxRateClients {
		t.Fatalf("frozen-clock insert at cap left %d clients, want exactly %d", n, maxRateClients)
	}
	if !admitted {
		t.Fatal("evict-path client was not admitted at the cap")
	}

	// An hour later every bucket has fully refilled: prune, not evict.
	rl.allow("prune-path", now.Add(time.Hour))
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if len(rl.clients) != 1 {
		t.Fatalf("after refill interval, prune kept %d clients, want 1", len(rl.clients))
	}
	if rl.clients["prune-path"] == nil {
		t.Fatal("prune-path client was not admitted")
	}
}

// TestRateLimiterChurnUnderConcurrentClock exercises allow with interleaved
// fake-clock advances under the race detector: churn from many goroutines,
// some re-using addresses (refill path) and some always fresh (insert/evict
// path), must keep the cap and stay race-free.
func TestRateLimiterChurnUnderConcurrentClock(t *testing.T) {
	rl := newRateLimiter(100, 10)
	var tick atomic.Int64
	base := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return base.Add(time.Duration(tick.Add(1)) * time.Millisecond) }

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4*maxRateClients/workers; i++ {
				if i%2 == 0 {
					rl.allow(fmt.Sprintf("stable-%d", w), clock())
				} else {
					rl.allow(fmt.Sprintf("churn-%d-%d", w, i), clock())
				}
			}
		}(w)
	}
	wg.Wait()

	rl.mu.Lock()
	n := len(rl.clients)
	rl.mu.Unlock()
	if n > maxRateClients {
		t.Fatalf("client table grew to %d, cap is %d", n, maxRateClients)
	}
	// The stable clients were touched most recently and repeatedly; at least
	// one must have survived the churn.
	rl.mu.Lock()
	defer rl.mu.Unlock()
	found := false
	for w := 0; w < workers; w++ {
		if rl.clients[fmt.Sprintf("stable-%d", w)] != nil {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("every stable client was evicted despite constant activity")
	}
}
