package api

import (
	"encoding/json"
	"fmt"
	"net/http"

	"cryptomining/pkg/apiv1"
)

// writeJSON writes v as indented JSON with an explicit charset. Encode
// failures (marshalling errors or a client gone mid-write) are logged
// instead of silently discarded.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Warn("encode response failed", "type", fmt.Sprintf("%T", v), "err", err)
	}
}

// error writes the uniform error envelope, echoing the request's correlation
// ID. The ID is read back from the response header — the request-ID
// middleware sets it before any handler runs — so error sites keep their
// (w, status, code, message) shape.
func (s *Server) error(w http.ResponseWriter, status int, code, message string) {
	s.writeJSON(w, status, apiv1.ErrorEnvelope{Error: apiv1.Error{
		Code:      code,
		Message:   message,
		RequestID: w.Header().Get(RequestIDHeader),
	}})
}
