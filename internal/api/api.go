// Package api is the versioned HTTP service layer of the streaming daemon:
// a typed REST+streaming surface under /api/v1 over the ingestion engine,
// plus thin aliases for the historical unversioned endpoints.
//
//	GET  /api/v1/stats          live engine counters
//	GET  /api/v1/campaigns      paginated campaign listing (limit/offset,
//	                            filters: pool, wallet, min_xmr)
//	GET  /api/v1/campaigns/{id} full campaign detail
//	GET  /api/v1/campaigns/{id}/timeline
//	                            the campaign's longitudinal series: sample
//	                            arrivals, wallet sightings, priced-XMR
//	                            deltas (params: metric, resolution, window)
//	GET  /api/v1/timeseries     ecosystem longitudinal series (samples,
//	                            kept, campaigns, xmr, pool:* shares) plus
//	                            the data-time yearly-evolution breakdown
//	                            (params: metric, resolution, window; 409
//	                            when the daemon runs with -no-series)
//	GET  /api/v1/results        final run summary (503 + Retry-After while
//	                            the replay is still in flight)
//	POST /api/v1/checkpoint     persist a snapshot now (409 when the daemon
//	                            runs without persistence)
//	POST /api/v1/samples        remote ingestion: one JSON sample, or bulk
//	                            NDJSON (one sample per line)
//	GET  /api/v1/events         live campaign-update event stream
//	                            (NDJSON, or SSE for text/event-stream)
//	GET  /api/v1/probe          wallet-probe crawl snapshot: queue depth,
//	                            per-pool rate/error counters, cache ages
//	                            (409 when the daemon runs without a prober)
//	POST /api/v1/probe/refresh  force re-probe: ?wallet=<id>, ?scope=stale
//	                            or ?scope=all
//	POST /api/v1/finish         drain the engine and seal final results
//	                            (409 when the daemon cannot force a drain)
//	POST /api/v1/scenarios      submit a what-if scenario document; answers
//	                            202 with the async job to poll (409 when the
//	                            daemon runs without a scenario manager)
//	GET  /api/v1/scenarios      list retained scenario jobs, newest first
//	GET  /api/v1/scenarios/{id} one scenario job's status
//	GET  /api/v1/scenarios/{id}/delta
//	                            the completed job's baseline-vs-scenario
//	                            comparison (503 + Retry-After while the
//	                            replay is still running)
//	GET  /api/v1/healthz        liveness probe
//
// Every response body is a typed pkg/apiv1 struct; every non-2xx response is
// the uniform envelope {"error":{"code","message"}}. Handlers are wired
// through shared middleware: request logging, panic recovery, and method
// guards that answer 405 with an Allow header; each individual sample
// submission is bounded by RequestTimeout (503 backpressure on expiry).
//
// Legacy aliases (/stats, /campaigns?n=, /results, /checkpoint, /healthz)
// keep their historical shapes but share the v1 internals — including the
// method guards and the 503+Retry-After pending-results behaviour.
//
// The read tier serves exclusively from the engine's published snapshot
// (stream.View): no GET acquires the collector mutex, the snapshot epoch is
// the strong ETag (If-None-Match revalidation answers 304), campaign pages
// paginate by opaque cursor (?cursor=, with ?offset= kept as a deprecated
// alias), and an optional per-client token bucket throttles reads (429 +
// Retry-After).
package api

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"cryptomining/internal/model"
	"cryptomining/internal/obs"
	"cryptomining/internal/probe"
	"cryptomining/internal/scenario"
	"cryptomining/internal/stream"
	"cryptomining/pkg/apiv1"
)

// Config wires a Server to the engine and the daemon's optional durability
// hooks.
type Config struct {
	// Engine serves the live surface (stats, campaigns, events).
	Engine *stream.Engine
	// Submit ingests one sample; defaults to Engine.Submit. Daemons running
	// with a WAL pass their write-ahead submit here.
	Submit func(context.Context, *model.Sample) error
	// Checkpoint persists a snapshot now; nil means persistence is disabled
	// and POST /checkpoint answers 409.
	Checkpoint func() (apiv1.Checkpoint, error)
	// Results returns the final results, or nil while the run is still in
	// flight (the results endpoints then answer 503 with Retry-After).
	Results func() *stream.Results
	// Finish drains the engine and finalizes the run on demand (POST
	// /api/v1/finish); nil answers 409 finish_unavailable. Daemons running in
	// pure service mode (-no-feed) wire this so clients can seal a run and
	// read /api/v1/results.
	Finish func(context.Context) (*stream.Results, error)
	// Probe serves the wallet-probe observability endpoints (GET
	// /api/v1/probe, POST /api/v1/probe/refresh); nil answers 409
	// probe_disabled.
	Probe *probe.Scheduler
	// Scenarios serves the what-if endpoints (POST/GET /api/v1/scenarios,
	// GET /api/v1/scenarios/{id}, GET /api/v1/scenarios/{id}/delta); nil
	// answers 409 scenario_disabled.
	Scenarios *scenario.Manager
	// DefaultTopN is the legacy /campaigns default page size (default 10).
	DefaultTopN int
	// RequestTimeout bounds each individual sample submission into the
	// engine (default 30s); expiry surfaces as 503 backpressure.
	RequestTimeout time.Duration
	// RetryAfter is the hint returned with pending results (default 1s).
	RetryAfter time.Duration
	// EventBuffer is the per-subscriber event channel capacity (default 1024).
	EventBuffer int
	// RateLimit, when positive, throttles GET/HEAD requests per client
	// address to this many requests per second (token bucket); excess
	// requests answer 429 with Retry-After. Zero disables throttling.
	RateLimit float64
	// RateBurst is the token-bucket depth per client (default: RateLimit
	// rounded up, minimum 1). Ignored when RateLimit is zero.
	RateBurst int
	// Logger receives request logs and encode failures, scoped
	// component=api. Nil keeps the server silent (tests, embedders).
	Logger *slog.Logger
	// Metrics, when set, makes the server maintain per-route request
	// counters, latency histograms, response-size histograms and an
	// in-flight gauge in the registry, and serve the registry's Prometheus
	// exposition at GET /metrics.
	Metrics *obs.Registry
}

// Server is the versioned API surface. Create with New, mount via Handler.
type Server struct {
	cfg     Config
	log     *slog.Logger
	met     *serverMetrics
	reqID   *requestIDSource
	limiter *rateLimiter
	handler http.Handler
}

// New builds a Server from the configuration, applying defaults.
func New(cfg Config) *Server {
	if cfg.Submit == nil && cfg.Engine != nil {
		cfg.Submit = cfg.Engine.Submit
	}
	if cfg.DefaultTopN <= 0 {
		cfg.DefaultTopN = 10
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 1024
	}
	s := &Server{cfg: cfg, log: obs.Component(cfg.Logger, "api"), reqID: newRequestIDSource()}
	if cfg.RateLimit > 0 {
		s.limiter = newRateLimiter(cfg.RateLimit, cfg.RateBurst)
	}
	if cfg.Metrics != nil {
		s.met = newServerMetrics(cfg.Metrics)
		if cfg.Engine != nil {
			// Snapshot freshness: the epoch the read tier currently serves
			// and how long ago it was published. A stalled epoch under load
			// means ingestion stopped; a growing age with a fresh epoch is a
			// scrape-time illusion (the gauge is read lazily).
			eng := cfg.Engine
			cfg.Metrics.GaugeFunc("api_snapshot_epoch",
				"Epoch of the snapshot the read tier is serving.",
				func() float64 { return float64(eng.CurrentView().Epoch) })
			cfg.Metrics.GaugeFunc("api_snapshot_age_seconds",
				"Seconds since the served snapshot was published.",
				//cryptolint:allow directclock staleness is wall-clock telemetry read at scrape time, never recorded state
				func() float64 { return time.Since(eng.CurrentView().Published).Seconds() })
		}
	}
	// Request-ID assignment sits outermost so the log line and any error
	// envelope share the ID; recovery sits inside logging so a panicked
	// request still gets its log line (as a recovered 500).
	s.handler = s.requestIDs(s.logRequests(s.recoverPanics(s.routes())))
	return s
}

// Handler returns the fully middleware-wrapped root handler.
func (s *Server) Handler() http.Handler { return s.handler }

// routes builds the method-guarded route table. The v1 handlers and the
// legacy aliases share implementations; only parameter conventions and
// response shapes differ where the legacy surface promised them.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()

	handle := func(pattern string, h http.HandlerFunc, allow ...string) {
		mux.Handle(pattern, s.route(pattern, h, allow...))
	}
	handle("/api/v1/stats", s.handleStats, http.MethodGet)
	handle("/api/v1/campaigns", s.handleCampaigns, http.MethodGet)
	handle("/api/v1/campaigns/{id}", s.handleCampaignDetail, http.MethodGet)
	handle("/api/v1/campaigns/{id}/timeline", s.handleCampaignTimeline, http.MethodGet)
	handle("/api/v1/timeseries", s.handleTimeseries, http.MethodGet)
	handle("/api/v1/results", s.handleResults, http.MethodGet)
	handle("/api/v1/checkpoint", s.handleCheckpoint, http.MethodPost)
	handle("/api/v1/samples", s.handleSamples, http.MethodPost)
	handle("/api/v1/healthz", s.handleHealthV1, http.MethodGet)
	handle("/api/v1/events", s.handleEvents, http.MethodGet)
	handle("/api/v1/probe", s.handleProbeStats, http.MethodGet)
	handle("/api/v1/probe/refresh", s.handleProbeRefresh, http.MethodPost)
	handle("/api/v1/finish", s.handleFinish, http.MethodPost)
	handle("/api/v1/scenarios", s.handleScenarios, http.MethodGet, http.MethodPost)
	handle("/api/v1/scenarios/{id}", s.handleScenarioStatus, http.MethodGet)
	handle("/api/v1/scenarios/{id}/delta", s.handleScenarioDelta, http.MethodGet)

	// Legacy aliases.
	handle("/stats", s.handleStats, http.MethodGet)
	handle("/campaigns", s.handleLegacyCampaigns, http.MethodGet)
	handle("/results", s.handleResults, http.MethodGet)
	handle("/checkpoint", s.handleCheckpoint, http.MethodPost)
	handle("/healthz", s.handleHealthLegacy, http.MethodGet)

	// The exposition endpoint itself stays outside the instrumented route
	// set: scrapes should not inflate the request metrics they collect.
	if s.cfg.Metrics != nil {
		mux.Handle("/metrics", s.cfg.Metrics.Handler())
	}

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.error(w, http.StatusNotFound, apiv1.CodeNotFound, "no such endpoint: "+r.URL.Path)
	})
	return mux
}

// route wraps a handler in the per-endpoint middleware: the metrics
// instrumentation (labeled by route pattern) around the method guard.
// There is deliberately no blanket request deadline: the streaming routes
// (events, bulk samples) legitimately outlive any fixed bound, and the
// snapshot reads complete in-memory; the one operation that can stall —
// submitting into a backpressured engine — is individually bounded by
// RequestTimeout in submitWire, surfacing as 503.
// The rate limiter sits inside the instrumentation (throttled requests are
// still counted, as 429s) and outside the method guard (a throttled client
// learns about the limit before anything else).
func (s *Server) route(pattern string, h http.HandlerFunc, allow ...string) http.Handler {
	return s.instrument(pattern, s.ratelimit(s.methods(h, allow...)))
}
