package api

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"cryptomining/pkg/apiv1"
)

// rateLimiter is a per-client token bucket over the read surface. Each
// client address gets Burst tokens refilled at Rate per second; a GET/HEAD
// that finds the bucket empty is answered 429 with a Retry-After hint.
// Writes (ingestion, checkpoint, finish) are deliberately exempt — they are
// paced by the engine's own backpressure, and throttling them here would
// just convert a 503 the client understands into a 429 it retries harder.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	// now supplies the limiter's clock. Wall time in production; tests swap
	// in a fake to drive refill and pruning deterministically.
	now func() time.Time

	mu      sync.Mutex
	clients map[string]*tokenBucket //cryptolint:guardedby mu
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// maxRateClients is a hard bound on the per-client table. At the cap,
// buckets idle long enough to have fully refilled are dropped first (they
// are indistinguishable from fresh ones); if none qualify, the
// longest-untouched bucket is evicted so an address-spraying client can
// never grow the map without bound.
const maxRateClients = 16384

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst <= 0 {
		burst = int(math.Ceil(rate))
		if burst < 1 {
			burst = 1
		}
	}
	return &rateLimiter{
		rate:  rate,
		burst: float64(burst),
		//cryptolint:allow directclock default wiring: the one site the limiter seam binds to the real clock
		now:     time.Now,
		clients: map[string]*tokenBucket{},
	}
}

// allow consumes one token for the client, reporting whether the request may
// proceed and, when it may not, how many whole seconds until a token is due.
func (rl *rateLimiter) allow(client string, now time.Time) (ok bool, retryAfter int) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.clients[client]
	if b == nil {
		if len(rl.clients) >= maxRateClients {
			rl.pruneLocked(now)
		}
		for len(rl.clients) >= maxRateClients {
			rl.evictOldestLocked()
		}
		b = &tokenBucket{tokens: rl.burst, last: now}
		rl.clients[client] = b
	} else {
		b.tokens = math.Min(rl.burst, b.tokens+now.Sub(b.last).Seconds()*rl.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, int(math.Ceil((1 - b.tokens) / rl.rate))
}

// pruneLocked drops buckets that have been idle long enough to refill
// completely. Caller holds rl.mu.
func (rl *rateLimiter) pruneLocked(now time.Time) {
	idle := time.Duration(rl.burst/rl.rate*float64(time.Second)) + time.Second
	for c, b := range rl.clients {
		if now.Sub(b.last) > idle {
			delete(rl.clients, c)
		}
	}
}

// evictOldestLocked removes the bucket untouched the longest. Only reached
// when pruning freed nothing — every bucket is recent, so dropping the
// stalest one merely hands that client a fresh full bucket. Caller holds
// rl.mu and guarantees the map is non-empty.
func (rl *rateLimiter) evictOldestLocked() {
	var oldest string
	var oldestLast time.Time
	first := true
	for c, b := range rl.clients {
		if first || b.last.Before(oldestLast) {
			oldest, oldestLast, first = c, b.last, false
		}
	}
	delete(rl.clients, oldest)
}

// clientKey extracts the throttling identity of a request: the peer IP
// without the ephemeral port. Forwarding headers are deliberately ignored —
// they are client-controlled, and honoring them would let one peer spread
// its traffic across arbitrarily many buckets.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// ratelimit wraps a route with the read-path throttle. No-op when the server
// runs without a limit, and for every non-read method.
func (s *Server) ratelimit(h http.Handler) http.Handler {
	if s.limiter == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			h.ServeHTTP(w, r)
			return
		}
		ok, retryAfter := s.limiter.allow(clientKey(r), s.limiter.now())
		if !ok {
			if s.met != nil {
				s.met.reg.Counter("api_requests_ratelimited_total",
					"Read requests rejected by the per-client rate limiter.").Inc()
			}
			w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
			s.error(w, http.StatusTooManyRequests, apiv1.CodeRateLimited,
				"rate limit exceeded; retry after "+strconv.Itoa(retryAfter)+"s")
			return
		}
		h.ServeHTTP(w, r)
	})
}
