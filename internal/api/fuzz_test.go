package api

import (
	"testing"
)

// FuzzDecodeCursor drives the ?cursor= parser with arbitrary client input.
// The cursor is the one request parameter that round-trips through clients
// byte-for-byte, so the parser must never panic and must accept everything
// encodeCursor can mint.
func FuzzDecodeCursor(f *testing.F) {
	f.Add("")
	f.Add("not-base64!")
	f.Add(encodeCursor(0, 0))
	f.Add(encodeCursor(42, 1300))
	f.Add(encodeCursor(^uint64(0), 1<<30))
	f.Add("djQyOjEzMDA")                     // "v42:1300"
	f.Add("djQyOi0x")                        // "v42:-1" — negative offsets must be rejected
	f.Add("eDQyOjEzMDA")                     // "x42:1300" — wrong version prefix
	f.Add("djk5OTk5OTk5OTk5OTk5OTk5OTk5OjA") // epoch overflowing uint64

	f.Fuzz(func(t *testing.T, s string) {
		off, err := decodeCursor(s)
		if err == nil && off < 0 {
			t.Fatalf("decodeCursor(%q) accepted a negative offset %d", s, off)
		}
	})
}

// FuzzCursorRoundTrip pins the codec identity: every minted cursor decodes
// back to its offset.
func FuzzCursorRoundTrip(f *testing.F) {
	f.Add(uint64(0), 0)
	f.Add(uint64(7), 250)
	f.Add(^uint64(0), 1<<31-1)
	f.Fuzz(func(t *testing.T, epoch uint64, offset int) {
		if offset < 0 {
			t.Skip()
		}
		got, err := decodeCursor(encodeCursor(epoch, offset))
		if err != nil {
			t.Fatalf("minted cursor rejected: %v", err)
		}
		if got != offset {
			t.Fatalf("cursor round-trip: encoded offset %d, decoded %d", offset, got)
		}
	})
}
