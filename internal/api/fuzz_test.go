package api

import (
	"encoding/json"
	"testing"

	"cryptomining/pkg/apiv1"
)

// FuzzDecodeCursor drives the ?cursor= parser with arbitrary client input.
// The cursor is the one request parameter that round-trips through clients
// byte-for-byte, so the parser must never panic and must accept everything
// encodeCursor can mint.
func FuzzDecodeCursor(f *testing.F) {
	f.Add("")
	f.Add("not-base64!")
	f.Add(encodeCursor(0, 0))
	f.Add(encodeCursor(42, 1300))
	f.Add(encodeCursor(^uint64(0), 1<<30))
	f.Add("djQyOjEzMDA")                     // "v42:1300"
	f.Add("djQyOi0x")                        // "v42:-1" — negative offsets must be rejected
	f.Add("eDQyOjEzMDA")                     // "x42:1300" — wrong version prefix
	f.Add("djk5OTk5OTk5OTk5OTk5OTk5OTk5OjA") // epoch overflowing uint64

	f.Fuzz(func(t *testing.T, s string) {
		off, err := decodeCursor(s)
		if err == nil && off < 0 {
			t.Fatalf("decodeCursor(%q) accepted a negative offset %d", s, off)
		}
	})
}

// FuzzCursorRoundTrip pins the codec identity: every minted cursor decodes
// back to its offset.
func FuzzCursorRoundTrip(f *testing.F) {
	f.Add(uint64(0), 0)
	f.Add(uint64(7), 250)
	f.Add(^uint64(0), 1<<31-1)
	f.Fuzz(func(t *testing.T, epoch uint64, offset int) {
		if offset < 0 {
			t.Skip()
		}
		got, err := decodeCursor(encodeCursor(epoch, offset))
		if err != nil {
			t.Fatalf("minted cursor rejected: %v", err)
		}
		if got != offset {
			t.Fatalf("cursor round-trip: encoded offset %d, decoded %d", offset, got)
		}
	})
}

// FuzzScenarioDocument drives the scenario JSON validator with arbitrary
// request bodies: decode the wire request, convert it to the engine
// document, validate. The pipeline must never panic, and validation must be
// a pure function of the document — the same bytes re-decoded and
// re-validated reach the same verdict.
func FuzzScenarioDocument(f *testing.F) {
	f.Add(`{}`)
	f.Add(`{"interventions":[]}`)
	f.Add(`{"name":"fork","interventions":[{"kind":"pow_fork","at":"2018-06-01T00:00:00Z"}]}`)
	f.Add(`{"interventions":[{"kind":"pool_ban","at":"2018-03-01T00:00:00Z","wallets":["4A1b"],"pools":["minexmr"],"cooperation":{"*":{"cooperative":true,"min_ips_to_ban":3}}}]}`)
	f.Add(`{"interventions":[{"kind":"wallet_seizure","at":"2018-03-01T00:00:00Z","wallets":["4A1b","9z"]}]}`)
	f.Add(`{"interventions":[{"kind":"av_rollout","at":"2018-03-01T00:00:00Z","families":["adylkuzz"]}]}`)
	f.Add(`{"interventions":[{"kind":"pow_fork","at":"2018-06-01T00:00:00Z","maintained_campaigns":[1,2,3]}]}`)
	f.Add(`{"interventions":[{"kind":"nuke","at":"2018-06-01T00:00:00Z"}]}`)
	f.Add(`{"interventions":[{"kind":"pool_ban"}]}`)
	f.Add(`{"interventions":[{"kind":"wallet_seizure","at":"2018-03-01T00:00:00Z","wallets":[" "]}]}`)
	f.Add(`not json`)
	f.Add(`{"interventions":[{"at":"0001-01-01T00:00:00Z"}]}`)

	f.Fuzz(func(t *testing.T, body string) {
		var req apiv1.ScenarioRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			return
		}
		doc := scenarioDocFromWire(req)
		err1 := doc.Validate()

		var req2 apiv1.ScenarioRequest
		if err := json.Unmarshal([]byte(body), &req2); err != nil {
			t.Fatalf("second decode of accepted body failed: %v", err)
		}
		doc2 := scenarioDocFromWire(req2)
		err2 := doc2.Validate()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("validation verdict not idempotent: first %v, second %v", err1, err2)
		}
	})
}
