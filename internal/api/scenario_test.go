package api_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cryptomining/internal/api"
	"cryptomining/internal/core"
	"cryptomining/internal/scenario"
	"cryptomining/internal/stream"
	"cryptomining/pkg/apiv1"
	"cryptomining/pkg/client"
)

// newScenarioDaemon builds a live engine with a scenario manager and an API
// server exposing the what-if endpoints, with the corpus already ingested.
func newScenarioDaemon(t *testing.T) *testDaemon {
	t.Helper()
	d := &testDaemon{u: testUniverse()}
	scfg := core.NewFromUniverse(d.u).StreamConfig()
	scfg.Shards = 4
	d.eng = stream.New(scfg)
	d.eng.Start(context.Background())

	mgr, err := scenario.NewManager(scenario.Config{Engine: d.eng, Base: scfg})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	d.ts = httptest.NewServer(api.New(api.Config{Engine: d.eng, Scenarios: mgr}).Handler())
	t.Cleanup(d.ts.Close)

	d.ingestAll(t)
	total := int64(d.u.Corpus.Len())
	deadline := time.Now().Add(time.Minute)
	for {
		st := d.eng.Stats()
		if st.Analyzed+st.Duplicates == total {
			return d
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine did not quiesce: %d+%d != %d", st.Analyzed, st.Duplicates, total)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestScenarioEndpoints(t *testing.T) {
	d := newScenarioDaemon(t)
	c, err := client.New(d.ts.URL)
	if err != nil {
		t.Fatalf("client.New: %v", err)
	}
	ctx := context.Background()

	// Baseline bytes the scenario run must not disturb.
	before := getBody(t, d.ts.URL+"/api/v1/campaigns")

	sub, err := c.SubmitScenario(ctx, apiv1.ScenarioRequest{
		Name: "ban-all",
		Interventions: []apiv1.ScenarioIntervention{{
			Kind:        apiv1.ScenarioPoolBan,
			At:          time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC),
			Cooperation: map[string]apiv1.ScenarioCooperation{"*": {Cooperative: true, MinIPsToBan: 1}},
		}},
	})
	if err != nil {
		t.Fatalf("SubmitScenario: %v", err)
	}
	if sub.ID == "" {
		t.Fatalf("no job ID returned")
	}

	delta, err := c.WaitScenarioDelta(ctx, sub.ID)
	if err != nil {
		t.Fatalf("WaitScenarioDelta: %v", err)
	}
	if delta.Baseline.XMR <= 0 || delta.Scenario.XMR >= delta.Baseline.XMR {
		t.Fatalf("scenario did not reduce earnings: %+v vs %+v", delta.Scenario, delta.Baseline)
	}
	if len(delta.Campaigns) == 0 || len(delta.Applied) == 0 {
		t.Fatalf("delta missing campaigns/audit: %d campaigns, %d applied",
			len(delta.Campaigns), len(delta.Applied))
	}

	// Status endpoints.
	st, err := c.Scenario(ctx, sub.ID)
	if err != nil || st.State != string(scenario.StateDone) {
		t.Fatalf("Scenario status: %+v err=%v", st, err)
	}
	page, err := c.Scenarios(ctx)
	if err != nil || len(page.Scenarios) != 1 || page.Scenarios[0].ID != sub.ID {
		t.Fatalf("Scenarios listing: %+v err=%v", page, err)
	}

	// The live read tier is untouched by the replay.
	after := getBody(t, d.ts.URL+"/api/v1/campaigns")
	if !bytes.Equal(before, after) {
		t.Fatalf("scenario run changed the live campaign listing")
	}

	// Unknown job: 404 envelope.
	if _, err := c.Scenario(ctx, "sc-404"); err == nil {
		t.Fatalf("unknown scenario id resolved")
	}

	// Invalid document: 400 envelope with bad_request.
	_, err = c.SubmitScenario(ctx, apiv1.ScenarioRequest{
		Interventions: []apiv1.ScenarioIntervention{{Kind: "nuke", At: time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)}},
	})
	if ae := asAPIError(t, err); ae.StatusCode != http.StatusBadRequest || ae.Code != apiv1.CodeBadRequest {
		t.Fatalf("invalid doc: got %+v", ae)
	}
}

func TestScenarioDisabled(t *testing.T) {
	d := newTestDaemon(t, api.Config{})
	resp, err := http.Post(d.ts.URL+"/api/v1/scenarios", "application/json",
		bytes.NewReader([]byte(`{"interventions":[]}`)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	env := decodeEnvelope(t, resp)
	if resp.StatusCode != http.StatusConflict || env.Error.Code != apiv1.CodeScenarioDisabled {
		t.Fatalf("disabled scenarios: status=%d code=%s", resp.StatusCode, env.Error.Code)
	}
	for _, path := range []string{"/api/v1/scenarios/sc-1", "/api/v1/scenarios/sc-1/delta"} {
		resp, err := http.Get(d.ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		env := decodeEnvelope(t, resp)
		if resp.StatusCode != http.StatusConflict || env.Error.Code != apiv1.CodeScenarioDisabled {
			t.Fatalf("%s: status=%d code=%s", path, resp.StatusCode, env.Error.Code)
		}
	}
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return buf.Bytes()
}

func asAPIError(t *testing.T, err error) *client.APIError {
	t.Helper()
	if err == nil {
		t.Fatalf("expected an API error, got nil")
	}
	ae, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("expected *client.APIError, got %T: %v", err, err)
	}
	return ae
}
