package api_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"cryptomining/internal/api"
	"cryptomining/internal/core"
	"cryptomining/internal/probe"
	"cryptomining/internal/stream"
	"cryptomining/pkg/apiv1"
)

// newProbeDaemon builds a live engine wired to a DirectorySource prober and
// an API server exposing it, including a Finish hook.
func newProbeDaemon(t *testing.T) (*testDaemon, *probe.Scheduler) {
	t.Helper()
	u := testUniverse()
	scfg := core.NewFromUniverse(u).StreamConfig()
	scfg.Shards = 4
	prober := probe.New(probe.Config{
		Source:  probe.NewDirectorySource(scfg.Pools, scfg.QueryTime),
		Workers: 4,
	})
	scfg.Prober = prober
	d := &testDaemon{u: u}
	d.eng = stream.New(scfg)
	ctx := context.Background()
	d.eng.Start(ctx)
	prober.Start(ctx)
	t.Cleanup(prober.Close)

	cfg := api.Config{
		Engine: d.eng,
		Probe:  prober,
		Finish: func(ctx context.Context) (*stream.Results, error) {
			res, err := d.eng.Finish(ctx)
			if err != nil {
				return nil, err
			}
			d.mu.Lock()
			d.final = res
			d.mu.Unlock()
			return res, nil
		},
		Results: func() *stream.Results {
			d.mu.Lock()
			defer d.mu.Unlock()
			return d.final
		},
	}
	d.ts = httptest.NewServer(api.New(cfg).Handler())
	t.Cleanup(d.ts.Close)
	return d, prober
}

func probeGet(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func probePost(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// TestProbeEndpointsDisabled: without a prober (or Finish hook) the probe
// surface answers 409 with stable codes.
func TestProbeEndpointsDisabled(t *testing.T) {
	d := newTestDaemon(t, api.Config{})
	for _, c := range []struct {
		method, path, code string
	}{
		{http.MethodGet, "/api/v1/probe", apiv1.CodeProbeDisabled},
		{http.MethodPost, "/api/v1/probe/refresh?scope=stale", apiv1.CodeProbeDisabled},
		{http.MethodPost, "/api/v1/finish", apiv1.CodeFinishUnavailable},
	} {
		req, _ := http.NewRequest(c.method, d.ts.URL+c.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var env apiv1.ErrorEnvelope
		json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict || env.Error.Code != c.code {
			t.Fatalf("%s %s -> %d %q, want 409 %q", c.method, c.path, resp.StatusCode, env.Error.Code, c.code)
		}
	}
}

// TestProbeStatsRefreshAndFinish drives the full probe surface over HTTP:
// stats shape, refresh selectors and validation, method guards, and the
// finish flow feeding /api/v1/results.
func TestProbeStatsRefreshAndFinish(t *testing.T) {
	d, prober := newProbeDaemon(t)
	d.ingestAll(t)

	// /results is pending until finish.
	resp := probeGet(t, d.ts.URL+"/api/v1/results", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("results before finish -> %d, want 503", resp.StatusCode)
	}

	// Finish drains, waits for probe convergence, and returns the summary.
	var finRes apiv1.Results
	if resp := probePost(t, d.ts.URL+"/api/v1/finish", &finRes); resp.StatusCode != http.StatusOK {
		t.Fatalf("finish -> %d", resp.StatusCode)
	}
	if finRes.Samples == 0 || finRes.Campaigns == 0 {
		t.Fatalf("finish returned an empty summary: %+v", finRes)
	}
	// Finish guarantees cache coverage; the crawl itself drains moments
	// later.
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := prober.WaitConverged(wctx); err != nil {
		t.Fatalf("crawl never drained after finish: %v", err)
	}

	// /results now serves the same body.
	var res apiv1.Results
	if resp := probeGet(t, d.ts.URL+"/api/v1/results", &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("results after finish -> %d", resp.StatusCode)
	}
	if res != finRes {
		t.Fatalf("results %+v != finish response %+v", res, finRes)
	}

	// Probe stats reflect a converged crawl over the directory pools.
	var ps apiv1.ProbeStats
	if resp := probeGet(t, d.ts.URL+"/api/v1/probe", &ps); resp.StatusCode != http.StatusOK {
		t.Fatalf("probe stats -> %d", resp.StatusCode)
	}
	if !ps.Converged || ps.CacheSize == 0 || ps.Completed == 0 {
		t.Fatalf("unexpected probe stats: %+v", ps)
	}
	if len(ps.Pools) == 0 {
		t.Fatal("no per-pool telemetry")
	}
	var requests uint64
	for _, pc := range ps.Pools {
		requests += pc.Requests
	}
	if requests == 0 {
		t.Fatal("no requests counted")
	}
	total := 0
	for _, b := range ps.CacheAges {
		total += b.Count
	}
	if total != ps.CacheSize {
		t.Fatalf("age buckets cover %d entries, cache has %d", total, ps.CacheSize)
	}

	// Refresh validation: missing and conflicting selectors are 400.
	for _, q := range []string{"", "wallet=w&scope=all", "scope=nonsense"} {
		resp := probePost(t, d.ts.URL+"/api/v1/probe/refresh?"+q, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("refresh %q -> %d, want 400", q, resp.StatusCode)
		}
	}

	// scope=stale on a fresh, TTL-less cache requeues nothing.
	var pr apiv1.ProbeRefresh
	probePost(t, d.ts.URL+"/api/v1/probe/refresh?scope=stale", &pr)
	if pr.Requeued != 0 {
		t.Fatalf("stale refresh requeued %d entries on a fresh cache", pr.Requeued)
	}
	// A wallet refresh schedules exactly one probe.
	wallet := ""
	for _, e := range prober.ExportCache().Entries {
		wallet = e.Wallet
		break
	}
	if wallet == "" {
		t.Fatal("no cached wallets")
	}
	probePost(t, d.ts.URL+"/api/v1/probe/refresh?wallet="+url.QueryEscape(wallet), &pr)
	if pr.Requeued != 1 {
		t.Fatalf("wallet refresh requeued %d, want 1", pr.Requeued)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !prober.Converged() {
		if time.Now().After(deadline) {
			t.Fatal("refresh probe never completed")
		}
		time.Sleep(time.Millisecond)
	}

	// Method guards: wrong methods answer 405 with Allow.
	for path, allow := range map[string]string{
		"/api/v1/probe":         "GET",
		"/api/v1/probe/refresh": "POST",
		"/api/v1/finish":        "POST",
	} {
		method := http.MethodPost
		if allow == "POST" {
			method = http.MethodGet
		}
		req, _ := http.NewRequest(method, d.ts.URL+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s -> %d, want 405", method, path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); !strings.Contains(got, allow) {
			t.Fatalf("%s Allow = %q, want %q listed", path, got, allow)
		}
	}
}
