package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"strconv"
	"strings"

	"cryptomining/internal/stream"
	"cryptomining/internal/timeseries"
	"cryptomining/pkg/apiv1"
)

// maxNDJSONLine bounds one bulk-ingestion line (samples carry base64 bodies).
const maxNDJSONLine = 32 << 20

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, StatsToWire(s.cfg.Engine.Stats()))
}

// queryInt parses an optional non-negative integer query parameter.
func queryInt(r *http.Request, name string) (int, bool, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, false, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, false, fmt.Errorf("invalid %s=%q: must be an integer", name, raw)
	}
	if v < 0 {
		return 0, false, fmt.Errorf("invalid %s=%d: must be >= 0", name, v)
	}
	return v, true, nil
}

func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	limit, _, err := queryInt(r, "limit")
	if err != nil {
		s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest, err.Error())
		return
	}
	offset, _, err := queryInt(r, "offset")
	if err != nil {
		s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest, err.Error())
		return
	}
	// The cursor is the preferred pagination handle; ?offset= stays as a
	// deprecated alias and loses when both are sent.
	if raw := r.URL.Query().Get("cursor"); raw != "" {
		offset, err = decodeCursor(raw)
		if err != nil {
			s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest, err.Error())
			return
		}
	}
	filter := stream.CampaignFilter{
		Pool:   r.URL.Query().Get("pool"),
		Wallet: r.URL.Query().Get("wallet"),
	}
	if raw := r.URL.Query().Get("min_xmr"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v < 0 {
			s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest,
				fmt.Sprintf("invalid min_xmr=%q: must be a non-negative number", raw))
			return
		}
		filter.MinXMR = v
	}

	// One snapshot load serves the whole request: the listing, the entity
	// tag and any minted cursor all describe the same epoch. The view is
	// pre-sorted by earnings, and filtering preserves that stable order.
	v := s.cfg.Engine.CurrentView()
	if s.notModified(w, r, etagForEpoch(v.Epoch)) {
		return
	}
	views := make([]stream.CampaignView, 0, len(v.Campaigns))
	for _, cv := range v.Campaigns {
		if filter.Matches(cv) {
			views = append(views, cv)
		}
	}
	page := apiv1.CampaignPage{
		Total:     len(views),
		Limit:     limit,
		Offset:    offset,
		Campaigns: []apiv1.Campaign{},
	}
	if offset < len(views) {
		window := views[offset:]
		if limit > 0 && limit < len(window) {
			window = window[:limit]
		}
		page.Campaigns = CampaignsToWire(window)
		if next := offset + len(window); next < len(views) {
			page.NextCursor = encodeCursor(v.Epoch, next)
		}
	}
	s.writeJSON(w, http.StatusOK, page)
}

func (s *Server) handleCampaignDetail(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest,
			fmt.Sprintf("invalid campaign id %q: must be an integer", r.PathValue("id")))
		return
	}
	v := s.cfg.Engine.CurrentView()
	detail, ok := v.Details[id]
	if !ok {
		s.error(w, http.StatusNotFound, apiv1.CodeNotFound, fmt.Sprintf("no campaign with id %d", id))
		return
	}
	if s.notModified(w, r, etagForEpoch(v.Epoch)) {
		return
	}
	s.writeJSON(w, http.StatusOK, DetailToWire(detail))
}

// handleLegacyCampaigns keeps the historical surface: ?n= (invalid -> 400,
// negative -> default top-N, 0 -> all) and a bare JSON array body.
func (s *Server) handleLegacyCampaigns(w http.ResponseWriter, r *http.Request) {
	n := s.cfg.DefaultTopN
	if raw := r.URL.Query().Get("n"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil {
			s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest,
				fmt.Sprintf("invalid n=%q: must be an integer", raw))
			return
		}
		if parsed >= 0 {
			n = parsed
		}
	}
	v := s.cfg.Engine.CurrentView()
	if s.notModified(w, r, etagForEpoch(v.Epoch)) {
		return
	}
	views := v.Campaigns
	if n > 0 && n < len(views) {
		views = views[:n]
	}
	s.writeJSON(w, http.StatusOK, CampaignsToWire(views))
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	var res *stream.Results
	if s.cfg.Results != nil {
		res = s.cfg.Results()
	}
	if res == nil {
		// 503 + Retry-After, not 404: the route exists, the resource is just
		// not ready yet, and pollers should keep polling.
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds())))
		s.error(w, http.StatusServiceUnavailable, apiv1.CodeResultsPending,
			"results pending: replay still in flight")
		return
	}
	s.writeJSON(w, http.StatusOK, ResultsToWire(res))
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Checkpoint == nil {
		s.error(w, http.StatusConflict, apiv1.CodePersistenceDisabled,
			"persistence disabled (run with -data-dir)")
		return
	}
	info, err := s.cfg.Checkpoint()
	if err != nil {
		s.error(w, http.StatusInternalServerError, apiv1.CodeInternal, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, info)
}

// submitWire validates and submits one decoded sample, writing the mapped
// error on failure. Reports whether ingestion may continue.
func (s *Server) submitWire(w http.ResponseWriter, ctx context.Context, ws apiv1.Sample, lineinfo string) bool {
	sample, err := SampleFromWire(ws)
	if err != nil {
		s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest, lineinfo+err.Error())
		return false
	}
	if s.cfg.Submit == nil {
		s.error(w, http.StatusConflict, apiv1.CodeIngestClosed, "ingestion not available")
		return false
	}
	// Bound each submission rather than the whole request: bulk bodies may
	// legitimately take arbitrarily long, but any single sample the engine
	// cannot absorb within the request timeout is a stall, and the client
	// should see the advertised 503 instead of hanging.
	sctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()
	if err := s.cfg.Submit(sctx, sample); err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			s.error(w, http.StatusServiceUnavailable, apiv1.CodeBackpressure,
				lineinfo+"ingestion backpressure: "+err.Error())
		case errors.Is(err, stream.ErrFinished) || errors.Is(err, stream.ErrNotStarted):
			s.error(w, http.StatusConflict, apiv1.CodeIngestClosed, lineinfo+err.Error())
		default:
			// Infrastructure failures (e.g. a WAL write error) are server
			// faults, not a closed intake: 500 so clients keep retrying.
			s.error(w, http.StatusInternalServerError, apiv1.CodeInternal, lineinfo+err.Error())
		}
		return false
	}
	return true
}

func (s *Server) handleSamples(w http.ResponseWriter, r *http.Request) {
	ctype := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ctype); err == nil {
		ctype = mt
	}
	switch ctype {
	case "application/x-ndjson", "application/ndjson":
		s.ingestBulk(w, r)
	default:
		dec := json.NewDecoder(r.Body)
		var ws apiv1.Sample
		if err := dec.Decode(&ws); err != nil {
			s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest, "decode sample: "+err.Error())
			return
		}
		// Reject trailing values instead of silently dropping them: an
		// NDJSON body posted without the ndjson Content-Type would otherwise
		// ingest only its first line while reporting success.
		if dec.More() {
			s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest,
				"body contains more than one JSON value; bulk uploads need Content-Type: application/x-ndjson")
			return
		}
		if !s.submitWire(w, r.Context(), ws, "") {
			return
		}
		s.writeJSON(w, http.StatusAccepted, apiv1.IngestResult{Accepted: 1})
	}
}

// ingestBulk streams an NDJSON body into the engine, one sample per line.
// Lines are applied in order; a malformed line aborts the request with 400,
// naming the line and how many earlier samples were already accepted.
func (s *Server) ingestBulk(w http.ResponseWriter, r *http.Request) {
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64*1024), maxNDJSONLine)
	line, accepted := 0, 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ws apiv1.Sample
		if err := json.Unmarshal(raw, &ws); err != nil {
			s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest,
				fmt.Sprintf("line %d: %v (%d samples already accepted)", line, err, accepted))
			return
		}
		if !s.submitWire(w, r.Context(), ws, fmt.Sprintf("line %d: ", line)) {
			return
		}
		accepted++
	}
	if err := sc.Err(); err != nil {
		s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest,
			fmt.Sprintf("read body after line %d: %v (%d samples already accepted)", line, err, accepted))
		return
	}
	s.writeJSON(w, http.StatusAccepted, apiv1.IngestResult{Accepted: accepted})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.error(w, http.StatusInternalServerError, apiv1.CodeInternal, "streaming unsupported")
		return
	}
	format := r.URL.Query().Get("format")
	sse := format == "sse" ||
		(format == "" && strings.Contains(r.Header.Get("Accept"), "text/event-stream"))

	// A HEAD probe must not subscribe to a never-ending stream: answer the
	// headers and end the response.
	if r.Method == http.MethodHead {
		if sse {
			w.Header().Set("Content-Type", "text/event-stream; charset=utf-8")
		} else {
			w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		}
		w.WriteHeader(http.StatusOK)
		return
	}

	events, cancel := s.cfg.Engine.Subscribe(s.cfg.EventBuffer)
	defer cancel()

	if sse {
		w.Header().Set("Content-Type", "text/event-stream; charset=utf-8")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	}
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			buf, err := json.Marshal(EventToWire(ev))
			if err != nil {
				s.log.Warn("encode event failed", "err", err)
				continue
			}
			if sse {
				_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, buf)
			} else {
				buf = append(buf, '\n')
				_, err = w.Write(buf)
			}
			if err != nil {
				return // client gone
			}
			flusher.Flush()
			if ev.Type == stream.EventDrained {
				// Drained is terminal: end the stream so iterating clients
				// get EOF instead of blocking on a run that will never emit
				// another event.
				return
			}
		}
	}
}

// parseTSQuery decodes the shared timeseries query parameters: metric (a
// series name), resolution (a duration naming a configured level; "1d"
// style day units accepted), window (a positive duration bounding the series
// to the most recent span).
func parseTSQuery(r *http.Request) (stream.TimeseriesQuery, error) {
	q := stream.TimeseriesQuery{Metric: r.URL.Query().Get("metric")}
	if raw := r.URL.Query().Get("resolution"); raw != "" {
		d, err := timeseries.ParseDuration(raw)
		if err != nil || d <= 0 {
			return q, fmt.Errorf("invalid resolution=%q: want a positive duration like 1s, 1m, 1h or 1d", raw)
		}
		q.Resolution = d
	}
	if raw := r.URL.Query().Get("window"); raw != "" {
		d, err := timeseries.ParseDuration(raw)
		if err != nil || d <= 0 {
			return q, fmt.Errorf("invalid window=%q: want a positive duration like 10m, 6h or 30d", raw)
		}
		// Relative windows are resolved by the engine against its own
		// recording clock, which may be injected and unrelated to ours.
		q.Window = d
	}
	return q, nil
}

// writeTSError maps the engine's timeseries errors onto the envelope:
// disabled subsystem is a daemon-configuration conflict (409), unknown
// resolutions/metrics are client errors (400).
func (s *Server) writeTSError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, stream.ErrTimeseriesDisabled):
		s.error(w, http.StatusConflict, apiv1.CodeTimeseriesDisabled,
			"timeseries disabled (run without -no-series)")
	case errors.Is(err, stream.ErrUnknownResolution), errors.Is(err, stream.ErrUnknownMetric):
		s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest, err.Error())
	default:
		s.error(w, http.StatusInternalServerError, apiv1.CodeInternal, err.Error())
	}
}

func (s *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	q, err := parseTSQuery(r)
	if err != nil {
		s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest, err.Error())
		return
	}
	snap, err := s.cfg.Engine.Timeseries(q)
	if err != nil {
		s.writeTSError(w, err)
		return
	}
	// The resolved window start is folded into the tag: at a fixed epoch a
	// relative window still slides with the recording clock, and the tag
	// must change when the selected buckets do.
	epoch := s.cfg.Engine.CurrentView().Epoch
	if s.notModified(w, r, etagForWindow(epoch, snap.From)) {
		return
	}
	s.writeJSON(w, http.StatusOK, TimeseriesToWire(snap))
}

func (s *Server) handleCampaignTimeline(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest,
			fmt.Sprintf("invalid campaign id %q: must be an integer", r.PathValue("id")))
		return
	}
	q, err := parseTSQuery(r)
	if err != nil {
		s.error(w, http.StatusBadRequest, apiv1.CodeBadRequest, err.Error())
		return
	}
	snap, ok, err := s.cfg.Engine.CampaignTimeline(id, q)
	if err != nil {
		s.writeTSError(w, err)
		return
	}
	if !ok {
		s.error(w, http.StatusNotFound, apiv1.CodeNotFound, fmt.Sprintf("no campaign with id %d", id))
		return
	}
	epoch := s.cfg.Engine.CurrentView().Epoch
	if s.notModified(w, r, etagForWindow(epoch, snap.From)) {
		return
	}
	s.writeJSON(w, http.StatusOK, TimelineToWire(id, snap))
}

func (s *Server) handleHealthV1(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, apiv1.Health{Status: "ok"})
}

// handleHealthLegacy keeps the historical plain-text probe body.
func (s *Server) handleHealthLegacy(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}
