// Package avsim simulates a multi-engine antivirus scanning service in the
// style of VirusTotal reports.
//
// The paper's sanity checks classify a sample as malware when at least 10
// independent AV engines flag it (§III-B), count engines whose label mentions
// mining, and exceptionally keep low-positive samples that contain a wallet
// seen in confirmed malware. Because real VirusTotal verdicts are unavailable,
// this package fabricates per-vendor verdicts with configurable detection and
// false-positive rates, deterministically derived from the sample hash so the
// pipeline is reproducible run-to-run.
package avsim

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strings"
	"time"

	"cryptomining/internal/model"
)

// DefaultMalwareThreshold is the number of AV positives above which a sample
// is considered malware by the sanity checks.
const DefaultMalwareThreshold = 10

// Vendors is the roster of simulated AV engines. 60 engines approximates the
// size of the VirusTotal engine set.
var Vendors = []string{
	"Acronis", "AegisLab", "AhnLab", "Alibaba", "Antiy", "Arcabit", "Avast",
	"AVG", "Avira", "Baidu", "BitDefender", "Bkav", "ClamAV", "CMC", "Comodo",
	"CrowdStrike", "Cybereason", "Cylance", "Cyren", "DrWeb", "eGambit",
	"Emsisoft", "Endgame", "eScan", "ESET", "FireEye", "Fortinet", "F-Prot",
	"F-Secure", "GData", "Ikarus", "Invincea", "Jiangmin", "K7", "Kaspersky",
	"Kingsoft", "Malwarebytes", "MAX", "McAfee", "Microsoft", "NANO",
	"Palo Alto", "Panda", "Qihoo-360", "Rising", "Sangfor", "SentinelOne",
	"Sophos", "Symantec", "TACHYON", "Tencent", "TheHacker", "TotalDefense",
	"TrendMicro", "VBA32", "VIPRE", "ViRobot", "Webroot", "Yandex", "Zillya",
}

// Profile configures how the simulated engines behave.
type Profile struct {
	// DetectionRate is the probability that an engine detects a sample that
	// is genuinely malicious.
	DetectionRate float64
	// FalsePositiveRate is the probability that an engine flags a benign
	// sample.
	FalsePositiveRate float64
	// MinerLabelRate is the probability that a detecting engine labels a
	// mining sample with a miner-specific family name instead of a generic
	// trojan label.
	MinerLabelRate float64
}

// DefaultProfile approximates the engine behaviour reported in threat-intel
// comparisons: high aggregate coverage, low per-engine FP rate.
func DefaultProfile() Profile {
	return Profile{DetectionRate: 0.55, FalsePositiveRate: 0.01, MinerLabelRate: 0.7}
}

// SampleTruth is the ground-truth character of a sample; the ecosystem
// simulator knows it, the scanner only uses it to bias the fabricated
// verdicts.
type SampleTruth struct {
	// Malicious marks samples that are genuinely malware.
	Malicious bool
	// Miner marks samples with crypto-mining capability.
	Miner bool
	// Stealthy lowers the effective detection rate (fresh crypters, low AV
	// coverage) — the mechanism behind profitable low-detection campaigns.
	Stealthy bool
	// Family optionally forces the family name used in labels.
	Family string
}

// Scanner fabricates AV reports.
type Scanner struct {
	Profile Profile
	// Vendors to simulate; defaults to the full roster.
	Vendors []string
}

// NewScanner returns a scanner with the default profile and vendor roster.
func NewScanner() *Scanner {
	return &Scanner{Profile: DefaultProfile(), Vendors: Vendors}
}

// hashFraction derives a deterministic pseudo-random fraction in [0,1) from
// the sample hash, the vendor and a salt. Determinism keeps the whole
// measurement reproducible for a fixed corpus.
func hashFraction(sha256Hex, vendor, salt string) float64 {
	h := sha256.Sum256([]byte(sha256Hex + "|" + vendor + "|" + salt))
	v := binary.BigEndian.Uint64(h[:8])
	return float64(v) / float64(^uint64(0))
}

// minerFamilies are label stems used for mining malware.
var minerFamilies = []string{"CoinMiner", "BitCoinMiner", "Miner.XMRig", "CryptoMiner", "Trojan.CoinMiner"}

// genericFamilies are label stems used for non-mining malware detections.
var genericFamilies = []string{"Trojan.Generic", "Win32.Agent", "Backdoor.Bot", "Trojan.Dropper", "Worm.AutoRun"}

// Scan produces the simulated AV report for one sample.
func (s *Scanner) Scan(sha256Hex string, truth SampleTruth, queriedAt time.Time) *model.AVReport {
	vendors := s.Vendors
	if len(vendors) == 0 {
		vendors = Vendors
	}
	report := &model.AVReport{SHA256: sha256Hex, QueriedAt: queriedAt}
	detectRate := s.Profile.DetectionRate
	if truth.Stealthy {
		detectRate *= 0.12 // stealthy samples slip past most engines
	}
	for _, vendor := range vendors {
		v := model.AVVerdict{Vendor: vendor}
		roll := hashFraction(sha256Hex, vendor, "detect")
		if truth.Malicious {
			v.Detected = roll < detectRate
		} else {
			v.Detected = roll < s.Profile.FalsePositiveRate
		}
		if v.Detected {
			v.Label = s.label(sha256Hex, vendor, truth)
		}
		report.Verdicts = append(report.Verdicts, v)
	}
	return report
}

func (s *Scanner) label(sha256Hex, vendor string, truth SampleTruth) string {
	family := truth.Family
	if family == "" {
		pick := hashFraction(sha256Hex, vendor, "family")
		if truth.Miner && hashFraction(sha256Hex, vendor, "minerlabel") < s.Profile.MinerLabelRate {
			family = minerFamilies[int(pick*float64(len(minerFamilies)))%len(minerFamilies)]
		} else {
			family = genericFamilies[int(pick*float64(len(genericFamilies)))%len(genericFamilies)]
		}
	}
	variant := strings.ToUpper(sha256Hex[:6])
	return fmt.Sprintf("%s.%s", family, variant)
}

// Classification is the sanity-check outcome for one sample.
type Classification struct {
	Positives   int
	MinerLabels int
	// IsMalware applies the >= threshold rule.
	IsMalware bool
	// LabeledMiner applies the ">10 engines label it Miner" advanced-query
	// criterion from §III-B.
	LabeledMiner bool
}

// Classify applies the paper's threshold rules to a report. whitelisted marks
// known stock mining tools, which are never classified as malware;
// hasIllicitWallet applies the exception that keeps low-positive samples
// containing a wallet already seen in confirmed malware.
func Classify(report *model.AVReport, threshold int, whitelisted, hasIllicitWallet bool) Classification {
	if threshold <= 0 {
		threshold = DefaultMalwareThreshold
	}
	c := Classification{Positives: report.Positives(), MinerLabels: report.MinerLabels()}
	if whitelisted {
		return c
	}
	c.IsMalware = c.Positives >= threshold || (hasIllicitWallet && c.Positives > 0)
	c.LabeledMiner = c.MinerLabels >= threshold
	return c
}
