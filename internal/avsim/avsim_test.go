package avsim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"cryptomining/internal/model"
)

func scanMany(s *Scanner, truth SampleTruth, n int) []*model.AVReport {
	out := make([]*model.AVReport, 0, n)
	for i := 0; i < n; i++ {
		sha := fmt.Sprintf("%064x", i)
		out = append(out, s.Scan(sha, truth, time.Time{}))
	}
	return out
}

func TestScanDeterministic(t *testing.T) {
	s := NewScanner()
	truth := SampleTruth{Malicious: true, Miner: true}
	r1 := s.Scan(strings.Repeat("ab", 32), truth, time.Time{})
	r2 := s.Scan(strings.Repeat("ab", 32), truth, time.Time{})
	if r1.Positives() != r2.Positives() {
		t.Errorf("scan not deterministic: %d vs %d", r1.Positives(), r2.Positives())
	}
	for i := range r1.Verdicts {
		if r1.Verdicts[i] != r2.Verdicts[i] {
			t.Fatalf("verdict %d differs between runs", i)
		}
	}
}

func TestMaliciousSamplesUsuallyExceedThreshold(t *testing.T) {
	s := NewScanner()
	reports := scanMany(s, SampleTruth{Malicious: true, Miner: true}, 200)
	passing := 0
	for _, r := range reports {
		if r.Positives() >= DefaultMalwareThreshold {
			passing++
		}
	}
	if passing < 190 {
		t.Errorf("only %d/200 malicious samples exceed the 10-AV threshold", passing)
	}
}

func TestBenignSamplesRarelyExceedThreshold(t *testing.T) {
	s := NewScanner()
	reports := scanMany(s, SampleTruth{Malicious: false}, 200)
	falsePositives := 0
	for _, r := range reports {
		if r.Positives() >= DefaultMalwareThreshold {
			falsePositives++
		}
	}
	if falsePositives > 2 {
		t.Errorf("%d/200 benign samples exceed the threshold, expected ~0", falsePositives)
	}
}

func TestStealthySamplesEvadeThreshold(t *testing.T) {
	s := NewScanner()
	normal := scanMany(s, SampleTruth{Malicious: true, Miner: true}, 100)
	stealthy := scanMany(s, SampleTruth{Malicious: true, Miner: true, Stealthy: true}, 100)
	avg := func(rs []*model.AVReport) float64 {
		sum := 0
		for _, r := range rs {
			sum += r.Positives()
		}
		return float64(sum) / float64(len(rs))
	}
	if avg(stealthy) >= avg(normal)/2 {
		t.Errorf("stealthy samples should have far fewer positives: stealthy=%v normal=%v",
			avg(stealthy), avg(normal))
	}
}

func TestMinerSamplesGetMinerLabels(t *testing.T) {
	s := NewScanner()
	miners := scanMany(s, SampleTruth{Malicious: true, Miner: true}, 100)
	nonMiners := scanMany(s, SampleTruth{Malicious: true, Miner: false}, 100)
	minerLabelled := 0
	for _, r := range miners {
		if r.MinerLabels() >= DefaultMalwareThreshold {
			minerLabelled++
		}
	}
	if minerLabelled < 80 {
		t.Errorf("only %d/100 mining samples have >=10 miner labels", minerLabelled)
	}
	for _, r := range nonMiners {
		if r.MinerLabels() > r.Positives()/3 {
			t.Errorf("non-miner sample has too many miner labels: %d of %d", r.MinerLabels(), r.Positives())
			break
		}
	}
}

func TestForcedFamilyLabel(t *testing.T) {
	s := NewScanner()
	r := s.Scan(strings.Repeat("cd", 32), SampleTruth{Malicious: true, Miner: true, Family: "Adylkuzz"}, time.Time{})
	for _, v := range r.Verdicts {
		if v.Detected && !strings.HasPrefix(v.Label, "Adylkuzz.") {
			t.Errorf("label = %q, want Adylkuzz.* prefix", v.Label)
		}
	}
}

func TestScanUsesAllVendors(t *testing.T) {
	s := NewScanner()
	r := s.Scan(strings.Repeat("ef", 32), SampleTruth{Malicious: true}, time.Time{})
	if len(r.Verdicts) != len(Vendors) {
		t.Errorf("verdicts = %d, want %d", len(r.Verdicts), len(Vendors))
	}
	custom := &Scanner{Profile: DefaultProfile(), Vendors: []string{"OnlyOne"}}
	r2 := custom.Scan(strings.Repeat("ef", 32), SampleTruth{Malicious: true}, time.Time{})
	if len(r2.Verdicts) != 1 {
		t.Errorf("custom vendor roster produced %d verdicts", len(r2.Verdicts))
	}
	empty := &Scanner{Profile: DefaultProfile()}
	r3 := empty.Scan(strings.Repeat("ef", 32), SampleTruth{Malicious: true}, time.Time{})
	if len(r3.Verdicts) != len(Vendors) {
		t.Errorf("empty roster should fall back to default, got %d", len(r3.Verdicts))
	}
}

func TestClassifyThresholdRule(t *testing.T) {
	report := &model.AVReport{}
	for i := 0; i < 12; i++ {
		report.Verdicts = append(report.Verdicts, model.AVVerdict{
			Vendor: fmt.Sprintf("V%d", i), Detected: i < 11, Label: "CoinMiner.X",
		})
	}
	c := Classify(report, 10, false, false)
	if !c.IsMalware || !c.LabeledMiner {
		t.Errorf("11 positives should classify as malware and miner: %+v", c)
	}
	cLow := Classify(report, 20, false, false)
	if cLow.IsMalware {
		t.Error("higher threshold should reject 11 positives")
	}
}

func TestClassifyWhitelistOverrides(t *testing.T) {
	report := &model.AVReport{}
	for i := 0; i < 30; i++ {
		report.Verdicts = append(report.Verdicts, model.AVVerdict{Vendor: fmt.Sprintf("V%d", i), Detected: true, Label: "CoinMiner"})
	}
	c := Classify(report, 10, true, false)
	if c.IsMalware {
		t.Error("whitelisted stock tools must never be classified as malware")
	}
}

func TestClassifyIllicitWalletException(t *testing.T) {
	report := &model.AVReport{
		Verdicts: []model.AVVerdict{
			{Vendor: "A", Detected: true, Label: "Trojan.Generic"},
			{Vendor: "B", Detected: false},
		},
	}
	without := Classify(report, 10, false, false)
	if without.IsMalware {
		t.Error("1 positive without wallet exception should not be malware")
	}
	with := Classify(report, 10, false, true)
	if !with.IsMalware {
		t.Error("sample with illicit wallet and >=1 positive should be kept as malware")
	}
	// Zero positives never qualifies, wallet or not.
	clean := Classify(&model.AVReport{}, 10, false, true)
	if clean.IsMalware {
		t.Error("zero positives should never be malware")
	}
}

func TestClassifyDefaultThreshold(t *testing.T) {
	report := &model.AVReport{}
	for i := 0; i < 10; i++ {
		report.Verdicts = append(report.Verdicts, model.AVVerdict{Vendor: fmt.Sprintf("V%d", i), Detected: true, Label: "X"})
	}
	c := Classify(report, 0, false, false) // 0 -> default threshold of 10
	if !c.IsMalware {
		t.Error("10 positives should satisfy the default threshold")
	}
}

func BenchmarkScan(b *testing.B) {
	s := NewScanner()
	truth := SampleTruth{Malicious: true, Miner: true}
	for i := 0; i < b.N; i++ {
		s.Scan(fmt.Sprintf("%064x", i), truth, time.Time{})
	}
}
