package feeds

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cryptomining/internal/binfmt"
	"cryptomining/internal/model"
)

func mkSample(content string, firstSeen time.Time) *model.Sample {
	sha, md5hex := binfmt.Hashes([]byte(content))
	return &model.Sample{
		SHA256:    sha,
		MD5:       md5hex,
		Content:   []byte(content),
		FirstSeen: firstSeen,
	}
}

func TestRepositoryAddFetchList(t *testing.T) {
	r := NewRepository(model.SourceVirusTotal)
	s := mkSample("sample one", model.Date(2017, 1, 1))
	r.Add(s)
	r.Add(nil)                       // ignored
	r.Add(&model.Sample{SHA256: ""}) // ignored

	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	if r.Name() != model.SourceVirusTotal {
		t.Errorf("Name = %v", r.Name())
	}
	got, ok := r.Fetch(s.SHA256)
	if !ok {
		t.Fatal("Fetch failed")
	}
	if len(got.Sources) != 1 || got.Sources[0] != model.SourceVirusTotal {
		t.Errorf("sources = %v", got.Sources)
	}
	// Fetch is case-insensitive on the hash.
	if _, ok := r.Fetch("DEADBEEF"); ok {
		t.Error("unknown hash should not fetch")
	}
	if list := r.List(); len(list) != 1 || list[0] != s.SHA256 {
		t.Errorf("List = %v", list)
	}
	// The stored sample is a copy: mutating the original has no effect.
	s.Content[0] = 'X'
	again, _ := r.Fetch(s.SHA256)
	if again.Content[0] == 'X' {
		t.Error("repository should store a deep copy")
	}
}

func TestAggregateDeduplicatesAcrossFeeds(t *testing.T) {
	shared := mkSample("shared sample", model.Date(2016, 5, 1))
	vtOnly := mkSample("vt exclusive", model.Date(2017, 2, 1))
	paOnly := mkSample("palo alto exclusive", model.Date(2018, 3, 1))

	vt := NewRepository(model.SourceVirusTotal)
	vt.Add(shared)
	vt.Add(vtOnly)

	pa := NewRepository(model.SourcePaloAlto)
	sharedLater := shared.Clone()
	sharedLater.FirstSeen = model.Date(2016, 8, 1) // later than VT's
	sharedLater.ITWURLs = []string{"http://hrtests.ru/payload.exe"}
	pa.Add(sharedLater)
	pa.Add(paOnly)

	corpus := Aggregate(vt, pa, nil)
	if corpus.Len() != 3 {
		t.Fatalf("corpus size = %d, want 3", corpus.Len())
	}
	merged, ok := corpus.Get(shared.SHA256)
	if !ok {
		t.Fatal("shared sample missing")
	}
	if len(merged.Sources) != 2 {
		t.Errorf("merged sources = %v", merged.Sources)
	}
	if !merged.FirstSeen.Equal(model.Date(2016, 5, 1)) {
		t.Errorf("merged first seen = %v, want earliest", merged.FirstSeen)
	}
	if len(merged.ITWURLs) != 1 {
		t.Errorf("merged ITW URLs = %v", merged.ITWURLs)
	}
	bySource := corpus.CountBySource()
	if bySource[model.SourceVirusTotal] != 2 || bySource[model.SourcePaloAlto] != 2 {
		t.Errorf("CountBySource = %v", bySource)
	}
}

func TestCorpusAddAndHashes(t *testing.T) {
	c := NewCorpus()
	s1 := mkSample("one", model.Date(2017, 1, 1))
	s2 := mkSample("two", model.Date(2017, 1, 2))
	c.Add(s1)
	c.Add(s2)
	c.Add(s1) // duplicate merge
	c.Add(nil)
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	hs := c.Hashes()
	if len(hs) != 2 || hs[0] > hs[1] {
		t.Errorf("Hashes = %v", hs)
	}
	if _, ok := c.Get("missing"); ok {
		t.Error("missing hash should not be found")
	}
}

func TestCorpusMergePreservesEarliestAndContent(t *testing.T) {
	c := NewCorpus()
	full := mkSample("payload bytes", model.Date(2015, 6, 1))
	metaOnly := full.Clone()
	metaOnly.Content = nil
	metaOnly.FirstSeen = model.Date(2014, 12, 1)
	metaOnly.Parents = []string{"parenthash"}

	c.Add(metaOnly)
	c.Add(full)
	got, _ := c.Get(full.SHA256)
	if !got.FirstSeen.Equal(model.Date(2014, 12, 1)) {
		t.Errorf("first seen = %v, want earliest", got.FirstSeen)
	}
	if len(got.Content) == 0 {
		t.Error("content should be filled in from the feed that had it")
	}
	if len(got.Parents) != 1 {
		t.Errorf("parents = %v", got.Parents)
	}
}

func newCrawlSite(t *testing.T) (*httptest.Server, []string) {
	t.Helper()
	samples := map[string][]byte{
		"/samples/miner1.exe": []byte("MZ miner one content"),
		"/samples/miner2.exe": []byte("MZ miner two content"),
		"/samples/broken.exe": nil, // served as 404
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/index.txt", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "# malware sample index")
		fmt.Fprintln(w, "/samples/miner1.exe")
		fmt.Fprintln(w, "/samples/miner2.exe")
		fmt.Fprintln(w, "/samples/broken.exe")
		fmt.Fprintln(w, "")
	})
	mux.HandleFunc("/samples/", func(w http.ResponseWriter, r *http.Request) {
		content, ok := samples[r.URL.Path]
		if !ok || content == nil {
			http.NotFound(w, r)
			return
		}
		_, _ = w.Write(content)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	var hashes []string
	for _, content := range [][]byte{samples["/samples/miner1.exe"], samples["/samples/miner2.exe"]} {
		h, _ := binfmt.Hashes(content)
		hashes = append(hashes, h)
	}
	return srv, hashes
}

func TestCrawlerFetchesSamples(t *testing.T) {
	srv, hashes := newCrawlSite(t)
	cr := NewCrawler(srv.Client())
	cr.Clock = func() time.Time { return model.Date(2018, 7, 1) }
	repo, failures, err := cr.Crawl(srv.URL)
	if err != nil {
		t.Fatalf("Crawl error: %v", err)
	}
	if failures != 1 {
		t.Errorf("failures = %d, want 1 (the broken sample)", failures)
	}
	if repo.Len() != 2 {
		t.Fatalf("crawled %d samples, want 2", repo.Len())
	}
	for _, h := range hashes {
		s, ok := repo.Fetch(h)
		if !ok {
			t.Fatalf("crawled sample %s missing", h)
		}
		if len(s.ITWURLs) != 1 || s.Sources[0] != model.SourceCrawler {
			t.Errorf("crawled sample metadata = %+v", s)
		}
		if !s.FirstSeen.Equal(model.Date(2018, 7, 1)) {
			t.Errorf("first seen = %v", s.FirstSeen)
		}
	}
}

func TestCrawlerIndexErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer srv.Close()
	cr := NewCrawler(srv.Client())
	if _, _, err := cr.Crawl(srv.URL); err == nil {
		t.Error("missing index should be an error")
	}
	if _, _, err := cr.Crawl("http://127.0.0.1:1"); err == nil {
		t.Error("unreachable site should be an error")
	}
}

func TestCrawlerAbsoluteURLsAndSizeLimit(t *testing.T) {
	var absoluteTarget *httptest.Server
	absoluteTarget = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("MZ absolute sample"))
	}))
	defer absoluteTarget.Close()

	mux := http.NewServeMux()
	mux.HandleFunc("/index.txt", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, absoluteTarget.URL+"/hosted.exe")
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	cr := NewCrawler(srv.Client())
	cr.MaxSampleSize = 4 // truncates the download
	repo, failures, err := cr.Crawl(srv.URL)
	if err != nil || failures != 0 {
		t.Fatalf("Crawl = %v, failures %d", err, failures)
	}
	if repo.Len() != 1 {
		t.Fatalf("repo len = %d", repo.Len())
	}
	for _, h := range repo.List() {
		s, _ := repo.Fetch(h)
		if len(s.Content) != 4 {
			t.Errorf("size limit not applied: %d bytes", len(s.Content))
		}
	}
}

func BenchmarkAggregate(b *testing.B) {
	vt := NewRepository(model.SourceVirusTotal)
	pa := NewRepository(model.SourcePaloAlto)
	for i := 0; i < 2000; i++ {
		s := mkSample(fmt.Sprintf("sample-%d", i), model.Date(2017, 1, 1))
		vt.Add(s)
		if i%2 == 0 {
			pa.Add(s)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Aggregate(vt, pa)
	}
}
