// Package feeds models the malware-feed layer of the measurement: the sources
// binaries and metadata are collected from (VirusTotal, Palo Alto Networks,
// Hybrid Analysis, VirusShare, and a crawler over smaller communities), and
// the consolidation step that merges them into one deduplicated corpus
// (§III-A and Appendix C of the paper).
//
// On real data each repository is a remote API; here each is an in-memory
// Repository populated by the ecosystem simulator, except the Crawler, which
// really does speak HTTP so the fetch-from-online-communities code path is
// exercised against a test server.
package feeds

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"cryptomining/internal/binfmt"
	"cryptomining/internal/model"
)

// Feed is a source of malware samples.
type Feed interface {
	// Name identifies the feed.
	Name() model.Source
	// List returns the SHA256 hashes available from this feed.
	List() []string
	// Fetch returns the sample with the given hash.
	Fetch(sha256Hex string) (*model.Sample, bool)
}

// Repository is an in-memory Feed.
type Repository struct {
	name    model.Source
	mu      sync.RWMutex
	samples map[string]*model.Sample
}

// NewRepository creates an empty repository for the given source.
func NewRepository(name model.Source) *Repository {
	return &Repository{name: name, samples: map[string]*model.Sample{}}
}

// Name implements Feed.
func (r *Repository) Name() model.Source { return r.name }

// Add stores a sample (stamping this repository as one of its sources).
func (r *Repository) Add(s *model.Sample) {
	if s == nil || s.SHA256 == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := s.Clone()
	c.Sources = []model.Source{r.name}
	r.samples[strings.ToLower(s.SHA256)] = c
}

// List implements Feed.
func (r *Repository) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.samples))
	for h := range r.samples {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Fetch implements Feed.
func (r *Repository) Fetch(sha256Hex string) (*model.Sample, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.samples[strings.ToLower(sha256Hex)]
	if !ok {
		return nil, false
	}
	return s.Clone(), true
}

// Len returns the number of samples in the repository.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.samples)
}

// Aggregate consolidates multiple feeds into one deduplicated corpus: samples
// observed in several feeds keep the union of their sources, parents, URLs and
// contacted domains, and the earliest first-seen date — the same consolidation
// the paper applies across its four main sources.
func Aggregate(feeds ...Feed) *Corpus {
	c := &Corpus{samples: map[string]*model.Sample{}}
	for _, f := range feeds {
		if f == nil {
			continue
		}
		for _, hash := range f.List() {
			s, ok := f.Fetch(hash)
			if !ok {
				continue
			}
			c.merge(s)
		}
	}
	return c
}

// Corpus is the consolidated, deduplicated sample set.
type Corpus struct {
	mu      sync.RWMutex
	samples map[string]*model.Sample
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{samples: map[string]*model.Sample{}}
}

func (c *Corpus) merge(s *model.Sample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(s.SHA256)
	existing, ok := c.samples[key]
	if !ok {
		c.samples[key] = s.Clone()
		return
	}
	existing.Sources = mergeSources(existing.Sources, s.Sources)
	existing.ITWURLs = mergeStrings(existing.ITWURLs, s.ITWURLs)
	existing.Parents = mergeStrings(existing.Parents, s.Parents)
	existing.ContactedDomains = mergeStrings(existing.ContactedDomains, s.ContactedDomains)
	existing.DroppedHashes = mergeStrings(existing.DroppedHashes, s.DroppedHashes)
	if existing.FirstSeen.IsZero() || (!s.FirstSeen.IsZero() && s.FirstSeen.Before(existing.FirstSeen)) {
		existing.FirstSeen = s.FirstSeen
	}
	if len(existing.Content) == 0 {
		existing.Content = append([]byte(nil), s.Content...)
	}
}

// Add inserts (or merges) a sample into the corpus directly.
func (c *Corpus) Add(s *model.Sample) {
	if s == nil || s.SHA256 == "" {
		return
	}
	c.merge(s)
}

// Get returns the sample with the given hash.
func (c *Corpus) Get(sha256Hex string) (*model.Sample, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.samples[strings.ToLower(sha256Hex)]
	if !ok {
		return nil, false
	}
	return s, true
}

// Hashes returns every sample hash, sorted.
func (c *Corpus) Hashes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.samples))
	for h := range c.samples {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of distinct samples.
func (c *Corpus) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.samples)
}

// CountBySource returns the number of samples observed in each source
// (a sample in several feeds counts once per feed), reproducing the source
// breakdown of Table III.
func (c *Corpus) CountBySource() map[model.Source]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := map[model.Source]int{}
	for _, s := range c.samples {
		for _, src := range s.Sources {
			out[src]++
		}
	}
	return out
}

func mergeSources(a, b []model.Source) []model.Source {
	seen := map[model.Source]bool{}
	var out []model.Source
	for _, s := range append(append([]model.Source{}, a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func mergeStrings(a, b []string) []string {
	return model.SortStrings(append(append([]string{}, a...), b...))
}

// Crawler fetches samples from small online communities over HTTP (the
// malc0de/vxvault-style sources of §III-A). The site is expected to serve an
// index document listing one sample URL per line; each URL is downloaded and
// hashed.
type Crawler struct {
	// Client is the HTTP client used; nil uses http.DefaultClient.
	Client *http.Client
	// IndexPath is the path of the index document (default "/index.txt").
	IndexPath string
	// MaxSampleSize bounds each download (default 8 MiB).
	MaxSampleSize int64
	// Clock stamps the first-seen date of crawled samples.
	Clock func() time.Time
}

// NewCrawler returns a crawler with defaults.
func NewCrawler(client *http.Client) *Crawler {
	return &Crawler{Client: client, IndexPath: "/index.txt", MaxSampleSize: 8 << 20, Clock: time.Now} //cryptolint:allow directclock default wiring: the one site the crawler Clock seam binds to the real clock
}

// now resolves the crawler's clock, tolerating zero-value Crawlers whose
// Clock seam was left nil.
func (cr *Crawler) now() time.Time {
	if cr.Clock != nil {
		return cr.Clock()
	}
	return time.Now() //cryptolint:allow directclock fallback wiring for zero-value crawlers without a Clock
}

// Crawl fetches the index at baseURL and downloads every listed sample,
// returning them as a repository with source Crawler. Individual download
// failures are skipped (and counted); an unreachable index is an error.
func (cr *Crawler) Crawl(baseURL string) (*Repository, int, error) {
	client := cr.Client
	if client == nil {
		client = http.DefaultClient
	}
	indexURL := strings.TrimRight(baseURL, "/") + cr.IndexPath
	resp, err := client.Get(indexURL)
	if err != nil {
		return nil, 0, fmt.Errorf("feeds: fetch index: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("feeds: index status %d", resp.StatusCode)
	}

	repo := NewRepository(model.SourceCrawler)
	failures := 0
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sampleURL := line
		if !strings.HasPrefix(sampleURL, "http://") && !strings.HasPrefix(sampleURL, "https://") {
			sampleURL = strings.TrimRight(baseURL, "/") + "/" + strings.TrimLeft(line, "/")
		}
		content, err := cr.download(client, sampleURL)
		if err != nil {
			failures++
			continue
		}
		sha, md5hex := binfmt.Hashes(content)
		now := cr.now()
		repo.Add(&model.Sample{
			SHA256:    sha,
			MD5:       md5hex,
			Content:   content,
			FirstSeen: now,
			ITWURLs:   []string{sampleURL},
		})
	}
	if err := scanner.Err(); err != nil {
		return repo, failures, fmt.Errorf("feeds: read index: %w", err)
	}
	return repo, failures, nil
}

func (cr *Crawler) download(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("feeds: sample status %d", resp.StatusCode)
	}
	limit := cr.MaxSampleSize
	if limit <= 0 {
		limit = 8 << 20
	}
	return io.ReadAll(io.LimitReader(resp.Body, limit))
}
