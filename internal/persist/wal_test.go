package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cryptomining/internal/model"
)

func sampleRec(seq uint64) *walRecord {
	return &walRecord{
		Seq: seq,
		Sample: model.Sample{
			SHA256:  "aa00",
			Content: bytes.Repeat([]byte{byte(seq)}, 32),
			Parents: []string{"bb11"},
		},
	}
}

func TestWALFrameRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := segmentPath(dir, 1)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if _, err := appendFrame(f, sampleRec(seq)); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	recs, _, err := readSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("read %d records, want 5", len(recs))
	}
	for i, rec := range recs {
		want := sampleRec(uint64(i + 1))
		if rec.Seq != want.Seq || !bytes.Equal(rec.Sample.Content, want.Sample.Content) ||
			len(rec.Sample.Parents) != 1 {
			t.Fatalf("record %d corrupted: %+v", i, rec)
		}
	}
}

// TestWALTornTail simulates a SIGKILL mid-write: the reader must stop at the
// last valid frame, report the truncation point, and appends after a
// truncate-reopen must produce a fully readable log.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	path := segmentPath(dir, 1)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := appendFrame(f, sampleRec(seq)); err != nil {
			t.Fatal(err)
		}
	}
	info, _ := f.Stat()
	validSize := info.Size()
	// Torn frame: a header promising more payload than exists.
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, validEnd, err := readSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records past torn tail, want 3", len(recs))
	}
	if validEnd != validSize {
		t.Fatalf("validEnd = %d, want %d", validEnd, validSize)
	}

	// The writer path truncates and appends; the result must read cleanly.
	if err := os.Truncate(path, validEnd); err != nil {
		t.Fatal(err)
	}
	f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := appendFrame(f, sampleRec(4)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, _, err = readSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[3].Seq != 4 {
		t.Fatalf("after truncate+append: %d records (last %+v)", len(recs), recs[len(recs)-1])
	}
}

// TestWALCorruptFrameStopsRead flips a payload byte; the CRC must reject the
// frame and everything after it.
func TestWALCorruptFrameStopsRead(t *testing.T) {
	dir := t.TempDir()
	path := segmentPath(dir, 1)
	f, _ := os.Create(path)
	if _, err := appendFrame(f, sampleRec(1)); err != nil {
		t.Fatal(err)
	}
	firstEnd, _ := f.Seek(0, 1)
	if _, err := appendFrame(f, sampleRec(2)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	raw, _ := os.ReadFile(path)
	raw[firstEnd+frameHeaderSize+3] ^= 0xff
	os.WriteFile(path, raw, 0o644)

	recs, validEnd, err := readSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || validEnd != firstEnd {
		t.Fatalf("corrupt frame not rejected: %d records, validEnd %d (want 1, %d)",
			len(recs), validEnd, firstEnd)
	}
}

func TestSegmentAndSnapshotNaming(t *testing.T) {
	if got := filepath.Base(segmentPath("d", 42)); got != "wal-00000000000000000042.log" {
		t.Fatalf("segment name %q", got)
	}
	if seq, ok := segmentFirstSeq("wal-00000000000000000042.log"); !ok || seq != 42 {
		t.Fatalf("parse segment: %d %v", seq, ok)
	}
	if _, ok := segmentFirstSeq("snap-00000000000000000042.snap"); ok {
		t.Fatal("snapshot parsed as segment")
	}
	if seq, ok := snapshotSeq("snap-00000000000000000007.snap"); !ok || seq != 7 {
		t.Fatalf("parse snapshot: %d %v", seq, ok)
	}
	if _, ok := snapshotSeq("snap-x.snap"); ok {
		t.Fatal("garbage parsed as snapshot")
	}
}
