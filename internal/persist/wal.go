package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"cryptomining/internal/model"
)

// The WAL is a sequence of segment files named wal-<firstSeq>.log, where
// firstSeq is the sequence number the segment starts at (segments rotate on
// checkpoint, so a whole segment becomes prunable once the checkpoint
// watermark passes it). Each segment is a flat stream of frames:
//
//	[4-byte LE payload length][4-byte LE IEEE CRC32 of payload][payload]
//
// where payload is a gob-encoded walRecord. A SIGKILL can leave a torn
// frame at the tail of the last segment; readers stop at the first frame
// that is short or fails its CRC, and the writer truncates the tail back to
// the last valid frame before appending again. A torn frame is always safe
// to drop: samples are submitted to the engine only after their append
// returned, so a torn entry was never processed.
const (
	walPrefix = "wal-"
	walSuffix = ".log"

	frameHeaderSize = 8
	// maxFramePayload guards the reader against interpreting garbage as a
	// giant allocation; real entries are sample-sized.
	maxFramePayload = 64 << 20
)

// walRecord is one logged submission.
type walRecord struct {
	Seq    uint64
	Sample model.Sample
}

func segmentPath(dir string, firstSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", walPrefix, firstSeq, walSuffix))
}

// segmentFirstSeq parses the firstSeq out of a segment file name, reporting
// whether the name is a WAL segment at all.
func segmentFirstSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, walPrefix) || !strings.HasSuffix(name, walSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, walPrefix), walSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSegments returns the WAL segments under dir sorted by firstSeq.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var firsts []uint64
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if first, ok := segmentFirstSeq(ent.Name()); ok {
			firsts = append(firsts, first)
		}
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	return firsts, nil
}

// appendFrame writes one record as a single frame and returns the frame
// size. The frame is assembled in memory and written with one Write call, so
// a crash between syscalls cannot interleave half-frames from concurrent
// appends (appends are additionally serialized by the store mutex).
func appendFrame(f *os.File, rec *walRecord) (int, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return 0, fmt.Errorf("persist: encode wal record: %w", err)
	}
	frame := make([]byte, frameHeaderSize+payload.Len())
	binary.LittleEndian.PutUint32(frame[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	copy(frame[frameHeaderSize:], payload.Bytes())
	if _, err := f.Write(frame); err != nil {
		return 0, fmt.Errorf("persist: append wal frame: %w", err)
	}
	return len(frame), nil
}

// readSegment reads every valid record of one segment file and returns them
// together with the byte offset where the valid prefix ends (the truncation
// point for torn tails). A missing file reads as empty.
func readSegment(path string) (recs []walRecord, validEnd int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	defer f.Close()
	recs, validEnd = readFrames(f)
	return recs, validEnd, nil
}

// readFrames decodes the valid frame prefix of a segment stream, returning
// the records and the byte offset where validity ends. It never fails: a
// short header, oversized length, torn payload, bad CRC or undecodable gob
// all just terminate the prefix — by the WAL contract everything past the
// first damage was never acknowledged. Factored over io.Reader so the
// decoder can be driven by arbitrary byte streams (fuzzing) without a file.
func readFrames(r io.Reader) (recs []walRecord, validEnd int64) {
	var off int64
	hdr := make([]byte, frameHeaderSize)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return recs, off // clean EOF or torn header: stop here
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if size == 0 || size > maxFramePayload {
			return recs, off
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, off // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off // corrupt frame
		}
		var rec walRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return recs, off
		}
		recs = append(recs, rec)
		off += int64(frameHeaderSize + len(payload))
	}
}
