package persist

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"cryptomining/internal/stream"
)

// Snapshots are full engine states named snap-<seq>.snap, where seq is the
// store's next sequence number at checkpoint time (monotonic, so the highest
// numbered file is the newest). Each file is written to a .tmp sibling,
// fsynced and renamed into place — a crash mid-write leaves only a stray
// .tmp, which Open removes, never a half snapshot under the real name.
const (
	snapPrefix  = "snap-"
	snapSuffix  = ".snap"
	tmpSuffix   = ".tmp"
	snapVersion = 1
)

// snapshotFile is the on-disk envelope of one checkpoint.
type snapshotFile struct {
	// Version guards against decoding a snapshot written by an incompatible
	// build of the state structures.
	Version int
	// NextSeq is the store's next submission sequence at checkpoint time.
	NextSeq uint64
	// State is the full engine state.
	State *stream.EngineState
}

func snapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", snapPrefix, seq, snapSuffix))
}

// snapshotSeq parses the sequence out of a snapshot file name.
func snapshotSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSnapshots returns the snapshot sequence numbers under dir, ascending.
func listSnapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if seq, ok := snapshotSeq(ent.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// writeSnapshot atomically persists one checkpoint.
func writeSnapshot(dir string, seq uint64, st *stream.EngineState) (path string, size int64, err error) {
	path = snapshotPath(dir, seq)
	tmp := path + tmpSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return "", 0, err
	}
	if err := gob.NewEncoder(f).Encode(&snapshotFile{Version: snapVersion, NextSeq: seq, State: st}); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", 0, fmt.Errorf("persist: encode snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", 0, err
	}
	info, _ := f.Stat()
	if info != nil {
		size = info.Size()
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", 0, err
	}
	syncDir(dir)
	return path, size, nil
}

// loadSnapshot reads and validates one snapshot file.
func loadSnapshot(path string) (*snapshotFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var snap snapshotFile
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		return nil, fmt.Errorf("persist: decode snapshot %s: %w", filepath.Base(path), err)
	}
	if snap.Version != snapVersion {
		return nil, fmt.Errorf("persist: snapshot %s has version %d, want %d",
			filepath.Base(path), snap.Version, snapVersion)
	}
	if snap.State == nil {
		return nil, fmt.Errorf("persist: snapshot %s has no state", filepath.Base(path))
	}
	return &snap, nil
}

// syncDir fsyncs a directory so renames and unlinks survive a power cut.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
