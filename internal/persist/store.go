// Package persist makes the streaming ingestion engine durable across
// process restarts: a write-ahead log of every submitted sample plus
// periodic snapshots of the engine's full cross-sample state, with a
// recovery path that restores the latest snapshot into a fresh
// stream.Engine and replays the unacknowledged WAL tail to reach the exact
// pre-crash state.
//
// The protocol, in one picture:
//
//	Submit(sample) ──► append to wal-<n>.log ──► Engine.SubmitSeq(seq)
//	                                                  │
//	                               collector acks seq once processed
//	                                                  │
//	Checkpoint() ──► Engine.ExportState()  (state + ack watermark, one lock)
//	             ──► snap-<seq>.snap       (tmp + fsync + rename)
//	             ──► rotate WAL segment, prune segments below the watermark
//
//	Open(dir) + Resume(ctx, eng) ──► RestoreState(latest snapshot)
//	                             ──► Start ──► re-SubmitSeq unacked tail
//
// Correctness leans on two engine properties: samples are logged before
// they are submitted (so the WAL is a superset of everything the engine
// ever saw), and the exported ack watermark is read under the same lock as
// the collector state (so "reflected in the snapshot" and "acknowledged"
// coincide exactly). Replayed tail entries that were in flight at the crash
// re-run their analysis; entries the snapshot already reflects are skipped
// by sequence number, never re-submitted, so counters stay exact. A torn
// final WAL frame (SIGKILL mid-write) is dropped on recovery — its sample
// was never submitted, because Submit only runs after the append returns.
//
// Durability is process-crash grade by default: appends reach the kernel
// before Submit returns, so SIGKILL loses nothing; only an OS crash or
// power cut can lose the un-fsynced tail (snapshots are always fsynced).
package persist

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"cryptomining/internal/model"
	"cryptomining/internal/obs"
	"cryptomining/internal/stream"
)

// Store is the durable companion of one stream.Engine. All methods are safe
// for concurrent use once Resume has returned.
type Store struct {
	dir string

	mu      sync.Mutex
	eng     *stream.Engine
	nextSeq uint64
	cur     *os.File // active WAL segment, open for append
	curPath string
	// curSize mirrors the active segment's size so the append rollback
	// offset is known without a per-submission fstat.
	curSize int64
	// lock holds the flock on the data directory for the store's lifetime.
	lock *os.File
	// failed poisons the store when a partial append could not be rolled
	// back: the active segment then ends in garbage, and appending valid
	// frames after it would make recovery silently drop them.
	failed bool

	// ckptMu serializes whole checkpoints, so the expensive encode+fsync
	// can run outside mu without two checkpoints interleaving.
	ckptMu sync.Mutex

	// Recovery inputs, loaded by Open and consumed by Resume.
	snap    *snapshotFile
	pending []walRecord
	resumed bool

	// log is the store's component logger (never nil; silent by default).
	// met is the registered instrument set, nil when metrics are disabled.
	log *slog.Logger
	met *storeMetrics
}

// Option configures a Store at Open time.
type Option func(*Store)

// WithMetrics makes the store register and maintain its durability metrics
// (WAL append/fsync latency, segment counts, checkpoint duration and size)
// in the registry.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Store) {
		if reg == nil {
			return
		}
		s.met = newStoreMetrics(reg, s)
	}
}

// WithLogger routes the store's structured logs (recovery summary, replay
// progress, checkpoints, append failures) to lg, scoped component=persist.
func WithLogger(lg *slog.Logger) Option {
	return func(s *Store) { s.log = obs.Component(lg, "persist") }
}

// storeMetrics is the store's registered instrument set.
type storeMetrics struct {
	appendLat *obs.Histogram
	fsyncLat  *obs.Histogram
	ckptLat   *obs.Histogram
	ckptBytes *obs.Histogram
	ckpts     *obs.Counter
}

func newStoreMetrics(reg *obs.Registry, s *Store) *storeMetrics {
	m := &storeMetrics{
		appendLat: reg.Histogram("persist_wal_append_seconds",
			"Latency of one WAL frame append (encode + write).", obs.LatencyBuckets),
		fsyncLat: reg.Histogram("persist_wal_fsync_seconds",
			"Latency of one fsync of the active WAL segment.", obs.LatencyBuckets),
		ckptLat: reg.Histogram("persist_checkpoint_seconds",
			"End-to-end duration of one checkpoint (export, encode, fsync, rotate, prune).",
			obs.LatencyBuckets),
		ckptBytes: reg.Histogram("persist_checkpoint_bytes",
			"Size of written snapshot files.", obs.SizeBuckets),
		ckpts: reg.Counter("persist_checkpoints_total",
			"Checkpoints completed successfully."),
	}
	reg.CounterFunc("persist_wal_logged_total",
		"Submissions ever logged to the write-ahead log.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.nextSeq - 1)
		})
	reg.GaugeFunc("persist_wal_segments",
		"WAL segment files currently on disk.",
		func() float64 {
			firsts, err := listSegments(s.dir)
			if err != nil {
				return 0
			}
			return float64(len(firsts))
		})
	reg.GaugeFunc("persist_wal_active_segment_bytes",
		"Size of the active WAL segment.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.curSize)
		})
	reg.GaugeFunc("persist_snapshots",
		"Snapshot files currently on disk.",
		func() float64 {
			seqs, err := listSnapshots(s.dir)
			if err != nil {
				return 0
			}
			return float64(len(seqs))
		})
	return m
}

// ResumeInfo reports what recovery found and did.
type ResumeInfo struct {
	// Resumed is true when prior state (snapshot or WAL entries) existed.
	Resumed bool
	// SnapshotSeq is the sequence watermark of the restored snapshot (0 if
	// none existed).
	SnapshotSeq uint64
	// Replayed counts WAL tail entries re-submitted into the engine.
	Replayed int
	// Logged is the total number of submissions ever logged; with a
	// deterministic feed it doubles as the resume cursor.
	Logged uint64
}

// CheckpointInfo reports one completed checkpoint.
type CheckpointInfo struct {
	// Path is the snapshot file written.
	Path string `json:"path"`
	// Bytes is its size.
	Bytes int64 `json:"bytes"`
	// Logged is the number of submissions logged so far.
	Logged uint64 `json:"logged"`
	// Processed is the number of submissions the snapshot fully reflects;
	// Logged - Processed entries remain WAL-replayable.
	Processed uint64 `json:"processed"`
}

// Open prepares a data directory: loads the newest valid snapshot, scans
// the WAL segments (truncating a torn tail), and opens the active segment
// for append. Call Resume next to load the state into an engine.
func Open(dir string, opts ...Option) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, nextSeq: 1, log: obs.NopLogger()}
	for _, opt := range opts {
		opt(s)
	}

	// One store per data directory: a second process appending to the same
	// WAL would interleave duplicate sequence numbers and corrupt recovery.
	// flock (not a pid file) so the lock dies with the process — a SIGKILLed
	// owner must not block the restart that recovers its state.
	lock, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("persist: data dir %s is in use by another process: %w", dir, err)
	}
	s.lock = lock
	ok := false
	defer func() {
		if !ok {
			syscall.Flock(int(lock.Fd()), syscall.LOCK_UN)
			lock.Close()
		}
	}()

	if err := s.loadLatestSnapshot(); err != nil {
		return nil, err
	}
	if s.snap != nil {
		s.nextSeq = s.snap.NextSeq
		st := s.snap.State
		if st.AckLow > s.nextSeq {
			s.nextSeq = st.AckLow
		}
		for _, seq := range st.AckAbove {
			if seq >= s.nextSeq {
				s.nextSeq = seq + 1
			}
		}
	}

	// Entries the snapshot already reflects are dropped at read time: after
	// a checkpoint most of the retained WAL is below the watermark, and
	// holding those sample bodies until Resume would waste memory.
	ackLow := uint64(1)
	ackAbove := map[uint64]bool{}
	if s.snap != nil {
		if s.snap.State.AckLow > 0 {
			ackLow = s.snap.State.AckLow
		}
		for _, seq := range s.snap.State.AckAbove {
			ackAbove[seq] = true
		}
	}

	firsts, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, first := range firsts {
		path := segmentPath(dir, first)
		recs, validEnd, err := readSegment(path)
		if err != nil {
			return nil, fmt.Errorf("persist: read %s: %w", path, err)
		}
		if i == len(firsts)-1 {
			// Active segment: drop a torn tail so new frames never follow
			// garbage.
			if err := os.Truncate(path, validEnd); err != nil {
				return nil, err
			}
			s.curSize = validEnd
		}
		for _, rec := range recs {
			if rec.Seq >= s.nextSeq {
				s.nextSeq = rec.Seq + 1
			}
			if rec.Seq < ackLow || ackAbove[rec.Seq] {
				continue
			}
			s.pending = append(s.pending, rec)
		}
	}

	if len(firsts) > 0 {
		s.curPath = segmentPath(dir, firsts[len(firsts)-1])
		s.cur, err = os.OpenFile(s.curPath, os.O_WRONLY|os.O_APPEND, 0o644)
	} else {
		s.curPath = segmentPath(dir, s.nextSeq)
		s.cur, err = os.Create(s.curPath)
	}
	if err != nil {
		return nil, err
	}
	ok = true
	snapSeq := uint64(0)
	if s.snap != nil {
		snapSeq = s.snap.NextSeq
	}
	s.log.Info("opened data directory",
		"dir", dir, "snapshot_seq", snapSeq,
		"pending_replay", len(s.pending), "next_seq", s.nextSeq)
	return s, nil
}

// loadLatestSnapshot loads the newest decodable snapshot, skipping (and
// logging through the error path of) corrupt ones, and clears stray .tmp
// files from interrupted writes.
func (s *Store) loadLatestSnapshot() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		if name := ent.Name(); strings.HasSuffix(name, tmpSuffix) {
			_ = os.Remove(filepath.Join(s.dir, name))
		}
	}
	seqs, err := listSnapshots(s.dir)
	if err != nil {
		return err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		snap, err := loadSnapshot(snapshotPath(s.dir, seqs[i]))
		if err == nil {
			s.snap = snap
			return nil
		}
		if i == 0 {
			// No snapshot decodes at all: recovery can still replay the
			// full WAL into an empty engine, unless the WAL was already
			// pruned against one of these snapshots — then state is gone
			// and pretending otherwise would silently drop samples.
			if firsts, ferr := listSegments(s.dir); ferr == nil && (len(firsts) == 0 || firsts[0] > 1) {
				return fmt.Errorf("persist: no readable snapshot and WAL starts past seq 1: %w", err)
			}
		}
	}
	return nil
}

// Resume loads the recovered state into a fresh, unstarted engine, starts
// it with ctx, and replays the unacknowledged WAL tail. It must be called
// exactly once, before Submit or Checkpoint; with an empty data directory
// it simply starts the engine.
func (s *Store) Resume(ctx context.Context, eng *stream.Engine) (ResumeInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.resumed {
		return ResumeInfo{}, errors.New("persist: Resume called twice")
	}

	info := ResumeInfo{Logged: s.nextSeq - 1}
	if s.snap != nil {
		if err := eng.RestoreState(s.snap.State); err != nil {
			return ResumeInfo{}, err
		}
		info.Resumed = true
		info.SnapshotSeq = s.snap.NextSeq
	}
	eng.Start(ctx)

	// pending holds exactly the tail the snapshot does not reflect — Open
	// filtered acked entries against the snapshot's watermark at read time.
	for i := range s.pending {
		rec := &s.pending[i]
		sample := rec.Sample
		if err := eng.SubmitSeq(ctx, &sample, rec.Seq); err != nil {
			return ResumeInfo{}, fmt.Errorf("persist: replay seq %d: %w", rec.Seq, err)
		}
		info.Replayed++
	}
	if info.Replayed > 0 {
		info.Resumed = true
	}

	s.pending = nil
	s.snap = nil
	s.eng = eng
	s.resumed = true
	s.log.Info("resumed engine",
		"resumed", info.Resumed, "snapshot_seq", info.SnapshotSeq,
		"replayed", info.Replayed, "logged", info.Logged)
	return info, nil
}

// Submit logs one sample to the WAL and then feeds it to the engine. The
// append completes (reaches the kernel) before the engine sees the sample,
// which is the write-ahead property recovery depends on.
func (s *Store) Submit(ctx context.Context, sample *model.Sample) error {
	s.mu.Lock()
	if !s.resumed {
		s.mu.Unlock()
		return errors.New("persist: Submit before Resume")
	}
	if s.failed {
		s.mu.Unlock()
		return errors.New("persist: store failed (unrecoverable partial WAL write)")
	}
	seq := s.nextSeq
	var t0 time.Time
	if s.met != nil {
		t0 = time.Now() //cryptolint:allow directclock WAL append latency telemetry only
	}
	n, err := appendFrame(s.cur, &walRecord{Seq: seq, Sample: *sample})
	if err != nil {
		// Roll the segment back to the pre-write size: a partial frame left
		// in place would make recovery silently drop every later frame. If
		// even the rollback fails, poison the store rather than risk it.
		if terr := s.cur.Truncate(s.curSize); terr != nil {
			s.failed = true
		}
		s.mu.Unlock()
		s.log.Error("wal append failed", "seq", seq, "err", err, "poisoned", s.failed)
		return err
	}
	if s.met != nil {
		s.met.appendLat.Observe(time.Since(t0).Seconds()) //cryptolint:allow directclock WAL append latency telemetry only
	}
	s.curSize += int64(n)
	s.nextSeq++
	eng := s.eng
	s.mu.Unlock()
	// Submit outside the lock: backpressure may block here, and checkpoints
	// must stay possible meanwhile.
	return eng.SubmitSeq(ctx, sample, seq)
}

// Checkpoint exports the engine state, persists it as the new snapshot,
// rotates the WAL segment and prunes everything the snapshot supersedes.
// Safe to call at any time, including mid-ingestion: the expensive
// encode+fsync runs without holding the submission lock, so ingestion keeps
// flowing while the snapshot is written (anything logged meanwhile simply
// lands above the snapshot's watermark and stays WAL-replayable).
func (s *Store) Checkpoint() (CheckpointInfo, error) {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	var ckptStart time.Time
	if s.met != nil {
		ckptStart = time.Now() //cryptolint:allow directclock checkpoint latency telemetry only
	}

	s.mu.Lock()
	if !s.resumed {
		s.mu.Unlock()
		return CheckpointInfo{}, errors.New("persist: Checkpoint before Resume")
	}
	if s.failed {
		s.mu.Unlock()
		return CheckpointInfo{}, errors.New("persist: store failed (unrecoverable partial WAL write)")
	}
	eng := s.eng
	seq := s.nextSeq
	if err := s.syncActive(); err != nil {
		s.mu.Unlock()
		return CheckpointInfo{}, err
	}
	s.mu.Unlock()

	st := eng.ExportState()
	path, size, err := writeSnapshot(s.dir, seq, st)
	if err != nil {
		return CheckpointInfo{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Rotate so future appends land past the snapshot; skip when the active
	// segment is already the rotation target (no appends since last time).
	if newPath := segmentPath(s.dir, s.nextSeq); newPath != s.curPath {
		if err := s.cur.Close(); err != nil {
			return CheckpointInfo{}, err
		}
		f, err := os.Create(newPath)
		if err != nil {
			return CheckpointInfo{}, err
		}
		s.cur, s.curPath, s.curSize = f, newPath, 0
	}
	s.prune(st.AckLow)

	info := CheckpointInfo{
		Path:      path,
		Bytes:     size,
		Logged:    seq - 1,
		Processed: st.AckLow - 1 + uint64(len(st.AckAbove)),
	}
	if s.met != nil {
		s.met.ckptLat.Observe(time.Since(ckptStart).Seconds()) //cryptolint:allow directclock checkpoint latency telemetry only
		s.met.ckptBytes.Observe(float64(size))
		s.met.ckpts.Inc()
	}
	s.log.Info("checkpoint written",
		"path", info.Path, "bytes", info.Bytes,
		"logged", info.Logged, "processed", info.Processed)
	return info, nil
}

// syncActive fsyncs the active segment, timing the sync when metrics are
// enabled. Caller must hold s.mu.
func (s *Store) syncActive() error {
	if s.met == nil {
		return s.cur.Sync()
	}
	t0 := time.Now() //cryptolint:allow directclock fsync latency telemetry only
	err := s.cur.Sync()
	s.met.fsyncLat.Observe(time.Since(t0).Seconds()) //cryptolint:allow directclock fsync latency telemetry only
	return err
}

// prune removes snapshots older than the newest and WAL segments whose
// entries all lie below the ack watermark. Best-effort: a leftover file is
// harmless (recovery picks the newest snapshot and skips acked entries).
func (s *Store) prune(ackLow uint64) {
	if seqs, err := listSnapshots(s.dir); err == nil {
		for _, seq := range seqs[:max(len(seqs)-1, 0)] {
			_ = os.Remove(snapshotPath(s.dir, seq))
		}
	}
	firsts, err := listSegments(s.dir)
	if err != nil {
		return
	}
	for i := 0; i+1 < len(firsts); i++ {
		path := segmentPath(s.dir, firsts[i])
		// All entries of segment i are below the next segment's first
		// sequence; prunable once the watermark has passed every one.
		if firsts[i+1] <= ackLow && path != s.curPath {
			_ = os.Remove(path)
		}
	}
	syncDir(s.dir)
}

// Logged returns how many submissions have been logged so far. With a
// deterministic feed this is the cursor from which to continue after
// Resume.
func (s *Store) Logged() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextSeq - 1
}

// Close syncs and closes the active WAL segment. It does not checkpoint;
// callers wanting a fresh snapshot should Checkpoint first.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur == nil {
		return nil
	}
	err := s.syncActive()
	if cerr := s.cur.Close(); err == nil {
		err = cerr
	}
	s.cur = nil
	if s.lock != nil {
		_ = syscall.Flock(int(s.lock.Fd()), syscall.LOCK_UN)
		_ = s.lock.Close()
		s.lock = nil
	}
	return err
}
