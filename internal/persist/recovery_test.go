package persist_test

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/model"
	"cryptomining/internal/persist"
	"cryptomining/internal/stream"
)

// feedOrder returns the corpus hashes in the seed-deterministic shuffled
// order every run of a test universe uses.
func feedOrder(u *ecosim.Universe, seed int64) []string {
	hashes := u.Corpus.Hashes()
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(hashes), func(i, j int) { hashes[i], hashes[j] = hashes[j], hashes[i] })
	return hashes
}

func streamCfg(u *ecosim.Universe, shards int) stream.Config {
	cfg := core.NewFromUniverse(u).StreamConfig()
	cfg.Shards = shards
	cfg.QueueDepth = 8
	return cfg
}

// runClean ingests the whole feed through a plain (non-persistent) engine.
func runClean(t *testing.T, u *ecosim.Universe, hashes []string, shards int) *stream.Results {
	t.Helper()
	eng := stream.New(streamCfg(u, shards))
	ctx := context.Background()
	eng.Start(ctx)
	for _, h := range hashes {
		s, _ := u.Corpus.Get(h)
		if err := eng.Submit(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertResultsIdentical requires bit-identical final results: same
// outcomes, records, campaign partition (IDs, membership, enrichment,
// profit) and headline totals.
func assertResultsIdentical(t *testing.T, got, want *stream.Results) {
	t.Helper()
	if len(got.Outcomes) != len(want.Outcomes) {
		t.Fatalf("outcomes: %d vs %d", len(got.Outcomes), len(want.Outcomes))
	}
	for h, wo := range want.Outcomes {
		go_, ok := got.Outcomes[h]
		if !ok {
			t.Fatalf("outcome %s missing", model.ShortHash(h))
		}
		if !reflect.DeepEqual(*go_, *wo) {
			t.Fatalf("outcome %s differs:\ngot  %+v\nwant %+v", model.ShortHash(h), *go_, *wo)
		}
	}
	if !reflect.DeepEqual(got.Records, want.Records) ||
		!reflect.DeepEqual(got.MinerRecords, want.MinerRecords) ||
		!reflect.DeepEqual(got.AncillaryRecords, want.AncillaryRecords) {
		t.Fatalf("records differ: %d/%d/%d vs %d/%d/%d",
			len(got.Records), len(got.MinerRecords), len(got.AncillaryRecords),
			len(want.Records), len(want.MinerRecords), len(want.AncillaryRecords))
	}
	if len(got.Campaigns) != len(want.Campaigns) {
		t.Fatalf("campaigns: %d vs %d", len(got.Campaigns), len(want.Campaigns))
	}
	for i := range want.Campaigns {
		if !reflect.DeepEqual(*got.Campaigns[i], *want.Campaigns[i]) {
			t.Fatalf("campaign C#%d differs:\ngot  %+v\nwant %+v",
				want.Campaigns[i].ID, *got.Campaigns[i], *want.Campaigns[i])
		}
	}
	if !reflect.DeepEqual(got.Profits, want.Profits) {
		t.Fatalf("profits differ (%d vs %d entries)", len(got.Profits), len(want.Profits))
	}
	if got.Identifiers != want.Identifiers ||
		got.TotalXMR != want.TotalXMR || got.TotalUSD != want.TotalUSD ||
		got.CirculationShare != want.CirculationShare {
		t.Fatalf("headline figures differ: %d/%.10f/%.10f/%v vs %d/%.10f/%.10f/%v",
			got.Identifiers, got.TotalXMR, got.TotalUSD, got.CirculationShare,
			want.Identifiers, want.TotalXMR, want.TotalUSD, want.CirculationShare)
	}
	if !reflect.DeepEqual(got.CountsBySource, want.CountsBySource) ||
		!reflect.DeepEqual(got.CountsByResource, want.CountsByResource) {
		t.Fatal("source/resource counts differ")
	}
	if got.Aggregation.DonationWalletsSkipped != want.Aggregation.DonationWalletsSkipped {
		t.Fatal("donation skip counts differ")
	}
	if got.Aggregation.Graph.NodeCount() != want.Aggregation.Graph.NodeCount() ||
		got.Aggregation.Graph.EdgeCount() != want.Aggregation.Graph.EdgeCount() {
		t.Fatal("aggregation graphs differ")
	}
}

// TestCrashRestoreEquivalence is the acceptance test of the persistence
// subsystem: ingestion is interrupted at arbitrary points (checkpoints
// landing mid-prefix, submissions continuing past the last checkpoint so
// the WAL tail is non-empty, engine abandoned without Finish — a simulated
// crash), then resumed into a fresh engine from disk. The resumed run's
// final results must be bit-identical to an uninterrupted run, across cut
// points and shard counts, including a restore into a different shard
// count. Run under -race this doubles as the concurrency soak of the
// export-under-mutex path.
func TestCrashRestoreEquivalence(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig().Scale(0.3))
	const feedSeed = 11
	hashes := feedOrder(u, feedSeed)
	n := len(hashes)
	want := runClean(t, u, hashes, 4)

	cases := []struct {
		name                 string
		cutFrac              float64 // crash after this fraction of the feed
		ckptFracs            []float64
		shardsBefore, shards int
	}{
		{"early-cut", 0.25, []float64{0.15}, 3, 3},
		{"mid-cut-two-checkpoints", 0.6, []float64{0.2, 0.45}, 8, 8},
		{"no-checkpoint-wal-only", 0.3, nil, 4, 4},
		{"cut-at-end", 1.0, []float64{0.5}, 4, 4},
		{"reshard-on-restore", 0.5, []float64{0.35}, 2, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cut := int(tc.cutFrac * float64(n))
			ckpts := map[int]bool{}
			for _, f := range tc.ckptFracs {
				ckpts[int(f*float64(n))] = true
			}

			// Phase 1: the run that will "crash". No Finish, no final
			// checkpoint — the context is cancelled with work in flight.
			ctx1, cancel1 := context.WithCancel(context.Background())
			eng1 := stream.New(streamCfg(u, tc.shardsBefore))
			st1, err := persist.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st1.Resume(ctx1, eng1); err != nil {
				t.Fatal(err)
			}
			for i, h := range hashes[:cut] {
				if ckpts[i] {
					if _, err := st1.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
				s, _ := u.Corpus.Get(h)
				if err := st1.Submit(ctx1, s); err != nil {
					t.Fatal(err)
				}
			}
			cancel1() // crash: abandon the engine mid-flight
			if err := st1.Close(); err != nil {
				t.Fatal(err)
			}

			// Phase 2: recover into a fresh engine and finish the feed.
			ctx := context.Background()
			eng2 := stream.New(streamCfg(u, tc.shards))
			st2, err := persist.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			info, err := st2.Resume(ctx, eng2)
			if err != nil {
				t.Fatal(err)
			}
			if cut > 0 && !info.Resumed {
				t.Fatal("prior state not detected")
			}
			if got, want := info.Logged, uint64(cut); got != want {
				t.Fatalf("resume cursor %d, want %d", got, want)
			}
			for _, h := range hashes[cut:] {
				s, _ := u.Corpus.Get(h)
				if err := st2.Submit(ctx, s); err != nil {
					t.Fatal(err)
				}
			}
			got, err := eng2.Finish(ctx)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsIdentical(t, got, want)
		})
	}
}

// TestResumeFreshDirAndFullCycle covers the trivial recovery paths: a fresh
// directory starts clean, and a directory checkpointed after a completed
// drain resumes straight into the finished state with nothing to replay or
// re-analyze.
func TestResumeFreshDirAndFullCycle(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig().Scale(0.2))
	const feedSeed = 5
	hashes := feedOrder(u, feedSeed)
	want := runClean(t, u, hashes, 4)
	dir := t.TempDir()
	ctx := context.Background()

	st, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := stream.New(streamCfg(u, 4))
	info, err := st.Resume(ctx, eng)
	if err != nil {
		t.Fatal(err)
	}
	if info.Resumed || info.Logged != 0 || info.Replayed != 0 {
		t.Fatalf("fresh dir reported prior state: %+v", info)
	}
	for _, h := range hashes {
		s, _ := u.Corpus.Get(h)
		if err := st.Submit(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	first, err := eng.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, first, want)
	if _, err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Reboot: everything is in the snapshot, nothing to replay.
	st2, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	eng2 := stream.New(streamCfg(u, 4))
	info, err = st2.Resume(ctx, eng2)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Resumed || info.Replayed != 0 || info.Logged != uint64(len(hashes)) {
		t.Fatalf("full-cycle resume: %+v", info)
	}
	again, err := eng2.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, again, want)

	// The analysis counters must span the restart, not reset.
	if got := eng2.Stats(); got.Analyzed != int64(u.Corpus.Len()) || got.Submitted != int64(len(hashes)) {
		t.Fatalf("restored stats lost history: analyzed %d submitted %d (corpus %d)",
			got.Analyzed, got.Submitted, u.Corpus.Len())
	}
}

// TestTornWALTailSurvivesRestart appends garbage to the active segment (a
// torn frame from a SIGKILL mid-write) and verifies recovery drops it and
// keeps appending cleanly.
func TestTornWALTailSurvivesRestart(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig().Scale(0.2))
	const feedSeed = 9
	hashes := feedOrder(u, feedSeed)
	want := runClean(t, u, hashes, 4)
	dir := t.TempDir()
	ctx1, cancel1 := context.WithCancel(context.Background())

	st, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := stream.New(streamCfg(u, 4))
	if _, err := st.Resume(ctx1, eng); err != nil {
		t.Fatal(err)
	}
	cut := len(hashes) / 2
	for i, h := range hashes[:cut] {
		if i == cut/2 {
			if _, err := st.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		s, _ := u.Corpus.Get(h)
		if err := st.Submit(ctx1, s); err != nil {
			t.Fatal(err)
		}
	}
	cancel1()
	st.Close()

	// Tear the tail of the newest WAL segment.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x2a, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ctx := context.Background()
	st2, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	eng2 := stream.New(streamCfg(u, 4))
	info, err := st2.Resume(ctx, eng2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Logged != uint64(cut) {
		t.Fatalf("torn tail changed the cursor: %d, want %d", info.Logged, cut)
	}
	for _, h := range hashes[cut:] {
		s, _ := u.Corpus.Get(h)
		if err := st2.Submit(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	got, err := eng2.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, got, want)
}

// TestOpenLocksDataDir guards against two processes sharing one data
// directory: the second Open must fail while the first store is live, and
// succeed after it is closed (the flock dies with the owner, so a SIGKILLed
// process never wedges its own restart).
func TestOpenLocksDataDir(t *testing.T) {
	dir := t.TempDir()
	st, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := persist.Open(dir); err == nil {
		t.Fatal("second Open of a live data dir must fail")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := persist.Open(dir)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	st2.Close()
}

// TestStoreMisuseGuards covers the lifecycle errors.
func TestStoreMisuseGuards(t *testing.T) {
	dir := t.TempDir()
	st, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := context.Background()
	if err := st.Submit(ctx, &model.Sample{SHA256: strings.Repeat("a", 64)}); err == nil {
		t.Fatal("Submit before Resume must fail")
	}
	if _, err := st.Checkpoint(); err == nil {
		t.Fatal("Checkpoint before Resume must fail")
	}
	eng := stream.New(stream.Config{Shards: 1})
	if _, err := st.Resume(ctx, eng); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Resume(ctx, eng); err == nil {
		t.Fatal("second Resume must fail")
	}
}
