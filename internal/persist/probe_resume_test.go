package persist_test

import (
	"context"
	"testing"
	"time"

	"cryptomining/internal/ecosim"
	"cryptomining/internal/persist"
	"cryptomining/internal/probe"
	"cryptomining/internal/stream"
)

// waitAbsorbed polls until the collector has absorbed n submissions and the
// dataflow is empty.
func waitAbsorbed(t *testing.T, eng *stream.Engine, n int64) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := eng.Stats()
		if st.Analyzed+st.Duplicates >= n && st.Backpressure == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("dataflow never absorbed %d samples (analyzed=%d dup=%d bp=%d)",
				n, st.Analyzed, st.Duplicates, st.Backpressure)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestProbeCacheCheckpointRoundTrip is the probe-persistence acceptance: the
// wallet-probe cache rides in checkpoints, and a restart mid-convergence
// re-probes only the wallets whose TTL has expired — never the whole set —
// then still finishes with results bit-identical to an uninterrupted run.
//
// The timeline (driven by fake clocks so TTL arithmetic is exact):
//
//	t0        wave 1: first half of the feed ingested, probes converge
//	t0+40m    wave 2: rest of the feed ingested, probes converge; checkpoint;
//	          process "crashes" (no Finish)
//	t0+70m    restart with TTL=1h: wave-1 entries are 70m old (stale),
//	          wave-2 entries 30m old (fresh) — exactly wave 1 re-probes
func TestProbeCacheCheckpointRoundTrip(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig().Scale(0.4))
	const feedSeed = 11
	hashes := feedOrder(u, feedSeed)
	clean := runClean(t, u, hashes, 2)

	dir := t.TempDir()
	t0 := time.Date(2019, 4, 30, 0, 0, 0, 0, time.UTC)
	ctx := context.Background()

	// --- first process: two ingestion waves, then a crash after checkpoint.
	clk1 := probe.NewFakeClock(t0)
	cfg1 := streamCfg(u, 2)
	prober1 := probe.New(probe.Config{
		Source:  probe.NewDirectorySource(cfg1.Pools, cfg1.QueryTime),
		Workers: 4,
		TTL:     time.Hour,
		Clock:   clk1,
	})
	cfg1.Prober = prober1
	eng1 := stream.New(cfg1)
	st1, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st1.Resume(ctx, eng1); err != nil {
		t.Fatal(err)
	}
	prober1.Start(ctx)

	submit := func(from, to int) {
		for _, h := range hashes[from:to] {
			s, _ := u.Corpus.Get(h)
			if err := st1.Submit(ctx, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	half := len(hashes) / 2
	submit(0, half)
	waitAbsorbed(t, eng1, int64(half))
	if err := prober1.WaitConverged(ctx); err != nil {
		t.Fatal(err)
	}
	wave1 := map[string]bool{}
	for _, e := range prober1.ExportCache().Entries {
		wave1[e.Wallet] = true
	}
	if len(wave1) == 0 {
		t.Fatal("wave 1 probed no wallets; fixture too small")
	}

	clk1.Advance(40 * time.Minute)
	submit(half, len(hashes))
	waitAbsorbed(t, eng1, int64(len(hashes)))
	if err := prober1.WaitConverged(ctx); err != nil {
		t.Fatal(err)
	}
	allEntries := prober1.ExportCache().Entries
	wave2 := map[string]int64{}
	for _, e := range allEntries {
		if !wave1[e.Wallet] {
			wave2[e.Wallet] = e.FetchedAtUnixNano
		}
	}
	if len(wave2) == 0 {
		t.Fatal("wave 2 probed no new wallets; pick a different feed seed")
	}

	if _, err := st1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Crash: close the store, abandon the engine without Finish.
	prober1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// --- second process, 30 minutes after the second wave.
	clk2 := probe.NewFakeClock(t0.Add(70 * time.Minute))
	cfg2 := streamCfg(u, 2)
	prober2 := probe.New(probe.Config{
		Source:  probe.NewDirectorySource(cfg2.Pools, cfg2.QueryTime),
		Workers: 4,
		TTL:     time.Hour,
		Clock:   clk2,
	})
	cfg2.Prober = prober2
	eng2 := stream.New(cfg2)
	st2, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	info, err := st2.Resume(ctx, eng2)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Resumed {
		t.Fatal("second process did not resume from the checkpoint")
	}
	prober2.Start(ctx)
	defer prober2.Close()
	if err := prober2.WaitConverged(ctx); err != nil {
		t.Fatal(err)
	}

	// Exactly the TTL-expired wave re-probed: every wave-1 wallet once,
	// nothing else.
	if got, want := prober2.Stats().Completed, uint64(len(wave1)); got != want {
		t.Fatalf("restart re-probed %d wallets, want %d (the TTL-expired wave)", got, want)
	}
	for w, fetched := range wave2 {
		ent, ok := prober2.Peek(w)
		if !ok {
			t.Fatalf("fresh wallet %s missing after restore", w)
		}
		if ent.FetchedAt.UnixNano() != fetched {
			t.Fatalf("fresh wallet %s was re-probed (fetchedAt %v -> %v)", w, fetched, ent.FetchedAt.UnixNano())
		}
	}
	for w := range wave1 {
		ent, ok := prober2.Peek(w)
		if !ok {
			t.Fatalf("stale wallet %s missing after restore", w)
		}
		if got := ent.FetchedAt; !got.Equal(clk2.Now()) {
			t.Fatalf("stale wallet %s not re-probed (fetchedAt %v)", w, got)
		}
	}

	// And the resumed run still finishes bit-identical to an uninterrupted
	// one.
	res, err := eng2.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, res, clean)
}
