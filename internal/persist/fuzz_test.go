package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"
	"testing"

	"cryptomining/internal/model"
)

// encodeFrames builds a well-formed segment stream from records, mirroring
// appendFrame's wire format without needing a file. Encoding a walRecord
// cannot fail (all fields are gob-encodable), so errors panic.
func encodeFrames(recs ...walRecord) []byte {
	var out bytes.Buffer
	for i := range recs {
		var payload bytes.Buffer
		if err := gob.NewEncoder(&payload).Encode(&recs[i]); err != nil {
			panic(err)
		}
		var hdr [frameHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload.Bytes()))
		out.Write(hdr[:])
		out.Write(payload.Bytes())
	}
	return out.Bytes()
}

// FuzzWALFrames drives the frame decoder with arbitrary byte streams and
// checks its safety contract: never panic, never claim a valid prefix longer
// than the input, and always re-decode its own valid prefix to the same
// records (truncating at validEnd must be idempotent — that is what the
// torn-tail recovery path relies on).
func FuzzWALFrames(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeFrames(walRecord{Seq: 1, Sample: model.Sample{SHA256: "aa", Content: []byte("x")}}))
	two := encodeFrames(
		walRecord{Seq: 7, Sample: model.Sample{SHA256: "bb"}},
		walRecord{Seq: 8, Sample: model.Sample{SHA256: "cc", ITWURLs: []string{"http://x"}}})
	f.Add(two)
	f.Add(two[:len(two)-3])                               // torn tail
	f.Add(append([]byte{0, 0, 0, 0, 0, 0, 0, 0}, two...)) // zero-length frame terminates
	huge := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(huge[0:4], maxFramePayload+1)
	f.Add(huge) // oversized length claim

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validEnd := readFrames(bytes.NewReader(data))
		if validEnd < 0 || validEnd > int64(len(data)) {
			t.Fatalf("validEnd %d out of range for %d input bytes", validEnd, len(data))
		}
		again, againEnd := readFrames(bytes.NewReader(data[:validEnd]))
		if againEnd != validEnd {
			t.Fatalf("re-decoding the valid prefix moved validEnd: %d != %d", againEnd, validEnd)
		}
		if len(again) != len(recs) {
			t.Fatalf("re-decoding the valid prefix yielded %d records, first pass %d", len(again), len(recs))
		}
		for i := range recs {
			if recs[i].Seq != again[i].Seq || recs[i].Sample.SHA256 != again[i].Sample.SHA256 {
				t.Fatalf("record %d differs between decodes", i)
			}
		}
	})
}
