package ecosim

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cryptomining/internal/avsim"
	"cryptomining/internal/binfmt"
	"cryptomining/internal/model"
	"cryptomining/internal/osint"
	"cryptomining/internal/pow"
	"cryptomining/internal/spec"
)

// hostingSites are the public-hosting domains of Table VI plus criminal-run
// hosts; weights skew toward GitHub as the paper observes.
var hostingSites = []struct {
	host   string
	public bool
	weight float64
}{
	{"github.com", true, 0.22},
	{"s3.amazonaws.com", true, 0.12},
	{"www.weebly.com", true, 0.09},
	{"drive.google.com", true, 0.06},
	{"hrtests.ru", false, 0.05},
	{"cdn.discordapp.com", true, 0.05},
	{"a.cuntflaps.me", false, 0.04},
	{"file-5.ru", false, 0.04},
	{"telekomtv-internet.ro", false, 0.04},
	{"mondoconnx.com", false, 0.03},
	{"dropbox.com", true, 0.03},
	{"4sync.com", true, 0.03},
	{"goo.gl", true, 0.03},
	{"b-tor.ru", false, 0.03},
	{"bitbucket.org", true, 0.02},
	{"pack.1e5.com", false, 0.02},
	{"mysuperproga.com", false, 0.02},
	{"store4.up-00.com", false, 0.02},
	{"4i7i.com", false, 0.02},
	{"bluefile.biz", false, 0.02},
	{"directxex.com", false, 0.02},
}

// packerChoices follow the Table X distribution: UPX dominates, most samples
// are not packed at all.
var packerChoices = []struct {
	name   string
	weight float64
}{
	{"", 0.62}, // not packed
	{"UPX", 0.24},
	{"NSIS", 0.05},
	{"maxorder", 0.02},
	{"SFX", 0.02},
	{"INNO", 0.015},
	{"Enigma", 0.01},
	{"ASPack", 0.01},
	{"Themida", 0.005},
	{"MPRESS", 0.01},
}

func (g *generator) pickHosting() (host string, public bool) {
	r := g.rng.Float64()
	cum := 0.0
	for _, h := range hostingSites {
		cum += h.weight
		if r < cum {
			return h.host, h.public
		}
	}
	last := hostingSites[len(hostingSites)-1]
	return last.host, last.public
}

func (g *generator) pickPacker() string {
	r := g.rng.Float64()
	cum := 0.0
	for _, p := range packerChoices {
		cum += p.weight
		if r < cum {
			return p.name
		}
	}
	return ""
}

// generateCampaign fabricates one random campaign and all of its artefacts.
func (g *generator) generateCampaign(id int, currency model.Currency, forceStealthy bool) *GroundTruthCampaign {
	start, end := g.campaignWindow(currency)
	size := g.campaignSizeProfile()
	c := &GroundTruthCampaign{
		ID:               id,
		Name:             fmt.Sprintf("campaign-%04d", id),
		Currency:         currency,
		BotnetSize:       size,
		Start:            start,
		End:              end,
		MaintainsUpdates: g.rng.Float64() < 0.28,
		Stealthy:         forceStealthy || g.rng.Float64() < 0.08,
	}

	// Wallet count: mostly one, occasionally several (bans force rotation).
	numWallets := 1
	switch v := g.rng.Float64(); {
	case v < 0.10:
		numWallets = 2 + g.rng.Intn(3)
	case v < 0.13:
		numWallets = 5 + g.rng.Intn(10)
	}
	for i := 0; i < numWallets; i++ {
		c.Wallets = append(c.Wallets, g.wallets.ForCurrency(currency))
	}

	// Infrastructure choices: more profitable (bigger) campaigns are more
	// likely to invest in third-party infrastructure, matching Table XI.
	bigness := float64(size) / 10000
	if bigness > 1 {
		bigness = 1
	}
	c.UsesCNAME = currency == model.CurrencyMonero && g.rng.Float64() < 0.01+0.30*bigness
	c.UsesProxy = g.rng.Float64() < 0.02+0.20*bigness
	c.UsesPPI = g.rng.Float64() < 0.05+0.35*bigness
	c.UsesStockTool = g.rng.Float64() < 0.18
	if c.UsesPPI {
		c.PPIBotnet = osint.KnownPPIBotnets[g.rng.Intn(len(osint.KnownPPIBotnets))]
	}
	if c.UsesStockTool {
		tools := []string{"xmrig", "claymore", "niceHash", "xmrig", "claymore", "xmrig", "learnMiner", "ccminer"}
		c.StockTool = tools[g.rng.Intn(len(tools))]
	}
	c.Packer = g.pickPacker()

	// A small number of campaigns correspond to publicly reported operations.
	if g.rng.Float64() < 0.02 {
		c.KnownOperation = osint.KnownOperations[g.rng.Intn(len(osint.KnownOperations))]
	}

	// Pool selection: 1-3 pools for Monero; larger campaigns use more pools.
	if currency == model.CurrencyMonero {
		nPools := 1
		if g.rng.Float64() < 0.35+0.4*bigness {
			nPools = 2
		}
		if g.rng.Float64() < 0.1+0.3*bigness {
			nPools = 3
		}
		seen := map[string]bool{}
		for len(c.Pools) < nPools {
			name, _ := g.pickPool()
			if !seen[name] {
				seen[name] = true
				c.Pools = append(c.Pools, name)
			}
		}
	} else if currency == model.CurrencyEmail {
		c.Pools = []string{"minergate"}
	}

	// CNAME alias registration.
	if c.UsesCNAME && len(c.Pools) > 0 {
		c.CNAMEDomain = fmt.Sprintf("xmr%d.%s", id, randomDomain(g.rng))
		_, poolDomain := g.poolStratumDomain(c.Pools[0])
		g.uni.Zone.AddCNAME(c.CNAMEDomain, poolDomain, start)
	}
	// Proxy endpoint.
	if c.UsesProxy {
		c.ProxyEndpoint = fmt.Sprintf("%d.%d.%d.%d:%d",
			45+g.rng.Intn(150), g.rng.Intn(255), g.rng.Intn(255), 1+g.rng.Intn(254), 3333+g.rng.Intn(5000))
	}

	// Known-operation IoCs.
	if c.KnownOperation != "" {
		iocDomain := strings.ToLower(c.KnownOperation) + fmt.Sprintf("-%d.c2.example", id)
		g.uni.OSINT.AddIoC(model.IoC{Type: model.IoCDomain, Value: iocDomain, Operation: c.KnownOperation, Source: "public report"})
		c.HostingURLs = append(c.HostingURLs, "http://"+iocDomain+"/payload.exe")
	}

	// Hosting URLs (one or two shared across the campaign's samples).
	nHosts := 1 + g.rng.Intn(2)
	for i := 0; i < nHosts; i++ {
		host, _ := g.pickHosting()
		c.HostingURLs = append(c.HostingURLs, fmt.Sprintf("http://%s/%s/%s.exe", host, c.Name, randomToken(g.rng, 6)))
	}

	g.materializeCampaign(c)
	g.simulateCampaignMining(c)
	g.uni.Campaigns = append(g.uni.Campaigns, c)
	return c
}

// poolStratumDomain returns (name, stratum domain) for a pool name.
func (g *generator) poolStratumDomain(name string) (string, string) {
	for _, wp := range g.poolWeights {
		if wp.name == name {
			return wp.name, wp.domain
		}
	}
	if p, ok := g.uni.Pools.Get(name); ok && len(p.Domains) > 0 {
		return name, p.Domains[len(p.Domains)-1]
	}
	return name, name + ".example"
}

// materializeCampaign fabricates the campaign's binary samples, droppers and
// feed records.
func (g *generator) materializeCampaign(c *GroundTruthCampaign) {
	// Sample count: heavy-tailed, correlated with botnet size but noisy.
	nSamples := 1 + g.rng.Intn(4)
	if c.BotnetSize > 150 {
		nSamples += g.rng.Intn(8)
	}
	if c.BotnetSize > 1500 {
		nSamples += 5 + g.rng.Intn(25)
	}
	// A dropper in front of ~40% of campaigns.
	var dropperHash string
	useDropper := g.rng.Float64() < 0.4
	stockToolHash := ""
	if c.UsesStockTool {
		// The campaign drops one of the known versions of its stock tool
		// (possibly a slightly modified fork).
		tools := g.uni.OSINT.StockTools()
		var candidates []osint.StockTool
		for _, t := range tools {
			if t.Name == c.StockTool {
				candidates = append(candidates, t)
			}
		}
		if len(candidates) > 0 {
			chosen := candidates[g.rng.Intn(len(candidates))]
			stockToolHash = chosen.SHA256
		}
	}

	for i := 0; i < nSamples; i++ {
		walletID := c.Wallets[g.rng.Intn(len(c.Wallets))]
		poolHost, poolPort := g.minerEndpoint(c)
		algo := pow.AlgorithmAt(g.uni.Network.Epochs, c.Start)
		behavior := spec.Behavior{
			IsMiner:    true,
			PoolHost:   poolHost,
			PoolPort:   poolPort,
			Wallet:     walletID,
			Password:   "x",
			Agent:      "XMRig/2.14.1",
			Threads:    1 + g.rng.Intn(8),
			Algo:       algo,
			IdleMining: g.rng.Float64() < 0.3,
			UsesProxy:  c.UsesProxy,
		}
		if c.CNAMEDomain != "" {
			behavior.ContactsDomains = append(behavior.ContactsDomains, c.CNAMEDomain)
		}
		if c.KnownOperation != "" {
			behavior.ContactsDomains = append(behavior.ContactsDomains,
				strings.ToLower(c.KnownOperation)+fmt.Sprintf("-%d.c2.example", c.ID))
		}
		if stockToolHash != "" {
			behavior.DropsHashes = append(behavior.DropsHashes, stockToolHash)
			behavior.DownloadsURLs = append(behavior.DownloadsURLs,
				"https://github.com/"+c.StockTool+"/"+c.StockTool+"/releases/download/latest/"+c.StockTool+".exe")
		}
		behavior.CommandLine = minerCommandLine(c, behavior)

		packed := c.Packer != ""
		builder := binfmt.NewBuilder(g.sampleFormat())
		builder.AddString(fmt.Sprintf("%s build %d", c.Name, i))
		if packed {
			builder.WithPacker(c.Packer)
			pad := make([]byte, 48*1024+g.rng.Intn(64*1024))
			g.rng.Read(pad)
			builder.WithPadding(pad)
		} else {
			builder.AddString(behavior.CommandLine)
		}
		content := append(builder.Build(), spec.Encode(behavior, packed)...)
		sha, md5hex := binfmt.Hashes(content)

		firstSeen := randomTimeBetween(g.rng, c.Start, c.End)
		sample := &model.Sample{
			SHA256:    sha,
			MD5:       md5hex,
			Content:   content,
			FirstSeen: firstSeen,
			ITWURLs:   []string{c.HostingURLs[g.rng.Intn(len(c.HostingURLs))]},
		}
		if c.CNAMEDomain != "" {
			sample.ContactedDomains = append(sample.ContactedDomains, c.CNAMEDomain)
		}
		c.Samples = append(c.Samples, sha)
		g.uni.GroundTruthBySample[sha] = c.ID
		truth := avsim.SampleTruth{Malicious: true, Miner: true, Stealthy: c.Stealthy}
		if c.PPIBotnet != "" {
			// Samples spread through a PPI botnet carry the botnet's family
			// label in a share of the AV verdicts, which is what the OSINT
			// enrichment keys on.
			truth.Family = c.PPIBotnet
		}
		g.uni.SampleTruths[sha] = truth
		g.distributeSample(sample)

		if useDropper && dropperHash == "" {
			dropperHash = g.materializeDropper(c, sha, firstSeen)
		}
		if dropperHash != "" {
			sample.Parents = append(sample.Parents, dropperHash)
		}
	}
}

// materializeDropper fabricates the campaign's ancillary dropper binary.
func (g *generator) materializeDropper(c *GroundTruthCampaign, dropsHash string, seen time.Time) string {
	behavior := spec.Behavior{
		IsMiner:       false,
		DropsHashes:   []string{dropsHash},
		DownloadsURLs: []string{c.HostingURLs[0]},
	}
	builder := binfmt.NewBuilder(model.FormatPE).
		AddString("loader for " + c.Name).
		AddString(c.HostingURLs[0])
	content := append(builder.Build(), spec.Encode(behavior, false)...)
	sha, md5hex := binfmt.Hashes(content)
	sample := &model.Sample{
		SHA256:        sha,
		MD5:           md5hex,
		Content:       content,
		FirstSeen:     seen.AddDate(0, 0, -g.rng.Intn(14)),
		ITWURLs:       []string{c.HostingURLs[0]},
		DroppedHashes: []string{dropsHash},
	}
	c.Droppers = append(c.Droppers, sha)
	g.uni.GroundTruthBySample[sha] = c.ID
	g.uni.SampleTruths[sha] = avsim.SampleTruth{Malicious: true, Miner: false, Stealthy: c.Stealthy}
	g.distributeSample(sample)
	return sha
}

// minerEndpoint decides where a campaign's samples point their miners:
// the proxy, the CNAME alias, or the pool's public stratum domain.
func (g *generator) minerEndpoint(c *GroundTruthCampaign) (string, int) {
	if c.UsesProxy && c.ProxyEndpoint != "" {
		host, port := splitHostPort(c.ProxyEndpoint)
		return host, port
	}
	if c.UsesCNAME && c.CNAMEDomain != "" {
		return c.CNAMEDomain, 4444
	}
	if len(c.Pools) > 0 {
		_, dom := g.poolStratumDomain(c.Pools[g.rng.Intn(len(c.Pools))])
		return dom, 3333 + g.rng.Intn(3)*1111
	}
	// Solo/private mining: a raw IP.
	return fmt.Sprintf("%d.%d.%d.%d", 100+g.rng.Intn(100), g.rng.Intn(255), g.rng.Intn(255), 1+g.rng.Intn(254)), 18081
}

// minerCommandLine renders the command line the sandbox will observe.
func minerCommandLine(c *GroundTruthCampaign, b spec.Behavior) string {
	tool := c.StockTool
	if tool == "" {
		tool = "miner"
	}
	switch c.Currency {
	case model.CurrencyEmail:
		return fmt.Sprintf("minergate-cli -user %s -xmr %d", b.Wallet, b.Threads)
	case model.CurrencyEthereum:
		return fmt.Sprintf("%s.exe -epool %s -ewal %s -eworker rig%d", tool, b.PoolEndpoint(), b.Wallet, b.Threads)
	default:
		return fmt.Sprintf("%s.exe -o stratum+tcp://%s -u %s -p x -t %d --donate-level=1",
			tool, b.PoolEndpoint(), b.Wallet, b.Threads)
	}
}

// distributeSample places a sample into the simulated feeds with realistic
// overlap: VirusTotal sees most samples, Palo Alto a majority of miners,
// Hybrid Analysis and VirusShare small slices.
func (g *generator) distributeSample(s *model.Sample) {
	inAny := false
	if g.rng.Float64() < 0.90 {
		g.uni.VirusTotal.Add(s)
		inAny = true
	}
	if g.rng.Float64() < 0.55 {
		g.uni.PaloAlto.Add(s)
		inAny = true
	}
	if g.rng.Float64() < 0.04 {
		g.uni.HybridAnalysis.Add(s)
		inAny = true
	}
	if g.rng.Float64() < 0.02 {
		g.uni.VirusShare.Add(s)
		inAny = true
	}
	if !inAny {
		g.uni.VirusTotal.Add(s)
	}
}

// simulateCampaignMining drives the pool simulator so the campaign's wallets
// accumulate the payment history the profit analysis will later query.
func (g *generator) simulateCampaignMining(c *GroundTruthCampaign) {
	if c.Currency != model.CurrencyMonero || len(c.Pools) == 0 || len(c.Wallets) == 0 {
		return
	}
	hashrate := float64(c.BotnetSize) * pow.TypicalVictimHashrate
	// Split the hashrate across wallets and pools.
	perWallet := hashrate / float64(len(c.Wallets))
	epochs := g.uni.Network.Epochs
	startAlgo := pow.AlgorithmAt(epochs, c.Start)
	algoFor := func(t time.Time) string {
		if c.MaintainsUpdates {
			return pow.AlgorithmAt(epochs, t)
		}
		return startAlgo
	}
	ips := c.BotnetSize
	if c.UsesProxy {
		ips = 1
	}
	for _, w := range c.Wallets {
		poolsForWallet := c.Pools
		perPool := perWallet / float64(len(poolsForWallet))
		for _, poolName := range poolsForWallet {
			p, ok := g.uni.Pools.Get(poolName)
			if !ok {
				continue
			}
			p.SimulateMining(w, ips, perPool, c.Start, c.End, g.cfg.MiningInterval, algoFor)
			c.ExpectedXMR += p.TotalPaid(w)
		}
	}
	// Recompute expected total (TotalPaid accumulates across the loop above;
	// summing per iteration double counts when a wallet mines in one pool
	// only — recompute cleanly).
	c.ExpectedXMR = 0
	for _, w := range c.Wallets {
		for _, poolName := range c.Pools {
			if p, ok := g.uni.Pools.Get(poolName); ok {
				c.ExpectedXMR += p.TotalPaid(w)
			}
		}
	}
}

func (g *generator) sampleFormat() model.ExecutableFormat {
	switch v := g.rng.Float64(); {
	case v < 0.88:
		return model.FormatPE
	case v < 0.97:
		return model.FormatELF
	default:
		return model.FormatJAR
	}
}

func randomTimeBetween(rng *rand.Rand, a, b time.Time) time.Time {
	if !b.After(a) {
		return a
	}
	d := b.Sub(a)
	return a.Add(time.Duration(rng.Int63n(int64(d))))
}

func splitHostPort(ep string) (string, int) {
	host := ep
	port := 3333
	if i := strings.LastIndex(ep, ":"); i > 0 {
		host = ep[:i]
		p := 0
		for _, c := range ep[i+1:] {
			if c < '0' || c > '9' {
				p = 0
				break
			}
			p = p*10 + int(c-'0')
		}
		if p > 0 {
			port = p
		}
	}
	return host, port
}

func randomDomain(rng *rand.Rand) string {
	words := []string{"alibuf", "freebuf", "honker", "usa-138", "fjhan", "enjoytopic", "windowsupdate", "cdn-telemetry", "hostbill", "mininghub"}
	tlds := []string{"com", "info", "club", "net", "tk", "ru"}
	return fmt.Sprintf("%s%d.%s", words[rng.Intn(len(words))], rng.Intn(900)+100, tlds[rng.Intn(len(tlds))])
}

func randomToken(rng *rand.Rand, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}
