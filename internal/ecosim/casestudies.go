package ecosim

import (
	"fmt"
	"time"

	"cryptomining/internal/avsim"
	"cryptomining/internal/binfmt"
	"cryptomining/internal/model"
	"cryptomining/internal/pow"
	"cryptomining/internal/spec"
)

// generateCaseStudies adds two scripted campaigns mirroring the structure of
// the paper's case studies (§V): a long-lived, very profitable campaign built
// around CNAME aliases of several pools whose wallets get banned late in 2018
// (Freebuf-like), and a medium campaign combining a raw-IP malware host, a
// domain that doubles as alias and hosting, and a secondary Electroneum
// wallet (USA-138-like). They provide deterministic fixtures for the Figure
// 6/7/8 payment-timeline experiments.
func (g *generator) generateCaseStudies() {
	g.generateFreebufLike()
	g.generateUSA138Like()
}

// caseStudyIDBase keeps case-study campaign IDs clear of the random ones.
const caseStudyIDBase = 900000

// FreebufCampaignID is the ground-truth ID of the Freebuf-like case study.
const FreebufCampaignID = caseStudyIDBase + 1

// USA138CampaignID is the ground-truth ID of the USA-138-like case study.
const USA138CampaignID = caseStudyIDBase + 2

func (g *generator) generateFreebufLike() {
	start := model.Date(2016, 6, 1)
	end := g.cfg.End
	c := &GroundTruthCampaign{
		ID:               FreebufCampaignID,
		Name:             "freebuf-like",
		Currency:         model.CurrencyMonero,
		BotnetSize:       13000,
		Start:            start,
		End:              end,
		MaintainsUpdates: true,
		UsesCNAME:        true,
		CNAMEDomain:      "xt.freebuf-like.info",
		Pools:            []string{"minexmr", "crypto-pool", "ppxxmr"},
	}
	for i := 0; i < 7; i++ {
		c.Wallets = append(c.Wallets, g.wallets.Monero())
	}
	// Three aliases: the characteristic one plus two that point at different
	// pools over time (the dual-alias behaviour of §IV-E).
	g.uni.Zone.AddCNAME("xt.freebuf-like.info", "pool.minexmr.com", start)
	g.uni.Zone.AddCNAME("x.alibuf-like.com", "mine.crypto-pool.fr", start)
	g.uni.Zone.Retire("x.alibuf-like.com", "CNAME", model.Date(2017, 8, 1))
	g.uni.Zone.AddCNAME("x.alibuf-like.com", "pool.minexmr.com", model.Date(2017, 8, 2))
	g.uni.Zone.AddCNAME("xmr.honker-like.info", "pool.minexmr.com", start)

	c.HostingURLs = []string{
		"http://122.114.99.123/u/miner64.exe",
		"https://github.com/fb-like/tools/releases/download/v1/st.exe",
	}

	// Samples: a large set spread over the aliases and wallets.
	aliases := []string{"xt.freebuf-like.info", "x.alibuf-like.com", "xmr.honker-like.info"}
	for i := 0; i < 40; i++ {
		walletID := c.Wallets[i%len(c.Wallets)]
		alias := aliases[i%len(aliases)]
		behavior := spec.Behavior{
			IsMiner: true, PoolHost: alias, PoolPort: 4444,
			Wallet: walletID, Password: "x", Threads: 2 + i%4,
			Algo:            pow.AlgorithmAt(g.uni.Network.Epochs, start),
			ContactsDomains: []string{alias},
		}
		behavior.CommandLine = minerCommandLine(c, behavior)
		builder := binfmt.NewBuilder(model.FormatPE).AddString(fmt.Sprintf("freebuf-like build %d", i))
		packed := i%3 == 0
		if packed {
			builder.WithPacker("UPX")
			pad := make([]byte, 32*1024)
			g.rng.Read(pad)
			builder.WithPadding(pad)
		} else {
			builder.AddString(behavior.CommandLine)
		}
		content := append(builder.Build(), spec.Encode(behavior, packed)...)
		sha, md5hex := binfmt.Hashes(content)
		sample := &model.Sample{
			SHA256: sha, MD5: md5hex, Content: content,
			FirstSeen:        randomTimeBetween(g.rng, start, end),
			ITWURLs:          []string{c.HostingURLs[i%len(c.HostingURLs)]},
			ContactedDomains: []string{alias},
		}
		c.Samples = append(c.Samples, sha)
		g.uni.GroundTruthBySample[sha] = c.ID
		g.uni.SampleTruths[sha] = avsim.SampleTruth{Malicious: true, Miner: true}
		g.distributeSample(sample)
	}

	// Mining: multi-pool until the April 2018 fork, then concentrated on
	// minexmr; two wallets banned in October 2018 after which the operator
	// moves the load to ppxxmr.
	hashrate := float64(c.BotnetSize) * pow.TypicalVictimHashrate
	interval := g.cfg.MiningInterval
	epochs := g.uni.Network.Epochs
	current := func(t time.Time) string { return pow.AlgorithmAt(epochs, t) }
	fork1 := model.Date(2018, 4, 6)
	banDate := model.Date(2018, 10, 10)

	mine := func(poolName, w string, hr float64, from, to time.Time) {
		if !to.After(from) {
			return
		}
		if p, ok := g.uni.Pools.Get(poolName); ok {
			p.SimulateMining(w, 1, hr, from, to, interval, current)
		}
	}
	perWallet := hashrate / float64(len(c.Wallets))
	for i, w := range c.Wallets {
		// Phase 1: spread across minexmr, crypto-pool and ppxxmr until the fork.
		mine("minexmr", w, perWallet*0.5, start, fork1)
		mine("crypto-pool", w, perWallet*0.3, start, fork1)
		mine("ppxxmr", w, perWallet*0.2, start, fork1)
		// Phase 2: all-in on minexmr after the April 2018 fork.
		if i < 2 {
			// The two wallets that later get banned.
			mine("minexmr", w, perWallet, fork1, banDate)
		} else {
			mine("minexmr", w, perWallet, fork1, end)
		}
	}
	// Intervention: the first two wallets are reported and banned at minexmr.
	if p, ok := g.uni.Pools.Get("minexmr"); ok {
		_ = p.BanWallet(c.Wallets[0], banDate)
		_ = p.BanWallet(c.Wallets[1], banDate)
	}
	// Operator reaction: banned wallets move their residual load to ppxxmr at
	// a much lower effective rate (the campaign is winding down).
	for _, w := range c.Wallets[:2] {
		mine("ppxxmr", w, perWallet*0.3, banDate, end)
	}
	for _, w := range c.Wallets {
		for _, pn := range []string{"minexmr", "crypto-pool", "ppxxmr"} {
			if p, ok := g.uni.Pools.Get(pn); ok {
				c.ExpectedXMR += p.TotalPaid(w)
			}
		}
	}
	g.uni.Campaigns = append(g.uni.Campaigns, c)
}

func (g *generator) generateUSA138Like() {
	start := model.Date(2016, 9, 1)
	end := g.cfg.End
	c := &GroundTruthCampaign{
		ID:               USA138CampaignID,
		Name:             "usa-138-like",
		Currency:         model.CurrencyMonero,
		BotnetSize:       13000 / 4,
		Start:            start,
		End:              end,
		MaintainsUpdates: true,
		UsesCNAME:        true,
		CNAMEDomain:      "xmr.usa-138-like.com",
		Pools:            []string{"minexmr", "crypto-pool"},
	}
	for i := 0; i < 4; i++ {
		c.Wallets = append(c.Wallets, g.wallets.Monero())
	}
	etnWallet := g.wallets.Electroneum()

	g.uni.Zone.AddCNAME("xmr.usa-138-like.com", "pool.minexmr.com", start)
	// The 4i7i-style dual-purpose domain: both a crypto-pool alias and a
	// malware host.
	g.uni.Zone.AddCNAME("pool.4i7i-like.com", "mine.crypto-pool.fr", start)
	g.uni.Zone.AddA("4i7i-like.com", "121.12.125.122", start)

	c.HostingURLs = []string{
		"http://221.9.251.236/11.exe",
		"http://4i7i-like.com/11.exe",
	}

	mkSample := func(i int, walletID, poolHost string, port int, packed bool) {
		behavior := spec.Behavior{
			IsMiner: true, PoolHost: poolHost, PoolPort: port,
			Wallet: walletID, Password: "x", Threads: 2,
			Algo:            pow.AlgorithmAt(g.uni.Network.Epochs, start),
			ContactsDomains: []string{poolHost},
		}
		behavior.CommandLine = minerCommandLine(c, behavior)
		builder := binfmt.NewBuilder(model.FormatPE).AddString(fmt.Sprintf("usa-138-like build %d", i))
		if packed {
			builder.WithPacker("UPX")
			pad := make([]byte, 24*1024)
			g.rng.Read(pad)
			builder.WithPadding(pad)
		} else {
			builder.AddString(behavior.CommandLine)
		}
		content := append(builder.Build(), spec.Encode(behavior, packed)...)
		sha, md5hex := binfmt.Hashes(content)
		sample := &model.Sample{
			SHA256: sha, MD5: md5hex, Content: content,
			FirstSeen:        randomTimeBetween(g.rng, start, end),
			ITWURLs:          []string{c.HostingURLs[i%len(c.HostingURLs)]},
			ContactedDomains: []string{poolHost},
		}
		c.Samples = append(c.Samples, sha)
		g.uni.GroundTruthBySample[sha] = c.ID
		g.uni.SampleTruths[sha] = avsim.SampleTruth{Malicious: true, Miner: true}
		g.distributeSample(sample)
	}

	for i := 0; i < 20; i++ {
		w := c.Wallets[i%len(c.Wallets)]
		host := "xmr.usa-138-like.com"
		if i%4 == 0 {
			host = "pool.4i7i-like.com"
		}
		// About a third of the samples are UPX-packed, as in the case study.
		mkSample(i, w, host, 4444, i%3 == 0)
	}
	// A couple of Electroneum samples pointing at an opaque ETN alias.
	g.uni.Zone.AddCNAME("etn.4i7i-like.com", "etn-pool.example.org", start)
	for i := 20; i < 23; i++ {
		mkSample(i, etnWallet, "etn.4i7i-like.com", 3333, false)
	}
	c.Wallets = append(c.Wallets, etnWallet)

	// Mining: mostly minexmr after April 2018; the most active wallet is
	// banned there in late 2018 and the operator returns to crypto-pool,
	// surviving the October 2018 fork.
	hashrate := float64(c.BotnetSize) * pow.TypicalVictimHashrate
	interval := g.cfg.MiningInterval
	epochs := g.uni.Network.Epochs
	current := func(t time.Time) string { return pow.AlgorithmAt(epochs, t) }
	fork1 := model.Date(2018, 4, 6)
	banDate := model.Date(2018, 11, 20)
	mine := func(poolName, w string, hr float64, from, to time.Time) {
		if !to.After(from) {
			return
		}
		if p, ok := g.uni.Pools.Get(poolName); ok {
			p.SimulateMining(w, 1, hr, from, to, interval, current)
		}
	}
	main := c.Wallets[0]
	perOther := hashrate * 0.4 / 3
	mine("crypto-pool", main, hashrate*0.6, start, fork1)
	mine("minexmr", main, hashrate*0.6, fork1, banDate)
	if p, ok := g.uni.Pools.Get("minexmr"); ok {
		_ = p.BanWallet(main, banDate)
	}
	mine("crypto-pool", main, hashrate*0.5, banDate, end)
	for _, w := range c.Wallets[1:4] {
		mine("crypto-pool", w, perOther, start, end)
	}
	for _, w := range c.Wallets {
		for _, pn := range c.Pools {
			if p, ok := g.uni.Pools.Get(pn); ok {
				c.ExpectedXMR += p.TotalPaid(w)
			}
		}
	}
	g.uni.Campaigns = append(g.uni.Campaigns, c)
}

// generateMalwareReuse fabricates the Table V situation: a handful of samples
// first seen in 2012/2013 (before Monero existed) that were later updated to
// mine Monero via their droppers, two of them sharing one wallet.
func (g *generator) generateMalwareReuse() {
	sharedWallet := g.wallets.Monero()
	otherWallet := g.wallets.Monero()
	thirdWallet := g.wallets.Monero()
	years := []struct {
		year   int
		wallet string
	}{
		{2012, sharedWallet},
		{2013, sharedWallet},
		{2013, otherWallet},
		{2013, thirdWallet},
	}
	c := &GroundTruthCampaign{
		ID:         caseStudyIDBase + 3,
		Name:       "pre-2014-reuse",
		Currency:   model.CurrencyMonero,
		Wallets:    []string{sharedWallet, otherWallet, thirdWallet},
		Start:      model.Date(2012, 3, 1),
		End:        model.Date(2015, 6, 1),
		BotnetSize: 60,
		Pools:      []string{"crypto-pool"},
	}
	for i, spec2 := range years {
		behavior := spec.Behavior{
			IsMiner: true, PoolHost: "mine.crypto-pool.fr", PoolPort: 3333,
			Wallet: spec2.wallet, Password: "x", Threads: 1,
			Algo: "cryptonight",
		}
		behavior.CommandLine = minerCommandLine(c, behavior)
		builder := binfmt.NewBuilder(model.FormatPE).
			AddString(fmt.Sprintf("legacy dropper %d, self-updating", i)).
			AddString(behavior.CommandLine)
		content := append(builder.Build(), spec.Encode(behavior, false)...)
		sha, md5hex := binfmt.Hashes(content)
		sample := &model.Sample{
			SHA256: sha, MD5: md5hex, Content: content,
			FirstSeen: model.Date(spec2.year, time.Month(3+i), 10),
			ITWURLs:   []string{"http://legacy-host.ru/loader.exe"},
		}
		c.Samples = append(c.Samples, sha)
		g.uni.GroundTruthBySample[sha] = c.ID
		g.uni.SampleTruths[sha] = avsim.SampleTruth{Malicious: true, Miner: true}
		g.distributeSample(sample)
	}
	// Modest mining activity for the shared wallet.
	if p, ok := g.uni.Pools.Get("crypto-pool"); ok {
		p.SimulateMining(sharedWallet, 60, 60*pow.TypicalVictimHashrate,
			model.Date(2014, 6, 1), model.Date(2015, 6, 1), g.cfg.MiningInterval, nil)
		c.ExpectedXMR = p.TotalPaid(sharedWallet)
	}
	g.uni.Campaigns = append(g.uni.Campaigns, c)
}

// generateNoise adds benign executables (including copies of the stock tools
// themselves) and non-mining malware to the feeds; the sanity checks must
// filter them out.
func (g *generator) generateNoise() {
	// Benign samples.
	for i := 0; i < g.cfg.BenignSamples; i++ {
		builder := binfmt.NewBuilder(g.sampleFormat()).
			AddString(fmt.Sprintf("benign utility %d", i)).
			AddString("Copyright (c) Example Software GmbH").
			AddString("This program cannot be run in DOS mode")
		content := builder.Build()
		sha, md5hex := binfmt.Hashes(content)
		g.uni.SampleTruths[sha] = avsim.SampleTruth{Malicious: false}
		g.distributeSample(&model.Sample{
			SHA256: sha, MD5: md5hex, Content: content,
			FirstSeen: randomTimeBetween(g.rng, g.cfg.Start, g.cfg.End),
		})
	}
	// The stock tools themselves also circulate in the feeds (they are
	// whitelisted and must not be counted as malware).
	for _, tool := range g.uni.OSINT.StockTools() {
		if g.rng.Float64() < 0.5 {
			continue
		}
		g.uni.SampleTruths[tool.SHA256] = avsim.SampleTruth{Malicious: false, Miner: true}
		g.distributeSample(&model.Sample{
			SHA256: tool.SHA256, Content: tool.Content,
			FirstSeen: randomTimeBetween(g.rng, g.cfg.Start, g.cfg.End),
			ITWURLs:   []string{"https://github.com/" + tool.Name + "/" + tool.Name + "/releases"},
		})
	}
	// Non-mining malware.
	for i := 0; i < g.cfg.NonMinerMalware; i++ {
		behavior := spec.Behavior{
			IsMiner:         false,
			ContactsDomains: []string{fmt.Sprintf("c2-%d.%s", i, randomDomain(g.rng))},
		}
		builder := binfmt.NewBuilder(g.sampleFormat()).
			AddString(fmt.Sprintf("bot client %d", i))
		if g.rng.Float64() < 0.3 {
			builder.WithPacker("UPX")
		}
		content := append(builder.Build(), spec.Encode(behavior, false)...)
		sha, md5hex := binfmt.Hashes(content)
		g.uni.SampleTruths[sha] = avsim.SampleTruth{Malicious: true, Miner: false}
		g.distributeSample(&model.Sample{
			SHA256: sha, MD5: md5hex, Content: content,
			FirstSeen: randomTimeBetween(g.rng, g.cfg.Start, g.cfg.End),
		})
	}
}
