package ecosim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"cryptomining/internal/avsim"
	"cryptomining/internal/binfmt"
	"cryptomining/internal/dnssim"
	"cryptomining/internal/model"
	"cryptomining/internal/osint"
	"cryptomining/internal/pool"
	"cryptomining/internal/pow"
	"cryptomining/internal/spec"
	"cryptomining/internal/wallet"
)

// StreamConfig shapes the bounded-memory streamed generator: unlike
// Generate, which materializes a whole universe up front, the stream fab-
// ricates samples one at a time from a fixed-size working set of active
// campaigns, so a million-sample ecosystem costs the same memory as a
// thousand-sample one.
type StreamConfig struct {
	// Seed makes the stream deterministic: the same seed always yields the
	// same byte-identical sample sequence, regardless of the Ledger flag
	// (ledger simulation draws nothing from the generator's RNG).
	Seed int64
	// Start / End bound campaign activity windows; QueryTime is the
	// measurement end (default End + 1 month).
	Start, End, QueryTime time.Time
	// ActiveCampaigns bounds the working set of concurrently emitting
	// campaigns (default 48) — the constant-memory knob.
	ActiveCampaigns int
	// MiningInterval is the pool-accounting granularity in Ledger mode
	// (default 14 days).
	MiningInterval time.Duration
	// WavePeriod is the emission-count period of the behavioural waves:
	// CNAME-evasion adoption and AV detection pressure (stealthy-fraction)
	// oscillate over it (default 20000 samples).
	WavePeriod int
	// Ledger enables the in-process replay extras: campaign mining is
	// simulated into the pool directory at spawn time and every emitted
	// sample's AV ground truth is retained for the scanner. CLI NDJSON
	// emission leaves it off and stays constant-memory.
	Ledger bool
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Start.IsZero() {
		c.Start = model.Date(2012, 1, 1)
	}
	if c.End.IsZero() {
		c.End = model.Date(2019, 4, 1)
	}
	if c.QueryTime.IsZero() {
		c.QueryTime = c.End.AddDate(0, 1, 0)
	}
	if c.ActiveCampaigns <= 0 {
		c.ActiveCampaigns = 48
	}
	if c.MiningInterval <= 0 {
		c.MiningInterval = 14 * 24 * time.Hour
	}
	if c.WavePeriod <= 0 {
		c.WavePeriod = 20000
	}
	return c
}

// StreamedSample is one emission: the sample, its AV ground truth and the
// generating campaign (0 for noise).
type StreamedSample struct {
	Sample     *model.Sample
	Truth      avsim.SampleTruth
	CampaignID int
}

// streamCampaign is the bounded per-campaign state the stream keeps while a
// campaign is active — a few strings and integers, never sample bodies.
type streamCampaign struct {
	id        int
	wallets   []string
	pools     []string
	cname     string
	proxy     string
	hosting   string
	packer    string
	family    string
	stealthy  bool
	maintains bool
	botnet    int
	start     time.Time
	end       time.Time
	remaining int
}

// StreamGenerator emits an endless deterministic sample stream. Next is not
// safe for concurrent use (it is one producer by construction); the
// AVProvider view is safe for concurrent readers.
type StreamGenerator struct {
	cfg     StreamConfig
	rng     *rand.Rand
	wallets *wallet.Generator
	network *pow.Network
	pools   *pool.Directory
	zone    *dnssim.Zone
	scanner *avsim.Scanner

	active     []*streamCampaign
	recycled   []string
	emitted    int
	nextID     int
	churnSeq   int
	poolNames  []string // weighted base pools, then churn pools
	churnPools []string

	truthMu sync.Mutex
	truths  map[string]avsim.SampleTruth
}

// NewStream builds a generator and spawns the initial working set.
func NewStream(cfg StreamConfig) *StreamGenerator {
	cfg = cfg.withDefaults()
	network := pow.NewMoneroNetwork()
	s := &StreamGenerator{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		network: network,
		pools:   pool.NewDirectory(network),
		zone:    dnssim.NewZone(),
		scanner: avsim.NewScanner(),
		truths:  map[string]avsim.SampleTruth{},
	}
	s.wallets = wallet.NewGenerator(s.rng)
	for _, spec := range pool.KnownMoneroPools() {
		for i, dom := range spec.Domains {
			s.zone.AddA(dom, fmt.Sprintf("94.130.%d.%d", 10+i, 10+len(dom)%200), time.Time{})
		}
	}
	// The weighted Table VII ranking, flattened: the draw below indexes it
	// uniformly, so repetition encodes the weights.
	s.poolNames = []string{
		"crypto-pool", "crypto-pool", "crypto-pool",
		"dwarfpool", "dwarfpool",
		"minexmr", "minexmr",
		"supportxmr", "nanopool", "monerohash", "ppxxmr", "moneropool",
	}
	for len(s.active) < cfg.ActiveCampaigns {
		s.active = append(s.active, s.spawn())
	}
	return s
}

// Pools exposes the simulated pool directory (populated in Ledger mode).
func (s *StreamGenerator) Pools() *pool.Directory { return s.pools }

// Zone exposes the DNS zone with the stream's CNAME aliases.
func (s *StreamGenerator) Zone() *dnssim.Zone { return s.zone }

// Network exposes the PoW reward model backing the ledgers.
func (s *StreamGenerator) Network() *pow.Network { return s.network }

// QueryTime returns the resolved measurement end time.
func (s *StreamGenerator) QueryTime() time.Time { return s.cfg.QueryTime }

// ActiveCampaignCount reports the current working-set size (bounded by
// StreamConfig.ActiveCampaigns).
func (s *StreamGenerator) ActiveCampaignCount() int { return len(s.active) }

// wave is the oscillating behavioural intensity in [0,1], driven by the
// emission counter so it is deterministic and phase-shiftable.
func (s *StreamGenerator) wave(phase float64) float64 {
	x := float64(s.emitted%s.cfg.WavePeriod) / float64(s.cfg.WavePeriod)
	return 0.5 + 0.5*math.Sin(2*math.Pi*(x+phase))
}

// spawn creates one campaign, registering its infrastructure (DNS alias,
// churn pool) and — in Ledger mode — simulating its full mining history into
// the pool directory before any of its samples are emitted, so an ingesting
// engine prices wallets against a complete ledger.
func (s *StreamGenerator) spawn() *streamCampaign {
	s.nextID++
	c := &streamCampaign{id: s.nextID}

	// Pool churn: every 20th campaign brings a brand-new pool to the
	// ecosystem and mines there, the way short-lived pools come and go.
	if s.nextID%20 == 0 {
		s.churnSeq++
		name := fmt.Sprintf("churnpool-%d", s.churnSeq)
		dom := fmt.Sprintf("pool.%s.example", name)
		p := pool.New(name, []string{dom}, model.CurrencyMonero, pool.DefaultPolicy(), s.network)
		s.pools.Add(p)
		s.zone.AddA(dom, fmt.Sprintf("185.71.%d.%d", s.churnSeq%250, 10+s.churnSeq%200), time.Time{})
		s.churnPools = append(s.churnPools, name)
		if len(s.churnPools) > 8 {
			s.churnPools = s.churnPools[1:]
		}
	}

	// Wallet reuse: retired campaigns' wallets resurface (~1 in 10 spawns),
	// the cross-campaign linkability the aggregation heuristics key on.
	if len(s.recycled) > 0 && s.rng.Float64() < 0.10 {
		c.wallets = []string{s.recycled[0]}
		s.recycled = s.recycled[1:]
	} else {
		c.wallets = []string{s.wallets.Monero()}
	}
	if s.rng.Float64() < 0.08 {
		c.wallets = append(c.wallets, s.wallets.Monero())
	}

	// Pool selection: mostly the weighted Table VII set, sometimes the
	// newest churn pool.
	if len(s.churnPools) > 0 && s.rng.Float64() < 0.15 {
		c.pools = []string{s.churnPools[len(s.churnPools)-1]}
	} else {
		c.pools = []string{s.poolNames[s.rng.Intn(len(s.poolNames))]}
	}
	if s.rng.Float64() < 0.25 {
		second := s.poolNames[s.rng.Intn(len(s.poolNames))]
		if second != c.pools[0] {
			c.pools = append(c.pools, second)
		}
	}

	// Behavioural waves: CNAME-evasion adoption and stealthiness (the
	// operators' answer to AV detection pressure) rise and fall over the
	// stream instead of staying at a flat base rate.
	c.stealthy = s.rng.Float64() < 0.04+0.30*s.wave(0.25)
	useCNAME := s.rng.Float64() < 0.03+0.35*s.wave(0)
	if useCNAME {
		c.cname = fmt.Sprintf("xmr%d.%s", c.id, randomDomain(s.rng))
	}
	if s.rng.Float64() < 0.06 {
		c.proxy = fmt.Sprintf("%d.%d.%d.%d:%d",
			45+s.rng.Intn(150), s.rng.Intn(255), s.rng.Intn(255), 1+s.rng.Intn(254), 3333+s.rng.Intn(5000))
	}
	if s.rng.Float64() < 0.12 {
		c.family = osint.KnownPPIBotnets[s.rng.Intn(len(osint.KnownPPIBotnets))]
	}

	c.botnet = 20 + s.rng.Intn(400)
	if s.rng.Float64() < 0.05 {
		c.botnet *= 40 // the heavy tail that dominates earnings
	}
	c.remaining = 1 + s.rng.Intn(6)
	if c.botnet > 2000 {
		c.remaining += 2 + s.rng.Intn(10)
	}
	c.maintains = s.rng.Float64() < 0.28
	c.packer = pickStreamPacker(s.rng)

	span := s.cfg.End.Sub(s.cfg.Start)
	c.start = randomTimeBetween(s.rng, s.cfg.Start, s.cfg.End.Add(-span/8))
	c.end = c.start.Add(time.Duration(30+s.rng.Intn(300)) * 24 * time.Hour)
	if c.end.After(s.cfg.End) {
		c.end = s.cfg.End
	}
	c.hosting = fmt.Sprintf("http://%s/c%d/%s.exe", hostingSites[s.rng.Intn(len(hostingSites))].host, c.id, randomToken(s.rng, 6))

	// Ledger-side effects: DNS aliasing is always registered (no RNG), and
	// in Ledger mode the campaign's full mining history lands in the pool
	// directory now, before its first sample is emitted.
	if c.cname != "" {
		if p, ok := s.pools.Get(c.pools[0]); ok && len(p.Domains) > 0 {
			s.zone.AddCNAME(c.cname, p.Domains[len(p.Domains)-1], c.start)
		}
	}
	if s.cfg.Ledger {
		s.simulateStreamMining(c)
	}
	return c
}

// simulateStreamMining mirrors simulateCampaignMining for the stream's
// bounded campaigns. It must not touch s.rng — determinism of the emitted
// byte stream across Ledger on/off depends on it.
func (s *StreamGenerator) simulateStreamMining(c *streamCampaign) {
	hashrate := float64(c.botnet) * pow.TypicalVictimHashrate
	perWallet := hashrate / float64(len(c.wallets))
	epochs := s.network.Epochs
	startAlgo := pow.AlgorithmAt(epochs, c.start)
	algoFor := func(t time.Time) string {
		if c.maintains {
			return pow.AlgorithmAt(epochs, t)
		}
		return startAlgo
	}
	ips := c.botnet
	if c.proxy != "" {
		ips = 1
	}
	for _, w := range c.wallets {
		perPool := perWallet / float64(len(c.pools))
		for _, poolName := range c.pools {
			p, ok := s.pools.Get(poolName)
			if !ok {
				continue
			}
			p.SimulateMining(w, ips, perPool, c.start, c.end, s.cfg.MiningInterval, algoFor)
		}
	}
}

// Next emits the next sample of the stream. Roughly 8% of emissions are
// noise (benign executables and non-mining malware the sanity checks must
// reject); the rest come from the active campaign set, retiring and
// replacing campaigns as they exhaust their sample budgets.
func (s *StreamGenerator) Next() StreamedSample {
	s.emitted++
	if s.rng.Float64() < 0.08 {
		return s.noise()
	}
	idx := s.rng.Intn(len(s.active))
	c := s.active[idx]
	out := s.emitMiner(c)
	c.remaining--
	if c.remaining <= 0 {
		// Retire: recycle a wallet for later reuse, cap the recycle queue,
		// and spawn the replacement (which may bring a churn pool with it).
		if s.rng.Float64() < 0.35 && len(s.recycled) < 256 {
			s.recycled = append(s.recycled, c.wallets[0])
		}
		s.active[idx] = s.spawn()
	}
	return out
}

// emitMiner fabricates one miner sample for the campaign.
func (s *StreamGenerator) emitMiner(c *streamCampaign) StreamedSample {
	walletID := c.wallets[s.rng.Intn(len(c.wallets))]
	host, port := s.streamEndpoint(c)
	behavior := spec.Behavior{
		IsMiner:    true,
		PoolHost:   host,
		PoolPort:   port,
		Wallet:     walletID,
		Password:   "x",
		Agent:      "XMRig/2.14.1",
		Threads:    1 + s.rng.Intn(8),
		Algo:       pow.AlgorithmAt(s.network.Epochs, c.start),
		IdleMining: s.rng.Float64() < 0.3,
		UsesProxy:  c.proxy != "",
	}
	if c.cname != "" {
		behavior.ContactsDomains = append(behavior.ContactsDomains, c.cname)
	}
	behavior.CommandLine = fmt.Sprintf("miner.exe -o %s -u %s -p x", behavior.PoolEndpoint(), walletID)

	packed := c.packer != ""
	builder := binfmt.NewBuilder(streamFormat(s.rng))
	builder.AddString(fmt.Sprintf("campaign-%06d build %d", c.id, c.remaining))
	if packed {
		builder.WithPacker(c.packer)
		pad := make([]byte, 256+s.rng.Intn(512))
		s.rng.Read(pad)
		builder.WithPadding(pad)
	} else {
		builder.AddString(behavior.CommandLine)
	}
	content := append(builder.Build(), spec.Encode(behavior, packed)...)
	sha, md5hex := binfmt.Hashes(content)

	sample := &model.Sample{
		SHA256:    sha,
		MD5:       md5hex,
		Content:   content,
		FirstSeen: randomTimeBetween(s.rng, c.start, c.end),
		ITWURLs:   []string{c.hosting},
	}
	if c.cname != "" {
		sample.ContactedDomains = append(sample.ContactedDomains, c.cname)
	}
	truth := avsim.SampleTruth{Malicious: true, Miner: true, Stealthy: c.stealthy, Family: c.family}
	s.recordTruth(sha, truth)
	return StreamedSample{Sample: sample, Truth: truth, CampaignID: c.id}
}

// noise fabricates one benign or non-mining-malware sample.
func (s *StreamGenerator) noise() StreamedSample {
	if s.rng.Float64() < 0.45 {
		builder := binfmt.NewBuilder(streamFormat(s.rng)).
			AddString(fmt.Sprintf("benign utility %d", s.emitted)).
			AddString("This program cannot be run in DOS mode")
		content := builder.Build()
		sha, md5hex := binfmt.Hashes(content)
		truth := avsim.SampleTruth{Malicious: false}
		s.recordTruth(sha, truth)
		return StreamedSample{Sample: &model.Sample{
			SHA256: sha, MD5: md5hex, Content: content,
			FirstSeen: randomTimeBetween(s.rng, s.cfg.Start, s.cfg.End),
		}, Truth: truth}
	}
	behavior := spec.Behavior{
		IsMiner:         false,
		ContactsDomains: []string{fmt.Sprintf("c2-%d.%s", s.emitted, randomDomain(s.rng))},
	}
	builder := binfmt.NewBuilder(streamFormat(s.rng)).
		AddString(fmt.Sprintf("bot client %d", s.emitted))
	if s.rng.Float64() < 0.3 {
		builder.WithPacker("UPX")
	}
	content := append(builder.Build(), spec.Encode(behavior, false)...)
	sha, md5hex := binfmt.Hashes(content)
	truth := avsim.SampleTruth{Malicious: true, Miner: false}
	s.recordTruth(sha, truth)
	return StreamedSample{Sample: &model.Sample{
		SHA256: sha, MD5: md5hex, Content: content,
		FirstSeen: randomTimeBetween(s.rng, s.cfg.Start, s.cfg.End),
	}, Truth: truth}
}

func (s *StreamGenerator) streamEndpoint(c *streamCampaign) (string, int) {
	if c.proxy != "" {
		host, port := splitHostPort(c.proxy)
		return host, port
	}
	if c.cname != "" {
		return c.cname, 4444
	}
	if p, ok := s.pools.Get(c.pools[s.rng.Intn(len(c.pools))]); ok && len(p.Domains) > 0 {
		return p.Domains[len(p.Domains)-1], 3333
	}
	return fmt.Sprintf("%d.0.0.%d", 100+s.rng.Intn(100), 1+s.rng.Intn(254)), 18081
}

// recordTruth retains the ground truth for the AV provider (Ledger mode
// only — the CLI stream keeps nothing and stays constant-memory).
func (s *StreamGenerator) recordTruth(sha string, truth avsim.SampleTruth) {
	if !s.cfg.Ledger {
		return
	}
	s.truthMu.Lock()
	s.truths[sha] = truth
	s.truthMu.Unlock()
}

// AVProvider returns a concurrency-safe stream.AVProvider view over the
// generator's retained ground truth: known hashes scan with their truth,
// unknown hashes scan as benign. Only meaningful in Ledger mode.
func (s *StreamGenerator) AVProvider() *StreamAV {
	return &StreamAV{gen: s}
}

// StreamAV adapts the generator's ground truth to the engine's AVProvider
// interface.
type StreamAV struct {
	gen *StreamGenerator
}

// Report fabricates the AV report for a hash from the stream's ground truth.
func (p *StreamAV) Report(sha256Hex string) *model.AVReport {
	p.gen.truthMu.Lock()
	truth := p.gen.truths[sha256Hex]
	p.gen.truthMu.Unlock()
	return p.gen.scanner.Scan(sha256Hex, truth, p.gen.cfg.QueryTime)
}

func streamFormat(rng *rand.Rand) model.ExecutableFormat {
	switch v := rng.Float64(); {
	case v < 0.88:
		return model.FormatPE
	case v < 0.97:
		return model.FormatELF
	default:
		return model.FormatJAR
	}
}

func pickStreamPacker(rng *rand.Rand) string {
	r := rng.Float64()
	cum := 0.0
	for _, p := range packerChoices {
		cum += p.weight
		if r < cum {
			return p.name
		}
	}
	return ""
}
