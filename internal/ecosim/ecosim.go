// Package ecosim generates the synthetic crypto-mining malware ecosystem that
// substitutes for the paper's proprietary corpus (VirusTotal / Palo Alto /
// Hybrid Analysis / VirusShare feeds, ~4.5M samples, 2007–2019).
//
// The generator fabricates a ground-truth set of campaigns with the
// qualitative properties the paper measures — heavy-tailed earnings dominated
// by a handful of actors, Monero dominance with a Bitcoin long tail, mixed
// use of third-party infrastructure (PPI botnets, stock mining tools, CNAME
// aliases, proxies, packers), public-repository hosting, opaque-pool e-mail
// identifiers, and campaign die-offs at PoW forks — and then materializes that
// ground truth into:
//
//   - binary samples (internal/binfmt + internal/spec) distributed across
//     simulated feeds (internal/feeds);
//   - DNS zones with the CNAME aliases (internal/dnssim);
//   - OSINT indicators, donation-wallet whitelist and stock-tool catalogue
//     (internal/osint);
//   - mining activity and payment histories at the simulated pools
//     (internal/pool driven by the internal/pow reward model).
//
// Because the ground truth is known, the repository can also validate the
// aggregation heuristics' precision — something the paper could only do
// manually against OSINT-documented botnets.
package ecosim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"cryptomining/internal/avsim"
	"cryptomining/internal/binfmt"
	"cryptomining/internal/dnssim"
	"cryptomining/internal/feeds"
	"cryptomining/internal/model"
	"cryptomining/internal/osint"
	"cryptomining/internal/pool"
	"cryptomining/internal/pow"
	"cryptomining/internal/wallet"
)

// Config controls the size and shape of the generated ecosystem.
type Config struct {
	// Seed makes the generation deterministic.
	Seed int64
	// MoneroCampaigns is the number of Monero-mining campaigns.
	MoneroCampaigns int
	// BitcoinCampaigns is the number of Bitcoin-mining campaigns (negligible
	// earnings, per the paper).
	BitcoinCampaigns int
	// OtherCurrencyCampaigns is the number of campaigns mining other coins
	// (zCash, Electroneum, Ethereum, Aeon, ...).
	OtherCurrencyCampaigns int
	// EmailCampaigns is the number of campaigns using e-mail identifiers at
	// the opaque minergate pool.
	EmailCampaigns int
	// BenignSamples is the number of non-malware executables mixed into the
	// feeds (they must be filtered out by the sanity checks).
	BenignSamples int
	// NonMinerMalware is the number of malware samples without mining
	// capability mixed into the feeds.
	NonMinerMalware int
	// Start and End bound the campaign activity window.
	Start time.Time
	End   time.Time
	// QueryTime is when the measurement queries pools (end of collection).
	QueryTime time.Time
	// MiningInterval is the granularity of the pool accounting simulation.
	MiningInterval time.Duration
	// IncludeCaseStudies adds the two scripted case-study campaigns
	// (Freebuf-like and USA-138-like) on top of the random ones.
	IncludeCaseStudies bool
}

// DefaultConfig returns a laptop-scale ecosystem: a few hundred campaigns and
// a few thousand samples, enough for every distribution the paper reports to
// have its characteristic shape.
func DefaultConfig() Config {
	return Config{
		Seed:                   42,
		MoneroCampaigns:        220,
		BitcoinCampaigns:       90,
		OtherCurrencyCampaigns: 40,
		EmailCampaigns:         60,
		BenignSamples:          150,
		NonMinerMalware:        200,
		Start:                  model.Date(2012, 1, 1),
		End:                    model.Date(2019, 4, 1),
		QueryTime:              model.Date(2019, 4, 30),
		MiningInterval:         14 * 24 * time.Hour,
		IncludeCaseStudies:     true,
	}
}

// SmallConfig is a quick configuration for unit tests.
func SmallConfig() Config {
	c := DefaultConfig()
	c.MoneroCampaigns = 40
	c.BitcoinCampaigns = 15
	c.OtherCurrencyCampaigns = 8
	c.EmailCampaigns = 10
	c.BenignSamples = 30
	c.NonMinerMalware = 40
	return c
}

// Scale multiplies the campaign and sample counts by f (>=0.1) and returns
// the scaled config.
func (c Config) Scale(f float64) Config {
	if f < 0.1 {
		f = 0.1
	}
	scale := func(n int) int {
		v := int(math.Round(float64(n) * f))
		if v < 1 {
			v = 1
		}
		return v
	}
	c.MoneroCampaigns = scale(c.MoneroCampaigns)
	c.BitcoinCampaigns = scale(c.BitcoinCampaigns)
	c.OtherCurrencyCampaigns = scale(c.OtherCurrencyCampaigns)
	c.EmailCampaigns = scale(c.EmailCampaigns)
	c.BenignSamples = scale(c.BenignSamples)
	c.NonMinerMalware = scale(c.NonMinerMalware)
	return c
}

// GroundTruthCampaign is the generator's record of one campaign: what the
// measurement pipeline should ideally recover.
type GroundTruthCampaign struct {
	ID         int
	Name       string
	Currency   model.Currency
	Wallets    []string
	Samples    []string // miner sample hashes
	Droppers   []string // ancillary sample hashes
	BotnetSize int
	Start      time.Time
	End        time.Time
	// Infrastructure flags.
	UsesCNAME     bool
	CNAMEDomain   string
	UsesProxy     bool
	ProxyEndpoint string
	UsesPPI       bool
	PPIBotnet     string
	UsesStockTool bool
	StockTool     string
	Packer        string
	HostingURLs   []string
	Pools         []string
	// MaintainsUpdates marks operators that ship algorithm updates after PoW
	// forks; campaigns that do not maintain updates stop earning at the
	// first fork inside their activity window.
	MaintainsUpdates bool
	// Stealthy campaigns have low AV coverage.
	Stealthy bool
	// KnownOperation links the campaign to a publicly reported operation
	// whose IoCs are in the OSINT store.
	KnownOperation string
	// ExpectedXMR is the total XMR the pool simulation credited to the
	// campaign's wallets (ground truth for profit validation).
	ExpectedXMR float64
}

// Universe is the fully materialized ecosystem.
type Universe struct {
	Config    Config
	Campaigns []*GroundTruthCampaign
	// Feeds are the per-source repositories.
	VirusTotal     *feeds.Repository
	PaloAlto       *feeds.Repository
	HybridAnalysis *feeds.Repository
	VirusShare     *feeds.Repository
	// Corpus is the consolidated deduplicated sample set.
	Corpus *feeds.Corpus
	// Zone and OSINT and Pools are the simulated environment.
	Zone    *dnssim.Zone
	OSINT   *osint.Store
	Pools   *pool.Directory
	Network *pow.Network
	// Scanner fabricates AV reports; SampleTruths is its ground truth.
	Scanner      *avsim.Scanner
	SampleTruths map[string]avsim.SampleTruth
	// GroundTruthBySample maps each sample hash to its campaign ID.
	GroundTruthBySample map[string]int
	// DonationWallets generated for the stock tools.
	DonationWallets []string
}

// AllFeeds returns the feeds in Table III order.
func (u *Universe) AllFeeds() []feeds.Feed {
	return []feeds.Feed{u.VirusTotal, u.PaloAlto, u.HybridAnalysis, u.VirusShare}
}

// generator carries the mutable generation state.
type generator struct {
	cfg       Config
	rng       *rand.Rand
	wallets   *wallet.Generator
	uni       *Universe
	poolSpecs []pool.KnownPoolSpec
	// weighted pool preference approximating Table VII's ranking.
	poolWeights []weightedPool
}

type weightedPool struct {
	name   string
	domain string
	weight float64
}

// Generate materializes a universe from the configuration.
func Generate(cfg Config) *Universe {
	if cfg.MiningInterval <= 0 {
		cfg.MiningInterval = 14 * 24 * time.Hour
	}
	if cfg.QueryTime.IsZero() {
		cfg.QueryTime = cfg.End.AddDate(0, 1, 0)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	network := pow.NewMoneroNetwork()
	uni := &Universe{
		Config:              cfg,
		VirusTotal:          feeds.NewRepository(model.SourceVirusTotal),
		PaloAlto:            feeds.NewRepository(model.SourcePaloAlto),
		HybridAnalysis:      feeds.NewRepository(model.SourceHybridAnalysis),
		VirusShare:          feeds.NewRepository(model.SourceVirusShare),
		Zone:                dnssim.NewZone(),
		OSINT:               osint.NewDefaultStore(),
		Pools:               pool.NewDirectory(network),
		Network:             network,
		Scanner:             avsim.NewScanner(),
		SampleTruths:        map[string]avsim.SampleTruth{},
		GroundTruthBySample: map[string]int{},
	}
	g := &generator{
		cfg:       cfg,
		rng:       rng,
		wallets:   wallet.NewGenerator(rng),
		uni:       uni,
		poolSpecs: pool.KnownMoneroPools(),
		poolWeights: []weightedPool{
			{"crypto-pool", "mine.crypto-pool.fr", 0.30},
			{"dwarfpool", "xmr-eu.dwarfpool.com", 0.20},
			{"minexmr", "pool.minexmr.com", 0.18},
			{"supportxmr", "pool.supportxmr.com", 0.07},
			{"nanopool", "xmr-eu1.nanopool.org", 0.06},
			{"monerohash", "monerohash.com", 0.05},
			{"ppxxmr", "pool.ppxxmr.com", 0.04},
			{"prohash", "xmr.prohash.net", 0.04},
			{"poolto", "xmr.poolto.be", 0.03},
			{"moneropool", "moneropool.com", 0.03},
		},
	}

	g.seedDNS()
	g.seedStockTools()
	g.generateCampaigns()
	if cfg.IncludeCaseStudies {
		g.generateCaseStudies()
	}
	g.generateMalwareReuse()
	g.generateNoise()

	uni.Corpus = feeds.Aggregate(uni.AllFeeds()...)
	return uni
}

// seedDNS creates A records for every known pool domain.
func (g *generator) seedDNS() {
	for _, spec := range g.poolSpecs {
		for i, dom := range spec.Domains {
			ip := fmt.Sprintf("94.130.%d.%d", 10+i, 10+len(dom)%200)
			g.uni.Zone.AddA(dom, ip, time.Time{})
		}
	}
}

// seedStockTools fabricates the catalogue of stock mining tools (xmrig,
// claymore, ...) with several versions each, registers their hashes and
// donation wallets in the OSINT store, and keeps their content so forked
// variants can be attributed by fuzzy hashing.
func (g *generator) seedStockTools() {
	versionsPerTool := map[string]int{
		"xmrig": 8, "claymore": 5, "xmr-stak": 6, "niceHash": 4, "ccminer": 3,
		"learnMiner": 2, "cast-xmr": 2, "jceMiner": 2, "srbMiner": 2, "yam": 2,
		"cpuminer-multi": 3, "ethminer": 2, "lolMiner": 2,
	}
	for _, name := range osint.StockToolNames {
		nVer := versionsPerTool[name]
		if nVer == 0 {
			nVer = 2
		}
		donation := g.wallets.Monero()
		g.uni.OSINT.AddDonationWallet(donation, name)
		g.uni.DonationWallets = append(g.uni.DonationWallets, donation)
		base := g.toolBaseContent(name)
		for v := 0; v < nVer; v++ {
			version := fmt.Sprintf("%d.%d.%d", 1+v/4, v%4, g.rng.Intn(10))
			content := g.toolVersionContent(base, name, version, donation)
			sha, _ := binfmt.Hashes(content)
			g.uni.OSINT.AddStockTool(osint.StockTool{
				Name: name, Version: version, SHA256: sha, Content: content,
			})
		}
	}
}

// toolBaseContent fabricates the shared "code" of a mining framework; versions
// derive from it with small modifications so fuzzy hashing clusters them.
func (g *generator) toolBaseContent(name string) []byte {
	body := make([]byte, 180*1024+g.rng.Intn(64*1024))
	// Deterministic pseudo-code: repetitive opcode-like filler seeded per tool.
	seed := int64(0)
	for _, c := range name {
		seed = seed*31 + int64(c)
	}
	local := rand.New(rand.NewSource(seed))
	chunk := []byte("55 8B EC 83 EC 08 53 56 57 cryptonight_hash_v0 aes_round mul128 ")
	for i := 0; i < len(body); {
		if local.Intn(4) == 0 {
			n := local.Intn(48) + 16
			if i+n > len(body) {
				n = len(body) - i
			}
			local.Read(body[i : i+n])
			i += n
		} else {
			i += copy(body[i:], chunk)
		}
	}
	return body
}

func (g *generator) toolVersionContent(base []byte, name, version, donation string) []byte {
	b := binfmt.NewBuilder(model.FormatPE).
		AddString(name+" "+version).
		AddString("usage: "+name+" -o <pool> -u <wallet> -p <pass>").
		AddString("donate-level default 5% wallet "+donation).
		AddSection(".text", base)
	content := b.Build()
	// Small per-version patch.
	if len(content) > 4096 {
		off := 2048 + g.rng.Intn(1024)
		copy(content[off:off+16], []byte(version + "-patchpad00000")[:16])
	}
	return content
}

// pickPool returns a weighted-random pool (name, stratum domain).
func (g *generator) pickPool() (string, string) {
	r := g.rng.Float64()
	cum := 0.0
	for _, wp := range g.poolWeights {
		cum += wp.weight
		if r < cum {
			return wp.name, wp.domain
		}
	}
	last := g.poolWeights[len(g.poolWeights)-1]
	return last.name, last.domain
}

// campaignSizeProfile draws a heavy-tailed (Pareto-like) botnet size.
func (g *generator) campaignSizeProfile() int {
	u := g.rng.Float64()
	switch {
	case u < 0.012: // the multi-million-earning whales
		return 5000 + g.rng.Intn(9000)
	case u < 0.05:
		return 1000 + g.rng.Intn(3000)
	case u < 0.16:
		return 150 + g.rng.Intn(800)
	case u < 0.50:
		return 20 + g.rng.Intn(150)
	default:
		return 1 + g.rng.Intn(20)
	}
}

// campaignWindow draws start/end dates weighted toward the 2016-2018 surge.
func (g *generator) campaignWindow(currency model.Currency) (time.Time, time.Time) {
	var startYear int
	u := g.rng.Float64()
	if currency == model.CurrencyBitcoin {
		// Bitcoin campaigns skew early (2012-2016).
		switch {
		case u < 0.15:
			startYear = 2012
		case u < 0.35:
			startYear = 2013
		case u < 0.60:
			startYear = 2014
		case u < 0.80:
			startYear = 2015
		default:
			startYear = 2016
		}
	} else {
		switch {
		case u < 0.02:
			startYear = 2014
		case u < 0.06:
			startYear = 2015
		case u < 0.18:
			startYear = 2016
		case u < 0.60:
			startYear = 2017
		case u < 0.97:
			startYear = 2018
		default:
			startYear = 2019
		}
	}
	start := model.Date(startYear, time.Month(1+g.rng.Intn(12)), 1+g.rng.Intn(28))
	if start.Before(g.cfg.Start) {
		start = g.cfg.Start
	}
	// Duration: mostly under a year, a few multi-year.
	var months int
	switch v := g.rng.Float64(); {
	case v < 0.45:
		months = 1 + g.rng.Intn(6)
	case v < 0.85:
		months = 6 + g.rng.Intn(12)
	case v < 0.97:
		months = 18 + g.rng.Intn(18)
	default:
		months = 36 + g.rng.Intn(18)
	}
	end := start.AddDate(0, months, 0)
	if end.After(g.cfg.End) {
		end = g.cfg.End
	}
	if !end.After(start) {
		end = start.AddDate(0, 1, 0)
	}
	return start, end
}

func (g *generator) generateCampaigns() {
	id := 0
	for i := 0; i < g.cfg.MoneroCampaigns; i++ {
		id++
		g.generateCampaign(id, model.CurrencyMonero, false)
	}
	for i := 0; i < g.cfg.BitcoinCampaigns; i++ {
		id++
		g.generateCampaign(id, model.CurrencyBitcoin, false)
	}
	others := []model.Currency{
		model.CurrencyZcash, model.CurrencyElectroneum, model.CurrencyEthereum,
		model.CurrencyAeon, model.CurrencySumokoin, model.CurrencyIntense,
		model.CurrencyTurtlecoin, model.CurrencyBytecoin,
	}
	for i := 0; i < g.cfg.OtherCurrencyCampaigns; i++ {
		id++
		// Heavily skewed toward the first few currencies, like Table IV.
		idx := int(math.Floor(math.Pow(g.rng.Float64(), 2) * float64(len(others))))
		if idx >= len(others) {
			idx = len(others) - 1
		}
		g.generateCampaign(id, others[idx], false)
	}
	for i := 0; i < g.cfg.EmailCampaigns; i++ {
		id++
		g.generateCampaign(id, model.CurrencyEmail, false)
	}
}
