package ecosim

import (
	"testing"

	"cryptomining/internal/model"
	"cryptomining/internal/spec"
)

// smallUniverse generates a small ecosystem once per test binary.
var smallUniverse = Generate(SmallConfig())

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(SmallConfig())
	b := Generate(SmallConfig())
	if a.Corpus.Len() != b.Corpus.Len() {
		t.Fatalf("corpus sizes differ: %d vs %d", a.Corpus.Len(), b.Corpus.Len())
	}
	ah, bh := a.Corpus.Hashes(), b.Corpus.Hashes()
	for i := range ah {
		if ah[i] != bh[i] {
			t.Fatalf("corpus hash %d differs between runs", i)
		}
	}
	if len(a.Campaigns) != len(b.Campaigns) {
		t.Fatalf("campaign counts differ")
	}
	for i := range a.Campaigns {
		if a.Campaigns[i].ExpectedXMR != b.Campaigns[i].ExpectedXMR {
			t.Fatalf("campaign %d expected XMR differs", i)
		}
	}
}

func TestUniverseCounts(t *testing.T) {
	u := smallUniverse
	cfg := u.Config
	wantCampaigns := cfg.MoneroCampaigns + cfg.BitcoinCampaigns + cfg.OtherCurrencyCampaigns +
		cfg.EmailCampaigns + 3 // two case studies + pre-2014 reuse
	if len(u.Campaigns) != wantCampaigns {
		t.Errorf("campaigns = %d, want %d", len(u.Campaigns), wantCampaigns)
	}
	if u.Corpus.Len() < 300 {
		t.Errorf("corpus = %d samples, expected several hundred", u.Corpus.Len())
	}
	// Every campaign sample is present in the corpus and the ground-truth map.
	for _, c := range u.Campaigns {
		for _, s := range append(append([]string{}, c.Samples...), c.Droppers...) {
			if _, ok := u.Corpus.Get(s); !ok {
				t.Fatalf("campaign %d sample %s missing from corpus", c.ID, s)
			}
			if u.GroundTruthBySample[s] != c.ID {
				t.Fatalf("ground truth mapping wrong for %s", s)
			}
		}
	}
}

func TestCurrencyMixMoneroDominant(t *testing.T) {
	u := smallUniverse
	byCurrency := map[model.Currency]int{}
	for _, c := range u.Campaigns {
		byCurrency[c.Currency]++
	}
	if byCurrency[model.CurrencyMonero] <= byCurrency[model.CurrencyBitcoin] {
		t.Errorf("Monero campaigns (%d) should outnumber Bitcoin (%d)",
			byCurrency[model.CurrencyMonero], byCurrency[model.CurrencyBitcoin])
	}
	if byCurrency[model.CurrencyEmail] == 0 {
		t.Error("e-mail (minergate) campaigns should exist")
	}
}

func TestHeavyTailedEarnings(t *testing.T) {
	u := smallUniverse
	var total float64
	var earnings []float64
	for _, c := range u.Campaigns {
		if c.ExpectedXMR > 0 {
			earnings = append(earnings, c.ExpectedXMR)
			total += c.ExpectedXMR
		}
	}
	if len(earnings) < 20 {
		t.Fatalf("too few earning campaigns: %d", len(earnings))
	}
	// Top 10 campaigns should account for a large share of all earnings
	// (the paper: top-10 mine more than the remaining 2,225 together).
	var top10 float64
	sorted := append([]float64(nil), earnings...)
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] > sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	for i := 0; i < 10 && i < len(sorted); i++ {
		top10 += sorted[i]
	}
	if top10 < total*0.4 {
		t.Errorf("top-10 share = %.2f, expected a heavy tail (>40%%)", top10/total)
	}
}

func TestCaseStudiesPresent(t *testing.T) {
	u := smallUniverse
	var freebuf, usa *GroundTruthCampaign
	for _, c := range u.Campaigns {
		switch c.ID {
		case FreebufCampaignID:
			freebuf = c
		case USA138CampaignID:
			usa = c
		}
	}
	if freebuf == nil || usa == nil {
		t.Fatal("case-study campaigns missing")
	}
	if len(freebuf.Wallets) != 7 || len(freebuf.Samples) != 40 {
		t.Errorf("freebuf-like: %d wallets / %d samples", len(freebuf.Wallets), len(freebuf.Samples))
	}
	if freebuf.ExpectedXMR <= usa.ExpectedXMR {
		t.Errorf("freebuf-like (%v XMR) should out-earn usa-138-like (%v XMR)",
			freebuf.ExpectedXMR, usa.ExpectedXMR)
	}
	// The banned wallets at minexmr.
	minexmr, _ := u.Pools.Get("minexmr")
	if !minexmr.IsBanned(freebuf.Wallets[0]) || !minexmr.IsBanned(freebuf.Wallets[1]) {
		t.Error("freebuf-like wallets 0 and 1 should be banned at minexmr")
	}
	// USA-138-like includes an Electroneum wallet.
	foundETN := false
	for _, w := range usa.Wallets {
		if len(w) == 98 && w[:3] == "etn" {
			foundETN = true
		}
	}
	if !foundETN {
		t.Error("usa-138-like should include an Electroneum wallet")
	}
}

func TestMalwareReuseCampaign(t *testing.T) {
	u := smallUniverse
	var reuse *GroundTruthCampaign
	for _, c := range u.Campaigns {
		if c.Name == "pre-2014-reuse" {
			reuse = c
		}
	}
	if reuse == nil {
		t.Fatal("pre-2014 reuse campaign missing")
	}
	if len(reuse.Samples) != 4 {
		t.Errorf("reuse samples = %d, want 4", len(reuse.Samples))
	}
	pre2014 := 0
	for _, s := range reuse.Samples {
		sample, ok := u.Corpus.Get(s)
		if !ok {
			t.Fatalf("reuse sample missing from corpus")
		}
		if sample.FirstSeen.Year() < 2014 {
			pre2014++
		}
	}
	if pre2014 != 4 {
		t.Errorf("pre-2014 first-seen samples = %d, want 4", pre2014)
	}
}

func TestCNAMEAliasesRegisteredInZone(t *testing.T) {
	u := smallUniverse
	count := 0
	for _, c := range u.Campaigns {
		if !c.UsesCNAME || c.CNAMEDomain == "" {
			continue
		}
		count++
		hist := u.Zone.History(c.CNAMEDomain)
		if len(hist) == 0 {
			t.Errorf("campaign %d CNAME %q not registered in the zone", c.ID, c.CNAMEDomain)
		}
	}
	if count < 2 {
		t.Errorf("expected at least a couple of CNAME campaigns, got %d", count)
	}
}

func TestMiningActivityRecordedAtPools(t *testing.T) {
	u := smallUniverse
	withEarnings := 0
	for _, c := range u.Campaigns {
		if c.Currency != model.CurrencyMonero || len(c.Pools) == 0 {
			continue
		}
		if c.ExpectedXMR > 0 {
			withEarnings++
			// At least one wallet has activity at one of the campaign's pools.
			found := false
			for _, pn := range c.Pools {
				p, ok := u.Pools.Get(pn)
				if !ok {
					continue
				}
				for _, w := range c.Wallets {
					if p.TotalPaid(w) > 0 {
						found = true
					}
				}
			}
			if !found {
				t.Fatalf("campaign %d claims %v XMR but no pool shows payments", c.ID, c.ExpectedXMR)
			}
		}
	}
	if withEarnings < 20 {
		t.Errorf("Monero campaigns with earnings = %d, expected more", withEarnings)
	}
}

func TestStaleCampaignsStopEarningAtFork(t *testing.T) {
	u := smallUniverse
	fork := model.Date(2018, 4, 6)
	checked := 0
	for _, c := range u.Campaigns {
		if c.Currency != model.CurrencyMonero || c.MaintainsUpdates || len(c.Pools) == 0 {
			continue
		}
		if !c.Start.Before(fork) || !c.End.After(fork.AddDate(0, 1, 0)) {
			continue
		}
		// A non-updating campaign spanning the fork: its last accepted share
		// must not be meaningfully after the fork.
		for _, pn := range c.Pools {
			p, ok := u.Pools.Get(pn)
			if !ok {
				continue
			}
			for _, w := range c.Wallets {
				st, err := p.Stats(w, u.Config.QueryTime)
				if err != nil || st.TotalPaid == 0 {
					continue
				}
				checked++
				if st.LastShare.After(fork.AddDate(0, 1, 0)) {
					t.Errorf("campaign %d wallet at %s has shares after the fork despite not updating (last share %v)",
						c.ID, pn, st.LastShare)
				}
			}
		}
	}
	if checked == 0 {
		t.Skip("no non-updating campaigns spanning the fork in this configuration")
	}
}

func TestSampleTruthsCoverCorpus(t *testing.T) {
	u := smallUniverse
	missing := 0
	for _, h := range u.Corpus.Hashes() {
		if _, ok := u.SampleTruths[h]; !ok {
			missing++
		}
	}
	if missing != 0 {
		t.Errorf("%d corpus samples have no AV ground truth", missing)
	}
}

func TestSamplesCarryExtractableBehaviour(t *testing.T) {
	u := smallUniverse
	// Every miner sample of every campaign must embed a behaviour blob whose
	// wallet matches one of the campaign's wallets.
	checked := 0
	for _, c := range u.Campaigns {
		for _, h := range c.Samples {
			sample, _ := u.Corpus.Get(h)
			b, ok := spec.Extract(sample.Content)
			if !ok {
				t.Fatalf("campaign %d sample %s has no behaviour blob", c.ID, h)
			}
			if !b.IsMiner {
				t.Fatalf("campaign %d sample %s behaviour is not a miner", c.ID, h)
			}
			match := false
			for _, w := range c.Wallets {
				if b.Wallet == w {
					match = true
				}
			}
			if !match {
				t.Fatalf("campaign %d sample %s wallet %q not in campaign wallets", c.ID, h, model.ShortHash(b.Wallet))
			}
			checked++
		}
	}
	if checked < 100 {
		t.Errorf("checked only %d miner samples", checked)
	}
}

func TestScaleConfig(t *testing.T) {
	base := DefaultConfig()
	half := base.Scale(0.5)
	if half.MoneroCampaigns >= base.MoneroCampaigns {
		t.Errorf("scaled Monero campaigns = %d", half.MoneroCampaigns)
	}
	tiny := base.Scale(0.0001)
	if tiny.MoneroCampaigns < 1 {
		t.Error("scaling should never drop below 1 campaign")
	}
}

func TestDonationWalletsRegistered(t *testing.T) {
	u := smallUniverse
	if len(u.DonationWallets) != 13 {
		t.Errorf("donation wallets = %d, want one per stock tool framework", len(u.DonationWallets))
	}
	for _, w := range u.DonationWallets {
		if _, ok := u.OSINT.IsDonationWallet(w); !ok {
			t.Errorf("donation wallet %s not whitelisted", model.ShortHash(w))
		}
	}
	if u.OSINT.StockToolCount() < 20 {
		t.Errorf("stock tool versions = %d, want dozens", u.OSINT.StockToolCount())
	}
}

func TestFeedOverlap(t *testing.T) {
	u := smallUniverse
	counts := u.Corpus.CountBySource()
	if counts[model.SourceVirusTotal] <= counts[model.SourcePaloAlto] {
		t.Errorf("VirusTotal (%d) should be the largest source, Palo Alto %d",
			counts[model.SourceVirusTotal], counts[model.SourcePaloAlto])
	}
	if counts[model.SourceHybridAnalysis] == 0 || counts[model.SourceVirusShare] == 0 {
		t.Error("smaller feeds should contribute at least a few samples")
	}
}
