package ecosim

import (
	"bytes"
	"strings"
	"testing"

	"cryptomining/internal/spec"
)

func TestStreamDeterministicAcrossRuns(t *testing.T) {
	const n = 3000
	a := NewStream(StreamConfig{Seed: 7})
	b := NewStream(StreamConfig{Seed: 7})
	for i := 0; i < n; i++ {
		sa, sb := a.Next(), b.Next()
		if sa.Sample.SHA256 != sb.Sample.SHA256 || !bytes.Equal(sa.Sample.Content, sb.Sample.Content) {
			t.Fatalf("sample %d diverged between same-seed streams", i)
		}
		if !sa.Sample.FirstSeen.Equal(sb.Sample.FirstSeen) || sa.CampaignID != sb.CampaignID {
			t.Fatalf("sample %d metadata diverged between same-seed streams", i)
		}
	}
	c := NewStream(StreamConfig{Seed: 8})
	if a.Next().Sample.SHA256 == c.Next().Sample.SHA256 {
		t.Fatalf("different seeds produced the same first sample")
	}
}

func TestStreamLedgerDoesNotPerturbEmission(t *testing.T) {
	const n = 2000
	plain := NewStream(StreamConfig{Seed: 11})
	ledger := NewStream(StreamConfig{Seed: 11, Ledger: true})
	for i := 0; i < n; i++ {
		sa, sb := plain.Next(), ledger.Next()
		if sa.Sample.SHA256 != sb.Sample.SHA256 {
			t.Fatalf("sample %d diverged once ledger simulation was enabled — "+
				"a ledger-side effect is consuming generator RNG", i)
		}
	}
	// The ledger run must actually have credited earnings somewhere.
	var paid float64
	for _, p := range ledger.Pools().Pools() {
		paid += p.TotalPaidAll()
	}
	if paid <= 0 {
		t.Fatalf("ledger mode simulated no mining")
	}
	if paidPlain := func() float64 {
		var v float64
		for _, p := range plain.Pools().Pools() {
			v += p.TotalPaidAll()
		}
		return v
	}(); paidPlain != 0 {
		t.Fatalf("plain mode touched the ledgers: %v XMR", paidPlain)
	}
}

func TestStreamBoundedWorkingSet(t *testing.T) {
	s := NewStream(StreamConfig{Seed: 3, ActiveCampaigns: 16})
	for i := 0; i < 5000; i++ {
		s.Next()
		if got := s.ActiveCampaignCount(); got != 16 {
			t.Fatalf("working set drifted to %d campaigns after %d samples", got, i+1)
		}
	}
}

func TestStreamChurnPoolsAndWalletReuse(t *testing.T) {
	s := NewStream(StreamConfig{Seed: 5, Ledger: true})
	walletCampaigns := map[string]map[int]bool{}
	var churnSample bool
	for i := 0; i < 20000; i++ {
		out := s.Next()
		if out.CampaignID == 0 {
			continue
		}
		if b, ok := spec.Extract(out.Sample.Content); ok && b.Wallet != "" {
			set := walletCampaigns[b.Wallet]
			if set == nil {
				set = map[int]bool{}
				walletCampaigns[b.Wallet] = set
			}
			set[out.CampaignID] = true
		}
		if strings.Contains(string(out.Sample.Content), "churnpool-") {
			churnSample = true
		}
	}
	var reused int
	for _, set := range walletCampaigns {
		if len(set) > 1 {
			reused++
		}
	}
	if reused == 0 {
		t.Fatalf("no wallet was ever reused across campaigns over 20k samples")
	}
	var churn int
	for _, name := range s.Pools().Names() {
		if strings.HasPrefix(name, "churnpool-") {
			churn++
		}
	}
	if churn == 0 {
		t.Fatalf("no churn pools appeared over 20k samples")
	}
	if !churnSample {
		t.Fatalf("no sample ever pointed its miner at a churn pool")
	}
}
