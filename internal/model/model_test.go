package model

import (
	"testing"
	"testing/quick"
	"time"
)

func TestAVReportPositives(t *testing.T) {
	r := AVReport{
		SHA256: "abc",
		Verdicts: []AVVerdict{
			{Vendor: "A", Detected: true, Label: "Trojan.CoinMiner"},
			{Vendor: "B", Detected: false},
			{Vendor: "C", Detected: true, Label: "Win32.BitCoinMiner"},
			{Vendor: "D", Detected: true, Label: "Generic.Malware"},
		},
	}
	if got := r.Positives(); got != 3 {
		t.Errorf("Positives() = %d, want 3", got)
	}
	if got := r.MinerLabels(); got != 2 {
		t.Errorf("MinerLabels() = %d, want 2", got)
	}
}

func TestAVReportEmpty(t *testing.T) {
	var r AVReport
	if r.Positives() != 0 || r.MinerLabels() != 0 {
		t.Errorf("empty report should have zero positives and miner labels")
	}
}

func TestRecordHasIdentifier(t *testing.T) {
	r := Record{}
	if r.HasIdentifier() {
		t.Error("empty record should not have identifier")
	}
	r.User = "4AbCd"
	if !r.HasIdentifier() {
		t.Error("record with User should have identifier")
	}
}

func TestBucketFor(t *testing.T) {
	tests := []struct {
		xmr  float64
		want ProfitBucket
	}{
		{0, BucketUnder100},
		{0.5, BucketUnder100},
		{99.99, BucketUnder100},
		{100, Bucket100To1K},
		{999, Bucket100To1K},
		{1000, Bucket1KTo10K},
		{9999.9, Bucket1KTo10K},
		{10000, BucketOver10K},
		{163756, BucketOver10K},
	}
	for _, tt := range tests {
		if got := BucketFor(tt.xmr); got != tt.want {
			t.Errorf("BucketFor(%v) = %v, want %v", tt.xmr, got, tt.want)
		}
	}
}

func TestFineBucketFor(t *testing.T) {
	tests := []struct {
		xmr  float64
		want ProfitBucket
	}{
		{0.2, BucketUnder1},
		{1, ProfitBucket("[1-100)")},
		{50, ProfitBucket("[1-100)")},
		{100, Bucket100To1K},
		{5000, Bucket1KTo10K},
		{20000, BucketOver10K},
	}
	for _, tt := range tests {
		if got := FineBucketFor(tt.xmr); got != tt.want {
			t.Errorf("FineBucketFor(%v) = %v, want %v", tt.xmr, got, tt.want)
		}
	}
}

func TestCampaignDurationYears(t *testing.T) {
	c := Campaign{
		FirstSeen: Date(2014, time.August, 30),
		LastSeen:  Date(2019, time.April, 1),
	}
	if got := c.DurationYears(); got != 4 {
		t.Errorf("DurationYears() = %d, want 4", got)
	}
	// Zero / inverted ranges clamp to zero.
	c2 := Campaign{}
	if c2.DurationYears() != 0 {
		t.Error("zero campaign should have 0 years")
	}
	c3 := Campaign{FirstSeen: Date(2019, 1, 1), LastSeen: Date(2018, 1, 1)}
	if c3.DurationYears() != 0 {
		t.Error("inverted range should have 0 years")
	}
}

// TestCampaignDurationYearsCalendar is the leap-year regression: whole years
// are calendar years, not 365-day blocks. The old hours/(24*365) division
// accumulated one spurious day per leap year crossed, misbucketing
// multi-year campaigns near year boundaries.
func TestCampaignDurationYearsCalendar(t *testing.T) {
	cases := []struct {
		firstSeen time.Time
		lastSeen  time.Time
		want      int
	}{
		// 12 whole calendar years, but >13*365 days: the division said 13.
		{firstSeen: Date(2008, 1, 1), lastSeen: Date(2020, 12, 31), want: 12},
		// Exactly one year across a leap day.
		{firstSeen: Date(2016, 2, 1), lastSeen: Date(2017, 2, 1), want: 1},
		// One day short of a year across a leap day.
		{firstSeen: Date(2016, 3, 1), lastSeen: Date(2017, 2, 28), want: 0},
		// Anniversary day itself counts as a whole year.
		{firstSeen: Date(2014, 8, 30), lastSeen: Date(2019, 8, 30), want: 5},
		// The day before the anniversary does not.
		{firstSeen: Date(2014, 8, 30), lastSeen: Date(2019, 8, 29), want: 4},
		// Same day: zero.
		{firstSeen: Date(2015, 6, 1), lastSeen: Date(2015, 6, 1), want: 0},
	}
	for _, tc := range cases {
		c := Campaign{FirstSeen: tc.firstSeen, LastSeen: tc.lastSeen}
		if got := c.DurationYears(); got != tc.want {
			t.Errorf("DurationYears(%s..%s) = %d, want %d",
				tc.firstSeen.Format("2006-01-02"), tc.lastSeen.Format("2006-01-02"), got, tc.want)
		}
	}
}

func TestSortStrings(t *testing.T) {
	in := []string{"b", "a", "b", "c", "a"}
	out := SortStrings(in)
	want := []string{"a", "b", "c"}
	if len(out) != len(want) {
		t.Fatalf("SortStrings() = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("SortStrings()[%d] = %q, want %q", i, out[i], want[i])
		}
	}
	if got := SortStrings(nil); len(got) != 0 {
		t.Errorf("SortStrings(nil) = %v, want empty", got)
	}
}

func TestSortStringsProperty(t *testing.T) {
	// Property: output is sorted, deduplicated, and a subset of the input set.
	f := func(in []string) bool {
		seen := map[string]bool{}
		for _, s := range in {
			seen[s] = true
		}
		cp := append([]string(nil), in...)
		out := SortStrings(cp)
		for i := 1; i < len(out); i++ {
			if out[i-1] >= out[i] {
				return false
			}
		}
		if len(out) != len(seen) {
			return false
		}
		for _, s := range out {
			if !seen[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShortHash(t *testing.T) {
	if got := ShortHash("496ePyKvPBxyz1234567890"); got != "496ePyKvPB..." {
		t.Errorf("ShortHash long = %q", got)
	}
	if got := ShortHash("abc"); got != "abc" {
		t.Errorf("ShortHash short = %q", got)
	}
}

func TestFormatXMR(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{163756, "163,756"},
		{1, "1"},
		{0, "0"},
		{999, "999"},
		{1000, "1,000"},
		{429393, "429,393"},
		{1234567, "1,234,567"},
	}
	for _, tt := range tests {
		if got := FormatXMR(tt.in); got != tt.want {
			t.Errorf("FormatXMR(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestFormatUSD(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{20e6, "20 M"},
		{323e3, "323 K"},
		{42, "42"},
		{58e6, "58 M"},
	}
	for _, tt := range tests {
		if got := FormatUSD(tt.in); got != tt.want {
			t.Errorf("FormatUSD(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestSampleClone(t *testing.T) {
	s := &Sample{
		SHA256:  "deadbeef",
		Content: []byte{1, 2, 3},
		Sources: []Source{SourceVirusTotal},
		ITWURLs: []string{"http://example.com/a.exe"},
		Parents: []string{"p1"},
	}
	c := s.Clone()
	c.Content[0] = 99
	c.Sources[0] = SourcePaloAlto
	c.ITWURLs[0] = "changed"
	if s.Content[0] != 1 || s.Sources[0] != SourceVirusTotal || s.ITWURLs[0] != "http://example.com/a.exe" {
		t.Error("Clone() did not deep-copy slices")
	}
}

func TestDateHelper(t *testing.T) {
	d := Date(2018, time.April, 6)
	if d.Year() != 2018 || d.Month() != time.April || d.Day() != 6 || d.Location() != time.UTC {
		t.Errorf("Date() = %v", d)
	}
}
