// Package model defines the shared data types used across the crypto-mining
// malware measurement pipeline: malware samples, per-sample extraction records
// (Table I of the paper), per-wallet mining statistics (Table II), payments,
// campaigns and indicators of compromise.
//
// Keeping these types in a leaf package lets every substrate (feeds, sandbox,
// static analysis, pools, campaign aggregation, profit analysis) exchange data
// without import cycles.
package model

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Currency identifies a cryptocurrency (or the absence of one) associated with
// a mining identifier extracted from a sample.
type Currency string

// Currencies observed in the paper's dataset (Table IV).
const (
	CurrencyUnknown     Currency = "unknown"
	CurrencyMonero      Currency = "XMR"
	CurrencyBitcoin     Currency = "BTC"
	CurrencyZcash       Currency = "ZEC"
	CurrencyElectroneum Currency = "ETN"
	CurrencyEthereum    Currency = "ETH"
	CurrencyAeon        Currency = "AEON"
	CurrencySumokoin    Currency = "SUMO"
	CurrencyIntense     Currency = "ITNS"
	CurrencyTurtlecoin  Currency = "TRTL"
	CurrencyBytecoin    Currency = "BCN"
	CurrencyLitecoin    Currency = "LTC"
	CurrencyDogecoin    Currency = "DOGE"
	CurrencyEmail       Currency = "email" // identifier is an e-mail address, not a wallet
)

// ExecutableFormat is the container format of a binary sample.
type ExecutableFormat string

// Executable formats the sanity checks accept (the paper keeps PE, ELF and JAR).
const (
	FormatUnknown ExecutableFormat = "unknown"
	FormatPE      ExecutableFormat = "PE"
	FormatELF     ExecutableFormat = "ELF"
	FormatJAR     ExecutableFormat = "JAR"
	FormatZIP     ExecutableFormat = "ZIP"
	FormatScript  ExecutableFormat = "script"
	FormatHTML    ExecutableFormat = "HTML"
)

// SampleType distinguishes binaries with mining capability from the auxiliary
// binaries (droppers, loaders, bot clients) used to run a mining operation.
type SampleType string

const (
	// TypeMiner marks a sample with mining capability and an associated
	// identifier and pool endpoint.
	TypeMiner SampleType = "Miner"
	// TypeAncillary marks droppers, loaders and other auxiliary binaries.
	TypeAncillary SampleType = "Ancillary"
)

// Source names a malware feed that contributed a sample.
type Source string

// Feed sources used in the paper (Table III).
const (
	SourceVirusTotal     Source = "VirusTotal"
	SourcePaloAlto       Source = "PaloAltoNetworks"
	SourceHybridAnalysis Source = "HybridAnalysis"
	SourceVirusShare     Source = "VirusShare"
	SourceCrawler        Source = "Crawler"
)

// AnalysisResource names the kind of analysis that produced an observation.
type AnalysisResource string

// Analysis resources reported in Table III.
const (
	ResourceSandbox AnalysisResource = "Sandbox"
	ResourceNetwork AnalysisResource = "Network"
	ResourceBinary  AnalysisResource = "Binary"
)

// Sample is a raw malware sample as delivered by a feed: content plus the feed
// metadata the paper relies on (first-seen date, in-the-wild URLs, parents).
type Sample struct {
	// SHA256 is the hex-encoded SHA-256 of Content and the primary key for
	// the sample throughout the pipeline.
	SHA256 string
	// MD5 is the hex-encoded MD5, kept because OSINT IoCs frequently use it.
	MD5 string
	// Content is the raw binary content of the sample.
	Content []byte
	// Sources lists every feed the sample was observed in.
	Sources []Source
	// FirstSeen is the earliest date the sample was observed in the wild.
	FirstSeen time.Time
	// ITWURLs are URLs hosting or contacted by the sample ("in the wild").
	ITWURLs []string
	// Parents are SHA256 hashes of samples known to have dropped this one.
	Parents []string
	// ContactedDomains are domains the sample resolved or contacted
	// according to feed metadata.
	ContactedDomains []string
	// DroppedHashes are SHA256 hashes of files this sample dropped.
	DroppedHashes []string
}

// Clone returns a deep copy of the sample.
func (s *Sample) Clone() *Sample {
	c := *s
	c.Content = append([]byte(nil), s.Content...)
	c.Sources = append([]Source(nil), s.Sources...)
	c.ITWURLs = append([]string(nil), s.ITWURLs...)
	c.Parents = append([]string(nil), s.Parents...)
	c.ContactedDomains = append([]string(nil), s.ContactedDomains...)
	c.DroppedHashes = append([]string(nil), s.DroppedHashes...)
	return &c
}

// AVVerdict is the output of one antivirus engine for one sample.
type AVVerdict struct {
	// Vendor is the engine name.
	Vendor string
	// Detected reports whether the engine flagged the sample as malicious.
	Detected bool
	// Label is the family label the engine assigned (empty when not detected).
	Label string
}

// AVReport aggregates the verdicts of all engines for one sample, mirroring a
// VirusTotal report.
type AVReport struct {
	SHA256    string
	Verdicts  []AVVerdict
	QueriedAt time.Time
}

// Positives returns the number of engines that flagged the sample.
func (r *AVReport) Positives() int {
	n := 0
	for _, v := range r.Verdicts {
		if v.Detected {
			n++
		}
	}
	return n
}

// MinerLabels returns the number of engines whose label mentions mining
// (e.g. "CoinMiner", "Miner", "BitCoinMiner").
func (r *AVReport) MinerLabels() int {
	n := 0
	for _, v := range r.Verdicts {
		if !v.Detected {
			continue
		}
		l := strings.ToLower(v.Label)
		if strings.Contains(l, "miner") || strings.Contains(l, "mining") {
			n++
		}
	}
	return n
}

// Record is the per-sample extraction record; it mirrors Table I of the paper.
type Record struct {
	SHA256    string           // hash value of the sample
	Pool      string           // normalized name of the mining pool
	URLPool   string           // URL (host:port) to which the sample mines
	User      string           // identifier used to mine in the pool
	Pass      string           // password used to authenticate in the pool
	NThreads  int              // number of CPU threads used for mining
	Agent     string           // user agent used for mining
	DstIP     string           // IP to which the sample mines
	DstPort   int              // port used for mining
	DNSRR     []string         // DNS resolutions observed
	Sources   []Source         // data feeds from which the data was obtained
	FirstSeen time.Time        // date when the sample was first seen
	ITWURLs   []string         // URLs hosting or contacted by the sample
	Packer    string           // associated packer used for obfuscation, if any
	Positives int              // number of positive detections by antivirus
	Type      SampleType       // Miner or Ancillary
	Currency  Currency         // currency derived from the identifier format
	Format    ExecutableFormat // executable container format
	Entropy   float64          // Shannon entropy of the binary content
	Parents   []string         // SHA256 of dropper ancestors
	Dropped   []string         // SHA256 of dropped files
	Resources []AnalysisResource
	// ProxyEndpoint is set (host:port) when the sample mines through a
	// proxy rather than directly against a known pool.
	ProxyEndpoint string
	// CNAMEAlias is set when URLPool is a domain alias (CNAME) that resolves
	// to a known mining pool; it holds the aliased pool name.
	CNAMEAlias string
	// StockTool is set when the sample (or a file it drops) matches a known
	// stock mining tool by exact or fuzzy hash; it holds the tool name.
	StockTool string
	// StockToolVersion is the matched version of the stock tool, if known.
	StockToolVersion string
	// Obfuscated reports whether the sample is packed or has entropy above
	// the obfuscation threshold.
	Obfuscated bool
	// PPIBotnet is set when OSINT links the sample to a Pay-Per-Install
	// botnet (Virut, Ramnit, Nitol).
	PPIBotnet string
	// KnownOperation is set when OSINT IoCs link the sample to a publicly
	// reported mining operation (Photominer, Adylkuzz, ...).
	KnownOperation string
}

// HasIdentifier reports whether an identifier (wallet or e-mail) was extracted.
func (r *Record) HasIdentifier() bool { return r.User != "" }

// Payment is one reward payment from a pool to a wallet.
type Payment struct {
	Pool      string
	Wallet    string
	Amount    float64 // in the pool's native currency (XMR for Monero pools)
	USD       float64 // converted with the exchange rate at Timestamp
	Timestamp time.Time
}

// WalletStats mirrors Table II: the public statistics a transparent pool
// exposes for one wallet.
type WalletStats struct {
	Pool        string
	User        string
	Hashes      uint64
	Hashrate    float64
	LastShare   time.Time
	Balance     float64
	TotalPaid   float64
	NumPayments int
	DateQuery   time.Time
	USD         float64
	Payments    []Payment
	// HistoricHashrate holds (timestamp, hashrate) samples when the pool
	// exposes historical data (the paper has this only for minexmr).
	HistoricHashrate []HashratePoint
	// Banned reports whether the pool has banned this wallet.
	Banned bool
	// BannedAt is the ban timestamp when Banned is true.
	BannedAt time.Time
}

// HashratePoint is one point of a historical hashrate series.
type HashratePoint struct {
	Timestamp time.Time
	Hashrate  float64
}

// IoCType classifies an indicator of compromise.
type IoCType string

// IoC types gathered from OSINT reports.
const (
	IoCHash   IoCType = "hash"
	IoCDomain IoCType = "domain"
	IoCIP     IoCType = "ip"
	IoCWallet IoCType = "wallet"
	IoCURL    IoCType = "url"
)

// IoC is a single indicator of compromise attributed to a known operation.
type IoC struct {
	Type      IoCType
	Value     string
	Operation string // e.g. "Photominer", "Adylkuzz"
	Source    string // OSINT report reference
}

// EdgeKind labels why two nodes of the campaign graph are connected; these are
// the grouping features of §III-E.
type EdgeKind string

// Grouping features used by the campaign aggregation.
const (
	EdgeSameIdentifier EdgeKind = "same-identifier"
	EdgeAncestor       EdgeKind = "ancestor"
	EdgeHosting        EdgeKind = "hosting"
	EdgeKnownCampaign  EdgeKind = "known-campaign"
	EdgeCNAMEAlias     EdgeKind = "cname-alias"
	EdgeProxy          EdgeKind = "proxy"
)

// NodeKind labels a node of the campaign graph.
type NodeKind string

// Node kinds in the campaign graph.
const (
	NodeSample    NodeKind = "sample"
	NodeWallet    NodeKind = "wallet"
	NodeHost      NodeKind = "host"
	NodeDomain    NodeKind = "domain"
	NodeProxy     NodeKind = "proxy"
	NodeOperation NodeKind = "operation"
	NodeAncillary NodeKind = "ancillary"
)

// Campaign is one connected component of the aggregation graph, enriched with
// infrastructure attribution and profit figures.
type Campaign struct {
	ID int
	// Samples are SHA256 hashes of the miner samples in the campaign.
	Samples []string
	// Ancillaries are SHA256 hashes of auxiliary samples in the campaign.
	Ancillaries []string
	// Wallets are the mining identifiers accumulated by the campaign.
	Wallets []string
	// Currencies observed across the campaign's wallets.
	Currencies []Currency
	// Pools the campaign mined at (normalized pool names).
	Pools []string
	// CNAMEs are domain aliases used to reach pools.
	CNAMEs []string
	// Proxies are proxy endpoints used by the campaign's samples.
	Proxies []string
	// HostingDomains are domains that hosted the campaign's samples.
	HostingDomains []string
	// PPIBotnets are Pay-Per-Install services observed spreading the samples.
	PPIBotnets []string
	// StockTools are stock mining frameworks attributed by (fuzzy) hashing.
	StockTools []string
	// KnownOperations are publicly reported operations matched by IoCs.
	KnownOperations []string
	// UsesObfuscation reports whether >=80% of the samples are obfuscated.
	UsesObfuscation bool
	// FirstSeen and LastSeen bound the campaign's activity period.
	FirstSeen time.Time
	LastSeen  time.Time
	// XMRMined is the total Monero paid to the campaign's wallets.
	XMRMined float64
	// USDEarned is the dynamic-rate USD equivalent of XMRMined.
	USDEarned float64
	// PaymentCount is the number of individual payments observed.
	PaymentCount int
	// Active reports whether the campaign received payments in the final
	// observation window of the measurement.
	Active bool
	// GroundTruthIDs holds the ecosystem-simulator campaign IDs represented
	// in this aggregate. Used only for validation; empty on real data.
	GroundTruthIDs []int
}

// DurationYears returns the number of whole calendar years between FirstSeen
// and LastSeen: the largest n with FirstSeen + n years <= LastSeen. Calendar
// arithmetic (not division by a fixed 365-day year) keeps multi-year
// campaigns from drifting across leap years — a span from 2008-01-01 to
// 2020-12-31 is 12 whole years, even though it covers more than 13*365 days.
func (c *Campaign) DurationYears() int {
	if c.FirstSeen.IsZero() || c.LastSeen.IsZero() || c.LastSeen.Before(c.FirstSeen) {
		return 0
	}
	years := c.LastSeen.Year() - c.FirstSeen.Year()
	if years > 0 && c.FirstSeen.AddDate(years, 0, 0).After(c.LastSeen) {
		years--
	}
	return years
}

// ProfitBucket classifies a campaign by the amount of XMR mined, matching the
// column groups of Table XI.
type ProfitBucket string

// Profit buckets of Table XI and Figure 5.
const (
	BucketUnder1      ProfitBucket = "<1"
	BucketUnder100    ProfitBucket = "<100"
	Bucket100To1K     ProfitBucket = "[100-1k)"
	Bucket1KTo10K     ProfitBucket = "[1k-10k)"
	BucketOver10K     ProfitBucket = ">=10k"
	BucketNoEarnings  ProfitBucket = "none"
	BucketUnknownPool ProfitBucket = "opaque"
)

// BucketFor returns the Table XI profit bucket for an XMR amount.
func BucketFor(xmr float64) ProfitBucket {
	switch {
	case xmr >= 10000:
		return BucketOver10K
	case xmr >= 1000:
		return Bucket1KTo10K
	case xmr >= 100:
		return Bucket100To1K
	default:
		return BucketUnder100
	}
}

// FineBucketFor returns the Figure 5 bucket (which splits <1 from [1,100)).
func FineBucketFor(xmr float64) ProfitBucket {
	switch {
	case xmr >= 10000:
		return BucketOver10K
	case xmr >= 1000:
		return Bucket1KTo10K
	case xmr >= 100:
		return Bucket100To1K
	case xmr >= 1:
		return ProfitBucket("[1-100)")
	default:
		return BucketUnder1
	}
}

// SortStrings sorts and deduplicates a string slice in place, returning the
// deduplicated slice. Convenient for the many "set of names" fields above.
func SortStrings(in []string) []string {
	if len(in) == 0 {
		return in
	}
	sort.Strings(in)
	out := in[:1]
	for _, s := range in[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

// ShortHash abbreviates a hash or wallet for display, e.g. "496ePyKvPB...".
func ShortHash(s string) string {
	if len(s) <= 10 {
		return s
	}
	return s[:10] + "..."
}

// Date builds a UTC timestamp at midnight for the given date. It keeps test
// fixtures and the ecosystem simulator readable.
func Date(year int, month time.Month, day int) time.Time {
	return time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
}

// FormatXMR renders an XMR amount with thousands separators and no decimals
// for table output (e.g. 163756 -> "163,756").
func FormatXMR(v float64) string {
	return addThousands(fmt.Sprintf("%.0f", v))
}

// FormatUSD renders a USD amount in the compact style used by Table VIII
// (e.g. 20_000_000 -> "20 M", 323_000 -> "323 K").
func FormatUSD(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.0f M", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0f K", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func addThousands(s string) string {
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var b strings.Builder
	pre := len(s) % 3
	if pre > 0 {
		b.WriteString(s[:pre])
	}
	for i := pre; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	out := b.String()
	if neg {
		out = "-" + out
	}
	return out
}
