package sandbox

import (
	"strings"
	"testing"
	"time"

	"cryptomining/internal/binfmt"
	"cryptomining/internal/dnssim"
	"cryptomining/internal/model"
	"cryptomining/internal/spec"
	"cryptomining/internal/stratum"
)

func testZone() *dnssim.Zone {
	z := dnssim.NewZone()
	z.AddA("pool.minexmr.com", "94.130.12.30", time.Time{})
	z.AddCNAME("xt.freebuf.info", "pool.minexmr.com", time.Time{})
	z.AddA("github.com", "140.82.121.3", time.Time{})
	return z
}

func buildSample(b spec.Behavior, obfuscated bool) (string, []byte) {
	builder := binfmt.NewBuilder(model.FormatPE)
	if !obfuscated {
		builder.AddString(b.CommandLine)
	}
	content := append(builder.Build(), spec.Encode(b, obfuscated)...)
	sha, _ := binfmt.Hashes(content)
	return sha, content
}

func minerBehavior() spec.Behavior {
	return spec.Behavior{
		IsMiner:         true,
		PoolHost:        "xt.freebuf.info",
		PoolPort:        4444,
		Wallet:          "45c2ShhBmuTESTWALLET",
		Password:        "x",
		Threads:         2,
		Algo:            "cryptonight",
		ProcessName:     "svchost.exe",
		ContactsDomains: []string{"xt.freebuf.info"},
		DownloadsURLs:   []string{"https://github.com/xmrig/xmrig/releases/xmrig.exe"},
		DropsHashes:     []string{"deadbeefcafe"},
	}
}

func TestRunMinerSample(t *testing.T) {
	sb := New(dnssim.NewResolver(testZone()))
	sb.Clock = func() time.Time { return time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC) }
	b := minerBehavior()
	sha, content := buildSample(b, false)

	report := sb.Run(sha, content)
	if !report.MiningObserved {
		t.Fatal("mining should be observed")
	}
	if report.SHA256 != sha {
		t.Errorf("report hash = %q", report.SHA256)
	}
	// A miner child process with the wallet in its command line.
	var minerProc *Process
	for i := range report.Processes {
		if report.Processes[i].Name == "svchost.exe" {
			minerProc = &report.Processes[i]
		}
	}
	if minerProc == nil {
		t.Fatal("miner process not found in process tree")
	}
	if !strings.Contains(minerProc.CommandLine, b.Wallet) {
		t.Errorf("command line should contain the wallet: %q", minerProc.CommandLine)
	}
	if minerProc.Parent != 1000 {
		t.Errorf("miner process parent = %d, want dropper pid", minerProc.Parent)
	}

	// DNS: the CNAME alias resolution is captured.
	var aliasQuery *DNSQuery
	for i := range report.DNS {
		if report.DNS[i].Name == "xt.freebuf.info" {
			aliasQuery = &report.DNS[i]
		}
	}
	if aliasQuery == nil {
		t.Fatal("alias DNS query not captured")
	}
	if len(aliasQuery.CNAME) != 1 || aliasQuery.CNAME[0] != "pool.minexmr.com" {
		t.Errorf("CNAME chain = %v", aliasQuery.CNAME)
	}

	// Network: Stratum login frame with the wallet, parseable by the
	// network-analysis stage.
	capture := report.NetworkCapture()
	if !stratum.IsStratumTraffic(capture) {
		t.Error("capture should contain Stratum traffic")
	}
	logins := stratum.ParseTraffic(capture)
	if len(logins) != 1 || logins[0].Login != b.Wallet {
		t.Errorf("extracted logins = %+v", logins)
	}
	if len(report.Connections) != 1 || report.Connections[0].DstPort != 4444 {
		t.Errorf("connections = %+v", report.Connections)
	}
	if report.Connections[0].DstIP != "94.130.12.30" {
		t.Errorf("destination IP = %q (should follow the CNAME)", report.Connections[0].DstIP)
	}

	// Dropper artefacts.
	if len(report.DroppedHashes) != 1 || report.DroppedHashes[0] != "deadbeefcafe" {
		t.Errorf("dropped hashes = %v", report.DroppedHashes)
	}
	if len(report.DownloadedURLs) != 1 {
		t.Errorf("downloaded urls = %v", report.DownloadedURLs)
	}
}

func TestRunObfuscatedSampleStillObservable(t *testing.T) {
	// Packed samples hide strings, but dynamic analysis still reveals the
	// mining behaviour — the core reason the pipeline needs a sandbox.
	sb := New(dnssim.NewResolver(testZone()))
	b := minerBehavior()
	sha, content := buildSample(b, true)
	if strings.Contains(string(content), b.Wallet) {
		t.Fatal("obfuscated sample should not contain the wallet in cleartext")
	}
	report := sb.Run(sha, content)
	if !report.MiningObserved {
		t.Fatal("obfuscated miner should still be observed dynamically")
	}
	logins := stratum.ParseTraffic(report.NetworkCapture())
	if len(logins) != 1 || logins[0].Login != b.Wallet {
		t.Errorf("extracted logins from obfuscated sample = %+v", logins)
	}
}

func TestRunNonMinerSample(t *testing.T) {
	sb := New(dnssim.NewResolver(testZone()))
	b := spec.Behavior{
		IsMiner:         false,
		DownloadsURLs:   []string{"http://4i7i.com/11.exe"},
		DropsHashes:     []string{"feedface"},
		ContactsDomains: []string{"github.com"},
	}
	sha, content := buildSample(b, false)
	report := sb.Run(sha, content)
	if report.MiningObserved {
		t.Error("dropper without mining should not observe mining")
	}
	if len(report.Connections) != 0 {
		t.Errorf("connections = %v", report.Connections)
	}
	if len(report.DroppedHashes) != 1 || len(report.DownloadedURLs) != 1 {
		t.Errorf("dropper artefacts missing: %+v", report)
	}
	if len(report.DNS) != 1 || report.DNS[0].Name != "github.com" {
		t.Errorf("DNS = %v", report.DNS)
	}
}

func TestRunSampleWithoutBehaviorBlob(t *testing.T) {
	sb := New(dnssim.NewResolver(testZone()))
	content := binfmt.NewBuilder(model.FormatPE).AddString("just a plain binary").Build()
	sha, _ := binfmt.Hashes(content)
	report := sb.Run(sha, content)
	if report.MiningObserved || len(report.Processes) != 0 || len(report.DNS) != 0 {
		t.Errorf("blob-less sample should produce an empty report: %+v", report)
	}
}

func TestRunIPLiteralPool(t *testing.T) {
	sb := New(dnssim.NewResolver(testZone()))
	b := spec.Behavior{
		IsMiner: true, Wallet: "4IPWALLET", PoolHost: "221.9.251.236", PoolPort: 3333,
	}
	sha, content := buildSample(b, false)
	report := sb.Run(sha, content)
	if !report.MiningObserved {
		t.Fatal("mining to an IP literal should be observed")
	}
	if report.Connections[0].DstIP != "221.9.251.236" {
		t.Errorf("dst ip = %q", report.Connections[0].DstIP)
	}
	// No DNS query should be attempted for an IP literal.
	for _, q := range report.DNS {
		if q.Name == "221.9.251.236" {
			t.Error("IP literal should not be resolved")
		}
	}
}

func TestRunUnresolvableDomain(t *testing.T) {
	sb := New(dnssim.NewResolver(dnssim.NewZone())) // empty zone
	b := spec.Behavior{IsMiner: true, Wallet: "4W", PoolHost: "gone.example.com"}
	sha, content := buildSample(b, false)
	report := sb.Run(sha, content)
	if len(report.DNS) != 1 || report.DNS[0].Error == "" {
		t.Errorf("NXDOMAIN should be recorded: %+v", report.DNS)
	}
	// Connection is still attempted (to an unknown IP), as real malware does.
	if !report.MiningObserved {
		t.Error("mining attempt should still be observed")
	}
	if report.Connections[0].DstIP != "" {
		t.Errorf("dst ip should be empty for unresolvable host, got %q", report.Connections[0].DstIP)
	}
}

func TestRunNilResolver(t *testing.T) {
	sb := New(nil)
	b := minerBehavior()
	sha, content := buildSample(b, false)
	report := sb.Run(sha, content)
	if !report.MiningObserved {
		t.Error("sandbox without DNS should still observe mining")
	}
	for _, q := range report.DNS {
		if len(q.IPs) != 0 || len(q.CNAME) != 0 {
			t.Error("DNS answers should be empty without a resolver")
		}
	}
}

func TestDefaultCommandLine(t *testing.T) {
	b := spec.Behavior{
		IsMiner: true, Wallet: "4WALLET", PoolHost: "pool.supportxmr.com", PoolPort: 5555,
		Threads: 3, IdleMining: true,
	}
	cmd := DefaultCommandLine(b)
	for _, want := range []string{"stratum+tcp://pool.supportxmr.com:5555", "-u 4WALLET", "-t 3", "-p x", "--donate-level=1", "--pause-on-active"} {
		if !strings.Contains(cmd, want) {
			t.Errorf("command line %q missing %q", cmd, want)
		}
	}
}

func TestCommandLinesHelper(t *testing.T) {
	r := &Report{Processes: []Process{
		{CommandLine: "a.exe"}, {CommandLine: ""}, {CommandLine: "b.exe -x"},
	}}
	cls := r.CommandLines()
	if len(cls) != 2 || cls[1] != "b.exe -x" {
		t.Errorf("CommandLines = %v", cls)
	}
}

func TestIsIPLiteral(t *testing.T) {
	if !isIPLiteral("10.0.0.1") {
		t.Error("10.0.0.1 should be an IP literal")
	}
	for _, s := range []string{"", "pool.minexmr.com", "1.2.3.x"} {
		if isIPLiteral(s) {
			t.Errorf("%q should not be an IP literal", s)
		}
	}
}

func BenchmarkRun(b *testing.B) {
	sb := New(dnssim.NewResolver(testZone()))
	behavior := minerBehavior()
	sha, content := buildSample(behavior, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb.Run(sha, content)
	}
}
