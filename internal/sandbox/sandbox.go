// Package sandbox is the dynamic-analysis environment of the pipeline: it
// "executes" a sample and records the artefacts the paper's sandbox and
// network analysis extract — process trees and command lines, dropped files,
// DNS resolutions and Stratum traffic captures (§III-C).
//
// Execution is an interpretation of the behaviour blob embedded in the
// fabricated sample (internal/spec). The resulting report has the same shape
// regardless of whether the bytes came from a real sandbox (Hybrid Analysis /
// VirusTotal behaviour reports) or from this simulator, so the extraction
// stage downstream is exercised on realistic inputs: the wallet appears inside
// a command line string and inside raw Stratum login frames, not as a neatly
// labeled field.
package sandbox

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"cryptomining/internal/dnssim"
	"cryptomining/internal/spec"
	"cryptomining/internal/stratum"
)

// Process is one process observed during execution.
type Process struct {
	PID         int
	Name        string
	CommandLine string
	Parent      int
}

// Connection is one network flow observed during execution.
type Connection struct {
	DstHost string
	DstIP   string
	DstPort int
	Proto   string
	// Payload is the captured application-layer traffic (first bytes).
	Payload []byte
}

// DNSQuery is one DNS resolution observed during execution.
type DNSQuery struct {
	Name  string
	CNAME []string
	IPs   []string
	Error string
}

// Report is the dynamic-analysis result for one sample.
type Report struct {
	SHA256         string
	StartedAt      time.Time
	Duration       time.Duration
	Processes      []Process
	Connections    []Connection
	DNS            []DNSQuery
	DroppedHashes  []string
	DownloadedURLs []string
	// MiningObserved is true when Stratum traffic was captured.
	MiningObserved bool
}

// CommandLines returns every observed command line joined for text scanning.
func (r *Report) CommandLines() []string {
	var out []string
	for _, p := range r.Processes {
		if p.CommandLine != "" {
			out = append(out, p.CommandLine)
		}
	}
	return out
}

// NetworkCapture concatenates the captured payloads (the pcap-equivalent the
// network-analysis stage scans).
func (r *Report) NetworkCapture() []byte {
	var b []byte
	for _, c := range r.Connections {
		b = append(b, c.Payload...)
		b = append(b, '\n')
	}
	return b
}

// Resolver is the DNS dependency of the sandbox. *dnssim.Resolver implements
// it; the streaming engine substitutes a per-shard caching wrapper.
type Resolver interface {
	Resolve(name string) (dnssim.Resolution, error)
}

// Sandbox executes samples against a simulated network environment.
type Sandbox struct {
	// Resolver resolves the domains the sample contacts; nil disables DNS.
	Resolver Resolver
	// Clock provides the execution timestamp.
	Clock func() time.Time
	// ExecutionTime is the simulated duration of a run.
	ExecutionTime time.Duration
}

// New returns a sandbox using the given resolver.
func New(resolver *dnssim.Resolver) *Sandbox {
	s := NewWithResolver(nil)
	if resolver != nil {
		s.Resolver = resolver
	}
	return s
}

// NewWithResolver returns a sandbox over any Resolver implementation.
func NewWithResolver(resolver Resolver) *Sandbox {
	return &Sandbox{
		Resolver:      resolver,
		Clock:         time.Now, //cryptolint:allow directclock default wiring: the one site the sandbox Clock seam binds to the real clock
		ExecutionTime: 5 * time.Minute,
	}
}

// Run executes the sample content and produces the dynamic-analysis report.
// Samples without an embedded behaviour blob produce an empty report (they
// "crash" or do nothing observable), which downstream treats as a sample whose
// dynamic analysis yielded nothing — exactly like broken or evasive samples in
// the real corpus.
func (s *Sandbox) Run(sha256Hex string, content []byte) *Report {
	now := time.Now //cryptolint:allow directclock fallback wiring for zero-value sandboxes whose Clock seam was left nil
	if s.Clock != nil {
		now = s.Clock
	}
	report := &Report{SHA256: sha256Hex, StartedAt: now(), Duration: s.ExecutionTime}
	behavior, ok := spec.Extract(content)
	if !ok {
		return report
	}

	pid := 1000
	// The sample's own process.
	report.Processes = append(report.Processes, Process{
		PID: pid, Name: "sample.exe", CommandLine: "C:\\Users\\victim\\AppData\\Local\\Temp\\sample.exe", Parent: 4,
	})

	// Dropper behaviour: downloads and drops.
	report.DownloadedURLs = append(report.DownloadedURLs, behavior.DownloadsURLs...)
	report.DroppedHashes = append(report.DroppedHashes, behavior.DropsHashes...)

	// DNS resolutions for every contacted domain plus the pool host.
	domains := append([]string(nil), behavior.ContactsDomains...)
	if behavior.PoolHost != "" && !isIPLiteral(behavior.PoolHost) {
		domains = append(domains, behavior.PoolHost)
	}
	seen := map[string]bool{}
	for _, d := range domains {
		d = strings.ToLower(strings.TrimSpace(d))
		if d == "" || seen[d] {
			continue
		}
		seen[d] = true
		q := DNSQuery{Name: d}
		if s.Resolver != nil {
			if res, err := s.Resolver.Resolve(d); err == nil {
				q.CNAME = res.Chain
				q.IPs = res.IPs
			} else {
				q.Error = err.Error()
			}
		}
		report.DNS = append(report.DNS, q)
	}

	// Mining behaviour: a child process with the mining command line and a
	// Stratum connection whose payload carries the login frame.
	if behavior.IsMiner && behavior.Wallet != "" {
		pid++
		procName := behavior.ProcessName
		if procName == "" {
			procName = "miner.exe"
		}
		cmdline := behavior.CommandLine
		if cmdline == "" {
			cmdline = DefaultCommandLine(behavior)
		}
		report.Processes = append(report.Processes, Process{
			PID: pid, Name: procName, CommandLine: cmdline, Parent: 1000,
		})

		dstIP := ""
		dstHost := behavior.PoolHost
		if isIPLiteral(dstHost) {
			dstIP = dstHost
		} else if s.Resolver != nil {
			if res, err := s.Resolver.Resolve(dstHost); err == nil && len(res.IPs) > 0 {
				dstIP = res.IPs[0]
			}
		}
		port := behavior.PoolPort
		if port == 0 {
			port = 3333
		}
		report.Connections = append(report.Connections, Connection{
			DstHost: dstHost,
			DstIP:   dstIP,
			DstPort: port,
			Proto:   "tcp",
			Payload: loginFrame(behavior),
		})
		report.MiningObserved = true
	}
	return report
}

// DefaultCommandLine fabricates the xmrig-style command line for a behaviour
// that does not specify one explicitly.
func DefaultCommandLine(b spec.Behavior) string {
	var sb strings.Builder
	sb.WriteString("xmrig.exe -o stratum+tcp://")
	sb.WriteString(b.PoolEndpoint())
	sb.WriteString(" -u ")
	sb.WriteString(b.Wallet)
	sb.WriteString(" -p ")
	if b.Password != "" {
		sb.WriteString(b.Password)
	} else {
		sb.WriteString("x")
	}
	if b.Threads > 0 {
		fmt.Fprintf(&sb, " -t %d", b.Threads)
	}
	sb.WriteString(" --donate-level=1")
	if b.IdleMining {
		sb.WriteString(" --cpu-max-threads-hint=50 --pause-on-active")
	}
	return sb.String()
}

// loginFrame fabricates the captured Stratum login request the miner sends.
func loginFrame(b spec.Behavior) []byte {
	agent := b.Agent
	if agent == "" {
		agent = "XMRig/2.14.1"
	}
	params, _ := json.Marshal(&stratum.LoginParams{Login: b.Wallet, Pass: b.Password, Agent: agent})
	req, _ := json.Marshal(&stratum.Request{ID: 1, Method: "login", Params: params})
	submitParams, _ := json.Marshal(&stratum.SubmitParams{ID: "w", JobID: "1", Nonce: "0badc0de", Result: "00ff"})
	sub, _ := json.Marshal(&stratum.Request{ID: 2, Method: "submit", Params: submitParams})
	return append(append(req, '\n'), sub...)
}

func isIPLiteral(host string) bool {
	if host == "" {
		return false
	}
	for _, c := range host {
		if (c < '0' || c > '9') && c != '.' && c != ':' {
			return false
		}
	}
	return true
}
