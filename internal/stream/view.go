package stream

import (
	"sort"
	"time"

	"cryptomining/internal/model"
	"cryptomining/internal/profit"
)

// View is one immutable, epoch-numbered snapshot of everything the read tier
// serves: the priced campaign listing (earnings-descending), the full detail
// views, the campaign-to-timeline-key mapping and the data-time yearly
// breakdown. The collector publishes a fresh View via atomic pointer swap at
// the end of every aggregation batch, after each dataset-relevant probe
// completion, on finalize and on state restore — readers load the pointer and
// never touch the collector mutex, so a GET can never stall ingestion (and a
// long checkpoint can never stall a GET).
//
// Everything reachable from a View is immutable once published: the slices
// hang off campaign objects the aggregator only ever replaces (a dirty
// component is rebuilt as a fresh campaign), and the scalar fields are copied
// at build time. The epoch increases by exactly one per publication, which is
// what lets the API layer use it as a strong ETag.
type View struct {
	// Epoch counts publications since engine creation (0 = the empty view
	// seeded by New, before anything was absorbed).
	Epoch uint64
	// Published is the wall-clock publication instant, for staleness gauges.
	Published time.Time
	// Campaigns is the full priced listing, sorted by XMR earned (highest
	// first), ties in deterministic partition order.
	Campaigns []CampaignView
	// Details maps campaign ID to its full detail view.
	Details map[int]CampaignDetail
	// TimelineKeys maps campaign ID to the partition's stable component key,
	// under which the timeseries store files the campaign's timeline. IDs
	// without a key (no timeline recorded) are absent.
	TimelineKeys map[int]string
	// Years is the data-time yearly-evolution breakdown (nil when the
	// timeseries subsystem is disabled).
	Years []YearStats
}

// CurrentView returns the engine's latest published snapshot. It never
// returns nil and never blocks: New seeds an empty epoch-0 view before the
// engine can be observed.
func (e *Engine) CurrentView() *View {
	return e.view.Load()
}

// publishViewLocked builds the snapshot from the collector's current state
// and swaps it in. Caller must hold e.mu. Dirty campaigns are re-priced here
// (liveCampaigns), which moves the pricing cost from the read path onto the
// write path — once per batch instead of once per request.
func (e *Engine) publishViewLocked() {
	campaigns, profits := e.liveCampaigns()
	v := &View{
		Epoch:        e.view.Load().Epoch + 1,
		Published:    e.publishInstant(),
		Campaigns:    make([]CampaignView, 0, len(campaigns)),
		Details:      make(map[int]CampaignDetail, len(campaigns)),
		TimelineKeys: make(map[int]string, len(campaigns)),
	}
	for _, c := range campaigns {
		cp := profits[c]
		v.Campaigns = append(v.Campaigns, viewOf(c, cp))
		v.Details[c.ID] = detailOf(c, cp)
		if e.ts != nil {
			if key, ok := e.col.timelineKey(c); ok {
				v.TimelineKeys[c.ID] = key
			}
		}
	}
	sort.SliceStable(v.Campaigns, func(i, j int) bool { return v.Campaigns[i].XMR > v.Campaigns[j].XMR })
	if e.ts != nil {
		v.Years = e.yearStats(campaigns)
	}
	e.view.Store(v)
}

// publishInstant resolves the timestamp stamped on a published view. With
// the timeseries store live the recording clock is a shared, possibly
// logical sequence — a fresh reading here would consume a tick and shift
// every later series point in replayed runs — so views reuse the batch's
// already-read recording instant, falling back to the fixed analysis query
// time before the first batch records. Only with the store disabled is the
// clock free-standing, making a direct reading safe.
func (e *Engine) publishInstant() time.Time {
	if e.ts == nil {
		return e.cfg.Timeseries.Clock()
	}
	if e.col != nil && !e.col.now.IsZero() {
		return e.col.now
	}
	return e.cfg.QueryTime
}

// emptyView is the epoch-0 snapshot every engine starts with, stamped like
// any published view so replayed runs stay identical.
func emptyView(at time.Time) *View {
	return &View{
		Published:    at,
		Details:      map[int]CampaignDetail{},
		TimelineKeys: map[int]string{},
	}
}

// detailOf assembles the full detail view of one priced campaign.
func detailOf(c *model.Campaign, cp profit.CampaignProfit) CampaignDetail {
	d := CampaignDetail{
		CampaignView:    viewOf(c, cp),
		SampleHashes:    c.Samples,
		AncillaryHashes: c.Ancillaries,
		CNAMEs:          c.CNAMEs,
		Proxies:         c.Proxies,
		HostingDomains:  c.HostingDomains,
		PPIBotnets:      c.PPIBotnets,
		StockTools:      c.StockTools,
		KnownOperations: c.KnownOperations,
		UsesObfuscation: c.UsesObfuscation,
		FirstSeen:       c.FirstSeen,
		LastSeen:        c.LastSeen,
		Payments:        len(cp.Payments),
		PoolsUsed:       cp.PoolsUsed,
		FirstPayment:    cp.FirstPayment,
		LastPayment:     cp.LastPayment,
	}
	for _, cur := range c.Currencies {
		d.Currencies = append(d.Currencies, string(cur))
	}
	return d
}

// timelineKey resolves the stable component key a campaign's timeline is
// filed under: the first member hash the aggregator still maps. Called under
// e.mu.
func (c *collector) timelineKey(cam *model.Campaign) (string, bool) {
	for _, sha := range cam.Samples {
		if key, ok := c.agg.ComponentKey(sha); ok {
			return key, true
		}
	}
	for _, sha := range cam.Ancillaries {
		if key, ok := c.agg.ComponentKey(sha); ok {
			return key, true
		}
	}
	return "", false
}

// HoldCollectorLock acquires the engine's collector mutex and returns the
// release function. It exists for isolation tests that assert the read tier
// keeps serving published snapshots while the collector is busy (simulating a
// long checkpoint or aggregation stall); production code has no reason to
// call it.
func (e *Engine) HoldCollectorLock() (release func()) {
	e.mu.Lock()
	return e.mu.Unlock
}
