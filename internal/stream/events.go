package stream

// EventType classifies engine event notifications.
type EventType string

const (
	// EventSampleKept fires when a sample enters the dataset, updating its
	// campaign (directly or by creating/merging components).
	EventSampleKept EventType = "sample_kept"
	// EventProfitUpdated fires when an asynchronous wallet probe lands and
	// the wallet's activity enters the live profit figures.
	EventProfitUpdated EventType = "profit_updated"
	// EventProbeError fires when a wallet probe finishes with pools left
	// unreachable after retries (partial activity is still applied).
	EventProbeError EventType = "probe_error"
	// EventDrained fires once, when Finish has assembled the final results.
	EventDrained EventType = "drained"
)

// Event is one live notification from the collector: a campaign-affecting
// state change, emitted as it happens. Events are telemetry, not a durable
// log — subscribers that fall behind lose events (see Subscribe).
type Event struct {
	// Seq is a process-global, monotonically increasing event number; gaps
	// on a subscription mean events were dropped for that subscriber.
	Seq  uint64    `json:"seq"`
	Type EventType `json:"type"`
	// SHA256 / SampleType / Wallet / Pool describe the kept sample for
	// EventSampleKept.
	SHA256     string `json:"sha256,omitempty"`
	SampleType string `json:"sample_type,omitempty"`
	Wallet     string `json:"wallet,omitempty"`
	Pool       string `json:"pool,omitempty"`
	// Campaigns / Kept are the running partition size and dataset size at
	// emission time (the final figures for EventDrained).
	Campaigns int `json:"campaigns"`
	Kept      int `json:"kept"`
	// XMR / USD carry the probed wallet's cross-pool totals for
	// EventProfitUpdated.
	XMR float64 `json:"xmr,omitempty"`
	USD float64 `json:"usd,omitempty"`
	// Error describes what failed for EventProbeError.
	Error string `json:"error,omitempty"`
}

// Subscribe registers a live event subscription and returns its channel plus
// a cancel function (idempotent; cancel closes the channel). The channel is
// buffered with capacity buf (a default is applied when buf <= 0); delivery
// is lossy — when a subscriber's buffer is full, events are dropped for that
// subscriber rather than blocking the collector. Seq gaps reveal drops.
// EventDrained is terminal: every subscription's channel is closed at the
// drain (after a best-effort delivery of the drained event), and a
// subscriber arriving later receives the retained drained event and an
// already-closed channel — so consumers reading to channel close always
// terminate.
func (e *Engine) Subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 256
	}
	ch := make(chan Event, buf)
	e.subMu.Lock()
	if e.drainedEv != nil {
		// Terminal state: deliver the retained drained event (buffered,
		// cannot block) and close; the subscription is never registered.
		ch <- *e.drainedEv
		close(ch)
		e.subMu.Unlock()
		return ch, func() {}
	}
	id := e.nextSubID
	e.nextSubID++
	e.subs[id] = ch
	e.subMu.Unlock()

	// Membership check makes cancel idempotent and safe against the drain
	// having already closed the channel.
	cancel := func() {
		e.subMu.Lock()
		if _, ok := e.subs[id]; ok {
			delete(e.subs, id)
			close(ch)
		}
		e.subMu.Unlock()
	}
	return ch, cancel
}

// publish fans one event out to every subscriber, non-blocking. Safe to call
// from the collector while holding e.mu: it only takes subMu, which nothing
// acquires e.mu under.
func (e *Engine) publish(ev Event) {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	e.evSeq++
	ev.Seq = e.evSeq
	terminal := ev.Type == EventDrained
	if terminal {
		e.drainedEv = &ev
	}
	for id, ch := range e.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than stall ingestion
			e.evDrops.Add(1)
		}
		if terminal {
			// Close even when the full buffer dropped the drained event
			// itself, so every consumer still observes end-of-stream.
			delete(e.subs, id)
			close(ch)
		}
	}
}
