package stream

import (
	"math"
	"testing"
	"time"

	"cryptomining/internal/obs"
)

// TestObserveStageSnapshotMath checks that per-stage averages come out as
// total-nanos / processed, per stage, aggregated exactly.
func TestObserveStageSnapshotMath(t *testing.T) {
	c := newCounters()
	c.observeStage(0, 10*time.Millisecond)
	c.observeStage(0, 30*time.Millisecond)
	c.observeStage(2, 7*time.Microsecond)

	s := c.snapshot()
	if len(s.Stages) != numStages {
		t.Fatalf("snapshot has %d stages, want %d", len(s.Stages), numStages)
	}
	sanity := s.Stages[0]
	if sanity.Name != StageNames[0] {
		t.Errorf("stage 0 name = %q, want %q", sanity.Name, StageNames[0])
	}
	if sanity.Processed != 2 {
		t.Errorf("stage 0 processed = %d, want 2", sanity.Processed)
	}
	if want := 20 * time.Millisecond; sanity.AvgNanos != want {
		t.Errorf("stage 0 avg = %v, want %v", sanity.AvgNanos, want)
	}
	if got := s.Stages[2]; got.Processed != 1 || got.AvgNanos != 7*time.Microsecond {
		t.Errorf("stage 2 = %+v, want processed 1 avg 7µs", got)
	}
	// A stage that never ran must report a zero average, not divide by zero.
	if got := s.Stages[1]; got.Processed != 0 || got.AvgNanos != 0 {
		t.Errorf("idle stage 1 = %+v, want zeros", got)
	}
}

// TestSnapshotCounterFields checks the plain counter plumbing: every atomic
// lands in its snapshot field and throughput is analyzed/uptime.
func TestSnapshotCounterFields(t *testing.T) {
	c := newCounters()
	c.submitted.Store(10)
	c.analyzed.Store(8)
	c.duplicates.Store(2)
	c.kept.Store(5)
	c.miners.Store(4)
	c.flips.Store(1)
	c.campaigns.Store(3)
	c.wallets.Store(6)
	// Backdate the start so SamplesPerSec has a stable denominator.
	c.startNanos.Store(time.Now().Add(-2 * time.Second).UnixNano())

	s := c.snapshot()
	if s.Submitted != 10 || s.Analyzed != 8 || s.Duplicates != 2 ||
		s.Kept != 5 || s.Miners != 4 || s.IllicitWalletFlips != 1 ||
		s.Campaigns != 3 || s.Wallets != 6 {
		t.Errorf("snapshot counters wrong: %+v", s)
	}
	if s.Uptime < 2*time.Second {
		t.Errorf("uptime = %v, want >= 2s", s.Uptime)
	}
	// 8 samples over >=2s: bounded above by 4/s and well above zero.
	if s.SamplesPerSec <= 0 || s.SamplesPerSec > 4.0 {
		t.Errorf("samples/sec = %v, want (0, 4]", s.SamplesPerSec)
	}
}

// TestAddLiveProfitAccumulates checks the float64-bits accumulation used for
// the running profit totals.
func TestAddLiveProfitAccumulates(t *testing.T) {
	c := newCounters()
	c.addLiveProfit(1.25, 200)
	c.addLiveProfit(0.75, 100.5)
	s := c.snapshot()
	if math.Abs(s.TotalXMR-2.0) > 1e-12 {
		t.Errorf("TotalXMR = %v, want 2.0", s.TotalXMR)
	}
	if math.Abs(s.TotalUSD-300.5) > 1e-12 {
		t.Errorf("TotalUSD = %v, want 300.5", s.TotalUSD)
	}
	if got := c.liveXMR(); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("liveXMR() = %v, want 2.0", got)
	}
}

// TestMarkStartCarriesUptime checks that a restored checkpoint's uptime
// backdates the origin, so uptime spans restarts.
func TestMarkStartCarriesUptime(t *testing.T) {
	c := newCounters()
	c.carriedNanos.Store(int64(time.Hour))
	c.markStart()
	if up := c.uptime(); up < time.Hour {
		t.Errorf("uptime = %v, want >= 1h carried over", up)
	}
}

// TestStageObserversAgree is the contract behind the exposition: the engine
// StageStats observer and the self-registered histogram attach to the same
// measured duration, so Processed counts and histogram counts must match
// exactly, call for call.
func TestStageObserversAgree(t *testing.T) {
	c := newCounters()
	reg := obs.NewRegistry()
	st := NewStage("sanity", func(*Task) { time.Sleep(time.Millisecond) },
		WithObserver(func(d time.Duration) { c.observeStage(0, d) }),
		WithMetrics(reg))
	if st.Name() != "sanity" {
		t.Fatalf("stage name = %q", st.Name())
	}
	const n = 5
	for i := 0; i < n; i++ {
		st.Process(&Task{})
	}

	if got := c.stageCount[0].Load(); got != n {
		t.Errorf("StageStats processed = %d, want %d", got, n)
	}
	h := reg.Histogram(metricStageDuration,
		"Per-stage processing latency of the streaming analysis chain.",
		obs.LatencyBuckets, obs.L("stage", "sanity"))
	if got := h.Count(); got != n {
		t.Errorf("histogram count = %d, want %d", got, n)
	}
	// Same duration fanned to both observers: the histogram's sum (seconds)
	// must equal the stage-nanos total to float precision.
	wantSecs := time.Duration(c.stageNanos[0].Load()).Seconds()
	if math.Abs(h.Sum()-wantSecs) > 1e-9 {
		t.Errorf("histogram sum = %v s, StageStats total = %v s", h.Sum(), wantSecs)
	}
}

// TestStageWithoutObserversRuns covers the zero-observer fast path.
func TestStageWithoutObserversRuns(t *testing.T) {
	ran := false
	st := NewStage("enrich", func(*Task) { ran = true })
	st.Process(&Task{})
	if !ran {
		t.Fatal("process function not invoked")
	}
}
