package stream_test

import (
	"context"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/model"
	"cryptomining/internal/stream"
)

// ingestShuffled pushes every corpus sample through a fresh engine in random
// order from several concurrent submitters, then finalizes.
func ingestShuffled(t *testing.T, u *ecosim.Universe, shards, submitters int, seed int64) *stream.Results {
	t.Helper()
	cfg := core.NewFromUniverse(u).StreamConfig()
	cfg.Shards = shards
	cfg.QueueDepth = 8
	eng := stream.New(cfg)
	ctx := context.Background()
	eng.Start(ctx)

	hashes := u.Corpus.Hashes()
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(hashes), func(i, j int) { hashes[i], hashes[j] = hashes[j], hashes[i] })

	feed := make(chan string)
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for h := range feed {
				sample, ok := u.Corpus.Get(h)
				if !ok {
					continue
				}
				if err := eng.Submit(ctx, sample); err != nil {
					t.Errorf("submit %s: %v", h, err)
					return
				}
			}
		}()
	}
	for _, h := range hashes {
		feed <- h
	}
	close(feed)
	wg.Wait()

	res, err := eng.Finish(ctx)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	return res
}

// TestStreamMatchesBatchShuffled is the equivalence guarantee of the
// streaming engine: a shuffled, concurrent ingestion must reproduce the batch
// pipeline's campaigns, wallets and profit figures exactly. Run under -race
// it doubles as the concurrency-correctness test.
func TestStreamMatchesBatchShuffled(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig())
	batch, err := core.NewFromUniverse(u).Run()
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}
	streamed := ingestShuffled(t, u, 8, 4, 1)

	if got, want := len(streamed.Outcomes), len(batch.Outcomes); got != want {
		t.Fatalf("outcomes: got %d want %d", got, want)
	}
	for h, bo := range batch.Outcomes {
		so, ok := streamed.Outcomes[h]
		if !ok {
			t.Fatalf("outcome %s missing from stream", model.ShortHash(h))
		}
		if so.Kept != bo.Kept || so.IsMalware != bo.IsMalware || so.IsMiner != bo.IsMiner ||
			so.Record.Type != bo.Record.Type || so.Record.User != bo.Record.User {
			t.Fatalf("outcome %s differs: stream %+v batch %+v", model.ShortHash(h), so, bo)
		}
	}

	if got, want := len(streamed.Records), len(batch.Records); got != want {
		t.Fatalf("records: got %d want %d", got, want)
	}
	if got, want := len(streamed.MinerRecords), len(batch.MinerRecords); got != want {
		t.Fatalf("miner records: got %d want %d", got, want)
	}
	if got, want := streamed.Identifiers, batch.Identifiers; got != want {
		t.Fatalf("identifiers: got %d want %d", got, want)
	}
	if !reflect.DeepEqual(streamed.CountsBySource, batch.CountsBySource) {
		t.Fatalf("counts by source differ: %v vs %v", streamed.CountsBySource, batch.CountsBySource)
	}
	if !reflect.DeepEqual(streamed.CountsByResource, batch.CountsByResource) {
		t.Fatalf("counts by resource differ: %v vs %v", streamed.CountsByResource, batch.CountsByResource)
	}

	// Campaign partition: identical count, IDs, membership and profit.
	if got, want := len(streamed.Campaigns), len(batch.Campaigns); got != want {
		t.Fatalf("campaign count: got %d want %d", got, want)
	}
	for i, bc := range batch.Campaigns {
		sc := streamed.Campaigns[i]
		if sc.ID != bc.ID {
			t.Fatalf("campaign %d: ID %d vs %d", i, sc.ID, bc.ID)
		}
		if !reflect.DeepEqual(sc.Wallets, bc.Wallets) || !reflect.DeepEqual(sc.Samples, bc.Samples) ||
			!reflect.DeepEqual(sc.Ancillaries, bc.Ancillaries) || !reflect.DeepEqual(sc.Pools, bc.Pools) {
			t.Fatalf("campaign C#%d membership differs:\nstream wallets=%v samples=%d anc=%d pools=%v\nbatch  wallets=%v samples=%d anc=%d pools=%v",
				bc.ID, sc.Wallets, len(sc.Samples), len(sc.Ancillaries), sc.Pools,
				bc.Wallets, len(bc.Samples), len(bc.Ancillaries), bc.Pools)
		}
		if sc.XMRMined != bc.XMRMined || sc.USDEarned != bc.USDEarned || sc.Active != bc.Active {
			t.Fatalf("campaign C#%d profit differs: %.8f/%.2f/%v vs %.8f/%.2f/%v",
				bc.ID, sc.XMRMined, sc.USDEarned, sc.Active, bc.XMRMined, bc.USDEarned, bc.Active)
		}
		if !reflect.DeepEqual(sc.StockTools, bc.StockTools) || !reflect.DeepEqual(sc.PPIBotnets, bc.PPIBotnets) ||
			!reflect.DeepEqual(sc.GroundTruthIDs, bc.GroundTruthIDs) {
			t.Fatalf("campaign C#%d enrichment differs", bc.ID)
		}
	}

	// Headline figures: totals and the top-earner ranking.
	if streamed.TotalXMR != batch.TotalXMR || streamed.TotalUSD != batch.TotalUSD {
		t.Fatalf("totals differ: %.8f/%.2f vs %.8f/%.2f",
			streamed.TotalXMR, streamed.TotalUSD, batch.TotalXMR, batch.TotalUSD)
	}
	if streamed.CirculationShare != batch.CirculationShare {
		t.Fatalf("circulation share differs")
	}
	if got, want := len(streamed.Profits), len(batch.Profits); got != want {
		t.Fatalf("profits: got %d want %d", got, want)
	}
	for i := range batch.Profits {
		if streamed.Profits[i].XMR != batch.Profits[i].XMR {
			t.Fatalf("profit rank %d: %.8f vs %.8f", i, streamed.Profits[i].XMR, batch.Profits[i].XMR)
		}
	}
	if streamed.Aggregation.DonationWalletsSkipped != batch.Aggregation.DonationWalletsSkipped {
		t.Fatalf("donation-wallet skip counts differ: %d vs %d",
			streamed.Aggregation.DonationWalletsSkipped, batch.Aggregation.DonationWalletsSkipped)
	}
}

// TestStreamShardCountInvariance cross-checks two concurrent runs with
// different shard counts and shuffle orders against each other.
func TestStreamShardCountInvariance(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig().Scale(0.5))
	a := ingestShuffled(t, u, 2, 2, 7)
	b := ingestShuffled(t, u, 16, 8, 99)
	if len(a.Campaigns) != len(b.Campaigns) || a.TotalXMR != b.TotalXMR {
		t.Fatalf("shard-count variance: %d/%.8f vs %d/%.8f",
			len(a.Campaigns), a.TotalXMR, len(b.Campaigns), b.TotalXMR)
	}
}

// TestEngineStatsAndLive exercises the live-observability surface while an
// ingestion is in flight.
func TestEngineStatsAndLive(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig().Scale(0.3))
	cfg := core.NewFromUniverse(u).StreamConfig()
	cfg.Shards = 4
	eng := stream.New(cfg)
	ctx := context.Background()
	eng.Start(ctx)

	hashes := u.Corpus.Hashes()
	half := len(hashes) / 2
	for _, h := range hashes[:half] {
		s, _ := u.Corpus.Get(h)
		if err := eng.Submit(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	// Live views must be callable mid-flight.
	_ = eng.Live(5)
	st := eng.Stats()
	if st.Submitted < int64(half) {
		t.Fatalf("submitted counter %d < %d", st.Submitted, half)
	}
	if st.Shards != 4 {
		t.Fatalf("shards = %d", st.Shards)
	}
	for _, h := range hashes[half:] {
		s, _ := u.Corpus.Get(h)
		if err := eng.Submit(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.Analyzed != int64(len(hashes)) {
		t.Fatalf("analyzed %d != corpus %d", st.Analyzed, len(hashes))
	}
	if st.Campaigns != int64(len(res.Campaigns)) {
		t.Fatalf("live campaigns %d != final %d", st.Campaigns, len(res.Campaigns))
	}
	if st.Kept != int64(len(res.Records)) {
		t.Fatalf("live kept %d != records %d", st.Kept, len(res.Records))
	}
	for _, stage := range st.Stages {
		if stage.Processed != int64(len(hashes)) {
			t.Fatalf("stage %s processed %d != %d", stage.Name, stage.Processed, len(hashes))
		}
	}
	views := eng.Live(3)
	if len(res.Profits) >= 3 && len(views) != 3 {
		t.Fatalf("Live(3) returned %d views", len(views))
	}
	for i := 1; i < len(views); i++ {
		if views[i].XMR > views[i-1].XMR {
			t.Fatalf("Live views not sorted by earnings")
		}
	}
}

// TestDuplicateSubmissions feeds the corpus twice: a continuous feed
// re-observes samples, and resubmissions must not double-count anything.
func TestDuplicateSubmissions(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig().Scale(0.3))
	once, err := core.NewFromUniverse(u).Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.NewFromUniverse(u).StreamConfig()
	cfg.Shards = 4
	eng := stream.New(cfg)
	ctx := context.Background()
	eng.Start(ctx)
	for pass := 0; pass < 2; pass++ {
		for _, h := range u.Corpus.Hashes() {
			s, _ := u.Corpus.Get(h)
			if err := eng.Submit(ctx, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	twice, err := eng.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := eng.Stats().Duplicates, int64(u.Corpus.Len()); got != want {
		t.Fatalf("duplicates counter = %d, want %d", got, want)
	}
	if len(twice.Records) != len(once.Records) || len(twice.Campaigns) != len(once.Campaigns) ||
		twice.TotalXMR != once.TotalXMR ||
		twice.Aggregation.DonationWalletsSkipped != once.Aggregation.DonationWalletsSkipped ||
		twice.Aggregation.Graph.EdgeCount() != once.Aggregation.Graph.EdgeCount() {
		t.Fatalf("duplicate ingestion changed results: %d/%d/%.8f vs %d/%d/%.8f",
			len(twice.Records), len(twice.Campaigns), twice.TotalXMR,
			len(once.Records), len(once.Campaigns), once.TotalXMR)
	}
}

// TestEngineCancellation verifies the dataflow unwinds on context cancel.
func TestEngineCancellation(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig().Scale(0.2))
	cfg := core.NewFromUniverse(u).StreamConfig()
	cfg.Shards = 2
	cfg.QueueDepth = 1
	eng := stream.New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	eng.Start(ctx)
	hashes := u.Corpus.Hashes()
	for _, h := range hashes[:10] {
		s, _ := u.Corpus.Get(h)
		if err := eng.Submit(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	// Submission must fail fast now (possibly after draining the buffer).
	var submitErr error
	for _, h := range hashes[10:] {
		s, _ := u.Corpus.Get(h)
		if submitErr = eng.Submit(ctx, s); submitErr != nil {
			break
		}
	}
	if submitErr == nil {
		t.Fatal("submit kept succeeding after cancel")
	}
	if _, err := eng.Finish(context.Background()); err == nil {
		t.Fatal("finish succeeded after cancel")
	}
}

// TestStreamSpeedupMultiCore asserts the headline scaling property — the
// sharded engine beats the single-threaded batch pipeline by >= 2x — on hosts
// with enough cores to express it. Single-core hosts skip (there is no
// parallelism to win; see BENCH_stream.json for the recorded baselines).
func TestStreamSpeedupMultiCore(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock speedup is not meaningful under the race detector")
	}
	cores := runtime.GOMAXPROCS(0)
	if cores < 4 {
		t.Skipf("need >= 4 cores for a stable >= 2x assertion, have %d", cores)
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	u := ecosim.Generate(ecosim.DefaultConfig().Scale(0.25))
	run := func(shards int) time.Duration {
		cfg := core.NewFromUniverse(u).StreamConfig()
		cfg.Shards = shards
		eng := stream.New(cfg)
		ctx := context.Background()
		start := time.Now()
		eng.Start(ctx)
		for _, h := range u.Corpus.Hashes() {
			s, _ := u.Corpus.Get(h)
			if err := eng.Submit(ctx, s); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.Finish(ctx); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	batch := run(1)
	streamed := run(cores)
	speedup := float64(batch) / float64(streamed)
	t.Logf("batch %v, stream(%d shards) %v, speedup %.2fx", batch, cores, streamed, speedup)
	// Shared CI runners are noisy, so the always-on bound only catches the
	// engine losing its parallelism outright; dedicated multi-core hardware
	// (STREAM_SPEEDUP_STRICT=1) asserts the full >= 2x acceptance criterion.
	threshold := 1.3
	if os.Getenv("STREAM_SPEEDUP_STRICT") == "1" {
		threshold = 2
	}
	if speedup < threshold {
		t.Errorf("streaming speedup %.2fx < %.1fx on %d cores", speedup, threshold, cores)
	}
}

// TestSubmitBeforeStart covers the misuse guard.
func TestSubmitBeforeStart(t *testing.T) {
	eng := stream.New(stream.Config{})
	if err := eng.Submit(context.Background(), &model.Sample{SHA256: strings.Repeat("a", 64)}); err == nil {
		t.Fatal("expected ErrNotStarted")
	}
}
