//go:build !race

package stream_test

const raceEnabled = false
