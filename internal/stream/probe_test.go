package stream_test

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/probe"
	"cryptomining/internal/stream"
)

// TestProbeModeMatchesBatch is the probe subsystem's exact-equivalence
// acceptance: an engine whose wallet statistics arrive through the
// asynchronous DirectorySource crawler must, once the probe cache has
// converged (Finish waits for it), produce campaigns and profit figures
// bit-identical to the synchronous batch pipeline — under shuffled,
// concurrent ingestion, and with probe events published along the way. Run
// under -race it doubles as the probe/collector concurrency test.
func TestProbeModeMatchesBatch(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig())
	batch, err := core.NewFromUniverse(u).Run()
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}

	cfg := core.NewFromUniverse(u).StreamConfig()
	cfg.Shards = 4
	cfg.QueueDepth = 8
	prober := probe.New(probe.Config{
		Source:  probe.NewDirectorySource(cfg.Pools, cfg.QueryTime),
		Workers: 4,
	})
	cfg.Prober = prober
	eng := stream.New(cfg)
	ctx := context.Background()
	eng.Start(ctx)
	prober.Start(ctx)
	defer prober.Close()

	events, cancelEvents := eng.Subscribe(1 << 16)
	defer cancelEvents()

	hashes := u.Corpus.Hashes()
	rng := rand.New(rand.NewSource(99))
	rng.Shuffle(len(hashes), func(i, j int) { hashes[i], hashes[j] = hashes[j], hashes[i] })
	for _, h := range hashes {
		sample, ok := u.Corpus.Get(h)
		if !ok {
			continue
		}
		if err := eng.Submit(ctx, sample); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	res, err := eng.Finish(ctx)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	// Finish blocks until every seen wallet is cached; the crawl itself
	// drains moments later (the last worker may still be unwinding).
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	defer wcancel()
	if err := prober.WaitConverged(wctx); err != nil {
		t.Fatalf("crawl never drained after Finish: %v", err)
	}

	// Campaign partition and profit: exact, field for field.
	if len(res.Campaigns) != len(batch.Campaigns) {
		t.Fatalf("campaigns: got %d want %d", len(res.Campaigns), len(batch.Campaigns))
	}
	for i, want := range batch.Campaigns {
		got := res.Campaigns[i]
		if got.ID != want.ID ||
			!reflect.DeepEqual(got.Wallets, want.Wallets) ||
			!reflect.DeepEqual(got.Pools, want.Pools) ||
			got.XMRMined != want.XMRMined ||
			got.USDEarned != want.USDEarned ||
			got.PaymentCount != want.PaymentCount ||
			got.Active != want.Active {
			t.Fatalf("campaign %d differs:\nprobe: %+v\nbatch: %+v", i, got, want)
		}
	}
	if res.TotalXMR != batch.TotalXMR || res.TotalUSD != batch.TotalUSD ||
		res.CirculationShare != batch.CirculationShare {
		t.Fatalf("totals differ: probe (%v XMR, %v USD, %v share) batch (%v XMR, %v USD, %v share)",
			res.TotalXMR, res.TotalUSD, res.CirculationShare,
			batch.TotalXMR, batch.TotalUSD, batch.CirculationShare)
	}
	if len(res.Profits) != len(batch.Profits) {
		t.Fatalf("profits: got %d want %d", len(res.Profits), len(batch.Profits))
	}
	for i := range res.Profits {
		if res.Profits[i].XMR != batch.Profits[i].XMR || res.Profits[i].USD != batch.Profits[i].USD {
			t.Fatalf("profit %d differs: probe (%v, %v) batch (%v, %v)", i,
				res.Profits[i].XMR, res.Profits[i].USD, batch.Profits[i].XMR, batch.Profits[i].USD)
		}
	}

	// The live running totals accumulate per-wallet deltas in probe order, so
	// they agree with the final figure up to float summation order.
	st := eng.Stats()
	if math.Abs(st.TotalXMR-res.TotalXMR) > 1e-6*(1+math.Abs(res.TotalXMR)) {
		t.Fatalf("live TotalXMR %v diverges from final %v", st.TotalXMR, res.TotalXMR)
	}
	if st.Wallets == 0 {
		t.Fatal("no wallets counted as priced")
	}

	// Probe completions surfaced on the event stream.
	profitEvents := 0
	for ev := range events {
		switch ev.Type {
		case stream.EventProfitUpdated:
			profitEvents++
		case stream.EventProbeError:
			t.Fatalf("unexpected probe error event: %+v", ev)
		}
	}
	if profitEvents == 0 {
		t.Fatal("no profit_updated events published")
	}
}
