package stream

import (
	"math"
	"sync/atomic"
	"time"
)

// counters is the engine's internal lock-free counter block.
type counters struct {
	// startNanos is the uptime origin (UnixNano), atomic because Start
	// re-pins it while Stats may be reading concurrently.
	startNanos atomic.Int64
	// carriedNanos is uptime inherited from a restored checkpoint; Start
	// backdates startNanos by this amount so uptime spans process restarts.
	carriedNanos atomic.Int64

	submitted  atomic.Int64
	analyzed   atomic.Int64
	duplicates atomic.Int64
	kept       atomic.Int64
	miners     atomic.Int64
	flips      atomic.Int64
	campaigns  atomic.Int64
	wallets    atomic.Int64

	liveXMRBits atomic.Uint64
	liveUSDBits atomic.Uint64

	stageCount [numStages]atomic.Int64
	stageNanos [numStages]atomic.Int64
}

func newCounters() *counters {
	c := &counters{}
	c.startNanos.Store(time.Now().UnixNano()) //cryptolint:allow directclock process uptime telemetry only
	return c
}

// markStart pins the uptime origin, backdated by any uptime carried over
// from a restored checkpoint.
func (c *counters) markStart() {
	c.startNanos.Store(time.Now().Add(-time.Duration(c.carriedNanos.Load())).UnixNano()) //cryptolint:allow directclock process uptime telemetry only
}

func (c *counters) uptime() time.Duration {
	return time.Since(time.Unix(0, c.startNanos.Load())) //cryptolint:allow directclock process uptime telemetry only
}

func (c *counters) observeStage(idx int, d time.Duration) {
	c.stageCount[idx].Add(1)
	c.stageNanos[idx].Add(int64(d))
}

// addLiveProfit accumulates the running profit totals. Only the collector
// goroutine writes them, so a plain read-modify-write on the atomic bits is
// race-free while still letting Stats read concurrently.
func (c *counters) addLiveProfit(xmr, usd float64) {
	c.liveXMRBits.Store(math.Float64bits(math.Float64frombits(c.liveXMRBits.Load()) + xmr))
	c.liveUSDBits.Store(math.Float64bits(math.Float64frombits(c.liveUSDBits.Load()) + usd))
}

// liveXMR reads the running XMR total.
func (c *counters) liveXMR() float64 { return math.Float64frombits(c.liveXMRBits.Load()) }

// StageStats is the live latency profile of one stage, aggregated across
// shards.
type StageStats struct {
	Name      string        `json:"name"`
	Processed int64         `json:"processed"`
	AvgNanos  time.Duration `json:"avg_latency_ns"`
}

// Stats is a point-in-time snapshot of the engine's live counters.
type Stats struct {
	// Uptime since Start.
	Uptime time.Duration `json:"uptime_ns"`
	// Shards is the number of concurrent stage chains.
	Shards int `json:"shards"`
	// Submitted counts samples entering the dataflow; Analyzed counts
	// distinct samples absorbed by the collector (re-observed hashes are
	// counted under Duplicates instead, so throughput is not inflated by
	// resubmissions).
	Submitted int64 `json:"submitted"`
	Analyzed  int64 `json:"analyzed"`
	// Duplicates counts re-observed hashes dropped by the collector.
	Duplicates int64 `json:"duplicates"`
	// SamplesPerSec is the cumulative analysis throughput over distinct
	// samples.
	SamplesPerSec float64 `json:"samples_per_sec"`
	// Kept / Miners count dataset membership so far.
	Kept   int64 `json:"kept"`
	Miners int64 `json:"miners"`
	// IllicitWalletFlips counts below-threshold samples retroactively
	// upgraded by the illicit-wallet exception.
	IllicitWalletFlips int64 `json:"illicit_wallet_flips"`
	// Campaigns is the number of live campaigns discovered so far.
	Campaigns int64 `json:"campaigns"`
	// Wallets is the number of distinct non-donation wallets priced so far.
	Wallets int64 `json:"wallets"`
	// TotalXMR / TotalUSD are the running profit estimates.
	TotalXMR float64 `json:"total_xmr"`
	TotalUSD float64 `json:"total_usd"`
	// Backpressure is the number of samples queued in bounded channels.
	Backpressure int `json:"backpressure"`
	// Stages profiles each stage of the chain.
	Stages []StageStats `json:"stages"`
}

func (c *counters) snapshot() Stats {
	uptime := c.uptime()
	analyzed := c.analyzed.Load()
	s := Stats{
		Uptime:             uptime,
		Submitted:          c.submitted.Load(),
		Analyzed:           analyzed,
		Duplicates:         c.duplicates.Load(),
		Kept:               c.kept.Load(),
		Miners:             c.miners.Load(),
		IllicitWalletFlips: c.flips.Load(),
		Campaigns:          c.campaigns.Load(),
		Wallets:            c.wallets.Load(),
		TotalXMR:           math.Float64frombits(c.liveXMRBits.Load()),
		TotalUSD:           math.Float64frombits(c.liveUSDBits.Load()),
	}
	if secs := uptime.Seconds(); secs > 0 {
		s.SamplesPerSec = float64(analyzed) / secs
	}
	for i := 0; i < numStages; i++ {
		st := StageStats{Name: StageNames[i], Processed: c.stageCount[i].Load()}
		if st.Processed > 0 {
			st.AvgNanos = time.Duration(c.stageNanos[i].Load() / st.Processed)
		}
		s.Stages = append(s.Stages, st)
	}
	return s
}
