package stream

import (
	"time"

	"cryptomining/internal/avsim"
	"cryptomining/internal/model"
	"cryptomining/internal/obs"
	"cryptomining/internal/sandbox"
	"cryptomining/internal/static"
)

// Task is one sample traveling the stage chain, accumulating analysis
// artefacts on the way to the collector. The artefact fields are owned by
// the in-package stages; external code sees a Task only through the Stage
// contract and the read accessors.
type Task struct {
	sample *model.Sample
	// key is the lowercase hash the sample is keyed (and sharded) by.
	key string
	// seq is the caller-assigned submission sequence (SubmitSeq); zero for
	// untracked submissions. The collector acks it after processing.
	seq uint64

	outcome *SampleOutcome
	report  *model.AVReport
	// labels are the detected AV labels, for PPI-botnet enrichment.
	labels  []string
	cls     avsim.Classification
	static  *static.Result
	dynamic *sandbox.Report
}

// Sample returns the sample under analysis.
func (t *Task) Sample() *model.Sample { return t.sample }

// Key returns the lowercase SHA-256 the task is keyed and sharded by.
func (t *Task) Key() string { return t.key }

// Outcome returns the outcome assembled so far (nil before the sanity
// stage has run).
func (t *Task) Outcome() *SampleOutcome { return t.outcome }

// Stage is one step of the per-shard analysis chain. Stages are the
// engine's unit of composition: the engine wires a chain of stages per
// shard over bounded channels, timing every Process call — which is also
// how distributing stages across nodes stays a transport problem rather
// than a refactor. Process runs on exactly one goroutine per (shard,
// stage), so implementations may keep unsynchronized per-instance state.
type Stage interface {
	// Name identifies the stage in StageStats and metric labels.
	Name() string
	// Process advances one task. It must either complete the task's work
	// for this stage or record the failure on the task's outcome; the
	// engine always forwards the task to the next stage.
	Process(t *Task)
}

// StageOption configures a stage built with NewStage.
type StageOption func(*funcStage)

// WithObserver adds a latency observer invoked after every Process call
// with its duration. Multiple observers stack.
func WithObserver(fn func(time.Duration)) StageOption {
	return func(s *funcStage) { s.observers = append(s.observers, fn) }
}

// WithMetrics makes the stage self-register its latency histogram
// (stream_stage_duration_seconds{stage=<name>}) in the registry and observe
// every Process call into it.
func WithMetrics(reg *obs.Registry) StageOption {
	return func(s *funcStage) {
		if reg == nil {
			return
		}
		h := reg.Histogram(metricStageDuration,
			"Per-stage processing latency of the streaming analysis chain.",
			obs.LatencyBuckets, obs.L("stage", s.name))
		s.observers = append(s.observers, func(d time.Duration) { h.Observe(d.Seconds()) })
	}
}

// metricStageDuration is the stage latency histogram family; exported
// queries and the metrics smoke test key on it.
const metricStageDuration = "stream_stage_duration_seconds"

// funcStage adapts a named function into a Stage, timing Process for its
// observers.
type funcStage struct {
	name      string
	fn        func(*Task)
	observers []func(time.Duration)
}

// NewStage builds a Stage from a name and a process function. Observers
// attached via options (engine stats, self-registered metrics) all see the
// same measured duration, which is what keeps StageStats and the exposition
// in exact agreement.
func NewStage(name string, fn func(*Task), opts ...StageOption) Stage {
	s := &funcStage{name: name, fn: fn}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

func (s *funcStage) Name() string { return s.name }

func (s *funcStage) Process(t *Task) {
	if len(s.observers) == 0 {
		s.fn(t)
		return
	}
	t0 := time.Now() //cryptolint:allow directclock stage latency telemetry only
	s.fn(t)
	d := time.Since(t0) //cryptolint:allow directclock stage latency telemetry only
	for _, ob := range s.observers {
		ob(d)
	}
}
