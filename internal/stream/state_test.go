package stream_test

import (
	"bytes"
	"context"
	"encoding/gob"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/stream"
)

// waitProcessed blocks until the collector has handled exactly n
// submissions (absorbed or deduped), quiescing the dataflow for a
// deterministic state export.
func waitProcessed(t *testing.T, eng *stream.Engine, n int64) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute) // generous: -race slows analysis ~10x
	for {
		st := eng.Stats()
		if st.Analyzed+st.Duplicates == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine did not quiesce: analyzed %d + duplicates %d != %d",
				st.Analyzed, st.Duplicates, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEngineStateRoundtripMidStream interrupts an ingestion at several
// points, round-trips the engine state through gob into a fresh engine, and
// requires (a) the serialized state to be byte-stable across the restore
// and (b) both engines, fed the identical remainder, to finish with
// bit-identical results.
func TestEngineStateRoundtripMidStream(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig().Scale(0.2))
	hashes := u.Corpus.Hashes()
	ctx := context.Background()
	mkCfg := func(shards int) stream.Config {
		cfg := core.NewFromUniverse(u).StreamConfig()
		cfg.Shards = shards
		return cfg
	}

	for _, cut := range []int{0, len(hashes) / 3, len(hashes)} {
		orig := stream.New(mkCfg(4))
		orig.Start(ctx)
		for _, h := range hashes[:cut] {
			s, _ := u.Corpus.Get(h)
			if err := orig.Submit(ctx, s); err != nil {
				t.Fatal(err)
			}
		}
		waitProcessed(t, orig, int64(cut))

		st := orig.ExportState()
		st.Counters.UptimeNanos = 0 // wall-clock, legitimately differs
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(st); err != nil {
			t.Fatalf("cut %d: encode: %v", cut, err)
		}
		var decoded stream.EngineState
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&decoded); err != nil {
			t.Fatalf("cut %d: decode: %v", cut, err)
		}

		restored := stream.New(mkCfg(2))
		if err := restored.RestoreState(&decoded); err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		restored.Start(ctx)

		re := restored.ExportState()
		re.Counters.UptimeNanos = 0
		var rebuf bytes.Buffer
		if err := gob.NewEncoder(&rebuf).Encode(re); err != nil {
			t.Fatalf("cut %d: re-encode: %v", cut, err)
		}
		if !bytes.Equal(buf.Bytes(), rebuf.Bytes()) {
			t.Fatalf("cut %d: state not byte-stable across restore (%d vs %d bytes)",
				cut, buf.Len(), rebuf.Len())
		}

		for _, h := range hashes[cut:] {
			s, _ := u.Corpus.Get(h)
			if err := orig.Submit(ctx, s); err != nil {
				t.Fatal(err)
			}
			if err := restored.Submit(ctx, s); err != nil {
				t.Fatal(err)
			}
		}
		a, err := orig.Finish(ctx)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Finish(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Campaigns) != len(b.Campaigns) || a.TotalXMR != b.TotalXMR ||
			a.TotalUSD != b.TotalUSD || len(a.Records) != len(b.Records) ||
			a.Identifiers != b.Identifiers {
			t.Fatalf("cut %d: results diverge after restore: %d/%d/%.8f vs %d/%d/%.8f",
				cut, len(a.Campaigns), len(a.Records), a.TotalXMR,
				len(b.Campaigns), len(b.Records), b.TotalXMR)
		}
		for i := range a.Campaigns {
			if a.Campaigns[i].ID != b.Campaigns[i].ID ||
				len(a.Campaigns[i].Samples) != len(b.Campaigns[i].Samples) {
				t.Fatalf("cut %d: campaign %d diverges", cut, i)
			}
		}
	}
}

// TestRestoreGuards covers the misuse errors of RestoreState.
func TestRestoreGuards(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig().Scale(0.1))
	cfg := core.NewFromUniverse(u).StreamConfig()
	ctx := context.Background()

	eng := stream.New(cfg)
	eng.Start(ctx)
	if err := eng.RestoreState(&stream.EngineState{}); err == nil {
		t.Fatal("restore into a started engine must fail")
	}

	src := stream.New(cfg)
	src.Start(ctx)
	h := u.Corpus.Hashes()[0]
	s, _ := u.Corpus.Get(h)
	if err := src.Submit(ctx, s); err != nil {
		t.Fatal(err)
	}
	waitProcessed(t, src, 1)
	st := src.ExportState()

	used := stream.New(cfg)
	if err := used.RestoreState(st); err != nil {
		t.Fatalf("restore into fresh engine: %v", err)
	}
	if err := used.RestoreState(st); err == nil {
		t.Fatal("second restore must fail (engine no longer empty)")
	}
}

// TestEngineStartSubmitStatsRace hammers the Start/Submit/Stats/Live
// surfaces from concurrent goroutines — Start races with everything — and
// is meaningful under -race: it pins the atomically-published started flag,
// the atomic uptime origin, and the shard structures being immutable after
// New.
func TestEngineStartSubmitStatsRace(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig().Scale(0.1))
	cfg := core.NewFromUniverse(u).StreamConfig()
	cfg.Shards = 4
	eng := stream.New(cfg)
	ctx := context.Background()

	hashes := u.Corpus.Hashes()
	var wg sync.WaitGroup
	done := make(chan struct{})

	// Readers: Stats and Live from the very first moment, racing Start.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					st := eng.Stats()
					if st.Shards != 4 {
						t.Errorf("Stats saw %d shards", st.Shards)
						return
					}
					_ = eng.Live(3)
					_ = eng.ExportState()
				}
			}
		}()
	}

	// Submitters: spin until Start lands (ErrNotStarted is the published
	// not-yet-started signal, not a race), then push their slice of the
	// corpus.
	var submitted atomic.Int64
	parts := 4
	var subWG sync.WaitGroup
	for p := 0; p < parts; p++ {
		subWG.Add(1)
		go func(p int) {
			defer subWG.Done()
			for i := p; i < len(hashes); i += parts {
				s, _ := u.Corpus.Get(hashes[i])
				for {
					err := eng.Submit(ctx, s)
					if err == nil {
						submitted.Add(1)
						break
					}
					if err != stream.ErrNotStarted {
						t.Errorf("submit: %v", err)
						return
					}
					runtime.Gosched()
				}
			}
		}(p)
	}

	time.Sleep(time.Millisecond) // let submitters hit the not-started path
	eng.Start(ctx)
	subWG.Wait()
	res, err := eng.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()

	if submitted.Load() != int64(len(hashes)) {
		t.Fatalf("submitted %d of %d", submitted.Load(), len(hashes))
	}
	if len(res.Outcomes) != len(hashes) {
		t.Fatalf("outcomes %d != corpus %d", len(res.Outcomes), len(hashes))
	}
	if st := eng.Stats(); st.Analyzed != int64(len(hashes)) {
		t.Fatalf("analyzed %d != corpus %d", st.Analyzed, len(hashes))
	}
}
