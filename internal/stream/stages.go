package stream

import (
	"strings"

	"cryptomining/internal/avsim"
	"cryptomining/internal/binfmt"
	"cryptomining/internal/dnssim"
	"cryptomining/internal/extract"
	"cryptomining/internal/model"
	"cryptomining/internal/pool"
	"cryptomining/internal/sandbox"
)

// Stage indices of the per-shard chain, in dataflow order.
const (
	stageSanity = iota
	stageStatic
	stageSandbox
	stageEnrich
	numStages
)

// StageNames names the stages in dataflow order, indexed like the per-stage
// latency counters.
var StageNames = [numStages]string{"sanity", "static", "sandbox", "enrich"}

// avEntry caches one AV report and its detected labels.
type avEntry struct {
	report *model.AVReport
	labels []string
}

// Per-shard cache bounds. A continuous feed has unbounded key spaces (hashes,
// domains), so each cache is simply reset when it reaches its cap — cheap,
// and duplicate submissions cluster in time anyway.
const (
	maxAVCacheEntries   = 8192
	maxDNSCacheEntries  = 65536
	maxPoolCacheEntries = 65536
)

// cachingResolver memoizes DNS resolutions. It is confined to one shard's
// sandbox stage, so it needs no locking.
type cachingResolver struct {
	inner *dnssim.Resolver
	cache map[string]resolverEntry
}

type resolverEntry struct {
	res dnssim.Resolution
	err error
}

func (r *cachingResolver) Resolve(name string) (dnssim.Resolution, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if e, ok := r.cache[key]; ok {
		return e.res, e.err
	}
	res, err := r.inner.Resolve(name)
	if len(r.cache) >= maxDNSCacheEntries {
		r.cache = map[string]resolverEntry{}
	}
	r.cache[key] = resolverEntry{res: res, err: err}
	return res, err
}

// shard is one concurrent stage chain plus the caches its stages own. Each
// cache is touched by exactly one stage goroutine, so none of them locks.
type shard struct {
	e  *Engine
	in chan *Task
	// chans[i] feeds stage i; the enrich stage writes to the engine-wide
	// outcomes channel instead.
	chans [numStages]chan *Task
	// stages is the composed, contract-typed chain in dataflow order. Each
	// stage carries its own latency observers (engine StageStats plus, when
	// metrics are enabled, the self-registered histogram), so every Process
	// call updates both from one measurement.
	stages [numStages]Stage

	box *sandbox.Sandbox
	// avCache memoizes AV reports+labels (sanity stage only).
	avCache map[string]avEntry
	// poolCache memoizes known-pool domain lookups (enrich stage only).
	poolCache map[string]bool
}

func newShard(e *Engine) *shard {
	s := &shard{
		e:         e,
		avCache:   map[string]avEntry{},
		poolCache: map[string]bool{},
	}
	s.chans[0] = make(chan *Task, e.cfg.QueueDepth)
	s.in = s.chans[0]
	for i := 1; i < numStages; i++ {
		s.chans[i] = make(chan *Task, e.cfg.QueueDepth)
	}
	if e.cfg.Resolver != nil {
		s.box = sandbox.NewWithResolver(&cachingResolver{inner: e.cfg.Resolver, cache: map[string]resolverEntry{}})
	} else {
		s.box = sandbox.NewWithResolver(nil)
	}
	fns := [numStages]func(*Task){
		stageSanity:  s.sanity,
		stageStatic:  s.staticStage,
		stageSandbox: s.sandboxStage,
		stageEnrich:  s.enrich,
	}
	for idx, fn := range fns {
		s.stages[idx] = NewStage(StageNames[idx], fn, e.stageOptions(idx)...)
	}
	return s
}

// sanity runs the "is it an executable? is it malware?" checks: magic-number
// format detection, stock-tool whitelist, AV report (cached per shard) and
// the positives-threshold classification.
func (s *shard) sanity(it *Task) {
	o := &SampleOutcome{SHA256: it.sample.SHA256}
	it.outcome = o
	o.Executable = isExecutableFormat(binfmt.DetectFormat(it.sample.Content))
	o.Whitelisted = s.e.cfg.OSINT.IsWhitelistedHash(it.sample.SHA256)

	ent, ok := s.avCache[it.key]
	if !ok {
		var report *model.AVReport
		if s.e.cfg.AV != nil {
			report = s.e.cfg.AV.Report(it.sample.SHA256)
		} else {
			report = &model.AVReport{SHA256: it.sample.SHA256}
		}
		var labels []string
		for _, v := range report.Verdicts {
			if v.Detected && v.Label != "" {
				labels = append(labels, v.Label)
			}
		}
		ent = avEntry{report: report, labels: labels}
		if len(s.avCache) >= maxAVCacheEntries {
			s.avCache = map[string]avEntry{}
		}
		s.avCache[it.key] = ent
	}
	it.report = ent.report
	it.labels = ent.labels
	o.Positives = ent.report.Positives()
	it.cls = avsim.Classify(ent.report, s.e.cfg.MalwareThreshold, o.Whitelisted, false)
	o.IsMalware = it.cls.IsMalware && o.Executable
}

// staticStage runs the full static pass (strings, identifiers, endpoints,
// YARA, packer/entropy).
func (s *shard) staticStage(it *Task) {
	st := s.e.analyzer.Analyze(it.sample.Content)
	it.static = &st
}

// sandboxStage executes the sample in the (simulated) sandbox and merges all
// analyses into the Table I extraction record.
func (s *shard) sandboxStage(it *Task) {
	it.dynamic = s.box.Run(it.sample.SHA256, it.sample.Content)
	it.outcome.Record = extract.Extract(extract.Inputs{
		Sample:   it.sample,
		Static:   it.static,
		Dynamic:  it.dynamic,
		AVReport: it.report,
	})
}

// enrich decides the miner verdict: YARA rules, observed Stratum traffic, a
// recovered (wallet, pool) pair, known-pool DNS resolutions, or >=threshold
// engines labeling the sample as a miner.
func (s *shard) enrich(it *Task) {
	o := it.outcome
	o.IsMiner = len(it.static.YARAMatches) > 0 ||
		it.dynamic.MiningObserved ||
		o.Record.Type == model.TypeMiner ||
		s.contactsKnownPool(&o.Record) ||
		it.cls.LabeledMiner
}

// contactsKnownPool reports whether any resolved domain belongs to (or
// aliases) a known mining pool, memoizing directory lookups per shard.
func (s *shard) contactsKnownPool(rec *model.Record) bool {
	check := func(d string) bool {
		if d == "" {
			return false
		}
		d = strings.ToLower(d)
		hit, ok := s.poolCache[d]
		if !ok {
			_, hit = s.e.cfg.Pools.PoolForDomain(d)
			if len(s.poolCache) >= maxPoolCacheEntries {
				s.poolCache = map[string]bool{}
			}
			s.poolCache[d] = hit
		}
		return hit
	}
	for _, d := range rec.DNSRR {
		if check(d) {
			return true
		}
	}
	if rec.URLPool != "" {
		if check(pool.HostOfEndpoint(rec.URLPool)) {
			return true
		}
	}
	return false
}
