package stream

import (
	"sort"
	"strings"
	"time"

	"cryptomining/internal/campaign"
	"cryptomining/internal/graph"
	"cryptomining/internal/model"
	"cryptomining/internal/pool"
	"cryptomining/internal/profit"
	"cryptomining/internal/timeseries"
)

// collector owns every piece of cross-sample state the batch pipeline
// computed in separate whole-corpus passes, and maintains it incrementally:
//
//   - the illicit-wallet exception (a below-threshold sample carrying a
//     wallet already seen in confirmed malware is retroactively kept);
//   - dropper-relation reachability (malware connected to a miner through
//     the parent/dropped graph is kept as ancillary), via a union-find over
//     sample hashes with a per-component "contains a miner" flag;
//   - the campaign partition (campaign.IncrementalAggregator);
//   - per-campaign profit, through a shared per-wallet activity cache.
//
// All rules are monotone — outcomes only ever flip toward malware, the keep
// set only grows, components only merge — which is why applying them at each
// arrival reaches exactly the fixpoint the batch passes compute at the end.
// The collector runs in a single goroutine; the engine serializes external
// reads (Stats, live snapshots, finalize) with its mutex.
type collector struct {
	e *Engine

	outcomes map[string]*SampleOutcome //cryptolint:guardedby Engine.mu
	// pending holds what the aggregation will need should a sample be kept
	// later (content for fuzzy-hash attribution, AV labels for PPI
	// enrichment); entries are dropped once fed to the aggregator.
	pending map[string]pendingInput //cryptolint:guardedby Engine.mu
	// byWallet indexes outcomes carrying an identifier, for retroactive
	// illicit-wallet flips.
	byWallet map[string][]*SampleOutcome //cryptolint:guardedby Engine.mu
	illicit  map[string]bool             //cryptolint:guardedby Engine.mu

	// rel is the union-find over sample hashes for the parent/dropped
	// relation.
	rel *graph.DisjointSet[string]
	// relMiner flags roots whose component contains a kept miner.
	relMiner map[string]bool
	// relWaiting holds malware outcomes parked until their component gains a
	// miner.
	relWaiting map[string][]*SampleOutcome

	agg     *campaign.IncrementalAggregator
	wallets *profit.CachedCollector
	// collect is the wallet-activity source all pricing flows through: the
	// synchronous cached collector by default, or the probe cache when a
	// prober is attached (Config.Prober).
	collect func(string) profit.WalletActivity
	// seenWallets tracks distinct identifiers across kept records, for the
	// live profit running totals (and, in probe mode, for deciding which
	// probe completions concern the dataset).
	seenWallets map[string]bool //cryptolint:guardedby Engine.mu
	// pricedProfit records, per wallet, the totals already folded into the
	// live profit counters in probe mode; probe updates apply deltas against
	// it so TTL refreshes adjust rather than double-count.
	pricedProfit map[string]pricedTotals //cryptolint:guardedby Engine.mu
	// profitCache memoizes per-campaign profit for live views; entries are
	// keyed by campaign pointer, so a rebuilt (dirty) campaign naturally
	// misses and gets re-priced.
	profitCache map[*model.Campaign]profit.CampaignProfit //cryptolint:guardedby Engine.mu
	// finalized flips once finalize has sealed the results; late probe
	// updates (forced refreshes) must no longer touch shared campaign state.
	finalized bool //cryptolint:guardedby Engine.mu
	// now is the timeseries recording timestamp for the event currently
	// being collected; the engine reads its clock once per event (collected
	// sample or probe completion) so every series point the event records
	// shares one timestamp. Unused when the timeseries store is disabled.
	now time.Time
}

// pricedTotals is one wallet's contribution to the live profit counters.
type pricedTotals struct {
	xmr, usd float64
}

type pendingInput struct {
	content []byte
	labels  []string
}

func newCollector(e *Engine) *collector {
	c := &collector{
		e:            e,
		outcomes:     map[string]*SampleOutcome{},
		pending:      map[string]pendingInput{},
		byWallet:     map[string][]*SampleOutcome{},
		illicit:      map[string]bool{},
		rel:          graph.NewDisjointSet[string](),
		relMiner:     map[string]bool{},
		relWaiting:   map[string][]*SampleOutcome{},
		agg:          campaign.NewIncremental(aggregatorConfig(e.cfg)),
		wallets:      profit.NewCachedCollector(profit.NewCollector(e.cfg.Pools, e.cfg.Rates, e.cfg.QueryTime)),
		seenWallets:  map[string]bool{},
		pricedProfit: map[string]pricedTotals{},
		profitCache:  map[*model.Campaign]profit.CampaignProfit{},
	}
	if e.cfg.Prober != nil {
		c.collect = e.cfg.Prober.CollectWallet
	} else {
		c.collect = c.wallets.CollectWallet
	}
	if e.ts != nil {
		// Campaign timelines are keyed by the partition's stable component
		// keys; when components merge, the timelines merge with them, so a
		// campaign's timeline always covers its full constituent history.
		c.agg.SetMergeHook(e.ts.MergeTimeline)
	}
	return c
}

// handle processes one analyzed sample: records it, wires it into the
// relation graph, applies the illicit-wallet exception in both directions,
// and decides (possibly retroactively, for earlier samples) what is kept.
// It reports whether the sample was absorbed (false for duplicates, which
// must not count toward analysis throughput).
func (c *collector) handle(it *Task) bool {
	o := it.outcome
	h := it.key
	if _, seen := c.outcomes[h]; seen {
		// A continuous feed re-observes samples; the dataset is defined over
		// distinct hashes (feed consolidation dedups upstream in batch mode),
		// so resubmissions must not double-feed the aggregation or stats. The
		// duplicates counter is bumped by collect after the batch's view
		// publication, alongside analyzed.
		return false
	}
	c.outcomes[h] = o
	c.pending[h] = pendingInput{content: it.sample.Content, labels: it.labels}

	if o.Record.HasIdentifier() {
		c.byWallet[o.Record.User] = append(c.byWallet[o.Record.User], o)
	}

	// Relation edges come from every outcome, kept or not: a benign-looking
	// intermediary still connects a dropper to its payload. Hashes are
	// case-normalized into the same namespace as the sample keys.
	for _, parent := range o.Record.Parents {
		c.relUnion(h, lowerHash(parent))
	}
	for _, child := range o.Record.Dropped {
		c.relUnion(h, lowerHash(child))
	}

	// Illicit-wallet exception, both directions: the arriving sample may be
	// upgraded by an already-illicit wallet, and its own wallet may upgrade
	// samples that arrived before it.
	c.maybeFlip(o)
	if o.IsMalware && o.Record.HasIdentifier() {
		c.markIllicit(o.Record.User)
	}

	c.decideKeep(o, h)

	// Bound memory on long-running ingestions: content is only retained for
	// samples that can still enter the dataset. Anything failing the flip
	// preconditions for good (benign, non-executable, whitelisted, no
	// identifier) can never be kept, so its body is released immediately.
	if !o.Kept && !c.retainable(o) {
		delete(c.pending, h)
	}
	return true
}

// retainable reports whether a not-(yet-)kept outcome may still be kept
// later: confirmed malware parked on the dropper relation, or a sample still
// eligible for the illicit-wallet flip.
func (c *collector) retainable(o *SampleOutcome) bool {
	if o.IsMalware {
		return true
	}
	return !o.Whitelisted && o.Executable && o.Positives > 0 && o.Record.HasIdentifier()
}

// maybeFlip applies the illicit-wallet exception to one outcome: a sample
// below the malware threshold but with at least one positive, carrying a
// wallet independently confirmed as illicit, counts as malware.
func (c *collector) maybeFlip(o *SampleOutcome) {
	if o.Whitelisted || !o.Executable {
		return
	}
	if !o.IsMalware && o.Positives > 0 && o.Record.HasIdentifier() && c.illicit[o.Record.User] {
		o.IsMalware = true
		c.e.stats.flips.Add(1)
	}
}

// markIllicit registers a wallet seen in confirmed malware and retroactively
// upgrades earlier below-threshold samples carrying it.
func (c *collector) markIllicit(wallet string) {
	if wallet == "" || c.illicit[wallet] {
		return
	}
	c.illicit[wallet] = true
	for _, cand := range c.byWallet[wallet] {
		if cand.IsMalware {
			continue
		}
		c.maybeFlip(cand)
		if cand.IsMalware {
			c.decideKeep(cand, keyOf(cand))
		}
	}
}

func keyOf(o *SampleOutcome) string { return lowerHash(o.SHA256) }

// decideKeep applies the dataset-membership rule to a (newly) malware
// outcome: miners are kept outright (and seed their component's miner flag);
// other malware is kept as ancillary once its component contains a miner,
// and parked otherwise.
func (c *collector) decideKeep(o *SampleOutcome, h string) {
	if o.Kept || !o.IsMalware {
		return
	}
	root := c.relFind(h)
	switch {
	case o.IsMiner:
		o.Kept = true
		if o.Record.Type != model.TypeMiner {
			// Mining indicators without a complete (wallet, pool) pair:
			// keep the sample as an ancillary.
			o.Record.Type = model.TypeAncillary
		}
		c.keep(o)
		if !c.relMiner[root] {
			c.relMiner[root] = true
			c.releaseWaiting(root)
		}
	case c.relMiner[root]:
		o.Kept = true
		o.Record.Type = model.TypeAncillary
		c.keep(o)
	default:
		c.relWaiting[root] = append(c.relWaiting[root], o)
	}
}

// releaseWaiting keeps every malware outcome parked on a component that just
// gained a miner.
func (c *collector) releaseWaiting(root string) {
	waiting := c.relWaiting[root]
	if len(waiting) == 0 {
		return
	}
	delete(c.relWaiting, root)
	for _, o := range waiting {
		if o.Kept {
			continue
		}
		o.Kept = true
		o.Record.Type = model.TypeAncillary
		c.keep(o)
	}
}

// keep feeds one kept outcome into the incremental aggregation and the live
// profit totals.
func (c *collector) keep(o *SampleOutcome) {
	h := keyOf(o)
	pc := c.pending[h]
	delete(c.pending, h)
	c.agg.SetAVLabels(o.SHA256, pc.labels)
	in := campaign.Input{Record: o.Record, Content: pc.content}
	if c.e.cfg.GroundTruth != nil {
		in.GroundTruthID = c.e.cfg.GroundTruth[o.Record.SHA256]
	}
	c.agg.Add(in)

	c.e.stats.kept.Add(1)
	if o.Record.Type == model.TypeMiner {
		c.e.stats.miners.Add(1)
	}
	c.e.stats.campaigns.Store(int64(c.agg.Len()))

	if ts := c.e.ts; ts != nil {
		ts.Record(timeseries.SeriesKept, c.now, 1)
		ts.Record(timeseries.SeriesCampaigns, c.now, float64(c.agg.Len()))
		if pn := c.poolNameOf(&o.Record); pn != "" {
			ts.Record(timeseries.PoolSeriesPrefix+pn, c.now, 1)
		}
		ts.RecordYear(o.Record.FirstSeen)
		if key, ok := c.agg.ComponentKey(o.Record.SHA256); ok {
			ts.RecordTimeline(key, timeseries.TimelineSamples, c.now, 1)
		}
	}

	// Live profit running totals: first sighting of a wallet. With a prober
	// the pool queries leave the hot path — the sighting only enqueues an
	// asynchronous probe, and totals land when it completes (immediately, if
	// the cache already holds the wallet). Without one, activity is pulled
	// synchronously through the shared cache as before.
	if o.Record.HasIdentifier() && !c.seenWallets[o.Record.User] {
		wallet := o.Record.User
		c.seenWallets[wallet] = true
		if ts := c.e.ts; ts != nil {
			if key, ok := c.agg.WalletComponentKey(wallet); ok {
				ts.RecordTimeline(key, timeseries.TimelineWallets, c.now, 1)
			}
		}
		if p := c.e.cfg.Prober; p != nil {
			p.Enqueue(wallet)
			if ent, ok := p.Peek(wallet); ok {
				c.applyProbedActivity(wallet, ent.Activity)
			}
		} else if _, donation := c.e.cfg.OSINT.IsDonationWallet(wallet); !donation {
			act := c.wallets.CollectWallet(wallet)
			c.e.stats.wallets.Add(1)
			c.e.stats.addLiveProfit(act.TotalXMR, act.TotalUSD)
			c.recordProfitTS(wallet, act.TotalXMR)
		}
	}

	c.e.publish(Event{
		Type:       EventSampleKept,
		SHA256:     o.Record.SHA256,
		SampleType: string(o.Record.Type),
		Wallet:     o.Record.User,
		Pool:       o.Record.Pool,
		Campaigns:  c.agg.Len(),
		Kept:       int(c.e.stats.kept.Load()),
	})
}

// poolNameOf resolves the normalized pool a kept record mines at, for the
// per-pool share series: the extracted name when present, else a directory
// lookup on the mining endpoint's host. Records mining through proxies or
// unknown endpoints resolve to nothing and contribute to no pool series.
func (c *collector) poolNameOf(rec *model.Record) string {
	if rec.Pool != "" {
		return rec.Pool
	}
	if rec.URLPool == "" {
		return ""
	}
	// Same host extraction + lowercase as the keep-decision path
	// (contactsKnownPool) — a mixed-case endpoint that was kept as a miner
	// must contribute to its pool's share too.
	host := strings.ToLower(pool.HostOfEndpoint(rec.URLPool))
	if p, ok := c.e.cfg.Pools.PoolForDomain(host); ok {
		return p.Name
	}
	return ""
}

// applyProbedActivity folds one probed wallet's cross-pool totals into the
// live profit counters, as a delta against what the wallet contributed
// before — so a TTL refresh against live pools adjusts the running figures
// instead of double-counting, and re-applying an unchanged activity is a
// no-op. Donation wallets stay excluded from the running totals, exactly as
// in the synchronous path. Called under e.mu.
func (c *collector) applyProbedActivity(wallet string, act profit.WalletActivity) {
	if _, donation := c.e.cfg.OSINT.IsDonationWallet(wallet); donation {
		return
	}
	prev, counted := c.pricedProfit[wallet]
	if !counted {
		c.e.stats.wallets.Add(1)
	}
	c.e.stats.addLiveProfit(act.TotalXMR-prev.xmr, act.TotalUSD-prev.usd)
	c.pricedProfit[wallet] = pricedTotals{xmr: act.TotalXMR, usd: act.TotalUSD}
	c.recordProfitTS(wallet, act.TotalXMR-prev.xmr)
}

// recordProfitTS folds one wallet's priced-XMR delta into the longitudinal
// series: the ecosystem running-total gauge, and the timeline of the
// campaign the wallet belongs to. Zero deltas record nothing, which is what
// keeps a checkpoint-restore's delta reconciliation (re-applying cached
// activities as no-op deltas) from perturbing the restored series. Called
// under e.mu.
func (c *collector) recordProfitTS(wallet string, deltaXMR float64) {
	ts := c.e.ts
	if ts == nil || deltaXMR == 0 {
		return
	}
	ts.Record(timeseries.SeriesXMR, c.now, c.e.stats.liveXMR())
	if key, ok := c.agg.WalletComponentKey(wallet); ok {
		ts.RecordTimeline(key, timeseries.TimelineXMR, c.now, deltaXMR)
	}
}

// relFind returns the relation-component root of a sample hash.
func (c *collector) relFind(x string) string { return c.rel.Find(x) }

// relUnion merges the components of two related sample hashes, combining the
// miner flag and the parked outcomes — and releasing the latter when the
// merge connects them to a miner.
func (c *collector) relUnion(a, b string) {
	if a == "" || b == "" || a == b {
		return
	}
	root, absorbed, merged := c.rel.Union(a, b)
	if !merged {
		return
	}
	miner := c.relMiner[root] || c.relMiner[absorbed]
	c.relMiner[root] = miner
	delete(c.relMiner, absorbed)
	if waiting := c.relWaiting[absorbed]; len(waiting) > 0 {
		c.relWaiting[root] = append(c.relWaiting[root], waiting...)
		delete(c.relWaiting, absorbed)
	}
	if miner {
		c.releaseWaiting(root)
	}
}

// finalize assembles the full Results from the collector's state. Everything
// derived here iterates in deterministic (sorted) order, so the output is
// bit-identical regardless of arrival order or shard count.
func (c *collector) finalize() *Results {
	c.finalized = true
	res := &Results{
		Outcomes:         c.outcomes,
		CountsBySource:   map[model.Source]int{},
		CountsByResource: map[model.AnalysisResource]int{},
		QueryTime:        c.e.cfg.QueryTime,
	}
	hashes := make([]string, 0, len(c.outcomes))
	for h := range c.outcomes {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)

	identifierSet := map[string]bool{}
	for _, h := range hashes {
		o := c.outcomes[h]
		if !o.Kept {
			continue
		}
		res.Records = append(res.Records, o.Record)
		if o.Record.Type == model.TypeMiner {
			res.MinerRecords = append(res.MinerRecords, o.Record)
		} else {
			res.AncillaryRecords = append(res.AncillaryRecords, o.Record)
		}
		if o.Record.HasIdentifier() {
			identifierSet[o.Record.User] = true
		}
		for _, src := range o.Record.Sources {
			res.CountsBySource[src]++
		}
		for _, r := range o.Record.Resources {
			res.CountsByResource[r]++
		}
	}
	res.Identifiers = len(identifierSet)

	res.Aggregation = c.agg.Snapshot()
	res.Campaigns = res.Aggregation.Campaigns
	// Price every campaign once and seed the live-view cache with the final
	// figures: Live calls after Finish then only read, never re-price — they
	// must not mutate campaigns shared with the returned Results.
	c.profitCache = make(map[*model.Campaign]profit.CampaignProfit, len(res.Campaigns))
	for _, cam := range res.Campaigns {
		cp := profit.AnalyzeCampaignWith(cam, c.collect, c.e.cfg.QueryTime)
		c.profitCache[cam] = cp
		if cp.XMR > 0 {
			res.Profits = append(res.Profits, cp)
		}
	}
	sort.Slice(res.Profits, func(i, j int) bool { return res.Profits[i].XMR > res.Profits[j].XMR })
	for _, cp := range res.Profits {
		res.TotalXMR += cp.XMR
		res.TotalUSD += cp.USD
	}
	res.CirculationShare = profit.CirculationShare(res.TotalXMR, c.e.cfg.Network, c.e.cfg.QueryTime)

	c.e.publish(Event{
		Type:      EventDrained,
		Campaigns: len(res.Campaigns),
		Kept:      len(res.Records),
	})
	return res
}
