package stream

import (
	"errors"
	"fmt"
	"sort"

	"cryptomining/internal/campaign"
	"cryptomining/internal/graph"
	"cryptomining/internal/probe"
	"cryptomining/internal/timeseries"
)

// EngineState is a self-contained snapshot of everything the engine must
// remember across a process restart: the collector's cross-sample state
// (outcomes, pending bodies, the illicit-wallet set, the dropper relation
// with its miner flags and parked outcomes, the incremental campaign
// partition, the priced-wallet set) plus the live counters and the
// submission-sequence watermark that tells a write-ahead log which entries
// the state already reflects.
//
// Like campaign.AggregatorState, every map is flattened into a sorted slice,
// so the same state always serializes to the same bytes regardless of map
// iteration order. Derived data (per-campaign profit cache, by-wallet index)
// is deliberately not captured; RestoreState rebuilds it.
//
// A snapshot taken mid-ingestion covers exactly the samples the collector
// has absorbed. Samples still traveling the stage chains are NOT in the
// state — they are covered by the ack watermark: a sequence neither below
// AckLow nor in AckAbove must be re-submitted after a restore (the
// internal/persist recovery path replays them from the WAL tail).
type EngineState struct {
	// AckLow / AckAbove describe which submission sequence numbers this
	// state reflects: every seq < AckLow, plus every seq listed in AckAbove
	// (the out-of-order window above the low watermark). Both are zero/empty
	// when sequence tracking was never used (plain Submit only).
	AckLow   uint64
	AckAbove []uint64

	// Outcomes holds every absorbed sample outcome, sorted by key (the
	// lowercase hash).
	Outcomes []OutcomeState
	// Pending holds the retained bodies and AV labels of samples that may
	// still enter the dataset, sorted by key.
	Pending []PendingState
	// Illicit is the sorted set of wallets seen in confirmed malware.
	Illicit []string
	// Relations is the dropper-relation union-find table, sorted by child.
	Relations []HashRelation
	// RelMiners lists the relation roots whose component contains a kept
	// miner, sorted.
	RelMiners []string
	// RelWaiting lists, per relation root (sorted), the keys of malware
	// outcomes parked until their component gains a miner (keys sorted).
	RelWaiting []WaitingState
	// Agg is the incremental campaign aggregator's partition.
	Agg *campaign.AggregatorState
	// SeenWallets is the sorted set of identifiers already priced into the
	// live profit totals.
	SeenWallets []string
	// PricedWallets records, per wallet (sorted), the totals already folded
	// into the live profit counters in probe mode; restore applies probe
	// results as deltas against it, so nothing double-counts.
	PricedWallets []PricedWalletState
	// Probe is the wallet-probe cache when the engine runs with an
	// asynchronous prober (nil otherwise). Restoring it is what lets a
	// restarted daemon re-probe only TTL-expired wallets instead of
	// re-hammering every pool for the whole set.
	Probe *probe.CacheState
	// Timeseries is the longitudinal metrics store (nil when the subsystem
	// is disabled). Its canonical form is already sorted/unrolled, so it
	// rides the same same-state-same-bytes guarantee as the rest.
	Timeseries *timeseries.State
	// Counters carries the live stats so uptime, throughput and running
	// totals span restarts.
	Counters CounterState
}

// PricedWalletState is one wallet's contribution to the live profit totals.
type PricedWalletState struct {
	Wallet   string
	XMR, USD float64
}

// OutcomeState pairs an outcome with the key it is stored under.
type OutcomeState struct {
	Key     string
	Outcome SampleOutcome
}

// PendingState is one retained sample body awaiting a possible keep.
type PendingState struct {
	Key     string
	Content []byte
	Labels  []string
}

// HashRelation is one dropper-relation union-find entry.
type HashRelation struct {
	Node   string
	Parent string
	Rank   int
}

// WaitingState lists the outcomes parked on one relation component.
type WaitingState struct {
	Root string
	Keys []string
}

// CounterState is the serializable form of the engine's live counters.
type CounterState struct {
	Submitted  int64
	Analyzed   int64
	Duplicates int64
	Kept       int64
	Miners     int64
	Flips      int64
	Campaigns  int64
	Wallets    int64
	// LiveXMRBits / LiveUSDBits are math.Float64bits of the running totals.
	LiveXMRBits uint64
	LiveUSDBits uint64
	StageCount  [numStages]int64
	StageNanos  [numStages]int64
	// UptimeNanos is the uptime at snapshot time; Start backdates the clock
	// by this much after a restore so uptime spans restarts.
	UptimeNanos int64
}

// ExportState snapshots the engine's durable state under the collector
// mutex. It may be called at any time, including mid-ingestion — but note
// that samples still in the stage pipeline are not part of the snapshot (see
// EngineState); callers without a WAL should quiesce submissions first.
func (e *Engine) ExportState() *EngineState {
	e.mu.Lock()
	defer e.mu.Unlock()

	c := e.col
	st := &EngineState{
		AckLow: e.ackLow,
		Agg:    c.agg.ExportState(),
	}
	for seq := range e.ackAbove {
		st.AckAbove = append(st.AckAbove, seq)
	}
	sort.Slice(st.AckAbove, func(i, j int) bool { return st.AckAbove[i] < st.AckAbove[j] })

	for _, k := range sortedKeys(c.outcomes) {
		st.Outcomes = append(st.Outcomes, OutcomeState{Key: k, Outcome: *c.outcomes[k]})
	}
	for _, k := range sortedKeys(c.pending) {
		p := c.pending[k]
		st.Pending = append(st.Pending, PendingState{Key: k, Content: p.content, Labels: p.labels})
	}
	st.Illicit = sortedTrueKeys(c.illicit)

	parent, rank := c.rel.Export()
	children := make([]string, 0, len(parent))
	for n := range parent {
		children = append(children, n)
	}
	sort.Strings(children)
	for _, n := range children {
		st.Relations = append(st.Relations, HashRelation{Node: n, Parent: parent[n], Rank: rank[n]})
	}
	st.RelMiners = sortedTrueKeys(c.relMiner)
	for _, root := range sortedKeys(c.relWaiting) {
		ws := WaitingState{Root: root}
		for _, o := range c.relWaiting[root] {
			ws.Keys = append(ws.Keys, keyOf(o))
		}
		sort.Strings(ws.Keys)
		st.RelWaiting = append(st.RelWaiting, ws)
	}
	st.SeenWallets = sortedTrueKeys(c.seenWallets)
	for _, w := range sortedKeys(c.pricedProfit) {
		p := c.pricedProfit[w]
		st.PricedWallets = append(st.PricedWallets, PricedWalletState{Wallet: w, XMR: p.xmr, USD: p.usd})
	}
	if e.cfg.Prober != nil {
		st.Probe = e.cfg.Prober.ExportCache()
	}
	if e.ts != nil {
		st.Timeseries = e.ts.Export()
	}

	st.Counters = CounterState{
		Submitted:   e.stats.submitted.Load(),
		Analyzed:    e.stats.analyzed.Load(),
		Duplicates:  e.stats.duplicates.Load(),
		Kept:        e.stats.kept.Load(),
		Miners:      e.stats.miners.Load(),
		Flips:       e.stats.flips.Load(),
		Campaigns:   e.stats.campaigns.Load(),
		Wallets:     e.stats.wallets.Load(),
		LiveXMRBits: e.stats.liveXMRBits.Load(),
		LiveUSDBits: e.stats.liveUSDBits.Load(),
		UptimeNanos: int64(e.stats.uptime()),
	}
	for i := 0; i < numStages; i++ {
		st.Counters.StageCount[i] = e.stats.stageCount[i].Load()
		st.Counters.StageNanos[i] = e.stats.stageNanos[i].Load()
	}
	return st
}

// RestoreState loads a previously exported state into the engine. The
// receiver must be freshly created (stream.New, not yet started, nothing
// submitted) with the same configuration that produced the state. After a
// successful restore the engine behaves exactly as if it had absorbed the
// snapshot's samples in this process: Start, replay the unacked WAL tail,
// continue submitting.
func (e *Engine) RestoreState(st *EngineState) error {
	if e.started.Load() {
		return errors.New("stream: restore into a started engine")
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	c := e.col
	if len(c.outcomes) != 0 {
		return errors.New("stream: restore into a non-empty engine")
	}

	if st.AckLow > 0 {
		e.ackLow = st.AckLow
	}
	for _, seq := range st.AckAbove {
		e.ackAbove[seq] = struct{}{}
	}

	for i := range st.Outcomes {
		o := st.Outcomes[i].Outcome
		k := st.Outcomes[i].Key
		c.outcomes[k] = &o
	}
	// Rebuild the by-wallet index over the restored outcome objects, so
	// retroactive illicit-wallet flips keep mutating the canonical outcome.
	for _, k := range sortedKeys(c.outcomes) {
		if o := c.outcomes[k]; o.Record.HasIdentifier() {
			c.byWallet[o.Record.User] = append(c.byWallet[o.Record.User], o)
		}
	}
	for _, p := range st.Pending {
		c.pending[p.Key] = pendingInput{content: p.Content, labels: p.Labels}
	}
	for _, w := range st.Illicit {
		c.illicit[w] = true
	}

	parent := make(map[string]string, len(st.Relations))
	rank := make(map[string]int, len(st.Relations))
	for _, r := range st.Relations {
		parent[r.Node] = r.Parent
		rank[r.Node] = r.Rank
	}
	c.rel = graph.RestoreDisjointSet(parent, rank)
	for _, root := range st.RelMiners {
		c.relMiner[root] = true
	}
	for _, ws := range st.RelWaiting {
		for _, k := range ws.Keys {
			o, ok := c.outcomes[k]
			if !ok {
				return fmt.Errorf("stream: parked outcome %s missing from state", k)
			}
			c.relWaiting[ws.Root] = append(c.relWaiting[ws.Root], o)
		}
	}

	if st.Agg != nil {
		if err := c.agg.RestoreState(st.Agg); err != nil {
			return fmt.Errorf("stream: restore aggregator: %w", err)
		}
	}
	for _, w := range st.SeenWallets {
		c.seenWallets[w] = true
	}
	for _, p := range st.PricedWallets {
		c.pricedProfit[p.Wallet] = pricedTotals{xmr: p.XMR, usd: p.USD}
	}

	// Restore the series after the aggregator: rebuilding the partition may
	// fire timeline-merge hooks, which must not touch restored timelines
	// (they are no-ops against the still-empty store this early).
	if e.ts != nil && st.Timeseries != nil {
		if err := e.ts.Restore(st.Timeseries); err != nil {
			return fmt.Errorf("stream: restore timeseries: %w", err)
		}
	}

	cs := st.Counters
	// The submitted counter may have included samples that were still
	// in-flight at snapshot time; those will be re-submitted from the WAL
	// tail and counted again. When sequence tracking was active, the exact
	// number of fully processed submissions is known — use it instead.
	if st.AckLow > 1 || len(st.AckAbove) > 0 {
		e.stats.submitted.Store(int64(st.AckLow-1) + int64(len(st.AckAbove)))
	} else {
		e.stats.submitted.Store(cs.Submitted)
	}
	e.stats.analyzed.Store(cs.Analyzed)
	e.stats.duplicates.Store(cs.Duplicates)
	e.stats.kept.Store(cs.Kept)
	e.stats.miners.Store(cs.Miners)
	e.stats.flips.Store(cs.Flips)
	e.stats.campaigns.Store(cs.Campaigns)
	e.stats.wallets.Store(cs.Wallets)
	e.stats.liveXMRBits.Store(cs.LiveXMRBits)
	e.stats.liveUSDBits.Store(cs.LiveUSDBits)
	for i := 0; i < numStages; i++ {
		e.stats.stageCount[i].Store(cs.StageCount[i])
		e.stats.stageNanos[i].Store(cs.StageNanos[i])
	}
	e.stats.carriedNanos.Store(cs.UptimeNanos)
	e.stats.markStart()

	if p := e.cfg.Prober; p != nil {
		p.RestoreCache(st.Probe)
		// A checkpoint captures the engine state and the probe cache under
		// different locks: a probe that completed between the two captures is
		// in the cache but not yet in the priced totals. Reconcile by
		// re-applying every cached activity for a seen wallet — deltas, so
		// already-applied entries are no-ops (this runs after the counter
		// restore above, which it adjusts). A non-zero delta records series
		// points, so stamp the recording clock first — otherwise they would
		// land in a bucket at the zero time (year 1).
		if e.ts != nil {
			c.now = e.cfg.Timeseries.Clock()
		}
		for _, w := range st.SeenWallets {
			if ent, ok := p.Peek(w); ok {
				c.applyProbedActivity(w, ent.Activity)
			}
		}
		// Resume the crawl where it stopped: exactly the seen wallets that
		// were never probed (in flight or queued at the crash), carry a probe
		// error, or have outlived the TTL.
		p.EnsureFresh(st.SeenWallets)
	}
	// Publish the restored state to the read tier, so clients of a freshly
	// restored daemon see the checkpoint's campaigns before the WAL tail
	// replays (each replayed batch then republishes as usual).
	e.publishViewLocked()
	return nil
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sortedTrueKeys returns the sorted keys mapped to true. Flag maps may hold
// explicit false entries (e.g. a relation root whose component lost its
// miner-flag holder to a merge); those are semantically absent and excluded,
// which also keeps the serialized form canonical.
func sortedTrueKeys(m map[string]bool) []string {
	var out []string
	for k, v := range m {
		if v {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
