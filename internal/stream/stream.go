// Package stream is the streaming ingestion engine of the measurement system:
// it processes malware-feed samples continuously instead of in one batch,
// decomposing the pipeline of the paper (Figure 3) into composable,
// context-aware stages — sanity checks, static analysis, sandbox execution +
// extraction, and enrichment — connected by bounded channels.
//
// Samples are sharded by SHA-256 onto a pool of per-shard stage chains, so
// per-shard caches (AV reports, DNS resolutions, pool-directory lookups) are
// touched by exactly one goroutine each and never race. All shards feed a
// single collector goroutine that owns the cross-sample state the batch
// pipeline computed in separate passes — the illicit-wallet exception, the
// dropper-relation reachability, and the campaign partition — and applies it
// incrementally as each sample lands:
//
//	Submit --> in --(dispatch by SHA-256)--> shard 0: sanity > static > sandbox > enrich \
//	                                         shard 1: sanity > static > sandbox > enrich  >--> collector
//	                                         shard N: sanity > static > sandbox > enrich /     (keep rules,
//	                                                                                            incremental
//	                                                                                            campaigns+profit)
//
// The incremental view is exact, not approximate: after the same set of
// samples, Finish returns results identical to core.Pipeline.Run — the batch
// pipeline is in fact a thin wrapper that drives this engine with one shard.
// Live progress (samples/sec, per-stage latency, campaigns discovered, profit
// running totals, backpressure depth) is available at any time via Stats.
package stream

import (
	"log/slog"
	"runtime"
	"time"

	"cryptomining/internal/avsim"
	"cryptomining/internal/campaign"
	"cryptomining/internal/dnssim"
	"cryptomining/internal/exchange"
	"cryptomining/internal/model"
	"cryptomining/internal/obs"
	"cryptomining/internal/osint"
	"cryptomining/internal/pool"
	"cryptomining/internal/pow"
	"cryptomining/internal/probe"
	"cryptomining/internal/profit"
	"cryptomining/internal/timeseries"
)

// AVProvider supplies antivirus reports for samples. Implementations must be
// safe for concurrent use: every shard queries it independently.
type AVProvider interface {
	Report(sha256Hex string) *model.AVReport
}

// Config wires the engine's dependencies. The analysis-related fields have
// the same meaning as in the batch pipeline configuration.
type Config struct {
	// AV supplies multi-engine reports.
	AV AVProvider
	// MalwareThreshold is the minimum number of AV positives for the
	// "is it malware?" check (default 10).
	MalwareThreshold int
	// Resolver resolves the domains samples contact (and CNAME aliases).
	Resolver *dnssim.Resolver
	// Zone backs the passive-DNS lookups of the alias detector.
	Zone *dnssim.Zone
	// OSINT supplies IoCs, donation wallets, PPI families and stock tools.
	OSINT *osint.Store
	// Pools is the directory of known pools, used for endpoint attribution
	// and profit collection.
	Pools *pool.Directory
	// Rates converts XMR payments to USD.
	Rates *exchange.History
	// Network is the PoW model used for the circulating-supply estimate.
	Network *pow.Network
	// QueryTime is the measurement end time (pool queries, activity checks).
	QueryTime time.Time
	// GroundTruth optionally maps sample hashes to ground-truth campaign IDs
	// for aggregation validation.
	GroundTruth map[string]int
	// Features selects the aggregation grouping features (default: all).
	Features *campaign.Features
	// FuzzyThreshold overrides the stock-tool fuzzy-hash distance threshold.
	FuzzyThreshold float64

	// Shards is the number of concurrent stage chains (default: GOMAXPROCS).
	Shards int
	// QueueDepth bounds every channel of the dataflow (default 64); a full
	// queue exerts backpressure on Submit.
	QueueDepth int

	// Timeseries configures the longitudinal metrics subsystem
	// (internal/timeseries): multi-resolution windowed series maintained by
	// the collector and queryable at any time via Engine.Timeseries /
	// Engine.CampaignTimeline. Enabled by default; see TimeseriesOptions.
	Timeseries TimeseriesOptions

	// Prober, when set, makes wallet-statistics collection asynchronous: the
	// collector's first sighting of a wallet enqueues a probe instead of
	// querying Pools synchronously under the collector lock, live profit is
	// served from the probe cache, completed probes publish profit_updated
	// (and failures probe_error) events, and Finish waits for the crawl to
	// converge before pricing final results — which is what keeps them
	// bit-identical to the synchronous batch path. Nil keeps the historical
	// in-line collection.
	Prober *probe.Scheduler

	// Metrics, when set, makes the engine register and maintain its
	// instrument set (stage latency histograms, queue-depth gauges,
	// throughput counters, collector lock-hold timing) in the registry for
	// /metrics exposition. Nil disables instrumentation; the hot path then
	// pays nothing beyond the StageStats counters it always kept.
	Metrics *obs.Registry
	// Logger receives the engine's structured logs, scoped with
	// component=stream. Nil keeps the engine silent (the library default).
	Logger *slog.Logger
}

// TimeseriesOptions configures the engine's longitudinal metrics.
type TimeseriesOptions struct {
	// Disabled turns the subsystem off entirely: nothing is recorded, the
	// timeseries queries return ErrTimeseriesDisabled, and ingestion pays
	// zero overhead.
	Disabled bool
	// Levels is the retention ladder (nil = timeseries.DefaultLevels). It
	// bounds memory: each series holds a fixed number of buckets per level
	// regardless of run length.
	Levels []timeseries.LevelSpec
	// Clock supplies recording timestamps (nil = time.Now). Injectable so
	// tests can drive the series deterministically.
	Clock func() time.Time
}

// withDefaults fills optional dependencies exactly like the batch pipeline
// always has, plus the streaming knobs.
func (cfg Config) withDefaults() Config {
	if cfg.MalwareThreshold <= 0 {
		cfg.MalwareThreshold = avsim.DefaultMalwareThreshold
	}
	if cfg.OSINT == nil {
		cfg.OSINT = osint.NewDefaultStore()
	}
	if cfg.Pools == nil {
		cfg.Pools = pool.NewDirectory(nil)
	}
	if cfg.Rates == nil {
		cfg.Rates = exchange.NewDefaultHistory()
	}
	if cfg.Network == nil {
		cfg.Network = pow.NewMoneroNetwork()
	}
	if cfg.QueryTime.IsZero() {
		cfg.QueryTime = time.Now().UTC() //cryptolint:allow directclock default wiring: QueryTime defaults to the real clock exactly like the batch pipeline
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Timeseries.Clock == nil {
		cfg.Timeseries.Clock = time.Now //cryptolint:allow directclock default wiring: the one site the engine Clock seam binds to the real clock
	}
	return cfg
}

// aggregatorConfig derives the campaign-aggregation configuration, identical
// to what the batch pipeline builds.
func aggregatorConfig(cfg Config) campaign.Config {
	var detector *dnssim.AliasDetector
	if cfg.Zone != nil {
		detector = dnssim.NewAliasDetector(cfg.Zone, cfg.Pools.DomainMap())
	}
	c := campaign.DefaultConfig(cfg.OSINT, detector, cfg.Pools.DomainMap())
	if cfg.Features != nil {
		c.Features = *cfg.Features
	}
	if cfg.FuzzyThreshold > 0 {
		c.FuzzyThreshold = cfg.FuzzyThreshold
	}
	c.AVLabels = map[string][]string{}
	return c
}

// SampleOutcome records what happened to one sample during the sanity checks
// and analysis.
type SampleOutcome struct {
	SHA256 string
	// Executable reports whether the magic-number check passed.
	Executable bool
	// Whitelisted marks known stock mining tools.
	Whitelisted bool
	// Positives is the AV positives count.
	Positives int
	// IsMalware is the outcome of the malware sanity check.
	IsMalware bool
	// IsMiner reports whether mining indicators were observed.
	IsMiner bool
	// Kept reports whether the sample entered the final dataset.
	Kept bool
	// Record is the extraction record (only meaningful when Kept).
	Record model.Record
}

// Results is the full output of an ingestion run (and, via the batch wrapper,
// of a pipeline run).
type Results struct {
	// Outcomes for every ingested sample, keyed by lowercase hash.
	Outcomes map[string]*SampleOutcome
	// Records of the kept samples (miners + ancillaries), sorted by hash.
	Records []model.Record
	// MinerRecords / AncillaryRecords split Records by type.
	MinerRecords     []model.Record
	AncillaryRecords []model.Record
	// Aggregation holds the campaign graph and campaigns.
	Aggregation *campaign.Result
	// Campaigns is Aggregation.Campaigns (with profit fields filled).
	Campaigns []*model.Campaign
	// Profits are the per-campaign profit summaries (campaigns with earnings).
	Profits []profit.CampaignProfit
	// Identifiers counts distinct mining identifiers in the dataset.
	Identifiers int
	// TotalXMR is the total XMR attributed to campaigns.
	TotalXMR float64
	// TotalUSD is the dynamic-rate USD equivalent.
	TotalUSD float64
	// CirculationShare is TotalXMR over the circulating supply at QueryTime.
	CirculationShare float64
	// CountsBySource mirrors Table III's source breakdown.
	CountsBySource map[model.Source]int
	// CountsByResource counts records per analysis resource.
	CountsByResource map[model.AnalysisResource]int
	// QueryTime echoes the configured measurement end.
	QueryTime time.Time
}

func isExecutableFormat(f model.ExecutableFormat) bool {
	switch f {
	case model.FormatPE, model.FormatELF, model.FormatJAR:
		return true
	default:
		return false
	}
}
