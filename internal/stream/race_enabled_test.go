//go:build race

package stream_test

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation serializes the engine enough to make
// wall-clock speedup assertions meaningless.
const raceEnabled = true
