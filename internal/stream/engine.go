package stream

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cryptomining/internal/binfmt"
	"cryptomining/internal/model"
	"cryptomining/internal/obs"
	"cryptomining/internal/probe"
	"cryptomining/internal/profit"
	"cryptomining/internal/report"
	"cryptomining/internal/static"
	"cryptomining/internal/timeseries"
)

// ErrNotStarted is returned by Submit/Finish before Start.
var ErrNotStarted = errors.New("stream: engine not started")

// ErrFinished is returned by Submit once Finish has closed the intake.
var ErrFinished = errors.New("stream: submit after Finish")

// Engine is the streaming ingestion engine. Typical use:
//
//	eng := stream.New(cfg)
//	eng.Start(ctx)
//	for _, s := range samples { eng.Submit(ctx, s) }
//	res, err := eng.Finish(ctx)
//
// Submit blocks when the bounded dataflow is full (backpressure). Stats and
// Live may be called at any time from any goroutine.
type Engine struct {
	cfg      Config
	analyzer *static.Analyzer
	stats    *counters
	// obs holds the engine's registered metric instruments (nil members when
	// Config.Metrics is unset); log is the engine's component logger.
	obs engineMetrics
	log *slog.Logger

	in       chan *Task
	outcomes chan *Task
	shards   []*shard

	// mu serializes the collector's mutations with the remaining stateful
	// entry points (finalize, state export/restore, HasSample). The read tier
	// does NOT take it: every GET-shaped accessor serves from the last
	// published view.
	mu  sync.Mutex
	col *collector //cryptolint:guardedby mu

	// view is the last published read snapshot (see view.go). Swapped under
	// mu, loaded lock-free by readers; never nil (New seeds epoch 0).
	view atomic.Pointer[View]

	// ts is the longitudinal metrics store (nil when disabled). It is
	// guarded by mu alongside the collector state it is recorded with, so
	// the hot path takes no additional lock.
	ts *timeseries.Store

	// ackLow / ackAbove track which submission sequence numbers (SubmitSeq)
	// the collector has fully processed: everything below ackLow, plus the
	// out-of-order window in ackAbove. Guarded by mu, so a state export
	// observes an ack watermark exactly consistent with the collector state.
	ackLow   uint64              //cryptolint:guardedby mu
	ackAbove map[uint64]struct{} //cryptolint:guardedby mu

	runCtx     context.Context
	startOnce  sync.Once
	finishOnce sync.Once
	done       chan struct{}
	// started flips once Start has fully initialized the engine. It is
	// atomic because Submit/Finish/Stats may run concurrently with Start;
	// the release/acquire pair also publishes runCtx to submitters.
	started atomic.Bool
	// submitMu orders Submit against Finish: Finish takes the write lock to
	// set finishing before closing the intake, so a concurrent Submit either
	// completes its send first or observes the flag and errors — never a
	// send on a closed channel.
	submitMu  sync.RWMutex
	finishing atomic.Bool

	// subMu guards the event subscriptions (see events.go). It is strictly
	// below mu in the lock order: publish is called with mu held.
	subMu     sync.Mutex
	subs      map[int]chan Event //cryptolint:guardedby subMu
	nextSubID int                //cryptolint:guardedby subMu
	evSeq     uint64             //cryptolint:guardedby subMu
	// evDrops counts events dropped on full subscriber buffers (atomic:
	// read by the metrics exposition while publish writes it).
	evDrops atomic.Int64
	// drainedEv retains the terminal EventDrained so late subscribers still
	// receive it.
	drainedEv *Event //cryptolint:guardedby subMu
}

// engineMetrics is the engine's registered instrument set. All fields are
// nil when metrics are disabled; the hot paths guard on that.
type engineMetrics struct {
	lockHold *obs.Histogram
}

// stageOptions composes the observer set for the stage at idx: the engine's
// StageStats counters always, plus the self-registered latency histogram
// when a metrics registry is configured. Both observers see the same
// measured duration, so the exposition's per-stage counts agree with
// StageStats.Processed exactly.
func (e *Engine) stageOptions(idx int) []StageOption {
	opts := []StageOption{
		WithObserver(func(d time.Duration) { e.stats.observeStage(idx, d) }),
	}
	if e.cfg.Metrics != nil {
		opts = append(opts, WithMetrics(e.cfg.Metrics))
	}
	return opts
}

// registerMetrics wires the engine's gauges, counters and histograms into
// the registry. Counter-style families bridge the existing atomic counter
// block via CounterFunc, so the hot path pays nothing new for them; only
// the collector lock-hold histogram adds clock reads, and only when metrics
// are enabled.
func (e *Engine) registerMetrics(reg *obs.Registry) {
	e.obs.lockHold = reg.Histogram("stream_collector_lock_hold_seconds",
		"Time the collector holds the engine mutex per absorbed sample or probe update.",
		obs.LatencyBuckets)
	reg.GaugeFunc("stream_queue_depth",
		"Samples queued in the engine-wide bounded channels.",
		func() float64 { return float64(len(e.in)) }, obs.L("queue", "intake"))
	reg.GaugeFunc("stream_queue_depth",
		"Samples queued in the engine-wide bounded channels.",
		func() float64 { return float64(len(e.outcomes)) }, obs.L("queue", "outcomes"))
	reg.GaugeFunc("stream_shard_backlog",
		"Samples queued in per-shard stage channels, summed across shards.",
		func() float64 {
			n := 0
			for _, sh := range e.shards {
				for _, ch := range sh.chans {
					n += len(ch)
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("stream_shards", "Concurrent stage chains.",
		func() float64 { return float64(len(e.shards)) })
	counterFuncs := []struct {
		name, help string
		src        *atomic.Int64
	}{
		{"stream_samples_submitted_total", "Samples entering the dataflow.", &e.stats.submitted},
		{"stream_samples_analyzed_total", "Distinct samples absorbed by the collector.", &e.stats.analyzed},
		{"stream_samples_duplicate_total", "Re-observed hashes dropped by the collector.", &e.stats.duplicates},
		{"stream_samples_kept_total", "Samples kept in the dataset (miners + ancillaries).", &e.stats.kept},
		{"stream_miners_total", "Kept samples classified as miners.", &e.stats.miners},
		{"stream_illicit_wallet_flips_total", "Below-threshold samples retroactively kept by the illicit-wallet exception.", &e.stats.flips},
	}
	for _, cf := range counterFuncs {
		src := cf.src
		reg.CounterFunc(cf.name, cf.help, func() float64 { return float64(src.Load()) })
	}
	reg.GaugeFunc("stream_campaigns", "Live campaigns discovered so far.",
		func() float64 { return float64(e.stats.campaigns.Load()) })
	reg.GaugeFunc("stream_wallets", "Distinct non-donation wallets priced so far.",
		func() float64 { return float64(e.stats.wallets.Load()) })
	reg.GaugeFunc("stream_profit_xmr", "Running priced-XMR total.", e.stats.liveXMR)
	reg.CounterFunc("stream_events_published_total",
		"Events fanned out to subscribers (before per-subscriber drops).",
		func() float64 {
			e.subMu.Lock()
			defer e.subMu.Unlock()
			return float64(e.evSeq)
		})
	reg.CounterFunc("stream_events_dropped_total",
		"Events dropped because a subscriber's buffer was full.",
		func() float64 { return float64(e.evDrops.Load()) })
	reg.GaugeFunc("stream_event_subscribers", "Live event subscriptions.",
		func() float64 {
			e.subMu.Lock()
			defer e.subMu.Unlock()
			return float64(len(e.subs))
		})
}

// New creates an engine; call Start before submitting. The shard structures
// (channels, caches, sandboxes) are built here so every Engine field is
// immutable after New — Start only launches goroutines, which is what makes
// concurrent Stats/Submit calls racing with Start safe.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:      cfg,
		analyzer: static.New(),
		stats:    newCounters(),
		log:      obs.Component(cfg.Logger, "stream"),
		in:       make(chan *Task, cfg.QueueDepth),
		outcomes: make(chan *Task, cfg.QueueDepth),
		done:     make(chan struct{}),
		ackLow:   1,
		ackAbove: map[uint64]struct{}{},
		subs:     map[int]chan Event{},
	}
	if !cfg.Timeseries.Disabled {
		ts, err := timeseries.NewStore(cfg.Timeseries.Levels)
		if err != nil {
			// A malformed retention ladder is a configuration programming
			// error; callers taking ladders from user input validate with
			// timeseries.ValidateLevels first.
			panic(err)
		}
		e.ts = ts
	}
	for i := 0; i < cfg.Shards; i++ {
		e.shards = append(e.shards, newShard(e))
	}
	e.col = newCollector(e)
	e.view.Store(emptyView(e.publishInstant()))
	if cfg.Prober != nil {
		cfg.Prober.SetOnUpdate(e.onProbeUpdate)
	}
	if cfg.Metrics != nil {
		e.registerMetrics(cfg.Metrics)
	}
	return e
}

// onProbeUpdate folds one completed wallet probe into the live state: the
// running profit totals (for wallets the dataset has seen), an invalidated
// per-campaign profit cache so live views re-price lazily, and a
// profit_updated / probe_error event on the pub/sub. Updates arriving after
// finalize are dropped — the results are sealed, and re-pricing would mutate
// campaigns shared with the returned Results.
func (e *Engine) onProbeUpdate(u probe.Update) {
	var t0 time.Time
	if e.obs.lockHold != nil {
		t0 = time.Now() //cryptolint:allow directclock collector lock-hold telemetry only
	}
	e.mu.Lock()
	if e.col.finalized {
		e.mu.Unlock()
		return
	}
	if e.ts != nil {
		e.col.now = e.cfg.Timeseries.Clock()
	}
	if e.col.seenWallets[u.Wallet] {
		e.col.applyProbedActivity(u.Wallet, u.Activity)
		// Only a wallet the dataset has seen can change campaign figures:
		// drop the per-campaign profit cache and republish, so the swapped-in
		// view re-prices every campaign against the updated activity. The
		// republish happens before the scheduler decrements its in-flight
		// counter, so a client that observes probe convergence always reads a
		// view covering the final probe.
		if len(e.col.profitCache) > 0 {
			e.col.profitCache = map[*model.Campaign]profit.CampaignProfit{}
		}
		e.publishViewLocked()
	}
	ev := Event{
		Type:      EventProfitUpdated,
		Wallet:    u.Wallet,
		XMR:       u.Activity.TotalXMR,
		USD:       u.Activity.TotalUSD,
		Campaigns: int(e.stats.campaigns.Load()),
		Kept:      int(e.stats.kept.Load()),
	}
	if u.Err != "" {
		ev.Type = EventProbeError
		ev.Error = u.Err
	}
	e.publish(ev)
	e.mu.Unlock()
	if e.obs.lockHold != nil {
		e.obs.lockHold.Observe(time.Since(t0).Seconds()) //cryptolint:allow directclock collector lock-hold telemetry only
	}
}

// Start launches the dispatcher, the sharded stage chains and the collector.
// It is idempotent; the first context wins and cancels the whole dataflow.
func (e *Engine) Start(ctx context.Context) {
	e.startOnce.Do(func() {
		e.runCtx = ctx
		e.stats.markStart()

		// Every stage owns (and closes) the channel it writes to, except the
		// final enrich stages, which share the engine-wide outcomes channel:
		// those join enrichWG so the channel closes once ALL shards drain.
		var enrichWG sync.WaitGroup
		for _, s := range e.shards {
			for st := 0; st < numStages-1; st++ {
				go e.runStage(ctx, s.stages[st], s.chans[st], s.chans[st+1], true, nil)
			}
			enrichWG.Add(1)
			go e.runStage(ctx, s.stages[numStages-1], s.chans[numStages-1], e.outcomes, false, &enrichWG)
		}
		go func() {
			enrichWG.Wait()
			close(e.outcomes)
		}()
		go e.dispatch(ctx)
		go e.collect(ctx)

		// Publish last: a Submit that observes started also observes runCtx
		// and the launched dataflow.
		e.started.Store(true)
	})
}

// runStage pumps tasks through one stage. Latency accounting lives inside
// Stage.Process (see stageOptions), so the engine's StageStats and the
// stage's self-registered histogram observe the same measurement.
func (e *Engine) runStage(ctx context.Context, st Stage, in <-chan *Task, out chan<- *Task, closeOut bool, wg *sync.WaitGroup) {
	if wg != nil {
		defer wg.Done()
	}
	if closeOut {
		defer close(out)
	}
	for {
		select {
		case <-ctx.Done():
			return
		case it, ok := <-in:
			if !ok {
				return
			}
			st.Process(it)
			select {
			case out <- it:
			case <-ctx.Done():
				return
			}
		}
	}
}

// dispatch routes submitted samples to their shard by SHA-256, so all state
// keyed by hash stays shard-local.
func (e *Engine) dispatch(ctx context.Context) {
	defer func() {
		for _, s := range e.shards {
			close(s.in)
		}
	}()
	for {
		select {
		case <-ctx.Done():
			return
		case it, ok := <-e.in:
			if !ok {
				return
			}
			s := e.shards[shardIndex(it.key, len(e.shards))]
			select {
			case s.in <- it:
			case <-ctx.Done():
				return
			}
		}
	}
}

// collect drains analyzed samples into the collector. Samples are absorbed
// in batches: one mutex hold drains everything already queued on the
// outcomes channel (bounded by its capacity), then publishes a single view
// for the whole batch — so the O(campaigns) snapshot build amortizes over
// the batch under load, while a quiet feed still republishes after every
// sample.
func (e *Engine) collect(ctx context.Context) {
	defer close(e.done)
	for {
		select {
		case <-ctx.Done():
			return
		case it, ok := <-e.outcomes:
			if !ok {
				return
			}
			var t0 time.Time
			if e.obs.lockHold != nil {
				t0 = time.Now() //cryptolint:allow directclock collector lock-hold telemetry only
			}
			closed := false
			var analyzed, duplicates int64
			e.mu.Lock()
			for it != nil {
				// One clock read covers every series point this sample records
				// (arrival, keep, retroactive keeps it triggers), keeping the
				// recorded sequence deterministic for a deterministic feed.
				if e.ts != nil {
					e.col.now = e.cfg.Timeseries.Clock()
				}
				// Re-observed hashes count as duplicates, not as analyzed
				// throughput. The sequence ack stays under the mutex so a
				// concurrent state export sees watermark and collector state
				// move as one.
				if e.col.handle(it) {
					analyzed++
					if e.ts != nil {
						e.ts.Record(timeseries.SeriesSamples, e.col.now, 1)
					}
				} else {
					duplicates++
				}
				if it.seq != 0 {
					e.ackSeq(it.seq)
				}
				// Coalesce: absorb whatever the shards have already queued
				// without releasing the mutex.
				it = nil
				select {
				case next, more := <-e.outcomes:
					if more {
						it = next
					} else {
						closed = true
					}
				default:
				}
			}
			if analyzed > 0 {
				e.publishViewLocked()
			}
			// The analyzed/duplicates bumps come strictly AFTER the view swap:
			// pollers use these counters as the quiescence signal ("all N
			// samples absorbed"), and with lock-free reads the counter order is
			// the only thing guaranteeing that a poller observing analyzed == N
			// then loads a view covering all N samples.
			e.stats.analyzed.Add(analyzed)
			e.stats.duplicates.Add(duplicates)
			e.mu.Unlock()
			if e.obs.lockHold != nil {
				e.obs.lockHold.Observe(time.Since(t0).Seconds()) //cryptolint:allow directclock collector lock-hold telemetry only
			}
			if closed {
				return
			}
		}
	}
}

func shardIndex(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

func lowerHash(sha string) string { return strings.ToLower(sha) }

// ackSeq records that the collector has fully processed submission sequence
// seq, advancing the contiguous low watermark. Called under e.mu.
func (e *Engine) ackSeq(seq uint64) {
	if seq < e.ackLow {
		return
	}
	e.ackAbove[seq] = struct{}{}
	for {
		if _, ok := e.ackAbove[e.ackLow]; !ok {
			return
		}
		delete(e.ackAbove, e.ackLow)
		e.ackLow++
	}
}

// Submit feeds one sample into the dataflow, blocking under backpressure.
// Samples without a SHA256 are hashed from their content.
func (e *Engine) Submit(ctx context.Context, sample *model.Sample) error {
	return e.submit(ctx, sample, 0)
}

// SubmitSeq is Submit with a caller-assigned sequence number (> 0), used by
// the persistence layer: the engine acks each sequence once the collector
// has processed it, and exported state carries the ack watermark so a
// write-ahead log knows which entries still need replaying after a restore.
func (e *Engine) SubmitSeq(ctx context.Context, sample *model.Sample, seq uint64) error {
	if seq == 0 {
		return errors.New("stream: sequence numbers start at 1")
	}
	return e.submit(ctx, sample, seq)
}

func (e *Engine) submit(ctx context.Context, sample *model.Sample, seq uint64) error {
	if !e.started.Load() {
		return ErrNotStarted
	}
	e.submitMu.RLock()
	defer e.submitMu.RUnlock()
	if e.finishing.Load() {
		return ErrFinished
	}
	if sample == nil {
		return errors.New("stream: nil sample")
	}
	sha := sample.SHA256
	if sha == "" {
		if len(sample.Content) == 0 {
			return errors.New("stream: sample without hash or content")
		}
		hashed := *sample
		hashed.SHA256, hashed.MD5 = binfmt.Hashes(sample.Content)
		sample = &hashed
		sha = sample.SHA256
	}
	it := &Task{sample: sample, key: lowerHash(sha), seq: seq}
	select {
	case e.in <- it:
		e.stats.submitted.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-e.runCtx.Done():
		return e.runCtx.Err()
	}
}

// Finish closes the intake, waits for the dataflow to drain and returns the
// final results. Submits racing with Finish either land before the intake
// closes or return an error.
func (e *Engine) Finish(ctx context.Context) (*Results, error) {
	if !e.started.Load() {
		return nil, ErrNotStarted
	}
	e.finishOnce.Do(func() {
		e.submitMu.Lock()
		e.finishing.Store(true)
		e.submitMu.Unlock()
		close(e.in)
	})
	select {
	case <-e.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if err := e.runCtx.Err(); err != nil {
		return nil, fmt.Errorf("stream: ingestion aborted: %w", err)
	}
	if p := e.cfg.Prober; p != nil {
		// The probe cache is the profit source: finalize only once every
		// wallet the collector enqueued has been probed, so the final figures
		// match the batch pipeline's synchronous collection exactly. Waiting
		// on cache coverage (not queue drain) keeps Finish terminating even
		// when the TTL is shorter than a full crawl and the sweep keeps the
		// queue from ever emptying.
		e.mu.Lock()
		wallets := sortedKeys(e.col.seenWallets)
		e.mu.Unlock()
		if err := p.WaitCached(ctx, wallets); err != nil {
			return nil, fmt.Errorf("stream: waiting for probe convergence: %w", err)
		}
	}
	e.mu.Lock()
	res := e.col.finalize()
	// Republish so the read tier serves the sealed figures: finalize seeds
	// the profit cache with the final per-campaign pricing, so this build
	// only reads, never re-prices.
	e.publishViewLocked()
	e.mu.Unlock()
	if p := e.cfg.Prober; p != nil {
		// The results are sealed; automatic re-probes would be discarded, so
		// stop the TTL sweep from hammering pools for nothing.
		p.DisableRefresh()
	}
	return res, nil
}

// CampaignView is a live, JSON-friendly summary of one campaign.
type CampaignView struct {
	ID          int      `json:"id"`
	Samples     int      `json:"samples"`
	Ancillaries int      `json:"ancillaries"`
	Wallets     []string `json:"wallets,omitempty"`
	Pools       []string `json:"pools,omitempty"`
	XMR         float64  `json:"xmr"`
	USD         float64  `json:"usd"`
	Active      bool     `json:"active"`
}

// CampaignDetail is the full live view of one campaign: the summary fields
// plus membership hashes, enrichment and the profit breakdown.
type CampaignDetail struct {
	CampaignView
	SampleHashes    []string  `json:"sample_hashes,omitempty"`
	AncillaryHashes []string  `json:"ancillary_hashes,omitempty"`
	Currencies      []string  `json:"currencies,omitempty"`
	CNAMEs          []string  `json:"cnames,omitempty"`
	Proxies         []string  `json:"proxies,omitempty"`
	HostingDomains  []string  `json:"hosting_domains,omitempty"`
	PPIBotnets      []string  `json:"ppi_botnets,omitempty"`
	StockTools      []string  `json:"stock_tools,omitempty"`
	KnownOperations []string  `json:"known_operations,omitempty"`
	UsesObfuscation bool      `json:"uses_obfuscation"`
	FirstSeen       time.Time `json:"first_seen"`
	LastSeen        time.Time `json:"last_seen"`
	// Payments / PoolsUsed / FirstPayment / LastPayment break the campaign's
	// profit down by pool activity.
	Payments     int       `json:"payments"`
	PoolsUsed    int       `json:"pools_used"`
	FirstPayment time.Time `json:"first_payment,omitzero"`
	LastPayment  time.Time `json:"last_payment,omitzero"`
}

// CampaignFilter selects live campaigns by attribute; zero values match
// everything.
type CampaignFilter struct {
	// Pool keeps campaigns that mined at the named pool.
	Pool string
	// Wallet keeps campaigns that used the identifier.
	Wallet string
	// MinXMR keeps campaigns that earned at least this much.
	MinXMR float64
}

// Matches reports whether a published campaign view passes the filter.
func (f CampaignFilter) Matches(v CampaignView) bool {
	if f.MinXMR > 0 && v.XMR < f.MinXMR {
		return false
	}
	if f.Pool != "" && !slices.Contains(v.Pools, f.Pool) {
		return false
	}
	if f.Wallet != "" && !slices.Contains(v.Wallets, f.Wallet) {
		return false
	}
	return true
}

// liveCampaigns snapshots the current campaign partition and returns every
// campaign priced. Dirty campaigns are rebuilt and re-priced incrementally;
// clean ones reuse both their cached campaign and their cached profit (a
// rebuilt campaign is a fresh pointer, so the pointer-keyed profit cache
// misses exactly when re-pricing is needed). Caller must hold e.mu.
func (e *Engine) liveCampaigns() ([]*model.Campaign, map[*model.Campaign]profit.CampaignProfit) {
	res := e.col.agg.Snapshot()
	fresh := make(map[*model.Campaign]profit.CampaignProfit, len(res.Campaigns))
	for _, c := range res.Campaigns {
		cp, priced := e.col.profitCache[c]
		if !priced {
			cp = profit.AnalyzeCampaignWith(c, e.col.collect, e.cfg.QueryTime)
		}
		fresh[c] = cp
	}
	// Swap in the rebuilt cache so entries for replaced campaigns are dropped.
	e.col.profitCache = fresh
	return res.Campaigns, fresh
}

func viewOf(c *model.Campaign, cp profit.CampaignProfit) CampaignView {
	return CampaignView{
		ID:          c.ID,
		Samples:     len(c.Samples),
		Ancillaries: len(c.Ancillaries),
		Wallets:     c.Wallets,
		Pools:       c.Pools,
		XMR:         cp.XMR,
		USD:         cp.USD,
		Active:      cp.ActiveAt,
	}
}

// Live returns the top n campaigns by earnings (all of them when n <= 0)
// from the last published snapshot. Lock-free: never blocks on the collector.
func (e *Engine) Live(n int) []CampaignView {
	views := e.LiveFiltered(CampaignFilter{})
	if n > 0 && n < len(views) {
		views = views[:n]
	}
	return views
}

// LiveFiltered returns the matching campaigns from the last published
// snapshot, sorted by earnings (highest first). Lock-free: the view is
// pre-sorted at publication, and filtering preserves the stable order, so
// the result is identical to sorting after filtering.
func (e *Engine) LiveFiltered(f CampaignFilter) []CampaignView {
	v := e.view.Load()
	views := make([]CampaignView, 0, len(v.Campaigns))
	for _, cv := range v.Campaigns {
		if f.Matches(cv) {
			views = append(views, cv)
		}
	}
	return views
}

// CampaignDetail returns the full view of the campaign with the given
// snapshot ID from the last published snapshot, or false when no such
// campaign exists. IDs are positions in the deterministic partition
// ordering, so they are stable for a fixed sample set but may shift as new
// campaigns appear mid-ingestion. Lock-free: details are built once per
// publication, so a detail request never stalls ingestion.
func (e *Engine) CampaignDetail(id int) (CampaignDetail, bool) {
	d, ok := e.view.Load().Details[id]
	return d, ok
}

// HasSample reports whether the collector has already recorded an outcome
// for the sample hash (case-insensitive SHA-256). Samples still in flight
// in the stage pipeline are not visible yet; callers using this to avoid
// re-submission must tolerate the false negative (the collector drops
// duplicates by hash, so re-submitting is always safe).
func (e *Engine) HasSample(sha string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.col.outcomes[lowerHash(sha)]
	return ok
}

// ErrTimeseriesDisabled is returned by the timeseries queries when the
// engine runs with Config.Timeseries.Disabled.
var ErrTimeseriesDisabled = errors.New("stream: timeseries disabled")

// ErrUnknownResolution is returned when a timeseries query names a
// resolution the retention ladder has no level for.
var ErrUnknownResolution = errors.New("stream: no timeseries level at that resolution")

// ErrUnknownMetric is returned when a timeseries query names a metric that
// does not exist.
var ErrUnknownMetric = errors.New("stream: no such timeseries metric")

// TimeseriesQuery selects a window of the longitudinal series.
type TimeseriesQuery struct {
	// Metric optionally restricts the result to one series (ecosystem
	// queries) or one timeline metric (campaign queries).
	Metric string
	// Resolution selects the retention level (0 = the finest configured).
	Resolution time.Duration
	// Window bounds the series to the most recent span, resolved against
	// the engine's own recording clock (Config.Timeseries.Clock) — not the
	// caller's wall clock, which may be unrelated when the clock is
	// injected. Overrides From when set.
	Window time.Duration
	// From / To bound bucket start times (Unix seconds; 0 = open end).
	From, To int64
}

// MetricSeries is one named series of a timeseries snapshot.
type MetricSeries struct {
	Name    string
	Buckets []timeseries.Bucket
}

// YearStats is one calendar year of the data-time evolution breakdown.
type YearStats struct {
	Year int
	// Samples counts kept samples first seen (data time) in the year.
	Samples int64
	// NewCampaigns counts campaigns whose activity started in the year;
	// ActiveCampaigns counts campaigns whose first-seen..last-seen span
	// covers it.
	NewCampaigns    int
	ActiveCampaigns int
}

// TimeseriesSnapshot is the result of a timeseries query: the selected
// series at one resolution, plus (for ecosystem queries) the paper-style
// yearly-evolution breakdown over data time.
type TimeseriesSnapshot struct {
	ResolutionSeconds int64
	Series            []MetricSeries
	Years             []YearStats
	// From is the resolved lower bucket bound (Unix seconds) the snapshot
	// was cut at: the query's From, or the window start resolved against the
	// recording clock. Not serialized to the wire — the API layer folds it
	// into the entity tag so windowed responses revalidate correctly as the
	// window slides.
	From int64
}

// resolveTSQuery validates the query against the store's ladder and
// resolves a relative window into an absolute From bound on the engine's
// recording clock. Caller must have checked e.ts != nil; no lock is needed
// (the ladder is immutable and the clock must be goroutine-safe).
func (e *Engine) resolveTSQuery(q TimeseriesQuery) (TimeseriesQuery, error) {
	if q.Resolution == 0 {
		q.Resolution = e.ts.FinestResolution()
	}
	if !e.ts.HasResolution(q.Resolution) {
		return q, fmt.Errorf("%w: %v (configured: %v)", ErrUnknownResolution, q.Resolution, availableResolutions(e.ts))
	}
	if q.Window > 0 {
		from := e.cfg.Timeseries.Clock().Add(-q.Window).Unix()
		// Align down to the level's bucket boundary so the bucket covering
		// the window start is included — otherwise any window shorter than
		// the elapsed part of the open bucket would filter out the very
		// bucket holding the newest data.
		sec := int64(q.Resolution / time.Second)
		from -= ((from % sec) + sec) % sec
		q.From = from
	}
	return q, nil
}

func availableResolutions(ts *timeseries.Store) []time.Duration {
	var out []time.Duration
	for _, sp := range ts.Levels() {
		out = append(out, sp.Resolution)
	}
	return out
}

// Timeseries snapshots the ecosystem-wide longitudinal series: sample and
// keep arrivals, the campaign-partition gauge, the priced-XMR gauge and the
// per-pool share counters, windowed by the query. Unfiltered queries (no
// Metric) additionally carry the yearly-evolution breakdown (over data
// time, unaffected by the window); metric-filtered queries omit it, keeping
// the polling shape cheap.
func (e *Engine) Timeseries(q TimeseriesQuery) (TimeseriesSnapshot, error) {
	if e.ts == nil {
		return TimeseriesSnapshot{}, ErrTimeseriesDisabled
	}
	q, err := e.resolveTSQuery(q)
	if err != nil {
		return TimeseriesSnapshot{}, err
	}
	names := e.ts.SeriesNames()
	if q.Metric != "" {
		// Series materialize lazily on first record; a known metric that
		// simply has no data yet answers an empty series, not an error.
		if !slices.Contains(names, q.Metric) && !timeseries.KnownEcosystemMetric(q.Metric) {
			return TimeseriesSnapshot{}, fmt.Errorf("%w: %q (known: %s, %s, %s, %s, %s<name>)",
				ErrUnknownMetric, q.Metric,
				timeseries.SeriesSamples, timeseries.SeriesKept, timeseries.SeriesCampaigns,
				timeseries.SeriesXMR, timeseries.PoolSeriesPrefix)
		}
		names = []string{q.Metric}
	}
	snap := TimeseriesSnapshot{ResolutionSeconds: int64(q.Resolution / time.Second), From: q.From}
	for _, name := range names {
		buckets, _ := e.ts.Buckets(name, q.Resolution, q.From, q.To)
		snap.Series = append(snap.Series, MetricSeries{Name: name, Buckets: buckets})
	}
	if q.Metric == "" {
		// The yearly breakdown is built once per view publication;
		// metric-filtered queries are the high-frequency polling shape and
		// skip it to keep the response small.
		snap.Years = e.view.Load().Years
	}
	return snap, nil
}

// yearStats assembles the data-time yearly breakdown: kept samples per
// first-seen year from the series store, campaign starts and activity spans
// from the given partition snapshot — the live equivalent of the paper's
// yearly evolution tables, bucketed via report.YearBuckets. Called from the
// view build under e.mu.
func (e *Engine) yearStats(campaigns []*model.Campaign) []YearStats {
	newC, active := report.NewYearBuckets(), report.NewYearBuckets()
	for _, c := range campaigns {
		newC.Add(c.FirstSeen)
		if c.FirstSeen.IsZero() || c.LastSeen.Before(c.FirstSeen) {
			continue
		}
		for y := c.FirstSeen.Year(); y <= c.LastSeen.Year(); y++ {
			active.AddN(y, 1)
		}
	}
	samples := map[int]int64{}
	for _, yc := range e.ts.Years() {
		samples[yc.Year] = yc.Samples
	}
	yearSet := map[int]bool{}
	for y := range samples {
		yearSet[y] = true
	}
	for _, y := range newC.Years() {
		yearSet[y] = true
	}
	for _, y := range active.Years() {
		yearSet[y] = true
	}
	years := make([]int, 0, len(yearSet))
	for y := range yearSet {
		years = append(years, y)
	}
	sort.Ints(years)
	out := make([]YearStats, 0, len(years))
	for _, y := range years {
		out = append(out, YearStats{
			Year:            y,
			Samples:         samples[y],
			NewCampaigns:    newC.Count(y),
			ActiveCampaigns: active.Count(y),
		})
	}
	return out
}

// CampaignTimeline snapshots one campaign's longitudinal series (sample
// arrivals, wallet first sightings, priced-XMR deltas), windowed by the
// query. The boolean is false when no campaign has the given snapshot ID.
// Timelines follow the campaign through partition merges, so a merged
// campaign's timeline covers the full history of all its constituents.
func (e *Engine) CampaignTimeline(id int, q TimeseriesQuery) (TimeseriesSnapshot, bool, error) {
	if e.ts == nil {
		return TimeseriesSnapshot{}, false, ErrTimeseriesDisabled
	}
	timelineMetrics := []string{timeseries.TimelineSamples, timeseries.TimelineWallets, timeseries.TimelineXMR}
	q, err := e.resolveTSQuery(q)
	if err != nil {
		return TimeseriesSnapshot{}, false, err
	}
	metrics := timelineMetrics
	if q.Metric != "" {
		if !slices.Contains(timelineMetrics, q.Metric) {
			return TimeseriesSnapshot{}, false, fmt.Errorf("%w: %q (timeline metrics: %s)",
				ErrUnknownMetric, q.Metric, strings.Join(timelineMetrics, ", "))
		}
		metrics = []string{q.Metric}
	}
	v := e.view.Load()
	if _, ok := v.Details[id]; !ok {
		return TimeseriesSnapshot{}, false, nil
	}
	key, hasKey := v.TimelineKeys[id]
	snap := TimeseriesSnapshot{ResolutionSeconds: int64(q.Resolution / time.Second), From: q.From}
	for _, metric := range metrics {
		var buckets []timeseries.Bucket
		if hasKey {
			buckets, _ = e.ts.TimelineBuckets(key, metric, q.Resolution, q.From, q.To)
		}
		snap.Series = append(snap.Series, MetricSeries{Name: metric, Buckets: buckets})
	}
	return snap, true, nil
}

// Stats returns a live snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	s := e.stats.snapshot()
	s.Shards = len(e.shards)
	s.Backpressure = len(e.in) + len(e.outcomes)
	for _, sh := range e.shards {
		for _, ch := range sh.chans {
			s.Backpressure += len(ch)
		}
	}
	return s
}
