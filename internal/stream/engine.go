package stream

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cryptomining/internal/binfmt"
	"cryptomining/internal/model"
	"cryptomining/internal/probe"
	"cryptomining/internal/profit"
	"cryptomining/internal/static"
)

// ErrNotStarted is returned by Submit/Finish before Start.
var ErrNotStarted = errors.New("stream: engine not started")

// ErrFinished is returned by Submit once Finish has closed the intake.
var ErrFinished = errors.New("stream: submit after Finish")

// Engine is the streaming ingestion engine. Typical use:
//
//	eng := stream.New(cfg)
//	eng.Start(ctx)
//	for _, s := range samples { eng.Submit(ctx, s) }
//	res, err := eng.Finish(ctx)
//
// Submit blocks when the bounded dataflow is full (backpressure). Stats and
// Live may be called at any time from any goroutine.
type Engine struct {
	cfg      Config
	analyzer *static.Analyzer
	stats    *counters

	in       chan *item
	outcomes chan *item
	shards   []*shard

	// mu serializes the collector's mutations with external reads (live
	// snapshots, finalize, state export).
	mu  sync.Mutex
	col *collector

	// ackLow / ackAbove track which submission sequence numbers (SubmitSeq)
	// the collector has fully processed: everything below ackLow, plus the
	// out-of-order window in ackAbove. Guarded by mu, so a state export
	// observes an ack watermark exactly consistent with the collector state.
	ackLow   uint64
	ackAbove map[uint64]struct{}

	runCtx     context.Context
	startOnce  sync.Once
	finishOnce sync.Once
	done       chan struct{}
	// started flips once Start has fully initialized the engine. It is
	// atomic because Submit/Finish/Stats may run concurrently with Start;
	// the release/acquire pair also publishes runCtx to submitters.
	started atomic.Bool
	// submitMu orders Submit against Finish: Finish takes the write lock to
	// set finishing before closing the intake, so a concurrent Submit either
	// completes its send first or observes the flag and errors — never a
	// send on a closed channel.
	submitMu  sync.RWMutex
	finishing atomic.Bool

	// subMu guards the event subscriptions (see events.go). It is strictly
	// below mu in the lock order: publish is called with mu held.
	subMu     sync.Mutex
	subs      map[int]chan Event
	nextSubID int
	evSeq     uint64
	// drainedEv retains the terminal EventDrained so late subscribers still
	// receive it (guarded by subMu).
	drainedEv *Event
}

// New creates an engine; call Start before submitting. The shard structures
// (channels, caches, sandboxes) are built here so every Engine field is
// immutable after New — Start only launches goroutines, which is what makes
// concurrent Stats/Submit calls racing with Start safe.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:      cfg,
		analyzer: static.New(),
		stats:    newCounters(),
		in:       make(chan *item, cfg.QueueDepth),
		outcomes: make(chan *item, cfg.QueueDepth),
		done:     make(chan struct{}),
		ackLow:   1,
		ackAbove: map[uint64]struct{}{},
		subs:     map[int]chan Event{},
	}
	for i := 0; i < cfg.Shards; i++ {
		e.shards = append(e.shards, newShard(e))
	}
	e.col = newCollector(e)
	if cfg.Prober != nil {
		cfg.Prober.SetOnUpdate(e.onProbeUpdate)
	}
	return e
}

// onProbeUpdate folds one completed wallet probe into the live state: the
// running profit totals (for wallets the dataset has seen), an invalidated
// per-campaign profit cache so live views re-price lazily, and a
// profit_updated / probe_error event on the pub/sub. Updates arriving after
// finalize are dropped — the results are sealed, and re-pricing would mutate
// campaigns shared with the returned Results.
func (e *Engine) onProbeUpdate(u probe.Update) {
	e.mu.Lock()
	if e.col.finalized {
		e.mu.Unlock()
		return
	}
	if e.col.seenWallets[u.Wallet] {
		e.col.applyProbedActivity(u.Wallet, u.Activity)
		// Only a wallet the dataset has seen can change campaign figures;
		// live views then re-price lazily on their next read.
		if len(e.col.profitCache) > 0 {
			e.col.profitCache = map[*model.Campaign]profit.CampaignProfit{}
		}
	}
	ev := Event{
		Type:      EventProfitUpdated,
		Wallet:    u.Wallet,
		XMR:       u.Activity.TotalXMR,
		USD:       u.Activity.TotalUSD,
		Campaigns: int(e.stats.campaigns.Load()),
		Kept:      int(e.stats.kept.Load()),
	}
	if u.Err != "" {
		ev.Type = EventProbeError
		ev.Error = u.Err
	}
	e.publish(ev)
	e.mu.Unlock()
}

// Start launches the dispatcher, the sharded stage chains and the collector.
// It is idempotent; the first context wins and cancels the whole dataflow.
func (e *Engine) Start(ctx context.Context) {
	e.startOnce.Do(func() {
		e.runCtx = ctx
		e.stats.markStart()

		// Every stage owns (and closes) the channel it writes to, except the
		// final enrich stages, which share the engine-wide outcomes channel:
		// those join enrichWG so the channel closes once ALL shards drain.
		var enrichWG sync.WaitGroup
		for _, s := range e.shards {
			for st := 0; st < numStages-1; st++ {
				go e.runStage(ctx, st, s.chans[st], s.chans[st+1], true, s.stageFn(st), nil)
			}
			enrichWG.Add(1)
			go e.runStage(ctx, numStages-1, s.chans[numStages-1], e.outcomes, false, s.stageFn(numStages-1), &enrichWG)
		}
		go func() {
			enrichWG.Wait()
			close(e.outcomes)
		}()
		go e.dispatch(ctx)
		go e.collect(ctx)

		// Publish last: a Submit that observes started also observes runCtx
		// and the launched dataflow.
		e.started.Store(true)
	})
}

// runStage pumps items through one stage, recording per-stage latency.
func (e *Engine) runStage(ctx context.Context, idx int, in <-chan *item, out chan<- *item, closeOut bool, fn func(*item), wg *sync.WaitGroup) {
	if wg != nil {
		defer wg.Done()
	}
	if closeOut {
		defer close(out)
	}
	for {
		select {
		case <-ctx.Done():
			return
		case it, ok := <-in:
			if !ok {
				return
			}
			t0 := time.Now()
			fn(it)
			e.stats.observeStage(idx, time.Since(t0))
			select {
			case out <- it:
			case <-ctx.Done():
				return
			}
		}
	}
}

// dispatch routes submitted samples to their shard by SHA-256, so all state
// keyed by hash stays shard-local.
func (e *Engine) dispatch(ctx context.Context) {
	defer func() {
		for _, s := range e.shards {
			close(s.in)
		}
	}()
	for {
		select {
		case <-ctx.Done():
			return
		case it, ok := <-e.in:
			if !ok {
				return
			}
			s := e.shards[shardIndex(it.key, len(e.shards))]
			select {
			case s.in <- it:
			case <-ctx.Done():
				return
			}
		}
	}
}

// collect drains analyzed samples into the collector.
func (e *Engine) collect(ctx context.Context) {
	defer close(e.done)
	for {
		select {
		case <-ctx.Done():
			return
		case it, ok := <-e.outcomes:
			if !ok {
				return
			}
			e.mu.Lock()
			// Re-observed hashes count as duplicates (inside handle), not as
			// analyzed throughput. The counter bump and the sequence ack stay
			// under the mutex so a concurrent state export sees counters,
			// watermark and collector state move as one.
			if e.col.handle(it) {
				e.stats.analyzed.Add(1)
			}
			if it.seq != 0 {
				e.ackSeq(it.seq)
			}
			e.mu.Unlock()
		}
	}
}

func shardIndex(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

func lowerHash(sha string) string { return strings.ToLower(sha) }

// ackSeq records that the collector has fully processed submission sequence
// seq, advancing the contiguous low watermark. Called under e.mu.
func (e *Engine) ackSeq(seq uint64) {
	if seq < e.ackLow {
		return
	}
	e.ackAbove[seq] = struct{}{}
	for {
		if _, ok := e.ackAbove[e.ackLow]; !ok {
			return
		}
		delete(e.ackAbove, e.ackLow)
		e.ackLow++
	}
}

// Submit feeds one sample into the dataflow, blocking under backpressure.
// Samples without a SHA256 are hashed from their content.
func (e *Engine) Submit(ctx context.Context, sample *model.Sample) error {
	return e.submit(ctx, sample, 0)
}

// SubmitSeq is Submit with a caller-assigned sequence number (> 0), used by
// the persistence layer: the engine acks each sequence once the collector
// has processed it, and exported state carries the ack watermark so a
// write-ahead log knows which entries still need replaying after a restore.
func (e *Engine) SubmitSeq(ctx context.Context, sample *model.Sample, seq uint64) error {
	if seq == 0 {
		return errors.New("stream: sequence numbers start at 1")
	}
	return e.submit(ctx, sample, seq)
}

func (e *Engine) submit(ctx context.Context, sample *model.Sample, seq uint64) error {
	if !e.started.Load() {
		return ErrNotStarted
	}
	e.submitMu.RLock()
	defer e.submitMu.RUnlock()
	if e.finishing.Load() {
		return ErrFinished
	}
	if sample == nil {
		return errors.New("stream: nil sample")
	}
	sha := sample.SHA256
	if sha == "" {
		if len(sample.Content) == 0 {
			return errors.New("stream: sample without hash or content")
		}
		hashed := *sample
		hashed.SHA256, hashed.MD5 = binfmt.Hashes(sample.Content)
		sample = &hashed
		sha = sample.SHA256
	}
	it := &item{sample: sample, key: lowerHash(sha), seq: seq}
	select {
	case e.in <- it:
		e.stats.submitted.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-e.runCtx.Done():
		return e.runCtx.Err()
	}
}

// Finish closes the intake, waits for the dataflow to drain and returns the
// final results. Submits racing with Finish either land before the intake
// closes or return an error.
func (e *Engine) Finish(ctx context.Context) (*Results, error) {
	if !e.started.Load() {
		return nil, ErrNotStarted
	}
	e.finishOnce.Do(func() {
		e.submitMu.Lock()
		e.finishing.Store(true)
		e.submitMu.Unlock()
		close(e.in)
	})
	select {
	case <-e.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if err := e.runCtx.Err(); err != nil {
		return nil, fmt.Errorf("stream: ingestion aborted: %w", err)
	}
	if p := e.cfg.Prober; p != nil {
		// The probe cache is the profit source: finalize only once every
		// wallet the collector enqueued has been probed, so the final figures
		// match the batch pipeline's synchronous collection exactly. Waiting
		// on cache coverage (not queue drain) keeps Finish terminating even
		// when the TTL is shorter than a full crawl and the sweep keeps the
		// queue from ever emptying.
		e.mu.Lock()
		wallets := sortedKeys(e.col.seenWallets)
		e.mu.Unlock()
		if err := p.WaitCached(ctx, wallets); err != nil {
			return nil, fmt.Errorf("stream: waiting for probe convergence: %w", err)
		}
	}
	e.mu.Lock()
	res := e.col.finalize()
	e.mu.Unlock()
	if p := e.cfg.Prober; p != nil {
		// The results are sealed; automatic re-probes would be discarded, so
		// stop the TTL sweep from hammering pools for nothing.
		p.DisableRefresh()
	}
	return res, nil
}

// CampaignView is a live, JSON-friendly summary of one campaign.
type CampaignView struct {
	ID          int      `json:"id"`
	Samples     int      `json:"samples"`
	Ancillaries int      `json:"ancillaries"`
	Wallets     []string `json:"wallets,omitempty"`
	Pools       []string `json:"pools,omitempty"`
	XMR         float64  `json:"xmr"`
	USD         float64  `json:"usd"`
	Active      bool     `json:"active"`
}

// CampaignDetail is the full live view of one campaign: the summary fields
// plus membership hashes, enrichment and the profit breakdown.
type CampaignDetail struct {
	CampaignView
	SampleHashes    []string  `json:"sample_hashes,omitempty"`
	AncillaryHashes []string  `json:"ancillary_hashes,omitempty"`
	Currencies      []string  `json:"currencies,omitempty"`
	CNAMEs          []string  `json:"cnames,omitempty"`
	Proxies         []string  `json:"proxies,omitempty"`
	HostingDomains  []string  `json:"hosting_domains,omitempty"`
	PPIBotnets      []string  `json:"ppi_botnets,omitempty"`
	StockTools      []string  `json:"stock_tools,omitempty"`
	KnownOperations []string  `json:"known_operations,omitempty"`
	UsesObfuscation bool      `json:"uses_obfuscation"`
	FirstSeen       time.Time `json:"first_seen"`
	LastSeen        time.Time `json:"last_seen"`
	// Payments / PoolsUsed / FirstPayment / LastPayment break the campaign's
	// profit down by pool activity.
	Payments     int       `json:"payments"`
	PoolsUsed    int       `json:"pools_used"`
	FirstPayment time.Time `json:"first_payment,omitzero"`
	LastPayment  time.Time `json:"last_payment,omitzero"`
}

// CampaignFilter selects live campaigns by attribute; zero values match
// everything.
type CampaignFilter struct {
	// Pool keeps campaigns that mined at the named pool.
	Pool string
	// Wallet keeps campaigns that used the identifier.
	Wallet string
	// MinXMR keeps campaigns that earned at least this much.
	MinXMR float64
}

func (f CampaignFilter) matches(c *model.Campaign, cp profit.CampaignProfit) bool {
	if f.MinXMR > 0 && cp.XMR < f.MinXMR {
		return false
	}
	if f.Pool != "" && !slices.Contains(c.Pools, f.Pool) {
		return false
	}
	if f.Wallet != "" && !slices.Contains(c.Wallets, f.Wallet) {
		return false
	}
	return true
}

// liveCampaigns snapshots the current campaign partition and returns every
// campaign priced. Dirty campaigns are rebuilt and re-priced incrementally;
// clean ones reuse both their cached campaign and their cached profit (a
// rebuilt campaign is a fresh pointer, so the pointer-keyed profit cache
// misses exactly when re-pricing is needed). Caller must hold e.mu.
func (e *Engine) liveCampaigns() ([]*model.Campaign, map[*model.Campaign]profit.CampaignProfit) {
	res := e.col.agg.Snapshot()
	fresh := make(map[*model.Campaign]profit.CampaignProfit, len(res.Campaigns))
	for _, c := range res.Campaigns {
		cp, priced := e.col.profitCache[c]
		if !priced {
			cp = profit.AnalyzeCampaignWith(c, e.col.collect, e.cfg.QueryTime)
		}
		fresh[c] = cp
	}
	// Swap in the rebuilt cache so entries for replaced campaigns are dropped.
	e.col.profitCache = fresh
	return res.Campaigns, fresh
}

func viewOf(c *model.Campaign, cp profit.CampaignProfit) CampaignView {
	return CampaignView{
		ID:          c.ID,
		Samples:     len(c.Samples),
		Ancillaries: len(c.Ancillaries),
		Wallets:     c.Wallets,
		Pools:       c.Pools,
		XMR:         cp.XMR,
		USD:         cp.USD,
		Active:      cp.ActiveAt,
	}
}

// Live snapshots the current campaign partition mid-ingestion and returns the
// top n campaigns by earnings (all of them when n <= 0).
func (e *Engine) Live(n int) []CampaignView {
	views := e.LiveFiltered(CampaignFilter{})
	if n > 0 && n < len(views) {
		views = views[:n]
	}
	return views
}

// LiveFiltered snapshots the current campaign partition and returns the
// matching campaigns, sorted by earnings (highest first).
func (e *Engine) LiveFiltered(f CampaignFilter) []CampaignView {
	e.mu.Lock()
	defer e.mu.Unlock()
	campaigns, profits := e.liveCampaigns()
	views := make([]CampaignView, 0, len(campaigns))
	for _, c := range campaigns {
		if cp := profits[c]; f.matches(c, cp) {
			views = append(views, viewOf(c, cp))
		}
	}
	sort.SliceStable(views, func(i, j int) bool { return views[i].XMR > views[j].XMR })
	return views
}

// CampaignDetail returns the full live view of the campaign with the given
// snapshot ID, or false when no such campaign exists. IDs are positions in
// the deterministic partition ordering, so they are stable for a fixed
// sample set but may shift as new campaigns appear mid-ingestion. Unlike
// the listing, only the requested campaign is (re-)priced, so a detail
// request does not stall ingestion for a full-partition profit pass; the
// cache entry it adds is reconciled by the next listing's cache swap.
func (e *Engine) CampaignDetail(id int) (CampaignDetail, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	res := e.col.agg.Snapshot()
	for _, c := range res.Campaigns {
		if c.ID != id {
			continue
		}
		cp, priced := e.col.profitCache[c]
		if !priced {
			cp = profit.AnalyzeCampaignWith(c, e.col.collect, e.cfg.QueryTime)
			e.col.profitCache[c] = cp
		}
		d := CampaignDetail{
			CampaignView:    viewOf(c, cp),
			SampleHashes:    c.Samples,
			AncillaryHashes: c.Ancillaries,
			CNAMEs:          c.CNAMEs,
			Proxies:         c.Proxies,
			HostingDomains:  c.HostingDomains,
			PPIBotnets:      c.PPIBotnets,
			StockTools:      c.StockTools,
			KnownOperations: c.KnownOperations,
			UsesObfuscation: c.UsesObfuscation,
			FirstSeen:       c.FirstSeen,
			LastSeen:        c.LastSeen,
			Payments:        len(cp.Payments),
			PoolsUsed:       cp.PoolsUsed,
			FirstPayment:    cp.FirstPayment,
			LastPayment:     cp.LastPayment,
		}
		for _, cur := range c.Currencies {
			d.Currencies = append(d.Currencies, string(cur))
		}
		return d, true
	}
	return CampaignDetail{}, false
}

// HasSample reports whether the collector has already recorded an outcome
// for the sample hash (case-insensitive SHA-256). Samples still in flight
// in the stage pipeline are not visible yet; callers using this to avoid
// re-submission must tolerate the false negative (the collector drops
// duplicates by hash, so re-submitting is always safe).
func (e *Engine) HasSample(sha string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.col.outcomes[lowerHash(sha)]
	return ok
}

// Stats returns a live snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	s := e.stats.snapshot()
	s.Shards = len(e.shards)
	s.Backpressure = len(e.in) + len(e.outcomes)
	for _, sh := range e.shards {
		for _, ch := range sh.chans {
			s.Backpressure += len(ch)
		}
	}
	return s
}
