package stream

import (
	"errors"
	"sort"

	"cryptomining/internal/model"
	"cryptomining/internal/profit"
)

// This file is the engine's seam for shadow scenario replays
// (internal/scenario): a forked engine — built from ExportState/RestoreState
// with its own forked pool directory — needs to re-price wallets after an
// intervention rewrites the forked ledgers. The live engine never calls
// these; the scenario runner calls them on its private shadow only.

// ErrScenarioProbed rejects scenario re-pricing on an engine wired to a live
// prober: re-pricing must read the forked pool ledgers synchronously, and a
// prober would race its own asynchronous updates against the replay.
var ErrScenarioProbed = errors.New("stream: scenario repricing requires a proberless engine")

// SeenWallets returns the distinct wallet identifiers observed across kept
// records, sorted. Scenario documents that target "all known wallets" expand
// against this set.
func (e *Engine) SeenWallets() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return sortedTrueKeys(e.col.seenWallets)
}

// PrimeScenarioBaselines back-fills the per-wallet priced baselines for
// wallets that were priced on the synchronous keep path (which folds totals
// into the counters without recording a per-wallet baseline). After priming,
// a re-price of an unchanged wallet is an exact no-op delta, so the shadow's
// counters and series stay byte-identical to the live engine until an
// intervention actually changes a ledger. Wallets already baselined (probe
// reconciliation, restored checkpoints) are left untouched; counters and
// timeseries are not modified.
func (e *Engine) PrimeScenarioBaselines() error {
	if e.cfg.Prober != nil {
		return ErrScenarioProbed
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, w := range sortedTrueKeys(e.col.seenWallets) {
		if _, done := e.col.pricedProfit[w]; done {
			continue
		}
		if _, donation := e.cfg.OSINT.IsDonationWallet(w); donation {
			continue
		}
		act := e.col.collect(w)
		e.col.pricedProfit[w] = pricedTotals{xmr: act.TotalXMR, usd: act.TotalUSD}
	}
	return nil
}

// RepriceScenarioWallets re-reads the given wallets' activity from the
// engine's pool directory and folds the deltas into the running counters,
// per-campaign timelines and ecosystem series, then republishes the view.
// Wallets the dataset has not seen are skipped. The recording instant is the
// scenario clock (Config.Timeseries.Clock) at call time, so interventions
// land on the replay's own time axis.
func (e *Engine) RepriceScenarioWallets(wallets []string) error {
	if e.cfg.Prober != nil {
		return ErrScenarioProbed
	}
	dedup := make(map[string]bool, len(wallets))
	for _, w := range wallets {
		dedup[w] = true
	}
	ordered := make([]string, 0, len(dedup))
	for w := range dedup {
		ordered = append(ordered, w)
	}
	sort.Strings(ordered)

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ts != nil {
		e.col.now = e.cfg.Timeseries.Clock()
	}
	changed := false
	for _, w := range ordered {
		if !e.col.seenWallets[w] {
			continue
		}
		e.col.wallets.Invalidate(w)
		act := e.col.collect(w)
		e.col.applyProbedActivity(w, act)
		changed = true
	}
	if changed {
		if len(e.col.profitCache) > 0 {
			e.col.profitCache = map[*model.Campaign]profit.CampaignProfit{}
		}
		e.publishViewLocked()
	}
	return nil
}
