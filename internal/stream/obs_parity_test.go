package stream_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/obs"
	"cryptomining/internal/stream"
)

// TestStreamWithMetricsMatchesBatch re-runs the shuffled-ingestion
// equivalence check with the full observability stack enabled: a metrics
// registry and a (discarded) structured logger. Instrumentation must be
// purely observational — results stay bit-identical to the batch pipeline —
// and the exposition's per-stage histogram counts must agree exactly with
// the engine's StageStats.
func TestStreamWithMetricsMatchesBatch(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig())
	batch, err := core.NewFromUniverse(u).Run()
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}

	reg := obs.NewRegistry()
	cfg := core.NewFromUniverse(u).StreamConfig()
	cfg.Shards = 8
	cfg.QueueDepth = 8
	cfg.Metrics = reg
	cfg.Logger = obs.NopLogger()
	eng := stream.New(cfg)
	ctx := context.Background()
	eng.Start(ctx)

	hashes := u.Corpus.Hashes()
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(hashes), func(i, j int) { hashes[i], hashes[j] = hashes[j], hashes[i] })

	feed := make(chan string)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for h := range feed {
				sample, ok := u.Corpus.Get(h)
				if !ok {
					continue
				}
				if err := eng.Submit(ctx, sample); err != nil {
					t.Errorf("submit %s: %v", h, err)
					return
				}
			}
		}()
	}
	for _, h := range hashes {
		feed <- h
	}
	close(feed)
	wg.Wait()

	streamed, err := eng.Finish(ctx)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}

	// Results must be bit-identical to the batch pipeline, metrics or not.
	if streamed.TotalXMR != batch.TotalXMR || streamed.TotalUSD != batch.TotalUSD {
		t.Fatalf("totals differ with metrics enabled: %.8f/%.2f vs %.8f/%.2f",
			streamed.TotalXMR, streamed.TotalUSD, batch.TotalXMR, batch.TotalUSD)
	}
	if got, want := len(streamed.Outcomes), len(batch.Outcomes); got != want {
		t.Fatalf("outcomes: got %d want %d", got, want)
	}
	if got, want := len(streamed.Campaigns), len(batch.Campaigns); got != want {
		t.Fatalf("campaigns: got %d want %d", got, want)
	}
	for i, bc := range batch.Campaigns {
		sc := streamed.Campaigns[i]
		if sc.ID != bc.ID || sc.XMRMined != bc.XMRMined || sc.USDEarned != bc.USDEarned ||
			!reflect.DeepEqual(sc.Wallets, bc.Wallets) {
			t.Fatalf("campaign %d differs with metrics enabled", bc.ID)
		}
	}

	// The exposition's per-stage counts must agree with StageStats exactly.
	var b strings.Builder
	reg.WritePrometheus(&b)
	exposition := b.String()
	counts := parseStageCounts(t, exposition)
	for _, st := range eng.Stats().Stages {
		if got, ok := counts[st.Name]; !ok || got != st.Processed {
			t.Errorf("stage %q: exposition count %d (present %v), StageStats %d",
				st.Name, got, ok, st.Processed)
		}
	}

	// Core counter families must reflect the run.
	for _, want := range []string{
		fmt.Sprintf("stream_samples_submitted_total %d", len(hashes)),
		fmt.Sprintf("stream_samples_analyzed_total %d", len(hashes)),
		"stream_collector_lock_hold_seconds_count",
		"stream_shards 8",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// parseStageCounts extracts stream_stage_duration_seconds_count{stage=...}
// series from a text exposition.
func parseStageCounts(t *testing.T, exposition string) map[string]int64 {
	t.Helper()
	counts := map[string]int64{}
	const prefix = `stream_stage_duration_seconds_count{stage="`
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := line[len(prefix):]
		end := strings.Index(rest, `"`)
		if end < 0 {
			t.Fatalf("malformed series line: %s", line)
		}
		stage := rest[:end]
		fields := strings.Fields(rest[end:])
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parse count in %q: %v", line, err)
		}
		counts[stage] = int64(v)
	}
	if len(counts) == 0 {
		t.Fatal("no stream_stage_duration_seconds_count series in exposition")
	}
	return counts
}
