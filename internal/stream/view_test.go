package stream_test

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/stream"
)

// TestViewCoversQuiescedEngine pins the snapshot ordering guarantee: once
// the counters report every submission handled, the published view reflects
// all of them (counters are bumped strictly after the view swap).
func TestViewCoversQuiescedEngine(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig().Scale(0.2))
	eng := stream.New(core.NewFromUniverse(u).StreamConfig())
	ctx := context.Background()
	eng.Start(ctx)

	if v := eng.CurrentView(); v.Epoch != 0 || len(v.Campaigns) != 0 {
		t.Fatalf("fresh engine view: epoch %d, %d campaigns, want empty epoch 0", v.Epoch, len(v.Campaigns))
	}

	for _, h := range u.Corpus.Hashes() {
		s, _ := u.Corpus.Get(h)
		if err := eng.Submit(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	waitProcessed(t, eng, int64(u.Corpus.Len()))

	v := eng.CurrentView()
	if v.Epoch == 0 {
		t.Fatal("no view published after full ingestion")
	}
	live := eng.Live(0)
	if len(live) != len(v.Campaigns) {
		t.Fatalf("Live(0) %d campaigns, view %d", len(live), len(v.Campaigns))
	}
	for i := range live {
		if !reflect.DeepEqual(live[i], v.Campaigns[i]) {
			t.Fatalf("Live(0)[%d] != view campaign: %+v vs %+v", i, live[i], v.Campaigns[i])
		}
	}
	for i := 1; i < len(v.Campaigns); i++ {
		if v.Campaigns[i].XMR > v.Campaigns[i-1].XMR {
			t.Fatalf("view not sorted by XMR at %d", i)
		}
	}
	for _, cv := range v.Campaigns {
		if _, ok := v.Details[cv.ID]; !ok {
			t.Fatalf("campaign %d listed but has no detail view", cv.ID)
		}
	}

	res, err := eng.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	final := eng.CurrentView()
	if final.Epoch <= v.Epoch {
		t.Fatalf("finalize did not publish: epoch %d after %d", final.Epoch, v.Epoch)
	}
	if len(final.Campaigns) != len(res.Campaigns) {
		t.Fatalf("final view %d campaigns, results %d", len(final.Campaigns), len(res.Campaigns))
	}
}

// TestViewReadsDuringIngest hammers the lock-free read surface while the
// engine ingests, checking the invariants every published view must hold:
// epochs never go backwards, listings stay sorted, and details stay in sync
// with the listing. Run with -race this also proves the swap is sound.
func TestViewReadsDuringIngest(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig().Scale(0.2))
	eng := stream.New(core.NewFromUniverse(u).StreamConfig())
	ctx := context.Background()
	eng.Start(ctx)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := eng.CurrentView()
				if v.Epoch < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", v.Epoch, lastEpoch)
					return
				}
				lastEpoch = v.Epoch
				for i := 1; i < len(v.Campaigns); i++ {
					if v.Campaigns[i].XMR > v.Campaigns[i-1].XMR {
						t.Errorf("epoch %d: listing unsorted at %d", v.Epoch, i)
						return
					}
				}
				for _, cv := range v.Campaigns {
					d, ok := v.Details[cv.ID]
					if !ok || d.ID != cv.ID || d.XMR != cv.XMR {
						t.Errorf("epoch %d: detail/listing mismatch for %d", v.Epoch, cv.ID)
						return
					}
				}
				// Exercise the filtered path too.
				eng.LiveFiltered(stream.CampaignFilter{MinXMR: 0.001})
			}
		}()
	}

	for _, h := range u.Corpus.Hashes() {
		s, _ := u.Corpus.Get(h)
		if err := eng.Submit(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	waitProcessed(t, eng, int64(u.Corpus.Len()))
	close(stop)
	wg.Wait()
	if _, err := eng.Finish(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestReadsDoNotBlockOnCollectorMutex pins the zero-mutex guarantee at the
// engine level: with the collector mutex held, every read-tier method
// returns promptly.
func TestReadsDoNotBlockOnCollectorMutex(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig().Scale(0.2))
	eng := stream.New(core.NewFromUniverse(u).StreamConfig())
	ctx := context.Background()
	eng.Start(ctx)
	for _, h := range u.Corpus.Hashes() {
		s, _ := u.Corpus.Get(h)
		if err := eng.Submit(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	waitProcessed(t, eng, int64(u.Corpus.Len()))

	release := eng.HoldCollectorLock()
	defer release()

	done := make(chan struct{})
	go func() {
		defer close(done)
		eng.Stats()
		eng.Live(0)
		eng.LiveFiltered(stream.CampaignFilter{})
		if v := eng.CurrentView(); len(v.Campaigns) > 0 {
			eng.CampaignDetail(v.Campaigns[0].ID)
			eng.CampaignTimeline(v.Campaigns[0].ID, stream.TimeseriesQuery{})
		}
		eng.Timeseries(stream.TimeseriesQuery{})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("read-tier methods blocked on the held collector mutex")
	}
}
