package stream_test

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/stream"
	"cryptomining/internal/timeseries"
)

// logicalClock hands out a strictly increasing second per reading, making
// the recorded series a pure function of the collector's event order.
type logicalClock struct{ c atomic.Int64 }

func (l *logicalClock) now() time.Time { return time.Unix(l.c.Add(1), 0).UTC() }

// frozenClock pins every reading to one instant, so a whole run lands in a
// single finest-level bucket (no ring eviction, whatever the corpus size).
func frozenClock() time.Time { return time.Unix(1_500_000_000, 0).UTC() }

// TestTimeseriesCrashRecoveryBitIdentical is the timeseries recovery
// criterion: a run interrupted by a state export/restore ("crash") must end
// with series byte-identical to an uninterrupted run's — same buckets, same
// timelines, same yearly breakdown. A deterministic clock and one shard make
// the two runs comparable event for event.
func TestTimeseriesCrashRecoveryBitIdentical(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig().Scale(0.2))
	hashes := u.Corpus.Hashes()
	ctx := context.Background()
	mkCfg := func(clock func() time.Time) stream.Config {
		cfg := core.NewFromUniverse(u).StreamConfig()
		cfg.Shards = 1
		cfg.Timeseries.Clock = clock
		return cfg
	}
	feed := func(eng *stream.Engine, hs []string) {
		for _, h := range hs {
			s, _ := u.Corpus.Get(h)
			if err := eng.Submit(ctx, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	tsState := func(eng *stream.Engine) []byte {
		st := eng.ExportState()
		if st.Timeseries == nil {
			t.Fatal("no timeseries state exported")
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(st.Timeseries); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Uninterrupted reference run.
	refClock := &logicalClock{}
	ref := stream.New(mkCfg(refClock.now))
	ref.Start(ctx)
	feed(ref, hashes)
	waitProcessed(t, ref, int64(len(hashes)))
	want := tsState(ref)

	// Crash run: half the feed, export ("checkpoint"), restore into a fresh
	// engine whose clock continues, feed the rest.
	crashClock := &logicalClock{}
	cut := len(hashes) / 2
	first := stream.New(mkCfg(crashClock.now))
	first.Start(ctx)
	feed(first, hashes[:cut])
	waitProcessed(t, first, int64(cut))

	st := first.ExportState()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	var decoded stream.EngineState
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	second := stream.New(mkCfg(crashClock.now))
	if err := second.RestoreState(&decoded); err != nil {
		t.Fatal(err)
	}
	second.Start(ctx)
	feed(second, hashes[cut:])
	waitProcessed(t, second, int64(len(hashes)))

	if got := tsState(second); !bytes.Equal(got, want) {
		t.Fatal("crash/restore run's timeseries state differs from the uninterrupted run's")
	}

	// The query surface agrees too, at every configured resolution.
	for _, res := range []time.Duration{0, time.Minute, time.Hour} {
		a, err := ref.Timeseries(stream.TimeseriesQuery{Resolution: res})
		if err != nil {
			t.Fatal(err)
		}
		b, err := second.Timeseries(stream.TimeseriesQuery{Resolution: res})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("resolution %v: timeseries snapshots differ", res)
		}
	}
}

// TestTimeseriesAccounting checks the live series against the engine's own
// counters and campaign views: arrivals, keeps, the campaign/XMR gauges and
// the per-campaign timelines (which must follow partition merges, so every
// campaign's timeline accounts for all of its constituent samples).
func TestTimeseriesAccounting(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig().Scale(0.2))
	ctx := context.Background()
	cfg := core.NewFromUniverse(u).StreamConfig()
	cfg.Timeseries.Clock = frozenClock
	eng := stream.New(cfg)
	eng.Start(ctx)
	for _, h := range u.Corpus.Hashes() {
		s, _ := u.Corpus.Get(h)
		if err := eng.Submit(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	stats := eng.Stats()

	snap, err := eng.Timeseries(stream.TimeseriesQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if snap.ResolutionSeconds != 1 {
		t.Errorf("default resolution = %ds, want 1s", snap.ResolutionSeconds)
	}
	sums := map[string]float64{}
	lasts := map[string]float64{}
	for _, s := range snap.Series {
		for _, b := range s.Buckets {
			sums[s.Name] += b.Sum
			lasts[s.Name] = b.Last
		}
	}
	if int64(sums[timeseries.SeriesSamples]) != stats.Analyzed {
		t.Errorf("samples series sums to %v, analyzed %d", sums[timeseries.SeriesSamples], stats.Analyzed)
	}
	if int64(sums[timeseries.SeriesKept]) != stats.Kept {
		t.Errorf("kept series sums to %v, kept %d", sums[timeseries.SeriesKept], stats.Kept)
	}
	if int(lasts[timeseries.SeriesCampaigns]) != len(res.Campaigns) {
		t.Errorf("campaigns gauge = %v, want %d", lasts[timeseries.SeriesCampaigns], len(res.Campaigns))
	}
	if lasts[timeseries.SeriesXMR] != stats.TotalXMR {
		t.Errorf("xmr gauge = %v, want %v", lasts[timeseries.SeriesXMR], stats.TotalXMR)
	}

	// Per-pool shares: at least one kept miner resolves to a directory pool,
	// and the pool shares never exceed the kept total.
	var poolTotal float64
	for name, sum := range sums {
		if strings.HasPrefix(name, timeseries.PoolSeriesPrefix) {
			poolTotal += sum
		}
	}
	if poolTotal == 0 {
		t.Error("no pool:* share series recorded")
	}
	if poolTotal > sums[timeseries.SeriesKept] {
		t.Errorf("pool shares sum to %v > kept %v", poolTotal, sums[timeseries.SeriesKept])
	}

	// Yearly breakdown: every campaign contributes a start year.
	var newTotal int
	for _, y := range snap.Years {
		newTotal += y.NewCampaigns
		if y.ActiveCampaigns < y.NewCampaigns {
			t.Errorf("year %d: active %d < new %d", y.Year, y.ActiveCampaigns, y.NewCampaigns)
		}
	}
	wantNew := 0
	for _, c := range res.Campaigns {
		if !c.FirstSeen.IsZero() {
			wantNew++
		}
	}
	if newTotal != wantNew {
		t.Errorf("yearly new-campaign total = %d, want %d", newTotal, wantNew)
	}

	// Per-campaign timelines account for every kept record attributed to the
	// campaign, even through partition merges. (Campaign membership lists
	// also carry hashes merely referenced by kept records — those never
	// arrived, so they record no timeline point.)
	wantArrivals := map[int]int64{}
	for _, rec := range res.Records {
		if c, ok := res.Aggregation.BySample[rec.SHA256]; ok {
			wantArrivals[c.ID]++
		}
	}
	for _, c := range res.Campaigns {
		tl, ok, err := eng.CampaignTimeline(c.ID, stream.TimeseriesQuery{})
		if err != nil || !ok {
			t.Fatalf("campaign %d timeline: ok=%v err=%v", c.ID, ok, err)
		}
		var arrivals int64
		for _, s := range tl.Series {
			if s.Name != timeseries.TimelineSamples {
				continue
			}
			for _, b := range s.Buckets {
				arrivals += b.Count
			}
		}
		if want := wantArrivals[c.ID]; arrivals != want {
			t.Errorf("campaign %d timeline records %d arrivals, want %d kept members", c.ID, arrivals, want)
		}
	}

	// Unknown campaign: not found, no error.
	if _, ok, err := eng.CampaignTimeline(999999, stream.TimeseriesQuery{}); ok || err != nil {
		t.Errorf("missing campaign: ok=%v err=%v", ok, err)
	}
}

func TestTimeseriesQueryValidation(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig().Scale(0.05))
	cfg := core.NewFromUniverse(u).StreamConfig()
	eng := stream.New(cfg)
	eng.Start(context.Background())

	if _, err := eng.Timeseries(stream.TimeseriesQuery{Resolution: 7 * time.Second}); !errors.Is(err, stream.ErrUnknownResolution) {
		t.Errorf("unknown resolution: err = %v", err)
	}
	if _, err := eng.Timeseries(stream.TimeseriesQuery{Metric: "no-such-metric"}); !errors.Is(err, stream.ErrUnknownMetric) {
		t.Errorf("unknown metric: err = %v", err)
	}
	if _, _, err := eng.CampaignTimeline(1, stream.TimeseriesQuery{Metric: "bogus"}); !errors.Is(err, stream.ErrUnknownMetric) {
		t.Errorf("unknown timeline metric: err = %v", err)
	}

	// Known metrics answer an empty series before any data lands — series
	// materialize lazily, and a valid query must not flip from 400 to 200
	// mid-run.
	for _, metric := range []string{"samples", "kept", "campaigns", "xmr", "pool:minexmr"} {
		snap, err := eng.Timeseries(stream.TimeseriesQuery{Metric: metric})
		if err != nil {
			t.Errorf("known metric %q before data: err = %v", metric, err)
			continue
		}
		if len(snap.Series) != 1 || snap.Series[0].Name != metric {
			t.Errorf("known metric %q before data: series = %+v", metric, snap.Series)
		}
	}
	// A bare pool prefix is not a metric.
	if _, err := eng.Timeseries(stream.TimeseriesQuery{Metric: "pool:"}); !errors.Is(err, stream.ErrUnknownMetric) {
		t.Errorf("bare pool prefix: err = %v", err)
	}
}

// TestTimeseriesWindowUsesEngineClock pins that relative windows resolve
// against the engine's (injectable) recording clock, not the caller's wall
// clock — with a logical clock near the epoch, a wall-clock-based window
// would exclude everything — and that the window start aligns down to the
// bucket boundary so the open bucket holding the newest data is included.
func TestTimeseriesWindowUsesEngineClock(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig().Scale(0.05))
	cfg := core.NewFromUniverse(u).StreamConfig()
	clock := &logicalClock{}
	cfg.Timeseries.Clock = clock.now
	eng := stream.New(cfg)
	ctx := context.Background()
	eng.Start(ctx)
	for _, h := range u.Corpus.Hashes() {
		s, _ := u.Corpus.Get(h)
		if err := eng.Submit(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	sum := func(q stream.TimeseriesQuery) float64 {
		t.Helper()
		snap, err := eng.Timeseries(q)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, b := range snap.Series[0].Buckets {
			total += b.Sum
		}
		return total
	}
	if total := sum(stream.TimeseriesQuery{Metric: "samples", Window: time.Hour}); total == 0 {
		t.Error("one-hour window on the engine clock excluded the recorded buckets")
	}
	// A window shorter than the elapsed part of the open minute bucket
	// must still include that bucket: From aligns down to its boundary.
	if total := sum(stream.TimeseriesQuery{Metric: "samples", Resolution: time.Minute, Window: time.Second}); total == 0 {
		t.Error("sub-bucket window filtered out the open bucket holding the newest data")
	}
}

func TestTimeseriesDisabled(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig().Scale(0.05))
	cfg := core.NewFromUniverse(u).StreamConfig()
	cfg.Timeseries.Disabled = true
	eng := stream.New(cfg)
	eng.Start(context.Background())

	if _, err := eng.Timeseries(stream.TimeseriesQuery{}); !errors.Is(err, stream.ErrTimeseriesDisabled) {
		t.Errorf("Timeseries: err = %v", err)
	}
	if _, _, err := eng.CampaignTimeline(1, stream.TimeseriesQuery{}); !errors.Is(err, stream.ErrTimeseriesDisabled) {
		t.Errorf("CampaignTimeline: err = %v", err)
	}
	if st := eng.ExportState(); st.Timeseries != nil {
		t.Error("disabled engine must not export timeseries state")
	}
}
