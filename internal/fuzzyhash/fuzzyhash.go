// Package fuzzyhash implements context-triggered piecewise hashing (CTPH),
// a similarity-preserving hash in the style popularized by ssdeep.
//
// The measurement pipeline uses fuzzy hashing to attribute samples dropped by
// crypto-mining malware to stock mining tools (xmrig, claymore, ...), even
// when miscreants fork the tool and make minor modifications such as removing
// donation code (§III-E, Table IX). Two binaries that differ in a few regions
// produce signatures whose distance is small; the paper uses a conservative
// distance threshold of 0.1.
package fuzzyhash

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Alphabet used to encode piece hashes, 64 symbols as in base64.
const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

const (
	// minBlockSize is the smallest context-trigger block size.
	minBlockSize = 3
	// signatureLength is the target number of pieces per signature.
	signatureLength = 64
	// windowSize is the rolling-hash window.
	windowSize = 7
)

// DefaultThreshold is the conservative distance threshold used by the paper
// for stock-tool attribution: distances at or below it count as a match.
const DefaultThreshold = 0.1

// Signature is a context-triggered piecewise hash: a block size and two piece
// strings computed at block size and twice the block size, rendered as
// "blocksize:pieces:pieces2".
type Signature struct {
	BlockSize int
	Pieces    string
	Pieces2   string
}

// String renders the signature in the canonical "bs:p1:p2" form.
func (s Signature) String() string {
	return fmt.Sprintf("%d:%s:%s", s.BlockSize, s.Pieces, s.Pieces2)
}

// Parse parses a signature in "bs:p1:p2" form.
func Parse(s string) (Signature, error) {
	parts := strings.SplitN(s, ":", 3)
	if len(parts) != 3 {
		return Signature{}, errors.New("fuzzyhash: malformed signature, want bs:pieces:pieces2")
	}
	bs, err := strconv.Atoi(parts[0])
	if err != nil || bs < minBlockSize {
		return Signature{}, fmt.Errorf("fuzzyhash: invalid block size %q", parts[0])
	}
	return Signature{BlockSize: bs, Pieces: parts[1], Pieces2: parts[2]}, nil
}

// rollingHash is the Adler-like rolling hash that triggers piece boundaries.
type rollingHash struct {
	window [windowSize]byte
	h1     uint32 // sum of window bytes
	h2     uint32 // weighted sum
	h3     uint32 // shift/xor mix
	n      uint32 // total bytes seen
}

func (r *rollingHash) update(c byte) uint32 {
	idx := r.n % windowSize
	old := r.window[idx]
	r.window[idx] = c
	r.n++
	r.h2 -= r.h1
	r.h2 += windowSize * uint32(c)
	r.h1 += uint32(c)
	r.h1 -= uint32(old)
	r.h3 <<= 5
	r.h3 ^= uint32(c)
	return r.h1 + r.h2 + r.h3
}

// pieceHash is a simple FNV-1a accumulated per piece.
type pieceHash uint32

const (
	fnvOffset pieceHash = 2166136261
	fnvPrime  pieceHash = 16777619
)

func (p pieceHash) update(c byte) pieceHash {
	return (p ^ pieceHash(c)) * fnvPrime
}

func (p pieceHash) symbol() byte {
	return alphabet[uint32(p)%64]
}

// chooseBlockSize picks the initial context-trigger block size for n bytes so
// that the expected signature length is close to signatureLength.
func chooseBlockSize(n int) int {
	bs := minBlockSize
	for bs*signatureLength < n {
		bs *= 2
	}
	return bs
}

// Hash computes the CTPH signature of data. Hashing empty data is valid and
// yields an empty-piece signature.
func Hash(data []byte) Signature {
	bs := chooseBlockSize(len(data))
	for {
		sig := hashWithBlockSize(data, bs)
		// If the signature came out too short (data had too few trigger
		// points), retry with a smaller block size, as ssdeep does.
		if len(sig.Pieces) < signatureLength/4 && bs > minBlockSize {
			bs /= 2
			continue
		}
		return sig
	}
}

func hashWithBlockSize(data []byte, bs int) Signature {
	var rh rollingHash
	p1 := fnvOffset
	p2 := fnvOffset
	var pieces, pieces2 []byte
	for _, c := range data {
		h := rh.update(c)
		p1 = p1.update(c)
		p2 = p2.update(c)
		if h%uint32(bs) == uint32(bs-1) {
			if len(pieces) < signatureLength-1 {
				pieces = append(pieces, p1.symbol())
				p1 = fnvOffset
			}
		}
		if h%uint32(bs*2) == uint32(bs*2-1) {
			if len(pieces2) < signatureLength/2-1 {
				pieces2 = append(pieces2, p2.symbol())
				p2 = fnvOffset
			}
		}
	}
	if len(data) > 0 {
		pieces = append(pieces, p1.symbol())
		pieces2 = append(pieces2, p2.symbol())
	}
	return Signature{BlockSize: bs, Pieces: string(pieces), Pieces2: string(pieces2)}
}

// Compare returns a similarity score in [0, 100] between two signatures,
// where 100 means (nearly) identical content and 0 means no measurable
// similarity. Signatures whose block sizes differ by more than a factor of two
// are incomparable and score 0.
func Compare(a, b Signature) int {
	if a.BlockSize == b.BlockSize {
		s1 := scoreStrings(a.Pieces, b.Pieces, a.BlockSize)
		s2 := scoreStrings(a.Pieces2, b.Pieces2, a.BlockSize*2)
		return maxInt(s1, s2)
	}
	if a.BlockSize == b.BlockSize*2 {
		return scoreStrings(a.Pieces, b.Pieces2, a.BlockSize)
	}
	if b.BlockSize == a.BlockSize*2 {
		return scoreStrings(a.Pieces2, b.Pieces, b.BlockSize)
	}
	return 0
}

// Distance converts the Compare similarity into a distance in [0, 1]; 0 means
// identical, 1 means unrelated. This is the quantity thresholded at 0.1 for
// stock mining tool attribution.
func Distance(a, b Signature) float64 {
	return 1 - float64(Compare(a, b))/100
}

// Match reports whether two signatures are within the given distance
// threshold. A non-positive threshold uses DefaultThreshold.
func Match(a, b Signature, threshold float64) bool {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	return Distance(a, b) <= threshold
}

// HashBytesMatch is a convenience wrapper that hashes both byte slices and
// reports whether they match at the given threshold.
func HashBytesMatch(a, b []byte, threshold float64) bool {
	return Match(Hash(a), Hash(b), threshold)
}

// scoreStrings scores two piece strings. It requires a common substring of at
// least 7 symbols (to suppress coincidental matches, as ssdeep does), then
// maps the edit distance to a 0-100 scale.
func scoreStrings(s1, s2 string, _ int) int {
	if s1 == "" || s2 == "" {
		if s1 == s2 {
			return 100
		}
		return 0
	}
	if s1 == s2 {
		return 100
	}
	if !hasCommonSubstring(s1, s2, 7) {
		return 0
	}
	d := editDistance(s1, s2)
	// Normalize: rescale edit distance to the combined length.
	score := 100 * (1 - float64(d)/float64(len(s1)+len(s2)))
	if score < 0 {
		score = 0
	}
	return int(score)
}

// hasCommonSubstring reports whether s1 and s2 share a common substring of at
// least n symbols.
func hasCommonSubstring(s1, s2 string, n int) bool {
	if len(s1) < n || len(s2) < n {
		return false
	}
	seen := make(map[string]bool, len(s1))
	for i := 0; i+n <= len(s1); i++ {
		seen[s1[i:i+n]] = true
	}
	for i := 0; i+n <= len(s2); i++ {
		if seen[s2[i:i+n]] {
			return true
		}
	}
	return false
}

// editDistance computes the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = minInt(minInt(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
