package fuzzyhash

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthBinary fabricates a deterministic pseudo-binary of the given size.
func synthBinary(seed int64, size int) []byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, size)
	// Mix of structured (repetitive) regions and random regions, like a real
	// executable's code/data/strings layout.
	for i := 0; i < size; {
		if rng.Intn(2) == 0 {
			chunk := []byte("push ebp; mov ebp, esp; call sub_401000; ret; ")
			n := copy(data[i:], chunk)
			i += n
		} else {
			n := rng.Intn(64) + 16
			if i+n > size {
				n = size - i
			}
			rng.Read(data[i : i+n])
			i += n
		}
	}
	return data
}

func TestHashDeterministic(t *testing.T) {
	data := synthBinary(1, 100000)
	h1 := Hash(data)
	h2 := Hash(append([]byte(nil), data...))
	if h1.String() != h2.String() {
		t.Errorf("Hash not deterministic: %s vs %s", h1, h2)
	}
}

func TestIdenticalContentMaxSimilarity(t *testing.T) {
	data := synthBinary(2, 50000)
	h := Hash(data)
	if got := Compare(h, h); got != 100 {
		t.Errorf("Compare(identical) = %d, want 100", got)
	}
	if d := Distance(h, h); d != 0 {
		t.Errorf("Distance(identical) = %v, want 0", d)
	}
	if !Match(h, h, DefaultThreshold) {
		t.Error("identical signatures should match at default threshold")
	}
}

func TestMinorModificationStillMatches(t *testing.T) {
	// Emulate a forked xmrig with the donation wallet string patched out:
	// same content except a small region changed.
	original := synthBinary(3, 200000)
	modified := append([]byte(nil), original...)
	copy(modified[100000:100040], bytes.Repeat([]byte{0x90}, 40))

	ho := Hash(original)
	hm := Hash(modified)
	d := Distance(ho, hm)
	if d > DefaultThreshold {
		t.Errorf("Distance(original, minor patch) = %v, want <= %v", d, DefaultThreshold)
	}
	if !HashBytesMatch(original, modified, DefaultThreshold) {
		t.Error("HashBytesMatch should report a match for a minor patch")
	}
}

func TestUnrelatedContentDoesNotMatch(t *testing.T) {
	a := synthBinary(10, 150000)
	b := make([]byte, 150000)
	rand.New(rand.NewSource(11)).Read(b)
	d := Distance(Hash(a), Hash(b))
	if d <= DefaultThreshold {
		t.Errorf("Distance(unrelated) = %v, want > %v", d, DefaultThreshold)
	}
}

func TestDistanceBoundsProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		d := Distance(Hash(a), Hash(b))
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCompareSymmetricProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		ha, hb := Hash(a), Hash(b)
		return Compare(ha, hb) == Compare(hb, ha)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSelfSimilarityProperty(t *testing.T) {
	f := func(a []byte) bool {
		h := Hash(a)
		return Compare(h, h) == 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEmptyData(t *testing.T) {
	h := Hash(nil)
	if h.Pieces != "" || h.Pieces2 != "" {
		t.Errorf("Hash(nil) pieces = %q/%q, want empty", h.Pieces, h.Pieces2)
	}
	if got := Compare(h, h); got != 100 {
		t.Errorf("Compare(empty, empty) = %d, want 100", got)
	}
	nonEmpty := Hash(synthBinary(20, 10000))
	if got := Compare(h, nonEmpty); got != 0 {
		t.Errorf("Compare(empty, non-empty) = %d, want 0", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	h := Hash(synthBinary(5, 30000))
	parsed, err := Parse(h.String())
	if err != nil {
		t.Fatalf("Parse(%q) error: %v", h.String(), err)
	}
	if parsed != h {
		t.Errorf("Parse round trip = %+v, want %+v", parsed, h)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{"", "3", "3:abc", "x:abc:def", "1:abc:def", "-4:a:b"}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) expected error", c)
		}
	}
}

func TestDifferentBlockSizesIncomparable(t *testing.T) {
	small := Hash(synthBinary(6, 500))
	large := Hash(synthBinary(7, 5_000_000))
	if small.BlockSize*4 > large.BlockSize {
		t.Skipf("block sizes too close for this fixture: %d vs %d", small.BlockSize, large.BlockSize)
	}
	if got := Compare(small, large); got != 0 {
		t.Errorf("Compare(incomparable block sizes) = %d, want 0", got)
	}
}

func TestChooseBlockSize(t *testing.T) {
	if bs := chooseBlockSize(0); bs != minBlockSize {
		t.Errorf("chooseBlockSize(0) = %d, want %d", bs, minBlockSize)
	}
	if bs := chooseBlockSize(100); bs != minBlockSize {
		t.Errorf("chooseBlockSize(100) = %d, want %d", bs, minBlockSize)
	}
	big := chooseBlockSize(10_000_000)
	if big <= minBlockSize || big*signatureLength < 10_000_000 {
		t.Errorf("chooseBlockSize(10M) = %d, too small", big)
	}
}

func TestEditDistance(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
	}
	for _, tt := range tests {
		if got := editDistance(tt.a, tt.b); got != tt.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestHasCommonSubstring(t *testing.T) {
	if hasCommonSubstring("abcdefgh", "xyz", 7) {
		t.Error("short second string should not have 7-char common substring")
	}
	if !hasCommonSubstring("xxABCDEFGxx", "yyABCDEFGyy", 7) {
		t.Error("expected common substring of length 7")
	}
	if hasCommonSubstring("abcdefghij", "klmnopqrst", 7) {
		t.Error("disjoint strings should not share substring")
	}
}

func BenchmarkHash1MB(b *testing.B) {
	data := synthBinary(9, 1<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hash(data)
	}
}

func BenchmarkCompare(b *testing.B) {
	h1 := Hash(synthBinary(12, 1<<20))
	h2 := Hash(synthBinary(13, 1<<20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compare(h1, h2)
	}
}
