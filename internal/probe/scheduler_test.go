package probe_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cryptomining/internal/model"
	"cryptomining/internal/pool"
	"cryptomining/internal/probe"
)

// fakeSource is a scriptable probe.Source that records every fetch with the
// scheduler clock's timestamp.
type fakeSource struct {
	pools []string
	clock probe.Clock
	// respond decides each fetch's outcome; nil answers ErrUnknownUser.
	respond func(pool, wallet string, attempt int) (model.WalletStats, error)

	mu       sync.Mutex
	fetches  map[string][]time.Time // pool -> fetch times
	order    []string               // wallets in first-fetch order
	attempts map[string]int         // pool|wallet -> fetch count
}

func newFakeSource(clock probe.Clock, pools ...string) *fakeSource {
	return &fakeSource{
		pools:    pools,
		clock:    clock,
		fetches:  map[string][]time.Time{},
		attempts: map[string]int{},
	}
}

func (s *fakeSource) Pools() []string { return s.pools }

func (s *fakeSource) Fetch(_ context.Context, poolName, wallet string) (model.WalletStats, error) {
	s.mu.Lock()
	s.fetches[poolName] = append(s.fetches[poolName], s.clock.Now())
	key := poolName + "|" + wallet
	if s.attempts[key] == 0 {
		s.order = append(s.order, wallet)
	}
	s.attempts[key]++
	attempt := s.attempts[key]
	s.mu.Unlock()
	if s.respond == nil {
		return model.WalletStats{}, pool.ErrUnknownUser
	}
	return s.respond(poolName, wallet, attempt)
}

func (s *fakeSource) fetchTimes(pool string) []time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Time(nil), s.fetches[pool]...)
}

func (s *fakeSource) firstFetchOrder() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// waitConverged waits (in real time) for the crawl to drain, advancing the
// fake clock in small steps so rate-limit and backoff timers keep firing.
func waitConverged(t *testing.T, s *probe.Scheduler, clk *probe.FakeClock, step time.Duration) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !s.Converged() {
		if time.Now().After(deadline) {
			st := s.Stats()
			t.Fatalf("crawl never converged (queue=%d in_flight=%d)", st.QueueDepth, st.InFlight)
		}
		if clk != nil {
			clk.Advance(step)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRateLimitNeverExceeded is the politeness guarantee: with a 1 req/sec
// token bucket and four concurrent workers hammering one pool, consecutive
// requests observed by the pool are never closer than the bucket interval.
// The fake clock makes the spacing exact.
func TestRateLimitNeverExceeded(t *testing.T) {
	clk := probe.NewFakeClock(time.Date(2019, 4, 30, 0, 0, 0, 0, time.UTC))
	src := newFakeSource(clk, "pool-a")
	s := probe.New(probe.Config{
		Source:      src,
		Clock:       clk,
		RatePerPool: 1,
		Burst:       1,
		Workers:     4,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Close()

	const wallets = 6
	for i := 0; i < wallets; i++ {
		s.Enqueue(fmt.Sprintf("wallet-%02d", i))
	}
	waitConverged(t, s, clk, 250*time.Millisecond)

	times := src.fetchTimes("pool-a")
	if len(times) != wallets {
		t.Fatalf("got %d fetches, want %d", len(times), wallets)
	}
	for i := 1; i < len(times); i++ {
		if d := times[i].Sub(times[i-1]); d < time.Second {
			t.Fatalf("requests %d and %d only %v apart; rate limit is 1/sec", i-1, i, d)
		}
	}
	st := s.Stats()
	if len(st.Pools) != 1 || st.Pools[0].Throttled <= 0 {
		t.Fatalf("expected throttle time recorded, got %+v", st.Pools)
	}
	if !st.Converged || st.CacheSize != wallets {
		t.Fatalf("unexpected post-crawl stats: %+v", st)
	}
}

// TestPriorityNeverProbedFirst checks the queue discipline: wallets without
// a cache entry outrank refreshes (FIFO among themselves), refreshes run
// stalest-first.
func TestPriorityNeverProbedFirst(t *testing.T) {
	clk := probe.NewFakeClock(time.Date(2019, 4, 30, 0, 0, 0, 0, time.UTC))
	src := newFakeSource(clk, "pool-a")
	s := probe.New(probe.Config{Source: src, Clock: clk, Workers: 1})

	// Seed two cached wallets with different ages, then queue work before
	// any worker runs.
	s.RestoreCache(&probe.CacheState{Entries: []probe.EntryState{
		{Wallet: "old", FetchedAtUnixNano: clk.Now().Add(-2 * time.Hour).UnixNano()},
		{Wallet: "recent", FetchedAtUnixNano: clk.Now().Add(-time.Hour).UnixNano()},
	}})
	if !s.Refresh("recent") || !s.Refresh("old") {
		t.Fatal("refresh of cached wallets not scheduled")
	}
	s.Enqueue("fresh-a")
	s.Enqueue("fresh-b")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Close()
	waitConverged(t, s, clk, 0)

	want := []string{"fresh-a", "fresh-b", "old", "recent"}
	got := src.firstFetchOrder()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("probe order %v, want %v", got, want)
	}
}

// TestTransientRetryWithBackoff: a pool that fails twice with a transport
// error and then answers must yield a clean cache entry after exactly three
// attempts, with the retries counted.
func TestTransientRetryWithBackoff(t *testing.T) {
	src := newFakeSource(probe.RealClock(), "pool-a")
	src.respond = func(_, _ string, attempt int) (model.WalletStats, error) {
		if attempt < 3 {
			return model.WalletStats{}, errors.New("connection refused")
		}
		return model.WalletStats{Pool: "pool-a", User: "w", TotalPaid: 1.5}, nil
	}
	s := probe.New(probe.Config{
		Source:      src,
		Workers:     1,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Close()
	s.Enqueue("w")
	waitConverged(t, s, nil, 0)

	ent, ok := s.Peek("w")
	if !ok || ent.Err != "" {
		t.Fatalf("expected clean entry after retries, got %+v (ok=%v)", ent, ok)
	}
	if ent.Activity.TotalXMR != 1.5 {
		t.Fatalf("activity not collected after retry: %+v", ent.Activity)
	}
	st := s.Stats()
	pc := st.Pools[0]
	if pc.Requests != 3 || pc.Retries != 2 || pc.OK != 1 || pc.Failed != 0 {
		t.Fatalf("unexpected pool counters: %+v", pc)
	}
}

// TestTerminalClassification: unknown wallets and opaque pools are terminal
// (single attempt, no retries, no entry error); a pool that stays down
// exhausts retries and is recorded on the entry.
func TestTerminalClassification(t *testing.T) {
	src := newFakeSource(probe.RealClock(), "opaque", "down", "unknown")
	src.respond = func(poolName, _ string, _ int) (model.WalletStats, error) {
		switch poolName {
		case "opaque":
			return model.WalletStats{}, pool.ErrOpaquePool
		case "down":
			return model.WalletStats{}, errors.New("dial tcp: connection refused")
		default:
			return model.WalletStats{}, pool.ErrUnknownUser
		}
	}
	s := probe.New(probe.Config{
		Source:      src,
		Workers:     1,
		MaxAttempts: 2,
		BackoffBase: time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Close()
	s.Enqueue("w")
	waitConverged(t, s, nil, 0)

	ent, _ := s.Peek("w")
	if !strings.Contains(ent.Err, "down") || strings.Contains(ent.Err, "unknown") || strings.Contains(ent.Err, "opaque") {
		t.Fatalf("entry error should name only the unreachable pool: %q", ent.Err)
	}
	st := s.Stats()
	if st.CacheErrors != 1 {
		t.Fatalf("CacheErrors = %d, want 1", st.CacheErrors)
	}
	for _, pc := range st.Pools {
		switch pc.Pool {
		case "opaque":
			if pc.Requests != 1 || pc.OpaquePool != 1 || pc.Retries != 0 {
				t.Fatalf("opaque pool counters: %+v", pc)
			}
		case "unknown":
			if pc.Requests != 1 || pc.UnknownWallet != 1 || pc.Retries != 0 {
				t.Fatalf("unknown pool counters: %+v", pc)
			}
		case "down":
			if pc.Requests != 2 || pc.Retries != 1 || pc.Failed != 1 {
				t.Fatalf("down pool counters: %+v", pc)
			}
		}
	}
}

// TestTTLRefresh: with a TTL, the refresh loop re-probes entries once they
// expire — and only then.
func TestTTLRefresh(t *testing.T) {
	clk := probe.NewFakeClock(time.Date(2019, 4, 30, 0, 0, 0, 0, time.UTC))
	src := newFakeSource(clk, "pool-a")
	s := probe.New(probe.Config{Source: src, Clock: clk, Workers: 1, TTL: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Close()

	s.Enqueue("w")
	waitConverged(t, s, nil, 0)
	if got := len(src.fetchTimes("pool-a")); got != 1 {
		t.Fatalf("initial crawl made %d fetches, want 1", got)
	}

	// Inside the TTL nothing is re-probed, however many sweeps run.
	for i := 0; i < 3; i++ {
		clk.Advance(15 * time.Second) // sweep period = TTL/4
		time.Sleep(5 * time.Millisecond)
	}
	waitConverged(t, s, nil, 0)
	if got := len(src.fetchTimes("pool-a")); got != 1 {
		t.Fatalf("re-probed a fresh entry: %d fetches", got)
	}

	// Crossing the TTL re-enqueues the wallet on the next sweep.
	deadline := time.Now().Add(30 * time.Second)
	for len(src.fetchTimes("pool-a")) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("TTL expiry never triggered a re-probe")
		}
		clk.Advance(15 * time.Second)
		time.Sleep(time.Millisecond)
	}
}

// TestEnsureFreshAndCacheRoundTrip: an exported cache restored into a new
// scheduler re-probes only what EnsureFresh deems stale — never the whole
// set.
func TestEnsureFreshAndCacheRoundTrip(t *testing.T) {
	start := time.Date(2019, 4, 30, 0, 0, 0, 0, time.UTC)
	clk := probe.NewFakeClock(start)
	src := newFakeSource(clk, "pool-a")
	s := probe.New(probe.Config{Source: src, Clock: clk, Workers: 1, TTL: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	s.Enqueue("w1")
	s.Enqueue("w2")
	waitConverged(t, s, nil, 0)
	st := s.ExportCache()
	s.Close()
	if len(st.Entries) != 2 {
		t.Fatalf("exported %d entries, want 2", len(st.Entries))
	}

	// Restart 30 minutes later: both entries are inside the TTL, so only the
	// never-probed wallet is scheduled.
	clk2 := probe.NewFakeClock(start.Add(30 * time.Minute))
	src2 := newFakeSource(clk2, "pool-a")
	s2 := probe.New(probe.Config{Source: src2, Clock: clk2, Workers: 1, TTL: time.Hour})
	s2.RestoreCache(st)
	if n := s2.EnsureFresh([]string{"w1", "w2", "w3"}); n != 1 {
		t.Fatalf("EnsureFresh scheduled %d probes, want 1 (only the unknown wallet)", n)
	}
	s2.Start(ctx)
	defer s2.Close()
	waitConverged(t, s2, nil, 0)
	if got := src2.firstFetchOrder(); fmt.Sprint(got) != "[w3]" {
		t.Fatalf("restored crawl probed %v, want only w3", got)
	}

	// Past the TTL the restored entries do qualify (w3, probed 40 minutes
	// ago by this scheduler, is still fresh).
	clk2.Advance(40 * time.Minute)
	if n := s2.EnsureFresh([]string{"w1", "w2", "w3"}); n != 2 {
		t.Fatalf("EnsureFresh after TTL scheduled %d probes, want 2", n)
	}
	waitConverged(t, s2, nil, 0)
}

// TestCollectWalletHitRate: cache reads are counted so the hit rate is
// observable.
func TestCollectWalletHitRate(t *testing.T) {
	clk := probe.NewFakeClock(time.Date(2019, 4, 30, 0, 0, 0, 0, time.UTC))
	src := newFakeSource(clk, "pool-a")
	s := probe.New(probe.Config{Source: src, Clock: clk, Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Close()

	if act := s.CollectWallet("w"); act.TotalXMR != 0 || act.Wallet != "w" {
		t.Fatalf("unexpected empty-cache activity: %+v", act)
	}
	s.Enqueue("w")
	waitConverged(t, s, nil, 0)
	s.CollectWallet("w")
	st := s.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
}

// TestWaitCachedUnaffectedByRefreshChurn pins the Finish-termination
// property: once a wallet has a cache entry, WaitCached returns even while a
// forced re-probe of that same wallet is still in flight (the situation a
// TTL shorter than a full crawl produces continuously).
func TestWaitCachedUnaffectedByRefreshChurn(t *testing.T) {
	gate := make(chan struct{})
	src := newFakeSource(probe.RealClock(), "pool-a")
	src.respond = func(_, wallet string, _ int) (model.WalletStats, error) {
		if wallet == "slow" {
			<-gate
		}
		return model.WalletStats{}, pool.ErrUnknownUser
	}
	s := probe.New(probe.Config{Source: src, Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Close()
	defer close(gate)

	s.Enqueue("fast")
	waitConverged(t, s, nil, 0)

	// A probe of "slow" now blocks the single worker; "fast" stays cached.
	s.Refresh("slow")
	wctx, wcancel := context.WithTimeout(ctx, 5*time.Second)
	defer wcancel()
	if err := s.WaitCached(wctx, []string{"fast"}); err != nil {
		t.Fatalf("WaitCached blocked on an already-cached wallet: %v", err)
	}
	if s.Converged() {
		t.Fatal("fixture broken: crawl should still be busy")
	}
	// And WaitCached on the in-flight wallet must respect the context.
	wctx2, wcancel2 := context.WithTimeout(ctx, 50*time.Millisecond)
	defer wcancel2()
	if err := s.WaitCached(wctx2, []string{"slow"}); err == nil {
		t.Fatal("WaitCached returned before the slow wallet was cached")
	}
}

// TestDisableRefreshStopsSweep: after DisableRefresh the TTL sweep no longer
// re-probes expired entries (manual Refresh still does).
func TestDisableRefreshStopsSweep(t *testing.T) {
	clk := probe.NewFakeClock(time.Date(2019, 4, 30, 0, 0, 0, 0, time.UTC))
	src := newFakeSource(clk, "pool-a")
	s := probe.New(probe.Config{Source: src, Clock: clk, Workers: 1, TTL: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Close()

	s.Enqueue("w")
	waitConverged(t, s, nil, 0)
	s.DisableRefresh()

	for i := 0; i < 12; i++ { // 3 TTLs worth of sweep periods
		clk.Advance(15 * time.Second)
		time.Sleep(2 * time.Millisecond)
	}
	waitConverged(t, s, nil, 0)
	if got := len(src.fetchTimes("pool-a")); got != 1 {
		t.Fatalf("sweep re-probed after DisableRefresh: %d fetches", got)
	}
	if !s.Refresh("w") {
		t.Fatal("manual refresh rejected after DisableRefresh")
	}
	waitConverged(t, s, nil, 0)
	if got := len(src.fetchTimes("pool-a")); got != 2 {
		t.Fatalf("manual refresh did not run: %d fetches", got)
	}
}
