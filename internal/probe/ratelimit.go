package probe

import (
	"sync"
	"time"
)

// tokenBucket is a reservation-style token bucket driven by an external
// clock: Reserve never sleeps, it hands back how long the caller must wait
// before its reserved slot begins. Tokens refill continuously at rate per
// second up to burst; reservations may drive the balance negative, which is
// what serializes concurrent callers onto future slots — the long-run request
// rate can therefore never exceed rate, regardless of worker count.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 disables limiting
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int, now time.Time) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: now}
}

// reserve claims one token and returns how long the caller must wait (zero
// when a token is immediately available).
func (tb *tokenBucket) reserve(now time.Time) time.Duration {
	if tb.rate <= 0 {
		return 0
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if now.After(tb.last) {
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
	tb.tokens--
	if tb.tokens >= 0 {
		return 0
	}
	return time.Duration(-tb.tokens / tb.rate * float64(time.Second))
}
