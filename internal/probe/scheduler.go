package probe

import (
	"container/heap"
	"context"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cryptomining/internal/exchange"
	"cryptomining/internal/model"
	"cryptomining/internal/obs"
	"cryptomining/internal/profit"
)

// Entry is one cached probe result: everything the crawler learned about a
// wallet, when it learned it, and which pools could not be reached.
type Entry struct {
	Wallet   string
	Activity profit.WalletActivity
	// FetchedAt is the scheduler-clock time the probe completed; TTL refresh
	// measures staleness against it.
	FetchedAt time.Time
	// Err names the pools that stayed unreachable after retries ("" when the
	// probe completed cleanly). Unknown-wallet and opaque-pool outcomes are
	// not errors — they are facts of the measurement.
	Err string
}

// Update notifies the consumer (the streaming engine) that one probe
// completed. Activity carries whatever was collected, even when Err reports
// partially unreachable pools.
type Update struct {
	Wallet    string
	Activity  profit.WalletActivity
	FetchedAt time.Time
	Err       string
}

// Config tunes a Scheduler.
type Config struct {
	// Source supplies per-pool wallet statistics (required).
	Source Source
	// Rates converts payments to USD (nil = default synthetic history). Must
	// match the engine's history for profit figures to agree.
	Rates *exchange.History
	// Workers is the probe concurrency cap (default 4). Each worker crawls
	// one wallet across all pools at a time.
	Workers int
	// TTL is how long a cache entry stays fresh; entries older than TTL are
	// re-enqueued by the refresh loop (0 = probe once, never auto-refresh).
	TTL time.Duration
	// RatePerPool caps requests per second against any single pool via a
	// token bucket (0 = unlimited). Real pools throttle aggressive crawlers;
	// the polite crawler never exceeds this, whatever the worker count.
	RatePerPool float64
	// Burst is the token-bucket burst size (default 1).
	Burst int
	// MaxAttempts bounds fetch attempts per (wallet, pool) on transient
	// errors (default 3).
	MaxAttempts int
	// BackoffBase / BackoffMax shape the exponential retry backoff
	// (defaults 50ms / 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Clock drives all waiting (default: wall clock).
	Clock Clock
	// Metrics, when set, makes the scheduler register its crawl telemetry
	// (queue depth, in-flight probes, cache size/age, per-pool request,
	// retry, terminal-error and rate-limit-wait counters) in the registry.
	Metrics *obs.Registry
	// Logger receives the scheduler's structured logs, scoped
	// component=probe. Nil keeps the crawler silent (the library default).
	Logger *slog.Logger
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Burst < 1 {
		cfg.Burst = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock()
	}
	if cfg.Rates == nil {
		cfg.Rates = exchange.NewDefaultHistory()
	}
	return cfg
}

// task is one queued wallet probe.
type task struct {
	wallet string
	// never marks wallets with no cache entry yet — they outrank every
	// refresh.
	never bool
	// fetchedAt orders refreshes stalest-first.
	fetchedAt time.Time
	// seq keeps never-probed wallets FIFO and makes ordering total.
	seq uint64
}

// taskHeap orders tasks: never-probed first (FIFO), then stalest-by-TTL.
type taskHeap []task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.never != b.never {
		return a.never
	}
	if a.never {
		return a.seq < b.seq
	}
	if !a.fetchedAt.Equal(b.fetchedAt) {
		return a.fetchedAt.Before(b.fetchedAt)
	}
	return a.seq < b.seq
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(task)) }
func (h *taskHeap) Pop() any     { old := *h; n := len(old); t := old[n-1]; *h = old[:n-1]; return t }

// poolCounters tracks one pool's crawl telemetry.
type poolCounters struct {
	requests       uint64
	ok             uint64
	unknownWallet  uint64
	opaquePool     uint64
	retries        uint64
	failed         uint64
	throttledNanos int64
}

// Scheduler runs the crawl: a worker pool draining the priority queue into
// the per-wallet cache, within per-pool rate limits. Create with New, wire
// the consumer with SetOnUpdate, then Start. All exported methods are safe
// for concurrent use; Enqueue and the cache work before Start too (probes
// queue up and run once started), which is how a restored engine re-enqueues
// stale wallets before the daemon brings the crawler up.
type Scheduler struct {
	cfg   Config
	clock Clock

	mu       sync.Mutex
	queue    taskHeap          //cryptolint:guardedby mu
	queued   map[string]bool   //cryptolint:guardedby mu (queued or in flight)
	cache    map[string]*Entry //cryptolint:guardedby mu
	seq      uint64            //cryptolint:guardedby mu
	inflight int               //cryptolint:guardedby mu
	waiters  []chan struct{}   //cryptolint:guardedby mu
	// buckets and pools are populated once in New and immutable after —
	// their values carry their own synchronization (reserve CAS loop,
	// atomic counters) — so neither is annotated as mu-guarded.
	buckets  map[string]*tokenBucket
	pools    map[string]*poolCounters
	onUpdate func(Update)
	started  bool //cryptolint:guardedby mu
	// refreshOff disables the periodic TTL sweep (set once results are
	// finalized).
	refreshOff bool //cryptolint:guardedby mu

	completed atomic.Uint64
	// hits / misses count cache reads (CollectWallet), for the cache-hit-rate
	// benchmark and observability.
	hits   atomic.Uint64
	misses atomic.Uint64

	wake   chan struct{}
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// log is the component logger (never nil; silent by default).
	log *slog.Logger
}

// New builds a scheduler (not yet crawling; call Start).
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:     cfg,
		clock:   cfg.Clock,
		queued:  map[string]bool{},
		cache:   map[string]*Entry{},
		buckets: map[string]*tokenBucket{},
		pools:   map[string]*poolCounters{},
		wake:    make(chan struct{}, 1),
	}
	s.log = obs.Component(cfg.Logger, "probe")
	for _, name := range cfg.Source.Pools() {
		s.buckets[name] = newTokenBucket(cfg.RatePerPool, cfg.Burst, s.clock.Now())
		s.pools[name] = &poolCounters{}
	}
	if cfg.Metrics != nil {
		s.registerMetrics(cfg.Metrics)
	}
	return s
}

// registerMetrics wires the crawl telemetry into the registry. Everything
// bridges existing counters and state via CounterFunc/GaugeFunc, so the
// crawl itself pays nothing at probe time.
func (s *Scheduler) registerMetrics(reg *obs.Registry) {
	reg.GaugeFunc("probe_queue_depth", "Wallet probes queued.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.queue))
	})
	reg.GaugeFunc("probe_inflight", "Wallet probes currently crawling.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.inflight)
	})
	reg.GaugeFunc("probe_cache_size", "Wallets with a cached probe result.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.cache))
	})
	reg.GaugeFunc("probe_cache_errors", "Cached entries with unreachable pools recorded.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		n := 0
		for _, ent := range s.cache {
			if ent.Err != "" {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("probe_cache_oldest_age_seconds",
		"Age of the stalest cache entry (0 with an empty cache).",
		func() float64 {
			now := s.clock.Now()
			s.mu.Lock()
			defer s.mu.Unlock()
			var oldest float64
			for _, ent := range s.cache {
				if age := now.Sub(ent.FetchedAt).Seconds(); age > oldest {
					oldest = age
				}
			}
			return oldest
		})
	reg.CounterFunc("probe_completed_total", "Probes ever finished (refreshes included).",
		func() float64 { return float64(s.completed.Load()) })
	reg.CounterFunc("probe_cache_hits_total", "CollectWallet reads served from the cache.",
		func() float64 { return float64(s.hits.Load()) })
	reg.CounterFunc("probe_cache_misses_total", "CollectWallet reads missing the cache.",
		func() float64 { return float64(s.misses.Load()) })
	for name, pc := range s.pools {
		pc := pc
		lbl := obs.L("pool", name)
		reg.CounterFunc("probe_pool_requests_total", "Fetch attempts against the pool.",
			func() float64 { return float64(atomic.LoadUint64(&pc.requests)) }, lbl)
		reg.CounterFunc("probe_pool_retries_total", "Backoff retry rounds against the pool.",
			func() float64 { return float64(atomic.LoadUint64(&pc.retries)) }, lbl)
		reg.CounterFunc("probe_pool_failed_total",
			"Probes that exhausted retries against the pool (terminal errors).",
			func() float64 { return float64(atomic.LoadUint64(&pc.failed)) }, lbl)
		reg.CounterFunc("probe_pool_throttled_seconds_total",
			"Cumulative time spent waiting on the pool's rate limiter.",
			func() float64 {
				return time.Duration(atomic.LoadInt64(&pc.throttledNanos)).Seconds()
			}, lbl)
	}
}

// SetOnUpdate registers the completion consumer (at most one; the streaming
// engine). Must be called before Start.
func (s *Scheduler) SetOnUpdate(fn func(Update)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onUpdate = fn
}

// Start launches the workers and the TTL refresh loop. Idempotent.
func (s *Scheduler) Start(ctx context.Context) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()

	ctx, s.cancel = context.WithCancel(ctx)
	s.log.Info("crawler started",
		"workers", s.cfg.Workers, "ttl", s.cfg.TTL,
		"rate_per_pool", s.cfg.RatePerPool, "pools", len(s.pools))
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(ctx)
	}
	if s.cfg.TTL > 0 {
		s.wg.Add(1)
		go s.refreshLoop(ctx)
	}
}

// Close stops the crawl and waits for in-flight probes to wind down.
func (s *Scheduler) Close() {
	s.mu.Lock()
	cancel := s.cancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.wg.Wait()
}

// Enqueue schedules a wallet's first probe. Wallets already cached or
// already queued are left alone — freshness is the TTL loop's business, and
// forced re-probes go through Refresh.
func (s *Scheduler) Enqueue(wallet string) {
	if wallet == "" {
		return
	}
	s.mu.Lock()
	if s.queued[wallet] || s.cache[wallet] != nil {
		s.mu.Unlock()
		return
	}
	s.push(task{wallet: wallet, never: true})
	s.mu.Unlock()
	s.signal()
}

// Refresh force-re-probes one wallet, whether or not its entry is fresh
// (no-op if a probe is already queued or running). It reports whether a probe
// was scheduled.
func (s *Scheduler) Refresh(wallet string) bool {
	if wallet == "" {
		return false
	}
	s.mu.Lock()
	defer func() { s.mu.Unlock(); s.signal() }()
	if s.queued[wallet] {
		return false
	}
	t := task{wallet: wallet, never: true}
	if ent := s.cache[wallet]; ent != nil {
		t.never = false
		t.fetchedAt = ent.FetchedAt
	}
	s.push(t)
	return true
}

// RefreshStale re-enqueues every cache entry older than the TTL (or with a
// recorded error, so partially failed probes heal on the next sweep) and
// returns how many were scheduled. With TTL 0 only errored entries qualify.
func (s *Scheduler) RefreshStale() int {
	now := s.clock.Now()
	s.mu.Lock()
	defer func() { s.mu.Unlock(); s.signal() }()
	n := 0
	for w, ent := range s.cache {
		if s.queued[w] {
			continue
		}
		stale := ent.Err != "" || (s.cfg.TTL > 0 && now.Sub(ent.FetchedAt) >= s.cfg.TTL)
		if !stale {
			continue
		}
		s.push(task{wallet: w, fetchedAt: ent.FetchedAt})
		n++
	}
	return n
}

// RefreshAll re-enqueues every cached wallet and returns how many were
// scheduled.
func (s *Scheduler) RefreshAll() int {
	s.mu.Lock()
	defer func() { s.mu.Unlock(); s.signal() }()
	n := 0
	for w, ent := range s.cache {
		if s.queued[w] {
			continue
		}
		s.push(task{wallet: w, fetchedAt: ent.FetchedAt})
		n++
	}
	return n
}

// EnsureFresh schedules probes for exactly the wallets that need one: never
// probed, TTL-expired, or previously errored. A restored engine calls this
// with every wallet it has seen, so a restart mid-convergence resumes the
// remaining probes without re-hammering pools for fresh entries. Returns how
// many probes were scheduled.
func (s *Scheduler) EnsureFresh(wallets []string) int {
	now := s.clock.Now()
	s.mu.Lock()
	defer func() { s.mu.Unlock(); s.signal() }()
	n := 0
	for _, w := range wallets {
		if w == "" || s.queued[w] {
			continue
		}
		ent := s.cache[w]
		if ent == nil {
			s.push(task{wallet: w, never: true})
			n++
			continue
		}
		if ent.Err != "" || (s.cfg.TTL > 0 && now.Sub(ent.FetchedAt) >= s.cfg.TTL) {
			s.push(task{wallet: w, fetchedAt: ent.FetchedAt})
			n++
		}
	}
	return n
}

// push adds one task (caller holds s.mu).
func (s *Scheduler) push(t task) {
	s.seq++
	t.seq = s.seq
	s.queued[t.wallet] = true
	heap.Push(&s.queue, t)
}

// signal wakes one idle worker.
func (s *Scheduler) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Peek returns the cache entry for a wallet, if any.
func (s *Scheduler) Peek(wallet string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ent := s.cache[wallet]; ent != nil {
		return *ent, true
	}
	return Entry{}, false
}

// CollectWallet serves a wallet's activity from the cache — the engine's
// profit source. A wallet not probed yet yields empty activity (it prices as
// zero until its probe lands).
func (s *Scheduler) CollectWallet(wallet string) profit.WalletActivity {
	s.mu.Lock()
	ent := s.cache[wallet]
	s.mu.Unlock()
	if ent == nil {
		s.misses.Add(1)
		return profit.WalletActivity{Wallet: wallet}
	}
	s.hits.Add(1)
	return ent.Activity
}

// Converged reports whether the crawl has drained: nothing queued, nothing in
// flight.
func (s *Scheduler) Converged() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue) == 0 && s.inflight == 0
}

// WaitConverged blocks until the crawl drains (or ctx expires).
func (s *Scheduler) WaitConverged(ctx context.Context) error {
	//cryptolint:allow guardedby the predicate closure runs under s.mu inside wait
	return s.wait(ctx, func() bool { return len(s.queue) == 0 && s.inflight == 0 })
}

// WaitCached blocks until every listed wallet has a cache entry (or ctx
// expires). This is the engine's pre-finalize barrier: unlike WaitConverged
// it is insensitive to TTL churn — a refresh leaves the existing entry in
// place while its re-probe queues, so a crawl slower than its own TTL still
// lets the wait terminate.
func (s *Scheduler) WaitCached(ctx context.Context, wallets []string) error {
	return s.wait(ctx, func() bool {
		for _, w := range wallets {
			//cryptolint:allow guardedby the predicate closure runs under s.mu inside wait
			if w != "" && s.cache[w] == nil {
				return false
			}
		}
		return true
	})
}

// wait parks until done (evaluated under s.mu) holds; waiters are re-woken
// on every probe completion and re-check their predicate.
func (s *Scheduler) wait(ctx context.Context, done func() bool) error {
	for {
		s.mu.Lock()
		if done() {
			s.mu.Unlock()
			return nil
		}
		ch := make(chan struct{})
		s.waiters = append(s.waiters, ch)
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// DisableRefresh turns the periodic TTL sweep off (manual Refresh calls
// still work). The engine calls it once results are finalized: automatic
// re-probes past that point would be discarded anyway, and crawling live
// pools for discarded answers is impolite.
func (s *Scheduler) DisableRefresh() {
	s.mu.Lock()
	s.refreshOff = true
	s.mu.Unlock()
}

// worker drains the queue: pop the highest-priority wallet, crawl it across
// every pool, cache the result, notify the consumer.
func (s *Scheduler) worker(ctx context.Context) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		if len(s.queue) == 0 {
			s.mu.Unlock()
			select {
			case <-ctx.Done():
				return
			case <-s.wake:
				continue
			}
		}
		t := heap.Pop(&s.queue).(task)
		s.inflight++
		more := len(s.queue) > 0
		s.mu.Unlock()
		if more {
			s.signal() // other idle workers can pick up the rest
		}

		s.probe(ctx, t.wallet)

		s.mu.Lock()
		s.inflight--
		delete(s.queued, t.wallet)
		// Wake every waiter on each completion; they re-check their own
		// predicate (convergence, cache coverage) and re-park if unmet.
		var waiters []chan struct{}
		waiters, s.waiters = s.waiters, nil
		s.mu.Unlock()
		for _, ch := range waiters {
			close(ch)
		}
		if ctx.Err() != nil {
			return
		}
	}
}

// probe crawls one wallet across every pool (in sorted pool order, so the
// activity aggregation is deterministic), caches the entry and fires the
// update hook. Aborted probes (context cancellation mid-crawl) cache
// nothing.
func (s *Scheduler) probe(ctx context.Context, wallet string) {
	var perPool []model.WalletStats
	var unreachable []string
	for _, poolName := range s.cfg.Source.Pools() {
		stats, class := s.fetchWithRetry(ctx, poolName, wallet)
		switch class {
		case ErrorNone:
			perPool = append(perPool, stats)
		case ErrorUnreachable:
			if ctx.Err() != nil {
				return // shutdown, not a pool fault: leave the cache alone
			}
			unreachable = append(unreachable, poolName)
		}
	}
	ent := &Entry{
		Wallet:    wallet,
		Activity:  profit.BuildActivity(wallet, perPool, s.cfg.Rates),
		FetchedAt: s.clock.Now(),
	}
	if len(unreachable) > 0 {
		ent.Err = "unreachable: " + strings.Join(unreachable, ", ")
		s.log.Warn("probe finished with unreachable pools",
			"wallet", wallet, "unreachable", unreachable)
	} else {
		s.log.Debug("probe finished",
			"wallet", wallet, "xmr", ent.Activity.TotalXMR, "pools", len(perPool))
	}
	s.mu.Lock()
	s.cache[wallet] = ent
	fn := s.onUpdate
	s.mu.Unlock()
	s.completed.Add(1)
	if fn != nil {
		// Deliberately outside s.mu: the consumer takes its own locks, and
		// nothing may hold the scheduler lock while waiting on them.
		fn(Update{Wallet: wallet, Activity: ent.Activity, FetchedAt: ent.FetchedAt, Err: ent.Err})
	}
}

// fetchWithRetry queries one (wallet, pool) pair within the pool's rate
// limit, retrying transient failures with exponential backoff up to
// MaxAttempts.
func (s *Scheduler) fetchWithRetry(ctx context.Context, poolName, wallet string) (model.WalletStats, ErrorClass) {
	pc := s.pools[poolName]
	bucket := s.buckets[poolName]
	backoff := s.cfg.BackoffBase
	class := ErrorUnreachable
	for attempt := 0; attempt < s.cfg.MaxAttempts; attempt++ {
		if wait := bucket.reserve(s.clock.Now()); wait > 0 {
			atomic.AddInt64(&pc.throttledNanos, int64(wait))
			select {
			case <-s.clock.After(wait):
			case <-ctx.Done():
				return model.WalletStats{}, ErrorUnreachable
			}
		}
		atomic.AddUint64(&pc.requests, 1)
		stats, err := s.cfg.Source.Fetch(ctx, poolName, wallet)
		class = Classify(err)
		switch class {
		case ErrorNone:
			atomic.AddUint64(&pc.ok, 1)
			return stats, ErrorNone
		case ErrorUnknownWallet:
			atomic.AddUint64(&pc.unknownWallet, 1)
			return model.WalletStats{}, class
		case ErrorOpaquePool:
			atomic.AddUint64(&pc.opaquePool, 1)
			return model.WalletStats{}, class
		}
		if ctx.Err() != nil {
			return model.WalletStats{}, ErrorUnreachable
		}
		if attempt+1 < s.cfg.MaxAttempts {
			atomic.AddUint64(&pc.retries, 1)
			select {
			case <-s.clock.After(backoff):
			case <-ctx.Done():
				return model.WalletStats{}, ErrorUnreachable
			}
			backoff *= 2
			if backoff > s.cfg.BackoffMax {
				backoff = s.cfg.BackoffMax
			}
		}
	}
	atomic.AddUint64(&pc.failed, 1)
	return model.WalletStats{}, class
}

// refreshLoop periodically re-enqueues TTL-expired entries. The sweep period
// is a quarter of the TTL, so a stale entry waits at most 1.25 TTL before its
// refresh probe is queued.
func (s *Scheduler) refreshLoop(ctx context.Context) {
	defer s.wg.Done()
	period := s.cfg.TTL / 4
	if period <= 0 {
		period = s.cfg.TTL
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.clock.After(period):
			s.mu.Lock()
			off := s.refreshOff
			s.mu.Unlock()
			if !off {
				s.RefreshStale()
			}
		}
	}
}

// PoolStats is one pool's crawl telemetry.
type PoolStats struct {
	Pool string
	// Requests counts fetch attempts; OK / UnknownWallet / OpaquePool /
	// Failed classify their outcomes (Failed = transient errors that
	// exhausted retries); Retries counts backoff rounds.
	Requests      uint64
	OK            uint64
	UnknownWallet uint64
	OpaquePool    uint64
	Retries       uint64
	Failed        uint64
	// Throttled is the cumulative time spent waiting on this pool's rate
	// limiter.
	Throttled time.Duration
}

// AgeBucket counts cache entries whose age is <= UpTo (the last bucket has
// UpTo 0, meaning unbounded).
type AgeBucket struct {
	UpTo  time.Duration
	Count int
}

// Stats is a point-in-time snapshot of the crawl.
type Stats struct {
	// QueueDepth / InFlight describe pending work; Converged is both zero.
	QueueDepth int
	InFlight   int
	Converged  bool
	// CacheSize / CacheErrors describe the wallet cache; Completed counts
	// probes ever finished (refreshes included).
	CacheSize   int
	CacheErrors int
	Completed   uint64
	// CacheHits / CacheMisses count CollectWallet reads served from /
	// missing the cache.
	CacheHits   uint64
	CacheMisses uint64
	// Pools is the per-pool telemetry, sorted by pool name.
	Pools []PoolStats
	// Ages is the cache age distribution at snapshot time.
	Ages []AgeBucket
}

// ageBounds are the cache-age histogram buckets (a trailing unbounded bucket
// is appended by Stats).
var ageBounds = []time.Duration{time.Minute, 5 * time.Minute, time.Hour}

// Stats snapshots the scheduler's telemetry.
func (s *Scheduler) Stats() Stats {
	now := s.clock.Now()
	s.mu.Lock()
	st := Stats{
		QueueDepth:  len(s.queue),
		InFlight:    s.inflight,
		Converged:   len(s.queue) == 0 && s.inflight == 0,
		CacheSize:   len(s.cache),
		Completed:   s.completed.Load(),
		CacheHits:   s.hits.Load(),
		CacheMisses: s.misses.Load(),
	}
	ages := make([]AgeBucket, len(ageBounds)+1)
	for i, b := range ageBounds {
		ages[i].UpTo = b
	}
	for _, ent := range s.cache {
		if ent.Err != "" {
			st.CacheErrors++
		}
		age := now.Sub(ent.FetchedAt)
		placed := false
		for i, b := range ageBounds {
			if age <= b {
				ages[i].Count++
				placed = true
				break
			}
		}
		if !placed {
			ages[len(ages)-1].Count++
		}
	}
	st.Ages = ages
	names := make([]string, 0, len(s.pools))
	for name := range s.pools {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		pc := s.pools[name]
		st.Pools = append(st.Pools, PoolStats{
			Pool:          name,
			Requests:      atomic.LoadUint64(&pc.requests),
			OK:            atomic.LoadUint64(&pc.ok),
			UnknownWallet: atomic.LoadUint64(&pc.unknownWallet),
			OpaquePool:    atomic.LoadUint64(&pc.opaquePool),
			Retries:       atomic.LoadUint64(&pc.retries),
			Failed:        atomic.LoadUint64(&pc.failed),
			Throttled:     time.Duration(atomic.LoadInt64(&pc.throttledNanos)),
		})
	}
	return st
}
