package probe

import (
	"sort"
	"time"

	"cryptomining/internal/profit"
)

// CacheState is the serializable form of the probe cache, carried inside
// stream.EngineState so checkpoints preserve probe results across restarts —
// a resumed daemon re-probes only what the TTL says is stale, never the whole
// wallet set. Entries are sorted by wallet so the same cache always
// serializes to the same bytes.
type CacheState struct {
	Entries []EntryState
}

// EntryState is one persisted cache entry.
type EntryState struct {
	Wallet   string
	Activity profit.WalletActivity
	// FetchedAtUnixNano pins the fetch time (UnixNano survives gob exactly
	// and keeps the encoding canonical).
	FetchedAtUnixNano int64
	Err               string
}

// ExportCache snapshots the cache in canonical (wallet-sorted) order. Safe to
// call while the crawl runs; in-flight probes simply land after the
// snapshot, covered by the restore-side EnsureFresh sweep.
func (s *Scheduler) ExportCache() *CacheState {
	s.mu.Lock()
	wallets := make([]string, 0, len(s.cache))
	for w := range s.cache {
		wallets = append(wallets, w)
	}
	sort.Strings(wallets)
	st := &CacheState{Entries: make([]EntryState, 0, len(wallets))}
	for _, w := range wallets {
		ent := s.cache[w]
		st.Entries = append(st.Entries, EntryState{
			Wallet:            w,
			Activity:          ent.Activity,
			FetchedAtUnixNano: ent.FetchedAt.UnixNano(),
			Err:               ent.Err,
		})
	}
	s.mu.Unlock()
	return st
}

// RestoreCache loads a previously exported cache into an empty scheduler
// (typically before Start). Existing entries for the same wallets are
// overwritten.
func (s *Scheduler) RestoreCache(st *CacheState) {
	if st == nil {
		return
	}
	s.mu.Lock()
	for _, e := range st.Entries {
		s.cache[e.Wallet] = &Entry{
			Wallet:    e.Wallet,
			Activity:  e.Activity,
			FetchedAt: time.Unix(0, e.FetchedAtUnixNano),
			Err:       e.Err,
		}
	}
	s.mu.Unlock()
}
