// Package probe is the asynchronous wallet-statistics crawler of the
// measurement system. The paper's profit methodology (§III-D) rests on
// querying remote pool APIs for per-wallet statistics — a slow, rate-limited,
// failure-prone measurement loop that the streaming engine previously
// shortcut by reading the in-process pool directory synchronously under the
// collector lock. This package reproduces the real loop: a Scheduler runs a
// bounded worker pool over a priority queue of wallets (never-probed first,
// then stalest by TTL), enforces per-pool token-bucket rate limits, retries
// transient failures with exponential backoff, classifies terminal outcomes
// (unknown wallet, opaque pool, pool unreachable), and maintains a per-wallet
// activity cache that the engine serves live profit from.
//
// Pool access is pluggable behind Source: DirectorySource queries the
// in-process pool.Directory (deterministic — with a fully converged cache the
// engine's results stay bit-identical to the batch pipeline), HTTPSource
// queries the public statistics API of live pool.Server instances over the
// network, exactly as the paper's crawler hit real pools. All timing flows
// through an injectable Clock, so rate limits, backoff and TTL refresh are
// testable without wall-clock sleeps.
package probe

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"cryptomining/internal/model"
	"cryptomining/internal/pool"
)

// Source supplies raw per-pool wallet statistics to the scheduler. Both the
// pool list and Fetch must be safe for concurrent use.
type Source interface {
	// Pools returns the names of the pools this source queries, sorted. The
	// scheduler probes a wallet against every pool in this order — keeping
	// the order stable is what keeps float summation over per-pool activity
	// deterministic.
	Pools() []string
	// Fetch returns one wallet's public statistics at one pool. Expected
	// failures are pool.ErrUnknownUser (no activity at this pool) and
	// pool.ErrOpaquePool (the pool publishes no statistics); anything else is
	// treated as transient and retried.
	Fetch(ctx context.Context, poolName, wallet string) (model.WalletStats, error)
}

// ErrorClass buckets probe failures the way the paper's crawler had to:
// wallets unknown to a pool and opaque pools are terminal, ordinary facts of
// the measurement; unreachable pools are transient infrastructure faults.
type ErrorClass string

const (
	// ErrorNone marks a successful fetch.
	ErrorNone ErrorClass = ""
	// ErrorUnknownWallet is the 404 class: the pool has never seen the
	// wallet. Terminal, and not an error for the probe as a whole — most
	// wallets mine at a few pools only.
	ErrorUnknownWallet ErrorClass = "unknown_wallet"
	// ErrorOpaquePool is the 403 class: the pool does not publish per-wallet
	// statistics (minergate in the paper). Terminal.
	ErrorOpaquePool ErrorClass = "opaque_pool"
	// ErrorUnreachable covers transport failures, 5xx responses and other
	// unexpected conditions. Transient: retried with backoff, and recorded on
	// the cache entry once retries are exhausted.
	ErrorUnreachable ErrorClass = "unreachable"
)

// Classify maps a Fetch error to its class.
func Classify(err error) ErrorClass {
	switch {
	case err == nil:
		return ErrorNone
	case errors.Is(err, pool.ErrUnknownUser):
		return ErrorUnknownWallet
	case errors.Is(err, pool.ErrOpaquePool):
		return ErrorOpaquePool
	default:
		return ErrorUnreachable
	}
}

// DirectorySource probes the in-process pool directory — the deterministic
// default. It queries every known pool (opaque ones included, so the 403
// classification is exercised exactly as over the network); since the
// underlying ledgers and the query time are fixed, a converged cache holds
// precisely what profit.Collector.CollectWallet would have returned.
type DirectorySource struct {
	dir       *pool.Directory
	queryTime time.Time
	names     []string
}

// NewDirectorySource wraps a pool directory, pinning the measurement query
// time recorded on fetched statistics.
func NewDirectorySource(dir *pool.Directory, queryTime time.Time) *DirectorySource {
	return &DirectorySource{dir: dir, queryTime: queryTime, names: dir.Names()}
}

// Pools returns every directory pool, sorted by name.
func (s *DirectorySource) Pools() []string { return s.names }

// Fetch queries one pool's ledger directly.
func (s *DirectorySource) Fetch(_ context.Context, poolName, wallet string) (model.WalletStats, error) {
	p, ok := s.dir.Get(poolName)
	if !ok {
		return model.WalletStats{}, fmt.Errorf("probe: unknown pool %q", poolName)
	}
	return p.Stats(wallet, s.queryTime)
}

// HTTPSource probes live pool servers over their public statistics API, one
// endpoint per pool (the `GET /api/stats` surface of pool.Server). The full
// wallet statistics — payment history included — round-trip losslessly, so a
// converged HTTP probe against servers holding the same ledgers reproduces
// the in-process figures bit for bit.
type HTTPSource struct {
	clients map[string]*pool.StatsClient
	names   []string
}

// NewHTTPSource builds a source from a pool-name -> base-URL map (e.g.
// {"minexmr": "http://127.0.0.1:18400"}). A nil http.Client gets a default
// with a 10-second per-request timeout, so one hung pool cannot stall a
// worker forever.
func NewHTTPSource(endpoints map[string]string, hc *http.Client) *HTTPSource {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	s := &HTTPSource{clients: make(map[string]*pool.StatsClient, len(endpoints))}
	for name, base := range endpoints {
		s.clients[name] = pool.NewStatsClient(strings.TrimRight(base, "/"), hc)
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	return s
}

// Pools returns the configured pool names, sorted.
func (s *HTTPSource) Pools() []string { return s.names }

// Fetch queries one pool's HTTP statistics endpoint.
func (s *HTTPSource) Fetch(ctx context.Context, poolName, wallet string) (model.WalletStats, error) {
	c, ok := s.clients[poolName]
	if !ok {
		return model.WalletStats{}, fmt.Errorf("probe: unknown pool %q", poolName)
	}
	return c.WalletStats(ctx, wallet)
}
