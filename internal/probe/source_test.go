package probe_test

import (
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"sort"
	"testing"
	"time"

	"cryptomining/internal/ecosim"
	"cryptomining/internal/pool"
	"cryptomining/internal/probe"
	"cryptomining/internal/profit"
)

// universeWallets returns every wallet with a ledger at any pool of the
// universe, sorted (capped to keep the test quick).
func universeWallets(u *ecosim.Universe, max int) []string {
	set := map[string]bool{}
	for _, p := range u.Pools.Pools() {
		for _, w := range p.Wallets() {
			set[w] = true
		}
	}
	wallets := make([]string, 0, len(set))
	for w := range set {
		wallets = append(wallets, w)
	}
	sort.Strings(wallets)
	if max > 0 && len(wallets) > max {
		wallets = wallets[:max]
	}
	return wallets
}

// TestDirectorySourceMatchesCollector is the determinism invariant the
// engine's batch equivalence rests on: a converged DirectorySource crawl
// holds, per wallet, exactly the activity the synchronous profit collector
// computes.
func TestDirectorySourceMatchesCollector(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig())
	wallets := universeWallets(u, 25)
	if len(wallets) == 0 {
		t.Fatal("universe has no pool wallets")
	}
	collector := profit.NewCollector(u.Pools, nil, u.Config.QueryTime)

	s := probe.New(probe.Config{
		Source:  probe.NewDirectorySource(u.Pools, u.Config.QueryTime),
		Workers: 4,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Close()
	for _, w := range wallets {
		s.Enqueue(w)
	}
	if err := s.WaitConverged(ctx); err != nil {
		t.Fatalf("converge: %v", err)
	}

	for _, w := range wallets {
		want := collector.CollectWallet(w)
		got := s.CollectWallet(w)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("wallet %s activity differs:\nprobe:     %+v\ncollector: %+v", w, got, want)
		}
	}
	// The opaque pool was queried and classified, not treated as a failure.
	var opaqueSeen bool
	for _, pc := range s.Stats().Pools {
		if pc.OpaquePool > 0 {
			opaqueSeen = true
		}
		if pc.Failed > 0 {
			t.Fatalf("directory crawl recorded failures: %+v", pc)
		}
	}
	if !opaqueSeen {
		t.Fatal("no opaque-pool classification recorded (minergate should 403)")
	}
}

// TestHTTPSourceMatchesCollector spins one pool.Server per universe pool —
// same ledgers, pinned clock — and requires a converged HTTP crawl to
// reproduce the synchronous collector's activity exactly (JSON-compared:
// payment histories, totals, last shares all round-trip losslessly).
func TestHTTPSourceMatchesCollector(t *testing.T) {
	u := ecosim.Generate(ecosim.SmallConfig())
	wallets := universeWallets(u, 15)
	collector := profit.NewCollector(u.Pools, nil, u.Config.QueryTime)

	endpoints := map[string]string{}
	for _, p := range u.Pools.Pools() {
		srv := pool.NewServer(p)
		srv.Clock = func() time.Time { return u.Config.QueryTime }
		addr, err := srv.ListenHTTP("127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen %s: %v", p.Name, err)
		}
		defer srv.Close()
		endpoints[p.Name] = "http://" + addr
	}

	s := probe.New(probe.Config{
		Source:  probe.NewHTTPSource(endpoints, nil),
		Workers: 4,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Close()
	for _, w := range wallets {
		s.Enqueue(w)
	}
	if err := s.WaitConverged(ctx); err != nil {
		t.Fatalf("converge: %v", err)
	}

	for _, w := range wallets {
		ent, ok := s.Peek(w)
		if !ok {
			t.Fatalf("wallet %s missing from cache", w)
		}
		if ent.Err != "" {
			t.Fatalf("wallet %s probe error: %s", w, ent.Err)
		}
		want, _ := json.Marshal(collector.CollectWallet(w))
		got, _ := json.Marshal(ent.Activity)
		if string(got) != string(want) {
			t.Fatalf("wallet %s HTTP activity differs:\nprobe:     %s\ncollector: %s", w, got, want)
		}
	}
}

// TestHTTPSourceErrorPaths covers the client-side classification satellites:
// 403 opaque, 404 unknown, connection refused.
func TestHTTPSourceErrorPaths(t *testing.T) {
	queryTime := time.Date(2019, 4, 30, 0, 0, 0, 0, time.UTC)

	opaquePolicy := pool.DefaultPolicy()
	opaquePolicy.Transparent = false
	opaque := pool.New("opaque", nil, "XMR", opaquePolicy, nil)
	opaqueSrv := pool.NewServer(opaque)
	opaqueAddr, err := opaqueSrv.ListenHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer opaqueSrv.Close()

	empty := pool.New("empty", nil, "XMR", pool.DefaultPolicy(), nil)
	emptySrv := pool.NewServer(empty)
	emptySrv.Clock = func() time.Time { return queryTime }
	emptyAddr, err := emptySrv.ListenHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer emptySrv.Close()

	src := probe.NewHTTPSource(map[string]string{
		"opaque": "http://" + opaqueAddr,
		"empty":  "http://" + emptyAddr,
		"down":   "http://127.0.0.1:1", // nothing listens here
	}, &http.Client{Timeout: time.Second})

	ctx := context.Background()
	if _, err := src.Fetch(ctx, "opaque", "w"); probe.Classify(err) != probe.ErrorOpaquePool {
		t.Fatalf("opaque pool classified as %q (%v)", probe.Classify(err), err)
	}
	if _, err := src.Fetch(ctx, "empty", "w"); probe.Classify(err) != probe.ErrorUnknownWallet {
		t.Fatalf("unknown wallet classified as %q (%v)", probe.Classify(err), err)
	}
	if _, err := src.Fetch(ctx, "down", "w"); probe.Classify(err) != probe.ErrorUnreachable {
		t.Fatalf("unreachable pool classified as %q (%v)", probe.Classify(err), err)
	}
	if _, err := src.Fetch(ctx, "no-such-pool", "w"); probe.Classify(err) != probe.ErrorUnreachable {
		t.Fatalf("unknown pool name classified as %q (%v)", probe.Classify(err), err)
	}
}
