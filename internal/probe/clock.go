package probe

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time for the scheduler so tests can drive rate limits,
// backoff and TTL refresh deterministically. The real implementation simply
// forwards to the time package.
type Clock interface {
	Now() time.Time
	// After returns a channel that delivers the current time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }    //cryptolint:allow directclock RealClock is the designated wall-clock implementation of the seam
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) } //cryptolint:allow directclock RealClock is the designated wall-clock implementation of the seam

// RealClock is the wall-clock implementation used outside tests.
func RealClock() Clock { return realClock{} }

// FakeClock is a manually advanced clock: Now returns a fixed instant until
// Advance moves it, and timers created by After only fire when an Advance
// carries the clock past their deadline. Safe for concurrent use.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []fakeTimer
}

type fakeTimer struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock creates a fake clock pinned at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake instant.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After registers a timer that fires when Advance reaches now+d. A
// non-positive d fires immediately.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	at := c.now.Add(d)
	if d <= 0 {
		ch <- at
		return ch
	}
	c.timers = append(c.timers, fakeTimer{at: at, ch: ch})
	return ch
}

// Advance moves the clock forward by d and fires every timer whose deadline
// has been reached, in deadline order.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var due []fakeTimer
	rest := c.timers[:0]
	for _, t := range c.timers {
		if !t.at.After(c.now) {
			due = append(due, t)
		} else {
			rest = append(rest, t)
		}
	}
	c.timers = rest
	c.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	for _, t := range due {
		t.ch <- t.at
	}
}

// PendingTimers reports how many timers are waiting to fire — tests poll it
// to know when the scheduler's workers are parked on the clock before
// advancing.
func (c *FakeClock) PendingTimers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}
