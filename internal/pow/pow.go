// Package pow models the proof-of-work environment that the profit analysis
// and the campaign-activity measurements depend on: a Monero-like emission
// schedule (used to estimate the share of circulating coins mined by
// malware), a network difficulty and block-reward model (used by the pool
// simulator to convert worker hashrate into expected rewards), and the
// algorithm-epoch timeline of the PoW changes the paper monitors
// (6 Apr 2018, 18 Oct 2018, 9 Mar 2019).
//
// This is intentionally a coarse model — the measurement pipeline needs the
// macroscopic quantities (coins in circulation, reward per hash, whether a
// given miner version produces valid shares after a fork), not the actual
// CryptoNight hash function.
package pow

import (
	"math"
	"sort"
	"time"
)

// Epoch is one PoW algorithm era. Miners built for an earlier algorithm stop
// producing valid shares once the next epoch begins, which is the mechanism
// behind the campaign die-offs of Table XI.
type Epoch struct {
	// Algorithm is the name of the PoW variant in force.
	Algorithm string
	// Start is when the algorithm activated (the fork date).
	Start time.Time
}

// MoneroEpochs is the algorithm timeline relevant to the study period,
// including the three forks the paper monitors.
var MoneroEpochs = []Epoch{
	{Algorithm: "cryptonight", Start: time.Date(2014, 4, 18, 0, 0, 0, 0, time.UTC)},
	{Algorithm: "cryptonight-v7", Start: time.Date(2018, 4, 6, 0, 0, 0, 0, time.UTC)},
	{Algorithm: "cryptonight-v8", Start: time.Date(2018, 10, 18, 0, 0, 0, 0, time.UTC)},
	{Algorithm: "cryptonight-r", Start: time.Date(2019, 3, 9, 0, 0, 0, 0, time.UTC)},
}

// ForkDates returns the fork activation dates after the first epoch, i.e. the
// dates at which previously-built miners become stale.
func ForkDates(epochs []Epoch) []time.Time {
	if len(epochs) <= 1 {
		return nil
	}
	out := make([]time.Time, 0, len(epochs)-1)
	for _, e := range epochs[1:] {
		out = append(out, e.Start)
	}
	return out
}

// AlgorithmAt returns the algorithm in force at time t. Times before the first
// epoch return the first algorithm.
func AlgorithmAt(epochs []Epoch, t time.Time) string {
	if len(epochs) == 0 {
		return ""
	}
	sorted := append([]Epoch(nil), epochs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start.Before(sorted[j].Start) })
	cur := sorted[0].Algorithm
	for _, e := range sorted {
		if t.Before(e.Start) {
			break
		}
		cur = e.Algorithm
	}
	return cur
}

// IsValidShare reports whether a miner built for minerAlgo produces acceptable
// shares at time t: the miner's algorithm must match the network algorithm.
func IsValidShare(epochs []Epoch, minerAlgo string, t time.Time) bool {
	return minerAlgo != "" && AlgorithmAt(epochs, t) == minerAlgo
}

// Network models the coarse Monero network parameters.
type Network struct {
	// Epochs is the PoW algorithm timeline.
	Epochs []Epoch
	// BlockTime is the target seconds between blocks (120 for Monero).
	BlockTime float64
	// Launch is the chain launch date (emission starts here).
	Launch time.Time
	// TailEmission is the fixed block reward after the main emission curve
	// (0.6 XMR for Monero).
	TailEmission float64
	// InitialReward approximates the block reward at launch.
	InitialReward float64
	// EmissionSpeedFactor controls how fast the reward decays; Monero's main
	// curve halves the remaining supply roughly yearly in its early life.
	EmissionSpeedFactor float64
	// baseHashrate and hashrateGrowth parameterize the synthetic network
	// hashrate curve (hashes/second).
	baseHashrate   float64
	hashrateGrowth float64
}

// NewMoneroNetwork returns a network model with Monero-like constants.
func NewMoneroNetwork() *Network {
	return &Network{
		Epochs:              MoneroEpochs,
		BlockTime:           120,
		Launch:              time.Date(2014, 4, 18, 0, 0, 0, 0, time.UTC),
		TailEmission:        0.6,
		InitialReward:       17.6,
		EmissionSpeedFactor: 0.40, // fraction of remaining main emission paid per year
		baseHashrate:        5e6,  // ~5 MH/s in 2014
		hashrateGrowth:      1.05, // ~5 MH/s doubling roughly every 14 months
	}
}

// yearsSinceLaunch returns fractional years between launch and t, clamped at 0.
func (n *Network) yearsSinceLaunch(t time.Time) float64 {
	if t.Before(n.Launch) {
		return 0
	}
	return t.Sub(n.Launch).Hours() / (24 * 365.25)
}

// BlockReward returns the approximate block reward at time t: an exponentially
// decaying main emission with a floor at the tail emission.
func (n *Network) BlockReward(t time.Time) float64 {
	y := n.yearsSinceLaunch(t)
	r := n.InitialReward * math.Exp(-n.EmissionSpeedFactor*y)
	if r < n.TailEmission {
		return n.TailEmission
	}
	return r
}

// CirculatingSupply returns the approximate coins in circulation at time t by
// integrating the block reward curve. The paper's headline "4.4% of Monero in
// circulation" estimate divides total malware-attributed payouts by this
// quantity.
func (n *Network) CirculatingSupply(t time.Time) float64 {
	y := n.yearsSinceLaunch(t)
	if y <= 0 {
		return 0
	}
	blocksPerYear := (365.25 * 24 * 3600) / n.BlockTime
	// Integrate the decaying reward analytically, then add tail emission for
	// the period where the main curve is below the tail.
	// Main curve: R(t) = R0 * exp(-k t); integral = R0/k (1 - exp(-k y)).
	k := n.EmissionSpeedFactor
	mainCoins := n.InitialReward / k * (1 - math.Exp(-k*y)) * blocksPerYear
	// Tail emission kicks in when R(t) < tail.
	yTail := math.Log(n.InitialReward/n.TailEmission) / k
	if y > yTail {
		mainAtTail := n.InitialReward / k * (1 - math.Exp(-k*yTail)) * blocksPerYear
		tailCoins := n.TailEmission * blocksPerYear * (y - yTail)
		return mainAtTail + tailCoins
	}
	return mainCoins
}

// NetworkHashrate returns the approximate total network hashrate (H/s) at t,
// following a smooth exponential growth curve. Only the order of magnitude
// matters: it determines what share of block rewards a botnet of a given size
// can expect.
func (n *Network) NetworkHashrate(t time.Time) float64 {
	y := n.yearsSinceLaunch(t)
	return n.baseHashrate * math.Pow(2, y*n.hashrateGrowth)
}

// ExpectedRewardPerHash returns the expected XMR earned per hash submitted at
// time t: blockReward / (networkHashrate * blockTime).
func (n *Network) ExpectedRewardPerHash(t time.Time) float64 {
	hr := n.NetworkHashrate(t)
	if hr <= 0 {
		return 0
	}
	return n.BlockReward(t) / (hr * n.BlockTime)
}

// ExpectedReward returns the expected XMR a worker mining at `hashrate` H/s
// earns over the duration d ending at t.
func (n *Network) ExpectedReward(hashrate float64, d time.Duration, t time.Time) float64 {
	if hashrate <= 0 || d <= 0 {
		return 0
	}
	hashes := hashrate * d.Seconds()
	return hashes * n.ExpectedRewardPerHash(t)
}

// TypicalVictimHashrate is the hashrate (H/s) of one infected desktop-class
// machine running CryptoNight on CPU, used by the ecosystem simulator to size
// botnet earnings (a few hundred H/s was typical for the era).
const TypicalVictimHashrate = 250.0
