package pow

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

func TestForkDates(t *testing.T) {
	forks := ForkDates(MoneroEpochs)
	if len(forks) != 3 {
		t.Fatalf("forks = %d, want 3", len(forks))
	}
	want := []time.Time{date(2018, 4, 6), date(2018, 10, 18), date(2019, 3, 9)}
	for i, w := range want {
		if !forks[i].Equal(w) {
			t.Errorf("fork[%d] = %v, want %v", i, forks[i], w)
		}
	}
	if got := ForkDates(nil); got != nil {
		t.Errorf("ForkDates(nil) = %v", got)
	}
	if got := ForkDates(MoneroEpochs[:1]); got != nil {
		t.Errorf("ForkDates(single epoch) = %v", got)
	}
}

func TestAlgorithmAt(t *testing.T) {
	tests := []struct {
		t    time.Time
		want string
	}{
		{date(2013, 1, 1), "cryptonight"}, // before launch: first algorithm
		{date(2016, 6, 1), "cryptonight"},
		{date(2018, 4, 5), "cryptonight"},
		{date(2018, 4, 6), "cryptonight-v7"},
		{date(2018, 10, 17), "cryptonight-v7"},
		{date(2018, 10, 18), "cryptonight-v8"},
		{date(2019, 3, 9), "cryptonight-r"},
		{date(2019, 4, 30), "cryptonight-r"},
	}
	for _, tt := range tests {
		if got := AlgorithmAt(MoneroEpochs, tt.t); got != tt.want {
			t.Errorf("AlgorithmAt(%v) = %q, want %q", tt.t, got, tt.want)
		}
	}
	if got := AlgorithmAt(nil, date(2018, 1, 1)); got != "" {
		t.Errorf("AlgorithmAt(no epochs) = %q", got)
	}
}

func TestIsValidShare(t *testing.T) {
	// A miner built for the original algorithm stops being valid at the
	// April 2018 fork — the mechanism behind the die-offs of Table XI.
	if !IsValidShare(MoneroEpochs, "cryptonight", date(2018, 3, 1)) {
		t.Error("pre-fork share from cryptonight miner should be valid")
	}
	if IsValidShare(MoneroEpochs, "cryptonight", date(2018, 5, 1)) {
		t.Error("post-fork share from outdated miner should be invalid")
	}
	if !IsValidShare(MoneroEpochs, "cryptonight-v7", date(2018, 5, 1)) {
		t.Error("updated miner should be valid after the fork")
	}
	if IsValidShare(MoneroEpochs, "", date(2018, 5, 1)) {
		t.Error("empty algorithm should never be valid")
	}
}

func TestBlockRewardDecaysToTail(t *testing.T) {
	n := NewMoneroNetwork()
	early := n.BlockReward(date(2014, 6, 1))
	mid := n.BlockReward(date(2017, 1, 1))
	late := n.BlockReward(date(2030, 1, 1))
	if early <= mid || mid <= late {
		t.Errorf("reward should decay: %v, %v, %v", early, mid, late)
	}
	if late != n.TailEmission {
		t.Errorf("far-future reward = %v, want tail emission %v", late, n.TailEmission)
	}
	if early > n.InitialReward {
		t.Errorf("early reward %v should not exceed initial reward %v", early, n.InitialReward)
	}
}

func TestCirculatingSupplyMonotonic(t *testing.T) {
	n := NewMoneroNetwork()
	prev := 0.0
	for year := 2014; year <= 2022; year++ {
		s := n.CirculatingSupply(date(year, 12, 31))
		if s < prev {
			t.Fatalf("supply decreased at %d: %v < %v", year, s, prev)
		}
		prev = s
	}
	if n.CirculatingSupply(date(2013, 1, 1)) != 0 {
		t.Error("supply before launch should be 0")
	}
}

func TestCirculatingSupplyOrderOfMagnitude(t *testing.T) {
	// Real Monero circulation in April 2019 was ~17M XMR; the model should
	// land within a factor of ~2 so the "share of circulation" experiment is
	// meaningful.
	n := NewMoneroNetwork()
	supply := n.CirculatingSupply(date(2019, 4, 30))
	if supply < 8e6 || supply > 35e6 {
		t.Errorf("April 2019 supply = %v, want within [8M, 35M]", supply)
	}
}

func TestNetworkHashrateGrows(t *testing.T) {
	n := NewMoneroNetwork()
	h2015 := n.NetworkHashrate(date(2015, 1, 1))
	h2018 := n.NetworkHashrate(date(2018, 1, 1))
	if h2018 <= h2015 {
		t.Errorf("hashrate should grow: 2015=%v 2018=%v", h2015, h2018)
	}
}

func TestExpectedRewardPerHashPositiveAndTiny(t *testing.T) {
	n := NewMoneroNetwork()
	r := n.ExpectedRewardPerHash(date(2018, 1, 1))
	if r <= 0 || r > 1e-6 {
		t.Errorf("reward per hash = %v, want tiny positive value", r)
	}
}

func TestExpectedReward(t *testing.T) {
	n := NewMoneroNetwork()
	at := date(2017, 6, 1)
	// A 2000-bot botnet mining for 30 days.
	botnet := 2000 * TypicalVictimHashrate
	reward := n.ExpectedReward(botnet, 30*24*time.Hour, at)
	single := n.ExpectedReward(TypicalVictimHashrate, 30*24*time.Hour, at)
	if reward <= 0 || single <= 0 {
		t.Fatalf("rewards should be positive: %v, %v", reward, single)
	}
	if math.Abs(reward/single-2000) > 1 {
		t.Errorf("reward should scale linearly with hashrate: ratio = %v", reward/single)
	}
	// A medium-sized botnet mining for a month in 2017 should earn a
	// non-trivial but not absurd amount (order 10-10000 XMR).
	if reward < 1 || reward > 1e5 {
		t.Errorf("2000-bot monthly reward = %v XMR, outside plausible range", reward)
	}
	if n.ExpectedReward(0, time.Hour, at) != 0 {
		t.Error("zero hashrate should earn zero")
	}
	if n.ExpectedReward(100, 0, at) != 0 {
		t.Error("zero duration should earn zero")
	}
}

func TestExpectedRewardLinearInDurationProperty(t *testing.T) {
	n := NewMoneroNetwork()
	at := date(2018, 6, 1)
	f := func(hours uint8) bool {
		h := int(hours%100) + 1
		r1 := n.ExpectedReward(500, time.Duration(h)*time.Hour, at)
		r2 := n.ExpectedReward(500, time.Duration(2*h)*time.Hour, at)
		return math.Abs(r2-2*r1) < 1e-9*math.Max(1, r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAlgorithmAtUnsortedEpochs(t *testing.T) {
	// Epochs given out of order must still resolve correctly.
	shuffled := []Epoch{MoneroEpochs[2], MoneroEpochs[0], MoneroEpochs[3], MoneroEpochs[1]}
	if got := AlgorithmAt(shuffled, date(2018, 6, 1)); got != "cryptonight-v7" {
		t.Errorf("AlgorithmAt(unsorted) = %q, want cryptonight-v7", got)
	}
}

func BenchmarkCirculatingSupply(b *testing.B) {
	n := NewMoneroNetwork()
	at := date(2019, 4, 30)
	for i := 0; i < b.N; i++ {
		n.CirculatingSupply(at)
	}
}
