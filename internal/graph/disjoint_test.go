package graph

import (
	"fmt"
	"reflect"
	"testing"
)

// TestDisjointSetExportRestore verifies that a restored forest is
// indistinguishable from the original: same roots for every element, and the
// same merge decisions (rank-dependent) on subsequent unions.
func TestDisjointSetExportRestore(t *testing.T) {
	orig := NewDisjointSet[string]()
	var elems []string
	for i := 0; i < 64; i++ {
		elems = append(elems, fmt.Sprintf("e%02d", i))
	}
	// A mix of chains, stars and singletons exercises rank and compression.
	for i := 0; i+1 < 32; i += 2 {
		orig.Union(elems[i], elems[i+1])
	}
	for i := 0; i < 16; i++ {
		orig.Union(elems[0], elems[i])
	}
	for i := 40; i < 48; i++ {
		orig.Find(elems[i]) // singletons via Find
	}

	parent, rank := orig.Export()
	restored := RestoreDisjointSet(parent, rank)

	for _, e := range elems[:48] {
		if got, want := restored.Find(e), orig.Find(e); got != want {
			t.Fatalf("Find(%s) = %s after restore, want %s", e, got, want)
		}
	}

	// Future unions must pick identical survivors on both forests.
	pairs := [][2]string{{"e00", "e33"}, {"e33", "e35"}, {"e40", "e41"}, {"e02", "e40"}, {"e50", "e51"}}
	for _, p := range pairs {
		r1, a1, m1 := orig.Union(p[0], p[1])
		r2, a2, m2 := restored.Union(p[0], p[1])
		if r1 != r2 || a1 != a2 || m1 != m2 {
			t.Fatalf("Union(%s,%s) diverged: orig (%s,%s,%v) restored (%s,%s,%v)",
				p[0], p[1], r1, a1, m1, r2, a2, m2)
		}
	}
}

// TestDisjointSetExportIsCopy ensures Export hands back detached tables.
func TestDisjointSetExportIsCopy(t *testing.T) {
	d := NewDisjointSet[int]()
	d.Union(1, 2)
	parent, rank := d.Export()
	wantParent, wantRank := d.Export()
	parent[99] = 99
	rank[1] = 42
	gotParent, gotRank := d.Export()
	if !reflect.DeepEqual(gotParent, wantParent) || !reflect.DeepEqual(gotRank, wantRank) {
		t.Fatal("mutating exported tables leaked into the forest")
	}
}
