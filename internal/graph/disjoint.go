package graph

// DisjointSet is a generic union-find structure with path compression and
// union by rank. It backs the batch component extraction, the incremental
// campaign aggregator and the streaming engine's dropper-relation tracking,
// so the subtle pointer-juggling lives in exactly one place.
type DisjointSet[K comparable] struct {
	parent map[K]K
	rank   map[K]int
}

// NewDisjointSet returns an empty disjoint-set forest.
func NewDisjointSet[K comparable]() *DisjointSet[K] {
	return &DisjointSet[K]{parent: map[K]K{}, rank: map[K]int{}}
}

// Find returns the representative of x's set, adding x as a singleton when
// unseen.
func (d *DisjointSet[K]) Find(x K) K {
	if _, ok := d.parent[x]; !ok {
		d.parent[x] = x
		return x
	}
	root := x
	for d.parent[root] != root {
		root = d.parent[root]
	}
	for d.parent[x] != root {
		d.parent[x], x = root, d.parent[x]
	}
	return root
}

// Union merges the sets of a and b. It returns the surviving root, the
// absorbed former root, and whether a merge happened (false when both were
// already in the same set), so callers can combine per-set payloads.
func (d *DisjointSet[K]) Union(a, b K) (root, absorbed K, merged bool) {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return ra, rb, false
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	return ra, rb, true
}
