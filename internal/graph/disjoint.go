package graph

// DisjointSet is a generic union-find structure with path compression and
// union by rank. It backs the batch component extraction, the incremental
// campaign aggregator and the streaming engine's dropper-relation tracking,
// so the subtle pointer-juggling lives in exactly one place.
type DisjointSet[K comparable] struct {
	parent map[K]K
	rank   map[K]int
}

// NewDisjointSet returns an empty disjoint-set forest.
func NewDisjointSet[K comparable]() *DisjointSet[K] {
	return &DisjointSet[K]{parent: map[K]K{}, rank: map[K]int{}}
}

// Find returns the representative of x's set, adding x as a singleton when
// unseen.
func (d *DisjointSet[K]) Find(x K) K {
	if _, ok := d.parent[x]; !ok {
		d.parent[x] = x
		return x
	}
	root := x
	for d.parent[root] != root {
		root = d.parent[root]
	}
	for d.parent[x] != root {
		d.parent[x], x = root, d.parent[x]
	}
	return root
}

// Export returns copies of the forest's internal parent and rank tables.
// Together they capture the exact structure — including which element
// represents each set and the accumulated ranks — so a forest restored with
// RestoreDisjointSet keeps answering Find with the same roots and keeps
// choosing the same survivors in future Unions. The snapshot/recovery path
// of the streaming engine depends on both properties.
func (d *DisjointSet[K]) Export() (parent map[K]K, rank map[K]int) {
	parent = make(map[K]K, len(d.parent))
	for k, v := range d.parent {
		parent[k] = v
	}
	rank = make(map[K]int, len(d.rank))
	for k, v := range d.rank {
		rank[k] = v
	}
	return parent, rank
}

// RestoreDisjointSet rebuilds a forest from tables previously returned by
// Export. The maps are copied; the caller keeps ownership. Rank entries with
// value zero are dropped, matching the representation of a live forest
// (which only materializes ranks once they are incremented).
func RestoreDisjointSet[K comparable](parent map[K]K, rank map[K]int) *DisjointSet[K] {
	d := NewDisjointSet[K]()
	for k, v := range parent {
		d.parent[k] = v
	}
	for k, v := range rank {
		if v != 0 {
			d.rank[k] = v
		}
	}
	return d
}

// Union merges the sets of a and b. It returns the surviving root, the
// absorbed former root, and whether a merge happened (false when both were
// already in the same set), so callers can combine per-set payloads.
func (d *DisjointSet[K]) Union(a, b K) (root, absorbed K, merged bool) {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return ra, rb, false
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	return ra, rb, true
}
