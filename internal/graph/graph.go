// Package graph provides the typed undirected graph and connected-component
// machinery used by the campaign aggregation stage.
//
// Nodes are (kind, value) pairs — samples, wallets, hosting URLs, domain
// aliases, proxies and known operations — and edges carry the grouping
// feature that created them (§III-E of the paper). Each connected component of
// the graph is one campaign.
package graph

import (
	"fmt"
	"sort"

	"cryptomining/internal/model"
)

// NodeID identifies a node as the pair (kind, value).
type NodeID struct {
	Kind  model.NodeKind
	Value string
}

// String renders the node as "kind:value".
func (n NodeID) String() string { return string(n.Kind) + ":" + n.Value }

// Edge is an undirected edge labeled with the grouping feature that created it.
type Edge struct {
	A, B NodeID
	Kind model.EdgeKind
}

// Graph is an undirected multigraph with typed nodes and labeled edges.
type Graph struct {
	nodes map[NodeID]struct{}
	adj   map[NodeID][]Edge
	edges []Edge
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[NodeID]struct{}),
		adj:   make(map[NodeID][]Edge),
	}
}

// AddNode inserts a node; adding an existing node is a no-op.
func (g *Graph) AddNode(id NodeID) {
	g.nodes[id] = struct{}{}
}

// HasNode reports whether the node exists.
func (g *Graph) HasNode(id NodeID) bool {
	_, ok := g.nodes[id]
	return ok
}

// AddEdge inserts an undirected edge between a and b (adding the nodes if
// necessary) labeled with the given grouping feature. Self-loops are ignored.
func (g *Graph) AddEdge(a, b NodeID, kind model.EdgeKind) {
	if a == b {
		g.AddNode(a)
		return
	}
	g.AddNode(a)
	g.AddNode(b)
	e := Edge{A: a, B: b, Kind: kind}
	g.adj[a] = append(g.adj[a], e)
	g.adj[b] = append(g.adj[b], e)
	g.edges = append(g.edges, e)
}

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int { return len(g.nodes) }

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int { return len(g.edges) }

// Edges returns a copy of all edges.
func (g *Graph) Edges() []Edge {
	return append([]Edge(nil), g.edges...)
}

// Nodes returns all nodes sorted by kind then value (deterministic order).
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Neighbors returns the distinct neighbor nodes of id.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	seen := map[NodeID]bool{}
	var out []NodeID
	for _, e := range g.adj[id] {
		other := e.A
		if other == id {
			other = e.B
		}
		if !seen[other] {
			seen[other] = true
			out = append(out, other)
		}
	}
	return out
}

// Degree returns the number of incident edges (counting multi-edges).
func (g *Graph) Degree(id NodeID) int { return len(g.adj[id]) }

// Component is one connected component: its nodes grouped by kind and the
// edges internal to it.
type Component struct {
	// Nodes lists every node in the component, deterministic order.
	Nodes []NodeID
	// Edges lists the edges internal to the component.
	Edges []Edge
	// ByKind indexes node values by node kind.
	ByKind map[model.NodeKind][]string
	// EdgeKinds counts edges by grouping feature.
	EdgeKinds map[model.EdgeKind]int
}

// Values returns the node values of the given kind, sorted.
func (c *Component) Values(kind model.NodeKind) []string {
	vals := append([]string(nil), c.ByKind[kind]...)
	sort.Strings(vals)
	return vals
}

// ConnectedComponents returns every connected component of the graph. Isolated
// nodes form singleton components. Components are returned in a deterministic
// order (by their smallest node).
func (g *Graph) ConnectedComponents() []*Component {
	uf := NewDisjointSet[NodeID]()
	for n := range g.nodes {
		uf.Find(n)
	}
	for _, e := range g.edges {
		uf.Union(e.A, e.B)
	}

	groups := map[NodeID][]NodeID{}
	for n := range g.nodes {
		root := uf.Find(n)
		groups[root] = append(groups[root], n)
	}

	comps := make([]*Component, 0, len(groups))
	for _, nodes := range groups {
		sort.Slice(nodes, func(i, j int) bool {
			if nodes[i].Kind != nodes[j].Kind {
				return nodes[i].Kind < nodes[j].Kind
			}
			return nodes[i].Value < nodes[j].Value
		})
		c := &Component{
			Nodes:     nodes,
			ByKind:    map[model.NodeKind][]string{},
			EdgeKinds: map[model.EdgeKind]int{},
		}
		for _, n := range nodes {
			c.ByKind[n.Kind] = append(c.ByKind[n.Kind], n.Value)
		}
		comps = append(comps, c)
	}

	// Assign edges to their component via the root of either endpoint.
	rootToComp := map[NodeID]*Component{}
	for _, c := range comps {
		rootToComp[uf.Find(c.Nodes[0])] = c
	}
	for _, e := range g.edges {
		c := rootToComp[uf.Find(e.A)]
		c.Edges = append(c.Edges, e)
		c.EdgeKinds[e.Kind]++
	}

	sort.Slice(comps, func(i, j int) bool {
		a, b := comps[i].Nodes[0], comps[j].Nodes[0]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Value < b.Value
	})
	return comps
}

// Subgraph returns a new graph containing only the nodes for which keep
// returns true, and the edges between kept nodes. Used by ablation benchmarks
// that drop individual grouping features.
func (g *Graph) Subgraph(keepEdge func(Edge) bool) *Graph {
	out := New()
	for n := range g.nodes {
		out.AddNode(n)
	}
	for _, e := range g.edges {
		if keepEdge(e) {
			out.AddEdge(e.A, e.B, e.Kind)
		}
	}
	return out
}

// Stats summarizes the graph for reporting.
type Stats struct {
	Nodes            int
	Edges            int
	Components       int
	NodesByKind      map[model.NodeKind]int
	EdgesByKind      map[model.EdgeKind]int
	LargestComponent int
}

// ComputeStats returns summary statistics of the graph.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		Nodes:       g.NodeCount(),
		Edges:       g.EdgeCount(),
		NodesByKind: map[model.NodeKind]int{},
		EdgesByKind: map[model.EdgeKind]int{},
	}
	for n := range g.nodes {
		s.NodesByKind[n.Kind]++
	}
	for _, e := range g.edges {
		s.EdgesByKind[e.Kind]++
	}
	comps := g.ConnectedComponents()
	s.Components = len(comps)
	for _, c := range comps {
		if len(c.Nodes) > s.LargestComponent {
			s.LargestComponent = len(c.Nodes)
		}
	}
	return s
}

// String renders an edge for debugging.
func (e Edge) String() string {
	return fmt.Sprintf("%s --[%s]-- %s", e.A, e.Kind, e.B)
}
