package graph

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"cryptomining/internal/model"
)

func sample(v string) NodeID  { return NodeID{Kind: model.NodeSample, Value: v} }
func walletN(v string) NodeID { return NodeID{Kind: model.NodeWallet, Value: v} }

func TestAddNodeAndEdge(t *testing.T) {
	g := New()
	g.AddNode(sample("s1"))
	if !g.HasNode(sample("s1")) {
		t.Error("node s1 should exist")
	}
	if g.HasNode(sample("s2")) {
		t.Error("node s2 should not exist")
	}
	g.AddEdge(sample("s1"), walletN("w1"), model.EdgeSameIdentifier)
	if g.NodeCount() != 2 {
		t.Errorf("NodeCount = %d, want 2", g.NodeCount())
	}
	if g.EdgeCount() != 1 {
		t.Errorf("EdgeCount = %d, want 1", g.EdgeCount())
	}
	if g.Degree(sample("s1")) != 1 || g.Degree(walletN("w1")) != 1 {
		t.Error("degrees should both be 1")
	}
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	g.AddNode(sample("s1"))
	g.AddNode(sample("s1"))
	if g.NodeCount() != 1 {
		t.Errorf("NodeCount = %d, want 1", g.NodeCount())
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := New()
	g.AddEdge(sample("s1"), sample("s1"), model.EdgeAncestor)
	if g.EdgeCount() != 0 {
		t.Errorf("self-loop should be ignored, EdgeCount = %d", g.EdgeCount())
	}
	if g.NodeCount() != 1 {
		t.Errorf("self-loop should still add the node, NodeCount = %d", g.NodeCount())
	}
}

func TestNeighbors(t *testing.T) {
	g := New()
	g.AddEdge(sample("s1"), walletN("w1"), model.EdgeSameIdentifier)
	g.AddEdge(sample("s1"), walletN("w2"), model.EdgeSameIdentifier)
	g.AddEdge(sample("s1"), walletN("w1"), model.EdgeProxy) // multi-edge
	nbrs := g.Neighbors(sample("s1"))
	if len(nbrs) != 2 {
		t.Errorf("Neighbors = %v, want 2 distinct", nbrs)
	}
	if g.Degree(sample("s1")) != 3 {
		t.Errorf("Degree with multi-edge = %d, want 3", g.Degree(sample("s1")))
	}
}

func TestConnectedComponentsTwoCampaigns(t *testing.T) {
	g := New()
	// Campaign 1: two samples sharing a wallet.
	g.AddEdge(sample("s1"), walletN("w1"), model.EdgeSameIdentifier)
	g.AddEdge(sample("s2"), walletN("w1"), model.EdgeSameIdentifier)
	// Campaign 2: one sample, separate wallet, linked by a CNAME domain.
	g.AddEdge(sample("s3"), walletN("w2"), model.EdgeSameIdentifier)
	g.AddEdge(sample("s3"), NodeID{Kind: model.NodeDomain, Value: "xt.freebuf.info"}, model.EdgeCNAMEAlias)
	// Isolated ancillary node.
	g.AddNode(NodeID{Kind: model.NodeAncillary, Value: "a1"})

	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	var sizes []int
	for _, c := range comps {
		sizes = append(sizes, len(c.Nodes))
	}
	counts := map[int]int{}
	for _, s := range sizes {
		counts[s]++
	}
	if counts[3] != 2 || counts[1] != 1 {
		t.Errorf("component sizes = %v, want two of size 3 and one of size 1", sizes)
	}
}

func TestComponentByKindAndValues(t *testing.T) {
	g := New()
	g.AddEdge(sample("s1"), walletN("wB"), model.EdgeSameIdentifier)
	g.AddEdge(sample("s1"), walletN("wA"), model.EdgeSameIdentifier)
	comps := g.ConnectedComponents()
	if len(comps) != 1 {
		t.Fatalf("components = %d, want 1", len(comps))
	}
	wallets := comps[0].Values(model.NodeWallet)
	if len(wallets) != 2 || wallets[0] != "wA" || wallets[1] != "wB" {
		t.Errorf("wallet values = %v, want sorted [wA wB]", wallets)
	}
	samples := comps[0].Values(model.NodeSample)
	if len(samples) != 1 || samples[0] != "s1" {
		t.Errorf("sample values = %v", samples)
	}
	if comps[0].EdgeKinds[model.EdgeSameIdentifier] != 2 {
		t.Errorf("edge kinds = %v", comps[0].EdgeKinds)
	}
}

func TestTransitiveAggregation(t *testing.T) {
	// s1-w1, s2-w1, s2-w2, s3-w2: all four samples/wallets must end in one
	// component (the wallet-bridging behaviour campaigns exhibit).
	g := New()
	g.AddEdge(sample("s1"), walletN("w1"), model.EdgeSameIdentifier)
	g.AddEdge(sample("s2"), walletN("w1"), model.EdgeSameIdentifier)
	g.AddEdge(sample("s2"), walletN("w2"), model.EdgeSameIdentifier)
	g.AddEdge(sample("s3"), walletN("w2"), model.EdgeSameIdentifier)
	comps := g.ConnectedComponents()
	if len(comps) != 1 {
		t.Fatalf("components = %d, want 1", len(comps))
	}
	if len(comps[0].Values(model.NodeSample)) != 3 {
		t.Errorf("samples in component = %v", comps[0].Values(model.NodeSample))
	}
}

func TestSubgraphDropEdgeKind(t *testing.T) {
	g := New()
	g.AddEdge(sample("s1"), walletN("w1"), model.EdgeSameIdentifier)
	g.AddEdge(sample("s2"), NodeID{Kind: model.NodeProxy, Value: "p:3333"}, model.EdgeProxy)
	g.AddEdge(sample("s1"), NodeID{Kind: model.NodeProxy, Value: "p:3333"}, model.EdgeProxy)

	full := g.ConnectedComponents()
	if len(full) != 1 {
		t.Fatalf("full graph components = %d, want 1", len(full))
	}
	sub := g.Subgraph(func(e Edge) bool { return e.Kind != model.EdgeProxy })
	subComps := sub.ConnectedComponents()
	if len(subComps) != 3 {
		t.Errorf("without proxy edges components = %d, want 3 (s1-w1, s2, proxy)", len(subComps))
	}
}

func TestComputeStats(t *testing.T) {
	g := New()
	g.AddEdge(sample("s1"), walletN("w1"), model.EdgeSameIdentifier)
	g.AddEdge(sample("s2"), walletN("w1"), model.EdgeSameIdentifier)
	g.AddNode(sample("s3"))
	s := g.ComputeStats()
	if s.Nodes != 4 || s.Edges != 2 || s.Components != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.NodesByKind[model.NodeSample] != 3 || s.NodesByKind[model.NodeWallet] != 1 {
		t.Errorf("nodes by kind = %v", s.NodesByKind)
	}
	if s.EdgesByKind[model.EdgeSameIdentifier] != 2 {
		t.Errorf("edges by kind = %v", s.EdgesByKind)
	}
	if s.LargestComponent != 3 {
		t.Errorf("largest component = %d, want 3", s.LargestComponent)
	}
}

func TestNodesDeterministicOrder(t *testing.T) {
	g := New()
	g.AddNode(walletN("w2"))
	g.AddNode(sample("s9"))
	g.AddNode(walletN("w1"))
	g.AddNode(sample("s1"))
	n1 := g.Nodes()
	n2 := g.Nodes()
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatal("Nodes() order not deterministic")
		}
	}
	for i := 1; i < len(n1); i++ {
		if n1[i-1].Kind > n1[i].Kind || (n1[i-1].Kind == n1[i].Kind && n1[i-1].Value > n1[i].Value) {
			t.Fatal("Nodes() not sorted")
		}
	}
}

func TestComponentsPartitionProperty(t *testing.T) {
	// Property: components partition the node set (every node in exactly one).
	f := func(edgeSeeds []uint16) bool {
		g := New()
		for _, s := range edgeSeeds {
			a := sample(fmt.Sprintf("s%d", s%32))
			b := walletN(fmt.Sprintf("w%d", (s/32)%16))
			g.AddEdge(a, b, model.EdgeSameIdentifier)
		}
		comps := g.ConnectedComponents()
		seen := map[NodeID]int{}
		total := 0
		for _, c := range comps {
			for _, n := range c.Nodes {
				seen[n]++
				total++
			}
		}
		if total != g.NodeCount() {
			return false
		}
		for _, count := range seen {
			if count != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEdgesWithinComponentProperty(t *testing.T) {
	// Property: the sum of component edge counts equals the graph edge count.
	f := func(edgeSeeds []uint16) bool {
		g := New()
		for _, s := range edgeSeeds {
			a := sample(fmt.Sprintf("s%d", s%64))
			b := sample(fmt.Sprintf("s%d", (s/64)%64))
			g.AddEdge(a, b, model.EdgeAncestor)
		}
		comps := g.ConnectedComponents()
		total := 0
		for _, c := range comps {
			total += len(c.Edges)
		}
		return total == g.EdgeCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEdgeString(t *testing.T) {
	e := Edge{A: sample("s1"), B: walletN("w1"), Kind: model.EdgeSameIdentifier}
	want := "sample:s1 --[same-identifier]-- wallet:w1"
	if got := e.String(); got != want {
		t.Errorf("Edge.String() = %q, want %q", got, want)
	}
}

func TestLargeRandomGraphComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := New()
	// Build 100 star-shaped campaigns that must remain disjoint.
	for c := 0; c < 100; c++ {
		w := walletN(fmt.Sprintf("campaign%d-wallet", c))
		for s := 0; s < 20; s++ {
			g.AddEdge(sample(fmt.Sprintf("c%d-s%d", c, s)), w, model.EdgeSameIdentifier)
		}
	}
	_ = rng
	comps := g.ConnectedComponents()
	if len(comps) != 100 {
		t.Errorf("components = %d, want 100", len(comps))
	}
	for _, c := range comps {
		if len(c.Nodes) != 21 {
			t.Errorf("component size = %d, want 21", len(c.Nodes))
		}
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := New()
	for c := 0; c < 1000; c++ {
		w := walletN(fmt.Sprintf("w%d", c))
		for s := 0; s < 10; s++ {
			g.AddEdge(sample(fmt.Sprintf("c%d-s%d", c, s)), w, model.EdgeSameIdentifier)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ConnectedComponents()
	}
}
