package yara

import (
	"strings"
	"testing"
)

func TestParseSimpleRule(t *testing.T) {
	src := `
rule TestRule : tag1 tag2
{
    meta:
        author = "test"
        description = "a test rule"
    strings:
        $a = "hello"
        $b = "world" nocase
        $h = { DE AD BE EF }
    condition:
        any of them
}
`
	rs, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse error: %v", err)
	}
	if len(rs.Rules) != 1 {
		t.Fatalf("got %d rules, want 1", len(rs.Rules))
	}
	r := rs.Rules[0]
	if r.Name != "TestRule" {
		t.Errorf("rule name = %q", r.Name)
	}
	if len(r.Tags) != 2 || r.Tags[0] != "tag1" {
		t.Errorf("tags = %v", r.Tags)
	}
	if r.Meta["author"] != "test" {
		t.Errorf("meta author = %q", r.Meta["author"])
	}
	if len(r.Strings) != 3 {
		t.Fatalf("strings = %d, want 3", len(r.Strings))
	}
	if !r.Strings[1].NoCase {
		t.Error("string $b should be nocase")
	}
	if !r.Strings[2].IsHex || len(r.Strings[2].Pattern) != 4 {
		t.Errorf("hex string not parsed: %+v", r.Strings[2])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no rules", "// just a comment"},
		{"bad string", "rule R {\n strings:\n $a = unquoted\n condition:\n any of them\n}"},
		{"bad hex", "rule R {\n strings:\n $a = { ZZ }\n condition:\n any of them\n}"},
		{"undefined ident", "rule R {\n strings:\n $a = \"x\"\n condition:\n $a and $b\n}"},
		{"bad condition", "rule R {\n strings:\n $a = \"x\"\n condition:\n $a and and\n}"},
	}
	for _, tt := range cases {
		if _, err := Parse(tt.src); err == nil {
			t.Errorf("%s: expected parse error", tt.name)
		}
	}
}

func TestMatchAnyOfThem(t *testing.T) {
	rs, err := Parse(`rule R {
 strings:
  $a = "stratum+tcp://"
  $b = "nothing-here"
 condition:
  any of them
}`)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("connect to stratum+tcp://pool.example.com:3333")
	results := rs.Match(content)
	if len(results) != 1 || !results[0].Matched {
		t.Fatalf("expected match, got %v", results)
	}
	if len(results[0].MatchedStrings) != 1 || results[0].MatchedStrings[0] != "$a" {
		t.Errorf("matched strings = %v", results[0].MatchedStrings)
	}
	if rs.AnyMatch([]byte("benign content")) {
		t.Error("benign content should not match")
	}
}

func TestMatchAllOfThem(t *testing.T) {
	rs, err := Parse(`rule R {
 strings:
  $a = "alpha"
  $b = "beta"
 condition:
  all of them
}`)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.AnyMatch([]byte("alpha and beta together")) {
		t.Error("both strings present should match")
	}
	if rs.AnyMatch([]byte("only alpha present")) {
		t.Error("one string missing should not match all-of-them")
	}
}

func TestMatchNOfThem(t *testing.T) {
	rs, err := Parse(`rule R {
 strings:
  $a = "one"
  $b = "two"
  $c = "three"
 condition:
  2 of them
}`)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.AnyMatch([]byte("one and two")) {
		t.Error("2 strings should satisfy 2-of-them")
	}
	if rs.AnyMatch([]byte("only one here")) {
		t.Error("1 string should not satisfy 2-of-them")
	}
}

func TestMatchBooleanExpr(t *testing.T) {
	rs, err := Parse(`rule R {
 strings:
  $pool = "minexmr.com"
  $login = "login"
  $benign = "EULA"
 condition:
  ($pool or $login) and not $benign
}`)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.AnyMatch([]byte("config pool=minexmr.com user=x")) {
		t.Error("pool string without benign marker should match")
	}
	if rs.AnyMatch([]byte("minexmr.com mentioned in EULA text")) {
		t.Error("benign marker should suppress match via not")
	}
	if rs.AnyMatch([]byte("unrelated content")) {
		t.Error("no strings should not match")
	}
}

func TestMatchNoCase(t *testing.T) {
	rs, err := Parse(`rule R {
 strings:
  $a = "XMRig" nocase
 condition:
  any of them
}`)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.AnyMatch([]byte("running XMRIG v5.0")) {
		t.Error("nocase should match uppercase")
	}
	if !rs.AnyMatch([]byte("running xmrig v5.0")) {
		t.Error("nocase should match lowercase")
	}
}

func TestMatchHexString(t *testing.T) {
	rs, err := Parse(`rule R {
 strings:
  $h = { 4D 5A 90 00 }
 condition:
  any of them
}`)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.AnyMatch([]byte{0x00, 0x4D, 0x5A, 0x90, 0x00, 0xFF}) {
		t.Error("hex pattern should match")
	}
	if rs.AnyMatch([]byte{0x4D, 0x5A, 0x91}) {
		t.Error("partial hex pattern should not match")
	}
}

func TestMultipleRules(t *testing.T) {
	src := `
rule A {
 strings:
  $a = "aaa"
 condition:
  any of them
}
rule B {
 strings:
  $b = "bbb"
 condition:
  any of them
}
`
	rs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rs.Rules))
	}
	results := rs.Match([]byte("aaa and bbb"))
	if len(results) != 2 {
		t.Errorf("both rules should match, got %d", len(results))
	}
}

func TestBuiltinMinerRulesParse(t *testing.T) {
	rs := MinerRules()
	if len(rs.Rules) != 4 {
		t.Errorf("built-in rules = %d, want 4", len(rs.Rules))
	}
}

func TestBuiltinMinerRulesDetection(t *testing.T) {
	rs := MinerRules()
	positives := []string{
		"xmrig.exe -o stratum+tcp://pool.minexmr.com:4444 -u 4AAA -p x",
		`{"method":"login","params":{"login":"4ABC","pass":"x"}}`,
		"connecting to dwarfpool.com:8005",
		"claymore cryptonote gpu miner",
		"--donate-level=1 --max-cpu-usage=50",
	}
	for _, p := range positives {
		if !rs.AnyMatch([]byte(p)) {
			t.Errorf("built-in rules should match %q", p)
		}
	}
	negatives := []string{
		"GET /index.html HTTP/1.1",
		"This program cannot be run in DOS mode",
		"calculator application v2.0",
	}
	for _, n := range negatives {
		if rs.AnyMatch([]byte(n)) {
			t.Errorf("built-in rules should not match %q", n)
		}
	}
}

func TestRuleMatchEmptyContent(t *testing.T) {
	rs := MinerRules()
	if rs.AnyMatch(nil) {
		t.Error("empty content should not match")
	}
}

func TestConditionAllOfThemEmptyStrings(t *testing.T) {
	// A rule with no strings and "all of them" should never match.
	rs, err := Parse(`rule R {
 strings:
  $a = "x"
 condition:
  all of them
}`)
	if err != nil {
		t.Fatal(err)
	}
	r := rs.Rules[0]
	r.Strings = nil
	if r.Match([]byte("x")).Matched {
		t.Error("all-of-them with no strings should not match")
	}
}

func BenchmarkMinerRulesMatch(b *testing.B) {
	rs := MinerRules()
	content := []byte(strings.Repeat("padding data ", 1000) +
		"xmrig -o stratum+tcp://pool.supportxmr.com:3333 -u 4ABC --donate-level=1")
	b.SetBytes(int64(len(content)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Match(content)
	}
}
