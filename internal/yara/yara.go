// Package yara implements a minimal YARA-like rule engine.
//
// The paper's sanity checks apply publicly available YARA rules to decide
// whether a malware sample is a crypto-miner (§III-B). This package parses a
// small but useful subset of the YARA rule language — string definitions
// (text, nocase, hex byte sequences) and boolean conditions over them
// ("any of them", "all of them", "N of them", and/or of identifiers) — and
// matches rules against raw bytes.
package yara

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// StringDef is a single string definition inside a rule ($name = "value").
type StringDef struct {
	Name    string
	Text    []byte
	NoCase  bool
	IsHex   bool
	Pattern []byte // decoded hex bytes when IsHex
}

// Condition is a parsed rule condition.
type Condition struct {
	// Kind is one of "any", "all", "n-of", "expr".
	Kind string
	// N is the count for "n-of" conditions.
	N int
	// Expr is a boolean expression tree for "expr" conditions.
	Expr *Expr
}

// Expr is a boolean expression over string identifiers.
type Expr struct {
	Op    string // "id", "and", "or", "not"
	Ident string // for Op == "id"
	Left  *Expr
	Right *Expr
}

// Rule is one parsed YARA-like rule.
type Rule struct {
	Name      string
	Tags      []string
	Meta      map[string]string
	Strings   []StringDef
	Condition Condition
}

// MatchResult reports which strings of a rule matched.
type MatchResult struct {
	Rule           string
	Matched        bool
	MatchedStrings []string
}

// RuleSet is a compiled collection of rules.
type RuleSet struct {
	Rules []Rule
}

var (
	reRuleHeader = regexp.MustCompile(`^rule\s+([A-Za-z_][A-Za-z0-9_]*)\s*(?::\s*([A-Za-z0-9_ ]+))?\s*\{?$`)
	reStringDef  = regexp.MustCompile(`^\$([A-Za-z0-9_]*)\s*=\s*(.+)$`)
	reNOfThem    = regexp.MustCompile(`^(\d+)\s+of\s+them$`)
	reMetaKV     = regexp.MustCompile(`^([A-Za-z_][A-Za-z0-9_]*)\s*=\s*"?([^"]*)"?$`)
)

// Parse compiles YARA-like rule source text into a RuleSet.
func Parse(src string) (*RuleSet, error) {
	var rs RuleSet
	lines := strings.Split(src, "\n")
	var cur *Rule
	section := ""
	var condLines []string

	flush := func() error {
		if cur == nil {
			return nil
		}
		condText := strings.TrimSpace(strings.Join(condLines, " "))
		cond, err := parseCondition(condText, cur.Strings)
		if err != nil {
			return fmt.Errorf("yara: rule %q: %w", cur.Name, err)
		}
		cur.Condition = cond
		rs.Rules = append(rs.Rules, *cur)
		cur = nil
		condLines = nil
		section = ""
		return nil
	}

	for i := 0; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		if m := reRuleHeader.FindStringSubmatch(line); m != nil {
			if err := flush(); err != nil {
				return nil, err
			}
			cur = &Rule{Name: m[1], Meta: map[string]string{}}
			if m[2] != "" {
				cur.Tags = strings.Fields(m[2])
			}
			continue
		}
		if cur == nil {
			continue
		}
		switch {
		case line == "{":
			continue
		case line == "}":
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		case strings.HasPrefix(line, "meta:"):
			section = "meta"
			continue
		case strings.HasPrefix(line, "strings:"):
			section = "strings"
			continue
		case strings.HasPrefix(line, "condition:"):
			section = "condition"
			continue
		}
		switch section {
		case "meta":
			if m := reMetaKV.FindStringSubmatch(line); m != nil {
				cur.Meta[m[1]] = m[2]
			}
		case "strings":
			def, err := parseStringDef(line)
			if err != nil {
				return nil, fmt.Errorf("yara: rule %q: %w", cur.Name, err)
			}
			cur.Strings = append(cur.Strings, def)
		case "condition":
			condLines = append(condLines, line)
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(rs.Rules) == 0 {
		return nil, fmt.Errorf("yara: no rules found in source")
	}
	return &rs, nil
}

func parseStringDef(line string) (StringDef, error) {
	m := reStringDef.FindStringSubmatch(line)
	if m == nil {
		return StringDef{}, fmt.Errorf("malformed string definition %q", line)
	}
	def := StringDef{Name: "$" + m[1]}
	val := strings.TrimSpace(m[2])
	switch {
	case strings.HasPrefix(val, `"`):
		text, rest, err := parseQuoted(val)
		if err != nil {
			return StringDef{}, fmt.Errorf("%v in %q", err, line)
		}
		def.Text = text
		def.NoCase = strings.Contains(strings.ToLower(rest), "nocase")
	case strings.HasPrefix(val, "{"):
		end := strings.Index(val, "}")
		if end < 0 {
			return StringDef{}, fmt.Errorf("unterminated hex string in %q", line)
		}
		hexStr := strings.ReplaceAll(val[1:end], " ", "")
		raw, err := hex.DecodeString(hexStr)
		if err != nil {
			return StringDef{}, fmt.Errorf("invalid hex string in %q: %v", line, err)
		}
		def.IsHex = true
		def.Pattern = raw
	default:
		return StringDef{}, fmt.Errorf("unsupported string value %q", val)
	}
	return def, nil
}

// parseQuoted parses a double-quoted string starting at val[0], handling the
// YARA escape sequences \", \\, \n and \t. It returns the unescaped text and
// the remainder after the closing quote (the modifier list).
func parseQuoted(val string) (text []byte, rest string, err error) {
	if len(val) < 2 || val[0] != '"' {
		return nil, "", fmt.Errorf("malformed quoted string")
	}
	var out []byte
	i := 1
	for i < len(val) {
		c := val[i]
		switch c {
		case '"':
			return out, val[i+1:], nil
		case '\\':
			if i+1 >= len(val) {
				return nil, "", fmt.Errorf("unterminated escape")
			}
			switch val[i+1] {
			case '"':
				out = append(out, '"')
			case '\\':
				out = append(out, '\\')
			case 'n':
				out = append(out, '\n')
			case 't':
				out = append(out, '\t')
			default:
				out = append(out, '\\', val[i+1])
			}
			i += 2
			continue
		default:
			out = append(out, c)
		}
		i++
	}
	return nil, "", fmt.Errorf("unterminated string")
}

func parseCondition(text string, strs []StringDef) (Condition, error) {
	text = strings.TrimSpace(text)
	switch {
	case text == "" || text == "any of them":
		return Condition{Kind: "any"}, nil
	case text == "all of them":
		return Condition{Kind: "all"}, nil
	}
	if m := reNOfThem.FindStringSubmatch(text); m != nil {
		n, err := strconv.Atoi(m[1])
		if err != nil || n <= 0 {
			return Condition{}, fmt.Errorf("invalid count in condition %q", text)
		}
		return Condition{Kind: "n-of", N: n}, nil
	}
	expr, rest, err := parseOr(text)
	if err != nil {
		return Condition{}, err
	}
	if strings.TrimSpace(rest) != "" {
		return Condition{}, fmt.Errorf("trailing tokens in condition %q", text)
	}
	// Verify referenced identifiers exist.
	known := map[string]bool{}
	for _, s := range strs {
		known[s.Name] = true
	}
	if err := checkIdents(expr, known); err != nil {
		return Condition{}, err
	}
	return Condition{Kind: "expr", Expr: expr}, nil
}

func checkIdents(e *Expr, known map[string]bool) error {
	if e == nil {
		return nil
	}
	if e.Op == "id" {
		if !known[e.Ident] {
			return fmt.Errorf("condition references undefined string %q", e.Ident)
		}
		return nil
	}
	if err := checkIdents(e.Left, known); err != nil {
		return err
	}
	return checkIdents(e.Right, known)
}

// Recursive-descent parser for: or := and ("or" and)* ; and := unary ("and" unary)* ;
// unary := "not" unary | "(" or ")" | identifier.
func parseOr(s string) (*Expr, string, error) {
	left, rest, err := parseAnd(s)
	if err != nil {
		return nil, "", err
	}
	for {
		r := strings.TrimSpace(rest)
		if !strings.HasPrefix(r, "or ") && r != "or" {
			return left, rest, nil
		}
		right, rr, err := parseAnd(strings.TrimPrefix(r, "or"))
		if err != nil {
			return nil, "", err
		}
		left = &Expr{Op: "or", Left: left, Right: right}
		rest = rr
	}
}

func parseAnd(s string) (*Expr, string, error) {
	left, rest, err := parseUnary(s)
	if err != nil {
		return nil, "", err
	}
	for {
		r := strings.TrimSpace(rest)
		if !strings.HasPrefix(r, "and ") && r != "and" {
			return left, rest, nil
		}
		right, rr, err := parseUnary(strings.TrimPrefix(r, "and"))
		if err != nil {
			return nil, "", err
		}
		left = &Expr{Op: "and", Left: left, Right: right}
		rest = rr
	}
}

func parseUnary(s string) (*Expr, string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, "", fmt.Errorf("unexpected end of condition")
	}
	if strings.HasPrefix(s, "not ") || strings.HasPrefix(s, "not(") {
		inner, rest, err := parseUnary(strings.TrimPrefix(s, "not"))
		if err != nil {
			return nil, "", err
		}
		return &Expr{Op: "not", Left: inner}, rest, nil
	}
	if strings.HasPrefix(s, "(") {
		inner, rest, err := parseOr(s[1:])
		if err != nil {
			return nil, "", err
		}
		rest = strings.TrimSpace(rest)
		if !strings.HasPrefix(rest, ")") {
			return nil, "", fmt.Errorf("missing closing parenthesis")
		}
		return inner, rest[1:], nil
	}
	if strings.HasPrefix(s, "$") {
		end := 1
		for end < len(s) && (isIdentChar(s[end])) {
			end++
		}
		return &Expr{Op: "id", Ident: s[:end]}, s[end:], nil
	}
	return nil, "", fmt.Errorf("unexpected token near %q", s)
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// matchString reports whether a string definition occurs in content.
func matchString(def StringDef, content []byte) bool {
	if def.IsHex {
		return bytes.Contains(content, def.Pattern)
	}
	if def.NoCase {
		return bytes.Contains(bytes.ToLower(content), bytes.ToLower(def.Text))
	}
	return bytes.Contains(content, def.Text)
}

// Match evaluates a single rule against content.
func (r *Rule) Match(content []byte) MatchResult {
	res := MatchResult{Rule: r.Name}
	matched := map[string]bool{}
	for _, def := range r.Strings {
		if matchString(def, content) {
			matched[def.Name] = true
			res.MatchedStrings = append(res.MatchedStrings, def.Name)
		}
	}
	switch r.Condition.Kind {
	case "any":
		res.Matched = len(matched) > 0
	case "all":
		res.Matched = len(matched) == len(r.Strings) && len(r.Strings) > 0
	case "n-of":
		res.Matched = len(matched) >= r.Condition.N
	case "expr":
		res.Matched = evalExpr(r.Condition.Expr, matched)
	}
	return res
}

func evalExpr(e *Expr, matched map[string]bool) bool {
	if e == nil {
		return false
	}
	switch e.Op {
	case "id":
		return matched[e.Ident]
	case "and":
		return evalExpr(e.Left, matched) && evalExpr(e.Right, matched)
	case "or":
		return evalExpr(e.Left, matched) || evalExpr(e.Right, matched)
	case "not":
		return !evalExpr(e.Left, matched)
	default:
		return false
	}
}

// Match evaluates every rule in the set and returns the results of the rules
// that matched.
func (rs *RuleSet) Match(content []byte) []MatchResult {
	var out []MatchResult
	for i := range rs.Rules {
		if r := rs.Rules[i].Match(content); r.Matched {
			out = append(out, r)
		}
	}
	return out
}

// AnyMatch reports whether at least one rule in the set matches content.
func (rs *RuleSet) AnyMatch(content []byte) bool {
	for i := range rs.Rules {
		if rs.Rules[i].Match(content).Matched {
			return true
		}
	}
	return false
}

// MinerRulesSource is a built-in rule set approximating the public YARA rules
// the paper applies to detect crypto-mining capability: Stratum endpoints,
// well-known pool domains, mining command-line options and CryptoNote wallet
// markers.
const MinerRulesSource = `
rule CryptoMiner_Stratum : miner
{
    meta:
        description = "Stratum mining protocol artifacts"
    strings:
        $s1 = "stratum+tcp://" nocase
        $s2 = "stratum+ssl://" nocase
        $s3 = "\"method\":\"login\"" nocase
        $s4 = "\"method\": \"login\"" nocase
        $s5 = "mining.subscribe" nocase
    condition:
        any of them
}

rule CryptoMiner_PoolDomains : miner
{
    meta:
        description = "Known mining pool domains"
    strings:
        $p1 = "crypto-pool.fr" nocase
        $p2 = "dwarfpool.com" nocase
        $p3 = "minexmr.com" nocase
        $p4 = "supportxmr.com" nocase
        $p5 = "nanopool.org" nocase
        $p6 = "minergate.com" nocase
        $p7 = "moneropool.com" nocase
        $p8 = "prohash.net" nocase
        $p9 = "monerohash.com" nocase
        $p10 = "ppxxmr.com" nocase
        $p11 = "poolto.be" nocase
    condition:
        any of them
}

rule CryptoMiner_CommandLine : miner
{
    meta:
        description = "Mining tool command line options"
    strings:
        $c1 = "--donate-level" nocase
        $c2 = "--cpu-priority" nocase
        $c3 = "--max-cpu-usage" nocase
        $c4 = "-o stratum" nocase
        $c5 = "--algo=cryptonight" nocase
        $c6 = "--coin=monero" nocase
    condition:
        any of them
}

rule CryptoMiner_XmrigMarkers : miner
{
    meta:
        description = "Stock miner binary markers"
    strings:
        $x1 = "xmrig" nocase
        $x2 = "xmr-stak" nocase
        $x3 = "claymore" nocase
        $x4 = "cryptonight"  nocase
        $x5 = "randomx" nocase
    condition:
        any of them
}
`

// MinerRules parses MinerRulesSource; it panics on error because the source is
// a compile-time constant validated by tests.
func MinerRules() *RuleSet {
	rs, err := Parse(MinerRulesSource)
	if err != nil {
		panic("yara: built-in miner rules failed to parse: " + err.Error())
	}
	return rs
}
