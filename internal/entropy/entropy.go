// Package entropy computes Shannon entropy over byte sequences.
//
// The measurement pipeline uses entropy as a fallback obfuscation detector:
// when no known packer signature is found, a sample whose content entropy is
// above a conservative threshold (7.5 bits/byte, where 8.0 is uniform random)
// is considered obfuscated, as described in §IV-E of the paper.
package entropy

import "math"

// ObfuscationThreshold is the conservative entropy threshold (bits per byte)
// above which a binary is considered obfuscated when no packer is identified.
const ObfuscationThreshold = 7.5

// Shannon returns the Shannon entropy of data in bits per byte, in [0, 8].
// The entropy of an empty slice is 0.
func Shannon(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	var counts [256]int
	for _, b := range data {
		counts[b]++
	}
	n := float64(len(data))
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// IsObfuscated reports whether data's entropy exceeds ObfuscationThreshold.
func IsObfuscated(data []byte) bool {
	return Shannon(data) > ObfuscationThreshold
}

// Windowed returns the Shannon entropy of each non-overlapping window of the
// given size. A trailing partial window is included when it is non-empty.
// Windowed entropy is useful to locate packed regions inside an otherwise
// low-entropy binary (e.g. a packed payload appended to a small loader stub).
func Windowed(data []byte, window int) []float64 {
	if window <= 0 || len(data) == 0 {
		return nil
	}
	var out []float64
	for i := 0; i < len(data); i += window {
		end := i + window
		if end > len(data) {
			end = len(data)
		}
		out = append(out, Shannon(data[i:end]))
	}
	return out
}

// MaxWindowed returns the maximum windowed entropy, or 0 for empty input.
func MaxWindowed(data []byte, window int) float64 {
	ws := Windowed(data, window)
	var m float64
	for _, w := range ws {
		if w > m {
			m = w
		}
	}
	return m
}
