package entropy

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShannonEmpty(t *testing.T) {
	if got := Shannon(nil); got != 0 {
		t.Errorf("Shannon(nil) = %v, want 0", got)
	}
	if got := Shannon([]byte{}); got != 0 {
		t.Errorf("Shannon(empty) = %v, want 0", got)
	}
}

func TestShannonUniformSingleByte(t *testing.T) {
	data := bytes.Repeat([]byte{0x41}, 1024)
	if got := Shannon(data); got != 0 {
		t.Errorf("Shannon(repeated byte) = %v, want 0", got)
	}
}

func TestShannonTwoSymbols(t *testing.T) {
	// Equal mix of two symbols has exactly 1 bit of entropy.
	data := append(bytes.Repeat([]byte{0}, 500), bytes.Repeat([]byte{1}, 500)...)
	if got := Shannon(data); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("Shannon(two symbols) = %v, want 1.0", got)
	}
}

func TestShannonAllBytes(t *testing.T) {
	// One of each byte value: exactly 8 bits.
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	if got := Shannon(data); math.Abs(got-8.0) > 1e-9 {
		t.Errorf("Shannon(all bytes once) = %v, want 8.0", got)
	}
}

func TestShannonRandomHigh(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 64*1024)
	rng.Read(data)
	got := Shannon(data)
	if got < 7.9 {
		t.Errorf("Shannon(random 64k) = %v, want > 7.9", got)
	}
	if !IsObfuscated(data) {
		t.Error("IsObfuscated(random 64k) = false, want true")
	}
}

func TestIsObfuscatedLowEntropy(t *testing.T) {
	data := bytes.Repeat([]byte("MOV EAX, EBX; PUSH EBP; "), 1000)
	if IsObfuscated(data) {
		t.Error("IsObfuscated(repetitive text) = true, want false")
	}
}

func TestShannonBoundsProperty(t *testing.T) {
	f := func(data []byte) bool {
		h := Shannon(data)
		return h >= 0 && h <= 8.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestShannonPermutationInvariantProperty(t *testing.T) {
	// Entropy only depends on the byte histogram, not order.
	f := func(data []byte) bool {
		if len(data) < 2 {
			return true
		}
		shuffled := append([]byte(nil), data...)
		rng := rand.New(rand.NewSource(42))
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return math.Abs(Shannon(data)-Shannon(shuffled)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWindowed(t *testing.T) {
	low := bytes.Repeat([]byte{0x00}, 1024)
	rng := rand.New(rand.NewSource(7))
	high := make([]byte, 1024)
	rng.Read(high)
	data := append(append([]byte{}, low...), high...)

	ws := Windowed(data, 1024)
	if len(ws) != 2 {
		t.Fatalf("Windowed() returned %d windows, want 2", len(ws))
	}
	if ws[0] != 0 {
		t.Errorf("first window entropy = %v, want 0", ws[0])
	}
	if ws[1] < 7.5 {
		t.Errorf("second window entropy = %v, want > 7.5", ws[1])
	}
	if m := MaxWindowed(data, 1024); m != ws[1] {
		t.Errorf("MaxWindowed = %v, want %v", m, ws[1])
	}
}

func TestWindowedPartialAndEdgeCases(t *testing.T) {
	if got := Windowed(nil, 16); got != nil {
		t.Errorf("Windowed(nil) = %v, want nil", got)
	}
	if got := Windowed([]byte{1, 2, 3}, 0); got != nil {
		t.Errorf("Windowed(window=0) = %v, want nil", got)
	}
	ws := Windowed([]byte{1, 2, 3, 4, 5}, 2)
	if len(ws) != 3 {
		t.Errorf("Windowed(5 bytes, window 2) = %d windows, want 3", len(ws))
	}
	if MaxWindowed(nil, 8) != 0 {
		t.Error("MaxWindowed(nil) should be 0")
	}
}

func BenchmarkShannon1MB(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 1<<20)
	rng.Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Shannon(data)
	}
}
