package obs

import "runtime"

// RegisterRuntimeMetrics registers process-level gauges (goroutine count,
// heap usage, GC cycles) read lazily at scrape time. ReadMemStats briefly
// stops the world, so scrape cost is paid by the scraper, never by the
// workload between scrapes.
func RegisterRuntimeMetrics(reg *Registry) {
	reg.GaugeFunc("go_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_heap_alloc_bytes", "Heap bytes currently allocated.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
}
