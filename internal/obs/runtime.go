package obs

import (
	"runtime"
	"sync"
	"time"
)

// memStatsReader shares one runtime.ReadMemStats snapshot between every
// runtime instrument in a scrape. ReadMemStats stops the world, so paying it
// once per scrape instead of once per instrument matters; the short TTL is
// just long enough to cover one exposition pass (instruments render
// microseconds apart) without serving stale numbers to the next scrape.
type memStatsReader struct {
	mu sync.Mutex
	at time.Time
	ms runtime.MemStats
}

const memStatsTTL = 100 * time.Millisecond

func (c *memStatsReader) read() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.at.IsZero() || time.Since(c.at) > memStatsTTL {
		runtime.ReadMemStats(&c.ms)
		c.at = time.Now()
	}
	return c.ms
}

// Version identifies the build in logs, -version output and the
// cryptomining_build_info metric. Overridden at link time:
//
//	go build -ldflags "-X cryptomining/internal/obs.Version=v1.2.3"
var Version = "dev"

// RegisterBuildInfo registers the conventional build-info gauge: constant 1,
// with the build identity carried in labels so dashboards can join metrics
// against the version that produced them.
func RegisterBuildInfo(reg *Registry) {
	reg.GaugeFunc("cryptomining_build_info",
		"Build identity; constant 1, labeled with version and Go runtime.",
		func() float64 { return 1 },
		L("version", Version), L("go_version", runtime.Version()))
}

// RegisterRuntimeMetrics registers process-level gauges (goroutine count,
// heap usage, GC cycles) read lazily at scrape time. ReadMemStats briefly
// stops the world, so scrape cost is paid by the scraper, never by the
// workload between scrapes — and only once per scrape, shared across the
// MemStats-backed instruments.
func RegisterRuntimeMetrics(reg *Registry) {
	msr := &memStatsReader{}
	reg.GaugeFunc("go_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_heap_alloc_bytes", "Heap bytes currently allocated.",
		func() float64 { return float64(msr.read().HeapAlloc) })
	reg.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 { return float64(msr.read().NumGC) })
}
