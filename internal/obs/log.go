package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Log formats accepted by NewLogger.
const (
	FormatText = "text"
	FormatJSON = "json"
)

// ParseLevel maps the conventional level names (debug, info, warn, error,
// case-insensitive) to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds a structured logger writing to w in the given format
// ("text" or "json") at the given level.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case FormatJSON:
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case FormatText, "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
}

// NopLogger returns a logger that discards everything — the default for
// library subsystems, so tests and embedders stay silent unless they opt in.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}

// Component scopes a logger to one subsystem. A nil base returns a silent
// logger, which is what lets libraries write
// `log := obs.Component(cfg.Logger, "wal")` unconditionally.
func Component(base *slog.Logger, name string) *slog.Logger {
	if base == nil {
		return NopLogger()
	}
	return base.With(slog.String("component", name))
}
