// Package obs is the production observability layer: a dependency-free
// metrics registry (counters, gauges, histograms with fixed bucket ladders)
// rendered in the Prometheus text exposition format, plus structured-logging
// helpers over log/slog with component-scoped loggers.
//
// The registry is deliberately tiny — no client_golang dependency, no
// dynamic label cardinality tricks, no push machinery. Subsystems register
// their instruments once (same name + same label set returns the same
// instrument, so registration is idempotent) and the HTTP handler renders a
// consistent snapshot on every scrape:
//
//	reg := obs.NewRegistry()
//	lat := reg.Histogram("stream_stage_duration_seconds",
//	        "Per-stage latency.", obs.LatencyBuckets, obs.L("stage", "sanity"))
//	lat.Observe(d.Seconds())
//	mux.Handle("GET /metrics", reg.Handler())
//
// Counters and histograms are lock-free on the hot path (atomics only);
// gauges backed by functions are evaluated at scrape time, which is how
// queue depths and cache sizes are exported without any bookkeeping on the
// instrumented path.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric type names as rendered in # TYPE lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Label is one name=value metric label.
type Label struct {
	Name  string
	Value string
}

// L constructs a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// labelSignature serializes a label set into the map key and the rendered
// {a="b",c="d"} form. Labels are sorted by name so the same set always maps
// to the same instrument regardless of argument order.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

// instrument is anything a family can render.
type instrument interface {
	// write renders the instrument's sample lines. name is the family name,
	// sig the rendered label signature ("" or "{...}").
	write(b *strings.Builder, name, sig string)
}

// family groups every instrument sharing one metric name.
type family struct {
	name string
	help string
	typ  string
	// buckets pins the ladder for histogram families so two registrations
	// with different ladders are caught as programming errors.
	buckets []float64

	instruments map[string]instrument
}

// Registry holds instruments and renders them. All methods are safe for
// concurrent use; instrument registration is idempotent on (name, labels).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register resolves (name, labels) to the family's instrument, creating
// family and instrument on first use. Type or ladder mismatches on an
// existing name panic: two subsystems fighting over one metric name is a
// programming error that must not surface as silently wrong exposition.
func (r *Registry) register(name, help, typ string, buckets []float64, labels []Label, mk func() instrument) instrument {
	if name == "" {
		panic("obs: metric with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, instruments: map[string]instrument{}}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	if typ == typeHistogram && !equalBuckets(f.buckets, buckets) {
		panic(fmt.Sprintf("obs: histogram %q registered with two different bucket ladders", name))
	}
	sig := labelSignature(labels)
	if inst, ok := f.instruments[sig]; ok {
		return inst
	}
	inst := mk()
	f.instruments[sig] = inst
	return inst
}

func equalBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the monotonically increasing counter for (name, labels),
// registering it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, typeCounter, nil, labels, func() instrument { return &Counter{} }).(*Counter)
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for subsystems that already keep their own atomic
// counters.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, typeCounter, nil, labels, func() instrument { return valueFunc(fn) })
}

// Gauge returns the settable gauge for (name, labels), registering it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, typeGauge, nil, labels, func() instrument { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge evaluated at scrape time. fn must be safe for
// concurrent use; it typically snapshots a queue depth or cache size under
// the owning subsystem's lock.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, typeGauge, nil, labels, func() instrument { return valueFunc(fn) })
}

// Histogram returns the histogram for (name, labels) over the given bucket
// ladder (upper bounds, strictly increasing; the +Inf overflow bucket is
// implicit), registering it on first use.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bucket ladder not strictly increasing", name))
		}
	}
	ladder := append([]float64(nil), buckets...)
	return r.register(name, help, typeHistogram, ladder, labels, func() instrument {
		return &Histogram{buckets: ladder, counts: make([]atomic.Uint64, len(ladder))}
	}).(*Histogram)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and samples
// sorted by label signature, so successive scrapes of unchanged state are
// byte-identical.
func (r *Registry) WritePrometheus(b *strings.Builder) {
	// Snapshot families AND their instrument maps under the lock: register()
	// mutates f.instruments lazily (e.g. a first-seen route/status creating a
	// counter mid-scrape), so the maps must not be iterated unlocked. The
	// instruments themselves are atomics and render safely outside the lock.
	type famSnap struct {
		name, help, typ string
		sigs            []string
		insts           []instrument
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]famSnap, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		fs := famSnap{
			name:  f.name,
			help:  f.help,
			typ:   f.typ,
			sigs:  make([]string, 0, len(f.instruments)),
			insts: make([]instrument, 0, len(f.instruments)),
		}
		for sig := range f.instruments {
			fs.sigs = append(fs.sigs, sig)
		}
		sort.Strings(fs.sigs)
		for _, sig := range fs.sigs {
			fs.insts = append(fs.insts, f.instruments[sig])
		}
		fams = append(fams, fs)
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
		for i, sig := range f.sigs {
			f.insts[i].write(b, f.name, sig)
		}
	}
}

// Handler serves the exposition over HTTP (GET/HEAD only).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var b strings.Builder
		r.WritePrometheus(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
}

// formatValue renders a sample value: integers without exponent noise,
// everything else in Go's shortest-roundtrip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing value. The zero value is ready to
// use, but counters should be obtained from a Registry so they render.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (must be >= 0 for the exposition to stay a valid counter).
func (c *Counter) Add(v float64) {
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value reads the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) write(b *strings.Builder, name, sig string) {
	fmt.Fprintf(b, "%s%s %s\n", name, sig, formatValue(c.Value()))
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by v (negative to decrease).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(b *strings.Builder, name, sig string) {
	fmt.Fprintf(b, "%s%s %s\n", name, sig, formatValue(g.Value()))
}

// valueFunc renders a scrape-time function as a single sample.
type valueFunc func() float64

func (f valueFunc) write(b *strings.Builder, name, sig string) {
	fmt.Fprintf(b, "%s%s %s\n", name, sig, formatValue(f()))
}

// Histogram counts observations into a fixed ladder of upper bounds plus an
// implicit +Inf overflow bucket. Observe is lock-free; rendering sums the
// per-bucket counts cumulatively as the exposition format requires. The
// count/sum pair is not read atomically with the buckets, so a scrape racing
// an Observe may see the observation in one but not the other — harmless for
// monitoring, and the steady state is exact.
type Histogram struct {
	buckets []float64
	counts  []atomic.Uint64
	// overflow counts observations above the last bound.
	overflow atomic.Uint64
	count    atomic.Uint64
	sumBits  atomic.Uint64
}

// Observe records one value. A value exactly on a bucket boundary counts
// into that bucket (le is an inclusive upper bound).
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.buckets, v)
	// SearchFloat64s finds the first bound >= v, which is exactly the
	// Prometheus le semantics (v <= bound).
	if idx < len(h.buckets) {
		h.counts[idx].Add(1)
	} else {
		h.overflow.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) write(b *strings.Builder, name, sig string) {
	// The bucket lines need the le label merged into the signature.
	base := strings.TrimSuffix(strings.TrimPrefix(sig, "{"), "}")
	var cum uint64
	for i, bound := range h.buckets {
		cum += h.counts[i].Load()
		writeBucketLine(b, name, base, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	cum += h.overflow.Load()
	writeBucketLine(b, name, base, "+Inf", cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, sig, formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, sig, h.count.Load())
}

func writeBucketLine(b *strings.Builder, name, baseLabels, le string, cum uint64) {
	if baseLabels == "" {
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, le, cum)
	} else {
		fmt.Fprintf(b, "%s_bucket{%s,le=%q} %d\n", name, baseLabels, le, cum)
	}
}

// LatencyBuckets is the default ladder for operation latencies, spanning
// 10µs..2.5s — wide enough for in-memory stage work at the bottom and
// fsync/checkpoint tails at the top.
var LatencyBuckets = []float64{
	0.00001, 0.00005, 0.0001, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// SizeBuckets is the default ladder for byte sizes (256B..64MB).
var SizeBuckets = []float64{
	256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216, 67108864,
}
