package obs

import (
	"bytes"
	"log/slog"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

// expositionLine matches one valid Prometheus text-format sample line.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [-+0-9.eE]+(Inf|NaN)?$`)

// requireValidExposition asserts every non-comment, non-blank line parses as
// a sample line.
func requireValidExposition(t *testing.T, text string) {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("invalid exposition line: %q", line)
		}
	}
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests served.", L("route", "/stats"))
	c.Inc()
	c.Add(2)
	g := r.Gauge("queue_depth", "Queue depth.")
	g.Set(7)
	g.Add(-3)
	r.GaugeFunc("cache_size", "Entries.", func() float64 { return 42 })
	r.CounterFunc("events_total", "Events.", func() float64 { return 5 })

	text := render(r)
	requireValidExposition(t, text)
	for _, want := range []string{
		"# TYPE requests_total counter",
		`requests_total{route="/stats"} 3`,
		"# TYPE queue_depth gauge",
		"queue_depth 4",
		"cache_size 42",
		"events_total 5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "Hits.", L("pool", "minexmr"))
	b := r.Counter("hits_total", "Hits.", L("pool", "minexmr"))
	if a != b {
		t.Fatal("same (name, labels) returned two counter instances")
	}
	// Label order must not matter.
	h1 := r.Histogram("lat_seconds", "", LatencyBuckets, L("a", "1"), L("b", "2"))
	h2 := r.Histogram("lat_seconds", "", LatencyBuckets, L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Fatal("label order produced distinct histograms")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestHistogramZeroObservations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("fresh histogram count=%d sum=%g, want zeros", h.Count(), h.Sum())
	}
	text := render(r)
	requireValidExposition(t, text)
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 0`,
		`lat_seconds_bucket{le="1"} 0`,
		`lat_seconds_bucket{le="+Inf"} 0`,
		"lat_seconds_sum 0",
		"lat_seconds_count 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("zero-observation exposition missing %q:\n%s", want, text)
		}
	}
}

func TestHistogramExactBoundaryAndOverflow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "", []float64{0.1, 1, 10})
	h.Observe(0.1) // exactly on the first bound: le is inclusive
	h.Observe(1.0) // exactly on the second
	h.Observe(0.5)
	h.Observe(99) // past the last bound: +Inf overflow only
	text := render(r)
	for _, want := range []string{
		`d_seconds_bucket{le="0.1"} 1`,
		`d_seconds_bucket{le="1"} 3`,
		`d_seconds_bucket{le="10"} 3`,
		`d_seconds_bucket{le="+Inf"} 4`,
		"d_seconds_count 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 0.1+1.0+0.5+99; got != want {
		t.Fatalf("Sum = %g, want %g", got, want)
	}
}

func TestHistogramLabeledBucketLines(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stage_seconds", "", []float64{1}, L("stage", "sanity"))
	h.Observe(0.5)
	text := render(r)
	requireValidExposition(t, text)
	if !strings.Contains(text, `stage_seconds_bucket{stage="sanity",le="1"} 1`) {
		t.Fatalf("labeled bucket line missing:\n%s", text)
	}
	if !strings.Contains(text, `stage_seconds_count{stage="sanity"} 1`) {
		t.Fatalf("labeled count line missing:\n%s", text)
	}
}

func TestHistogramMismatchedLadderPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h_seconds", "", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("second registration with a different ladder did not panic")
		}
	}()
	r.Histogram("h_seconds", "", []float64{1, 2, 3})
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c_seconds", "", []float64{0.5})
	c := r.Counter("c_total", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.25)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if c.Value() != 8000 {
		t.Fatalf("counter = %g, want 8000", c.Value())
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", L("path", `a"b\c`+"\n")).Inc()
	text := render(r)
	if !strings.Contains(text, `esc_total{path="a\"b\\c\n"} 1`) {
		t.Fatalf("label escaping wrong:\n%s", text)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ok_total 1") {
		t.Fatalf("handler body missing sample:\n%s", buf.String())
	}

	res2, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != 405 {
		t.Fatalf("POST /metrics = %d, want 405", res2.StatusCode)
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo, "warn": slog.LevelWarn,
		"warning": slog.LevelWarn, "error": slog.LevelError, "": slog.LevelInfo,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, FormatJSON, slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "k", "v")
	if !strings.Contains(buf.String(), `"msg":"hello"`) {
		t.Fatalf("json logger output: %q", buf.String())
	}
	buf.Reset()
	lg, err = NewLogger(&buf, FormatText, slog.LevelWarn)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Fatalf("level filtering wrong: %q", out)
	}
	if _, err := NewLogger(&buf, "xml", slog.LevelInfo); err == nil {
		t.Fatal("NewLogger accepted an unknown format")
	}
}

func TestComponentNilBase(t *testing.T) {
	lg := Component(nil, "wal")
	lg.Info("must not panic")
	var buf bytes.Buffer
	base, _ := NewLogger(&buf, FormatText, slog.LevelInfo)
	Component(base, "wal").Info("x")
	if !strings.Contains(buf.String(), "component=wal") {
		t.Fatalf("component attr missing: %q", buf.String())
	}
}

// TestWritePrometheusConcurrentRegister exercises the scrape path against
// lazy instrument registration (e.g. a first-seen route/status creating a
// counter mid-scrape). Under -race this fails if WritePrometheus iterates a
// family's instrument map outside the registry lock.
func TestWritePrometheusConcurrentRegister(t *testing.T) {
	r := NewRegistry()
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				r.Counter("lazy_total", "",
					L("route", strings.Repeat("x", g+1)+string(rune('a'+i%26))),
					L("n", string(rune('0'+i%10)))).Inc()
				r.Histogram("lazy_seconds", "", []float64{0.1, 1},
					L("n", string(rune('0'+i%10)))).Observe(0.05)
			}
		}(g)
	}
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				// Validation happens on the test goroutine after the writers
				// finish; here the scrape itself is the race under test.
				_ = render(r)
			}
		}
	}()
	writers.Wait()
	close(stop)
	scraper.Wait()
	requireValidExposition(t, render(r))
}
