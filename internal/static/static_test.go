package static

import (
	"math/rand"
	"strings"
	"testing"

	"cryptomining/internal/binfmt"
	"cryptomining/internal/model"
	walletpkg "cryptomining/internal/wallet"
)

func monero(seed int64) string {
	return walletpkg.NewGenerator(rand.New(rand.NewSource(seed))).Monero()
}

func TestAnalyzeCleartextMiner(t *testing.T) {
	a := New()
	w := monero(1)
	cmdline := "xmrig.exe -o stratum+tcp://pool.minexmr.com:4444 -u " + w + " -p x --donate-level=1"
	content := binfmt.NewBuilder(model.FormatPE).
		AddString(cmdline).
		AddString("https://github.com/xmrig/xmrig/releases/download/v2.14.1/xmrig-2.14.1.zip").
		Build()
	res := a.Analyze(content)

	if res.Format != model.FormatPE {
		t.Errorf("format = %v", res.Format)
	}
	if len(res.Identifiers) != 1 || res.Identifiers[0].ID != w {
		t.Errorf("identifiers = %v", res.Identifiers)
	}
	if res.Identifiers[0].Currency != model.CurrencyMonero {
		t.Errorf("currency = %v", res.Identifiers[0].Currency)
	}
	if len(res.PoolEndpoints) == 0 || res.PoolEndpoints[0].Host != "pool.minexmr.com" || res.PoolEndpoints[0].Port != 4444 {
		t.Errorf("endpoints = %v", res.PoolEndpoints)
	}
	if len(res.URLs) != 1 || !strings.Contains(res.URLs[0], "github.com") {
		t.Errorf("urls = %v", res.URLs)
	}
	if len(res.YARAMatches) == 0 {
		t.Error("YARA miner rules should match a cleartext miner")
	}
	if !res.MinesAnything() {
		t.Error("MinesAnything should be true")
	}
	if res.Obfuscated {
		t.Error("cleartext miner should not be flagged obfuscated")
	}
	if res.SHA256 == "" || res.MD5 == "" {
		t.Error("hashes should be populated")
	}
}

func TestAnalyzePackedSampleHidesStrings(t *testing.T) {
	a := New()
	w := monero(2)
	// Packed: UPX marker + high-entropy payload, no cleartext strings.
	rng := rand.New(rand.NewSource(3))
	pad := make([]byte, 128*1024)
	rng.Read(pad)
	content := binfmt.NewBuilder(model.FormatPE).WithPacker("UPX").WithPadding(pad).Build()
	res := a.Analyze(content)

	if res.Packer != "UPX" {
		t.Errorf("packer = %q", res.Packer)
	}
	if !res.Obfuscated {
		t.Error("UPX-packed sample should be obfuscated")
	}
	if len(res.Identifiers) != 0 {
		t.Errorf("packed sample should not leak identifiers, got %v", res.Identifiers)
	}
	_ = w
}

func TestAnalyzeHighEntropyWithoutKnownPacker(t *testing.T) {
	a := New()
	rng := rand.New(rand.NewSource(4))
	pad := make([]byte, 256*1024)
	rng.Read(pad)
	content := binfmt.NewBuilder(model.FormatPE).WithPadding(pad).Build()
	res := a.Analyze(content)
	if res.Packer != "" {
		t.Errorf("no packer marker expected, got %q", res.Packer)
	}
	if !res.Obfuscated {
		t.Errorf("entropy %v above threshold should mark sample obfuscated", res.Entropy)
	}
}

func TestAnalyzeCompressionNotObfuscation(t *testing.T) {
	a := New()
	// A CAB container marker with low-entropy content: compression is
	// identified but not counted as obfuscation.
	content := append(binfmt.NewBuilder(model.FormatPE).AddString(strings.Repeat("plain text ", 500)).Build(), []byte("MSCF")...)
	res := a.Analyze(content)
	if res.Compression != "CAB" {
		t.Errorf("compression = %q", res.Compression)
	}
	if res.Obfuscated {
		t.Error("compressed-but-low-entropy sample should not be obfuscated")
	}
}

func TestAnalyzeBenignBinary(t *testing.T) {
	a := New()
	content := binfmt.NewBuilder(model.FormatPE).
		AddString("This program cannot be run in DOS mode").
		AddString("Copyright (c) Example Corp").
		Build()
	res := a.Analyze(content)
	if res.MinesAnything() {
		t.Error("benign binary should not mine anything")
	}
	if len(res.YARAMatches) != 0 {
		t.Errorf("benign binary YARA matches = %v", res.YARAMatches)
	}
}

func TestAnalyzeELFAndEmailIdentifier(t *testing.T) {
	a := New()
	content := binfmt.NewBuilder(model.FormatELF).
		AddString("minerd --url=xmr-eu.dwarfpool.com:8005 --user=botmaster99@mail.ru --pass x").
		Build()
	res := a.Analyze(content)
	if res.Format != model.FormatELF {
		t.Errorf("format = %v", res.Format)
	}
	if len(res.Identifiers) != 1 || res.Identifiers[0].Currency != model.CurrencyEmail {
		t.Errorf("identifiers = %v", res.Identifiers)
	}
	found := false
	for _, e := range res.PoolEndpoints {
		if e.Host == "xmr-eu.dwarfpool.com" && e.Port == 8005 {
			found = true
		}
	}
	if !found {
		t.Errorf("dwarfpool endpoint not extracted: %v", res.PoolEndpoints)
	}
}

func TestExtractEndpoints(t *testing.T) {
	text := `
config: stratum+tcp://mine.crypto-pool.fr:3333
fallback: stratum+ssl://pool.supportxmr.com:443
cmd: -o xmr.prohash.net:1111 -u wallet
alias: xmr.usa-138.com:5555
duplicate: stratum+tcp://mine.crypto-pool.fr:3333
not-a-port: host.example.com:99999
`
	eps := ExtractEndpoints(text)
	byHost := map[string]Endpoint{}
	for _, e := range eps {
		byHost[e.Host] = e
	}
	if len(eps) != 4 {
		t.Errorf("endpoints = %v, want 4 distinct", eps)
	}
	if e := byHost["pool.supportxmr.com"]; !e.TLS || e.Port != 443 {
		t.Errorf("ssl endpoint = %+v", e)
	}
	if e := byHost["mine.crypto-pool.fr"]; e.Port != 3333 {
		t.Errorf("crypto-pool endpoint = %+v", e)
	}
	if e := byHost["xmr.usa-138.com"]; e.Port != 5555 {
		t.Errorf("alias endpoint = %+v", e)
	}
	if _, ok := byHost["host.example.com"]; ok {
		t.Error("invalid port should be rejected")
	}
}

func TestEndpointString(t *testing.T) {
	e := Endpoint{Host: "pool.minexmr.com", Port: 4444}
	if e.String() != "pool.minexmr.com:4444" {
		t.Errorf("Endpoint.String() = %q", e.String())
	}
}

func TestAnalyzeEmptyContent(t *testing.T) {
	a := New()
	res := a.Analyze(nil)
	if res.Format != model.FormatUnknown || res.MinesAnything() || res.Obfuscated {
		t.Errorf("empty content result = %+v", res)
	}
}

func TestNewWithRulesNilFallsBack(t *testing.T) {
	a := NewWithRules(nil)
	content := binfmt.NewBuilder(model.FormatPE).AddString("stratum+tcp://pool.minexmr.com:4444").Build()
	if res := a.Analyze(content); len(res.YARAMatches) == 0 {
		t.Error("nil custom rules should fall back to built-in rules")
	}
}

func BenchmarkAnalyze(b *testing.B) {
	a := New()
	w := monero(9)
	rng := rand.New(rand.NewSource(10))
	pad := make([]byte, 256*1024)
	rng.Read(pad)
	content := binfmt.NewBuilder(model.FormatPE).
		AddString("xmrig -o stratum+tcp://pool.minexmr.com:4444 -u " + w + " -p x").
		WithPadding(pad).
		Build()
	b.SetBytes(int64(len(content)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Analyze(content)
	}
}
