// Package static is the static-analysis stage of the pipeline: without
// executing a sample it extracts printable strings, candidate mining
// identifiers, pool endpoints and in-the-wild URLs, matches the built-in YARA
// miner rules, determines the executable format, and measures obfuscation
// (packer signatures and entropy), as described in §III-B/§III-C of the paper.
package static

import (
	"regexp"
	"strconv"
	"strings"

	"cryptomining/internal/binfmt"
	"cryptomining/internal/entropy"
	"cryptomining/internal/model"
	"cryptomining/internal/wallet"
	"cryptomining/internal/yara"
)

// Result is the static-analysis outcome for one sample.
type Result struct {
	SHA256 string
	MD5    string
	Format model.ExecutableFormat
	// Strings are the printable strings extracted from the binary.
	Strings []string
	// Identifiers are candidate mining identifiers (wallets / e-mails).
	Identifiers []wallet.Candidate
	// PoolEndpoints are "host:port" mining endpoints found in strings
	// (stratum URLs or -o arguments).
	PoolEndpoints []Endpoint
	// URLs are http(s) URLs embedded in the binary.
	URLs []string
	// YARAMatches are the names of the miner rules that matched.
	YARAMatches []string
	// Packer is the identified packer, if any.
	Packer string
	// Compression is the identified compression container, if any.
	Compression string
	// Entropy is the Shannon entropy of the full content.
	Entropy float64
	// Obfuscated is true when a packer was found or the entropy exceeds the
	// obfuscation threshold.
	Obfuscated bool
}

// Endpoint is a host:port mining endpoint recovered from static strings.
type Endpoint struct {
	Host string
	Port int
	// TLS is true for stratum+ssl endpoints.
	TLS bool
}

// String renders the endpoint as host:port.
func (e Endpoint) String() string { return e.Host + ":" + strconv.Itoa(e.Port) }

// MinesAnything reports whether the static pass found either an identifier or
// a pool endpoint — i.e. static analysis alone was enough to characterize the
// miner.
func (r *Result) MinesAnything() bool {
	return len(r.Identifiers) > 0 || len(r.PoolEndpoints) > 0
}

// Analyzer performs static analysis.
type Analyzer struct {
	rules   *yara.RuleSet
	scanner *binfmt.Scanner
	// MinStringLength is the minimum printable-string length extracted.
	MinStringLength int
}

// New returns an analyzer with the built-in miner YARA rules and packer
// signatures.
func New() *Analyzer {
	return &Analyzer{
		rules:           yara.MinerRules(),
		scanner:         binfmt.NewScanner(),
		MinStringLength: 6,
	}
}

// NewWithRules returns an analyzer using a custom YARA rule set.
func NewWithRules(rules *yara.RuleSet) *Analyzer {
	a := New()
	if rules != nil {
		a.rules = rules
	}
	return a
}

var (
	// stratum URLs: stratum+tcp://host:port or stratum+ssl://host:port
	reStratumURL = regexp.MustCompile(`stratum\+(tcp|ssl)://([A-Za-z0-9.\-_]+):(\d{2,5})`)
	// -o / --url style endpoints without a scheme: host:port following -o or --url=
	reDashO = regexp.MustCompile(`(?:-o\s+|--url[= ])([A-Za-z0-9.\-_]+):(\d{2,5})`)
	// bare pool-looking host:port (host contains a known pool keyword)
	rePoolHostPort = regexp.MustCompile(`\b([A-Za-z0-9.\-_]*(?:pool|xmr|monero|mine|hash)[A-Za-z0-9.\-_]*\.[A-Za-z]{2,}):(\d{2,5})\b`)
	// http(s) URLs
	reHTTPURL = regexp.MustCompile(`https?://[A-Za-z0-9.\-_]+(?::\d+)?(?:/[^\s"'<>\x00]*)?`)
)

// Analyze performs the full static pass over a sample's content.
func (a *Analyzer) Analyze(content []byte) Result {
	sha, md5hex := binfmt.Hashes(content)
	res := Result{
		SHA256:  sha,
		MD5:     md5hex,
		Format:  binfmt.DetectFormat(content),
		Entropy: entropy.Shannon(content),
	}
	res.Strings = binfmt.ExtractStrings(content, a.MinStringLength)
	text := strings.Join(res.Strings, "\n")

	res.Identifiers = wallet.ExtractCandidates(text)
	res.PoolEndpoints = ExtractEndpoints(text)
	res.URLs = extractURLs(text)

	for _, m := range a.rules.Match(content) {
		res.YARAMatches = append(res.YARAMatches, m.Rule)
	}

	res.Packer = a.scanner.DetectPacker(content)
	res.Compression = a.scanner.DetectCompression(content)
	res.Obfuscated = res.Packer != "" ||
		(res.Compression == "" && res.Entropy > entropy.ObfuscationThreshold)
	return res
}

// ExtractEndpoints finds mining endpoints (host:port) in free text: stratum
// URLs, -o/--url arguments and pool-looking host:port pairs.
func ExtractEndpoints(text string) []Endpoint {
	var out []Endpoint
	seen := map[string]bool{}
	add := func(host, portStr string, tls bool) {
		port, err := strconv.Atoi(portStr)
		if err != nil || port <= 0 || port > 65535 {
			return
		}
		host = strings.ToLower(host)
		key := host + ":" + portStr
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, Endpoint{Host: host, Port: port, TLS: tls})
	}
	for _, m := range reStratumURL.FindAllStringSubmatch(text, -1) {
		add(m[2], m[3], m[1] == "ssl")
	}
	for _, m := range reDashO.FindAllStringSubmatch(text, -1) {
		add(m[1], m[2], false)
	}
	for _, m := range rePoolHostPort.FindAllStringSubmatch(text, -1) {
		add(m[1], m[2], false)
	}
	return out
}

func extractURLs(text string) []string {
	matches := reHTTPURL.FindAllString(text, -1)
	var out []string
	seen := map[string]bool{}
	for _, m := range matches {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}
