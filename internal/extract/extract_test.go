package extract

import (
	"math/rand"
	"testing"
	"time"

	"cryptomining/internal/binfmt"
	"cryptomining/internal/dnssim"
	"cryptomining/internal/model"
	"cryptomining/internal/sandbox"
	"cryptomining/internal/spec"
	"cryptomining/internal/static"
	walletpkg "cryptomining/internal/wallet"
)

func gen(seed int64) *walletpkg.Generator {
	return walletpkg.NewGenerator(rand.New(rand.NewSource(seed)))
}

// buildAndAnalyze fabricates a sample with the given behaviour, runs static
// and dynamic analysis, and returns extraction inputs.
func buildAndAnalyze(t *testing.T, b spec.Behavior, obfuscated bool, packer string) Inputs {
	t.Helper()
	builder := binfmt.NewBuilder(model.FormatPE)
	if !obfuscated && b.CommandLine != "" {
		builder.AddString(b.CommandLine)
	}
	if packer != "" {
		builder.WithPacker(packer)
	}
	content := append(builder.Build(), spec.Encode(b, obfuscated)...)
	sha, md5hex := binfmt.Hashes(content)

	zone := dnssim.NewZone()
	zone.AddA("pool.minexmr.com", "94.130.12.30", time.Time{})
	zone.AddCNAME("xt.freebuf.info", "pool.minexmr.com", time.Time{})
	sb := sandbox.New(dnssim.NewResolver(zone))

	analyzer := static.New()
	stat := analyzer.Analyze(content)
	dyn := sb.Run(sha, content)

	sample := &model.Sample{
		SHA256:    sha,
		MD5:       md5hex,
		Content:   content,
		Sources:   []model.Source{model.SourceVirusTotal},
		FirstSeen: model.Date(2017, 3, 15),
		ITWURLs:   []string{"http://github.com/evil/repo/miner.exe"},
		Parents:   []string{"parent-hash-1"},
	}
	report := &model.AVReport{SHA256: sha}
	for i := 0; i < 20; i++ {
		report.Verdicts = append(report.Verdicts, model.AVVerdict{Vendor: "V", Detected: i < 14, Label: "CoinMiner"})
	}
	return Inputs{Sample: sample, Static: &stat, Dynamic: dyn, AVReport: report}
}

func TestExtractCleartextMiner(t *testing.T) {
	w := gen(1).Monero()
	b := spec.Behavior{
		IsMiner: true, PoolHost: "pool.minexmr.com", PoolPort: 4444,
		Wallet: w, Password: "x", Threads: 4, Agent: "XMRig/2.14.1",
		CommandLine: "xmrig.exe -o stratum+tcp://pool.minexmr.com:4444 -u " + w + " -p x -t 4",
	}
	in := buildAndAnalyze(t, b, false, "")
	rec := Extract(in)

	if rec.User != w {
		t.Errorf("User = %q, want wallet", rec.User)
	}
	if rec.Currency != model.CurrencyMonero {
		t.Errorf("Currency = %v", rec.Currency)
	}
	if rec.URLPool != "pool.minexmr.com:4444" {
		t.Errorf("URLPool = %q", rec.URLPool)
	}
	if rec.Type != model.TypeMiner {
		t.Errorf("Type = %v", rec.Type)
	}
	if rec.Positives != 14 {
		t.Errorf("Positives = %d", rec.Positives)
	}
	if rec.NThreads != 4 {
		t.Errorf("NThreads = %d", rec.NThreads)
	}
	if rec.Pass != "x" || rec.Agent != "XMRig/2.14.1" {
		t.Errorf("Pass/Agent = %q/%q", rec.Pass, rec.Agent)
	}
	if rec.DstIP != "94.130.12.30" {
		t.Errorf("DstIP = %q", rec.DstIP)
	}
	if rec.DstPort != 4444 {
		t.Errorf("DstPort = %d", rec.DstPort)
	}
	if !rec.FirstSeen.Equal(model.Date(2017, 3, 15)) {
		t.Errorf("FirstSeen = %v", rec.FirstSeen)
	}
	if len(rec.Parents) != 1 || rec.Parents[0] != "parent-hash-1" {
		t.Errorf("Parents = %v", rec.Parents)
	}
	// All three resource kinds contributed.
	kinds := map[model.AnalysisResource]bool{}
	for _, r := range rec.Resources {
		kinds[r] = true
	}
	if !kinds[model.ResourceBinary] || !kinds[model.ResourceSandbox] || !kinds[model.ResourceNetwork] {
		t.Errorf("Resources = %v", rec.Resources)
	}
	if rec.Obfuscated {
		t.Error("cleartext sample should not be obfuscated")
	}
}

func TestExtractObfuscatedMinerOnlyDynamic(t *testing.T) {
	// Packed sample: static analysis sees nothing, dynamic analysis recovers
	// the wallet from traffic and command line.
	w := gen(2).Monero()
	b := spec.Behavior{
		IsMiner: true, PoolHost: "xt.freebuf.info", PoolPort: 4444,
		Wallet: w, Password: "x",
	}
	in := buildAndAnalyze(t, b, true, "UPX")
	if len(in.Static.Identifiers) != 0 {
		t.Fatalf("static analysis should see no identifiers in a packed sample: %v", in.Static.Identifiers)
	}
	rec := Extract(in)
	if rec.User != w {
		t.Errorf("User = %q, want wallet recovered dynamically", rec.User)
	}
	if rec.Packer != "UPX" || !rec.Obfuscated {
		t.Errorf("Packer/Obfuscated = %q/%v", rec.Packer, rec.Obfuscated)
	}
	if rec.Type != model.TypeMiner {
		t.Errorf("Type = %v", rec.Type)
	}
	// The CNAME alias appears among DNS resolutions.
	foundAlias := false
	for _, d := range rec.DNSRR {
		if d == "xt.freebuf.info" {
			foundAlias = true
		}
	}
	if !foundAlias {
		t.Errorf("DNSRR = %v, want the CNAME alias", rec.DNSRR)
	}
}

func TestExtractAncillaryDropper(t *testing.T) {
	b := spec.Behavior{
		IsMiner:       false,
		DownloadsURLs: []string{"https://github.com/xmrig/xmrig/releases/download/v2.14.1/xmrig.exe"},
		DropsHashes:   []string{"droppedminerhash"},
	}
	in := buildAndAnalyze(t, b, false, "")
	rec := Extract(in)
	if rec.Type != model.TypeAncillary {
		t.Errorf("Type = %v, want Ancillary", rec.Type)
	}
	if rec.HasIdentifier() {
		t.Errorf("dropper should have no identifier, got %q", rec.User)
	}
	found := false
	for _, d := range rec.Dropped {
		if d == "droppedminerhash" {
			found = true
		}
	}
	if !found {
		t.Errorf("Dropped = %v", rec.Dropped)
	}
}

func TestExtractEmailIdentifier(t *testing.T) {
	email := gen(3).Email()
	b := spec.Behavior{
		IsMiner: true, PoolHost: "pool.minergate.com", PoolPort: 45700,
		Wallet: email, Password: "x",
		CommandLine: "minergate-cli -user " + email + " -xmr 2",
	}
	in := buildAndAnalyze(t, b, false, "")
	rec := Extract(in)
	if rec.User != email || rec.Currency != model.CurrencyEmail {
		t.Errorf("User/Currency = %q/%v", rec.User, rec.Currency)
	}
}

func TestExtractPrefersStratumLoginOverStaticNoise(t *testing.T) {
	// The binary contains a decoy wallet in static strings but mines to a
	// different wallet at runtime; the runtime identifier must win.
	g := gen(4)
	decoy := g.Monero()
	real := g.Monero()
	b := spec.Behavior{
		IsMiner: true, PoolHost: "pool.minexmr.com", PoolPort: 4444,
		Wallet: real, Password: "x",
		CommandLine: "miner.exe -o stratum+tcp://pool.minexmr.com:4444 -u " + real,
	}
	builder := binfmt.NewBuilder(model.FormatPE).
		AddString("donate to " + decoy).
		AddString(b.CommandLine)
	content := append(builder.Build(), spec.Encode(b, false)...)
	sha, _ := binfmt.Hashes(content)

	analyzer := static.New()
	stat := analyzer.Analyze(content)
	sb := sandbox.New(nil)
	dyn := sb.Run(sha, content)
	rec := Extract(Inputs{Static: &stat, Dynamic: dyn})
	if rec.User != real {
		t.Errorf("User = %q, want the runtime wallet %q", model.ShortHash(rec.User), model.ShortHash(real))
	}
}

func TestExtractNilInputs(t *testing.T) {
	rec := Extract(Inputs{})
	if rec.HasIdentifier() || rec.Type != model.TypeAncillary {
		t.Errorf("empty inputs record = %+v", rec)
	}
}

func TestIdentifiersReturnsAllCandidates(t *testing.T) {
	g := gen(5)
	w1, w2 := g.Monero(), g.Bitcoin()
	b := spec.Behavior{
		IsMiner: true, PoolHost: "pool.minexmr.com", PoolPort: 4444, Wallet: w1,
		CommandLine: "dual.exe -u " + w1 + " --btc " + w2,
	}
	in := buildAndAnalyze(t, b, false, "")
	ids := Identifiers(in)
	currencies := map[model.Currency]bool{}
	for _, c := range ids {
		currencies[c.Currency] = true
	}
	if !currencies[model.CurrencyMonero] || !currencies[model.CurrencyBitcoin] {
		t.Errorf("Identifiers = %v", ids)
	}
}

func TestThreadsFromCommandLine(t *testing.T) {
	cases := map[string]int{
		"xmrig -t 8 -u w":           8,
		"xmrig --threads=12":        12,
		"xmrig --threads=abc":       0,
		"xmrig -t":                  0,
		"xmrig -u wallet -p x":      0,
		"miner --threads=4 --other": 4,
	}
	for cl, want := range cases {
		if got := threadsFromCommandLine(cl); got != want {
			t.Errorf("threadsFromCommandLine(%q) = %d, want %d", cl, got, want)
		}
	}
}

func TestClassifyTypeRequiresBothIdentifierAndPool(t *testing.T) {
	rec := model.Record{User: "4W"}
	if classifyType(&rec) != model.TypeAncillary {
		t.Error("identifier without pool should be ancillary")
	}
	rec.URLPool = "pool.minexmr.com:4444"
	if classifyType(&rec) != model.TypeMiner {
		t.Error("identifier with pool should be miner")
	}
}

func BenchmarkExtract(b *testing.B) {
	w := gen(6).Monero()
	behavior := spec.Behavior{
		IsMiner: true, PoolHost: "pool.minexmr.com", PoolPort: 4444, Wallet: w,
		CommandLine: "xmrig.exe -o stratum+tcp://pool.minexmr.com:4444 -u " + w + " -p x -t 2",
	}
	builder := binfmt.NewBuilder(model.FormatPE).AddString(behavior.CommandLine)
	content := append(builder.Build(), spec.Encode(behavior, false)...)
	sha, _ := binfmt.Hashes(content)
	analyzer := static.New()
	stat := analyzer.Analyze(content)
	sb := sandbox.New(nil)
	dyn := sb.Run(sha, content)
	in := Inputs{Static: &stat, Dynamic: dyn}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(in)
	}
}
