// Package extract merges the outputs of the static and dynamic analyses, the
// AV reports and the feed metadata into one per-sample record (Table I of the
// paper), and classifies the recovered identifiers by currency.
//
// This is the step the paper calls "Extraction of Pools and Wallets"
// (§III-C): wallets come either from static strings or from the command lines
// and Stratum traffic captured in the sandbox; pool endpoints from the same
// places; obfuscation from the packer/entropy analysis; first-seen, in-the-wild
// URLs and parents from the feed metadata; positives from the AV report.
package extract

import (
	"sort"
	"strings"

	"cryptomining/internal/model"
	"cryptomining/internal/sandbox"
	"cryptomining/internal/static"
	"cryptomining/internal/stratum"
	"cryptomining/internal/wallet"
)

// Inputs bundles everything known about one sample before extraction.
type Inputs struct {
	Sample   *model.Sample
	Static   *static.Result
	Dynamic  *sandbox.Report
	AVReport *model.AVReport
}

// Extract builds the Table I record for a sample. Any of the analysis inputs
// may be nil; the record simply contains what the available analyses produced.
func Extract(in Inputs) model.Record {
	rec := model.Record{}
	if in.Sample != nil {
		rec.SHA256 = in.Sample.SHA256
		rec.Sources = append(rec.Sources, in.Sample.Sources...)
		rec.FirstSeen = in.Sample.FirstSeen
		rec.ITWURLs = append(rec.ITWURLs, in.Sample.ITWURLs...)
		rec.Parents = append(rec.Parents, in.Sample.Parents...)
		rec.Dropped = append(rec.Dropped, in.Sample.DroppedHashes...)
		rec.DNSRR = append(rec.DNSRR, in.Sample.ContactedDomains...)
	}
	if in.AVReport != nil {
		rec.Positives = in.AVReport.Positives()
	}

	type candidate struct {
		id       string
		currency model.Currency
		// weight prefers identifiers recovered from authoritative places
		// (Stratum traffic > command line > static strings).
		weight int
	}
	var ids []candidate
	addID := func(id string, weight int) {
		id = strings.TrimSpace(id)
		if id == "" {
			return
		}
		c := wallet.Classify(id)
		if c == model.CurrencyUnknown && len(id) < 16 {
			// Short opaque identifiers (user names) are kept only when seen
			// in Stratum logins, where they are authoritative.
			if weight < 3 {
				return
			}
		}
		ids = append(ids, candidate{id: id, currency: c, weight: weight})
	}

	var endpoints []static.Endpoint

	// Static analysis contributions.
	if in.Static != nil {
		rec.SHA256 = pickNonEmpty(rec.SHA256, in.Static.SHA256)
		rec.Format = in.Static.Format
		rec.Entropy = in.Static.Entropy
		rec.Packer = in.Static.Packer
		rec.Obfuscated = in.Static.Obfuscated
		for _, c := range in.Static.Identifiers {
			addID(c.ID, 1)
		}
		endpoints = append(endpoints, in.Static.PoolEndpoints...)
		rec.ITWURLs = append(rec.ITWURLs, in.Static.URLs...)
		if len(in.Static.Strings) > 0 || len(in.Static.YARAMatches) > 0 {
			rec.Resources = append(rec.Resources, model.ResourceBinary)
		}
	}

	// Dynamic analysis contributions.
	if in.Dynamic != nil {
		rec.Resources = append(rec.Resources, model.ResourceSandbox)
		for _, cl := range in.Dynamic.CommandLines() {
			for _, c := range wallet.ExtractCandidates(cl) {
				addID(c.ID, 2)
			}
			endpoints = append(endpoints, static.ExtractEndpoints(cl)...)
			if t := threadsFromCommandLine(cl); t > 0 {
				rec.NThreads = t
			}
		}
		capture := in.Dynamic.NetworkCapture()
		if len(capture) > 0 {
			rec.Resources = append(rec.Resources, model.ResourceNetwork)
			for _, l := range stratum.ParseTraffic(capture) {
				addID(l.Login, 3)
				if l.Pass != "" {
					rec.Pass = l.Pass
				}
				if l.Agent != "" {
					rec.Agent = l.Agent
				}
			}
		}
		for _, conn := range in.Dynamic.Connections {
			if conn.DstHost != "" && conn.DstPort > 0 {
				endpoints = append(endpoints, static.Endpoint{Host: conn.DstHost, Port: conn.DstPort})
			}
			if conn.DstIP != "" {
				rec.DstIP = conn.DstIP
			}
		}
		for _, q := range in.Dynamic.DNS {
			rec.DNSRR = append(rec.DNSRR, q.Name)
			rec.DNSRR = append(rec.DNSRR, q.CNAME...)
		}
		rec.Dropped = append(rec.Dropped, in.Dynamic.DroppedHashes...)
		rec.ITWURLs = append(rec.ITWURLs, in.Dynamic.DownloadedURLs...)
	}

	// Pick the best identifier: highest weight, then longest (full wallets
	// beat truncated fragments).
	sort.SliceStable(ids, func(i, j int) bool {
		if ids[i].weight != ids[j].weight {
			return ids[i].weight > ids[j].weight
		}
		return len(ids[i].id) > len(ids[j].id)
	})
	if len(ids) > 0 {
		rec.User = ids[0].id
		rec.Currency = ids[0].currency
	}

	// Pick the mining endpoint: the first endpoint observed dynamically wins
	// (appended later, so prefer the last occurrence of a dynamic endpoint);
	// otherwise the first static one.
	if len(endpoints) > 0 {
		ep := endpoints[len(endpoints)-1]
		rec.URLPool = ep.String()
		rec.DstPort = ep.Port
	}

	rec.ITWURLs = model.SortStrings(rec.ITWURLs)
	rec.DNSRR = model.SortStrings(rec.DNSRR)
	rec.Dropped = model.SortStrings(rec.Dropped)
	rec.Parents = model.SortStrings(rec.Parents)
	rec.Type = classifyType(&rec)
	return rec
}

// classifyType distinguishes miner binaries (identifier + pool endpoint
// observed) from ancillary binaries.
func classifyType(rec *model.Record) model.SampleType {
	if rec.HasIdentifier() && rec.URLPool != "" {
		return model.TypeMiner
	}
	return model.TypeAncillary
}

// threadsFromCommandLine parses "-t N" or "--threads=N" from a command line.
func threadsFromCommandLine(cl string) int {
	fields := strings.Fields(cl)
	for i, f := range fields {
		switch {
		case f == "-t" && i+1 < len(fields):
			return atoiSafe(fields[i+1])
		case strings.HasPrefix(f, "--threads="):
			return atoiSafe(strings.TrimPrefix(f, "--threads="))
		}
	}
	return 0
}

func atoiSafe(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func pickNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// Identifiers returns every distinct identifier (not just the primary one)
// recoverable from the analyses; the campaign aggregation uses the primary
// identifier, while dataset statistics (e.g. Table XV e-mails per pool) use
// the full set.
func Identifiers(in Inputs) []wallet.Candidate {
	var text strings.Builder
	if in.Static != nil {
		text.WriteString(strings.Join(in.Static.Strings, "\n"))
		text.WriteString("\n")
	}
	if in.Dynamic != nil {
		text.WriteString(strings.Join(in.Dynamic.CommandLines(), "\n"))
		text.WriteString("\n")
		text.Write(in.Dynamic.NetworkCapture())
	}
	return wallet.ExtractCandidates(text.String())
}
