// Package osint is the open-source-intelligence store the campaign analysis
// consumes: indicators of compromise (IoCs) attributed to publicly reported
// mining operations, the Pay-Per-Install botnets used to spread miners, the
// donation-wallet whitelist, and the catalogue of stock mining tools.
//
// The paper collects IoCs for six reported operations (Photominer, Adylkuzz,
// Smominru, Xbooster, Jenkins, Rocke), links samples to PPI botnets (Virut,
// Ramnit, Nitol) for post-aggregation enrichment, and whitelists 14 donation
// wallets extracted from mining-tool repositories (§III-E). The concrete
// indicator values here are synthetic — the public reports' appendices are not
// redistributable — but the store's shape and the matching logic are exactly
// what the pipeline needs.
package osint

import (
	"sort"
	"strings"
	"sync"

	"cryptomining/internal/model"
)

// Store indexes IoCs by value for fast matching, plus the auxiliary
// whitelists and catalogues.
type Store struct {
	mu sync.RWMutex
	// byValue maps lowercase IoC value -> IoCs with that value.
	byValue map[string][]model.IoC
	// donationWallets is the whitelist of developer donation wallets.
	donationWallets map[string]string // wallet -> tool name
	// ppiFamilies maps an AV family-label stem to the PPI botnet name.
	ppiFamilies map[string]string
	// stockTools maps a sample SHA256 -> stock tool descriptor.
	stockTools map[string]StockTool
}

// StockTool describes one version of a known mining framework.
type StockTool struct {
	Name    string // e.g. "xmrig"
	Version string // e.g. "2.14.1"
	SHA256  string
	Content []byte // binary content, for fuzzy-hash comparisons
}

// KnownOperations is the list of publicly reported mining operations whose
// IoCs the paper gathers.
var KnownOperations = []string{"Photominer", "Adylkuzz", "Smominru", "Xbooster", "Jenkins", "Rocke"}

// KnownPPIBotnets is the list of Pay-Per-Install botnets observed spreading
// miners.
var KnownPPIBotnets = []string{"Virut", "Ramnit", "Nitol"}

// StockToolNames is the catalogue of mining frameworks whose binaries are
// collected and whitelisted (13 frameworks in the paper).
var StockToolNames = []string{
	"xmrig", "xmr-stak", "claymore", "niceHash", "ccminer", "learnMiner",
	"cast-xmr", "jceMiner", "srbMiner", "yam", "cpuminer-multi", "ethminer", "lolMiner",
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		byValue:         map[string][]model.IoC{},
		donationWallets: map[string]string{},
		ppiFamilies:     map[string]string{},
		stockTools:      map[string]StockTool{},
	}
}

// NewDefaultStore returns a store pre-populated with the PPI family-label
// mapping. Operation IoCs, donation wallets and stock-tool hashes are supplied
// by the ecosystem simulator (or by a real OSINT ingest on real data).
func NewDefaultStore() *Store {
	s := NewStore()
	for _, b := range KnownPPIBotnets {
		s.RegisterPPIFamily(b, b)
	}
	return s
}

// AddIoC registers one indicator.
func (s *Store) AddIoC(ioc model.IoC) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(strings.TrimSpace(ioc.Value))
	if key == "" {
		return
	}
	s.byValue[key] = append(s.byValue[key], ioc)
}

// AddIoCs registers a batch of indicators.
func (s *Store) AddIoCs(iocs []model.IoC) {
	for _, i := range iocs {
		s.AddIoC(i)
	}
}

// Lookup returns the IoCs recorded for a value (hash, domain, IP, wallet or
// URL), matching case-insensitively.
func (s *Store) Lookup(value string) []model.IoC {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]model.IoC(nil), s.byValue[strings.ToLower(strings.TrimSpace(value))]...)
}

// Operations returns the distinct operations matched by any of the given
// values, sorted.
func (s *Store) Operations(values ...string) []string {
	seen := map[string]bool{}
	for _, v := range values {
		for _, ioc := range s.Lookup(v) {
			if ioc.Operation != "" {
				seen[ioc.Operation] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for op := range seen {
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}

// IoCCount returns the number of distinct indicator values stored.
func (s *Store) IoCCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byValue)
}

// AddDonationWallet whitelists a developer donation wallet for a tool.
func (s *Store) AddDonationWallet(wallet, tool string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.donationWallets[wallet] = tool
}

// IsDonationWallet reports whether the wallet is a whitelisted donation
// wallet, and which tool it belongs to.
func (s *Store) IsDonationWallet(wallet string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	tool, ok := s.donationWallets[wallet]
	return tool, ok
}

// DonationWallets returns the whitelist, sorted by wallet.
func (s *Store) DonationWallets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.donationWallets))
	for w := range s.donationWallets {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// RegisterPPIFamily maps an AV family-label stem (e.g. "Virut") to a PPI
// botnet name, so that samples labeled with that family are enriched as
// spread through the botnet.
func (s *Store) RegisterPPIFamily(labelStem, botnet string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ppiFamilies[strings.ToLower(labelStem)] = botnet
}

// PPIBotnetForLabels inspects AV labels and returns the PPI botnet they point
// to, if any.
func (s *Store) PPIBotnetForLabels(labels []string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, l := range labels {
		ll := strings.ToLower(l)
		for stem, botnet := range s.ppiFamilies {
			if strings.Contains(ll, stem) {
				return botnet, true
			}
		}
	}
	return "", false
}

// AddStockTool registers a known stock mining tool binary. The whitelist of
// tool hashes feeds both the "is it malware?" sanity check (stock tools are
// not malware by themselves) and the campaign enrichment.
func (s *Store) AddStockTool(t StockTool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stockTools[strings.ToLower(t.SHA256)] = t
}

// StockToolByHash returns the stock tool with the given SHA256, if known.
func (s *Store) StockToolByHash(sha256Hex string) (StockTool, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.stockTools[strings.ToLower(sha256Hex)]
	return t, ok
}

// IsWhitelistedHash reports whether the hash belongs to a known stock tool.
func (s *Store) IsWhitelistedHash(sha256Hex string) bool {
	_, ok := s.StockToolByHash(sha256Hex)
	return ok
}

// StockTools returns every registered stock tool, sorted by name then version.
func (s *Store) StockTools() []StockTool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]StockTool, 0, len(s.stockTools))
	for _, t := range s.stockTools {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	return out
}

// StockToolCount returns the number of registered tool versions.
func (s *Store) StockToolCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.stockTools)
}
