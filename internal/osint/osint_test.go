package osint

import (
	"testing"

	"cryptomining/internal/model"
)

func TestAddAndLookupIoC(t *testing.T) {
	s := NewStore()
	s.AddIoC(model.IoC{Type: model.IoCDomain, Value: "Photominer-C2.example.com", Operation: "Photominer"})
	s.AddIoC(model.IoC{Type: model.IoCWallet, Value: "4SMOMINRU_WALLET", Operation: "Smominru"})

	// Case-insensitive lookup.
	got := s.Lookup("photominer-c2.example.com")
	if len(got) != 1 || got[0].Operation != "Photominer" {
		t.Errorf("Lookup = %v", got)
	}
	if len(s.Lookup("unknown.example")) != 0 {
		t.Error("unknown value should have no IoCs")
	}
	if s.IoCCount() != 2 {
		t.Errorf("IoCCount = %d, want 2", s.IoCCount())
	}
}

func TestAddIoCEmptyValueIgnored(t *testing.T) {
	s := NewStore()
	s.AddIoC(model.IoC{Type: model.IoCDomain, Value: "   ", Operation: "X"})
	if s.IoCCount() != 0 {
		t.Error("empty IoC value should be ignored")
	}
}

func TestOperationsAggregation(t *testing.T) {
	s := NewStore()
	s.AddIoCs([]model.IoC{
		{Type: model.IoCDomain, Value: "a.example", Operation: "Adylkuzz"},
		{Type: model.IoCHash, Value: "deadbeef", Operation: "Rocke"},
		{Type: model.IoCHash, Value: "deadbeef", Operation: "Rocke"}, // duplicate
		{Type: model.IoCIP, Value: "10.0.0.1", Operation: "Adylkuzz"},
	})
	ops := s.Operations("a.example", "deadbeef", "10.0.0.1", "nothing")
	if len(ops) != 2 || ops[0] != "Adylkuzz" || ops[1] != "Rocke" {
		t.Errorf("Operations = %v", ops)
	}
	if got := s.Operations("nothing"); len(got) != 0 {
		t.Errorf("Operations(no match) = %v", got)
	}
}

func TestDonationWalletWhitelist(t *testing.T) {
	s := NewStore()
	s.AddDonationWallet("4XMRIG_DONATION", "xmrig")
	s.AddDonationWallet("4STAK_DONATION", "xmr-stak")
	if tool, ok := s.IsDonationWallet("4XMRIG_DONATION"); !ok || tool != "xmrig" {
		t.Errorf("IsDonationWallet = %q, %v", tool, ok)
	}
	if _, ok := s.IsDonationWallet("4MISCREANT"); ok {
		t.Error("non-donation wallet should not be whitelisted")
	}
	ws := s.DonationWallets()
	if len(ws) != 2 || ws[0] != "4STAK_DONATION" {
		t.Errorf("DonationWallets = %v", ws)
	}
}

func TestPPIBotnetForLabels(t *testing.T) {
	s := NewDefaultStore()
	botnet, ok := s.PPIBotnetForLabels([]string{"Win32.Virut.CE", "Trojan.Generic"})
	if !ok || botnet != "Virut" {
		t.Errorf("PPIBotnetForLabels = %q, %v", botnet, ok)
	}
	if _, ok := s.PPIBotnetForLabels([]string{"CoinMiner.X", "Trojan.Agent"}); ok {
		t.Error("non-PPI labels should not match")
	}
	if _, ok := s.PPIBotnetForLabels(nil); ok {
		t.Error("empty labels should not match")
	}
	// Ramnit and Nitol are also registered by default.
	if b, ok := s.PPIBotnetForLabels([]string{"Worm.Ramnit.A"}); !ok || b != "Ramnit" {
		t.Errorf("Ramnit label = %q, %v", b, ok)
	}
	if b, ok := s.PPIBotnetForLabels([]string{"Backdoor.Nitol!gen"}); !ok || b != "Nitol" {
		t.Errorf("Nitol label = %q, %v", b, ok)
	}
}

func TestStockToolRegistry(t *testing.T) {
	s := NewStore()
	s.AddStockTool(StockTool{Name: "xmrig", Version: "2.14.1", SHA256: "AABBCC", Content: []byte("xmrig binary")})
	s.AddStockTool(StockTool{Name: "claymore", Version: "11.3", SHA256: "ddeeff", Content: []byte("claymore binary")})
	s.AddStockTool(StockTool{Name: "xmrig", Version: "2.13.0", SHA256: "001122", Content: []byte("older xmrig")})

	if s.StockToolCount() != 3 {
		t.Errorf("StockToolCount = %d, want 3", s.StockToolCount())
	}
	// Hash lookups are case-insensitive.
	tool, ok := s.StockToolByHash("aabbcc")
	if !ok || tool.Name != "xmrig" || tool.Version != "2.14.1" {
		t.Errorf("StockToolByHash = %+v, %v", tool, ok)
	}
	if !s.IsWhitelistedHash("DDEEFF") {
		t.Error("claymore hash should be whitelisted")
	}
	if s.IsWhitelistedHash("123456") {
		t.Error("unknown hash should not be whitelisted")
	}
	tools := s.StockTools()
	if len(tools) != 3 || tools[0].Name != "claymore" || tools[1].Version != "2.13.0" {
		t.Errorf("StockTools order = %+v", tools)
	}
}

func TestKnownCatalogues(t *testing.T) {
	if len(KnownOperations) != 6 {
		t.Errorf("KnownOperations = %d, want 6", len(KnownOperations))
	}
	if len(KnownPPIBotnets) != 3 {
		t.Errorf("KnownPPIBotnets = %d, want 3", len(KnownPPIBotnets))
	}
	if len(StockToolNames) != 13 {
		t.Errorf("StockToolNames = %d, want 13 frameworks", len(StockToolNames))
	}
}

func TestConcurrentStoreAccess(t *testing.T) {
	s := NewDefaultStore()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 500; i++ {
			s.AddIoC(model.IoC{Type: model.IoCDomain, Value: "d.example", Operation: "Rocke"})
		}
		close(done)
	}()
	for i := 0; i < 500; i++ {
		_ = s.Lookup("d.example")
		_ = s.Operations("d.example")
	}
	<-done
}

func BenchmarkLookup(b *testing.B) {
	s := NewStore()
	for i := 0; i < 10000; i++ {
		s.AddIoC(model.IoC{Type: model.IoCHash, Value: string(rune('a'+i%26)) + "hash", Operation: "Rocke"})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Lookup("mhash")
	}
}
